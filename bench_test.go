// Benchmarks, one per table/figure of the paper (see DESIGN.md §4 for
// the experiment index). Run with:
//
//	go test -bench=. -benchmem
//
// The wall-clock shapes these produce — polynomial rows flat-ish,
// NP-Complete rows exploding with formula size, write-order augmentation
// collapsing the cost — are the reproduction's analogue of the paper's
// claims; cmd/experiments prints the same data as tables with fitted
// exponents.
package memverify_test

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"testing"

	"memverify/internal/coherence"
	"memverify/internal/consistency"
	"memverify/internal/memory"
	"memverify/internal/mesi"
	"memverify/internal/monitor"
	"memverify/internal/obs"
	"memverify/internal/reduction"
	"memverify/internal/sat"
	"memverify/internal/solver"
	"memverify/internal/workload"
)

// benchFormula builds a deterministic random formula.
func benchFormula(seed int64, m, n int) *sat.Formula {
	rng := rand.New(rand.NewSource(seed))
	f := &sat.Formula{NumVars: m}
	for j := 0; j < n; j++ {
		clen := 1 + rng.Intn(3)
		c := make(sat.Clause, 0, clen)
		for k := 0; k < clen; k++ {
			l := sat.Lit(1 + rng.Intn(m))
			if rng.Intn(2) == 0 {
				l = l.Neg()
			}
			c = append(c, l)
		}
		f.Clauses = append(f.Clauses, c)
	}
	return f
}

// --- Figure 4.1 / 4.2 / Theorem 4.2: the general SAT -> VMC reduction.

func BenchmarkFig41SATToVMC(b *testing.B) {
	for _, m := range []int{2, 3, 4} {
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			q := benchFormula(1, m, 2*m)
			inst, err := reduction.SATToVMC(q)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := coherence.Solve(context.Background(), inst.Exec, inst.Addr, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFig42Example(b *testing.B) {
	q := sat.NewFormula(sat.Clause{1}) // Q = u
	inst, err := reduction.SATToVMC(q)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := coherence.Solve(context.Background(), inst.Exec, inst.Addr, nil)
		if err != nil || !res.Coherent {
			b.Fatal("Figure 4.2 instance must be coherent")
		}
	}
}

// --- Figure 5.1: restricted instances (3 ops/process, 2 writes/value).

func BenchmarkFig51Restricted(b *testing.B) {
	// m=4 already takes tens of seconds — the NP-hardness showing; keep
	// the default run under control.
	for _, m := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			q := benchFormula(2, m, 2*m)
			inst, err := reduction.ThreeSATToVMCRestricted(q)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := coherence.Solve(context.Background(), inst.Exec, inst.Addr, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Figure 5.2: RMW-only instances (2 RMWs/process, 3 writes/value).

func BenchmarkFig52RMW(b *testing.B) {
	for _, m := range []int{2, 3, 4} {
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			q := benchFormula(3, m, 2*m)
			inst, err := reduction.ThreeSATToVMCRMW(q)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := coherence.Solve(context.Background(), inst.Exec, inst.Addr, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Figure 5.3: one benchmark per tractable row.

func coherentTrace(seed int64, n int, cfg workload.GenConfig) (*memory.Execution, map[memory.Addr][]memory.Ref) {
	rng := rand.New(rand.NewSource(seed))
	cfg.OpsPerProc = n / cfg.Processors
	return workload.GenerateCoherent(rng, cfg)
}

func BenchmarkFig53SingleOp(b *testing.B) {
	for _, n := range []int{1000, 4000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			exec := singleOpTrace(4, n, false)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := coherence.SolveSingleOp(context.Background(), exec, 0)
				if err != nil || !res.Coherent {
					b.Fatal("workload must be coherent")
				}
			}
		})
	}
}

func BenchmarkFig53SingleOpRMW(b *testing.B) {
	for _, n := range []int{1000, 4000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			exec := singleOpTrace(5, n, true)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := coherence.SolveSingleOpRMW(context.Background(), exec, 0)
				if err != nil || !res.Coherent {
					b.Fatal("workload must be coherent")
				}
			}
		})
	}
}

// singleOpTrace builds a coherent one-op-per-process instance.
func singleOpTrace(seed int64, n int, rmw bool) *memory.Execution {
	rng := rand.New(rand.NewSource(seed))
	exec := &memory.Execution{}
	exec.SetInitial(0, 0)
	cur := memory.Value(0)
	for p := 0; p < n; p++ {
		next := memory.Value(p + 1)
		switch {
		case rmw:
			exec.Histories = append(exec.Histories, memory.History{memory.RW(0, cur, next)})
			cur = next
		case rng.Intn(2) == 0:
			exec.Histories = append(exec.Histories, memory.History{memory.R(0, cur)})
		default:
			exec.Histories = append(exec.Histories, memory.History{memory.W(0, next)})
			cur = next
		}
	}
	exec.SetFinal(0, cur)
	return exec
}

func BenchmarkFig53ReadMap(b *testing.B) {
	for _, n := range []int{1000, 4000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			exec, _ := coherentTrace(6, n, workload.GenConfig{
				Processors: 4, Addresses: 1, UniqueWrites: true, WriteFraction: 0.4,
			})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := coherence.SolveReadMap(context.Background(), exec, 0)
				if err != nil || !res.Coherent {
					b.Fatal("workload must be coherent")
				}
			}
		})
	}
}

func BenchmarkFig53ConstantProcesses(b *testing.B) {
	for _, n := range []int{200, 800} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			exec, _ := coherentTrace(7, n, workload.GenConfig{
				Processors: 3, Addresses: 1, Values: 3, WriteFraction: 0.4,
			})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, err := coherence.Solve(context.Background(), exec, 0, &coherence.Options{MaxStates: 5_000_000})
				if err != nil {
					if _, ok := solver.AsBudgetError(err); ok {
						b.Skip("state budget exhausted on this trace")
					}
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFig53WriteOrder(b *testing.B) {
	for _, n := range []int{1000, 4000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			exec, orders := coherentTrace(8, n, workload.GenConfig{
				Processors: 4, Addresses: 1, Values: 4, WriteFraction: 0.4,
			})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := coherence.SolveWithWriteOrder(context.Background(), exec, 0, orders[0], nil)
				if err != nil || !res.Coherent {
					b.Fatal("workload must be coherent")
				}
			}
		})
	}
}

func BenchmarkFig53WriteOrderRMW(b *testing.B) {
	for _, n := range []int{1000, 4000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			exec, orders := coherentTrace(9, n, workload.GenConfig{
				Processors: 4, Addresses: 1, Values: 4, RMWFraction: 1,
			})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := coherence.CheckRMWWriteOrder(context.Background(), exec, 0, orders[0])
				if err != nil || !res.Coherent {
					b.Fatal("workload must be coherent")
				}
			}
		})
	}
}

// --- Figure 6.1: LRC via synchronization.

func BenchmarkFig61LRC(b *testing.B) {
	q := benchFormula(10, 3, 6)
	inst, err := reduction.SATToVMCSynchronized(q)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := consistency.VerifyLRC(context.Background(), inst.Exec, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 6.2 / 6.3: VSCC.

func BenchmarkFig62VSCC(b *testing.B) {
	for _, m := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			q := benchFormula(11, m, 2*m)
			inst, err := reduction.SATToVSCC(q)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := consistency.SolveVSC(context.Background(), inst.Exec, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFig63CoherencePromise(b *testing.B) {
	q := benchFormula(12, 3, 6)
	inst, err := reduction.SATToVSCC(q)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok, _, err := coherence.Coherent(context.Background(), inst.Exec, nil)
		if err != nil || !ok {
			b.Fatal("VSCC instances are coherent by construction")
		}
	}
}

// --- §6.3: VSC-Conflict merge.

func BenchmarkMergeSchedules(b *testing.B) {
	// Per-address schedules sliced from the generator's own SC witness
	// merge by construction (independently chosen ones usually do not —
	// the §6.3 point, measured in E7).
	rng := rand.New(rand.NewSource(13))
	exec, _, witness := workload.GenerateCoherentWithWitness(rng, workload.GenConfig{
		Processors: 4, OpsPerProc: 100, Addresses: 4, Values: 3, WriteFraction: 0.4,
	})
	schedules := map[memory.Addr]memory.Schedule{}
	for _, r := range witness {
		o := exec.Op(r)
		if o.IsMemory() {
			schedules[o.Addr] = append(schedules[o.Addr], r)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := consistency.MergeSchedules(exec, schedules)
		if err != nil || !res.Consistent {
			b.Fatal("witness-derived schedules must merge")
		}
	}
}

// --- §1 motivation: fault detection throughput.

func BenchmarkFaultDetection(b *testing.B) {
	rng := rand.New(rand.NewSource(14))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys := mesi.New(mesi.Config{
			Processors: 3, CacheSets: 2, CacheWays: 1,
			Faults: mesi.WithProbability(mesi.FaultDropWrite, 0.2, rng),
		})
		prog := mesi.RandomProgram(rng, 3, 10, 2, 0.45, 0.1)
		exec := mesi.Run(sys, prog, rng)
		if _, _, err := coherence.Coherent(context.Background(), exec, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations.

func BenchmarkAblationMemoization(b *testing.B) {
	q := benchFormula(15, 3, 6)
	inst, err := reduction.SATToVMC(q)
	if err != nil {
		b.Fatal(err)
	}
	for _, variant := range []struct {
		name string
		opts *coherence.Options
	}{
		{"memo+eager", nil},
		{"no-memo", &coherence.Options{DisableMemoization: true}},
		{"no-eager", &coherence.Options{DisableEagerReads: true}},
	} {
		b.Run(variant.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := coherence.Solve(context.Background(), inst.Exec, inst.Addr, variant.opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAblationSATBackends(b *testing.B) {
	f := sat.RandomKSAT(rand.New(rand.NewSource(16)), 16, 68, 3)
	b.Run("cdcl", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sat.SolveCDCL(f); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("dpll", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sat.SolveDPLL(f); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("brute", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sat.SolveBrute(f); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Observability overhead (internal/obs acceptance: with tracing off
// the instrumented search must stay within 5% of the seed; with metrics
// on, only the every-64-states delta flush is added; full JSONL tracing
// is the expensive mode and priced here for reference).

func BenchmarkObsOverhead(b *testing.B) {
	q := benchFormula(23, 3, 6)
	inst, err := reduction.SATToVMC(q)
	if err != nil {
		b.Fatal(err)
	}
	solve := func(b *testing.B, ctx context.Context) {
		for i := 0; i < b.N; i++ {
			if _, err := coherence.Solve(ctx, inst.Exec, inst.Addr, nil); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("off", func(b *testing.B) {
		solve(b, context.Background())
	})
	b.Run("metrics", func(b *testing.B) {
		ctx := obs.With(context.Background(), &obs.Observer{Metrics: obs.NewMetrics()})
		solve(b, ctx)
	})
	b.Run("jsonl", func(b *testing.B) {
		jl := obs.NewJSONL(io.Discard)
		ctx := obs.With(context.Background(), &obs.Observer{Tracer: obs.NewTracer(jl)})
		solve(b, ctx)
	})
	b.Run("full", func(b *testing.B) {
		jl := obs.NewJSONL(io.Discard)
		ctx := obs.With(context.Background(), &obs.Observer{
			Tracer:  obs.NewTracer(jl),
			Metrics: obs.NewMetrics(),
		})
		solve(b, ctx)
	})
}

// --- Checker microbenchmarks (certificate validation is the NP side of
// Theorem 4.2 and must stay linear).

func BenchmarkCheckCoherent(b *testing.B) {
	exec, orders := coherentTrace(17, 10000, workload.GenConfig{
		Processors: 4, Addresses: 1, Values: 4, WriteFraction: 0.4,
	})
	res, err := coherence.SolveWithWriteOrder(context.Background(), exec, 0, orders[0], nil)
	if err != nil || !res.Coherent {
		b.Fatal("workload must be coherent")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := memory.CheckCoherent(exec, 0, res.Schedule); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCheckSC(b *testing.B) {
	rng := rand.New(rand.NewSource(18))
	exec, _, witness := workload.GenerateCoherentWithWitness(rng, workload.GenConfig{
		Processors: 4, OpsPerProc: 2500, Addresses: 4, Values: 4, WriteFraction: 0.4,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := memory.CheckSC(exec, witness); err != nil {
			b.Fatal(err)
		}
	}
}

// --- New-feature benchmarks: counting, diagnosis, parallel
// verification, constrained VSC, and the online monitor.

func BenchmarkCountSchedules(b *testing.B) {
	exec, _ := coherentTrace(19, 120, workload.GenConfig{
		Processors: 3, Addresses: 1, Values: 3, WriteFraction: 0.4,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n, err := coherence.Count(context.Background(), exec, 0)
		if err != nil || n.Sign() <= 0 {
			b.Fatal("coherent trace must have schedules")
		}
	}
}

func BenchmarkDiagnose(b *testing.B) {
	exec := memory.NewExecution(
		memory.History{memory.W(0, 1), memory.R(0, 1), memory.W(0, 2), memory.R(0, 2)},
		memory.History{memory.R(0, 1), memory.R(0, 2), memory.R(0, 99)},
	).SetInitial(0, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := coherence.Diagnose(context.Background(), exec, 0, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerifyParallel(b *testing.B) {
	rng := rand.New(rand.NewSource(20))
	exec, _ := workload.GenerateCoherent(rng, workload.GenConfig{
		Processors: 4, OpsPerProc: 400, Addresses: 8, Values: 4, WriteFraction: 0.4,
	})
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := coherence.VerifyExecution(context.Background(), exec, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := coherence.VerifyExecutionParallel(context.Background(), exec, nil, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkVSCWithWriteOrders(b *testing.B) {
	rng := rand.New(rand.NewSource(21))
	exec, orders := workload.GenerateCoherent(rng, workload.GenConfig{
		Processors: 3, OpsPerProc: 20, Addresses: 2, Values: 3, WriteFraction: 0.4,
	})
	b.Run("unconstrained", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := consistency.SolveVSC(context.Background(), exec, nil)
			if err != nil || !res.Consistent {
				b.Fatal("generated trace must be SC")
			}
		}
	})
	b.Run("with-orders", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := consistency.SolveVSCWithWriteOrders(context.Background(), exec, orders, nil)
			if err != nil || !res.Consistent {
				b.Fatal("generated trace must be SC under its own orders")
			}
		}
	})
}

func BenchmarkOnlineMonitor(b *testing.B) {
	rng := rand.New(rand.NewSource(22))
	mon := monitor.New(map[memory.Addr]memory.Value{0: 0})
	cur := memory.Value(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := rng.Intn(4)
		if rng.Intn(3) == 0 {
			cur++
			if err := mon.ObserveWrite(p, 0, cur); err != nil {
				b.Fatal(err)
			}
		} else if err := mon.ObserveRead(p, 0, cur); err != nil {
			b.Fatal(err)
		}
	}
}
