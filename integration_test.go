// Cross-module integration tests: the full pipelines a user of the
// repository runs, exercised end to end — simulator to trace file to
// verifier, formula to reduction to verifier to decoded assignment, and
// relaxed machine to model checkers.
package memverify_test

import (
	"bytes"
	"context"
	"math/rand"
	"testing"

	"memverify/internal/coherence"
	"memverify/internal/consistency"
	"memverify/internal/memory"
	"memverify/internal/mesi"
	"memverify/internal/reduction"
	"memverify/internal/sat"
	"memverify/internal/trace"
	"memverify/internal/tsomachine"
	"memverify/internal/workload"
)

// MESI simulator -> trace serialization -> parse -> verify, with and
// without an injected fault.
func TestPipelineSimulatorToVerifier(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 15; i++ {
		sys := mesi.New(mesi.Config{Processors: 3})
		prog := mesi.RandomProgram(rng, 3, 10, 3, 0.4, 0.1)
		exec := mesi.Run(sys, prog, rng)

		var buf bytes.Buffer
		if err := trace.Write(&buf, trace.New(exec)); err != nil {
			t.Fatal(err)
		}
		tr, err := trace.Read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		ok, bad, err := coherence.Coherent(context.Background(), tr.Exec, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("run %d: healthy trace flagged at address %d after round trip", i, bad)
		}
	}
}

// Formula -> DIMACS -> parse -> reduce -> solve -> decode -> check, the
// full satbridge loop, across all single-address constructions.
func TestPipelineFormulaRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	builders := map[string]func(*sat.Formula) (*reduction.VMCInstance, error){
		"fig4.1": reduction.SATToVMC,
		"fig5.1": reduction.ThreeSATToVMCRestricted,
		"fig5.2": reduction.ThreeSATToVMCRMW,
	}
	for name, build := range builders {
		name, build := name, build
		t.Run(name, func(t *testing.T) {
			for i := 0; i < 15; i++ {
				q := sat.RandomKSAT(rng, 1+rng.Intn(3), 1+rng.Intn(4), 3)
				var buf bytes.Buffer
				if err := sat.WriteDIMACS(&buf, q); err != nil {
					t.Fatal(err)
				}
				parsed, err := sat.ReadDIMACS(&buf)
				if err != nil {
					t.Fatal(err)
				}
				inst, err := build(parsed)
				if err != nil {
					t.Fatal(err)
				}
				res, err := coherence.Solve(context.Background(), inst.Exec, inst.Addr, nil)
				if err != nil {
					t.Fatal(err)
				}
				want, err := sat.SolveBrute(parsed)
				if err != nil {
					t.Fatal(err)
				}
				if res.Coherent != want.Satisfiable {
					t.Fatalf("run %d: coherent=%v satisfiable=%v\n%s", i, res.Coherent, want.Satisfiable, parsed)
				}
				if res.Coherent {
					asg, err := inst.DecodeAssignment(res.Schedule)
					if err != nil {
						t.Fatal(err)
					}
					if !asg.Satisfies(parsed) {
						t.Fatalf("run %d: decoded assignment invalid", i)
					}
				}
			}
		})
	}
}

// TSO machine traces, serialized and re-parsed, pass the TSO checker and
// respect the model hierarchy.
func TestPipelineRelaxedMachineToCheckers(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 15; i++ {
		m := tsomachine.New(2, tsomachine.TSO)
		prog := mesi.RandomProgram(rng, 2, 6, 2, 0.5, 0.05)
		exec := tsomachine.Run(m, prog, rng, 0.25)

		var buf bytes.Buffer
		if err := trace.Write(&buf, trace.New(exec)); err != nil {
			t.Fatal(err)
		}
		tr, err := trace.Read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		res, err := consistency.VerifyTSO(context.Background(), tr.Exec, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Consistent {
			t.Fatalf("run %d: TSO trace rejected after serialization round trip", i)
		}
	}
}

// Injected trace-level violations survive serialization and are
// detected identically before and after.
func TestPipelineViolationStability(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 30; i++ {
		exec, _ := workload.GenerateCoherent(rng, workload.GenConfig{
			Processors: 3, OpsPerProc: 8, Addresses: 2, Values: 3, WriteFraction: 0.4,
		})
		kind := workload.ViolationKinds()[i%len(workload.ViolationKinds())]
		mut, err := workload.Inject(rng, exec, kind)
		if err != nil {
			continue
		}
		before, _, err := coherence.Coherent(context.Background(), mut, nil)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := trace.Write(&buf, trace.New(mut)); err != nil {
			t.Fatal(err)
		}
		tr, err := trace.Read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		after, _, err := coherence.Coherent(context.Background(), tr.Exec, nil)
		if err != nil {
			t.Fatal(err)
		}
		if before != after {
			t.Fatalf("run %d (%v): verdict changed across serialization: %v -> %v", i, kind, before, after)
		}
	}
}

// The VSCC construction behaves across the whole stack: reduce,
// serialize, re-parse, check the promise, decide SC.
func TestPipelineVSCC(t *testing.T) {
	q := sat.NewFormula(sat.Clause{1, -2}, sat.Clause{2})
	inst, err := reduction.SATToVSCC(q)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.Write(&buf, trace.New(inst.Exec)); err != nil {
		t.Fatal(err)
	}
	tr, err := trace.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Addresses may be renumbered by the parser; the verdicts must hold
	// regardless.
	res, err := consistency.SolveVSCC(context.Background(), tr.Exec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Consistent {
		t.Error("satisfiable VSCC instance rejected after round trip")
	}
	if err := memory.CheckSC(tr.Exec, res.Schedule); err != nil {
		t.Error(err)
	}
}
