// Litmus: the classic relaxed-memory litmus tests run through all the
// checkers, printing the allowed/forbidden matrix for coherence, SC, TSO
// and PSO — the model hierarchy of §6.2 made concrete.
//
// Run with: go run ./examples/litmus
package main

import (
	"context"
	"fmt"
	"log"

	"memverify/internal/consistency"
	"memverify/internal/workload"
)

func main() {
	tests := append(workload.LitmusTests(), workload.IRIW())

	fmt.Printf("%-26s %-10s %-6s %-6s %-6s\n", "litmus outcome", "coherent", "SC", "TSO", "PSO")
	fmt.Printf("%-26s %-10s %-6s %-6s %-6s\n", "--------------", "--------", "--", "---", "---")
	for _, l := range tests {
		coh, err := consistency.Verify(context.Background(), consistency.CoherenceOnly, l.Exec, nil)
		if err != nil {
			log.Fatal(err)
		}
		sc, err := consistency.Verify(context.Background(), consistency.SC, l.Exec, nil)
		if err != nil {
			log.Fatal(err)
		}
		tso, err := consistency.Verify(context.Background(), consistency.TSO, l.Exec, nil)
		if err != nil {
			log.Fatal(err)
		}
		pso, err := consistency.Verify(context.Background(), consistency.PSO, l.Exec, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-26s %-10v %-6v %-6v %-6v\n",
			l.Name, coh.Consistent, sc.Consistent, tso.Consistent, pso.Consistent)
	}

	fmt.Println("\nwitness for the store-buffering outcome under TSO (issue/commit events):")
	sb := workload.Dekker()
	res, err := consistency.VerifyTSO(context.Background(), sb.Exec, nil)
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range res.Events {
		op := ""
		if e.Kind == consistency.EventIssue {
			op = sb.Exec.Op(e.Ref).String()
		}
		fmt.Printf("  %v %s\n", e, op)
	}
}
