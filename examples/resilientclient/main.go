// Resilient client: call memverifyd through internal/client and watch
// the retry discipline work — backoff past transient 5xx, Retry-After
// honored on 429, the circuit breaker failing fast through a hard
// outage, and no retry ever attempted past the caller's deadline.
//
// The example is self-contained: it runs a deliberately flaky stand-in
// for memverifyd on a loopback socket. Point the client at a real
// server (go run ./cmd/memverifyd) and the same code works unchanged —
// the flakiness here just makes the client's behavior visible in one
// run.
//
// Run with: go run ./examples/resilientclient
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"sync/atomic"
	"time"

	"memverify/internal/client"
)

// flaky is the stand-in server: a scriptable sequence of failures in
// front of a canned coherent verdict.
type flaky struct {
	calls    atomic.Int64
	failures atomic.Int64 // answer 500 to this many leading calls
	outage   atomic.Bool  // refuse everything with 503 while set
}

func (f *flaky) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	n := f.calls.Add(1)
	w.Header().Set("Content-Type", "application/json")
	switch {
	case f.outage.Load():
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(map[string]string{"error": "outage"})
	case n <= f.failures.Load():
		w.WriteHeader(http.StatusInternalServerError)
		json.NewEncoder(w).Encode(map[string]string{"error": "transient"})
	default:
		json.NewEncoder(w).Encode(map[string]any{
			"verdict": "coherent", "model": "Coherence", "strategy": "auto",
		})
	}
}

func main() {
	srv := &flaky{}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln, srv)

	cl := client.New(client.Config{
		Base:             "http://" + ln.Addr().String(),
		BaseBackoff:      10 * time.Millisecond, // demo-fast; default 50ms
		RetryBudget:      1,                     // generous for the demo; default 0.10
		BreakerThreshold: 3,
		BreakerCooldown:  200 * time.Millisecond,
		Seed:             1,
	})
	req := &client.Request{Trace: "P0: W x 1\nP1: R x 1\n"}

	// 1. Transient failures: the first two attempts draw a 500, the
	// third lands — one Verify call, the retries are invisible.
	srv.failures.Store(2)
	resp, err := cl.Verify(context.Background(), req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("transient 5xx:  verdict=%s after %d attempts\n", resp.Verdict, resp.Attempts)

	// 2. Hard outage: every attempt fails, the breaker opens, and
	// further calls fail fast without touching the network.
	srv.outage.Store(true)
	if _, err := cl.Verify(context.Background(), req); err != nil {
		fmt.Printf("hard outage:    %v\n", err)
	}
	before := srv.calls.Load()
	if _, err := cl.Verify(context.Background(), req); err != nil {
		fmt.Printf("breaker open:   %v (network calls made: %d)\n", err, srv.calls.Load()-before)
	}

	// 3. Recovery: after the cooldown one half-open probe goes out; its
	// success closes the breaker for everyone.
	srv.outage.Store(false)
	srv.failures.Store(0)
	time.Sleep(250 * time.Millisecond)
	resp, err = cl.Verify(context.Background(), req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered:      verdict=%s after %d attempts\n", resp.Verdict, resp.Attempts)

	// 4. Deadline discipline: with 5ms left the client refuses to wait
	// out a backoff it could not finish — and forwards the deadline as
	// X-Deadline-Ms so a real server sheds the work too.
	srv.failures.Store(srv.calls.Load() + 10)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if _, err := cl.Verify(ctx, req); err != nil {
		fmt.Printf("tight deadline: %v\n", err)
	}

	st := cl.Stats()
	fmt.Printf("lifetime stats: requests=%d attempts=%d retries=%d breaker_opens=%d state=%s\n",
		st.Requests, st.Attempts, st.Retries, st.BreakerOpens, st.BreakerState)
}
