// Satbridge: the reductions as a two-way bridge. A SAT formula is
// compiled into a memory trace (Figure 4.1); deciding the trace's
// coherence decides the formula, and the coherent schedule decodes back
// into a satisfying assignment. This is Lemma 4.3 running in both
// directions.
//
// Run with: go run ./examples/satbridge
package main

import (
	"context"
	"fmt"
	"log"

	"memverify/internal/coherence"
	"memverify/internal/reduction"
	"memverify/internal/sat"
)

func main() {
	// (x1 ∨ ¬x2) ∧ (x2 ∨ x3) ∧ (¬x1 ∨ ¬x3)
	q := sat.NewFormula(
		sat.Clause{1, -2},
		sat.Clause{2, 3},
		sat.Clause{-1, -3},
	)
	fmt.Printf("formula: %s\n\n", q)

	inst, err := reduction.SATToVMC(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reduced to a VMC instance: %d histories, %d operations, 1 address\n",
		len(inst.Exec.Histories), inst.Exec.NumOps())

	// Decide SAT by deciding coherence.
	res, err := coherence.Solve(context.Background(), inst.Exec, inst.Addr, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("coherent schedule exists: %v  (states searched: %d)\n", res.Coherent, res.Stats.States)
	if res.Coherent {
		asg, err := inst.DecodeAssignment(res.Schedule)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("decoded assignment: %s\n", asg)
		fmt.Printf("assignment satisfies the formula: %v\n\n", asg.Satisfies(q))
	}

	// Cross-check with the CDCL solver directly.
	direct, err := sat.SolveCDCL(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CDCL agrees: satisfiable = %v\n\n", direct.Satisfiable)

	// An unsatisfiable formula becomes an incoherent trace.
	unsat := sat.NewFormula(sat.Clause{1}, sat.Clause{-1})
	inst2, err := reduction.SATToVMC(unsat)
	if err != nil {
		log.Fatal(err)
	}
	res2, err := coherence.Solve(context.Background(), inst2.Exec, inst2.Addr, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("formula %s -> coherent: %v (as expected: unsatisfiable)\n", unsat, res2.Coherent)
}
