// Faultdetect: the paper's motivating scenario (§1) end to end — run a
// multiprocessor with a cache-coherence protocol bug injected, capture
// the execution, and let the verifier catch the bug that plain data
// checking would miss.
//
// Run with: go run ./examples/faultdetect
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"memverify/internal/coherence"
	"memverify/internal/mesi"
)

func main() {
	rng := rand.New(rand.NewSource(42))

	// A healthy 4-CPU system first.
	healthy := mesi.New(mesi.Config{Processors: 4})
	prog := mesi.RandomProgram(rng, 4, 12, 3, 0.4, 0.1)
	exec := mesi.Run(healthy, prog, rng)
	ok, _, err := coherence.Coherent(context.Background(), exec, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("healthy system: %d ops, coherent = %v\n", exec.NumOps(), ok)
	fmt.Printf("  cache stats: %+v\n\n", healthy.Stats())

	// Now inject protocol faults until one produces an observable
	// violation (not every fault corrupts an observed value — that is
	// the paper's point about testing being necessarily dynamic).
	for _, kind := range mesi.FaultKinds() {
		for seed := int64(0); ; seed++ {
			if seed == 200 {
				fmt.Printf("%-16s: no observable violation in 200 runs (silent fault)\n", kind)
				break
			}
			runRng := rand.New(rand.NewSource(seed))
			sys := mesi.New(mesi.Config{
				Processors: 3,
				CacheSets:  2, CacheWays: 1,
				Faults: mesi.Once(kind, 2),
			})
			p := mesi.RandomProgram(runRng, 3, 10, 2, 0.45, 0.15)
			ex := mesi.Run(sys, p, runRng)
			if sys.Stats().FaultsFired == 0 {
				continue
			}
			ok, addr, err := coherence.Coherent(context.Background(), ex, nil)
			if err != nil {
				log.Fatal(err)
			}
			if !ok {
				fmt.Printf("%-16s: DETECTED at address %d (seed %d)\n", kind, addr, seed)
				break
			}
		}
	}
}
