// Onlinemonitor: the §8 deployment story. A memory system that reports
// its write serialization can be checked ONLINE in constant amortized
// time per operation — here the monitor rides along with the MESI
// simulator (whose atomic bus is the serialization) and pinpoints the
// exact operation at which an injected protocol fault becomes visible.
// At the end the recorded execution is re-checked offline through the
// coherence.Verifier facade to confirm both surfaces agree.
//
// Run with: go run ./examples/onlinemonitor
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"memverify/internal/coherence"
	"memverify/internal/memory"
	"memverify/internal/mesi"
	"memverify/internal/monitor"
)

// step runs one random operation on the system and feeds the observation
// to the monitor, returning the monitor verdict.
func step(s *mesi.System, mon *monitor.Monitor, rng *rand.Rand, cpu int, nextVal *memory.Value) error {
	a := memory.Addr(rng.Intn(2))
	switch rng.Intn(3) {
	case 0:
		v := s.Read(cpu, a)
		return mon.ObserveRead(cpu, a, v)
	case 1:
		*nextVal++
		s.Write(cpu, a, *nextVal)
		return mon.ObserveWrite(cpu, a, *nextVal)
	default:
		*nextVal++
		old := s.RMW(cpu, a, *nextVal)
		return mon.ObserveRMW(cpu, a, old, *nextVal)
	}
}

func run(fault *mesi.Faults, seed int64) (*memory.Execution, error) {
	rng := rand.New(rand.NewSource(seed))
	s := mesi.New(mesi.Config{Processors: 3, CacheSets: 1, CacheWays: 1, Faults: fault})
	s.SetInitial(0, 0)
	s.SetInitial(1, 0)
	mon := monitor.New(map[memory.Addr]memory.Value{0: 0, 1: 0})
	var nextVal memory.Value
	for i := 0; i < 120; i++ {
		if err := step(s, mon, rng, rng.Intn(3), &nextVal); err != nil {
			return nil, err
		}
	}
	return s.Execution(false), nil
}

func main() {
	// A healthy system monitors clean.
	exec, err := run(nil, 1)
	if err != nil {
		log.Fatalf("healthy system flagged: %v", err)
	}
	fmt.Println("healthy system: 120 operations monitored, no violation")

	// The recorded execution can be re-verified offline through the
	// facade — the NP-hard per-address search agrees with the online
	// monitor's constant-time verdict.
	rep, err := coherence.NewVerifier().Verify(context.Background(), exec)
	if err != nil {
		log.Fatalf("offline verification failed: %v", err)
	}
	fmt.Printf("offline cross-check: coherent=%v across %d addresses (%d states explored)\n\n",
		rep.Coherent(), len(rep.Addrs), rep.Stats.States)

	// Inject each fault kind and report where the monitor catches it.
	for _, kind := range mesi.FaultKinds() {
		caught := false
		for seed := int64(0); seed < 300; seed++ {
			_, err := run(mesi.Once(kind, 2), seed)
			if err != nil {
				fmt.Printf("%-16s: caught online — %v\n", kind, err)
				caught = true
				break
			}
		}
		if !caught {
			fmt.Printf("%-16s: no observable violation in 300 monitored runs\n", kind)
		}
	}
}
