// Quickstart: build an execution by hand, verify coherence per address,
// inspect the certificate, and see a violation get flagged.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"memverify/internal/coherence"
	"memverify/internal/memory"
)

func main() {
	// One Verifier handles everything; options (strategy, budget,
	// workers) would go into NewVerifier, but the defaults are fine here.
	v := coherence.NewVerifier()

	// Two processors sharing one location. P0 writes 1 then 2; P1 reads
	// 2 and then... let's start with a value P1 could legally observe.
	const x = memory.Addr(0)
	good := memory.NewExecution(
		memory.History{memory.W(x, 1), memory.W(x, 2)},
		memory.History{memory.R(x, 1), memory.R(x, 2)},
	).SetInitial(x, 0)

	res, err := v.Solve(context.Background(), good, x)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("execution 1 coherent: %v (algorithm: %s)\n", res.Coherent, res.Algorithm)
	fmt.Printf("certificate schedule: %s\n\n", res.Schedule.Format(good))

	// The same histories with P1's reads swapped: it would observe the
	// writes of P0 in the reverse of their program order — no coherent
	// schedule exists.
	bad := memory.NewExecution(
		memory.History{memory.W(x, 1), memory.W(x, 2)},
		memory.History{memory.R(x, 2), memory.R(x, 1)},
	).SetInitial(x, 0)

	res, err = v.Solve(context.Background(), bad, x)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("execution 2 coherent: %v\n", res.Coherent)

	// Whole executions (many addresses) are verified address by address;
	// Verify returns a per-address report.
	multi := memory.NewExecution(
		memory.History{memory.W(0, 1), memory.W(1, 5)},
		memory.History{memory.R(0, 1), memory.R(1, 99)}, // address 1 is broken
	).SetInitial(0, 0).SetInitial(1, 0)
	rep, err := v.Verify(context.Background(), multi)
	if err != nil {
		log.Fatal(err)
	}
	addr, _ := rep.FirstViolation()
	fmt.Printf("execution 3 coherent: %v (first violation at address %d)\n", rep.Coherent(), addr)
}
