// Writeorder: the §5.2 augmentation in practice. Verifying coherence is
// NP-Complete in general, but a memory system that reports the order in
// which writes were performed makes verification polynomial — this is
// the paper's practical recommendation (§8). The example generates large
// traces with and without the recorded write order and compares the
// verification cost; the general search runs under a state budget and is
// allowed to give up, which on large traces it regularly does.
//
// Run with: go run ./examples/writeorder
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"memverify/internal/coherence"
	"memverify/internal/solver"
	"memverify/internal/workload"
)

func main() {
	rng := rand.New(rand.NewSource(7))

	const budget = 2_000_000
	for _, n := range []int{1000, 4000, 16000} {
		exec, orders := workload.GenerateCoherent(rng, workload.GenConfig{
			Processors:    4,
			OpsPerProc:    n / 4,
			Addresses:     1,
			Values:        4,
			WriteFraction: 0.4,
			RMWFraction:   0.1,
		})

		start := time.Now()
		_, err := coherence.Solve(context.Background(), exec, 0, &coherence.Options{MaxStates: budget})
		general := time.Since(start)
		generalNote := fmt.Sprintf("%v", general)
		if err != nil {
			be, ok := solver.AsBudgetError(err)
			if !ok {
				log.Fatal(err)
			}
			generalNote = fmt.Sprintf("gave up after %d states (%v)", be.Stats.States, general)
		}

		start = time.Now()
		wres, err := coherence.SolveWithWriteOrder(context.Background(), exec, 0, orders[0], nil)
		if err != nil {
			log.Fatal(err)
		}
		augmented := time.Since(start)
		if !wres.Coherent {
			log.Fatal("write-order algorithm rejected the recorded order?!")
		}

		fmt.Printf("n=%6d ops: general search %-34s | write-order %10v\n", n, generalNote, augmented)
	}

	fmt.Println("\nthe write-order algorithm also catches violations:")
	exec, orders := workload.GenerateCoherent(rng, workload.GenConfig{
		Processors: 2, OpsPerProc: 10, Addresses: 1, Values: 3, WriteFraction: 0.5,
	})
	mut, err := workload.Inject(rng, exec, workload.ViolationPhantomValue)
	if err != nil {
		log.Fatal(err)
	}
	res, err := coherence.SolveWithWriteOrder(context.Background(), mut, 0, orders[0], nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("corrupted trace accepted: %v (a read observes a value nothing wrote)\n", res.Coherent)
}
