// Command reduce compiles a DIMACS CNF formula into a shared-memory
// verification instance, executing the paper's hardness constructions.
//
// Usage:
//
//	reduce [-to vmc|vmc-restricted|vmc-rmw|vmc-sync|vscc] [file.cnf]
//
// The resulting execution is written to standard output in the
// internal/trace format, ready for vmcheck:
//
//	reduce -to vmc q.cnf | vmcheck          # coherent iff q satisfiable
//	reduce -to vscc q.cnf | vmcheck -model sc
//
// vmc-restricted and vmc-rmw first convert the formula to 3SAT when a
// clause is wider than three literals.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"memverify/internal/memory"
	"memverify/internal/reduction"
	"memverify/internal/sat"
	"memverify/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("reduce", flag.ContinueOnError)
	fs.SetOutput(stderr)
	target := fs.String("to", "vmc", "construction: vmc (Fig 4.1), vmc-restricted (Fig 5.1), vmc-rmw (Fig 5.2), vmc-sync (Fig 6.1), vscc (Fig 6.2)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	in := stdin
	if fs.NArg() > 1 {
		fmt.Fprintln(stderr, "reduce: at most one input file")
		return 2
	}
	if fs.NArg() == 1 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			fmt.Fprintf(stderr, "reduce: %v\n", err)
			return 2
		}
		defer f.Close()
		in = f
	}
	q, err := sat.ReadDIMACS(in)
	if err != nil {
		fmt.Fprintf(stderr, "reduce: %v\n", err)
		return 2
	}

	var exec *memory.Execution
	switch *target {
	case "vmc":
		inst, err := reduction.SATToVMC(q)
		if err != nil {
			fmt.Fprintf(stderr, "reduce: %v\n", err)
			return 2
		}
		exec = inst.Exec
	case "vmc-restricted":
		if q.MaxClauseLen() > 3 {
			q = sat.ToThreeSAT(q)
		}
		inst, err := reduction.ThreeSATToVMCRestricted(q)
		if err != nil {
			fmt.Fprintf(stderr, "reduce: %v\n", err)
			return 2
		}
		exec = inst.Exec
	case "vmc-rmw":
		if q.MaxClauseLen() > 3 {
			q = sat.ToThreeSAT(q)
		}
		inst, err := reduction.ThreeSATToVMCRMW(q)
		if err != nil {
			fmt.Fprintf(stderr, "reduce: %v\n", err)
			return 2
		}
		exec = inst.Exec
	case "vmc-sync":
		inst, err := reduction.SATToVMCSynchronized(q)
		if err != nil {
			fmt.Fprintf(stderr, "reduce: %v\n", err)
			return 2
		}
		exec = inst.Exec
	case "vscc":
		inst, err := reduction.SATToVSCC(q)
		if err != nil {
			fmt.Fprintf(stderr, "reduce: %v\n", err)
			return 2
		}
		exec = inst.Exec
	default:
		fmt.Fprintf(stderr, "reduce: unknown construction %q\n", *target)
		return 2
	}
	if err := trace.Write(stdout, trace.New(exec)); err != nil {
		fmt.Fprintf(stderr, "reduce: %v\n", err)
		return 2
	}
	return 0
}
