package main

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"memverify/internal/coherence"
	"memverify/internal/consistency"
	"memverify/internal/trace"
)

func runReduce(t *testing.T, args []string, input string) (int, string) {
	t.Helper()
	var out, errBuf bytes.Buffer
	code := run(args, strings.NewReader(input), &out, &errBuf)
	return code, out.String()
}

const satCNF = "p cnf 2 2\n1 2 0\n-1 0\n"
const unsatCNF = "p cnf 1 2\n1 0\n-1 0\n"

func TestReduceVMCPipeline(t *testing.T) {
	for _, target := range []string{"vmc", "vmc-restricted", "vmc-rmw"} {
		target := target
		t.Run(target, func(t *testing.T) {
			code, out := runReduce(t, []string{"-to", target}, satCNF)
			if code != 0 {
				t.Fatalf("code=%d", code)
			}
			tr, err := trace.Read(strings.NewReader(out))
			if err != nil {
				t.Fatal(err)
			}
			res, err := coherence.Solve(context.Background(), tr.Exec, 0, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Coherent {
				t.Error("satisfiable formula produced incoherent instance")
			}

			code, out = runReduce(t, []string{"-to", target}, unsatCNF)
			if code != 0 {
				t.Fatalf("code=%d", code)
			}
			tr, err = trace.Read(strings.NewReader(out))
			if err != nil {
				t.Fatal(err)
			}
			res, err = coherence.Solve(context.Background(), tr.Exec, 0, nil)
			if err != nil {
				t.Fatal(err)
			}
			if res.Coherent {
				t.Error("unsatisfiable formula produced coherent instance")
			}
		})
	}
}

func TestReduceWideClauseConversion(t *testing.T) {
	wide := "p cnf 4 1\n1 2 3 4 0\n"
	code, out := runReduce(t, []string{"-to", "vmc-restricted"}, wide)
	if code != 0 {
		t.Fatalf("code=%d", code)
	}
	tr, err := trace.Read(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	res, err := coherence.Solve(context.Background(), tr.Exec, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Coherent {
		t.Error("wide satisfiable clause produced incoherent instance")
	}
}

func TestReduceVSCC(t *testing.T) {
	code, out := runReduce(t, []string{"-to", "vscc"}, satCNF)
	if code != 0 {
		t.Fatalf("code=%d", code)
	}
	tr, err := trace.Read(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	res, err := consistency.SolveVSCC(context.Background(), tr.Exec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Consistent {
		t.Error("satisfiable formula produced non-SC VSCC instance")
	}
}

func TestReduceSync(t *testing.T) {
	code, out := runReduce(t, []string{"-to", "vmc-sync"}, satCNF)
	if code != 0 {
		t.Fatalf("code=%d", code)
	}
	tr, err := trace.Read(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if d := consistency.CheckDiscipline(tr.Exec); d != consistency.FullySynchronized {
		t.Errorf("discipline = %v", d)
	}
}

func TestReduceErrors(t *testing.T) {
	if code, _ := runReduce(t, []string{"-to", "bogus"}, satCNF); code != 2 {
		t.Error("unknown target accepted")
	}
	if code, _ := runReduce(t, nil, "garbage"); code != 2 {
		t.Error("bad DIMACS accepted")
	}
	// VSCC rejects empty clauses.
	if code, _ := runReduce(t, []string{"-to", "vscc"}, "p cnf 1 1\n0\n"); code != 2 {
		t.Error("empty clause accepted by vscc")
	}
}
