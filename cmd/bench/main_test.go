package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestSuiteShape: the suite must cover the Figure 4.1/5.x families and
// carry the string-memo ablation entries the report's before/after
// depends on.
func TestSuiteShape(t *testing.T) {
	cases, err := buildSuite(false)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"fig41-sat-to-vmc/m=4":            false,
		"fig41-sat-to-vmc-stringmemo/m=4": false,
		"fig42-example":                   false,
		"fig51-restricted/m=2":            false,
		"fig52-rmw/m=3":                   false,
		"fig53-constant-processes/n=200":  false,
		"verify-parallel/parallel":        false,
	}
	quick := 0
	for _, c := range cases {
		if _, ok := want[c.name]; ok {
			want[c.name] = true
		}
		if c.quick {
			quick++
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("suite is missing %s", name)
		}
	}
	if quick == 0 {
		t.Error("no quick cases: the CI smoke run would measure nothing")
	}
}

// TestMeasureAndReport runs the one tiny fixture end-to-end and checks
// the emitted JSON parses back into a well-formed report.
func TestMeasureAndReport(t *testing.T) {
	cases, err := buildSuite(true)
	if err != nil {
		t.Fatal(err)
	}
	var tiny *benchCase
	for i := range cases {
		if cases[i].name == "fig42-example" {
			tiny = &cases[i]
		}
	}
	if tiny == nil {
		t.Fatal("fig42-example case missing")
	}
	e, err := measure(*tiny)
	if err != nil {
		t.Fatal(err)
	}
	if e.NsPerOp <= 0 || e.Iterations <= 0 {
		t.Fatalf("degenerate measurement: %+v", e)
	}
	if e.States <= 0 || e.StatesPerSec <= 0 {
		t.Fatalf("solve case lost its state count: %+v", e)
	}
	if e.P50Ns <= 0 || e.P90Ns < e.P50Ns || e.P99Ns < e.P90Ns {
		t.Fatalf("implausible latency quantiles: %+v", e)
	}

	out := filepath.Join(t.TempDir(), "bench.json")
	report := benchReport{Schema: benchSchema, Entries: []benchEntry{e}}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var back benchReport
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("emitted report is not valid JSON: %v", err)
	}
	if back.Schema != benchSchema || len(back.Entries) != 1 {
		t.Fatalf("report round-trip mangled: %+v", back)
	}
}

// TestFastpathCrossoverQuick runs the -fastpath mode at its quick size
// end to end and checks the crossover invariant the committed
// BENCH_PR9.json evidences at full size: the frontline decides both
// relay variants (with the right verdicts) while the ablated exact
// search exhausts its state budget on both.
func TestFastpathCrossoverQuick(t *testing.T) {
	out := filepath.Join(t.TempDir(), "fastpath.json")
	if err := runFastpath(out, true, func(string, ...any) {}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep fastpathReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("emitted report is not valid JSON: %v", err)
	}
	if rep.Schema != fastpathSchema || len(rep.Entries) != 4 {
		t.Fatalf("report shape: schema=%q entries=%d", rep.Schema, len(rep.Entries))
	}
	byMode := map[string][]fastpathEntry{}
	for _, e := range rep.Entries {
		byMode[e.Mode] = append(byMode[e.Mode], e)
	}
	for i, want := range []string{"coherent", "incoherent"} {
		if got := byMode["fastpath"][i]; got.Verdict != want || got.Rung != "fast" {
			t.Errorf("fastpath entry %d: verdict=%s rung=%s, want %s at fast", i, got.Verdict, got.Rung, want)
		}
	}
	for _, e := range byMode["exact-ablation"] {
		if !e.BudgetExceeded || e.Verdict != "unknown" {
			t.Errorf("ablation on %s answered %q in budget — the instance is too easy to evidence the crossover", e.Name, e.Verdict)
		}
		if e.States < e.MaxStates {
			t.Errorf("ablation on %s stopped at %d states under its %d budget", e.Name, e.States, e.MaxStates)
		}
	}
}
