// Command bench measures the coherence search's hot-path benchmarks —
// the Figure 4.1/5.x solves also found in the repository's bench_test.go
// — and emits a machine-readable JSON report (BENCH_PR5.json), so every
// perf change leaves a committed trajectory to compare against instead
// of numbers that evaporate in a terminal scrollback.
//
// Each entry records ns/op, bytes/op and allocs/op from a standard
// testing.Benchmark run, plus — for the search-based solves — the
// deterministic state count of one instrumented solve and the derived
// states/sec throughput. The *-stringmemo entries re-run the same
// instances with the packed uint64 memoization disabled (see DESIGN.md
// §5), so the report carries its own before/after for the packed state
// layer.
//
// With -fastpath the command instead measures the polynomial fast-path
// frontline's crossover (internal/coherence/fastpath.go): a relay-family
// trace (see workload.GenerateRelay) is verified once through
// solver.StrategyFast and once through the exact search with the
// frontline ablated (solver.WithoutFastPath) under a MaxStates budget of
// 20x the operation count. At the full size (~10^6 operations) the
// frontline decides both the coherent and the phantom-read variant in
// seconds while the ablated exact search exhausts its state budget —
// that crossover, committed as BENCH_PR9.json, is the evidence the
// README performance table cites.
//
// Usage:
//
//	go run ./cmd/bench                  # full suite -> BENCH_PR5.json
//	go run ./cmd/bench -quick           # small fixture subset (CI smoke)
//	go run ./cmd/bench -fastpath        # frontline crossover -> BENCH_PR9.json
//	go run ./cmd/bench -out report.json # alternate output path
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"memverify/internal/coherence"
	"memverify/internal/obs"
	"memverify/internal/memory"
	"memverify/internal/reduction"
	"memverify/internal/sat"
	"memverify/internal/solver"
	"memverify/internal/workload"
)

// benchSchema versions the report format for downstream tooling.
const benchSchema = "memverify-bench/v1"

// benchEntry is one measured benchmark in the report.
type benchEntry struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// States is the deterministic search-state count of one solve
	// (omitted for entries without a single instrumented solve).
	States int `json:"states,omitempty"`
	// StatesPerSec is States scaled by the measured ns/op.
	StatesPerSec float64 `json:"states_per_sec,omitempty"`
	// P50Ns/P90Ns/P99Ns are per-op latency quantiles over every
	// iteration testing.Benchmark ran, from an obs.Histogram fed inside
	// the loop — ns/op alone hides tail variance between iterations.
	P50Ns float64 `json:"p50_ns,omitempty"`
	P90Ns float64 `json:"p90_ns,omitempty"`
	P99Ns float64 `json:"p99_ns,omitempty"`
}

// benchReport is the emitted JSON document.
type benchReport struct {
	Schema    string       `json:"schema"`
	GoVersion string       `json:"go_version"`
	GOOS      string       `json:"goos"`
	GOARCH    string       `json:"goarch"`
	Quick     bool         `json:"quick"`
	Entries   []benchEntry `json:"benchmarks"`
}

// benchCase is a runnable benchmark: op executes one operation; states,
// when non-nil, runs one instrumented solve for the state count.
type benchCase struct {
	name   string
	quick  bool // included in -quick runs
	op     func() error
	states func() (int, error)
}

// benchFormula builds the same deterministic random formulas as
// bench_test.go, so the JSON entries and the go test -bench output
// measure identical instances.
func benchFormula(seed int64, m, n int) *sat.Formula {
	rng := rand.New(rand.NewSource(seed))
	f := &sat.Formula{NumVars: m}
	for j := 0; j < n; j++ {
		clen := 1 + rng.Intn(3)
		c := make(sat.Clause, 0, clen)
		for k := 0; k < clen; k++ {
			l := sat.Lit(1 + rng.Intn(m))
			if rng.Intn(2) == 0 {
				l = l.Neg()
			}
			c = append(c, l)
		}
		f.Clauses = append(f.Clauses, c)
	}
	return f
}

// solveCase builds a benchCase around coherence.Solve on a single-address
// instance.
func solveCase(name string, quick bool, exec *memory.Execution, addr memory.Addr, opts *coherence.Options) benchCase {
	return benchCase{
		name:  name,
		quick: quick,
		op: func() error {
			_, err := coherence.Solve(context.Background(), exec, addr, opts)
			return err
		},
		states: func() (int, error) {
			r, err := coherence.Solve(context.Background(), exec, addr, opts)
			if err != nil {
				return 0, err
			}
			return r.Stats.States, nil
		},
	}
}

// buildSuite assembles the benchmark cases. The reductions are the
// paper's NP-hardness constructions (Figures 4.1, 5.1, 5.2); the
// constant-process trace is the tractable Figure 5.3 row the memoized
// search is built for.
func buildSuite(quick bool) ([]benchCase, error) {
	var cases []benchCase
	stringMemo := solver.New(solver.WithoutPackedMemo())

	for _, m := range []int{2, 3, 4} {
		q := benchFormula(1, m, 2*m)
		inst, err := reduction.SATToVMC(q)
		if err != nil {
			return nil, err
		}
		cases = append(cases,
			solveCase(fmt.Sprintf("fig41-sat-to-vmc/m=%d", m), m <= 3, inst.Exec, inst.Addr, nil),
			solveCase(fmt.Sprintf("fig41-sat-to-vmc-stringmemo/m=%d", m), m <= 2, inst.Exec, inst.Addr, stringMemo),
		)
	}

	{
		q := sat.NewFormula(sat.Clause{1}) // Q = u, the paper's Figure 4.2 example
		inst, err := reduction.SATToVMC(q)
		if err != nil {
			return nil, err
		}
		cases = append(cases, solveCase("fig42-example", true, inst.Exec, inst.Addr, nil))
	}

	for _, m := range []int{1, 2} {
		q := benchFormula(2, m, 2*m)
		inst, err := reduction.ThreeSATToVMCRestricted(q)
		if err != nil {
			return nil, err
		}
		cases = append(cases, solveCase(fmt.Sprintf("fig51-restricted/m=%d", m), m <= 1, inst.Exec, inst.Addr, nil))
	}

	for _, m := range []int{2, 3} {
		q := benchFormula(3, m, 2*m)
		inst, err := reduction.ThreeSATToVMCRMW(q)
		if err != nil {
			return nil, err
		}
		cases = append(cases, solveCase(fmt.Sprintf("fig52-rmw/m=%d", m), m <= 2, inst.Exec, inst.Addr, nil))
	}

	for _, n := range []int{100, 200} {
		rng := rand.New(rand.NewSource(7))
		exec, _ := workload.GenerateCoherent(rng, workload.GenConfig{
			Processors: 3, OpsPerProc: n / 3, Addresses: 1, Values: 3, WriteFraction: 0.4,
		})
		cases = append(cases,
			solveCase(fmt.Sprintf("fig53-constant-processes/n=%d", n), n <= 100, exec, 0, nil),
			solveCase(fmt.Sprintf("fig53-constant-processes-stringmemo/n=%d", n), false, exec, 0, stringMemo),
		)
	}

	{
		rng := rand.New(rand.NewSource(20))
		exec, _ := workload.GenerateCoherent(rng, workload.GenConfig{
			Processors: 4, OpsPerProc: 400, Addresses: 8, Values: 4, WriteFraction: 0.4,
		})
		cases = append(cases,
			benchCase{name: "verify-parallel/serial", op: func() error {
				_, err := coherence.VerifyExecution(context.Background(), exec, nil)
				return err
			}},
			benchCase{name: "verify-parallel/parallel", op: func() error {
				_, err := coherence.VerifyExecutionParallel(context.Background(), exec, nil, 0)
				return err
			}},
		)
	}
	return cases, nil
}

// measure runs one case under testing.Benchmark and fills a report
// entry.
func measure(c benchCase) (benchEntry, error) {
	var opErr error
	lat := obs.NewHistogram()
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			t0 := time.Now()
			err := c.op()
			lat.ObserveSince(t0)
			if err != nil {
				opErr = err
				b.FailNow()
			}
		}
	})
	if opErr != nil {
		return benchEntry{}, fmt.Errorf("%s: %w", c.name, opErr)
	}
	e := benchEntry{
		Name:        c.name,
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
	// The histogram saw every calibration round, not just the final N —
	// more samples, same distribution.
	snap := lat.Snapshot()
	e.P50Ns = float64(snap.Quantile(0.50))
	e.P90Ns = float64(snap.Quantile(0.90))
	e.P99Ns = float64(snap.Quantile(0.99))
	if c.states != nil {
		n, err := c.states()
		if err != nil {
			return benchEntry{}, fmt.Errorf("%s: states probe: %w", c.name, err)
		}
		e.States = n
		if e.NsPerOp > 0 {
			e.StatesPerSec = float64(n) * 1e9 / e.NsPerOp
		}
	}
	return e, nil
}

// run executes the suite and writes the report; split from main for the
// package test.
func run(out string, quick bool, logf func(format string, args ...any)) error {
	cases, err := buildSuite(quick)
	if err != nil {
		return err
	}
	report := benchReport{
		Schema:    benchSchema,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Quick:     quick,
	}
	for _, c := range cases {
		if quick && !c.quick {
			continue
		}
		e, err := measure(c)
		if err != nil {
			return err
		}
		logf("%-44s %12.0f ns/op %8d allocs/op %14.0f states/s  p50 %.0fns p99 %.0fns\n",
			e.Name, e.NsPerOp, e.AllocsPerOp, e.StatesPerSec, e.P50Ns, e.P99Ns)
		report.Entries = append(report.Entries, e)
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	return os.WriteFile(out, data, 0o644)
}

// fastpathSchema versions the crossover report format.
const fastpathSchema = "memverify-fastpath/v1"

// fastpathEntry is one timed verification in the crossover report.
type fastpathEntry struct {
	Name string `json:"name"`
	// Mode is "fastpath" (solver.StrategyFast) or "exact-ablation"
	// (solver.WithoutFastPath under a MaxStates budget of 20x ops).
	Mode string `json:"mode"`
	// Ops is the operation count of the instance.
	Ops int `json:"ops"`
	// Verdict is coherent, incoherent, or unknown (ablation budget trip).
	Verdict   string `json:"verdict"`
	Rung      string `json:"rung,omitempty"`
	Algorithm string `json:"algorithm,omitempty"`
	// States is the number of search states charged (the frontline
	// charges its linear pass, the exact search its explored states).
	States     int     `json:"states"`
	DurationMS float64 `json:"duration_ms"`
	// MaxStates is the ablation's state budget (absent for fastpath).
	MaxStates int `json:"max_states,omitempty"`
	// BudgetExceeded marks an ablation run that ran out of budget
	// without an answer; Reason says which bound tripped.
	BudgetExceeded bool   `json:"budget_exceeded,omitempty"`
	Reason         string `json:"reason,omitempty"`
}

// fastpathReport is the JSON document -fastpath emits.
type fastpathReport struct {
	Schema    string          `json:"schema"`
	GoVersion string          `json:"go_version"`
	GOOS      string          `json:"goos"`
	GOARCH    string          `json:"goarch"`
	Quick     bool            `json:"quick"`
	Entries   []fastpathEntry `json:"benchmarks"`
}

// fastpathBudgetFactor scales the ablation's MaxStates budget from the
// instance's operation count. A complete search that needs more than
// 20x ops states on a trace the frontline decides in one linear pass
// has lost the crossover; letting it run unbounded instead would take
// hours at the full size.
const fastpathBudgetFactor = 20

// runFastpath measures the frontline crossover on the relay family and
// writes the report; split from main for the package test.
func runFastpath(out string, quick bool, logf func(format string, args ...any)) error {
	cfg := workload.RelayConfig{Processors: 4, Rounds: 13900, Decoys: 16}
	if quick {
		cfg.Rounds = 60
	}
	report := fastpathReport{
		Schema:    fastpathSchema,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Quick:     quick,
	}
	fast := coherence.NewVerifier(solver.WithStrategy(solver.StrategyFast))
	for _, phantom := range []bool{false, true} {
		c := cfg
		c.Phantom = phantom
		exec := workload.GenerateRelay(c)
		n := exec.NumOps()
		name := fmt.Sprintf("relay/m=%d/rounds=%d/decoys=%d/phantom=%v", c.Processors, c.Rounds, c.Decoys, phantom)

		t0 := time.Now()
		ar, err := fast.SolveAddr(context.Background(), exec, 0)
		if err != nil {
			return fmt.Errorf("%s: fastpath: %w", name, err)
		}
		e := fastpathEntry{
			Name:       name,
			Mode:       "fastpath",
			Ops:        n,
			Verdict:    ar.Verdict.String(),
			Rung:       ar.Rung.String(),
			States:     ar.Stats.States,
			DurationMS: float64(time.Since(t0)) / float64(time.Millisecond),
		}
		if ar.Result != nil {
			e.Algorithm = ar.Result.Algorithm
		}
		logf("%-48s %-15s %-10s %10d states %10.0f ms\n", e.Name, e.Mode, e.Verdict, e.States, e.DurationMS)
		report.Entries = append(report.Entries, e)

		ablated := coherence.NewVerifier(solver.WithBudget(
			solver.WithoutFastPath(), solver.WithMaxStates(fastpathBudgetFactor*n)))
		t0 = time.Now()
		ar, err = ablated.SolveAddr(context.Background(), exec, 0)
		e = fastpathEntry{
			Name:       name,
			Mode:       "exact-ablation",
			Ops:        n,
			MaxStates:  fastpathBudgetFactor * n,
			DurationMS: float64(time.Since(t0)) / float64(time.Millisecond),
		}
		switch {
		case err == nil:
			e.Verdict = ar.Verdict.String()
			e.States = ar.Stats.States
			if ar.Result != nil {
				e.Algorithm = ar.Result.Algorithm
			}
		default:
			be, ok := solver.AsBudgetError(err)
			if !ok {
				return fmt.Errorf("%s: ablation: %w", name, err)
			}
			e.Verdict = "unknown"
			e.States = be.Stats.States
			e.BudgetExceeded = true
			e.Reason = be.Reason.String()
		}
		logf("%-48s %-15s %-10s %10d states %10.0f ms\n", e.Name, e.Mode, e.Verdict, e.States, e.DurationMS)
		report.Entries = append(report.Entries, e)
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	return os.WriteFile(out, data, 0o644)
}

func main() {
	out := flag.String("out", "", "output path for the JSON report (default BENCH_PR5.json, or BENCH_PR9.json with -fastpath)")
	quick := flag.Bool("quick", false, "run only the small fixtures (CI smoke)")
	fastpath := flag.Bool("fastpath", false, "measure the fast-path frontline crossover instead of the solver suite")
	flag.Parse()
	logf := func(format string, args ...any) { fmt.Fprintf(os.Stderr, format, args...) }
	if *out == "" {
		*out = "BENCH_PR5.json"
		if *fastpath {
			*out = "BENCH_PR9.json"
		}
	}
	runFn := run
	if *fastpath {
		runFn = runFastpath
	}
	if err := runFn(*out, *quick, logf); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}
