// Command bench measures the coherence search's hot-path benchmarks —
// the Figure 4.1/5.x solves also found in the repository's bench_test.go
// — and emits a machine-readable JSON report (BENCH_PR5.json), so every
// perf change leaves a committed trajectory to compare against instead
// of numbers that evaporate in a terminal scrollback.
//
// Each entry records ns/op, bytes/op and allocs/op from a standard
// testing.Benchmark run, plus — for the search-based solves — the
// deterministic state count of one instrumented solve and the derived
// states/sec throughput. The *-stringmemo entries re-run the same
// instances with the packed uint64 memoization disabled (see DESIGN.md
// §5), so the report carries its own before/after for the packed state
// layer.
//
// With -fastpath the command instead measures the polynomial fast-path
// frontline's crossover (internal/coherence/fastpath.go): a relay-family
// trace (see workload.GenerateRelay) is verified once through
// solver.StrategyFast and once through the exact search with the
// frontline ablated (solver.WithoutFastPath) under a MaxStates budget of
// 20x the operation count. At the full size (~10^6 operations) the
// frontline decides both the coherent and the phantom-read variant in
// seconds while the ablated exact search exhausts its state budget —
// that crossover, committed as BENCH_PR9.json, is the evidence the
// README performance table cites.
//
// With -psearch the command measures the PR 10 pair instead: the
// work-stealing parallel search against the sequential search on one
// hard Figure 4.1 instance (median wall time over repeated runs, 4
// workers), and the vectorized SolveBatch driver against a loop of
// Verifier.Solve on a memverifyd-shaped burst of litmus-sized
// instances. The report (BENCH_PR10.json) carries the two headline
// ratios — "speedup" and "batch_throughput" — that CI validates.
//
// Usage:
//
//	go run ./cmd/bench                  # full suite -> BENCH_PR5.json
//	go run ./cmd/bench -quick           # small fixture subset (CI smoke)
//	go run ./cmd/bench -fastpath        # frontline crossover -> BENCH_PR9.json
//	go run ./cmd/bench -psearch         # parallel search + batch -> BENCH_PR10.json
//	go run ./cmd/bench -out report.json # alternate output path
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"memverify/internal/coherence"
	"memverify/internal/obs"
	"memverify/internal/memory"
	"memverify/internal/reduction"
	"memverify/internal/sat"
	"memverify/internal/solver"
	"memverify/internal/workload"
)

// benchSchema versions the report format for downstream tooling.
const benchSchema = "memverify-bench/v1"

// benchEntry is one measured benchmark in the report.
type benchEntry struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// States is the deterministic search-state count of one solve
	// (omitted for entries without a single instrumented solve).
	States int `json:"states,omitempty"`
	// StatesPerSec is States scaled by the measured ns/op.
	StatesPerSec float64 `json:"states_per_sec,omitempty"`
	// P50Ns/P90Ns/P99Ns are per-op latency quantiles over every
	// iteration testing.Benchmark ran, from an obs.Histogram fed inside
	// the loop — ns/op alone hides tail variance between iterations.
	P50Ns float64 `json:"p50_ns,omitempty"`
	P90Ns float64 `json:"p90_ns,omitempty"`
	P99Ns float64 `json:"p99_ns,omitempty"`
}

// benchReport is the emitted JSON document.
type benchReport struct {
	Schema    string       `json:"schema"`
	GoVersion string       `json:"go_version"`
	GOOS      string       `json:"goos"`
	GOARCH    string       `json:"goarch"`
	Quick     bool         `json:"quick"`
	Entries   []benchEntry `json:"benchmarks"`
}

// benchCase is a runnable benchmark: op executes one operation; states,
// when non-nil, runs one instrumented solve for the state count.
type benchCase struct {
	name   string
	quick  bool // included in -quick runs
	op     func() error
	states func() (int, error)
}

// benchFormula builds the same deterministic random formulas as
// bench_test.go, so the JSON entries and the go test -bench output
// measure identical instances.
func benchFormula(seed int64, m, n int) *sat.Formula {
	rng := rand.New(rand.NewSource(seed))
	f := &sat.Formula{NumVars: m}
	for j := 0; j < n; j++ {
		clen := 1 + rng.Intn(3)
		c := make(sat.Clause, 0, clen)
		for k := 0; k < clen; k++ {
			l := sat.Lit(1 + rng.Intn(m))
			if rng.Intn(2) == 0 {
				l = l.Neg()
			}
			c = append(c, l)
		}
		f.Clauses = append(f.Clauses, c)
	}
	return f
}

// solveCase builds a benchCase around coherence.Solve on a single-address
// instance.
func solveCase(name string, quick bool, exec *memory.Execution, addr memory.Addr, opts *coherence.Options) benchCase {
	return benchCase{
		name:  name,
		quick: quick,
		op: func() error {
			_, err := coherence.Solve(context.Background(), exec, addr, opts)
			return err
		},
		states: func() (int, error) {
			r, err := coherence.Solve(context.Background(), exec, addr, opts)
			if err != nil {
				return 0, err
			}
			return r.Stats.States, nil
		},
	}
}

// buildSuite assembles the benchmark cases. The reductions are the
// paper's NP-hardness constructions (Figures 4.1, 5.1, 5.2); the
// constant-process trace is the tractable Figure 5.3 row the memoized
// search is built for.
func buildSuite(quick bool) ([]benchCase, error) {
	var cases []benchCase
	stringMemo := solver.New(solver.WithoutPackedMemo())

	for _, m := range []int{2, 3, 4} {
		q := benchFormula(1, m, 2*m)
		inst, err := reduction.SATToVMC(q)
		if err != nil {
			return nil, err
		}
		cases = append(cases,
			solveCase(fmt.Sprintf("fig41-sat-to-vmc/m=%d", m), m <= 3, inst.Exec, inst.Addr, nil),
			solveCase(fmt.Sprintf("fig41-sat-to-vmc-stringmemo/m=%d", m), m <= 2, inst.Exec, inst.Addr, stringMemo),
		)
	}

	{
		q := sat.NewFormula(sat.Clause{1}) // Q = u, the paper's Figure 4.2 example
		inst, err := reduction.SATToVMC(q)
		if err != nil {
			return nil, err
		}
		cases = append(cases, solveCase("fig42-example", true, inst.Exec, inst.Addr, nil))
	}

	for _, m := range []int{1, 2} {
		q := benchFormula(2, m, 2*m)
		inst, err := reduction.ThreeSATToVMCRestricted(q)
		if err != nil {
			return nil, err
		}
		cases = append(cases, solveCase(fmt.Sprintf("fig51-restricted/m=%d", m), m <= 1, inst.Exec, inst.Addr, nil))
	}

	for _, m := range []int{2, 3} {
		q := benchFormula(3, m, 2*m)
		inst, err := reduction.ThreeSATToVMCRMW(q)
		if err != nil {
			return nil, err
		}
		cases = append(cases, solveCase(fmt.Sprintf("fig52-rmw/m=%d", m), m <= 2, inst.Exec, inst.Addr, nil))
	}

	for _, n := range []int{100, 200} {
		rng := rand.New(rand.NewSource(7))
		exec, _ := workload.GenerateCoherent(rng, workload.GenConfig{
			Processors: 3, OpsPerProc: n / 3, Addresses: 1, Values: 3, WriteFraction: 0.4,
		})
		cases = append(cases,
			solveCase(fmt.Sprintf("fig53-constant-processes/n=%d", n), n <= 100, exec, 0, nil),
			solveCase(fmt.Sprintf("fig53-constant-processes-stringmemo/n=%d", n), false, exec, 0, stringMemo),
		)
	}

	{
		rng := rand.New(rand.NewSource(20))
		exec, _ := workload.GenerateCoherent(rng, workload.GenConfig{
			Processors: 4, OpsPerProc: 400, Addresses: 8, Values: 4, WriteFraction: 0.4,
		})
		cases = append(cases,
			benchCase{name: "verify-parallel/serial", op: func() error {
				_, err := coherence.VerifyExecution(context.Background(), exec, nil)
				return err
			}},
			benchCase{name: "verify-parallel/parallel", op: func() error {
				_, err := coherence.VerifyExecutionParallel(context.Background(), exec, nil, 0)
				return err
			}},
		)
	}
	return cases, nil
}

// measure runs one case under testing.Benchmark and fills a report
// entry.
func measure(c benchCase) (benchEntry, error) {
	var opErr error
	lat := obs.NewHistogram()
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			t0 := time.Now()
			err := c.op()
			lat.ObserveSince(t0)
			if err != nil {
				opErr = err
				b.FailNow()
			}
		}
	})
	if opErr != nil {
		return benchEntry{}, fmt.Errorf("%s: %w", c.name, opErr)
	}
	e := benchEntry{
		Name:        c.name,
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
	// The histogram saw every calibration round, not just the final N —
	// more samples, same distribution.
	snap := lat.Snapshot()
	e.P50Ns = float64(snap.Quantile(0.50))
	e.P90Ns = float64(snap.Quantile(0.90))
	e.P99Ns = float64(snap.Quantile(0.99))
	if c.states != nil {
		n, err := c.states()
		if err != nil {
			return benchEntry{}, fmt.Errorf("%s: states probe: %w", c.name, err)
		}
		e.States = n
		if e.NsPerOp > 0 {
			e.StatesPerSec = float64(n) * 1e9 / e.NsPerOp
		}
	}
	return e, nil
}

// run executes the suite and writes the report; split from main for the
// package test.
func run(out string, quick bool, logf func(format string, args ...any)) error {
	cases, err := buildSuite(quick)
	if err != nil {
		return err
	}
	report := benchReport{
		Schema:    benchSchema,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Quick:     quick,
	}
	for _, c := range cases {
		if quick && !c.quick {
			continue
		}
		e, err := measure(c)
		if err != nil {
			return err
		}
		logf("%-44s %12.0f ns/op %8d allocs/op %14.0f states/s  p50 %.0fns p99 %.0fns\n",
			e.Name, e.NsPerOp, e.AllocsPerOp, e.StatesPerSec, e.P50Ns, e.P99Ns)
		report.Entries = append(report.Entries, e)
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	return os.WriteFile(out, data, 0o644)
}

// fastpathSchema versions the crossover report format.
const fastpathSchema = "memverify-fastpath/v1"

// fastpathEntry is one timed verification in the crossover report.
type fastpathEntry struct {
	Name string `json:"name"`
	// Mode is "fastpath" (solver.StrategyFast) or "exact-ablation"
	// (solver.WithoutFastPath under a MaxStates budget of 20x ops).
	Mode string `json:"mode"`
	// Ops is the operation count of the instance.
	Ops int `json:"ops"`
	// Verdict is coherent, incoherent, or unknown (ablation budget trip).
	Verdict   string `json:"verdict"`
	Rung      string `json:"rung,omitempty"`
	Algorithm string `json:"algorithm,omitempty"`
	// States is the number of search states charged (the frontline
	// charges its linear pass, the exact search its explored states).
	States     int     `json:"states"`
	DurationMS float64 `json:"duration_ms"`
	// MaxStates is the ablation's state budget (absent for fastpath).
	MaxStates int `json:"max_states,omitempty"`
	// BudgetExceeded marks an ablation run that ran out of budget
	// without an answer; Reason says which bound tripped.
	BudgetExceeded bool   `json:"budget_exceeded,omitempty"`
	Reason         string `json:"reason,omitempty"`
}

// fastpathReport is the JSON document -fastpath emits.
type fastpathReport struct {
	Schema    string          `json:"schema"`
	GoVersion string          `json:"go_version"`
	GOOS      string          `json:"goos"`
	GOARCH    string          `json:"goarch"`
	Quick     bool            `json:"quick"`
	Entries   []fastpathEntry `json:"benchmarks"`
}

// fastpathBudgetFactor scales the ablation's MaxStates budget from the
// instance's operation count. A complete search that needs more than
// 20x ops states on a trace the frontline decides in one linear pass
// has lost the crossover; letting it run unbounded instead would take
// hours at the full size.
const fastpathBudgetFactor = 20

// runFastpath measures the frontline crossover on the relay family and
// writes the report; split from main for the package test.
func runFastpath(out string, quick bool, logf func(format string, args ...any)) error {
	cfg := workload.RelayConfig{Processors: 4, Rounds: 13900, Decoys: 16}
	if quick {
		cfg.Rounds = 60
	}
	report := fastpathReport{
		Schema:    fastpathSchema,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Quick:     quick,
	}
	fast := coherence.NewVerifier(solver.WithStrategy(solver.StrategyFast))
	for _, phantom := range []bool{false, true} {
		c := cfg
		c.Phantom = phantom
		exec := workload.GenerateRelay(c)
		n := exec.NumOps()
		name := fmt.Sprintf("relay/m=%d/rounds=%d/decoys=%d/phantom=%v", c.Processors, c.Rounds, c.Decoys, phantom)

		t0 := time.Now()
		ar, err := fast.SolveAddr(context.Background(), exec, 0)
		if err != nil {
			return fmt.Errorf("%s: fastpath: %w", name, err)
		}
		e := fastpathEntry{
			Name:       name,
			Mode:       "fastpath",
			Ops:        n,
			Verdict:    ar.Verdict.String(),
			Rung:       ar.Rung.String(),
			States:     ar.Stats.States,
			DurationMS: float64(time.Since(t0)) / float64(time.Millisecond),
		}
		if ar.Result != nil {
			e.Algorithm = ar.Result.Algorithm
		}
		logf("%-48s %-15s %-10s %10d states %10.0f ms\n", e.Name, e.Mode, e.Verdict, e.States, e.DurationMS)
		report.Entries = append(report.Entries, e)

		ablated := coherence.NewVerifier(solver.WithBudget(
			solver.WithoutFastPath(), solver.WithMaxStates(fastpathBudgetFactor*n)))
		t0 = time.Now()
		ar, err = ablated.SolveAddr(context.Background(), exec, 0)
		e = fastpathEntry{
			Name:       name,
			Mode:       "exact-ablation",
			Ops:        n,
			MaxStates:  fastpathBudgetFactor * n,
			DurationMS: float64(time.Since(t0)) / float64(time.Millisecond),
		}
		switch {
		case err == nil:
			e.Verdict = ar.Verdict.String()
			e.States = ar.Stats.States
			if ar.Result != nil {
				e.Algorithm = ar.Result.Algorithm
			}
		default:
			be, ok := solver.AsBudgetError(err)
			if !ok {
				return fmt.Errorf("%s: ablation: %w", name, err)
			}
			e.Verdict = "unknown"
			e.States = be.Stats.States
			e.BudgetExceeded = true
			e.Reason = be.Reason.String()
		}
		logf("%-48s %-15s %-10s %10d states %10.0f ms\n", e.Name, e.Mode, e.Verdict, e.States, e.DurationMS)
		report.Entries = append(report.Entries, e)
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	return os.WriteFile(out, data, 0o644)
}

// psearchSchema versions the parallel-search/batch report format.
const psearchSchema = "memverify-psearch/v1"

// psearchWorkers is the team size of the parallel-search measurement
// (and the worker count the acceptance threshold is stated at).
const psearchWorkers = 4

// psearchEntry is one timed search mode in the report.
type psearchEntry struct {
	Name string `json:"name"`
	// Mode is "sequential" or "parallel".
	Mode    string `json:"mode"`
	Workers int    `json:"workers,omitempty"`
	Ops     int    `json:"ops"`
	Verdict string `json:"verdict"`
	// States is the state count of the median run's solve.
	States int `json:"states"`
	Runs   int `json:"runs"`
	// MedianMS is the headline statistic: wall time of the median run.
	MedianMS float64 `json:"median_ms"`
	MinMS    float64 `json:"min_ms"`
	MaxMS    float64 `json:"max_ms"`
}

// batchBenchEntry is one timed burst sweep (loop or batch) in the
// report.
type batchBenchEntry struct {
	Name string `json:"name"`
	// Mode is "loop" (Verifier.Solve per job) or "batch" (SolveBatch).
	Mode       string  `json:"mode"`
	Jobs       int     `json:"jobs"`
	Execs      int     `json:"execs"`
	Runs       int     `json:"runs"`
	MedianMS   float64 `json:"median_ms"`
	JobsPerSec float64 `json:"jobs_per_sec"`
}

// psearchReport is the JSON document -psearch emits. Speedup and
// BatchThroughput are the two headline ratios CI validates against the
// committed BENCH_PR10.json (>= 2.5 and >= 10 respectively; the -quick
// smoke run is held to a reduced >= 1.5 speedup bar).
type psearchReport struct {
	Schema    string `json:"schema"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	Quick     bool   `json:"quick"`
	// CPUs records runtime.NumCPU: on a single-CPU host the parallel
	// speedup is pure search-order hedging (see the runPsearch comment),
	// on a multi-core host core parallelism adds to it.
	CPUs            int               `json:"cpus"`
	Workers         int               `json:"workers"`
	Speedup         float64           `json:"speedup"`
	BatchThroughput float64           `json:"batch_throughput"`
	Search          []psearchEntry    `json:"parallel_search"`
	Batch           []batchBenchEntry `json:"batch"`
}

// psearchHardCase picks the Figure 4.1 instance the crossover is
// measured on. The full instance is benchFormula(55, 7, 14): a
// satisfiable 7-variable reduction whose sequential DFS commits to a
// large refuted subtree long before reaching the satisfying assignment,
// while the parallel frontier split drops a worker near the certificate
// almost immediately — the hedging effect the parallel search exists
// for. The quick instance (benchFormula(18, 6, 12)) has the same shape
// two sizes down, so the CI smoke run finishes in well under a second.
// Both were chosen by scanning the benchFormula seed space for
// instances with a stable, large sequential/parallel gap; the gap is a
// property of the DFS visit order, so it reproduces across hosts.
func psearchHardCase(quick bool) (string, *memory.Execution, memory.Addr, error) {
	seed, m := int64(55), 7
	if quick {
		seed, m = 18, 6
	}
	q := benchFormula(seed, m, 2*m)
	inst, err := reduction.SATToVMC(q)
	if err != nil {
		return "", nil, 0, err
	}
	return fmt.Sprintf("fig41-sat-to-vmc/m=%d/seed=%d", m, seed), inst.Exec, inst.Addr, nil
}

// timedSolve runs one solve and reports its wall time.
func timedSolve(exec *memory.Execution, addr memory.Addr, opts *solver.Options) (time.Duration, *coherence.Result, error) {
	t0 := time.Now()
	r, err := coherence.Solve(context.Background(), exec, addr, opts)
	return time.Since(t0), r, err
}

// medianOf returns the median duration and its index.
func medianOf(ds []time.Duration) (time.Duration, int) {
	idx := make([]int, len(ds))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return ds[idx[a]] < ds[idx[b]] })
	mid := idx[len(idx)/2]
	return ds[mid], mid
}

// measureSearchMode times runs repeated solves of the hard instance in
// one mode and fills a report entry from the median run.
func measureSearchMode(name, mode string, runs int, exec *memory.Execution, addr memory.Addr, opts *solver.Options, workers int) (psearchEntry, error) {
	durs := make([]time.Duration, runs)
	results := make([]*coherence.Result, runs)
	for i := 0; i < runs; i++ {
		d, r, err := timedSolve(exec, addr, opts)
		if err != nil {
			return psearchEntry{}, fmt.Errorf("%s/%s run %d: %w", name, mode, i, err)
		}
		durs[i], results[i] = d, r
	}
	med, mi := medianOf(durs)
	minD, maxD := durs[0], durs[0]
	for _, d := range durs[1:] {
		if d < minD {
			minD = d
		}
		if d > maxD {
			maxD = d
		}
	}
	verdict := "incoherent"
	if results[mi].Coherent {
		verdict = "coherent"
	}
	return psearchEntry{
		Name:     name,
		Mode:     mode,
		Workers:  workers,
		Ops:      exec.NumOps(),
		Verdict:  verdict,
		States:   results[mi].Stats.States,
		Runs:     runs,
		MedianMS: float64(med) / float64(time.Millisecond),
		MinMS:    float64(minD) / float64(time.Millisecond),
		MaxMS:    float64(maxD) / float64(time.Millisecond),
	}, nil
}

// batchBurst builds the memverifyd-shaped workload: execs independent
// multi-address traces, one job per address — the cache-miss burst
// SolveBatch exists for. UniqueWrites keeps every job on the Figure 5.3
// read-map row, so the ratio measures driver overhead (validation,
// projection, allocation) rather than search cost, which both modes
// share.
func batchBurst(execs, addrs, opsPerProc int) []coherence.BatchJob {
	var jobs []coherence.BatchJob
	for e := 0; e < execs; e++ {
		rng := rand.New(rand.NewSource(int64(100 + e)))
		exec, _ := workload.GenerateCoherent(rng, workload.GenConfig{
			Processors: 4, OpsPerProc: opsPerProc, Addresses: addrs, Values: 3, WriteFraction: 0.4,
			UniqueWrites: true,
		})
		for _, a := range exec.Addresses() {
			jobs = append(jobs, coherence.BatchJob{Exec: exec, Addr: a})
		}
	}
	return jobs
}

// measureBurst times runs sweeps of the burst in one mode ("loop" or
// "batch") and fills a report entry from the median sweep. Both modes
// run single-threaded (Config.Workers = 1): the ratio isolates per-job
// overhead, not scheduling.
func measureBurst(mode string, runs int, execs int, jobs []coherence.BatchJob) (batchBenchEntry, error) {
	v := coherence.NewVerifier()
	durs := make([]time.Duration, runs)
	for i := 0; i < runs; i++ {
		t0 := time.Now()
		switch mode {
		case "loop":
			for _, j := range jobs {
				if _, err := v.Solve(context.Background(), j.Exec, j.Addr); err != nil {
					return batchBenchEntry{}, fmt.Errorf("burst loop: %w", err)
				}
			}
		case "batch":
			for _, br := range v.SolveBatch(context.Background(), jobs) {
				if br.Err != nil {
					return batchBenchEntry{}, fmt.Errorf("burst batch: %w", br.Err)
				}
			}
		}
		durs[i] = time.Since(t0)
	}
	med, _ := medianOf(durs)
	return batchBenchEntry{
		Name:       fmt.Sprintf("burst/execs=%d/jobs=%d", execs, len(jobs)),
		Mode:       mode,
		Jobs:       len(jobs),
		Execs:      execs,
		Runs:       runs,
		MedianMS:   float64(med) / float64(time.Millisecond),
		JobsPerSec: float64(len(jobs)) * float64(time.Second) / float64(med),
	}, nil
}

// runPsearch measures the PR 10 pair — parallel search vs sequential on
// one hard instance, SolveBatch vs a Verifier.Solve loop on a burst —
// and writes the report; split from main for the package test.
//
// On a single-CPU host the parallel search cannot win by core count; it
// wins by hedging. The sequential DFS is committed to its first-branch
// order, and on adversarial instances it buries itself in an enormous
// refuted subtree before ever reaching the satisfying region. The
// frontier split hands each worker a different subtree up front, so
// some worker starts near the certificate and the win cancels the rest.
// The batch ratio likewise does not depend on cores: it comes from
// validating once per execution, projecting all of an execution's
// addresses in one pass, and reusing pooled scratch across jobs.
func runPsearch(out string, quick bool, logf func(format string, args ...any)) error {
	report := psearchReport{
		Schema:    psearchSchema,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Quick:     quick,
		CPUs:      runtime.NumCPU(),
		Workers:   psearchWorkers,
	}

	name, exec, addr, err := psearchHardCase(quick)
	if err != nil {
		return err
	}
	runs := 5
	if quick {
		runs = 3
	}
	seq, err := measureSearchMode(name, "sequential", runs, exec, addr, nil, 0)
	if err != nil {
		return err
	}
	logf("%-40s %-10s %10.2f ms median  %-10s %8d states\n", seq.Name, seq.Mode, seq.MedianMS, seq.Verdict, seq.States)
	par, err := measureSearchMode(name, "parallel", runs, exec, addr,
		solver.New(solver.WithParallelSearch(psearchWorkers)), psearchWorkers)
	if err != nil {
		return err
	}
	logf("%-40s %-10s %10.2f ms median  %-10s %8d states\n", par.Name, par.Mode, par.MedianMS, par.Verdict, par.States)
	if seq.Verdict != par.Verdict {
		return fmt.Errorf("%s: verdict mismatch: sequential=%s parallel=%s", name, seq.Verdict, par.Verdict)
	}
	report.Search = append(report.Search, seq, par)
	if par.MedianMS > 0 {
		report.Speedup = seq.MedianMS / par.MedianMS
	}
	logf("parallel-search speedup (%d workers, %d cpus): %.2fx\n", psearchWorkers, report.CPUs, report.Speedup)

	// Full shape: 4 traces of 8192 ops over 2048 addresses (~8k jobs).
	// Wide traces are where the loop's per-job Validate + full-trace
	// Project rescans hurt most; the batch pays them once per trace.
	execs, addrs, opsPerProc, burstRuns := 4, 2048, 2048, 3
	if quick {
		execs, addrs, opsPerProc = 4, 512, 512
	}
	jobs := batchBurst(execs, addrs, opsPerProc)
	loop, err := measureBurst("loop", burstRuns, execs, jobs)
	if err != nil {
		return err
	}
	logf("%-40s %-10s %10.2f ms median %12.0f jobs/s\n", loop.Name, loop.Mode, loop.MedianMS, loop.JobsPerSec)
	batch, err := measureBurst("batch", burstRuns, execs, jobs)
	if err != nil {
		return err
	}
	logf("%-40s %-10s %10.2f ms median %12.0f jobs/s\n", batch.Name, batch.Mode, batch.MedianMS, batch.JobsPerSec)
	report.Batch = append(report.Batch, loop, batch)
	if batch.MedianMS > 0 {
		report.BatchThroughput = loop.MedianMS / batch.MedianMS
	}
	logf("batch throughput vs loop: %.2fx\n", report.BatchThroughput)

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	return os.WriteFile(out, data, 0o644)
}

func main() {
	out := flag.String("out", "", "output path for the JSON report (default BENCH_PR5.json, BENCH_PR9.json with -fastpath, or BENCH_PR10.json with -psearch)")
	quick := flag.Bool("quick", false, "run only the small fixtures (CI smoke)")
	fastpath := flag.Bool("fastpath", false, "measure the fast-path frontline crossover instead of the solver suite")
	psearch := flag.Bool("psearch", false, "measure the parallel search and batch driver instead of the solver suite")
	flag.Parse()
	logf := func(format string, args ...any) { fmt.Fprintf(os.Stderr, format, args...) }
	if *out == "" {
		switch {
		case *fastpath:
			*out = "BENCH_PR9.json"
		case *psearch:
			*out = "BENCH_PR10.json"
		default:
			*out = "BENCH_PR5.json"
		}
	}
	runFn := run
	switch {
	case *fastpath:
		runFn = runFastpath
	case *psearch:
		runFn = runPsearch
	}
	if err := runFn(*out, *quick, logf); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}
