package main

import (
	"container/list"
	"sync"
)

// resultCache is a fixed-capacity LRU of decided verification responses
// keyed by cacheKey (execution fingerprint + verdict-relevant knobs).
// Only decided verdicts are stored: an undecided answer depends on the
// budget that produced it and is cheap to re-earn relative to the
// confusion a stale one causes. Stored responses are treated as
// immutable; get returns a copy so handlers can stamp per-request
// fields (Cached, ElapsedMS) without racing other readers.
type resultCache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List
	items map[string]*list.Element
}

type cacheEntry struct {
	key  string
	resp VerifyResponse
}

// newResultCache builds a cache holding up to max entries; max <= 0
// disables caching (every get misses, put is a no-op).
func newResultCache(max int) *resultCache {
	return &resultCache{max: max, ll: list.New(), items: make(map[string]*list.Element)}
}

func (c *resultCache) get(key string) (VerifyResponse, bool) {
	if c.max <= 0 {
		return VerifyResponse{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return VerifyResponse{}, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).resp, true
}

func (c *resultCache) put(key string, resp VerifyResponse) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).resp = resp
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, resp: resp})
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
