package main

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"mime"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"memverify/internal/memory"
	"memverify/internal/solver"
)

// maxBodyBytes bounds a request body; a trace bigger than this is
// rejected before parsing rather than buffered.
const maxBodyBytes = 32 << 20

// VerifyRequest is the body of POST /v1/verify. Two encodings are
// accepted: an application/json envelope of this shape, or a raw trace
// text body (any other content type) with the remaining fields supplied
// as URL query parameters of the same names.
type VerifyRequest struct {
	// Trace is the execution in the trace text format (see README).
	Trace string `json:"trace"`
	// Model picks the consistency model: sc, tso, pso, coherence
	// (default), lrc or vscc.
	Model string `json:"model,omitempty"`
	// Strategy picks the decision-procedure family: auto (default),
	// portfolio, resilient, exact or fast.
	Strategy string `json:"strategy,omitempty"`
	// MaxStates bounds the states explored per solve (0 = server
	// default; always clamped to the server's ceiling).
	MaxStates int `json:"max_states,omitempty"`
	// TimeoutMS bounds the wall-clock time per solve in milliseconds
	// (0 = server default; clamped to the server's ceiling).
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// UseOrder feeds the trace's order lines to the verifier: as a
	// search constraint for model sc, as ladder hints for the resilient
	// strategy.
	UseOrder bool `json:"use_order,omitempty"`
	// DeadlineMS is the caller's remaining budget for this request in
	// milliseconds (0 = none). The X-Deadline-Ms header carries the same
	// value and wins when both are present — it is visible before the
	// body, so the server can shed an unserviceable request without
	// parsing it.
	DeadlineMS int `json:"deadline_ms,omitempty"`
}

// AddrResult is the per-address slice of a coherence verdict.
type AddrResult struct {
	Addr      string `json:"addr"`
	Verdict   string `json:"verdict"` // coherent | incoherent | unknown
	Algorithm string `json:"algorithm,omitempty"`
	States    int    `json:"states"`
	// Workers is the effective parallel-search team size on this address
	// — the workers that actually engaged, not the -psearch ask. Present
	// only when the parallel search ran with more than one worker.
	Workers int `json:"workers,omitempty"`
}

// StatsJSON summarizes solver work in the response.
type StatsJSON struct {
	States     int     `json:"states"`
	MemoHits   int     `json:"memo_hits"`
	Branches   int     `json:"branches"`
	DurationMS float64 `json:"duration_ms"`
}

// VerifyResponse is the body of a successful POST /v1/verify. Verdict
// is "coherent"/"incoherent" for model coherence,
// "consistent"/"inconsistent" for the whole-execution models, and
// "undecided" when the budget ran out first (Reason says which bound
// tripped; HTTP status is still 200 — exhaustion is an answer about the
// budget, not a server failure).
type VerifyResponse struct {
	Verdict   string       `json:"verdict"`
	Model     string       `json:"model"`
	Strategy  string       `json:"strategy"`
	Algorithm string       `json:"algorithm,omitempty"`
	Violation string       `json:"violation,omitempty"`
	Reason    string       `json:"reason,omitempty"`
	Addrs     []AddrResult `json:"addrs,omitempty"`
	Stats     StatsJSON    `json:"stats"`
	Cached    bool         `json:"cached"`
	ElapsedMS float64      `json:"elapsed_ms"`
	// RequestID echoes the X-Request-ID header in the body, so a logged
	// response can be joined against the server's JSONL trace spans.
	RequestID string `json:"request_id,omitempty"`
	// Timings is the per-stage latency breakdown (milliseconds), present
	// only when the request asked for it with ?debug=timings.
	Timings map[string]float64 `json:"timings,omitempty"`
	// Degraded marks a brownout answer: the server was saturated (or
	// chaos forced the path) and served this request with a downgraded
	// strategy and shrunken budgets. DegradeReason says why.
	Degraded      bool   `json:"degraded,omitempty"`
	DegradeReason string `json:"degrade_reason,omitempty"`
}

// ErrorResponse is the body of every non-200 response.
type ErrorResponse struct {
	Error string `json:"error"`
}

// statsJSON converts solver stats to the wire shape.
func statsJSON(s solver.Stats) StatsJSON {
	return StatsJSON{
		States:     s.States,
		MemoHits:   s.MemoHits,
		Branches:   s.Branches,
		DurationMS: float64(s.Duration) / float64(time.Millisecond),
	}
}

// readVerifyRequest decodes the two request encodings.
func readVerifyRequest(r *http.Request) (*VerifyRequest, error) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes+1))
	if err != nil {
		return nil, fmt.Errorf("reading body: %w", err)
	}
	if len(body) > maxBodyBytes {
		return nil, fmt.Errorf("body exceeds %d bytes", maxBodyBytes)
	}
	ct, _, _ := mime.ParseMediaType(r.Header.Get("Content-Type"))
	var req *VerifyRequest
	if ct == "application/json" {
		req = new(VerifyRequest)
		if err := json.Unmarshal(body, req); err != nil {
			return nil, fmt.Errorf("decoding request: %w", err)
		}
	} else {
		q := r.URL.Query()
		req = &VerifyRequest{
			Trace:    string(body),
			Model:    q.Get("model"),
			Strategy: q.Get("strategy"),
		}
		if v := q.Get("max_states"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil {
				return nil, fmt.Errorf("bad max_states %q", v)
			}
			req.MaxStates = n
		}
		if v := q.Get("timeout_ms"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil {
				return nil, fmt.Errorf("bad timeout_ms %q", v)
			}
			req.TimeoutMS = n
		}
		if v := q.Get("use_order"); v != "" {
			b, err := strconv.ParseBool(v)
			if err != nil {
				return nil, fmt.Errorf("bad use_order %q", v)
			}
			req.UseOrder = b
		}
		if v := q.Get("deadline_ms"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil {
				return nil, fmt.Errorf("bad deadline_ms %q", v)
			}
			req.DeadlineMS = n
		}
	}
	// Validate after decoding so both encodings face the same rules. A
	// negative budget would read as "unlimited" downstream (budgetFor
	// only substitutes defaults for zero, and the solver treats
	// non-positive bounds as absent), silently bypassing the server
	// ceilings.
	if req.MaxStates < 0 {
		return nil, fmt.Errorf("bad max_states %d: must be >= 0", req.MaxStates)
	}
	if req.TimeoutMS < 0 {
		return nil, fmt.Errorf("bad timeout_ms %d: must be >= 0", req.TimeoutMS)
	}
	if req.DeadlineMS < 0 {
		return nil, fmt.Errorf("bad deadline_ms %d: must be >= 0", req.DeadlineMS)
	}
	return req, nil
}

// deadlineFrom reads the X-Deadline-Ms header — the caller's remaining
// budget in milliseconds — into an absolute deadline. Zero time means
// no deadline was propagated. A non-positive value is a valid header
// (the deadline already passed upstream); the caller answers it 504.
func deadlineFrom(r *http.Request) (time.Time, error) {
	h := strings.TrimSpace(r.Header.Get("X-Deadline-Ms"))
	if h == "" {
		return time.Time{}, nil
	}
	ms, err := strconv.ParseInt(h, 10, 64)
	if err != nil {
		return time.Time{}, fmt.Errorf("bad X-Deadline-Ms %q", h)
	}
	return time.Now().Add(time.Duration(ms) * time.Millisecond), nil
}

// cacheKey builds the result-cache key: the execution fingerprint plus
// every request knob that can change the verdict. Model and strategy
// are the parsed canonical spellings, so "", "coherence" and
// "COHERENCE" share one entry. When the request uses order lines the
// orders themselves join the key — the execution fingerprint covers
// histories/initial/final only, and two identical executions with
// different order lines can verify differently. Worker count is
// deliberately absent — parallelism never changes answers.
func cacheKey(fp, model, strategy string, maxStates int, timeout time.Duration, useOrder bool, orders map[memory.Addr][]memory.Ref) string {
	var b strings.Builder
	b.WriteString(fp)
	fmt.Fprintf(&b, "|m=%s|s=%s|n=%d|t=%d|o=%t", model, strategy, maxStates, timeout, useOrder)
	if useOrder {
		b.WriteString("|w=")
		b.WriteString(writeOrdersDigest(orders))
	}
	return b.String()
}

// writeOrdersDigest hashes per-address write orders deterministically:
// addresses sorted, refs in order.
func writeOrdersDigest(orders map[memory.Addr][]memory.Ref) string {
	addrs := make([]memory.Addr, 0, len(orders))
	for a := range orders {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	h := sha256.New()
	for _, a := range addrs {
		fmt.Fprintf(h, "a%d:", a)
		for _, r := range orders[a] {
			fmt.Fprintf(h, "%d.%d,", r.Proc, r.Index)
		}
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil))
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}
