package main

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"memverify/internal/obs"
)

// --- overload-control units -------------------------------------------

func TestRetryAfterSecs(t *testing.T) {
	const max = 30 * time.Second
	for name, tc := range map[string]struct {
		queued int
		rate   float64
		warm   bool
		max    time.Duration
		want   int
	}{
		"cold estimator answers the floor":   {queued: 100, rate: 0, warm: false, max: max, want: 1},
		"empty queue fast drain floors at 1": {queued: 0, rate: 1000, warm: true, max: max, want: 1},
		"queued work divided by drain rate":  {queued: 10, rate: 2, warm: true, max: max, want: 6}, // ceil(11/2)
		"clamped to the cap":                 {queued: 1000, rate: 1, warm: true, max: 5 * time.Second, want: 5},
		"zero rate while warm floors at 1":   {queued: 5, rate: 0, warm: true, max: max, want: 1},
	} {
		if got := retryAfterSecs(tc.queued, tc.rate, tc.warm, tc.max); got != tc.want {
			t.Errorf("%s: retryAfterSecs = %d, want %d", name, got, tc.want)
		}
	}
}

// TestDrainRateColdStart pins the estimator's cold-start contract: it
// reports not-warm (so Retry-After falls back to the 1s floor, never a
// division by a made-up rate) until the first window that actually saw
// a completion.
func TestDrainRateColdStart(t *testing.T) {
	d := &drainRate{}
	if _, warm := d.estimate(); warm {
		t.Fatal("fresh estimator claims to be warm")
	}
	// Idle windows must not warm it up (0/dt is a rate, but a lie).
	for i := 0; i < 5; i++ {
		d.tick(0, time.Second)
	}
	if _, warm := d.estimate(); warm {
		t.Fatal("idle windows warmed the estimator")
	}
	d.tick(8, time.Second)
	rate, warm := d.estimate()
	if !warm || rate != 8 {
		t.Fatalf("first productive window: rate=%v warm=%v, want 8, true", rate, warm)
	}
	// EWMA folds later windows in smoothly.
	d.tick(0, time.Second)
	if rate2, _ := d.estimate(); rate2 >= rate || rate2 <= 0 {
		t.Errorf("EWMA after idle window: %v (was %v)", rate2, rate)
	}
	var nilD *drainRate
	nilD.tick(1, time.Second)
	if _, warm := nilD.estimate(); warm {
		t.Error("nil drainRate claims warm")
	}
}

// TestBrownoutHysteresis walks the controller through its whole cycle:
// closed → open on a high queue-delay EWMA, half-open when the delay
// falls below the low-water mark, reopen on relapse, and closed only
// after hold consecutive calm observations.
func TestBrownoutHysteresis(t *testing.T) {
	b := newBrownout(100*time.Millisecond, 50*time.Millisecond, 3)
	if b.degrading() {
		t.Fatal("fresh controller degrading")
	}
	for i := 0; i < 20 && !b.degrading(); i++ {
		b.observe(300 * time.Millisecond)
	}
	if st, _, opens := b.snapshot(); st != brownOpen || opens != 1 {
		t.Fatalf("after sustained delay: state %v opens %d", st, opens)
	}
	// Falling below low moves to half-open but NOT straight to closed.
	for i := 0; i < 50; i++ {
		b.observe(0)
		if st, _, _ := b.snapshot(); st == brownHalfOpen {
			break
		}
	}
	if st, _, _ := b.snapshot(); st != brownHalfOpen {
		t.Fatalf("EWMA decayed but state %v, want half-open", st)
	}
	if b.degrading() {
		t.Error("half-open still degrading new requests")
	}
	// Relapse while half-open reopens immediately.
	for i := 0; i < 20; i++ {
		b.observe(400 * time.Millisecond)
	}
	if st, _, opens := b.snapshot(); st != brownOpen || opens != 2 {
		t.Fatalf("relapse: state %v opens %d, want open/2", st, opens)
	}
	// Full recovery: below low and hold consecutive calm observations.
	for i := 0; i < 200; i++ {
		b.observe(0)
		if st, _, _ := b.snapshot(); st == brownClosed {
			break
		}
	}
	if st, _, _ := b.snapshot(); st != brownClosed {
		t.Fatalf("never closed after sustained calm: %v", st)
	}
	// Disabled and nil controllers never degrade.
	if newBrownout(0, 0, 0) != nil {
		t.Error("high=0 did not disable the controller")
	}
	var nb *brownout
	nb.observe(time.Hour)
	if nb.degrading() {
		t.Error("nil controller degrading")
	}
}

// --- deadline propagation ---------------------------------------------

// postWithHeaders is postTrace with extra request headers.
func postWithHeaders(t *testing.T, ts *httptest.Server, headers map[string]string, body string) (*http.Response, *VerifyResponse) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/verify", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "text/plain")
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var vr VerifyResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&vr); err != nil {
			t.Fatalf("decoding response: %v", err)
		}
	}
	return resp, &vr
}

// TestDeadlineExpiredNeverSolves pins the tentpole guarantee: a request
// whose deadline expired while it sat in the queue is dropped at
// dequeue and never reaches a solver — counted by the solves register,
// which only increments when a worker actually starts a search.
func TestDeadlineExpiredNeverSolves(t *testing.T) {
	s, ts := newTestServer(t, serverConfig{workers: 1, maxInflight: 8, queueDepth: 8})
	// Expired on arrival: answered 504 before any queueing.
	resp, _ := postWithHeaders(t, ts, map[string]string{"X-Deadline-Ms": "-10"}, coherentTrace)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("expired-on-arrival status %d, want 504", resp.StatusCode)
	}
	if got := s.stats.Solves.Value(); got != 0 {
		t.Fatalf("expired-on-arrival request reached a solver: solves=%d", got)
	}

	// Expired in the queue: jam the single worker, let the deadline pass
	// while the shard waits, then release the worker. The shard must be
	// discarded at dequeue without a solver invocation.
	block := make(chan struct{})
	s.queue <- func() { <-block }
	time.Sleep(20 * time.Millisecond) // let the worker pick up the blocker

	done := make(chan *http.Response, 1)
	go func() {
		resp, _ := postWithHeaders(t, ts, map[string]string{"X-Deadline-Ms": "50"}, coherentTrace)
		done <- resp
	}()
	time.Sleep(150 * time.Millisecond) // deadline long gone; shard still queued
	close(block)
	resp = <-done
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("queued-past-deadline status %d, want 504", resp.StatusCode)
	}
	if got := s.stats.Solves.Value(); got != 0 {
		t.Fatalf("expired request burned a worker: solves=%d", got)
	}
	if got := s.stats.ExpiredDrops.Value(); got == 0 {
		t.Error("expired drop not counted")
	}
	if got := s.stats.DeadlineExpired.Value(); got != 2 {
		t.Errorf("deadline_expired counter %d, want 2", got)
	}
	// The service is fully live afterwards.
	resp2, vr := postTrace(t, ts, "", coherentTrace)
	if resp2.StatusCode != http.StatusOK || vr.Verdict != "coherent" {
		t.Errorf("service did not recover: %d %+v", resp2.StatusCode, vr)
	}
}

// TestDeadlineInEnvelope proves the JSON deadline_ms field works when
// the header is absent (and is validated like the other budgets).
func TestDeadlineInEnvelope(t *testing.T) {
	_, ts := newTestServer(t, serverConfig{workers: 2})
	body, _ := json.Marshal(VerifyRequest{Trace: coherentTrace, DeadlineMS: 5000})
	resp, err := http.Post(ts.URL+"/v1/verify", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("deadline_ms envelope: status %d", resp.StatusCode)
	}
	body, _ = json.Marshal(VerifyRequest{Trace: coherentTrace, DeadlineMS: -1})
	resp, err = http.Post(ts.URL+"/v1/verify", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("negative deadline_ms: status %d, want 400", resp.StatusCode)
	}
	resp, _ = postWithHeaders(t, ts, map[string]string{"X-Deadline-Ms": "banana"}, coherentTrace)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage X-Deadline-Ms: status %d, want 400", resp.StatusCode)
	}
}

// --- brownout degradation over HTTP -----------------------------------

// TestBrownoutDegradesRequests drives the controller open with real
// queue delay and proves a browned-out answer carries degraded: true, a
// reason, and the downgraded strategy.
func TestBrownoutDegradesRequests(t *testing.T) {
	s, ts := newTestServer(t, serverConfig{
		workers: 1, maxInflight: 8, queueDepth: 16,
		// Any measurable queue wait opens the controller immediately.
		brownoutHigh: time.Nanosecond, brownoutHold: 1000,
	})
	// Prime the queue-delay EWMA: the first request's shards observe a
	// nonzero wait at dequeue, opening the brownout.
	postTrace(t, ts, "", coherentTrace)
	if !s.brown.degrading() {
		t.Fatal("brownout did not open on observed queue delay")
	}
	resp, vr := postWithHeaders(t, ts, nil, incoherentTrace)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if !vr.Degraded || vr.DegradeReason == "" {
		t.Fatalf("browned-out answer not marked degraded: %+v", vr)
	}
	if !strings.Contains(vr.DegradeReason, "brownout") {
		t.Errorf("degrade reason %q does not name brownout", vr.DegradeReason)
	}
	if got := s.stats.Degraded.Value(); got == 0 {
		t.Error("degraded counter did not move")
	}
	// exact is downgraded to the resilient ladder under brownout.
	resp, vr = postWithHeaders(t, ts, nil, coherentTrace+"P2: R x 1\n")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	_, vr2 := postTrace(t, ts, "?strategy=exact", coherentTrace+"P2: R x 2\n")
	if vr2.Strategy != "resilient" {
		t.Errorf("degraded exact request ran strategy %q, want resilient", vr2.Strategy)
	}
	// The brownout state is visible on the operational surfaces.
	sresp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var stats map[string]any
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats["brownout_state"] != "open" {
		t.Errorf("stats brownout_state %v, want open", stats["brownout_state"])
	}
	if stats["degraded"].(float64) == 0 {
		t.Error("stats degraded count is zero")
	}
	dresp, err := http.Get(ts.URL + "/debug/requests")
	if err != nil {
		t.Fatal(err)
	}
	defer dresp.Body.Close()
	var dbg struct {
		Overload map[string]any `json:"overload"`
	}
	if err := json.NewDecoder(dresp.Body).Decode(&dbg); err != nil {
		t.Fatal(err)
	}
	if dbg.Overload["brownout_state"] != "open" {
		t.Errorf("debug overload block: %v", dbg.Overload)
	}
}

// --- panic recovery ----------------------------------------------------

// TestPanicRecoveryMiddleware injects a panicking handler and proves
// the middleware answers 500 JSON, counts it, and the server keeps
// serving.
func TestPanicRecoveryMiddleware(t *testing.T) {
	s, ts := newTestServer(t, serverConfig{workers: 2})
	s.mux.HandleFunc("/boom", func(w http.ResponseWriter, r *http.Request) {
		panic("kaboom")
	})
	resp, err := http.Get(ts.URL + "/boom")
	if err != nil {
		t.Fatalf("panicking handler killed the connection: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("status %d, want 500", resp.StatusCode)
	}
	var e ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || !strings.Contains(e.Error, "kaboom") {
		t.Errorf("500 body not the JSON error shape: %v %+v", err, e)
	}
	if got := s.stats.Panics.Value(); got != 1 {
		t.Errorf("panics counter %d, want 1", got)
	}
	// Still serviceable.
	r2, vr := postTrace(t, ts, "", coherentTrace)
	if r2.StatusCode != http.StatusOK || vr.Verdict != "coherent" {
		t.Errorf("server wounded after panic: %d %+v", r2.StatusCode, vr)
	}
}

// --- chaos injection over HTTP ----------------------------------------

func TestChaosHeaderFaults(t *testing.T) {
	s, ts := newTestServer(t, serverConfig{
		workers: 2, chaosEnabled: true, chaosSeed: 7, chaosSlow: 50 * time.Millisecond,
	})

	t.Run("500", func(t *testing.T) {
		resp, _ := postWithHeaders(t, ts, map[string]string{"X-Chaos-Fault": "500"}, coherentTrace)
		if resp.StatusCode != http.StatusInternalServerError {
			t.Errorf("status %d, want 500", resp.StatusCode)
		}
	})
	t.Run("drop", func(t *testing.T) {
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/verify", strings.NewReader(coherentTrace))
		req.Header.Set("X-Chaos-Fault", "drop")
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
			t.Error("dropped connection still answered")
		}
	})
	t.Run("panic", func(t *testing.T) {
		before := s.stats.WorkerPanics.Value()
		resp, _ := postWithHeaders(t, ts, map[string]string{"X-Chaos-Fault": "panic"}, coherentTrace)
		if resp.StatusCode != http.StatusInternalServerError {
			t.Errorf("status %d, want 500", resp.StatusCode)
		}
		if s.stats.WorkerPanics.Value() != before+1 {
			t.Error("worker panic not recovered/counted")
		}
		// The fleet survived its panic.
		r2, vr := postTrace(t, ts, "", coherentTrace)
		if r2.StatusCode != http.StatusOK || vr.Verdict != "coherent" {
			t.Errorf("fleet wounded after worker panic: %d %+v", r2.StatusCode, vr)
		}
	})
	t.Run("slow", func(t *testing.T) {
		start := time.Now()
		resp, vr := postWithHeaders(t, ts, map[string]string{"X-Chaos-Fault": "slow"}, incoherentTrace)
		if resp.StatusCode != http.StatusOK || vr.Verdict != "incoherent" {
			t.Fatalf("slow fault broke the verdict: %d %+v", resp.StatusCode, vr)
		}
		if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
			t.Errorf("slow fault only stalled %v, want >= 50ms", elapsed)
		}
	})
	t.Run("degrade", func(t *testing.T) {
		resp, vr := postWithHeaders(t, ts, map[string]string{"X-Chaos-Fault": "degrade"}, coherentTrace)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		if !vr.Degraded || !strings.Contains(vr.DegradeReason, "chaos") {
			t.Errorf("forced degrade not marked: %+v", vr)
		}
	})
	t.Run("unknown kind is 400", func(t *testing.T) {
		resp, _ := postWithHeaders(t, ts, map[string]string{"X-Chaos-Fault": "meteor"}, coherentTrace)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("status %d, want 400", resp.StatusCode)
		}
	})

	if counts := s.chaosInj.Counts(); counts["500"] == 0 || counts["panic"] == 0 {
		t.Errorf("injector bookkeeping missing faults: %v", counts)
	}
}

// TestChaosDisabledIgnoresHeader: without -chaos the fault header is
// inert — a stray header cannot take down a production server.
func TestChaosDisabledIgnoresHeader(t *testing.T) {
	_, ts := newTestServer(t, serverConfig{workers: 2})
	resp, vr := postWithHeaders(t, ts, map[string]string{"X-Chaos-Fault": "500"}, coherentTrace)
	if resp.StatusCode != http.StatusOK || vr.Verdict != "coherent" {
		t.Errorf("chaos header injected with chaos disabled: %d %+v", resp.StatusCode, vr)
	}
}

// --- shutdown under chaos ---------------------------------------------

// TestShutdownUnderChaos closes the server while seeded faults and slow
// solves are in flight: in-flight work drains, new requests get 503,
// the trace sink holds complete JSONL lines, and no goroutines leak.
func TestShutdownUnderChaos(t *testing.T) {
	baseline := runtime.NumGoroutine()

	traceFile := filepath.Join(t.TempDir(), "trace.jsonl")
	f, err := os.Create(traceFile)
	if err != nil {
		t.Fatal(err)
	}
	jl := obs.NewJSONL(f)
	s := newServer(serverConfig{
		workers: 2, maxInflight: 16, queueDepth: 32,
		chaosEnabled: true, chaosSeed: 3, chaosSlow: 80 * time.Millisecond,
		traceSink: jl,
	})
	ts := httptest.NewServer(s.Handler())

	faults := []string{"", "slow", "500", "panic", "", "slow", "degrade", ""}
	var wg sync.WaitGroup
	for i := 0; i < len(faults); i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/verify", strings.NewReader(coherentTrace))
			req.Header.Set("Content-Type", "text/plain")
			if faults[i] != "" {
				req.Header.Set("X-Chaos-Fault", faults[i])
			}
			resp, err := http.DefaultClient.Do(req)
			if err == nil {
				resp.Body.Close()
			}
		}()
	}
	time.Sleep(30 * time.Millisecond) // chaos in flight
	s.Close()                         // drain while faults are active
	wg.Wait()

	// New work after Close is refused with 503, not hung. (A trace the
	// cache has never seen: cached answers legitimately survive Close.)
	resp, err := http.Post(ts.URL+"/v1/verify", "text/plain", strings.NewReader(incoherentTrace))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-shutdown status %d, want 503", resp.StatusCode)
	}
	ts.Close()

	// The trace flushed complete JSONL: every line parses.
	jl.Close()
	f.Close()
	raw, err := os.Open(traceFile)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	lines := 0
	sc := bufio.NewScanner(raw)
	for sc.Scan() {
		var v map[string]any
		if err := json.Unmarshal(sc.Bytes(), &v); err != nil {
			t.Fatalf("trace line %d is not complete JSON: %v", lines+1, err)
		}
		lines++
	}
	if lines == 0 {
		t.Error("trace sink flushed no spans")
	}

	// No goroutine leak: the fleet, the drain ticker, and the HTTP
	// goroutines all wind down.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+3 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: baseline %d, now %d\n%s",
				baseline, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// --- chaos loadgen determinism ----------------------------------------

// TestLoadgenChaosDeterministic runs the chaos harness twice with the
// same seeds and proves the deterministic parts of the report agree:
// the assigned fault schedule and the shed/degraded counts. It also
// checks the availability bar the harness exists to defend.
func TestLoadgenChaosDeterministic(t *testing.T) {
	run := func(out string) *benchReport {
		t.Helper()
		// chaosSeed 2 assigns every fault kind at this size and rate, so
		// the degraded-equals-assigned check below is not vacuous.
		err := runLoadgen(
			serverConfig{workers: 4, maxInflight: 32, chaosEnabled: true, chaosSeed: 2,
				chaosSlow: 20 * time.Millisecond},
			loadgenConfig{requests: 80, conc: 4, out: out, seed: 1, chaos: true, chaosRate: 0.1},
		)
		if err != nil {
			t.Fatal(err)
		}
		raw, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		rep := &benchReport{}
		if err := json.Unmarshal(raw, rep); err != nil {
			t.Fatal(err)
		}
		return rep
	}
	dir := t.TempDir()
	a := run(filepath.Join(dir, "a.json"))
	b := run(filepath.Join(dir, "b.json"))

	if len(a.Chaos.Assigned) == 0 {
		t.Fatal("no faults assigned at 10% over 80 requests")
	}
	if !reflect.DeepEqual(a.Chaos.Assigned, b.Chaos.Assigned) {
		t.Errorf("assigned schedules differ: %v vs %v", a.Chaos.Assigned, b.Chaos.Assigned)
	}
	if a.Resilience.Shed != b.Resilience.Shed {
		t.Errorf("shed counts differ: %d vs %d", a.Resilience.Shed, b.Resilience.Shed)
	}
	if a.Resilience.Degraded != b.Resilience.Degraded {
		t.Errorf("degraded counts differ: %d vs %d", a.Resilience.Degraded, b.Resilience.Degraded)
	}
	if a.Resilience.Degraded != int64(a.Chaos.Assigned["degrade"]) {
		t.Errorf("degraded %d != assigned degrade faults %d (brownout should be off in the harness)",
			a.Resilience.Degraded, a.Chaos.Assigned["degrade"])
	}
	// Every assigned worker panic must actually fire: a fault landing on
	// a would-be cache hit bypasses the cache so the solve path takes it.
	if a.Resilience.WorkerPanics != int64(a.Chaos.Assigned["panic"]) {
		t.Errorf("worker panics recovered %d != assigned panic faults %d",
			a.Resilience.WorkerPanics, a.Chaos.Assigned["panic"])
	}
	for _, rep := range []*benchReport{a, b} {
		if rep.Schema != "memverifyd-loadgen/v3" {
			t.Errorf("schema %q", rep.Schema)
		}
		if rep.Resilience.Availability < 0.99 {
			t.Errorf("availability %.4f under chaos, want >= 0.99 (errors=%d rejected=%d)",
				rep.Resilience.Availability, rep.Errors, rep.Rejected)
		}
		if rep.Resilience.SuccessAfterRetry == 0 && rep.Chaos.Assigned["500"]+rep.Chaos.Assigned["panic"]+rep.Chaos.Assigned["drop"] > 0 {
			t.Error("retryable faults fired but no answer needed a retry")
		}
	}
}
