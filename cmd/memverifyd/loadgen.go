package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"memverify/internal/trace"
	"memverify/internal/workload"
)

// loadgenConfig parameterizes the built-in load generator.
type loadgenConfig struct {
	requests int
	conc     int
	out      string
	seed     int64
}

// loadgenPoolSize is the number of distinct traces the workload cycles
// through. Requests sample the pool uniformly, so with requests >>
// poolSize most arrivals repeat an earlier trace — exercising the
// fingerprint cache the way a CI fleet re-verifying the same regression
// traces would.
const loadgenPoolSize = 24

// benchReport is the BENCH_PR7.json schema. v2 adds the Server block:
// stage-latency quantiles scraped from the server's own /metrics after
// the run, so the report shows where time went inside the service, not
// just round-trip latency as seen by the clients.
type benchReport struct {
	Schema    string `json:"schema"` // "memverifyd-loadgen/v2"
	Timestamp string `json:"timestamp"`
	Config    struct {
		Requests int   `json:"requests"`
		Conc     int   `json:"concurrency"`
		Workers  int   `json:"workers"`
		Pool     int   `json:"trace_pool"`
		Seed     int64 `json:"seed"`
	} `json:"config"`
	Requests   int     `json:"completed"`
	Errors     int     `json:"errors"`
	Rejected   int     `json:"rejected"`
	DurationMS float64 `json:"duration_ms"`
	Throughput float64 `json:"throughput_rps"`
	Latency    struct {
		P50 float64 `json:"p50_ms"`
		P90 float64 `json:"p90_ms"`
		P99 float64 `json:"p99_ms"`
		Max float64 `json:"max_ms"`
	} `json:"latency"`
	Cache struct {
		Hits    int     `json:"hits"`
		Misses  int     `json:"misses"`
		HitRate float64 `json:"hit_rate"`
	} `json:"cache"`
	Verdicts map[string]int `json:"verdicts"`
	Server   struct {
		// Stages maps stage name (parse, cache, queue, solve, merge) to
		// its latency quantiles from memverifyd_stage_duration_seconds.
		Stages map[string]stageLatency `json:"stages"`
		// Request is the whole-request histogram
		// (memverifyd_request_duration_seconds) over the same run.
		Request stageLatency `json:"request"`
		// ScrapeSamples counts the parsed /metrics samples — nonzero
		// proves the exposition round-tripped through the strict parser.
		ScrapeSamples int `json:"scrape_samples"`
	} `json:"server"`
}

// stageLatency is one histogram summarized for the report.
type stageLatency struct {
	Count  int64   `json:"count"`
	P50MS  float64 `json:"p50_ms"`
	P90MS  float64 `json:"p90_ms"`
	P99MS  float64 `json:"p99_ms"`
	MeanMS float64 `json:"mean_ms"`
}

// summarize converts a scraped histogram (seconds) to report shape (ms).
func summarize(h *histScrape) stageLatency {
	const toMS = 1000
	return stageLatency{
		Count:  int64(h.count),
		P50MS:  h.quantile(0.50) * toMS,
		P90MS:  h.quantile(0.90) * toMS,
		P99MS:  h.quantile(0.99) * toMS,
		MeanMS: h.mean() * toMS,
	}
}

// scrapeServerMetrics pulls GET /metrics and fills rep.Server. An
// invalid exposition is a hard error: the loadgen doubles as a format
// check on the server's Prometheus writer.
func scrapeServerMetrics(client *http.Client, base string, rep *benchReport) error {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return fmt.Errorf("scraping /metrics: %w", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("reading /metrics: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("/metrics: HTTP %d", resp.StatusCode)
	}
	samples, err := parsePromText(string(body))
	if err != nil {
		return fmt.Errorf("invalid exposition: %w", err)
	}
	rep.Server.ScrapeSamples = len(samples)
	rep.Server.Stages = map[string]stageLatency{}
	for stage, h := range collectHistograms(samples, "memverifyd_stage_duration_seconds", "stage") {
		rep.Server.Stages[stage] = summarize(h)
	}
	if h, ok := collectHistograms(samples, "memverifyd_request_duration_seconds", "")[""]; ok {
		rep.Server.Request = summarize(h)
	}
	return nil
}

// loadgenTrace is one pool entry: serialized trace text plus the model
// it is sent against.
type loadgenTrace struct {
	text  string
	model string
}

// buildPool generates the workload: mostly multi-address coherent
// traces (verified per address, sharded), a third mutated with an
// injected violation, and a sprinkle of whole-execution SC requests.
func buildPool(seed int64) []loadgenTrace {
	rng := rand.New(rand.NewSource(seed))
	kinds := workload.ViolationKinds()
	pool := make([]loadgenTrace, 0, loadgenPoolSize)
	for i := 0; i < loadgenPoolSize; i++ {
		exec, _ := workload.GenerateCoherent(rng, workload.GenConfig{
			Processors: 3 + rng.Intn(2),
			OpsPerProc: 12 + rng.Intn(12),
			Addresses:  3 + rng.Intn(3),
			Values:     4,
		})
		if i%3 == 1 {
			if mut, err := workload.Inject(rng, exec, kinds[rng.Intn(len(kinds))]); err == nil {
				exec = mut
			}
		}
		var buf bytes.Buffer
		if err := trace.Write(&buf, trace.New(exec)); err != nil {
			continue
		}
		model := "coherence"
		if i%6 == 5 {
			model = "sc"
		}
		pool = append(pool, loadgenTrace{text: buf.String(), model: model})
	}
	return pool
}

// runLoadgen boots an in-process server on a loopback socket, drives
// cfg.requests against it over real HTTP from cfg.conc clients, and
// writes the benchReport to cfg.out.
func runLoadgen(scfg serverConfig, cfg loadgenConfig) error {
	srv := newServer(scfg)
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()

	pool := buildPool(cfg.seed)
	if len(pool) == 0 {
		return fmt.Errorf("loadgen: empty trace pool")
	}
	client := &http.Client{Timeout: 60 * time.Second}

	type sample struct {
		latency time.Duration
		verdict string
		status  int
		err     bool
	}
	samples := make([]sample, cfg.requests)
	var next int64
	var mu sync.Mutex
	take := func() int {
		mu.Lock()
		defer mu.Unlock()
		if next >= int64(cfg.requests) {
			return -1
		}
		next++
		return int(next - 1)
	}

	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < cfg.conc; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.seed + int64(c)*7919))
			for {
				i := take()
				if i < 0 {
					return
				}
				tc := pool[rng.Intn(len(pool))]
				t0 := time.Now()
				resp, err := client.Post(
					base+"/v1/verify?model="+tc.model,
					"text/plain", strings.NewReader(tc.text))
				if err != nil {
					samples[i] = sample{err: true}
					continue
				}
				var vr VerifyResponse
				derr := json.NewDecoder(resp.Body).Decode(&vr)
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				s := sample{latency: time.Since(t0), status: resp.StatusCode}
				switch {
				case resp.StatusCode == http.StatusTooManyRequests:
				case resp.StatusCode != http.StatusOK || derr != nil:
					s.err = true
				default:
					s.verdict = vr.Verdict
				}
				samples[i] = s
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := &benchReport{Schema: "memverifyd-loadgen/v2", Timestamp: start.UTC().Format(time.RFC3339)}
	rep.Config.Requests = cfg.requests
	rep.Config.Conc = cfg.conc
	rep.Config.Workers = scfg.withDefaults().workers
	rep.Config.Pool = len(pool)
	rep.Config.Seed = cfg.seed
	rep.Verdicts = map[string]int{}
	var lats []float64
	for _, s := range samples {
		switch {
		case s.err:
			rep.Errors++
		case s.status == http.StatusTooManyRequests:
			rep.Rejected++
		default:
			rep.Requests++
			rep.Verdicts[s.verdict]++
			lats = append(lats, float64(s.latency)/float64(time.Millisecond))
		}
	}
	sort.Float64s(lats)
	pct := func(p float64) float64 {
		if len(lats) == 0 {
			return 0
		}
		i := int(p * float64(len(lats)-1))
		return lats[i]
	}
	rep.Latency.P50 = pct(0.50)
	rep.Latency.P90 = pct(0.90)
	rep.Latency.P99 = pct(0.99)
	if len(lats) > 0 {
		rep.Latency.Max = lats[len(lats)-1]
	}
	rep.DurationMS = float64(elapsed) / float64(time.Millisecond)
	rep.Throughput = float64(rep.Requests) / elapsed.Seconds()
	rep.Cache.Hits = int(srv.stats.CacheHits.Value())
	rep.Cache.Misses = int(srv.stats.CacheMisses.Value())
	if total := rep.Cache.Hits + rep.Cache.Misses; total > 0 {
		rep.Cache.HitRate = float64(rep.Cache.Hits) / float64(total)
	}
	if err := scrapeServerMetrics(client, base, rep); err != nil {
		return err
	}

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(cfg.out, out, 0o644); err != nil {
		return err
	}
	fmt.Printf("loadgen: %d ok, %d rejected, %d errors in %.1fms — %.0f req/s, p50 %.2fms p99 %.2fms, cache hit-rate %.2f\n",
		rep.Requests, rep.Rejected, rep.Errors, rep.DurationMS, rep.Throughput,
		rep.Latency.P50, rep.Latency.P99, rep.Cache.HitRate)
	if solve, ok := rep.Server.Stages["solve"]; ok {
		fmt.Printf("loadgen: server-side solve p50 %.2fms p99 %.2fms over %d shard solves (%d metric samples scraped)\n",
			solve.P50MS, solve.P99MS, solve.Count, rep.Server.ScrapeSamples)
	}
	return nil
}
