package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"memverify/internal/chaos"
	"memverify/internal/client"
	"memverify/internal/trace"
	"memverify/internal/workload"
)

// loadgenConfig parameterizes the built-in load generator.
type loadgenConfig struct {
	requests int
	conc     int
	out      string
	seed     int64
	// chaos runs the chaos harness: a seeded fault schedule assigns at
	// most one fault to each request index up front (chaosRate of them),
	// carried to the server on the X-Chaos-Fault header of the first
	// attempt only — retries land on a healthy path, which is exactly
	// what the availability number measures.
	chaos     bool
	chaosRate float64
	// deadline, when set, is each request's client-side deadline; the
	// resilient client propagates it as X-Deadline-Ms.
	deadline time.Duration
}

// loadgenPoolSize is the number of distinct traces the workload cycles
// through. Requests sample the pool uniformly, so with requests >>
// poolSize most arrivals repeat an earlier trace — exercising the
// fingerprint cache the way a CI fleet re-verifying the same regression
// traces would.
const loadgenPoolSize = 24

// benchReport is the BENCH_PR8.json schema. v3 adds the Chaos block
// (the deterministic fault assignment and what the server logged
// injecting) and the Resilience block (availability through the
// retrying client, shed/degraded/panic counts) on top of v2's
// server-side stage quantiles.
type benchReport struct {
	Schema    string `json:"schema"` // "memverifyd-loadgen/v3"
	Timestamp string `json:"timestamp"`
	Config    struct {
		Requests int     `json:"requests"`
		Conc     int     `json:"concurrency"`
		Workers  int     `json:"workers"`
		Pool     int     `json:"trace_pool"`
		Seed     int64   `json:"seed"`
		Chaos    bool    `json:"chaos"`
		Rate     float64 `json:"chaos_rate"`
	} `json:"config"`
	Requests   int     `json:"completed"`
	Errors     int     `json:"errors"`
	Rejected   int     `json:"rejected"`
	DurationMS float64 `json:"duration_ms"`
	Throughput float64 `json:"throughput_rps"`
	Latency    struct {
		P50 float64 `json:"p50_ms"`
		P90 float64 `json:"p90_ms"`
		P99 float64 `json:"p99_ms"`
		Max float64 `json:"max_ms"`
	} `json:"latency"`
	Cache struct {
		Hits    int     `json:"hits"`
		Misses  int     `json:"misses"`
		HitRate float64 `json:"hit_rate"`
	} `json:"cache"`
	Verdicts map[string]int `json:"verdicts"`
	// Chaos reports the fault plan. Assigned is a pure function of the
	// seed (the BuildSchedule counts), so two same-seed runs must report
	// it identically; Injected is the server injector's bookkeeping.
	Chaos struct {
		Enabled  bool           `json:"enabled"`
		Seed     int64          `json:"seed"`
		Assigned map[string]int `json:"assigned"`
		Injected map[string]int `json:"injected,omitempty"`
	} `json:"chaos"`
	// Resilience is the robustness scorecard: availability as seen
	// through the retrying client, how many answers needed a retry, and
	// the server's shed/degraded/panic registers.
	Resilience struct {
		Availability      float64 `json:"availability"`
		Retries           int64   `json:"retries"`
		SuccessAfterRetry int64   `json:"success_after_retry"`
		BreakerOpens      int64   `json:"breaker_opens"`
		BreakerState      string  `json:"breaker_state"`
		Shed              int64   `json:"shed"`
		ShedRate          float64 `json:"shed_rate"`
		Degraded          int64   `json:"degraded"`
		DegradedRate      float64 `json:"degraded_rate"`
		DeadlineExpired   int64   `json:"deadline_expired"`
		WorkerPanics      int64   `json:"worker_panics_recovered"`
		HandlerPanics     int64   `json:"handler_panics_recovered"`
	} `json:"resilience"`
	Server struct {
		// Stages maps stage name (parse, cache, queue, solve, merge) to
		// its latency quantiles from memverifyd_stage_duration_seconds.
		Stages map[string]stageLatency `json:"stages"`
		// Request is the whole-request histogram
		// (memverifyd_request_duration_seconds) over the same run.
		Request stageLatency `json:"request"`
		// ScrapeSamples counts the parsed /metrics samples — nonzero
		// proves the exposition round-tripped through the strict parser.
		ScrapeSamples int `json:"scrape_samples"`
	} `json:"server"`
}

// stageLatency is one histogram summarized for the report.
type stageLatency struct {
	Count  int64   `json:"count"`
	P50MS  float64 `json:"p50_ms"`
	P90MS  float64 `json:"p90_ms"`
	P99MS  float64 `json:"p99_ms"`
	MeanMS float64 `json:"mean_ms"`
}

// summarize converts a scraped histogram (seconds) to report shape (ms).
func summarize(h *histScrape) stageLatency {
	const toMS = 1000
	return stageLatency{
		Count:  int64(h.count),
		P50MS:  h.quantile(0.50) * toMS,
		P90MS:  h.quantile(0.90) * toMS,
		P99MS:  h.quantile(0.99) * toMS,
		MeanMS: h.mean() * toMS,
	}
}

// scrapeServerMetrics pulls GET /metrics and fills rep.Server. An
// invalid exposition is a hard error: the loadgen doubles as a format
// check on the server's Prometheus writer.
func scrapeServerMetrics(httpc *http.Client, base string, rep *benchReport) error {
	resp, err := httpc.Get(base + "/metrics")
	if err != nil {
		return fmt.Errorf("scraping /metrics: %w", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("reading /metrics: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("/metrics: HTTP %d", resp.StatusCode)
	}
	samples, err := parsePromText(string(body))
	if err != nil {
		return fmt.Errorf("invalid exposition: %w", err)
	}
	rep.Server.ScrapeSamples = len(samples)
	rep.Server.Stages = map[string]stageLatency{}
	for stage, h := range collectHistograms(samples, "memverifyd_stage_duration_seconds", "stage") {
		rep.Server.Stages[stage] = summarize(h)
	}
	if h, ok := collectHistograms(samples, "memverifyd_request_duration_seconds", "")[""]; ok {
		rep.Server.Request = summarize(h)
	}
	return nil
}

// loadgenTrace is one pool entry: serialized trace text plus the model
// it is sent against.
type loadgenTrace struct {
	text  string
	model string
}

// buildPool generates the workload: mostly multi-address coherent
// traces (verified per address, sharded), a third mutated with an
// injected violation, and a sprinkle of whole-execution SC requests.
func buildPool(seed int64) []loadgenTrace {
	rng := rand.New(rand.NewSource(seed))
	kinds := workload.ViolationKinds()
	pool := make([]loadgenTrace, 0, loadgenPoolSize)
	for i := 0; i < loadgenPoolSize; i++ {
		exec, _ := workload.GenerateCoherent(rng, workload.GenConfig{
			Processors: 3 + rng.Intn(2),
			OpsPerProc: 12 + rng.Intn(12),
			Addresses:  3 + rng.Intn(3),
			Values:     4,
		})
		if i%3 == 1 {
			if mut, err := workload.Inject(rng, exec, kinds[rng.Intn(len(kinds))]); err == nil {
				exec = mut
			}
		}
		var buf bytes.Buffer
		if err := trace.Write(&buf, trace.New(exec)); err != nil {
			continue
		}
		model := "coherence"
		if i%6 == 5 {
			model = "sc"
		}
		pool = append(pool, loadgenTrace{text: buf.String(), model: model})
	}
	return pool
}

// runLoadgen boots an in-process server on a loopback socket, drives
// cfg.requests against it over real HTTP through the resilient client,
// and writes the benchReport to cfg.out. In chaos mode every request
// index has a pre-assigned fault (or none) from the seeded schedule;
// the client's per-attempt hook stamps the fault header on the first
// attempt only.
func runLoadgen(scfg serverConfig, cfg loadgenConfig) error {
	srv := newServer(scfg)
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()

	pool := buildPool(cfg.seed)
	if len(pool) == 0 {
		return fmt.Errorf("loadgen: empty trace pool")
	}

	var sched []chaos.Kind
	if cfg.chaos {
		sched = chaos.BuildSchedule(scfg.withDefaults().chaosSeed, cfg.requests, cfg.chaosRate, chaos.Kinds())
	}

	// One shared client: the retry budget and the breaker protect the
	// server from this process as a whole, which is what the harness
	// measures. The breaker threshold is set above any consecutive-fault
	// streak a few-percent schedule plausibly produces, so availability
	// reflects retries, not fail-fast short-circuits.
	cl := client.New(client.Config{
		Base:             base,
		BaseBackoff:      5 * time.Millisecond,
		MaxBackoff:       250 * time.Millisecond,
		BreakerThreshold: 8,
		Seed:             cfg.seed,
	})

	type sample struct {
		latency  time.Duration
		verdict  string
		status   int
		attempts int
		degraded bool
		err      bool
	}
	samples := make([]sample, cfg.requests)
	var next int64
	var mu sync.Mutex
	take := func() int {
		mu.Lock()
		defer mu.Unlock()
		if next >= int64(cfg.requests) {
			return -1
		}
		next++
		return int(next - 1)
	}

	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < cfg.conc; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.seed + int64(c)*7919))
			for {
				i := take()
				if i < 0 {
					return
				}
				tc := pool[rng.Intn(len(pool))]
				var hook func(int, *http.Request)
				if sched != nil && sched[i] != chaos.KindNone {
					fault := sched[i].String()
					hook = func(attempt int, hr *http.Request) {
						if attempt == 0 {
							hr.Header.Set("X-Chaos-Fault", fault)
						}
					}
				}
				ctx, cancel := context.Background(), context.CancelFunc(func() {})
				if cfg.deadline > 0 {
					ctx, cancel = context.WithTimeout(ctx, cfg.deadline)
				}
				t0 := time.Now()
				resp, err := cl.Do(ctx, &client.Request{Trace: tc.text, Model: tc.model}, hook)
				cancel()
				s := sample{latency: time.Since(t0)}
				if err != nil {
					s.err = true
					var he *client.HTTPError
					if errors.As(err, &he) {
						s.status = he.Status
					}
				} else {
					s.status = http.StatusOK
					s.verdict = resp.Verdict
					s.attempts = resp.Attempts
					s.degraded = resp.Degraded
				}
				samples[i] = s
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := &benchReport{Schema: "memverifyd-loadgen/v3", Timestamp: start.UTC().Format(time.RFC3339)}
	rep.Config.Requests = cfg.requests
	rep.Config.Conc = cfg.conc
	rep.Config.Workers = scfg.withDefaults().workers
	rep.Config.Pool = len(pool)
	rep.Config.Seed = cfg.seed
	rep.Config.Chaos = cfg.chaos
	rep.Config.Rate = cfg.chaosRate
	rep.Verdicts = map[string]int{}
	degradedSeen := 0
	var lats []float64
	for _, s := range samples {
		switch {
		case s.err && s.status == http.StatusTooManyRequests:
			rep.Rejected++
		case s.err:
			rep.Errors++
		default:
			rep.Requests++
			rep.Verdicts[s.verdict]++
			if s.degraded {
				degradedSeen++
			}
			lats = append(lats, float64(s.latency)/float64(time.Millisecond))
		}
	}
	sort.Float64s(lats)
	pct := func(p float64) float64 {
		if len(lats) == 0 {
			return 0
		}
		i := int(p * float64(len(lats)-1))
		return lats[i]
	}
	rep.Latency.P50 = pct(0.50)
	rep.Latency.P90 = pct(0.90)
	rep.Latency.P99 = pct(0.99)
	if len(lats) > 0 {
		rep.Latency.Max = lats[len(lats)-1]
	}
	rep.DurationMS = float64(elapsed) / float64(time.Millisecond)
	rep.Throughput = float64(rep.Requests) / elapsed.Seconds()
	rep.Cache.Hits = int(srv.stats.CacheHits.Value())
	rep.Cache.Misses = int(srv.stats.CacheMisses.Value())
	if total := rep.Cache.Hits + rep.Cache.Misses; total > 0 {
		rep.Cache.HitRate = float64(rep.Cache.Hits) / float64(total)
	}

	rep.Chaos.Enabled = cfg.chaos
	rep.Chaos.Seed = scfg.withDefaults().chaosSeed
	rep.Chaos.Assigned = chaos.CountSchedule(sched)
	if srv.chaosInj != nil {
		rep.Chaos.Injected = srv.chaosInj.Counts()
	}
	cst := cl.Stats()
	if cfg.requests > 0 {
		rep.Resilience.Availability = float64(rep.Requests) / float64(cfg.requests)
		rep.Resilience.ShedRate = float64(srv.stats.Shed.Value()) / float64(cfg.requests)
		rep.Resilience.DegradedRate = float64(degradedSeen) / float64(cfg.requests)
	}
	rep.Resilience.Retries = cst.Retries
	rep.Resilience.SuccessAfterRetry = cst.SuccessAfterRetry
	rep.Resilience.BreakerOpens = cst.BreakerOpens
	rep.Resilience.BreakerState = cst.BreakerState.String()
	rep.Resilience.Shed = srv.stats.Shed.Value()
	rep.Resilience.Degraded = srv.stats.Degraded.Value()
	rep.Resilience.DeadlineExpired = srv.stats.DeadlineExpired.Value()
	rep.Resilience.WorkerPanics = srv.stats.WorkerPanics.Value()
	rep.Resilience.HandlerPanics = srv.stats.Panics.Value()

	httpc := &http.Client{Timeout: 30 * time.Second}
	if err := scrapeServerMetrics(httpc, base, rep); err != nil {
		return err
	}

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(cfg.out, out, 0o644); err != nil {
		return err
	}
	fmt.Printf("loadgen: %d ok, %d rejected, %d errors in %.1fms — %.0f req/s, p50 %.2fms p99 %.2fms, cache hit-rate %.2f\n",
		rep.Requests, rep.Rejected, rep.Errors, rep.DurationMS, rep.Throughput,
		rep.Latency.P50, rep.Latency.P99, rep.Cache.HitRate)
	if cfg.chaos {
		fmt.Printf("loadgen: chaos seed %d — availability %.4f, %d retries (%d answers needed one), degraded %d, faults assigned %v\n",
			rep.Chaos.Seed, rep.Resilience.Availability, rep.Resilience.Retries,
			rep.Resilience.SuccessAfterRetry, rep.Resilience.Degraded, rep.Chaos.Assigned)
	}
	if solve, ok := rep.Server.Stages["solve"]; ok {
		fmt.Printf("loadgen: server-side solve p50 %.2fms p99 %.2fms over %d shard solves (%d metric samples scraped)\n",
			solve.P50MS, solve.P99MS, solve.Count, rep.Server.ScrapeSamples)
	}
	return nil
}
