package main

import (
	"context"
	"errors"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"memverify/internal/coherence"
	"memverify/internal/consistency"
	"memverify/internal/memory"
	"memverify/internal/obs"
	"memverify/internal/solver"
	"memverify/internal/trace"
)

// serverConfig is the operator-facing tuning surface of memverifyd.
type serverConfig struct {
	// workers is the size of the verification worker fleet — the only
	// goroutines that run solver searches.
	workers int
	// maxInflight bounds admitted requests; the admission semaphore is
	// the ingest queue, and an arrival beyond the bound is answered 429
	// + Retry-After instead of buffered.
	maxInflight int
	// queueDepth bounds the shard queue between handlers and the fleet.
	queueDepth int
	// cacheSize bounds the result cache (entries).
	cacheSize int
	// maxStatesCap / timeoutCap are server-side ceilings clamped onto
	// every request's budget (0 = no ceiling); maxStatesDefault /
	// timeoutDefault apply when a request names no budget.
	maxStatesCap     int
	timeoutCap       time.Duration
	maxStatesDefault int
	timeoutDefault   time.Duration
	// slowRequests bounds the slow-request table behind
	// GET /debug/requests (0 = default 32).
	slowRequests int
	// traceSink, when set, receives the JSONL span/event stream of every
	// request (the -trace flag). Spans carry the request id, so one
	// request's trace can be stitched out of the shared stream.
	traceSink obs.Sink
}

func (c serverConfig) withDefaults() serverConfig {
	if c.workers <= 0 {
		c.workers = 4
	}
	if c.maxInflight <= 0 {
		c.maxInflight = 64
	}
	if c.queueDepth <= 0 {
		c.queueDepth = 256
	}
	if c.cacheSize == 0 {
		c.cacheSize = 1024
	}
	return c
}

// serverStats are the service counters behind GET /v1/stats — each one
// a registry counter, so /metrics exposes the same registers without
// double bookkeeping.
type serverStats struct {
	Requests    obs.Counter
	Rejected    obs.Counter
	ParseErrors obs.Counter
	Unavailable obs.Counter
	Cancelled   obs.Counter
	CacheHits   obs.Counter
	CacheMisses obs.Counter
	Decided     obs.Counter
	Violations  obs.Counter
	Undecided   obs.Counter
}

// stageNames are the request stages with latency histograms: parse
// (body read + trace parse), cache (result-cache lookup), queue (shard
// wait for a fleet worker), solve (per-shard search compute), merge
// (per-address verdict aggregation). Queue and solve record one sample
// per shard; the others one per request.
var stageNames = []string{"parse", "cache", "queue", "solve", "merge"}

// Server is the memverifyd verification service: a bounded worker fleet
// draining a shard queue, an admission semaphore providing backpressure,
// a fingerprint-keyed result cache, and a telemetry surface — stage
// latency histograms and live gauges at /metrics, request traces with
// ids, and in-flight/slowest request tables at /debug/requests.
type Server struct {
	cfg      serverConfig
	queue    chan func()
	inflight chan struct{}
	cache    *resultCache
	stats    serverStats
	metrics  *obs.Metrics
	mux      *http.ServeMux
	stop     chan struct{}
	wg       sync.WaitGroup
	// closeMu orders enqueue against Close's final drain: enqueue holds
	// the read side across its shutdown check and queue send, so once
	// Close acquires the write side no shard can slip into the queue
	// after the drain that would have caught it.
	closeMu sync.RWMutex

	// Telemetry: the metric registry behind GET /metrics, per-stage
	// latency histograms, the whole-request histogram, the live
	// worker-busy count, the request table, and the optional tracer.
	reg         *obs.Registry
	stage       map[string]*obs.Histogram
	reqHist     *obs.Histogram
	workersBusy atomic.Int64
	reqs        *requestTable
	tracer      *obs.Tracer
}

// newServer builds the service and starts its worker fleet.
func newServer(cfg serverConfig) *Server {
	cfg = cfg.withDefaults()
	reg := obs.NewRegistry()
	s := &Server{
		cfg:      cfg,
		queue:    make(chan func(), cfg.queueDepth),
		inflight: make(chan struct{}, cfg.maxInflight),
		cache:    newResultCache(cfg.cacheSize),
		metrics:  obs.NewMetrics(),
		mux:      http.NewServeMux(),
		stop:     make(chan struct{}),
		reg:      reg,
		stage:    make(map[string]*obs.Histogram, len(stageNames)),
		reqs:     newRequestTable(cfg.slowRequests),
		tracer:   obs.NewTracer(cfg.traceSink),
	}

	// Registry: stage and request latency histograms, service counters,
	// and live saturation gauges. The counters double as the /v1/stats
	// payload, so both surfaces read the same registers.
	reg.SetHelp("memverifyd_stage_duration_seconds",
		"Request latency by stage: parse, cache, queue (per shard), solve (per shard), merge.")
	for _, st := range stageNames {
		s.stage[st] = reg.Histogram("memverifyd_stage_duration_seconds", obs.Label{Key: "stage", Value: st})
	}
	reg.SetHelp("memverifyd_request_duration_seconds", "End-to-end /v1/verify latency.")
	s.reqHist = reg.Histogram("memverifyd_request_duration_seconds")
	s.stats = serverStats{
		Requests:    reg.Counter("memverifyd_requests_total"),
		Rejected:    reg.Counter("memverifyd_rejected_total"),
		ParseErrors: reg.Counter("memverifyd_parse_errors_total"),
		Unavailable: reg.Counter("memverifyd_unavailable_total"),
		Cancelled:   reg.Counter("memverifyd_cancelled_total"),
		CacheHits:   reg.Counter("memverifyd_cache_hits_total"),
		CacheMisses: reg.Counter("memverifyd_cache_misses_total"),
		Decided:     reg.Counter("memverifyd_decided_total"),
		Violations:  reg.Counter("memverifyd_violations_total"),
		Undecided:   reg.Counter("memverifyd_undecided_total"),
	}
	reg.SetHelp("memverifyd_queue_depth", "Shards waiting in the fleet queue.")
	reg.GaugeFunc("memverifyd_queue_depth", func() float64 { return float64(len(s.queue)) })
	reg.SetHelp("memverifyd_in_flight", "Admitted requests not yet answered.")
	reg.GaugeFunc("memverifyd_in_flight", func() float64 { return float64(len(s.inflight)) })
	reg.SetHelp("memverifyd_workers_busy", "Fleet workers currently running a shard.")
	reg.GaugeFunc("memverifyd_workers_busy", func() float64 { return float64(s.workersBusy.Load()) })
	reg.SetHelp("memverifyd_worker_utilization", "workers_busy / workers, 0..1.")
	reg.GaugeFunc("memverifyd_worker_utilization", func() float64 {
		return float64(s.workersBusy.Load()) / float64(cfg.workers)
	})
	reg.SetHelp("memverifyd_workers", "Configured fleet size.")
	reg.Gauge("memverifyd_workers").Set(int64(cfg.workers))
	reg.SetHelp("memverifyd_cache_len", "Result-cache entries.")
	reg.GaugeFunc("memverifyd_cache_len", func() float64 { return float64(s.cache.len()) })

	s.mux.HandleFunc("/v1/verify", s.handleVerify)
	s.mux.HandleFunc("/v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	s.mux.Handle("/metrics", obs.PromHandler(reg))
	s.mux.HandleFunc("/debug/requests", s.handleDebugRequests)
	s.mux.Handle("/debug/", obs.DebugHandler(s.metrics))
	for i := 0; i < cfg.workers; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for {
				select {
				case fn := <-s.queue:
					s.runShard(fn)
				case <-s.stop:
					return
				}
			}
		}()
	}
	return s
}

// runShard executes one queued shard, tracking fleet utilization.
func (s *Server) runShard(fn func()) {
	s.workersBusy.Add(1)
	fn()
	s.workersBusy.Add(-1)
}

// Close stops the worker fleet (idempotent is not needed; call once).
// Shards that slipped into the queue while shutdown raced an enqueue
// are run inline afterwards, so no handler is left waiting on work the
// dead fleet will never do.
func (s *Server) Close() {
	close(s.stop)
	s.wg.Wait()
	// In-flight enqueues finish promptly now that stop is closed; taking
	// the write lock waits them out, so the drain below sees every shard
	// that made it into the queue.
	s.closeMu.Lock()
	defer s.closeMu.Unlock()
	for {
		select {
		case fn := <-s.queue:
			s.runShard(fn)
		default:
			return
		}
	}
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// errShuttingDown marks enqueue failures caused by server shutdown, so
// handlers can answer 503 instead of blaming the client.
var errShuttingDown = errors.New("server shutting down")

// enqueue hands one shard to the fleet, giving up when the request is
// gone. Handlers block here when the queue is full — which is safe and
// bounded: only admitted requests reach this point and workers never
// enqueue, so there is no cycle to deadlock.
func (s *Server) enqueue(ctx context.Context, fn func()) error {
	s.closeMu.RLock()
	defer s.closeMu.RUnlock()
	// Check shutdown first, on its own: in the combined select below a
	// buffered queue send and the closed stop channel are both ready and
	// select picks between them at random, which would strand work in a
	// queue the dead fleet never drains.
	select {
	case <-s.stop:
		return errShuttingDown
	default:
	}
	select {
	case s.queue <- fn:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-s.stop:
		return errShuttingDown
	}
}

// enqueueTimed is enqueue plus stage telemetry: the shard's wait from
// enqueue to execution is recorded as queue time, the body itself as
// solve time — per shard, into both the request's timings and the
// stage histograms.
func (s *Server) enqueueTimed(ctx context.Context, tm *reqTimings, body func()) error {
	enqueued := time.Now()
	return s.enqueue(ctx, func() {
		wait := time.Since(enqueued)
		tm.addQueue(wait)
		s.stage["queue"].Observe(int64(wait))
		t0 := time.Now()
		body()
		d := time.Since(t0)
		tm.addSolve(d)
		s.stage["solve"].Observe(int64(d))
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "workers": s.cfg.workers})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"requests":     s.stats.Requests.Value(),
		"rejected":     s.stats.Rejected.Value(),
		"parse_errors": s.stats.ParseErrors.Value(),
		"unavailable":  s.stats.Unavailable.Value(),
		"cancelled":    s.stats.Cancelled.Value(),
		"cache_hits":   s.stats.CacheHits.Value(),
		"cache_misses": s.stats.CacheMisses.Value(),
		"cache_len":    s.cache.len(),
		"decided":      s.stats.Decided.Value(),
		"violations":   s.stats.Violations.Value(),
		"undecided":    s.stats.Undecided.Value(),
		"queue_depth":  len(s.queue),
		"in_flight":    len(s.inflight),
		"workers_busy": s.workersBusy.Load(),
		"workers":      s.cfg.workers,
	})
}

// handleDebugRequests serves GET /debug/requests: the in-flight request
// table (id, age, current stage) and the slowest completed requests
// with their stage breakdowns.
func (s *Server) handleDebugRequests(w http.ResponseWriter, r *http.Request) {
	inflight, slowest := s.reqs.snapshot()
	writeJSON(w, http.StatusOK, map[string]any{
		"in_flight": inflight,
		"slowest":   slowest,
	})
}

// handleVerify is POST /v1/verify.
func (s *Server) handleVerify(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	s.stats.Requests.Inc()
	// Admission: the semaphore is the bounded ingest queue. A full
	// server answers immediately with backpressure instead of buffering
	// unbounded work.
	select {
	case s.inflight <- struct{}{}:
	default:
		s.stats.Rejected.Inc()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "server at capacity (%d in flight)", s.cfg.maxInflight)
		return
	}
	defer func() { <-s.inflight }()

	// Request identity: echoed in the response header, stamped onto
	// every obs span begun under this request's context, and the key of
	// the in-flight table entry.
	reqID := newRequestID(r)
	w.Header().Set("X-Request-ID", reqID)
	live := s.reqs.start(reqID, r.RemoteAddr)
	start := time.Now()
	tm := &reqTimings{}
	outcome := "error"
	defer func() {
		total := time.Since(start)
		s.reqHist.Observe(int64(total))
		// Per-request stages fold into the histograms once, at the end;
		// a stage that never ran (merge on a cache hit) stays out.
		for st, ns := range map[string]int64{
			"parse": tm.parse.Load(), "cache": tm.cache.Load(), "merge": tm.merge.Load(),
		} {
			if ns > 0 {
				s.stage[st].Observe(ns)
			}
		}
		s.reqs.finish(live, outcome, tm.debugMap(total))
	}()

	ctx := obs.WithRequestID(r.Context(), reqID)
	ctx = obs.With(ctx, &obs.Observer{Tracer: s.tracer, Metrics: s.metrics})
	span, ctx := s.tracer.Begin(ctx, "request")
	defer func() { span.End(outcome, 0) }()

	t0 := time.Now()
	req, err := readVerifyRequest(r)
	tm.addParse(time.Since(t0))
	if err != nil {
		s.stats.ParseErrors.Inc()
		outcome = "parse_error"
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	resp, status, err := s.verify(ctx, req, tm, live)
	if r.Context().Err() != nil {
		// Client went away; the searches were cancelled through the
		// context (a cancelled search reports as an undecided budget
		// trip, so check the context before interpreting the outcome).
		// Nothing to write.
		s.stats.Cancelled.Inc()
		outcome = "cancelled"
		return
	}
	if err != nil {
		// 5xx means the server could not take the work (shutdown); only
		// 4xx counts against the client as a parse/validation error.
		if status >= http.StatusInternalServerError {
			s.stats.Unavailable.Inc()
			outcome = "unavailable"
		} else {
			s.stats.ParseErrors.Inc()
			outcome = "parse_error"
		}
		writeError(w, status, "%v", err)
		return
	}
	resp.ElapsedMS = float64(time.Since(start)) / float64(time.Millisecond)
	resp.RequestID = reqID
	if r.URL.Query().Get("debug") == "timings" {
		resp.Timings = tm.debugMap(time.Since(start))
	}
	outcome = resp.Verdict
	switch resp.Verdict {
	case "undecided":
		s.stats.Undecided.Inc()
	case "incoherent", "inconsistent":
		s.stats.Decided.Inc()
		s.stats.Violations.Inc()
	default:
		s.stats.Decided.Inc()
	}
	writeJSON(w, http.StatusOK, resp)
}

// budgetFor clamps the request budget to the server ceilings.
func (s *Server) budgetFor(req *VerifyRequest) (int, time.Duration) {
	maxStates := req.MaxStates
	if maxStates == 0 {
		maxStates = s.cfg.maxStatesDefault
	}
	if cap := s.cfg.maxStatesCap; cap > 0 && (maxStates == 0 || maxStates > cap) {
		maxStates = cap
	}
	timeout := time.Duration(req.TimeoutMS) * time.Millisecond
	if timeout == 0 {
		timeout = s.cfg.timeoutDefault
	}
	if cap := s.cfg.timeoutCap; cap > 0 && (timeout == 0 || timeout > cap) {
		timeout = cap
	}
	return maxStates, timeout
}

// verify parses, consults the cache, runs the verification on the
// fleet, and caches decided answers. The returned int is the HTTP
// status for a non-nil error.
func (s *Server) verify(ctx context.Context, req *VerifyRequest, tm *reqTimings, live *liveReq) (*VerifyResponse, int, error) {
	t0 := time.Now()
	model, err := consistency.ParseModel(orDefault(req.Model, "coherence"))
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	strategy, err := solver.ParseStrategy(req.Strategy)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	s.reqs.setModel(live, model.String())
	tr, err := trace.Read(strings.NewReader(req.Trace))
	if err == nil {
		err = tr.Exec.Validate()
	}
	tm.addParse(time.Since(t0))
	if err != nil {
		return nil, http.StatusBadRequest, err
	}

	s.reqs.setStage(live, "cache")
	maxStates, timeout := s.budgetFor(req)
	key := cacheKey(coherence.ExecutionFingerprint(tr.Exec), model.String(), strategy.String(),
		maxStates, timeout, req.UseOrder, tr.WriteOrders)
	t0 = time.Now()
	resp, ok := s.cache.get(key)
	tm.addCache(time.Since(t0))
	if ok {
		s.stats.CacheHits.Inc()
		resp.Cached = true
		return &resp, 0, nil
	}
	s.stats.CacheMisses.Inc()

	cfgOpts := []solver.ConfigOption{
		solver.WithStrategy(strategy),
		solver.WithBudget(solver.WithMaxStates(maxStates), solver.WithTimeout(timeout)),
	}
	if req.UseOrder {
		cfgOpts = append(cfgOpts, solver.WithWriteOrders(tr.WriteOrders))
	}

	s.reqs.setStage(live, "solve")
	var out *VerifyResponse
	if model == consistency.CoherenceOnly {
		out, err = s.verifyCoherenceSharded(ctx, tr, cfgOpts, tm, live)
	} else {
		out, err = s.verifyConsistency(ctx, model, tr, cfgOpts, tm)
	}
	if err != nil {
		if errors.Is(err, errShuttingDown) {
			return nil, http.StatusServiceUnavailable, err
		}
		return nil, http.StatusBadRequest, err
	}
	out.Model = model.String()
	out.Strategy = strategy.String()
	if out.Verdict != "undecided" {
		s.cache.put(key, *out)
	}
	return out, 0, nil
}

// verifyCoherenceSharded fans the per-address VMC checks of one request
// out over the shared worker fleet, largest projection first (the LPT
// order parallel verification uses), so one hot request cannot
// monopolize the fleet against concurrent small ones.
func (s *Server) verifyCoherenceSharded(ctx context.Context, tr *trace.Trace, cfgOpts []solver.ConfigOption, tm *reqTimings, live *liveReq) (*VerifyResponse, error) {
	v := coherence.NewVerifier(cfgOpts...)
	addrs := coherence.AddressesByHardness(tr.Exec)
	reports := make([]*coherence.AddrReport, len(addrs))
	errs := make([]error, len(addrs))
	var wg sync.WaitGroup
	for i, a := range addrs {
		i, a := i, a
		wg.Add(1)
		if err := s.enqueueTimed(ctx, tm, func() {
			defer wg.Done()
			reports[i], errs[i] = v.SolveAddr(ctx, tr.Exec, a)
		}); err != nil {
			wg.Done()
			// The request is gone; shards already queued notice the
			// cancelled context and return quickly.
			errs[i] = err
			break
		}
	}
	wg.Wait()

	s.reqs.setStage(live, "merge")
	t0 := time.Now()
	defer func() { tm.addMerge(time.Since(t0)) }()
	resp := &VerifyResponse{Verdict: "coherent"}
	var agg solver.Stats
	var budget *solver.ErrBudgetExceeded
	for _, a := range tr.Exec.Addresses() { // report in address order
		i := indexOf(addrs, a)
		if errs[i] != nil {
			be, ok := solver.AsBudgetError(errs[i])
			if !ok {
				return nil, errs[i]
			}
			if budget == nil {
				budget = be
			}
			agg.Merge(be.Stats)
			resp.Addrs = append(resp.Addrs, AddrResult{Addr: tr.Name(a), Verdict: "unknown"})
			continue
		}
		ar := reports[i]
		if ar == nil {
			continue
		}
		agg.Merge(ar.Stats)
		out := AddrResult{Addr: tr.Name(a), Verdict: "unknown", States: ar.Stats.States}
		if ar.Result != nil {
			out.Algorithm = ar.Result.Algorithm
		}
		switch ar.Verdict {
		case coherence.VerdictCoherent:
			out.Verdict = "coherent"
		case coherence.VerdictIncoherent:
			out.Verdict = "incoherent"
			if resp.Violation == "" {
				resp.Violation = tr.Name(a)
			}
			resp.Verdict = "incoherent"
		default:
			if resp.Verdict == "coherent" {
				resp.Verdict = "undecided"
				resp.Reason = "resilient ladder exhausted"
			}
		}
		resp.Addrs = append(resp.Addrs, out)
	}
	if budget != nil && resp.Verdict == "coherent" {
		resp.Verdict = "undecided"
		resp.Reason = budget.Reason.String()
	}
	resp.Stats = statsJSON(agg)
	return resp, nil
}

// verifyConsistency runs a whole-execution model as a single fleet
// task: the SC/VSCC searches and the operational machines are one
// search over all addresses, so there is nothing to shard.
func (s *Server) verifyConsistency(ctx context.Context, model consistency.Model, tr *trace.Trace, cfgOpts []solver.ConfigOption, tm *reqTimings) (*VerifyResponse, error) {
	v := consistency.NewVerifier(model, cfgOpts...)
	var (
		res *consistency.Result
		err error
		wg  sync.WaitGroup
	)
	wg.Add(1)
	if qerr := s.enqueueTimed(ctx, tm, func() {
		defer wg.Done()
		res, err = v.Verify(ctx, tr.Exec)
	}); qerr != nil {
		wg.Done()
		return nil, qerr
	}
	wg.Wait()
	if err != nil {
		if be, ok := solver.AsBudgetError(err); ok {
			return &VerifyResponse{
				Verdict: "undecided",
				Reason:  be.Reason.String(),
				Stats:   statsJSON(be.Stats),
			}, nil
		}
		return nil, err
	}
	resp := &VerifyResponse{Verdict: "consistent", Algorithm: res.Algorithm, Stats: statsJSON(res.Stats)}
	if !res.Consistent {
		resp.Verdict = "inconsistent"
	}
	return resp, nil
}

func indexOf(addrs []memory.Addr, a memory.Addr) int {
	for i, x := range addrs {
		if x == a {
			return i
		}
	}
	return -1
}

func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}
