package main

import (
	"context"
	"errors"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"memverify/internal/coherence"
	"memverify/internal/consistency"
	"memverify/internal/memory"
	"memverify/internal/obs"
	"memverify/internal/solver"
	"memverify/internal/trace"
)

// serverConfig is the operator-facing tuning surface of memverifyd.
type serverConfig struct {
	// workers is the size of the verification worker fleet — the only
	// goroutines that run solver searches.
	workers int
	// maxInflight bounds admitted requests; the admission semaphore is
	// the ingest queue, and an arrival beyond the bound is answered 429
	// + Retry-After instead of buffered.
	maxInflight int
	// queueDepth bounds the shard queue between handlers and the fleet.
	queueDepth int
	// cacheSize bounds the result cache (entries).
	cacheSize int
	// maxStatesCap / timeoutCap are server-side ceilings clamped onto
	// every request's budget (0 = no ceiling); maxStatesDefault /
	// timeoutDefault apply when a request names no budget.
	maxStatesCap     int
	timeoutCap       time.Duration
	maxStatesDefault int
	timeoutDefault   time.Duration
}

func (c serverConfig) withDefaults() serverConfig {
	if c.workers <= 0 {
		c.workers = 4
	}
	if c.maxInflight <= 0 {
		c.maxInflight = 64
	}
	if c.queueDepth <= 0 {
		c.queueDepth = 256
	}
	if c.cacheSize == 0 {
		c.cacheSize = 1024
	}
	return c
}

// serverStats are the live counters behind GET /v1/stats.
type serverStats struct {
	Requests    atomic.Int64
	Rejected    atomic.Int64
	ParseErrors atomic.Int64
	Unavailable atomic.Int64
	Cancelled   atomic.Int64
	CacheHits   atomic.Int64
	CacheMisses atomic.Int64
	Decided     atomic.Int64
	Violations  atomic.Int64
	Undecided   atomic.Int64
}

// Server is the memverifyd verification service: a bounded worker fleet
// draining a shard queue, an admission semaphore providing backpressure,
// a fingerprint-keyed result cache, and the obs debug endpoint as the
// ops surface.
type Server struct {
	cfg      serverConfig
	queue    chan func()
	inflight chan struct{}
	cache    *resultCache
	stats    serverStats
	metrics  *obs.Metrics
	mux      *http.ServeMux
	stop     chan struct{}
	wg       sync.WaitGroup
	// closeMu orders enqueue against Close's final drain: enqueue holds
	// the read side across its shutdown check and queue send, so once
	// Close acquires the write side no shard can slip into the queue
	// after the drain that would have caught it.
	closeMu sync.RWMutex
}

// newServer builds the service and starts its worker fleet.
func newServer(cfg serverConfig) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		queue:    make(chan func(), cfg.queueDepth),
		inflight: make(chan struct{}, cfg.maxInflight),
		cache:    newResultCache(cfg.cacheSize),
		metrics:  obs.NewMetrics(),
		mux:      http.NewServeMux(),
		stop:     make(chan struct{}),
	}
	s.mux.HandleFunc("/v1/verify", s.handleVerify)
	s.mux.HandleFunc("/v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	s.mux.Handle("/debug/", obs.DebugHandler(s.metrics))
	for i := 0; i < cfg.workers; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for {
				select {
				case fn := <-s.queue:
					fn()
				case <-s.stop:
					return
				}
			}
		}()
	}
	return s
}

// Close stops the worker fleet (idempotent is not needed; call once).
// Shards that slipped into the queue while shutdown raced an enqueue
// are run inline afterwards, so no handler is left waiting on work the
// dead fleet will never do.
func (s *Server) Close() {
	close(s.stop)
	s.wg.Wait()
	// In-flight enqueues finish promptly now that stop is closed; taking
	// the write lock waits them out, so the drain below sees every shard
	// that made it into the queue.
	s.closeMu.Lock()
	defer s.closeMu.Unlock()
	for {
		select {
		case fn := <-s.queue:
			fn()
		default:
			return
		}
	}
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// errShuttingDown marks enqueue failures caused by server shutdown, so
// handlers can answer 503 instead of blaming the client.
var errShuttingDown = errors.New("server shutting down")

// enqueue hands one shard to the fleet, giving up when the request is
// gone. Handlers block here when the queue is full — which is safe and
// bounded: only admitted requests reach this point and workers never
// enqueue, so there is no cycle to deadlock.
func (s *Server) enqueue(ctx context.Context, fn func()) error {
	s.closeMu.RLock()
	defer s.closeMu.RUnlock()
	// Check shutdown first, on its own: in the combined select below a
	// buffered queue send and the closed stop channel are both ready and
	// select picks between them at random, which would strand work in a
	// queue the dead fleet never drains.
	select {
	case <-s.stop:
		return errShuttingDown
	default:
	}
	select {
	case s.queue <- fn:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-s.stop:
		return errShuttingDown
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "workers": s.cfg.workers})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"requests":     s.stats.Requests.Load(),
		"rejected":     s.stats.Rejected.Load(),
		"parse_errors": s.stats.ParseErrors.Load(),
		"unavailable":  s.stats.Unavailable.Load(),
		"cancelled":    s.stats.Cancelled.Load(),
		"cache_hits":   s.stats.CacheHits.Load(),
		"cache_misses": s.stats.CacheMisses.Load(),
		"cache_len":    s.cache.len(),
		"decided":      s.stats.Decided.Load(),
		"violations":   s.stats.Violations.Load(),
		"undecided":    s.stats.Undecided.Load(),
		"queue_depth":  len(s.queue),
		"inflight":     len(s.inflight),
	})
}

// handleVerify is POST /v1/verify.
func (s *Server) handleVerify(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	s.stats.Requests.Add(1)
	// Admission: the semaphore is the bounded ingest queue. A full
	// server answers immediately with backpressure instead of buffering
	// unbounded work.
	select {
	case s.inflight <- struct{}{}:
	default:
		s.stats.Rejected.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "server at capacity (%d in flight)", s.cfg.maxInflight)
		return
	}
	defer func() { <-s.inflight }()

	req, err := readVerifyRequest(r)
	if err != nil {
		s.stats.ParseErrors.Add(1)
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	start := time.Now()
	resp, status, err := s.verify(r.Context(), req)
	if r.Context().Err() != nil {
		// Client went away; the searches were cancelled through the
		// context (a cancelled search reports as an undecided budget
		// trip, so check the context before interpreting the outcome).
		// Nothing to write.
		s.stats.Cancelled.Add(1)
		return
	}
	if err != nil {
		// 5xx means the server could not take the work (shutdown); only
		// 4xx counts against the client as a parse/validation error.
		if status >= http.StatusInternalServerError {
			s.stats.Unavailable.Add(1)
		} else {
			s.stats.ParseErrors.Add(1)
		}
		writeError(w, status, "%v", err)
		return
	}
	resp.ElapsedMS = float64(time.Since(start)) / float64(time.Millisecond)
	switch resp.Verdict {
	case "undecided":
		s.stats.Undecided.Add(1)
	case "incoherent", "inconsistent":
		s.stats.Decided.Add(1)
		s.stats.Violations.Add(1)
	default:
		s.stats.Decided.Add(1)
	}
	writeJSON(w, http.StatusOK, resp)
}

// budgetFor clamps the request budget to the server ceilings.
func (s *Server) budgetFor(req *VerifyRequest) (int, time.Duration) {
	maxStates := req.MaxStates
	if maxStates == 0 {
		maxStates = s.cfg.maxStatesDefault
	}
	if cap := s.cfg.maxStatesCap; cap > 0 && (maxStates == 0 || maxStates > cap) {
		maxStates = cap
	}
	timeout := time.Duration(req.TimeoutMS) * time.Millisecond
	if timeout == 0 {
		timeout = s.cfg.timeoutDefault
	}
	if cap := s.cfg.timeoutCap; cap > 0 && (timeout == 0 || timeout > cap) {
		timeout = cap
	}
	return maxStates, timeout
}

// verify parses, consults the cache, runs the verification on the
// fleet, and caches decided answers. The returned int is the HTTP
// status for a non-nil error.
func (s *Server) verify(ctx context.Context, req *VerifyRequest) (*VerifyResponse, int, error) {
	model, err := consistency.ParseModel(orDefault(req.Model, "coherence"))
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	strategy, err := solver.ParseStrategy(req.Strategy)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	tr, err := trace.Read(strings.NewReader(req.Trace))
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	if err := tr.Exec.Validate(); err != nil {
		return nil, http.StatusBadRequest, err
	}

	maxStates, timeout := s.budgetFor(req)
	key := cacheKey(coherence.ExecutionFingerprint(tr.Exec), model.String(), strategy.String(),
		maxStates, timeout, req.UseOrder, tr.WriteOrders)
	if resp, ok := s.cache.get(key); ok {
		s.stats.CacheHits.Add(1)
		resp.Cached = true
		return &resp, 0, nil
	}
	s.stats.CacheMisses.Add(1)

	cfgOpts := []solver.ConfigOption{
		solver.WithStrategy(strategy),
		solver.WithBudget(solver.WithMaxStates(maxStates), solver.WithTimeout(timeout)),
	}
	if req.UseOrder {
		cfgOpts = append(cfgOpts, solver.WithWriteOrders(tr.WriteOrders))
	}
	ctx = obs.With(ctx, &obs.Observer{Metrics: s.metrics})

	var resp *VerifyResponse
	if model == consistency.CoherenceOnly {
		resp, err = s.verifyCoherenceSharded(ctx, tr, cfgOpts)
	} else {
		resp, err = s.verifyConsistency(ctx, model, tr, cfgOpts)
	}
	if err != nil {
		if errors.Is(err, errShuttingDown) {
			return nil, http.StatusServiceUnavailable, err
		}
		return nil, http.StatusBadRequest, err
	}
	resp.Model = model.String()
	resp.Strategy = strategy.String()
	if resp.Verdict != "undecided" {
		s.cache.put(key, *resp)
	}
	return resp, 0, nil
}

// verifyCoherenceSharded fans the per-address VMC checks of one request
// out over the shared worker fleet, largest projection first (the LPT
// order parallel verification uses), so one hot request cannot
// monopolize the fleet against concurrent small ones.
func (s *Server) verifyCoherenceSharded(ctx context.Context, tr *trace.Trace, cfgOpts []solver.ConfigOption) (*VerifyResponse, error) {
	v := coherence.NewVerifier(cfgOpts...)
	addrs := coherence.AddressesByHardness(tr.Exec)
	reports := make([]*coherence.AddrReport, len(addrs))
	errs := make([]error, len(addrs))
	var wg sync.WaitGroup
	for i, a := range addrs {
		i, a := i, a
		wg.Add(1)
		if err := s.enqueue(ctx, func() {
			defer wg.Done()
			reports[i], errs[i] = v.SolveAddr(ctx, tr.Exec, a)
		}); err != nil {
			wg.Done()
			// The request is gone; shards already queued notice the
			// cancelled context and return quickly.
			errs[i] = err
			break
		}
	}
	wg.Wait()

	resp := &VerifyResponse{Verdict: "coherent"}
	var agg solver.Stats
	var budget *solver.ErrBudgetExceeded
	for _, a := range tr.Exec.Addresses() { // report in address order
		i := indexOf(addrs, a)
		if errs[i] != nil {
			be, ok := solver.AsBudgetError(errs[i])
			if !ok {
				return nil, errs[i]
			}
			if budget == nil {
				budget = be
			}
			agg.Merge(be.Stats)
			resp.Addrs = append(resp.Addrs, AddrResult{Addr: tr.Name(a), Verdict: "unknown"})
			continue
		}
		ar := reports[i]
		if ar == nil {
			continue
		}
		agg.Merge(ar.Stats)
		out := AddrResult{Addr: tr.Name(a), Verdict: "unknown", States: ar.Stats.States}
		if ar.Result != nil {
			out.Algorithm = ar.Result.Algorithm
		}
		switch ar.Verdict {
		case coherence.VerdictCoherent:
			out.Verdict = "coherent"
		case coherence.VerdictIncoherent:
			out.Verdict = "incoherent"
			if resp.Violation == "" {
				resp.Violation = tr.Name(a)
			}
			resp.Verdict = "incoherent"
		default:
			if resp.Verdict == "coherent" {
				resp.Verdict = "undecided"
				resp.Reason = "resilient ladder exhausted"
			}
		}
		resp.Addrs = append(resp.Addrs, out)
	}
	if budget != nil && resp.Verdict == "coherent" {
		resp.Verdict = "undecided"
		resp.Reason = budget.Reason.String()
	}
	resp.Stats = statsJSON(agg)
	return resp, nil
}

// verifyConsistency runs a whole-execution model as a single fleet
// task: the SC/VSCC searches and the operational machines are one
// search over all addresses, so there is nothing to shard.
func (s *Server) verifyConsistency(ctx context.Context, model consistency.Model, tr *trace.Trace, cfgOpts []solver.ConfigOption) (*VerifyResponse, error) {
	v := consistency.NewVerifier(model, cfgOpts...)
	var (
		res *consistency.Result
		err error
		wg  sync.WaitGroup
	)
	wg.Add(1)
	if qerr := s.enqueue(ctx, func() {
		defer wg.Done()
		res, err = v.Verify(ctx, tr.Exec)
	}); qerr != nil {
		wg.Done()
		return nil, qerr
	}
	wg.Wait()
	if err != nil {
		if be, ok := solver.AsBudgetError(err); ok {
			return &VerifyResponse{
				Verdict: "undecided",
				Reason:  be.Reason.String(),
				Stats:   statsJSON(be.Stats),
			}, nil
		}
		return nil, err
	}
	resp := &VerifyResponse{Verdict: "consistent", Algorithm: res.Algorithm, Stats: statsJSON(res.Stats)}
	if !res.Consistent {
		resp.Verdict = "inconsistent"
	}
	return resp, nil
}

func indexOf(addrs []memory.Addr, a memory.Addr) int {
	for i, x := range addrs {
		if x == a {
			return i
		}
	}
	return -1
}

func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}
