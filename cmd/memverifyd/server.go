package main

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"memverify/internal/chaos"
	"memverify/internal/coherence"
	"memverify/internal/consistency"
	"memverify/internal/memory"
	"memverify/internal/obs"
	"memverify/internal/solver"
	"memverify/internal/trace"
)

// serverConfig is the operator-facing tuning surface of memverifyd.
type serverConfig struct {
	// workers is the size of the verification worker fleet — the only
	// goroutines that run solver searches.
	workers int
	// psearch, when > 1, lets the hardest address of each request split
	// its exact search across this many workers sharing one memo table
	// (solver.WithParallelSearch). Only the LPT-head shard gets a team —
	// every other shard stays sequential, so one request's fleet
	// footprint grows by at most psearch-1 transient goroutines.
	// Parallelism never changes answers, so psearch stays out of the
	// result-cache key.
	psearch int
	// maxInflight bounds admitted requests; the admission semaphore is
	// the ingest queue, and an arrival beyond the bound is answered 429
	// + Retry-After instead of buffered.
	maxInflight int
	// queueDepth bounds the shard queue between handlers and the fleet.
	queueDepth int
	// cacheSize bounds the result cache (entries).
	cacheSize int
	// maxStatesCap / timeoutCap are server-side ceilings clamped onto
	// every request's budget (0 = no ceiling); maxStatesDefault /
	// timeoutDefault apply when a request names no budget.
	maxStatesCap     int
	timeoutCap       time.Duration
	maxStatesDefault int
	timeoutDefault   time.Duration
	// slowRequests bounds the slow-request table behind
	// GET /debug/requests (0 = default 32).
	slowRequests int
	// traceSink, when set, receives the JSONL span/event stream of every
	// request (the -trace flag). Spans carry the request id, so one
	// request's trace can be stitched out of the shared stream.
	traceSink obs.Sink
	// retryAfterMax caps the adaptive Retry-After answer on a 429; the
	// floor is always 1s (never 0: see retryAfterSecs).
	retryAfterMax time.Duration
	// brownoutHigh enables the brownout controller: when the queue-delay
	// EWMA crosses it, new requests are downgraded (shrunken budgets,
	// exact → resilient) until the EWMA falls below brownoutLow and stays
	// there for brownoutHold observations. 0 disables brownout.
	brownoutHigh time.Duration
	brownoutLow  time.Duration
	brownoutHold int
	// degradeMaxStates / degradeTimeout are the shrunken budgets clamped
	// onto a browned-out request. They are fixed values, not fractions of
	// the request's ask, so degraded cache keys stay deterministic.
	degradeMaxStates int
	degradeTimeout   time.Duration
	// drainTick is the drain-rate estimator's observation window.
	drainTick time.Duration
	// chaosEnabled turns on the seeded fault-injection layer on
	// /v1/verify: faults arrive either on the X-Chaos-Fault header (the
	// loadgen's schedule) or, when chaosRate > 0, from the server's own
	// seeded injector. chaosSlow is the stall injected by a "slow" fault.
	chaosEnabled bool
	chaosSeed    int64
	chaosRate    float64
	chaosSlow    time.Duration
}

func (c serverConfig) withDefaults() serverConfig {
	if c.workers <= 0 {
		c.workers = 4
	}
	if c.maxInflight <= 0 {
		c.maxInflight = 64
	}
	if c.queueDepth <= 0 {
		c.queueDepth = 256
	}
	if c.cacheSize == 0 {
		c.cacheSize = 1024
	}
	if c.retryAfterMax <= 0 {
		c.retryAfterMax = 30 * time.Second
	}
	if c.drainTick <= 0 {
		c.drainTick = 250 * time.Millisecond
	}
	if c.degradeMaxStates == 0 {
		c.degradeMaxStates = 20000
	}
	if c.degradeTimeout == 0 {
		c.degradeTimeout = 250 * time.Millisecond
	}
	if c.chaosSlow <= 0 {
		c.chaosSlow = 200 * time.Millisecond
	}
	return c
}

// serverStats are the service counters behind GET /v1/stats — each one
// a registry counter, so /metrics exposes the same registers without
// double bookkeeping.
type serverStats struct {
	Requests    obs.Counter
	Rejected    obs.Counter
	ParseErrors obs.Counter
	Unavailable obs.Counter
	Cancelled   obs.Counter
	CacheHits   obs.Counter
	CacheMisses obs.Counter
	Decided     obs.Counter
	Violations  obs.Counter
	Undecided   obs.Counter
	// Overload and robustness counters (PR 8). Shed counts requests
	// rejected because their deadline could not survive the queue;
	// DeadlineExpired counts 504s (deadline gone before or during
	// processing); ExpiredDrops counts shards discarded at dequeue with an
	// already-dead context; Degraded counts browned-out requests; Panics
	// and WorkerPanics count recovered panics in handlers and fleet
	// workers; Solves counts actual solver invocations — the register the
	// never-burn-a-worker guarantee is pinned against.
	Shed            obs.Counter
	DeadlineExpired obs.Counter
	ExpiredDrops    obs.Counter
	Degraded        obs.Counter
	Panics          obs.Counter
	WorkerPanics    obs.Counter
	Solves          obs.Counter
	// BatchedSolves counts addresses answered through the pooled batch
	// driver (PR 10): a request's burst of litmus-sized addresses rides
	// one fleet shard through coherence.SolveBatch instead of one shard
	// each.
	BatchedSolves obs.Counter
}

// stageNames are the request stages with latency histograms: parse
// (body read + trace parse), cache (result-cache lookup), queue (shard
// wait for a fleet worker), solve (per-shard search compute), merge
// (per-address verdict aggregation). Queue and solve record one sample
// per shard; the others one per request.
var stageNames = []string{"parse", "cache", "queue", "solve", "merge"}

// Server is the memverifyd verification service: a bounded worker fleet
// draining a shard queue, an admission semaphore providing backpressure,
// a fingerprint-keyed result cache, and a telemetry surface — stage
// latency histograms and live gauges at /metrics, request traces with
// ids, and in-flight/slowest request tables at /debug/requests.
type Server struct {
	cfg      serverConfig
	queue    chan func()
	inflight chan struct{}
	cache    *resultCache
	stats    serverStats
	metrics  *obs.Metrics
	mux      *http.ServeMux
	// root is the served handler: recovery and chaos middleware wrapped
	// around the mux.
	root http.Handler
	stop chan struct{}
	wg   sync.WaitGroup
	// closeMu orders enqueue against Close's final drain: enqueue holds
	// the read side across its shutdown check and queue send, so once
	// Close acquires the write side no shard can slip into the queue
	// after the drain that would have caught it.
	closeMu sync.RWMutex

	// Telemetry: the metric registry behind GET /metrics, per-stage
	// latency histograms, the whole-request histogram, the live
	// worker-busy count, the request table, and the optional tracer.
	reg         *obs.Registry
	stage       map[string]*obs.Histogram
	reqHist     *obs.Histogram
	workersBusy atomic.Int64
	reqs        *requestTable
	tracer      *obs.Tracer

	// Overload control: the drain-rate estimator behind adaptive
	// Retry-After and deadline-aware shedding, the brownout controller
	// (nil when disabled), and the shard-completion counter the drain
	// ticker differentiates.
	drain           *drainRate
	brown           *brownout
	completedShards atomic.Int64

	// searchWorkersEff tracks the peak effective parallel-search team
	// observed on any single address solve — the gauge behind
	// memverifyd_search_workers_effective and /v1/stats.
	searchWorkersEff atomic.Int64

	// Chaos: the seeded injector (nil unless cfg.chaosEnabled) and the
	// per-kind fired counters in the registry.
	chaosInj   *chaos.Injector
	chaosFired map[chaos.Kind]obs.Counter
}

// newServer builds the service and starts its worker fleet.
func newServer(cfg serverConfig) *Server {
	cfg = cfg.withDefaults()
	reg := obs.NewRegistry()
	s := &Server{
		cfg:      cfg,
		queue:    make(chan func(), cfg.queueDepth),
		inflight: make(chan struct{}, cfg.maxInflight),
		cache:    newResultCache(cfg.cacheSize),
		metrics:  obs.NewMetrics(),
		mux:      http.NewServeMux(),
		stop:     make(chan struct{}),
		reg:      reg,
		stage:    make(map[string]*obs.Histogram, len(stageNames)),
		reqs:     newRequestTable(cfg.slowRequests),
		tracer:   obs.NewTracer(cfg.traceSink),
		drain:    &drainRate{},
		brown:    newBrownout(cfg.brownoutHigh, cfg.brownoutLow, cfg.brownoutHold),
	}
	if cfg.chaosEnabled {
		rates := make(map[chaos.Kind]float64)
		if cfg.chaosRate > 0 {
			for _, k := range chaos.Kinds() {
				rates[k] = cfg.chaosRate
			}
		}
		s.chaosInj = chaos.NewInjector(cfg.chaosSeed, rates)
	}

	// Registry: stage and request latency histograms, service counters,
	// and live saturation gauges. The counters double as the /v1/stats
	// payload, so both surfaces read the same registers.
	reg.SetHelp("memverifyd_stage_duration_seconds",
		"Request latency by stage: parse, cache, queue (per shard), solve (per shard), merge.")
	for _, st := range stageNames {
		s.stage[st] = reg.Histogram("memverifyd_stage_duration_seconds", obs.Label{Key: "stage", Value: st})
	}
	reg.SetHelp("memverifyd_request_duration_seconds", "End-to-end /v1/verify latency.")
	s.reqHist = reg.Histogram("memverifyd_request_duration_seconds")
	s.stats = serverStats{
		Requests:    reg.Counter("memverifyd_requests_total"),
		Rejected:    reg.Counter("memverifyd_rejected_total"),
		ParseErrors: reg.Counter("memverifyd_parse_errors_total"),
		Unavailable: reg.Counter("memverifyd_unavailable_total"),
		Cancelled:   reg.Counter("memverifyd_cancelled_total"),
		CacheHits:   reg.Counter("memverifyd_cache_hits_total"),
		CacheMisses: reg.Counter("memverifyd_cache_misses_total"),
		Decided:     reg.Counter("memverifyd_decided_total"),
		Violations:  reg.Counter("memverifyd_violations_total"),
		Undecided:   reg.Counter("memverifyd_undecided_total"),

		Shed:            reg.Counter("memverifyd_shed_total"),
		DeadlineExpired: reg.Counter("memverifyd_deadline_expired_total"),
		ExpiredDrops:    reg.Counter("memverifyd_expired_drops_total"),
		Degraded:        reg.Counter("memverifyd_degraded_total"),
		Panics:          reg.Counter("memverifyd_panics_total"),
		WorkerPanics:    reg.Counter("memverifyd_worker_panics_total"),
		Solves:          reg.Counter("memverifyd_solves_total"),
		BatchedSolves:   reg.Counter("memverifyd_batched_solves_total"),
	}
	reg.SetHelp("memverifyd_shed_total",
		"Requests rejected because their deadline could not survive the estimated queue wait.")
	reg.SetHelp("memverifyd_deadline_expired_total", "Requests answered 504: deadline expired.")
	reg.SetHelp("memverifyd_expired_drops_total",
		"Shards discarded at dequeue because their request's context was already dead.")
	reg.SetHelp("memverifyd_degraded_total", "Requests served in brownout (downgraded strategy/budgets).")
	reg.SetHelp("memverifyd_panics_total", "Handler panics recovered by the HTTP middleware.")
	reg.SetHelp("memverifyd_worker_panics_total", "Fleet worker panics recovered mid-shard.")
	reg.SetHelp("memverifyd_solves_total", "Solver invocations actually started on fleet workers.")
	reg.SetHelp("memverifyd_batched_solves_total",
		"Addresses answered through the pooled batch driver (one fleet shard per burst of small addresses).")
	reg.SetHelp("memverifyd_chaos_injected_total", "Chaos faults injected, by kind.")
	s.chaosFired = make(map[chaos.Kind]obs.Counter, len(chaos.Kinds()))
	for _, k := range chaos.Kinds() {
		s.chaosFired[k] = reg.Counter("memverifyd_chaos_injected_total", obs.Label{Key: "kind", Value: k.String()})
	}
	reg.SetHelp("memverifyd_queue_depth", "Shards waiting in the fleet queue.")
	reg.GaugeFunc("memverifyd_queue_depth", func() float64 { return float64(len(s.queue)) })
	reg.SetHelp("memverifyd_in_flight", "Admitted requests not yet answered.")
	reg.GaugeFunc("memverifyd_in_flight", func() float64 { return float64(len(s.inflight)) })
	reg.SetHelp("memverifyd_workers_busy", "Fleet workers currently running a shard.")
	reg.GaugeFunc("memverifyd_workers_busy", func() float64 { return float64(s.workersBusy.Load()) })
	reg.SetHelp("memverifyd_worker_utilization", "workers_busy / workers, 0..1.")
	reg.GaugeFunc("memverifyd_worker_utilization", func() float64 {
		return float64(s.workersBusy.Load()) / float64(cfg.workers)
	})
	reg.SetHelp("memverifyd_workers", "Configured fleet size.")
	reg.Gauge("memverifyd_workers").Set(int64(cfg.workers))
	reg.SetHelp("memverifyd_search_workers", "Configured per-solve parallel-search team size (-psearch; 0/1 = sequential).")
	reg.Gauge("memverifyd_search_workers").Set(int64(cfg.psearch))
	reg.SetHelp("memverifyd_search_workers_effective",
		"Peak parallel-search workers actually engaged on any single address solve.")
	reg.GaugeFunc("memverifyd_search_workers_effective", func() float64 {
		return float64(s.searchWorkersEff.Load())
	})
	reg.SetHelp("memverifyd_cache_len", "Result-cache entries.")
	reg.GaugeFunc("memverifyd_cache_len", func() float64 { return float64(s.cache.len()) })
	reg.SetHelp("memverifyd_brownout_state", "Brownout controller: 0 closed (full service), 1 half-open, 2 open (degrading).")
	reg.GaugeFunc("memverifyd_brownout_state", func() float64 {
		st, _, _ := s.brown.snapshot()
		return float64(st)
	})
	reg.SetHelp("memverifyd_brownout_opens", "Times the brownout controller has opened.")
	reg.GaugeFunc("memverifyd_brownout_opens", func() float64 {
		_, _, opens := s.brown.snapshot()
		return float64(opens)
	})
	reg.SetHelp("memverifyd_queue_delay_ewma_seconds", "Smoothed shard queue delay feeding the brownout controller.")
	reg.GaugeFunc("memverifyd_queue_delay_ewma_seconds", func() float64 {
		_, ewma, _ := s.brown.snapshot()
		return ewma.Seconds()
	})
	reg.SetHelp("memverifyd_drain_rate", "Estimated fleet drain rate in shards/sec (0 until the estimator warms).")
	reg.GaugeFunc("memverifyd_drain_rate", func() float64 {
		rate, warm := s.drain.estimate()
		if !warm {
			return 0
		}
		return rate
	})

	s.mux.HandleFunc("/v1/verify", s.handleVerify)
	s.mux.HandleFunc("/v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	s.mux.Handle("/metrics", obs.PromHandler(reg))
	s.mux.HandleFunc("/debug/requests", s.handleDebugRequests)
	s.mux.Handle("/debug/", obs.DebugHandler(s.metrics))
	s.root = s.recoveryMiddleware(s.chaosMiddleware(s.mux))
	for i := 0; i < cfg.workers; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for {
				select {
				case fn := <-s.queue:
					s.runShard(fn)
				case <-s.stop:
					return
				}
			}
		}()
	}
	// Drain ticker: differentiates the shard-completion counter into the
	// drain-rate EWMA, and decays the brownout EWMA when the fleet goes
	// idle — without this an overloaded-then-silent server would stay
	// browned out forever, because only dequeues feed the controller.
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		t := time.NewTicker(cfg.drainTick)
		defer t.Stop()
		last := time.Now()
		var seen int64
		for {
			select {
			case now := <-t.C:
				done := s.completedShards.Load()
				s.drain.tick(done-seen, now.Sub(last))
				if done == seen && len(s.queue) == 0 && s.workersBusy.Load() == 0 {
					s.brown.observe(0)
				}
				seen, last = done, now
			case <-s.stop:
				return
			}
		}
	}()
	return s
}

// runShard executes one queued shard, tracking fleet utilization. The
// recover is a backstop: shard closures recover their own panics (so
// the error lands in the request's merge), but if one ever escapes the
// worker survives and the fleet keeps its size.
func (s *Server) runShard(fn func()) {
	s.workersBusy.Add(1)
	defer func() {
		s.workersBusy.Add(-1)
		if rec := recover(); rec != nil {
			s.stats.WorkerPanics.Inc()
		}
	}()
	fn()
}

// Close stops the worker fleet (idempotent is not needed; call once).
// Shards that slipped into the queue while shutdown raced an enqueue
// are run inline afterwards, so no handler is left waiting on work the
// dead fleet will never do.
func (s *Server) Close() {
	close(s.stop)
	s.wg.Wait()
	// In-flight enqueues finish promptly now that stop is closed; taking
	// the write lock waits them out, so the drain below sees every shard
	// that made it into the queue.
	s.closeMu.Lock()
	defer s.closeMu.Unlock()
	for {
		select {
		case fn := <-s.queue:
			s.runShard(fn)
		default:
			return
		}
	}
}

// Handler returns the service's HTTP handler (middleware included).
func (s *Server) Handler() http.Handler { return s.root }

// errShuttingDown marks enqueue failures caused by server shutdown, so
// handlers can answer 503 instead of blaming the client.
var errShuttingDown = errors.New("server shutting down")

// enqueue hands one shard to the fleet, giving up when the request is
// gone. Handlers block here when the queue is full — which is safe and
// bounded: only admitted requests reach this point and workers never
// enqueue, so there is no cycle to deadlock.
func (s *Server) enqueue(ctx context.Context, fn func()) error {
	s.closeMu.RLock()
	defer s.closeMu.RUnlock()
	// Check shutdown first, on its own: in the combined select below a
	// buffered queue send and the closed stop channel are both ready and
	// select picks between them at random, which would strand work in a
	// queue the dead fleet never drains.
	select {
	case <-s.stop:
		return errShuttingDown
	default:
	}
	select {
	case s.queue <- fn:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-s.stop:
		return errShuttingDown
	}
}

// enqueueTimed is enqueue plus stage telemetry: the shard's wait from
// enqueue to execution is recorded as queue time, the body itself as
// solve time — per shard, into both the request's timings and the
// stage histograms.
func (s *Server) enqueueTimed(ctx context.Context, tm *reqTimings, body func()) error {
	enqueued := time.Now()
	return s.enqueue(ctx, func() {
		wait := time.Since(enqueued)
		tm.addQueue(wait)
		s.stage["queue"].Observe(int64(wait))
		// Every dequeue feeds the brownout controller its queue delay —
		// the saturation signal degradation decisions run on.
		s.brown.observe(wait)
		t0 := time.Now()
		body()
		d := time.Since(t0)
		tm.addSolve(d)
		s.stage["solve"].Observe(int64(d))
		s.completedShards.Add(1)
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "workers": s.cfg.workers})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	bstate, ewma, opens := s.brown.snapshot()
	rate, warm := s.drain.estimate()
	stats := map[string]any{
		"requests":     s.stats.Requests.Value(),
		"rejected":     s.stats.Rejected.Value(),
		"parse_errors": s.stats.ParseErrors.Value(),
		"unavailable":  s.stats.Unavailable.Value(),
		"cancelled":    s.stats.Cancelled.Value(),
		"cache_hits":   s.stats.CacheHits.Value(),
		"cache_misses": s.stats.CacheMisses.Value(),
		"cache_len":    s.cache.len(),
		"decided":      s.stats.Decided.Value(),
		"violations":   s.stats.Violations.Value(),
		"undecided":    s.stats.Undecided.Value(),
		"queue_depth":  len(s.queue),
		"in_flight":    len(s.inflight),
		"workers_busy": s.workersBusy.Load(),
		"workers":      s.cfg.workers,

		"shed":                s.stats.Shed.Value(),
		"deadline_expired":    s.stats.DeadlineExpired.Value(),
		"expired_drops":       s.stats.ExpiredDrops.Value(),
		"degraded":            s.stats.Degraded.Value(),
		"panics":              s.stats.Panics.Value(),
		"worker_panics":       s.stats.WorkerPanics.Value(),
		"solves":              s.stats.Solves.Value(),
		"batched_solves":      s.stats.BatchedSolves.Value(),

		"search_workers":           s.cfg.psearch,
		"search_workers_effective": s.searchWorkersEff.Load(),
		"brownout_state":      bstate.String(),
		"brownout_opens":      opens,
		"queue_delay_ewma_ms": float64(ewma) / float64(time.Millisecond),
		"drain_warm":          warm,
		"drain_rate":          rate,
	}
	if s.chaosInj != nil {
		stats["chaos"] = s.chaosInj.Counts()
	}
	writeJSON(w, http.StatusOK, stats)
}

// handleDebugRequests serves GET /debug/requests: the in-flight request
// table (id, age, current stage) and the slowest completed requests
// with their stage breakdowns.
func (s *Server) handleDebugRequests(w http.ResponseWriter, r *http.Request) {
	inflight, slowest := s.reqs.snapshot()
	bstate, ewma, opens := s.brown.snapshot()
	rate, warm := s.drain.estimate()
	writeJSON(w, http.StatusOK, map[string]any{
		"in_flight": inflight,
		"slowest":   slowest,
		"overload": map[string]any{
			"brownout_state":      bstate.String(),
			"brownout_opens":      opens,
			"queue_delay_ewma_ms": float64(ewma) / float64(time.Millisecond),
			"drain_warm":          warm,
			"drain_rate":          rate,
			"shed":                s.stats.Shed.Value(),
			"degraded":            s.stats.Degraded.Value(),
		},
	})
}

// handleVerify is POST /v1/verify.
func (s *Server) handleVerify(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	s.stats.Requests.Inc()
	// Deadline propagation: the client's remaining budget arrives as
	// X-Deadline-Ms (or as deadline_ms in the JSON envelope, applied
	// after parse). A request that arrives already expired is answered
	// 504 before any work.
	deadline, err := deadlineFrom(r)
	if err != nil {
		s.stats.ParseErrors.Inc()
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if !deadline.IsZero() && !time.Now().Before(deadline) {
		s.stats.DeadlineExpired.Inc()
		writeError(w, http.StatusGatewayTimeout, "deadline expired before processing")
		return
	}
	// Deadline-aware shedding: if the estimated queue wait already
	// exceeds the request's remaining budget, admitting it only burns a
	// worker on an answer nobody will read — shed it now with honest
	// backpressure instead.
	if !deadline.IsZero() {
		if rate, warm := s.drain.estimate(); warm && rate > 0 {
			estWait := time.Duration(float64(len(s.queue)) / rate * float64(time.Second))
			if estWait > time.Until(deadline) {
				s.stats.Shed.Inc()
				s.stats.Rejected.Inc()
				w.Header().Set("Retry-After", strconv.Itoa(retryAfterSecs(len(s.queue), rate, warm, s.cfg.retryAfterMax)))
				writeError(w, http.StatusTooManyRequests,
					"shed: estimated queue wait %v exceeds request deadline", estWait.Round(time.Millisecond))
				return
			}
		}
	}
	// Admission: the semaphore is the bounded ingest queue. A full
	// server answers immediately with backpressure instead of buffering
	// unbounded work — and the Retry-After it quotes is the estimated
	// time to drain the current queue, not a constant.
	select {
	case s.inflight <- struct{}{}:
	default:
		s.stats.Rejected.Inc()
		rate, warm := s.drain.estimate()
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSecs(len(s.queue), rate, warm, s.cfg.retryAfterMax)))
		writeError(w, http.StatusTooManyRequests, "server at capacity (%d in flight)", s.cfg.maxInflight)
		return
	}
	defer func() { <-s.inflight }()

	// Request identity: echoed in the response header, stamped onto
	// every obs span begun under this request's context, and the key of
	// the in-flight table entry.
	reqID := newRequestID(r)
	w.Header().Set("X-Request-ID", reqID)
	live := s.reqs.start(reqID, r.RemoteAddr)
	start := time.Now()
	tm := &reqTimings{}
	outcome := "error"
	defer func() {
		total := time.Since(start)
		s.reqHist.Observe(int64(total))
		// Per-request stages fold into the histograms once, at the end;
		// a stage that never ran (merge on a cache hit) stays out.
		for st, ns := range map[string]int64{
			"parse": tm.parse.Load(), "cache": tm.cache.Load(), "merge": tm.merge.Load(),
		} {
			if ns > 0 {
				s.stage[st].Observe(ns)
			}
		}
		s.reqs.finish(live, outcome, tm.debugMap(total))
	}()

	ctx := obs.WithRequestID(r.Context(), reqID)
	ctx = obs.With(ctx, &obs.Observer{Tracer: s.tracer, Metrics: s.metrics})
	span, ctx := s.tracer.Begin(ctx, "request")
	defer func() { span.End(outcome, 0) }()

	t0 := time.Now()
	req, err := readVerifyRequest(r)
	tm.addParse(time.Since(t0))
	if err != nil {
		s.stats.ParseErrors.Inc()
		outcome = "parse_error"
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if deadline.IsZero() && req.DeadlineMS > 0 {
		// The JSON envelope can carry the deadline too; the header wins
		// when both are present (it was visible before the body).
		deadline = start.Add(time.Duration(req.DeadlineMS) * time.Millisecond)
	}
	if !deadline.IsZero() {
		// The deadline rides the context: solver budgets compose with it
		// (a search cut short reports an undecided budget trip), and
		// shards still queued when it passes are dropped at dequeue.
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, deadline)
		defer cancel()
	}
	resp, status, err := s.verify(ctx, req, tm, live)
	if r.Context().Err() != nil {
		// Client went away; the searches were cancelled through the
		// context (a cancelled search reports as an undecided budget
		// trip, so check the context before interpreting the outcome).
		// Nothing to write.
		s.stats.Cancelled.Inc()
		outcome = "cancelled"
		return
	}
	if err != nil {
		// 5xx means the server could not finish the work (shutdown,
		// worker panic, expired deadline); only 4xx counts against the
		// client as a parse/validation error.
		switch {
		case status == http.StatusGatewayTimeout:
			s.stats.DeadlineExpired.Inc()
			outcome = "deadline_expired"
		case status >= http.StatusInternalServerError:
			s.stats.Unavailable.Inc()
			outcome = "unavailable"
		default:
			s.stats.ParseErrors.Inc()
			outcome = "parse_error"
		}
		writeError(w, status, "%v", err)
		return
	}
	resp.ElapsedMS = float64(time.Since(start)) / float64(time.Millisecond)
	resp.RequestID = reqID
	if r.URL.Query().Get("debug") == "timings" {
		resp.Timings = tm.debugMap(time.Since(start))
	}
	outcome = resp.Verdict
	switch resp.Verdict {
	case "undecided":
		s.stats.Undecided.Inc()
	case "incoherent", "inconsistent":
		s.stats.Decided.Inc()
		s.stats.Violations.Inc()
	default:
		s.stats.Decided.Inc()
	}
	writeJSON(w, http.StatusOK, resp)
}

// budgetFor clamps the request budget to the server ceilings.
func (s *Server) budgetFor(req *VerifyRequest) (int, time.Duration) {
	maxStates := req.MaxStates
	if maxStates == 0 {
		maxStates = s.cfg.maxStatesDefault
	}
	if cap := s.cfg.maxStatesCap; cap > 0 && (maxStates == 0 || maxStates > cap) {
		maxStates = cap
	}
	timeout := time.Duration(req.TimeoutMS) * time.Millisecond
	if timeout == 0 {
		timeout = s.cfg.timeoutDefault
	}
	if cap := s.cfg.timeoutCap; cap > 0 && (timeout == 0 || timeout > cap) {
		timeout = cap
	}
	return maxStates, timeout
}

// verify parses, consults the cache, runs the verification on the
// fleet, and caches decided answers. The returned int is the HTTP
// status for a non-nil error.
func (s *Server) verify(ctx context.Context, req *VerifyRequest, tm *reqTimings, live *liveReq) (*VerifyResponse, int, error) {
	t0 := time.Now()
	model, err := consistency.ParseModel(orDefault(req.Model, "coherence"))
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	strategy, err := solver.ParseStrategy(req.Strategy)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	s.reqs.setModel(live, model.String())
	tr, err := trace.Read(strings.NewReader(req.Trace))
	if err == nil {
		err = tr.Exec.Validate()
	}
	tm.addParse(time.Since(t0))
	if err != nil {
		return nil, http.StatusBadRequest, err
	}

	s.reqs.setStage(live, "cache")
	maxStates, timeout := s.budgetFor(req)
	// Brownout: a degraded request trades fidelity for latency — the
	// exact strategy falls back to the resilient ladder and the budgets
	// shrink to fixed degraded values. Applied before the cache key is
	// built, so degraded answers live under their own (deterministic)
	// keys and never pollute full-fidelity entries.
	degraded, degradeReason := s.degradeFor(ctx)
	if degraded {
		s.stats.Degraded.Inc()
		if n := s.cfg.degradeMaxStates; n > 0 && (maxStates == 0 || maxStates > n) {
			maxStates = n
		}
		if d := s.cfg.degradeTimeout; d > 0 && (timeout == 0 || timeout > d) {
			timeout = d
		}
		if strategy == solver.StrategyExact || strategy == solver.StrategyFast {
			// Both end in an unbounded exact search when escalation is
			// needed; the ladder degrades to Unknown instead of burning the
			// shrunken budget on a hopeless search.
			strategy = solver.StrategyResilient
		}
	}
	key := cacheKey(coherence.ExecutionFingerprint(tr.Exec), model.String(), strategy.String(),
		maxStates, timeout, req.UseOrder, tr.WriteOrders)
	// A worker-level chaos fault (panic, slow solve) is about the solve
	// path, so the request must take it: bypass the cache lookup instead
	// of letting the assigned fault dissolve on a hit. The verdict is
	// unchanged and still cached afterwards — the fault alters how this
	// request is served, not what the answer is.
	plan := planFrom(ctx)
	bypassCache := plan.is(chaos.KindWorkerPanic) || plan.is(chaos.KindSlowSolve)
	t0 = time.Now()
	resp, ok := s.cache.get(key)
	tm.addCache(time.Since(t0))
	if ok && !bypassCache {
		s.stats.CacheHits.Inc()
		resp.Cached = true
		if degraded {
			resp.Degraded, resp.DegradeReason = true, degradeReason
		}
		return &resp, 0, nil
	}
	s.stats.CacheMisses.Inc()

	cfgOpts := []solver.ConfigOption{
		solver.WithStrategy(strategy),
		solver.WithBudget(solver.WithMaxStates(maxStates), solver.WithTimeout(timeout)),
	}
	if req.UseOrder {
		cfgOpts = append(cfgOpts, solver.WithWriteOrders(tr.WriteOrders))
	}

	s.reqs.setStage(live, "solve")
	var out *VerifyResponse
	if model == consistency.CoherenceOnly {
		out, err = s.verifyCoherenceSharded(ctx, tr, cfgOpts, tm, live)
	} else {
		out, err = s.verifyConsistency(ctx, model, tr, cfgOpts, tm)
	}
	if err != nil {
		switch {
		case errors.Is(err, errShuttingDown):
			return nil, http.StatusServiceUnavailable, err
		case errors.Is(err, context.DeadlineExceeded):
			return nil, http.StatusGatewayTimeout, err
		case errors.Is(err, errWorkerPanic):
			return nil, http.StatusInternalServerError, err
		default:
			return nil, http.StatusBadRequest, err
		}
	}
	out.Model = model.String()
	out.Strategy = strategy.String()
	if out.Verdict != "undecided" {
		s.cache.put(key, *out)
	}
	if degraded {
		// Set after the cache put: the stored entry is keyed by the
		// degraded knobs but the flag is about how *this* request was
		// served, not a property of the verdict.
		out.Degraded, out.DegradeReason = true, degradeReason
	}
	return out, 0, nil
}

// degradeFor decides whether this request is served degraded: either
// the brownout controller is open, or chaos forced the path (so the
// degraded response shape is exercised deterministically).
func (s *Server) degradeFor(ctx context.Context) (bool, string) {
	if planFrom(ctx).is(chaos.KindDegrade) {
		return true, "chaos: forced degrade"
	}
	if s.brown.degrading() {
		_, ewma, _ := s.brown.snapshot()
		return true, fmt.Sprintf("brownout: queue delay EWMA %v over threshold %v",
			ewma.Round(time.Millisecond), s.cfg.brownoutHigh)
	}
	return false, ""
}

// errWorkerPanic marks a request whose shard panicked on a fleet
// worker; the panic is recovered and surfaces as a plain 500.
var errWorkerPanic = errors.New("worker panic")

// runProtected is the robustness prologue of every fleet task: drop the
// work if the request's context died while it sat in the queue (never
// burn a worker on an expired deadline), inject any worker-level chaos
// assigned to the request, and recover panics into an error so one bad
// shard fails one request instead of a fleet goroutine.
func (s *Server) runProtected(ctx context.Context, run func() error) (err error) {
	if cerr := ctx.Err(); cerr != nil {
		s.stats.ExpiredDrops.Inc()
		return cerr
	}
	defer func() {
		if rec := recover(); rec != nil {
			s.stats.WorkerPanics.Inc()
			err = fmt.Errorf("%w: %v", errWorkerPanic, rec)
		}
	}()
	plan := planFrom(ctx)
	if plan.take(chaos.KindWorkerPanic) {
		panic("chaos: injected worker panic")
	}
	if plan.take(chaos.KindSlowSolve) {
		sleepCtx(ctx, s.cfg.chaosSlow)
	}
	s.stats.Solves.Inc()
	return run()
}

// sleepCtx sleeps d or until the context dies, whichever is first.
func sleepCtx(ctx context.Context, d time.Duration) {
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// batchMaxOps / batchMinAddrs bound the server's batch plan: an address
// joins the batch when it has at most batchMaxOps memory operations, and
// the batch forms only when at least batchMinAddrs qualify (batching a
// single address just adds indirection to a normal shard).
const (
	batchMaxOps   = 32
	batchMinAddrs = 2
)

// planBatch marks which hardness-ordered addresses ride the pooled batch
// driver. Only the always-deciding pooled strategies without write
// orders qualify — coherence.SolveBatch's fast path mirrors their
// dispatch exactly, so the verdicts are identical either way.
func (s *Server) planBatch(v *coherence.Verifier, exec *memory.Execution, addrs []memory.Addr) []bool {
	inBatch := make([]bool, len(addrs))
	cfg := v.Config()
	if (cfg.Strategy != solver.StrategyAuto && cfg.Strategy != solver.StrategyExact) ||
		len(cfg.WriteOrders) != 0 {
		return inBatch
	}
	sizes := make(map[memory.Addr]int, len(addrs))
	for _, h := range exec.Histories {
		for _, o := range h {
			if o.IsMemory() {
				sizes[o.Addr]++
			}
		}
	}
	n := 0
	for i, a := range addrs {
		if sizes[a] <= batchMaxOps {
			inBatch[i] = true
			n++
		}
	}
	if n < batchMinAddrs {
		return make([]bool, len(addrs))
	}
	return inBatch
}

// verifyCoherenceSharded fans the per-address VMC checks of one request
// out over the shared worker fleet, largest projection first (the LPT
// order parallel verification uses), so one hot request cannot
// monopolize the fleet against concurrent small ones. Two PR 10
// refinements: the request's litmus-sized addresses are solved as a
// single fleet shard through the pooled batch driver (planBatch), and
// with -psearch the hardest address splits its search across a worker
// team sharing one memo table.
func (s *Server) verifyCoherenceSharded(ctx context.Context, tr *trace.Trace, cfgOpts []solver.ConfigOption, tm *reqTimings, live *liveReq) (*VerifyResponse, error) {
	v := coherence.NewVerifier(cfgOpts...)
	addrs := coherence.AddressesByHardness(tr.Exec)
	reports := make([]*coherence.AddrReport, len(addrs))
	errs := make([]error, len(addrs))
	inBatch := s.planBatch(v, tr.Exec, addrs)

	// The team verifier is used for the hardest shard only (addrs[0], the
	// LPT head): giving every shard a team would multiply the request's
	// fleet footprint by the team size for no wall-clock gain.
	vTeam := v
	if s.cfg.psearch > 1 {
		team := append(append([]solver.ConfigOption{}, cfgOpts...),
			solver.WithBudget(solver.WithParallelSearch(s.cfg.psearch)))
		vTeam = coherence.NewVerifier(team...)
	}

	var wg sync.WaitGroup
	enqueueFailed := false
	if batchIdx := indicesOf(inBatch); len(batchIdx) > 0 {
		jobs := make([]coherence.BatchJob, len(batchIdx))
		for j, i := range batchIdx {
			jobs[j] = coherence.BatchJob{Exec: tr.Exec, Addr: addrs[i]}
		}
		wg.Add(1)
		if err := s.enqueueTimed(ctx, tm, func() {
			defer wg.Done()
			berr := s.runProtected(ctx, func() error {
				res := v.SolveBatch(ctx, jobs)
				for j, i := range batchIdx {
					if res[j].Err != nil {
						errs[i] = res[j].Err
					} else {
						reports[i] = res[j].Report(jobs[j].Addr)
					}
				}
				s.stats.BatchedSolves.Add(int64(len(jobs)))
				return nil
			})
			if berr != nil {
				// Panic or expired-at-dequeue: every batched address the
				// driver did not answer fails with the shard's error.
				for _, i := range batchIdx {
					if errs[i] == nil && reports[i] == nil {
						errs[i] = berr
					}
				}
			}
		}); err != nil {
			wg.Done()
			for _, i := range batchIdx {
				errs[i] = err
			}
			enqueueFailed = true
		}
	}
	for i, a := range addrs {
		if inBatch[i] || enqueueFailed {
			continue
		}
		i, a := i, a
		sv := v
		if i == 0 {
			sv = vTeam
		}
		wg.Add(1)
		if err := s.enqueueTimed(ctx, tm, func() {
			defer wg.Done()
			errs[i] = s.runProtected(ctx, func() error {
				var serr error
				reports[i], serr = sv.SolveAddr(ctx, tr.Exec, a)
				return serr
			})
		}); err != nil {
			wg.Done()
			// The request is gone; shards already queued notice the
			// cancelled context and return quickly.
			errs[i] = err
			break
		}
	}
	wg.Wait()

	s.reqs.setStage(live, "merge")
	t0 := time.Now()
	defer func() { tm.addMerge(time.Since(t0)) }()
	resp := &VerifyResponse{Verdict: "coherent"}
	var agg solver.Stats
	var budget *solver.ErrBudgetExceeded
	for _, a := range tr.Exec.Addresses() { // report in address order
		i := indexOf(addrs, a)
		if errs[i] != nil {
			be, ok := solver.AsBudgetError(errs[i])
			if !ok {
				return nil, errs[i]
			}
			if budget == nil {
				budget = be
			}
			agg.Merge(be.Stats)
			resp.Addrs = append(resp.Addrs, AddrResult{Addr: tr.Name(a), Verdict: "unknown"})
			continue
		}
		ar := reports[i]
		if ar == nil {
			continue
		}
		agg.Merge(ar.Stats)
		out := AddrResult{Addr: tr.Name(a), Verdict: "unknown", States: ar.Stats.States}
		if ar.Result != nil {
			out.Algorithm = ar.Result.Algorithm
		}
		if w := ar.Stats.SearchWorkers; w > 1 {
			// Effective search parallelism: workers that actually engaged
			// on this address's parallel search (psearch teams only).
			out.Workers = w
			atomicMax(&s.searchWorkersEff, int64(w))
		}
		switch ar.Verdict {
		case coherence.VerdictCoherent:
			out.Verdict = "coherent"
		case coherence.VerdictIncoherent:
			out.Verdict = "incoherent"
			if resp.Violation == "" {
				resp.Violation = tr.Name(a)
			}
			resp.Verdict = "incoherent"
		default:
			if resp.Verdict == "coherent" {
				resp.Verdict = "undecided"
				resp.Reason = "resilient ladder exhausted"
			}
		}
		resp.Addrs = append(resp.Addrs, out)
	}
	if budget != nil && resp.Verdict == "coherent" {
		resp.Verdict = "undecided"
		resp.Reason = budget.Reason.String()
	}
	resp.Stats = statsJSON(agg)
	return resp, nil
}

// verifyConsistency runs a whole-execution model as a single fleet
// task: the SC/VSCC searches and the operational machines are one
// search over all addresses, so there is nothing to shard.
func (s *Server) verifyConsistency(ctx context.Context, model consistency.Model, tr *trace.Trace, cfgOpts []solver.ConfigOption, tm *reqTimings) (*VerifyResponse, error) {
	v := consistency.NewVerifier(model, cfgOpts...)
	var (
		res *consistency.Result
		err error
		wg  sync.WaitGroup
	)
	wg.Add(1)
	if qerr := s.enqueueTimed(ctx, tm, func() {
		defer wg.Done()
		err = s.runProtected(ctx, func() error {
			var verr error
			res, verr = v.Verify(ctx, tr.Exec)
			return verr
		})
	}); qerr != nil {
		wg.Done()
		return nil, qerr
	}
	wg.Wait()
	if err != nil {
		if be, ok := solver.AsBudgetError(err); ok {
			return &VerifyResponse{
				Verdict: "undecided",
				Reason:  be.Reason.String(),
				Stats:   statsJSON(be.Stats),
			}, nil
		}
		return nil, err
	}
	resp := &VerifyResponse{Verdict: "consistent", Algorithm: res.Algorithm, Stats: statsJSON(res.Stats)}
	if !res.Consistent {
		resp.Verdict = "inconsistent"
	}
	return resp, nil
}

// indicesOf returns the indices whose mark is set.
func indicesOf(marks []bool) []int {
	var out []int
	for i, m := range marks {
		if m {
			out = append(out, i)
		}
	}
	return out
}

func indexOf(addrs []memory.Addr, a memory.Addr) int {
	for i, x := range addrs {
		if x == a {
			return i
		}
	}
	return -1
}

func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}
