package main

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file is the client side of GET /metrics: a strict parser for the
// Prometheus text exposition format (stdlib-only, like the writer in
// internal/obs) and a cumulative-bucket quantile estimator. The loadgen
// uses it to pull the server-side stage-latency quantiles into the
// BENCH report, and the parser doubles as a format validator — a line
// the parser rejects would also break a real Prometheus scraper.

// promSample is one parsed sample line.
type promSample struct {
	name   string
	labels map[string]string
	value  float64
}

// validMetricName reports whether s matches [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// parsePromText parses a whole exposition, returning every sample.
// Malformed lines are errors: the caller treats the scrape as invalid.
func parsePromText(text string) ([]promSample, error) {
	var out []promSample
	for ln, line := range strings.Split(text, "\n") {
		s, err := parsePromLine(line)
		if err != nil {
			return nil, fmt.Errorf("metrics line %d: %w", ln+1, err)
		}
		if s != nil {
			out = append(out, *s)
		}
	}
	return out, nil
}

// parsePromLine parses one line: nil for blanks and well-formed
// comments, a sample otherwise.
func parsePromLine(line string) (*promSample, error) {
	if line == "" {
		return nil, nil
	}
	if strings.HasPrefix(line, "#") {
		fields := strings.Fields(line)
		if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") || !validMetricName(fields[2]) {
			return nil, fmt.Errorf("malformed comment %q", line)
		}
		if fields[1] == "TYPE" {
			switch fields[3] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return nil, fmt.Errorf("unknown metric type in %q", line)
			}
		}
		return nil, nil
	}
	rest := line
	nameEnd := strings.IndexAny(rest, "{ ")
	if nameEnd < 0 {
		return nil, fmt.Errorf("no value in %q", line)
	}
	s := &promSample{name: rest[:nameEnd], labels: map[string]string{}}
	if !validMetricName(s.name) {
		return nil, fmt.Errorf("bad metric name in %q", line)
	}
	rest = rest[nameEnd:]
	if rest[0] == '{' {
		end, err := parsePromLabels(rest, s.labels)
		if err != nil {
			return nil, fmt.Errorf("%v in %q", err, line)
		}
		rest = rest[end:]
	}
	rest = strings.TrimPrefix(rest, " ")
	// A timestamp after the value is legal in the format; the server
	// never writes one, so a second field here is an error.
	if strings.ContainsRune(rest, ' ') {
		return nil, fmt.Errorf("unexpected trailing field in %q", line)
	}
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return nil, fmt.Errorf("bad sample value %q", rest)
	}
	s.value = v
	return s, nil
}

// parsePromLabels parses a {k="v",...} block starting at s[0]=='{',
// filling into and returning the index just past the closing brace.
func parsePromLabels(s string, into map[string]string) (int, error) {
	i := 1
	for {
		if i >= len(s) {
			return 0, fmt.Errorf("unterminated label block")
		}
		if s[i] == '}' {
			return i + 1, nil
		}
		eq := strings.IndexByte(s[i:], '=')
		if eq < 0 {
			return 0, fmt.Errorf("label without '='")
		}
		key := s[i : i+eq]
		if !validMetricName(key) {
			return 0, fmt.Errorf("bad label name %q", key)
		}
		i += eq + 1
		if i >= len(s) || s[i] != '"' {
			return 0, fmt.Errorf("unquoted label value")
		}
		i++
		var val strings.Builder
		for {
			if i >= len(s) {
				return 0, fmt.Errorf("unterminated label value")
			}
			switch s[i] {
			case '"':
				i++
				goto valueDone
			case '\\':
				if i+1 >= len(s) {
					return 0, fmt.Errorf("dangling escape")
				}
				switch s[i+1] {
				case '\\', '"':
					val.WriteByte(s[i+1])
				case 'n':
					val.WriteByte('\n')
				default:
					return 0, fmt.Errorf("bad escape \\%c", s[i+1])
				}
				i += 2
			default:
				val.WriteByte(s[i])
				i++
			}
		}
	valueDone:
		into[key] = val.String()
		if i < len(s) && s[i] == ',' {
			i++
		}
	}
}

// histScrape reassembles one histogram series from its exposition
// lines: cumulative counts per le bound, plus _sum and _count.
type histScrape struct {
	bounds []float64 // seconds, sorted, excludes +Inf
	cum    []float64 // cumulative count at each bound
	count  float64
	sum    float64
}

// quantile estimates the q-th quantile in seconds by interpolating
// within the bucket where the cumulative count crosses the rank — the
// same arithmetic as PromQL's histogram_quantile.
func (h *histScrape) quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	rank := q * h.count
	var prevBound, prevCum float64
	for i, b := range h.bounds {
		if h.cum[i] >= rank {
			width := h.cum[i] - prevCum
			if width <= 0 {
				return b
			}
			return prevBound + (b-prevBound)*(rank-prevCum)/width
		}
		prevBound, prevCum = b, h.cum[i]
	}
	if len(h.bounds) > 0 {
		return h.bounds[len(h.bounds)-1]
	}
	return 0
}

// mean returns the average sample in seconds.
func (h *histScrape) mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / h.count
}

// collectHistograms groups the samples of one histogram family by the
// value of groupLabel ("" collects the single unlabeled series under
// key "").
func collectHistograms(samples []promSample, family, groupLabel string) map[string]*histScrape {
	out := map[string]*histScrape{}
	get := func(s promSample) *histScrape {
		key := ""
		if groupLabel != "" {
			key = s.labels[groupLabel]
		}
		h, ok := out[key]
		if !ok {
			h = &histScrape{}
			out[key] = h
		}
		return h
	}
	type bucket struct{ le, cum float64 }
	buckets := map[string][]bucket{}
	for _, s := range samples {
		switch s.name {
		case family + "_bucket":
			le := s.labels["le"]
			if le == "+Inf" {
				continue
			}
			b, err := strconv.ParseFloat(le, 64)
			if err != nil || math.IsInf(b, 0) {
				continue
			}
			key := ""
			if groupLabel != "" {
				key = s.labels[groupLabel]
			}
			get(s) // ensure the series exists even if only buckets seen yet
			buckets[key] = append(buckets[key], bucket{le: b, cum: s.value})
		case family + "_sum":
			get(s).sum = s.value
		case family + "_count":
			get(s).count = s.value
		}
	}
	for key, bs := range buckets {
		sort.Slice(bs, func(i, j int) bool { return bs[i].le < bs[j].le })
		h := out[key]
		for _, b := range bs {
			h.bounds = append(h.bounds, b.le)
			h.cum = append(h.cum, b.cum)
		}
	}
	return out
}
