package main

import (
	"fmt"
	"math"
	"sync"
	"time"
)

// This file is the overload-control brain of memverifyd: the drain-rate
// estimator behind the adaptive Retry-After and deadline-aware
// shedding, and the brownout controller that downgrades requests when
// queue delay says the fleet is saturated.

// drainAlpha is the EWMA smoothing factor for the fleet's shard
// completion rate (per drain tick).
const drainAlpha = 0.3

// drainRate estimates the fleet's shard completion rate as an EWMA,
// fed by the server's drain ticker (completions observed per tick).
// Until the first tick that saw a completion it reports cold — callers
// must fall back to a fixed answer rather than divide by a guess.
type drainRate struct {
	mu   sync.Mutex
	rate float64 // shards per second
	warm bool
}

// tick folds one observation window into the EWMA.
func (d *drainRate) tick(completed int64, dt time.Duration) {
	if d == nil || dt <= 0 {
		return
	}
	inst := float64(completed) / dt.Seconds()
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.warm {
		// Cold start: no completion has ever been seen, so there is no
		// rate to decay toward — the first productive window seeds it.
		if completed == 0 {
			return
		}
		d.rate = inst
		d.warm = true
		return
	}
	d.rate += drainAlpha * (inst - d.rate)
}

// estimate returns the smoothed rate and whether the estimator has
// warmed up. Nil-safe.
func (d *drainRate) estimate() (float64, bool) {
	if d == nil {
		return 0, false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.rate, d.warm
}

// retryAfterSecs converts an estimated queue wait into the Retry-After
// answer for a rejected request: ceil(queued shards ÷ drain rate),
// clamped to [1, max] seconds. The floor matters under an
// empty-then-bursty queue — a fast drain over an empty queue estimates
// ~0s, and "Retry-After: 0" invites the thundering herd right back.
// Cold estimators answer the 1s floor.
func retryAfterSecs(queued int, rate float64, warm bool, max time.Duration) int {
	secs := 1
	if warm && rate > 0 {
		secs = int(math.Ceil(float64(queued+1) / rate))
	}
	if secs < 1 {
		secs = 1
	}
	if maxS := int(max / time.Second); maxS >= 1 && secs > maxS {
		secs = maxS
	}
	return secs
}

// brownoutState is the degradation controller's position, framed as a
// breaker: closed = full service, open = browned out (new requests are
// downgraded), half-open = load has dropped below the low-water mark
// and the controller is waiting out the hold before restoring full
// service.
type brownoutState int32

const (
	brownClosed brownoutState = iota
	brownHalfOpen
	brownOpen
)

func (s brownoutState) String() string {
	switch s {
	case brownClosed:
		return "closed"
	case brownHalfOpen:
		return "half-open"
	case brownOpen:
		return "open"
	}
	return fmt.Sprintf("brownoutState(%d)", int32(s))
}

// brownoutAlpha is the queue-delay EWMA smoothing factor (per shard
// dequeue observation).
const brownoutAlpha = 0.2

// brownout watches the queue-delay EWMA and decides when the service
// degrades. Hysteresis is two-threshold plus a hold: the controller
// opens when the EWMA crosses high, moves to half-open when it falls
// below low (< high), and only closes after hold consecutive
// below-low observations — so a saturated fleet is not flapped between
// full and degraded service by every lull.
type brownout struct {
	high, low float64 // ns
	hold      int

	mu    sync.Mutex
	ewma  float64 // ns
	state brownoutState
	calm  int
	opens int64
}

// newBrownout builds a controller; high <= 0 disables (nil receiver).
func newBrownout(high, low time.Duration, hold int) *brownout {
	if high <= 0 {
		return nil
	}
	if low <= 0 || low >= high {
		low = high / 2
	}
	if hold <= 0 {
		hold = 3
	}
	return &brownout{high: float64(high), low: float64(low), hold: hold}
}

// observe folds one queue-delay sample into the EWMA and advances the
// state machine. Nil-safe (disabled controller never opens).
func (b *brownout) observe(wait time.Duration) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.ewma += brownoutAlpha * (float64(wait) - b.ewma)
	switch b.state {
	case brownClosed:
		if b.ewma > b.high {
			b.state = brownOpen
			b.opens++
		}
	case brownOpen:
		if b.ewma < b.low {
			b.state = brownHalfOpen
			b.calm = 0
		}
	case brownHalfOpen:
		switch {
		case b.ewma > b.high:
			b.state = brownOpen
			b.opens++
		case b.ewma < b.low:
			b.calm++
			if b.calm >= b.hold {
				b.state = brownClosed
			}
		default:
			// Between the water marks: neither recovering nor relapsing;
			// the hold starts over.
			b.calm = 0
		}
	}
}

// snapshot returns the state, the current EWMA, and how many times the
// controller has opened. Nil-safe: disabled reads as closed.
func (b *brownout) snapshot() (brownoutState, time.Duration, int64) {
	if b == nil {
		return brownClosed, 0, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state, time.Duration(b.ewma), b.opens
}

// degrading reports whether new requests should be downgraded now.
func (b *brownout) degrading() bool {
	if b == nil {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state == brownOpen
}
