package main

import (
	"context"
	"net/http"
	"sync/atomic"
	"time"

	"memverify/internal/chaos"
)

// chaosPlan is one request's fault assignment, carried in the request
// context from the chaos middleware down to the fleet workers (the
// worker-level kinds: panic, slow, degrade).
type chaosPlan struct {
	fault chaos.Kind
	slow  time.Duration
	// fired makes worker-level faults one-shot per request: a
	// multi-address request runs many shards, but a single injected
	// panic is the scenario — and it keeps retried shard math simple.
	fired atomic.Bool
}

// take claims the plan's fault if it is kind k and not yet fired.
// Nil-safe (no plan, no fault).
func (p *chaosPlan) take(k chaos.Kind) bool {
	return p != nil && p.fault == k && p.fired.CompareAndSwap(false, true)
}

// is reports the plan's fault kind without consuming it (for
// request-level kinds like degrade). Nil-safe.
func (p *chaosPlan) is(k chaos.Kind) bool {
	return p != nil && p.fault == k
}

type chaosPlanKey struct{}

// planFrom extracts the request's chaos plan (nil when chaos is off or
// the request drew no fault).
func planFrom(ctx context.Context) *chaosPlan {
	p, _ := ctx.Value(chaosPlanKey{}).(*chaosPlan)
	return p
}

// chaosMiddleware turns fault assignments into injected faults on
// /v1/verify when the server runs with chaos enabled. Assignments come
// from the X-Chaos-Fault header (the load generator owns the seeded
// schedule and stamps it per request) or, when the server was given
// its own rate, from the seeded injector. Connection-level kinds (500,
// drop) fire here; worker-level kinds (panic, slow, degrade) ride the
// context into the solve path. Every fired fault is logged by the
// injector and counted per kind in the registry.
func (s *Server) chaosMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !s.cfg.chaosEnabled || r.URL.Path != "/v1/verify" {
			next.ServeHTTP(w, r)
			return
		}
		kind := chaos.KindNone
		if h := r.Header.Get("X-Chaos-Fault"); h != "" {
			k, err := chaos.ParseKind(h)
			if err != nil {
				writeError(w, http.StatusBadRequest, "%v", err)
				return
			}
			kind = k
			s.chaosInj.Force(k)
		} else {
			for _, k := range chaos.Kinds() {
				if s.chaosInj.Fire(k) {
					kind = k
					break
				}
			}
		}
		if kind != chaos.KindNone {
			s.chaosFired[kind].Inc()
		}
		switch kind {
		case chaos.KindError500:
			writeError(w, http.StatusInternalServerError, "chaos: injected 500")
			return
		case chaos.KindDropConn:
			if hj, ok := w.(http.Hijacker); ok {
				if conn, _, err := hj.Hijack(); err == nil {
					conn.Close()
					return
				}
			}
			// No hijack support (HTTP/2, tests with plain recorders):
			// the closest observable effect is an empty 500.
			writeError(w, http.StatusInternalServerError, "chaos: injected connection drop")
			return
		case chaos.KindNone:
			next.ServeHTTP(w, r)
			return
		default:
			plan := &chaosPlan{fault: kind, slow: s.cfg.chaosSlow}
			next.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), chaosPlanKey{}, plan)))
		}
	})
}

// recoveryMiddleware keeps a panicking handler from killing its
// connection: the panic is recovered, counted, and answered as a JSON
// 500, and the server stays serviceable. Worker-fleet panics are
// recovered closer to the solve (see runShard and the shard closures);
// this is the last line of defense for everything else on the mux.
func (s *Server) recoveryMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				s.stats.Panics.Inc()
				// Best-effort: if the handler already wrote a header,
				// this is a no-op on the status line but the connection
				// still survives.
				writeError(w, http.StatusInternalServerError, "internal error: %v", rec)
			}
		}()
		next.ServeHTTP(w, r)
	})
}
