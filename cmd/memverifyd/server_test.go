package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"memverify/internal/reduction"
	"memverify/internal/sat"
	"memverify/internal/trace"
)

const coherentTrace = `init x 0
P0: W x 1
P0: W x 2
P1: R x 1
P1: R x 2
`

const incoherentTrace = `init x 0
P0: W x 1
P1: R x 9
`

// newTestServer boots a service and its HTTP front end for one test.
func newTestServer(t *testing.T, cfg serverConfig) (*Server, *httptest.Server) {
	t.Helper()
	s := newServer(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

// postTrace sends a raw-text verify request and decodes the response.
func postTrace(t *testing.T, ts *httptest.Server, query, body string) (*http.Response, *VerifyResponse) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/verify"+query, "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var vr VerifyResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&vr); err != nil {
			t.Fatalf("decoding response: %v", err)
		}
	}
	return resp, &vr
}

func TestVerifyCoherent(t *testing.T) {
	_, ts := newTestServer(t, serverConfig{workers: 2})
	resp, vr := postTrace(t, ts, "", coherentTrace)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if vr.Verdict != "coherent" || vr.Model != "Coherence" || vr.Cached {
		t.Errorf("unexpected response: %+v", vr)
	}
	if len(vr.Addrs) != 1 || vr.Addrs[0].Addr != "x" || vr.Addrs[0].Verdict != "coherent" {
		t.Errorf("per-address slice wrong: %+v", vr.Addrs)
	}
}

func TestVerifyIncoherent(t *testing.T) {
	_, ts := newTestServer(t, serverConfig{workers: 2})
	resp, vr := postTrace(t, ts, "", incoherentTrace)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if vr.Verdict != "incoherent" || vr.Violation != "x" {
		t.Errorf("unexpected response: %+v", vr)
	}
}

func TestVerifyJSONEnvelope(t *testing.T) {
	_, ts := newTestServer(t, serverConfig{workers: 2})
	body, _ := json.Marshal(VerifyRequest{Trace: coherentTrace, Model: "sc", Strategy: "auto"})
	resp, err := http.Post(ts.URL+"/v1/verify", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var vr VerifyResponse
	if err := json.NewDecoder(resp.Body).Decode(&vr); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || vr.Verdict != "consistent" || vr.Model != "SC" {
		t.Errorf("status %d response %+v", resp.StatusCode, vr)
	}
}

func TestVerifyBadRequests(t *testing.T) {
	_, ts := newTestServer(t, serverConfig{workers: 2})
	for name, tc := range map[string]struct{ query, body string }{
		"garbage trace":    {"", "this is not a trace\n"},
		"unknown model":    {"?model=weird", coherentTrace},
		"unknown strategy": {"?strategy=weird", coherentTrace},
		"bad max_states":   {"?max_states=banana", coherentTrace},
	} {
		resp, _ := postTrace(t, ts, tc.query, tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
	// Wrong method.
	resp, err := http.Get(ts.URL + "/v1/verify")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET status %d", resp.StatusCode)
	}
}

// TestBackpressure fills the admission semaphore and proves overload is
// answered with 429 + Retry-After and nothing is buffered: queue depth
// stays zero, so memory under overload is bounded by maxInflight.
func TestBackpressure(t *testing.T) {
	s, ts := newTestServer(t, serverConfig{workers: 1, maxInflight: 2, queueDepth: 4})
	// Occupy every admission slot directly; requests arriving now are
	// beyond capacity by construction.
	s.inflight <- struct{}{}
	s.inflight <- struct{}{}
	resp, _ := postTrace(t, ts, "", coherentTrace)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("missing Retry-After header")
	} else if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
		t.Errorf("Retry-After %q: must be an integer >= 1", ra)
	}
	if got := s.stats.Rejected.Value(); got != 1 {
		t.Errorf("rejected counter %d, want 1", got)
	}
	if len(s.queue) != 0 {
		t.Errorf("rejected request leaked %d entries into the shard queue", len(s.queue))
	}
	// Draining the semaphore restores service.
	<-s.inflight
	<-s.inflight
	resp, vr := postTrace(t, ts, "", coherentTrace)
	if resp.StatusCode != http.StatusOK || vr.Verdict != "coherent" {
		t.Errorf("service did not recover: status %d %+v", resp.StatusCode, vr)
	}
}

func TestCacheHit(t *testing.T) {
	s, ts := newTestServer(t, serverConfig{workers: 2})
	_, first := postTrace(t, ts, "", coherentTrace)
	resp, second := postTrace(t, ts, "", coherentTrace)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if first.Cached || !second.Cached {
		t.Errorf("cached flags: first=%v second=%v", first.Cached, second.Cached)
	}
	if second.Verdict != first.Verdict || len(second.Addrs) != len(first.Addrs) {
		t.Errorf("cached response diverges: %+v vs %+v", second, first)
	}
	if h, m := s.stats.CacheHits.Value(), s.stats.CacheMisses.Value(); h != 1 || m != 1 {
		t.Errorf("cache counters hits=%d misses=%d", h, m)
	}
	// A different budget is a different key.
	_, third := postTrace(t, ts, "?max_states=100000", coherentTrace)
	if third.Cached {
		t.Error("budget change hit the old cache entry")
	}
}

// orderedTraceGood and orderedTraceBad share one execution
// (histories/initial/final — and therefore one execution fingerprint)
// and differ only in their order lines: the good order admits an SC
// schedule, the bad one contradicts the read sequence.
const orderedTraceGood = `init x 0
P0: W x 1
P1: W x 2
P2: R x 1
P2: R x 2
order x P0[0] P1[0]
`

const orderedTraceBad = `init x 0
P0: W x 1
P1: W x 2
P2: R x 1
P2: R x 2
order x P1[0] P0[0]
`

// TestCacheKeyIncludesWriteOrders proves two traces with identical
// executions but different order lines do not share a cache entry when
// use_order is in play — the second must get its own (opposite)
// verdict, not the first one's cached answer.
func TestCacheKeyIncludesWriteOrders(t *testing.T) {
	_, ts := newTestServer(t, serverConfig{workers: 2})
	resp, first := postTrace(t, ts, "?model=sc&use_order=true", orderedTraceGood)
	if resp.StatusCode != http.StatusOK || first.Verdict != "consistent" {
		t.Fatalf("good order: status %d %+v", resp.StatusCode, first)
	}
	resp, second := postTrace(t, ts, "?model=sc&use_order=true", orderedTraceBad)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bad order: status %d", resp.StatusCode)
	}
	if second.Cached {
		t.Error("different order lines served the first trace's cache entry")
	}
	if second.Verdict != "inconsistent" {
		t.Errorf("bad order verdict %q, want inconsistent", second.Verdict)
	}
	// An identical repeat still hits.
	_, third := postTrace(t, ts, "?model=sc&use_order=true", orderedTraceBad)
	if !third.Cached || third.Verdict != "inconsistent" {
		t.Errorf("repeat of bad order: %+v", third)
	}
}

// TestCacheKeyCanonicalSpellings proves equivalent model/strategy
// spellings share one cache entry instead of fragmenting the LRU.
func TestCacheKeyCanonicalSpellings(t *testing.T) {
	s, ts := newTestServer(t, serverConfig{workers: 2})
	postTrace(t, ts, "", coherentTrace) // model "", strategy ""
	_, second := postTrace(t, ts, "?model=COHERENCE&strategy=auto", coherentTrace)
	if !second.Cached {
		t.Error("canonical-equivalent spellings missed the cache")
	}
	if n := s.cache.len(); n != 1 {
		t.Errorf("cache fragmented into %d entries, want 1", n)
	}
}

// TestNegativeBudgetsRejected proves negative budgets are rejected in
// both request encodings — downstream they would read as "unlimited"
// and bypass the server ceilings.
func TestNegativeBudgetsRejected(t *testing.T) {
	_, ts := newTestServer(t, serverConfig{workers: 2})
	for name, body := range map[string]VerifyRequest{
		"json negative max_states": {Trace: coherentTrace, MaxStates: -1},
		"json negative timeout_ms": {Trace: coherentTrace, TimeoutMS: -1},
	} {
		b, _ := json.Marshal(body)
		resp, err := http.Post(ts.URL+"/v1/verify", "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
	for _, query := range []string{"?max_states=-1", "?timeout_ms=-1"} {
		resp, _ := postTrace(t, ts, query, coherentTrace)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("query %s: status %d, want 400", query, resp.StatusCode)
		}
	}
}

// TestShutdownAnswers503 proves an enqueue failure during shutdown is
// reported as 503 Service Unavailable and counted as unavailable, not
// blamed on the client as a 400 parse error.
func TestShutdownAnswers503(t *testing.T) {
	s := newServer(serverConfig{workers: 2})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	s.Close() // fleet stopped: enqueue can only fail with errShuttingDown
	resp, _ := postTrace(t, ts, "", coherentTrace)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if u, p := s.stats.Unavailable.Value(), s.stats.ParseErrors.Value(); u != 1 || p != 0 {
		t.Errorf("counters unavailable=%d parse_errors=%d, want 1/0", u, p)
	}
}

// hardTrace reduces an unsatisfiable formula to a single-address VMC
// instance whose complete search runs for seconds — long enough that
// budgets and cancellation strike mid-search.
func hardTrace(t *testing.T) string {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	const m = 8
	f := &sat.Formula{NumVars: m}
	for bits := 0; bits < 8; bits++ {
		c := sat.Clause{}
		for k := 0; k < 3; k++ {
			l := sat.Lit(k + 1)
			if bits&(1<<k) != 0 {
				l = l.Neg()
			}
			c = append(c, l)
		}
		f.Clauses = append(f.Clauses, c)
	}
	for j := 0; j < 2*m; j++ {
		c := sat.Clause{}
		for k := 0; k < 1+rng.Intn(3); k++ {
			l := sat.Lit(1 + rng.Intn(m))
			if rng.Intn(2) == 0 {
				l = l.Neg()
			}
			c = append(c, l)
		}
		f.Clauses = append(f.Clauses, c)
	}
	inst, err := reduction.SATToVMC(f)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.Write(&buf, trace.New(inst.Exec)); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestUndecidedOnBudget(t *testing.T) {
	s, ts := newTestServer(t, serverConfig{workers: 2})
	resp, vr := postTrace(t, ts, "?max_states=200", hardTrace(t))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if vr.Verdict != "undecided" || vr.Reason == "" {
		t.Errorf("want undecided with reason, got %+v", vr)
	}
	// Undecided answers are not cached.
	_, again := postTrace(t, ts, "?max_states=200", hardTrace(t))
	if again.Cached {
		t.Error("undecided verdict was cached")
	}
	if s.stats.Undecided.Value() != 2 {
		t.Errorf("undecided counter %d", s.stats.Undecided.Value())
	}
}

// TestCancellationMidRequest proves a client disconnect propagates as
// context cancellation into the running search: the handler returns
// long before the multi-second search could finish, and the server
// counts the cancellation.
func TestCancellationMidRequest(t *testing.T) {
	s, ts := newTestServer(t, serverConfig{workers: 2})
	body := hardTrace(t)
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/verify", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	resp, err := http.DefaultClient.Do(req)
	if err == nil {
		resp.Body.Close()
		t.Fatal("request succeeded despite cancellation")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v to take effect", elapsed)
	}
	// The handler finishes asynchronously after the client is gone; the
	// cancelled counter confirms the search aborted via the context.
	deadline := time.Now().Add(5 * time.Second)
	for s.stats.Cancelled.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("server never recorded the cancellation")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestHealthzAndStats(t *testing.T) {
	_, ts := newTestServer(t, serverConfig{workers: 2})
	postTrace(t, ts, "", coherentTrace)
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", err, resp)
	}
	resp.Body.Close()
	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats["requests"].(float64) < 1 || stats["decided"].(float64) < 1 {
		t.Errorf("stats did not count the request: %v", stats)
	}
	// The obs debug surface is mounted.
	resp, err = http.Get(ts.URL + "/debug/vars")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("debug/vars: %v %v", err, resp)
	}
	resp.Body.Close()
}

// TestLoadgenSmoke runs the load generator end to end on a small
// workload and validates the report it writes.
func TestLoadgenSmoke(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	err := runLoadgen(
		serverConfig{workers: 4, maxInflight: 32},
		loadgenConfig{requests: 60, conc: 4, out: out, seed: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep benchReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Schema != "memverifyd-loadgen/v3" {
		t.Errorf("schema %q", rep.Schema)
	}
	if rep.Requests+rep.Errors+rep.Rejected != 60 {
		t.Errorf("sample accounting: %+v", rep)
	}
	if rep.Errors != 0 {
		t.Errorf("loadgen saw %d errors", rep.Errors)
	}
	if rep.Throughput <= 0 || rep.Latency.P50 <= 0 || rep.Latency.P99 < rep.Latency.P50 {
		t.Errorf("implausible latency/throughput: %+v", rep)
	}
	if rep.Cache.Hits == 0 {
		t.Errorf("no cache hits on a repeating workload: %+v", rep.Cache)
	}
	if rep.Verdicts["coherent"] == 0 || rep.Verdicts["incoherent"] == 0 {
		t.Errorf("verdict mix missing a class: %v", rep.Verdicts)
	}
	// v2: the server-side stage quantiles scraped from /metrics.
	if rep.Server.ScrapeSamples == 0 {
		t.Errorf("no /metrics samples scraped")
	}
	for _, stage := range []string{"parse", "queue", "solve", "merge"} {
		if rep.Server.Stages[stage].Count == 0 {
			t.Errorf("stage %q has no observations: %+v", stage, rep.Server.Stages)
		}
	}
	if rep.Server.Request.Count != int64(rep.Requests) {
		t.Errorf("request histogram count %d, want %d completed", rep.Server.Request.Count, rep.Requests)
	}
}

func ExampleVerifyResponse() {
	// Shape of a verdict as clients see it.
	resp := VerifyResponse{Verdict: "coherent", Model: "Coherence", Strategy: "auto"}
	b, _ := json.Marshal(resp)
	fmt.Println(string(b))
	// Output: {"verdict":"coherent","model":"Coherence","strategy":"auto","stats":{"states":0,"memo_hits":0,"branches":0,"duration_ms":0},"cached":false,"elapsed_ms":0}
}
