package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"memverify/internal/obs"
)

// syncBuffer is a mutex-guarded bytes.Buffer: the JSONL sink flushes
// from handler goroutines while the test reads.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestRequestIDHeader checks every verify response carries an
// X-Request-ID (also echoed in the body), and that a client-supplied id
// survives end to end.
func TestRequestIDHeader(t *testing.T) {
	_, ts := newTestServer(t, serverConfig{workers: 2})
	resp, vr := postTrace(t, ts, "", coherentTrace)
	id := resp.Header.Get("X-Request-ID")
	if id == "" {
		t.Fatal("no X-Request-ID header")
	}
	if vr.RequestID != id {
		t.Errorf("body request_id %q != header %q", vr.RequestID, id)
	}
	// A second request gets a different id.
	resp2, _ := postTrace(t, ts, "", coherentTrace)
	if id2 := resp2.Header.Get("X-Request-ID"); id2 == "" || id2 == id {
		t.Errorf("ids not unique: %q then %q", id, id2)
	}
	// A client-supplied id is honored.
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/verify", strings.NewReader(coherentTrace))
	req.Header.Set("X-Request-ID", "client-chose-this")
	resp3, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if got := resp3.Header.Get("X-Request-ID"); got != "client-chose-this" {
		t.Errorf("client id not honored: %q", got)
	}
}

// TestRequestIDInTraceSpans checks the stitching contract: with a JSONL
// trace sink configured, the spans of a request — the request span and
// the solver spans nested under it — carry that request's id in their
// req field, so a logged response joins against the server trace.
func TestRequestIDInTraceSpans(t *testing.T) {
	var buf syncBuffer
	jl := obs.NewJSONL(&buf)
	_, ts := newTestServer(t, serverConfig{workers: 2, traceSink: jl})
	resp, _ := postTrace(t, ts, "", coherentTrace)
	id := resp.Header.Get("X-Request-ID")
	if id == "" {
		t.Fatal("no X-Request-ID header")
	}
	// Span-end defers run after the response is written; poll.
	deadline := time.Now().Add(5 * time.Second)
	var spans map[string]int
	for {
		jl.Flush()
		spans = spanNamesForReq(t, buf.String(), id)
		// The request span plus at least one nested solver span (the
		// solver names its top span after the strategy, e.g.
		// "solve-auto") must carry the id.
		if spans["request"] > 0 && len(spans) >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("spans for request %q never appeared; got %v", id, spans)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if spans["request"] != 1 {
		t.Errorf("want exactly one request span for %q, got %v", id, spans)
	}
}

// spanNamesForReq parses a JSONL trace and counts span_begin events
// carrying req == id, by span name.
func spanNamesForReq(t *testing.T, trace, id string) map[string]int {
	t.Helper()
	out := map[string]int{}
	for _, line := range strings.Split(trace, "\n") {
		if line == "" {
			continue
		}
		var ev struct {
			Ev   string `json:"ev"`
			Name string `json:"name"`
			Req  string `json:"req"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad JSONL line %q: %v", line, err)
		}
		if ev.Ev == "span_begin" && ev.Req == id {
			out[ev.Name]++
		}
	}
	return out
}

// TestMetricsEndpoint drives a few requests and scrapes /metrics: the
// exposition must parse (strict parser from promscrape.go), the stage
// histograms must have observations, and the gauges and counters the
// ISSUE names must be present.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, serverConfig{workers: 2})
	postTrace(t, ts, "", coherentTrace)
	postTrace(t, ts, "", coherentTrace) // cache hit: no solve stage
	postTrace(t, ts, "", incoherentTrace)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type %q", ct)
	}
	samples, err := parsePromText(string(body))
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}
	byName := map[string]int{}
	for _, s := range samples {
		byName[s.name]++
	}
	for _, name := range []string{
		"memverifyd_requests_total", "memverifyd_cache_hits_total",
		"memverifyd_queue_depth", "memverifyd_in_flight",
		"memverifyd_workers_busy", "memverifyd_worker_utilization",
		"memverifyd_workers", "memverifyd_cache_len",
	} {
		if byName[name] == 0 {
			t.Errorf("metric %s missing from exposition", name)
		}
	}
	stages := collectHistograms(samples, "memverifyd_stage_duration_seconds", "stage")
	for _, stage := range []string{"parse", "cache", "queue", "solve", "merge"} {
		h, ok := stages[stage]
		if !ok || h.count == 0 {
			t.Errorf("stage %q histogram empty", stage)
		}
	}
	if h, ok := collectHistograms(samples, "memverifyd_request_duration_seconds", "")[""]; !ok || h.count != 3 {
		t.Errorf("request histogram: %+v", h)
	}
}

// TestDebugTimings checks ?debug=timings echoes the stage breakdown.
func TestDebugTimings(t *testing.T) {
	_, ts := newTestServer(t, serverConfig{workers: 2})
	_, vr := postTrace(t, ts, "?debug=timings", coherentTrace)
	if vr.Timings == nil {
		t.Fatal("no timings in response")
	}
	for _, key := range []string{"parse_ms", "cache_ms", "queue_wait_ms", "solve_ms", "merge_ms", "shards", "total_ms"} {
		if _, ok := vr.Timings[key]; !ok {
			t.Errorf("timings missing %q: %v", key, vr.Timings)
		}
	}
	if vr.Timings["total_ms"] <= 0 || vr.Timings["shards"] != 1 {
		t.Errorf("implausible timings: %v", vr.Timings)
	}
	// Without the flag the field stays off the wire.
	_, plain := postTrace(t, ts, "", coherentTrace)
	if plain.Timings != nil {
		t.Errorf("timings leaked without debug flag: %v", plain.Timings)
	}
}

// TestDebugRequestsInflight holds a slow request mid-solve and checks
// GET /debug/requests shows it in the in-flight table with its id and
// stage — then, after completion of a fast request, checks the slowest
// table records stage breakdowns.
func TestDebugRequestsInflight(t *testing.T) {
	_, ts := newTestServer(t, serverConfig{workers: 2})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	slow, _ := http.NewRequestWithContext(ctx, http.MethodPost,
		ts.URL+"/v1/verify", strings.NewReader(hardTrace(t)))
	slow.Header.Set("X-Request-ID", "slow-one")
	done := make(chan struct{})
	go func() {
		defer close(done)
		if resp, err := http.DefaultClient.Do(slow); err == nil {
			resp.Body.Close()
		}
	}()
	type debugResp struct {
		InFlight []reqRecord `json:"in_flight"`
		Slowest  []reqRecord `json:"slowest"`
	}
	fetch := func() debugResp {
		resp, err := http.Get(ts.URL + "/debug/requests")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var dr debugResp
		if err := json.NewDecoder(resp.Body).Decode(&dr); err != nil {
			t.Fatal(err)
		}
		return dr
	}
	deadline := time.Now().Add(10 * time.Second)
	var seen *reqRecord
	for seen == nil {
		if time.Now().After(deadline) {
			t.Fatal("slow request never appeared in /debug/requests in-flight table")
		}
		dr := fetch()
		for i := range dr.InFlight {
			if dr.InFlight[i].ID == "slow-one" {
				seen = &dr.InFlight[i]
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	if seen.Stage != "solve" {
		t.Errorf("in-flight stage %q, want solve", seen.Stage)
	}
	if seen.AgeMS <= 0 {
		t.Errorf("in-flight age %v", seen.AgeMS)
	}
	cancel()
	<-done

	// A completed request lands in the slowest table with its breakdown.
	resp, _ := postTrace(t, ts, "", coherentTrace)
	id := resp.Header.Get("X-Request-ID")
	deadline = time.Now().Add(5 * time.Second)
	for {
		dr := fetch()
		var rec *reqRecord
		for i := range dr.Slowest {
			if dr.Slowest[i].ID == id {
				rec = &dr.Slowest[i]
			}
		}
		if rec != nil {
			if rec.Verdict != "coherent" || rec.DurationMS <= 0 || rec.Timings["total_ms"] <= 0 {
				t.Errorf("slow-table record incomplete: %+v", *rec)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("completed request never reached the slowest table")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestStatsGauges checks /v1/stats carries the live saturation gauges.
func TestStatsGauges(t *testing.T) {
	_, ts := newTestServer(t, serverConfig{workers: 3})
	postTrace(t, ts, "", coherentTrace)
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"queue_depth", "in_flight", "workers_busy", "workers"} {
		if _, ok := stats[key]; !ok {
			t.Errorf("stats missing %q: %v", key, stats)
		}
	}
	if stats["workers"].(float64) != 3 {
		t.Errorf("workers = %v, want 3", stats["workers"])
	}
}
