package main

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// reqIDPrefix is a per-process random prefix, so ids minted by
// successive server runs stay distinct in aggregated logs.
var reqIDPrefix = func() string {
	var b [4]byte
	rand.Read(b[:])
	return hex.EncodeToString(b[:])
}()

var reqIDSeq atomic.Int64

// newRequestID returns the id for one request: a client-supplied
// X-Request-ID when present (so ids minted upstream of a proxy survive
// end to end), otherwise "prefix-seq".
func newRequestID(r *http.Request) string {
	if id := r.Header.Get("X-Request-ID"); id != "" && len(id) <= 128 {
		return id
	}
	return fmt.Sprintf("%s-%06d", reqIDPrefix, reqIDSeq.Add(1))
}

// reqTimings accumulates one request's per-stage durations. Queue and
// solve are summed across shards (which run concurrently, hence the
// atomics) and also tracked as per-shard maxima: the sum is the compute
// the request consumed, the max is its critical path through the fleet.
type reqTimings struct {
	parse    atomic.Int64
	cache    atomic.Int64
	merge    atomic.Int64
	queueSum atomic.Int64
	queueMax atomic.Int64
	solveSum atomic.Int64
	solveMax atomic.Int64
	shards   atomic.Int64
}

func atomicMax(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

func (t *reqTimings) addParse(d time.Duration) { t.parse.Add(int64(d)) }
func (t *reqTimings) addCache(d time.Duration) { t.cache.Add(int64(d)) }
func (t *reqTimings) addMerge(d time.Duration) { t.merge.Add(int64(d)) }

func (t *reqTimings) addQueue(d time.Duration) {
	t.queueSum.Add(int64(d))
	atomicMax(&t.queueMax, int64(d))
}

func (t *reqTimings) addSolve(d time.Duration) {
	t.solveSum.Add(int64(d))
	atomicMax(&t.solveMax, int64(d))
	t.shards.Add(1)
}

// ms converts nanoseconds to float milliseconds.
func ms(ns int64) float64 { return float64(ns) / float64(time.Millisecond) }

// debugMap renders the stage breakdown echoed under ?debug=timings and
// stored with slow requests.
func (t *reqTimings) debugMap(total time.Duration) map[string]float64 {
	return map[string]float64{
		"parse_ms":          ms(t.parse.Load()),
		"cache_ms":          ms(t.cache.Load()),
		"queue_wait_ms":     ms(t.queueSum.Load()),
		"queue_wait_max_ms": ms(t.queueMax.Load()),
		"solve_ms":          ms(t.solveSum.Load()),
		"solve_max_ms":      ms(t.solveMax.Load()),
		"merge_ms":          ms(t.merge.Load()),
		"shards":            float64(t.shards.Load()),
		"total_ms":          ms(int64(total)),
	}
}

// reqRecord is the JSON shape of one request in GET /debug/requests —
// both the in-flight table (Stage, AgeMS live) and the slow-request
// ring (DurationMS, Verdict, Timings final).
type reqRecord struct {
	ID         string             `json:"id"`
	Remote     string             `json:"remote,omitempty"`
	Model      string             `json:"model,omitempty"`
	Stage      string             `json:"stage,omitempty"`
	AgeMS      float64            `json:"age_ms,omitempty"`
	DurationMS float64            `json:"duration_ms,omitempty"`
	Verdict    string             `json:"verdict,omitempty"`
	Timings    map[string]float64 `json:"timings,omitempty"`
}

// liveReq is one admitted, not-yet-answered request. Mutable fields
// are guarded by the owning table's mutex.
type liveReq struct {
	id     string
	remote string
	start  time.Time
	model  string
	stage  string
}

// requestTable tracks every in-flight request and keeps the N slowest
// completed ones (with their stage breakdowns) — the data behind
// GET /debug/requests, so a stuck or slow request can be found and
// blamed on a stage without restarting the server.
type requestTable struct {
	mu       sync.Mutex
	inflight map[string]*liveReq
	slowest  []reqRecord // sorted by DurationMS descending
	keep     int
}

func newRequestTable(keep int) *requestTable {
	if keep <= 0 {
		keep = 32
	}
	return &requestTable{inflight: make(map[string]*liveReq), keep: keep}
}

// start admits a request into the in-flight table.
func (t *requestTable) start(id, remote string) *liveReq {
	lr := &liveReq{id: id, remote: remote, start: time.Now(), stage: "parse"}
	t.mu.Lock()
	t.inflight[id] = lr
	t.mu.Unlock()
	return lr
}

// setStage marks the request's current stage.
func (t *requestTable) setStage(lr *liveReq, stage string) {
	if lr == nil {
		return
	}
	t.mu.Lock()
	lr.stage = stage
	t.mu.Unlock()
}

// setModel records the parsed model for display.
func (t *requestTable) setModel(lr *liveReq, model string) {
	if lr == nil {
		return
	}
	t.mu.Lock()
	lr.model = model
	t.mu.Unlock()
}

// finish removes the request from the in-flight table and, when it
// ranks among the slowest seen, records it with its stage breakdown.
func (t *requestTable) finish(lr *liveReq, verdict string, timings map[string]float64) {
	if lr == nil {
		return
	}
	dur := time.Since(lr.start)
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.inflight, lr.id)
	durMS := ms(int64(dur))
	if len(t.slowest) == t.keep && durMS <= t.slowest[len(t.slowest)-1].DurationMS {
		return
	}
	rec := reqRecord{
		ID:         lr.id,
		Remote:     lr.remote,
		Model:      lr.model,
		DurationMS: durMS,
		Verdict:    verdict,
		Timings:    timings,
	}
	i := sort.Search(len(t.slowest), func(i int) bool { return t.slowest[i].DurationMS < durMS })
	t.slowest = append(t.slowest, reqRecord{})
	copy(t.slowest[i+1:], t.slowest[i:])
	t.slowest[i] = rec
	if len(t.slowest) > t.keep {
		t.slowest = t.slowest[:t.keep]
	}
}

// snapshot renders both tables, in-flight ordered oldest first.
func (t *requestTable) snapshot() (inflight, slowest []reqRecord) {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := time.Now()
	inflight = make([]reqRecord, 0, len(t.inflight))
	for _, lr := range t.inflight {
		inflight = append(inflight, reqRecord{
			ID:     lr.id,
			Remote: lr.remote,
			Model:  lr.model,
			Stage:  lr.stage,
			AgeMS:  ms(int64(now.Sub(lr.start))),
		})
	}
	sort.Slice(inflight, func(i, j int) bool { return inflight[i].AgeMS > inflight[j].AgeMS })
	slowest = append([]reqRecord(nil), t.slowest...)
	return inflight, slowest
}
