// Command memverifyd is the long-running verification service: POST a
// trace, get a verdict. Per-address VMC work is sharded across a
// bounded worker fleet (largest projection first), admission is bounded
// with backpressure (429 + an adaptive Retry-After priced from the
// observed drain rate), decided verdicts are cached by execution
// fingerprint, and the service carries its own telemetry: every request
// gets an X-Request-ID (propagated into the obs span trace), every
// stage (parse, cache, queue, solve, merge) feeds a latency histogram,
// and live saturation gauges, the Prometheus exposition, and
// in-flight/slowest request tables are all served over HTTP.
//
// The request path is built to survive overload and faults: client
// deadlines propagate in (X-Deadline-Ms header or deadline_ms field)
// and expired work is dropped before it burns a worker (504),
// unserviceable requests are shed early (429), a queue-delay brownout
// degrades new requests (exact -> resilient, shrunken budgets,
// "degraded": true in the response) with hysteretic recovery, panics
// anywhere are recovered into JSON 500s, and -chaos arms a seeded
// fault-injection layer for proving all of it deterministically.
//
// Endpoints:
//
//	POST /v1/verify       verify a trace (JSON envelope or raw trace
//	                      text; ?debug=timings echoes the stage split)
//	GET  /v1/healthz      liveness
//	GET  /v1/stats        service counters + saturation gauges
//	GET  /metrics         Prometheus text exposition (stage histograms,
//	                      gauges, counters)
//	GET  /debug/requests  in-flight request table + N slowest requests
//	                      with stage breakdowns
//	GET  /debug/vars      expvar (solver metrics included)
//	GET  /debug/pprof     pprof profiles
//
// With -loadgen the binary instead boots an in-process server, drives a
// randomized workload against it through the resilient internal/client
// over real HTTP, scrapes /metrics for the server-side stage quantiles,
// and writes a combined report (BENCH_PR8.json schema
// "memverifyd-loadgen/v3") to -loadgen-out; -loadgen-chaos additionally
// drives the seeded fault schedule and reports availability,
// success-after-retry, shed and degraded rates under it.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"memverify/internal/obs"
)

func main() {
	var (
		addr        = flag.String("addr", "localhost:8372", "listen address")
		workers     = flag.Int("workers", runtime.NumCPU(), "verification worker fleet size")
		psearch     = flag.Int("psearch", 0, "parallel-search team size for each request's hardest address (0/1 = sequential)")
		maxInflight = flag.Int("max-inflight", 64, "admitted requests before backpressure (429)")
		queueDepth  = flag.Int("queue", 256, "shard queue capacity")
		cacheSize   = flag.Int("cache", 1024, "result cache entries (0 disables)")
		maxStates   = flag.Int("max-states", 0, "default per-solve state budget (0 = unlimited)")
		timeout     = flag.Duration("timeout", 0, "default per-solve timeout (0 = none)")
		capStates   = flag.Int("cap-states", 0, "ceiling clamped onto request state budgets (0 = none)")
		capTimeout  = flag.Duration("cap-timeout", 0, "ceiling clamped onto request timeouts (0 = none)")
		traceOut    = flag.String("trace", "", "write a JSONL span/event trace of every request to this file (spans carry X-Request-ID)")
		slowReqs    = flag.Int("slow-requests", 32, "slowest requests kept for GET /debug/requests")

		retryMax      = flag.Duration("retry-after-max", 30*time.Second, "cap on the adaptive Retry-After answer (floor is always 1s)")
		brownHigh     = flag.Duration("brownout-high", 150*time.Millisecond, "queue-delay EWMA that opens the brownout (degrade new requests); 0 disables")
		brownLow      = flag.Duration("brownout-low", 0, "queue-delay EWMA below which brownout starts recovering (0 = high/2)")
		brownHold     = flag.Int("brownout-hold", 3, "consecutive calm observations before brownout closes")
		degradeStates = flag.Int("degrade-max-states", 20000, "state budget clamped onto browned-out requests")
		degradeTO     = flag.Duration("degrade-timeout", 250*time.Millisecond, "per-solve timeout clamped onto browned-out requests")

		chaosOn   = flag.Bool("chaos", false, "enable the seeded fault-injection layer on /v1/verify")
		chaosSeed = flag.Int64("chaos-seed", 1, "chaos: fault schedule seed")
		chaosRate = flag.Float64("chaos-rate", 0, "chaos: server-side per-kind fault rate (0 = header-driven only)")
		chaosSlow = flag.Duration("chaos-slow", 200*time.Millisecond, "chaos: stall injected by a slow-solve fault")

		loadgen      = flag.Bool("loadgen", false, "run the load generator against an in-process server and exit")
		loadgenN     = flag.Int("loadgen-requests", 400, "loadgen: total requests")
		loadgenConc  = flag.Int("loadgen-conc", 8, "loadgen: concurrent clients")
		loadgenOut   = flag.String("loadgen-out", "BENCH_PR8.json", "loadgen: report path")
		loadgenSeed  = flag.Int64("loadgen-seed", 1, "loadgen: workload seed")
		loadgenChaos = flag.Bool("loadgen-chaos", false, "loadgen: run the chaos harness (seeded fault schedule + resilient client)")
		loadgenRate  = flag.Float64("loadgen-chaos-rate", 0.05, "loadgen: fraction of requests assigned a fault")
		loadgenDL    = flag.Duration("loadgen-deadline", 0, "loadgen: per-request client deadline (0 = none)")
	)
	flag.Parse()

	cfg := serverConfig{
		workers:          *workers,
		psearch:          *psearch,
		maxInflight:      *maxInflight,
		queueDepth:       *queueDepth,
		cacheSize:        *cacheSize,
		maxStatesDefault: *maxStates,
		timeoutDefault:   *timeout,
		maxStatesCap:     *capStates,
		timeoutCap:       *capTimeout,
		slowRequests:     *slowReqs,
		retryAfterMax:    *retryMax,
		brownoutHigh:     *brownHigh,
		brownoutLow:      *brownLow,
		brownoutHold:     *brownHold,
		degradeMaxStates: *degradeStates,
		degradeTimeout:   *degradeTO,
		chaosEnabled:     *chaosOn,
		chaosSeed:        *chaosSeed,
		chaosRate:        *chaosRate,
		chaosSlow:        *chaosSlow,
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "memverifyd:", err)
			os.Exit(1)
		}
		jl := obs.NewJSONL(f)
		defer func() {
			jl.Close()
			f.Close()
		}()
		cfg.traceSink = jl
	}

	if *loadgen {
		// Loadgen keeps admission wide open relative to its own
		// concurrency: the report measures verification throughput, not
		// self-inflicted backpressure.
		if cfg.maxInflight < 2**loadgenConc {
			cfg.maxInflight = 2 * *loadgenConc
		}
		if *loadgenChaos {
			// The chaos harness needs the injection layer on and the
			// brownout off: degraded verdicts must come only from the
			// seeded schedule so two same-seed runs report identical
			// counts.
			cfg.chaosEnabled = true
			cfg.chaosSeed = *chaosSeed
			cfg.brownoutHigh = 0
		}
		if err := runLoadgen(cfg, loadgenConfig{
			requests:  *loadgenN,
			conc:      *loadgenConc,
			out:       *loadgenOut,
			seed:      *loadgenSeed,
			chaos:     *loadgenChaos,
			chaosRate: *loadgenRate,
			deadline:  *loadgenDL,
		}); err != nil {
			fmt.Fprintln(os.Stderr, "memverifyd:", err)
			os.Exit(1)
		}
		return
	}

	srv := newServer(cfg)
	defer srv.Close()
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "memverifyd:", err)
		os.Exit(1)
	}
	fmt.Printf("memverifyd listening on http://%s (workers=%d inflight=%d queue=%d cache=%d)\n",
		ln.Addr(), cfg.withDefaults().workers, cfg.withDefaults().maxInflight, cfg.queueDepth, cfg.cacheSize)
	httpSrv := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 10 * time.Second}
	// SIGINT/SIGTERM shut down gracefully so the deferred cleanups run —
	// without this, killing the service truncates the buffered -trace
	// JSONL mid-line.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		httpSrv.Shutdown(context.Background())
	}()
	if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
		fmt.Fprintln(os.Stderr, "memverifyd:", err)
		os.Exit(1)
	}
}
