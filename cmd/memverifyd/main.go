// Command memverifyd is the long-running verification service: POST a
// trace, get a verdict. Per-address VMC work is sharded across a
// bounded worker fleet (largest projection first), admission is bounded
// with backpressure (429 + Retry-After), decided verdicts are cached by
// execution fingerprint, and the standard obs debug endpoint (expvar +
// pprof) is mounted under /debug/.
//
// Endpoints:
//
//	POST /v1/verify   verify a trace (JSON envelope or raw trace text)
//	GET  /v1/healthz  liveness
//	GET  /v1/stats    service counters
//	GET  /debug/vars  expvar (solver metrics included)
//	GET  /debug/pprof pprof profiles
//
// With -loadgen the binary instead boots an in-process server, drives a
// randomized workload against it over real HTTP, and writes a
// throughput/latency/cache report (BENCH_PR6.json schema
// "memverifyd-loadgen/v1") to -loadgen-out.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"time"
)

func main() {
	var (
		addr        = flag.String("addr", "localhost:8372", "listen address")
		workers     = flag.Int("workers", runtime.NumCPU(), "verification worker fleet size")
		maxInflight = flag.Int("max-inflight", 64, "admitted requests before backpressure (429)")
		queueDepth  = flag.Int("queue", 256, "shard queue capacity")
		cacheSize   = flag.Int("cache", 1024, "result cache entries (0 disables)")
		maxStates   = flag.Int("max-states", 0, "default per-solve state budget (0 = unlimited)")
		timeout     = flag.Duration("timeout", 0, "default per-solve timeout (0 = none)")
		capStates   = flag.Int("cap-states", 0, "ceiling clamped onto request state budgets (0 = none)")
		capTimeout  = flag.Duration("cap-timeout", 0, "ceiling clamped onto request timeouts (0 = none)")

		loadgen     = flag.Bool("loadgen", false, "run the load generator against an in-process server and exit")
		loadgenN    = flag.Int("loadgen-requests", 400, "loadgen: total requests")
		loadgenConc = flag.Int("loadgen-conc", 8, "loadgen: concurrent clients")
		loadgenOut  = flag.String("loadgen-out", "BENCH_PR6.json", "loadgen: report path")
		loadgenSeed = flag.Int64("loadgen-seed", 1, "loadgen: workload seed")
	)
	flag.Parse()

	cfg := serverConfig{
		workers:          *workers,
		maxInflight:      *maxInflight,
		queueDepth:       *queueDepth,
		cacheSize:        *cacheSize,
		maxStatesDefault: *maxStates,
		timeoutDefault:   *timeout,
		maxStatesCap:     *capStates,
		timeoutCap:       *capTimeout,
	}

	if *loadgen {
		// Loadgen keeps admission wide open relative to its own
		// concurrency: the report measures verification throughput, not
		// self-inflicted backpressure.
		if cfg.maxInflight < 2**loadgenConc {
			cfg.maxInflight = 2 * *loadgenConc
		}
		if err := runLoadgen(cfg, loadgenConfig{
			requests: *loadgenN,
			conc:     *loadgenConc,
			out:      *loadgenOut,
			seed:     *loadgenSeed,
		}); err != nil {
			fmt.Fprintln(os.Stderr, "memverifyd:", err)
			os.Exit(1)
		}
		return
	}

	srv := newServer(cfg)
	defer srv.Close()
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "memverifyd:", err)
		os.Exit(1)
	}
	fmt.Printf("memverifyd listening on http://%s (workers=%d inflight=%d queue=%d cache=%d)\n",
		ln.Addr(), cfg.withDefaults().workers, cfg.withDefaults().maxInflight, cfg.queueDepth, cfg.cacheSize)
	httpSrv := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 10 * time.Second}
	if err := httpSrv.Serve(ln); err != nil {
		fmt.Fprintln(os.Stderr, "memverifyd:", err)
		os.Exit(1)
	}
}
