// Command memverifyd is the long-running verification service: POST a
// trace, get a verdict. Per-address VMC work is sharded across a
// bounded worker fleet (largest projection first), admission is bounded
// with backpressure (429 + Retry-After), decided verdicts are cached by
// execution fingerprint, and the service carries its own telemetry:
// every request gets an X-Request-ID (propagated into the obs span
// trace), every stage (parse, cache, queue, solve, merge) feeds a
// latency histogram, and live saturation gauges, the Prometheus
// exposition, and in-flight/slowest request tables are all served over
// HTTP.
//
// Endpoints:
//
//	POST /v1/verify       verify a trace (JSON envelope or raw trace
//	                      text; ?debug=timings echoes the stage split)
//	GET  /v1/healthz      liveness
//	GET  /v1/stats        service counters + saturation gauges
//	GET  /metrics         Prometheus text exposition (stage histograms,
//	                      gauges, counters)
//	GET  /debug/requests  in-flight request table + N slowest requests
//	                      with stage breakdowns
//	GET  /debug/vars      expvar (solver metrics included)
//	GET  /debug/pprof     pprof profiles
//
// With -loadgen the binary instead boots an in-process server, drives a
// randomized workload against it over real HTTP, scrapes /metrics for
// the server-side stage quantiles, and writes a combined report
// (BENCH_PR7.json schema "memverifyd-loadgen/v2") to -loadgen-out.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"memverify/internal/obs"
)

func main() {
	var (
		addr        = flag.String("addr", "localhost:8372", "listen address")
		workers     = flag.Int("workers", runtime.NumCPU(), "verification worker fleet size")
		maxInflight = flag.Int("max-inflight", 64, "admitted requests before backpressure (429)")
		queueDepth  = flag.Int("queue", 256, "shard queue capacity")
		cacheSize   = flag.Int("cache", 1024, "result cache entries (0 disables)")
		maxStates   = flag.Int("max-states", 0, "default per-solve state budget (0 = unlimited)")
		timeout     = flag.Duration("timeout", 0, "default per-solve timeout (0 = none)")
		capStates   = flag.Int("cap-states", 0, "ceiling clamped onto request state budgets (0 = none)")
		capTimeout  = flag.Duration("cap-timeout", 0, "ceiling clamped onto request timeouts (0 = none)")
		traceOut    = flag.String("trace", "", "write a JSONL span/event trace of every request to this file (spans carry X-Request-ID)")
		slowReqs    = flag.Int("slow-requests", 32, "slowest requests kept for GET /debug/requests")

		loadgen     = flag.Bool("loadgen", false, "run the load generator against an in-process server and exit")
		loadgenN    = flag.Int("loadgen-requests", 400, "loadgen: total requests")
		loadgenConc = flag.Int("loadgen-conc", 8, "loadgen: concurrent clients")
		loadgenOut  = flag.String("loadgen-out", "BENCH_PR7.json", "loadgen: report path")
		loadgenSeed = flag.Int64("loadgen-seed", 1, "loadgen: workload seed")
	)
	flag.Parse()

	cfg := serverConfig{
		workers:          *workers,
		maxInflight:      *maxInflight,
		queueDepth:       *queueDepth,
		cacheSize:        *cacheSize,
		maxStatesDefault: *maxStates,
		timeoutDefault:   *timeout,
		maxStatesCap:     *capStates,
		timeoutCap:       *capTimeout,
		slowRequests:     *slowReqs,
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "memverifyd:", err)
			os.Exit(1)
		}
		jl := obs.NewJSONL(f)
		defer func() {
			jl.Close()
			f.Close()
		}()
		cfg.traceSink = jl
	}

	if *loadgen {
		// Loadgen keeps admission wide open relative to its own
		// concurrency: the report measures verification throughput, not
		// self-inflicted backpressure.
		if cfg.maxInflight < 2**loadgenConc {
			cfg.maxInflight = 2 * *loadgenConc
		}
		if err := runLoadgen(cfg, loadgenConfig{
			requests: *loadgenN,
			conc:     *loadgenConc,
			out:      *loadgenOut,
			seed:     *loadgenSeed,
		}); err != nil {
			fmt.Fprintln(os.Stderr, "memverifyd:", err)
			os.Exit(1)
		}
		return
	}

	srv := newServer(cfg)
	defer srv.Close()
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "memverifyd:", err)
		os.Exit(1)
	}
	fmt.Printf("memverifyd listening on http://%s (workers=%d inflight=%d queue=%d cache=%d)\n",
		ln.Addr(), cfg.withDefaults().workers, cfg.withDefaults().maxInflight, cfg.queueDepth, cfg.cacheSize)
	httpSrv := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 10 * time.Second}
	// SIGINT/SIGTERM shut down gracefully so the deferred cleanups run —
	// without this, killing the service truncates the buffered -trace
	// JSONL mid-line.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		httpSrv.Shutdown(context.Background())
	}()
	if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
		fmt.Fprintln(os.Stderr, "memverifyd:", err)
		os.Exit(1)
	}
}
