// Command experiments regenerates the paper's tables and figures as
// measured data (see internal/exp and EXPERIMENTS.md).
//
// Usage:
//
//	experiments [-run E1,E4,...] [-seed N] [-quick] [-list]
//
// With no -run flag every experiment executes, in paper order.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"memverify/internal/exp"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	which := fs.String("run", "", "comma-separated experiment IDs (default: all)")
	seed := fs.Int64("seed", 1, "random seed")
	quick := fs.Bool("quick", false, "small sizes (seconds instead of minutes)")
	list := fs.Bool("list", false, "list experiments and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, e := range exp.All() {
			fmt.Fprintf(stdout, "%-4s %s\n", e.ID, e.Title)
		}
		return 0
	}
	var ids []string
	if *which != "" {
		for _, id := range strings.Split(*which, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}
	if err := exp.Run(stdout, exp.Config{Seed: *seed, Quick: *quick}, ids...); err != nil {
		fmt.Fprintf(stderr, "experiments: %v\n", err)
		return 1
	}
	return 0
}
