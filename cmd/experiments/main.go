// Command experiments regenerates the paper's tables and figures as
// measured data (see internal/exp and EXPERIMENTS.md).
//
// Usage:
//
//	experiments [-run E1,E4,...] [-seed N] [-quick] [-timeout D]
//	            [-debug-addr HOST:PORT] [-list]
//
// With no -run flag every experiment executes, in paper order. -timeout
// bounds the whole run: when it expires the running experiment's solver
// aborts at its next budget poll and the run fails with the deadline
// error. -debug-addr serves live expvar solver counters and
// net/http/pprof profiles for the duration of the run — useful for
// profiling the long experiments.
//
// A panic inside one experiment does not take down the run's partial
// output: exp.Run recovers it into a typed error naming the experiment
// and the panic value (the harness exits 1), so the tables already
// rendered to stdout survive.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"memverify/internal/exp"
	"memverify/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	which := fs.String("run", "", "comma-separated experiment IDs (default: all)")
	seed := fs.Int64("seed", 1, "random seed")
	quick := fs.Bool("quick", false, "small sizes (seconds instead of minutes)")
	timeout := fs.Duration("timeout", 0, "wall-clock budget for the whole run (0 = none)")
	debugAddr := fs.String("debug-addr", "", "serve expvar and pprof debug endpoints on this address, e.g. localhost:6060")
	list := fs.Bool("list", false, "list experiments and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, e := range exp.All() {
			fmt.Fprintf(stdout, "%-4s %s\n", e.ID, e.Title)
		}
		return 0
	}
	var ids []string
	if *which != "" {
		for _, id := range strings.Split(*which, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if *debugAddr != "" {
		m := obs.NewMetrics()
		srv, err := obs.ServeDebug(*debugAddr, m)
		if err != nil {
			fmt.Fprintf(stderr, "experiments: %v\n", err)
			return 2
		}
		fmt.Fprintf(stderr, "experiments: debug endpoints on http://%s/debug/\n", srv.Addr)
		defer srv.Close()
		ctx = obs.With(ctx, &obs.Observer{Metrics: m})
	}
	if err := exp.Run(ctx, stdout, exp.Config{Seed: *seed, Quick: *quick}, ids...); err != nil {
		fmt.Fprintf(stderr, "experiments: %v\n", err)
		return 1
	}
	return 0
}
