package main

import (
	"bytes"
	"strings"
	"testing"
)

func runExp(t *testing.T, args ...string) (int, string) {
	t.Helper()
	var out, errBuf bytes.Buffer
	code := run(args, &out, &errBuf)
	return code, out.String()
}

func TestList(t *testing.T) {
	code, out := runExp(t, "-list")
	if code != 0 {
		t.Fatalf("code=%d", code)
	}
	for _, id := range []string{"E1", "E4", "E8", "A1"} {
		if !strings.Contains(out, id) {
			t.Errorf("listing missing %s", id)
		}
	}
}

func TestRunSingle(t *testing.T) {
	code, out := runExp(t, "-quick", "-run", "E1", "-seed", "4")
	if code != 0 {
		t.Fatalf("code=%d", code)
	}
	if !strings.Contains(out, "E1:") || strings.Contains(out, "E2:") {
		t.Errorf("wrong experiments ran:\n%s", out)
	}
}

func TestRunSeveral(t *testing.T) {
	code, out := runExp(t, "-quick", "-run", "E5, E6")
	if code != 0 {
		t.Fatalf("code=%d", code)
	}
	if !strings.Contains(out, "E5:") || !strings.Contains(out, "E6:") {
		t.Errorf("requested experiments missing:\n%s", out)
	}
}
