// Command satsolve decides satisfiability of a DIMACS CNF formula.
//
// Usage:
//
//	satsolve [-solver cdcl|dpll|brute] [-stats] [file.cnf]
//
// Output follows SAT-competition conventions: an "s" status line and,
// for satisfiable formulas, a "v" line with a satisfying assignment.
// Exit status: 10 satisfiable, 20 unsatisfiable, 2 error (matching the
// conventional solver exit codes).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"memverify/internal/sat"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("satsolve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	solver := fs.String("solver", "cdcl", "decision procedure: cdcl, dpll or brute")
	stats := fs.Bool("stats", false, "print solver statistics")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	in := stdin
	if fs.NArg() > 1 {
		fmt.Fprintln(stderr, "satsolve: at most one input file")
		return 2
	}
	if fs.NArg() == 1 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			fmt.Fprintf(stderr, "satsolve: %v\n", err)
			return 2
		}
		defer f.Close()
		in = f
	}
	formula, err := sat.ReadDIMACS(in)
	if err != nil {
		fmt.Fprintf(stderr, "satsolve: %v\n", err)
		return 2
	}

	var res *sat.Result
	switch *solver {
	case "cdcl":
		res, err = sat.SolveCDCL(formula)
	case "dpll":
		res, err = sat.SolveDPLL(formula)
	case "brute":
		res, err = sat.SolveBrute(formula)
	default:
		fmt.Fprintf(stderr, "satsolve: unknown solver %q\n", *solver)
		return 2
	}
	if err != nil {
		fmt.Fprintf(stderr, "satsolve: %v\n", err)
		return 2
	}
	if *stats {
		fmt.Fprintf(stdout, "c decisions=%d propagations=%d conflicts=%d learned=%d restarts=%d\n",
			res.Stats.Decisions, res.Stats.Propagations, res.Stats.Conflicts,
			res.Stats.Learned, res.Stats.Restarts)
	}
	if !res.Satisfiable {
		fmt.Fprintln(stdout, "s UNSATISFIABLE")
		return 20
	}
	fmt.Fprintln(stdout, "s SATISFIABLE")
	fmt.Fprint(stdout, "v")
	for v := 1; v <= formula.NumVars; v++ {
		lit := v
		if !res.Assignment[v] {
			lit = -v
		}
		fmt.Fprintf(stdout, " %d", lit)
	}
	fmt.Fprintln(stdout, " 0")
	return 10
}
