package main

import (
	"bytes"
	"strings"
	"testing"
)

func runSolve(t *testing.T, args []string, input string) (int, string) {
	t.Helper()
	var out, errBuf bytes.Buffer
	code := run(args, strings.NewReader(input), &out, &errBuf)
	return code, out.String()
}

func TestSatisfiable(t *testing.T) {
	for _, solver := range []string{"cdcl", "dpll", "brute"} {
		code, out := runSolve(t, []string{"-solver", solver}, "p cnf 2 2\n1 2 0\n-1 0\n")
		if code != 10 || !strings.Contains(out, "s SATISFIABLE") {
			t.Errorf("%s: code=%d out=%q", solver, code, out)
		}
		if !strings.Contains(out, "v -1 2 0") {
			t.Errorf("%s: assignment line wrong: %q", solver, out)
		}
	}
}

func TestUnsatisfiable(t *testing.T) {
	code, out := runSolve(t, nil, "p cnf 1 2\n1 0\n-1 0\n")
	if code != 20 || !strings.Contains(out, "s UNSATISFIABLE") {
		t.Errorf("code=%d out=%q", code, out)
	}
}

func TestStatsFlag(t *testing.T) {
	_, out := runSolve(t, []string{"-stats"}, "p cnf 1 1\n1 0\n")
	if !strings.Contains(out, "c decisions=") {
		t.Errorf("stats line missing: %q", out)
	}
}

func TestErrors(t *testing.T) {
	if code, _ := runSolve(t, nil, "garbage"); code != 2 {
		t.Error("bad DIMACS accepted")
	}
	if code, _ := runSolve(t, []string{"-solver", "magic"}, "p cnf 1 1\n1 0\n"); code != 2 {
		t.Error("unknown solver accepted")
	}
	if code, _ := runSolve(t, []string{"a", "b"}, ""); code != 2 {
		t.Error("two files accepted")
	}
}
