package main

import (
	"bytes"
	"strings"
	"testing"
)

func runCheck(t *testing.T, args []string, input string) (int, string, string) {
	t.Helper()
	var out, errBuf bytes.Buffer
	code := run(args, strings.NewReader(input), &out, &errBuf)
	return code, out.String(), errBuf.String()
}

const coherentTrace = `init x 0
P0: W x 1
P1: R x 1
`

const incoherentTrace = `init x 0
P0: W x 1
P1: R x 9
`

func TestCoherentTraceOK(t *testing.T) {
	code, out, _ := runCheck(t, nil, coherentTrace)
	if code != 0 || !strings.Contains(out, "OK") {
		t.Errorf("code=%d out=%q", code, out)
	}
}

func TestIncoherentTraceFlagged(t *testing.T) {
	code, out, _ := runCheck(t, nil, incoherentTrace)
	if code != 1 || !strings.Contains(out, "VIOLATION") {
		t.Errorf("code=%d out=%q", code, out)
	}
}

func TestSCModel(t *testing.T) {
	dekker := `init x 0
init y 0
P0: W x 1
P0: R y 0
P1: W y 1
P1: R x 0
`
	code, out, _ := runCheck(t, []string{"-model", "sc"}, dekker)
	if code != 1 || !strings.Contains(out, "VIOLATION") {
		t.Errorf("Dekker should violate SC: code=%d out=%q", code, out)
	}
	code, out, _ = runCheck(t, []string{"-model", "tso"}, dekker)
	if code != 0 || !strings.Contains(out, "OK") {
		t.Errorf("Dekker should pass TSO: code=%d out=%q", code, out)
	}
	code, _, _ = runCheck(t, []string{"-model", "pso"}, dekker)
	if code != 0 {
		t.Errorf("Dekker should pass PSO: code=%d", code)
	}
}

func TestLRCModel(t *testing.T) {
	synced := `init x 0
P0: ACQ
P0: W x 1
P0: REL
P1: ACQ
P1: R x 1
P1: REL
`
	code, out, _ := runCheck(t, []string{"-model", "lrc"}, synced)
	if code != 0 {
		t.Errorf("code=%d out=%q", code, out)
	}
	// Unsynchronized trace is a usage error for LRC.
	code, _, _ = runCheck(t, []string{"-model", "lrc"}, coherentTrace)
	if code != 2 {
		t.Errorf("unsynchronized LRC check: code=%d, want 2", code)
	}
}

func TestUseOrder(t *testing.T) {
	withOrder := `init x 0
P0: W x 1
P0: W x 2
P1: R x 1
order x P0[0] P0[1]
`
	code, out, _ := runCheck(t, []string{"-use-order"}, withOrder)
	if code != 0 {
		t.Errorf("code=%d out=%q", code, out)
	}
	// Missing order line with writes present: usage error.
	code, _, _ = runCheck(t, []string{"-use-order"}, coherentTrace)
	if code != 2 {
		t.Errorf("missing order: code=%d, want 2", code)
	}
}

func TestCertificatePrinted(t *testing.T) {
	code, out, _ := runCheck(t, []string{"-cert"}, coherentTrace)
	if code != 0 || !strings.Contains(out, "W(0, 1)") {
		t.Errorf("code=%d out=%q", code, out)
	}
}

func TestUsageErrors(t *testing.T) {
	if code, _, _ := runCheck(t, []string{"-model", "bogus"}, coherentTrace); code != 2 {
		t.Error("unknown model accepted")
	}
	if code, _, _ := runCheck(t, nil, "not a trace"); code != 2 {
		t.Error("bad trace accepted")
	}
	if code, _, _ := runCheck(t, []string{"a", "b"}, ""); code != 2 {
		t.Error("two file args accepted")
	}
	if code, _, _ := runCheck(t, []string{"/nonexistent/file"}, ""); code != 2 {
		t.Error("missing file accepted")
	}
}

func TestBudgetUndecided(t *testing.T) {
	// An instance needing the general search (value 3 is written twice,
	// so no polynomial special case applies) with a 1-state budget:
	// coherence must report undecided (exit 1) rather than a verdict.
	hard := `init x 0
P0: W x 1
P0: R x 2
P1: W x 2
P1: R x 1
P2: W x 3
P3: W x 3
`
	code, out, _ := runCheck(t, []string{"-max-states", "1"}, hard)
	if code != 1 || !strings.Contains(out, "UNDECIDED") {
		t.Errorf("code=%d out=%q", code, out)
	}
}

func TestDiagnoseFlag(t *testing.T) {
	code, out, _ := runCheck(t, []string{"-diagnose"}, incoherentTrace)
	if code != 1 {
		t.Fatalf("code=%d", code)
	}
	if !strings.Contains(out, "minimal core") || !strings.Contains(out, "R(0, 9)") {
		t.Errorf("diagnosis missing from output:\n%s", out)
	}
}

func TestSCWithOrders(t *testing.T) {
	withOrder := `init x 0
P0: W x 1
P0: W x 2
P1: R x 1
P1: R x 2
order x P0[0] P0[1]
`
	code, out, _ := runCheck(t, []string{"-model", "sc", "-use-order"}, withOrder)
	if code != 0 || !strings.Contains(out, "OK") {
		t.Errorf("code=%d out=%q", code, out)
	}
	// Missing order lines: usage error from the constrained solver.
	code, _, _ = runCheck(t, []string{"-model", "sc", "-use-order"}, coherentTrace)
	if code != 2 {
		t.Errorf("missing orders accepted: code=%d", code)
	}
}

func TestOnlineMode(t *testing.T) {
	// File order = completion order here.
	good := `init x 0
P0: W x 1
P1: R x 1
P0: W x 2
P1: R x 2
`
	code, out, _ := runCheck(t, []string{"-online"}, good)
	if code != 0 || !strings.Contains(out, "OK") {
		t.Errorf("code=%d out=%q", code, out)
	}
	// A backward observation in completion order.
	bad := `init x 0
P0: W x 1
P0: W x 2
P1: R x 2
P1: R x 1
`
	code, out, _ = runCheck(t, []string{"-online"}, bad)
	if code != 1 || !strings.Contains(out, "VIOLATION") {
		t.Errorf("code=%d out=%q", code, out)
	}
	// Wrong final value.
	final := `init x 0
final x 9
P0: W x 1
`
	code, _, _ = runCheck(t, []string{"-online"}, final)
	if code != 1 {
		t.Errorf("final mismatch not flagged: code=%d", code)
	}
}
