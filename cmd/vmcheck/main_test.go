package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

func runCheck(t *testing.T, args []string, input string) (int, string, string) {
	t.Helper()
	var out, errBuf bytes.Buffer
	code := run(args, strings.NewReader(input), &out, &errBuf)
	return code, out.String(), errBuf.String()
}

const coherentTrace = `init x 0
P0: W x 1
P1: R x 1
`

const incoherentTrace = `init x 0
P0: W x 1
P1: R x 9
`

func TestCoherentTraceOK(t *testing.T) {
	code, out, _ := runCheck(t, nil, coherentTrace)
	if code != 0 || !strings.Contains(out, "OK") {
		t.Errorf("code=%d out=%q", code, out)
	}
}

func TestIncoherentTraceFlagged(t *testing.T) {
	code, out, _ := runCheck(t, nil, incoherentTrace)
	if code != 1 || !strings.Contains(out, "VIOLATION") {
		t.Errorf("code=%d out=%q", code, out)
	}
}

func TestSCModel(t *testing.T) {
	dekker := `init x 0
init y 0
P0: W x 1
P0: R y 0
P1: W y 1
P1: R x 0
`
	code, out, _ := runCheck(t, []string{"-model", "sc"}, dekker)
	if code != 1 || !strings.Contains(out, "VIOLATION") {
		t.Errorf("Dekker should violate SC: code=%d out=%q", code, out)
	}
	code, out, _ = runCheck(t, []string{"-model", "tso"}, dekker)
	if code != 0 || !strings.Contains(out, "OK") {
		t.Errorf("Dekker should pass TSO: code=%d out=%q", code, out)
	}
	code, _, _ = runCheck(t, []string{"-model", "pso"}, dekker)
	if code != 0 {
		t.Errorf("Dekker should pass PSO: code=%d", code)
	}
}

func TestLRCModel(t *testing.T) {
	synced := `init x 0
P0: ACQ
P0: W x 1
P0: REL
P1: ACQ
P1: R x 1
P1: REL
`
	code, out, _ := runCheck(t, []string{"-model", "lrc"}, synced)
	if code != 0 {
		t.Errorf("code=%d out=%q", code, out)
	}
	// Unsynchronized trace is a usage error for LRC.
	code, _, _ = runCheck(t, []string{"-model", "lrc"}, coherentTrace)
	if code != 2 {
		t.Errorf("unsynchronized LRC check: code=%d, want 2", code)
	}
}

func TestUseOrder(t *testing.T) {
	withOrder := `init x 0
P0: W x 1
P0: W x 2
P1: R x 1
order x P0[0] P0[1]
`
	code, out, _ := runCheck(t, []string{"-use-order"}, withOrder)
	if code != 0 {
		t.Errorf("code=%d out=%q", code, out)
	}
	// Missing order line with writes present: usage error.
	code, _, _ = runCheck(t, []string{"-use-order"}, coherentTrace)
	if code != 2 {
		t.Errorf("missing order: code=%d, want 2", code)
	}
}

func TestCertificatePrinted(t *testing.T) {
	code, out, _ := runCheck(t, []string{"-cert"}, coherentTrace)
	if code != 0 || !strings.Contains(out, "W(0, 1)") {
		t.Errorf("code=%d out=%q", code, out)
	}
}

func TestUsageErrors(t *testing.T) {
	if code, _, _ := runCheck(t, []string{"-model", "bogus"}, coherentTrace); code != 2 {
		t.Error("unknown model accepted")
	}
	if code, _, _ := runCheck(t, nil, "not a trace"); code != 2 {
		t.Error("bad trace accepted")
	}
	if code, _, _ := runCheck(t, []string{"a", "b"}, ""); code != 2 {
		t.Error("two file args accepted")
	}
	if code, _, _ := runCheck(t, []string{"/nonexistent/file"}, ""); code != 2 {
		t.Error("missing file accepted")
	}
}

func TestBudgetUndecided(t *testing.T) {
	// An instance needing the general search (value 3 is written twice,
	// so no polynomial special case applies) with a 1-state budget:
	// coherence must report undecided (exit 1) rather than a verdict.
	hard := `init x 0
P0: W x 1
P0: R x 2
P1: W x 2
P1: R x 1
P2: W x 3
P3: W x 3
`
	code, out, _ := runCheck(t, []string{"-max-states", "1"}, hard)
	if code != 1 || !strings.Contains(out, "UNDECIDED") {
		t.Errorf("code=%d out=%q", code, out)
	}
}

func TestDiagnoseFlag(t *testing.T) {
	code, out, _ := runCheck(t, []string{"-diagnose"}, incoherentTrace)
	if code != 1 {
		t.Fatalf("code=%d", code)
	}
	if !strings.Contains(out, "minimal core") || !strings.Contains(out, "R(0, 9)") {
		t.Errorf("diagnosis missing from output:\n%s", out)
	}
}

func TestSCWithOrders(t *testing.T) {
	withOrder := `init x 0
P0: W x 1
P0: W x 2
P1: R x 1
P1: R x 2
order x P0[0] P0[1]
`
	code, out, _ := runCheck(t, []string{"-model", "sc", "-use-order"}, withOrder)
	if code != 0 || !strings.Contains(out, "OK") {
		t.Errorf("code=%d out=%q", code, out)
	}
	// Missing order lines: usage error from the constrained solver.
	code, _, _ = runCheck(t, []string{"-model", "sc", "-use-order"}, coherentTrace)
	if code != 2 {
		t.Errorf("missing orders accepted: code=%d", code)
	}
}

func TestOnlineMode(t *testing.T) {
	// File order = completion order here.
	good := `init x 0
P0: W x 1
P1: R x 1
P0: W x 2
P1: R x 2
`
	code, out, _ := runCheck(t, []string{"-online"}, good)
	if code != 0 || !strings.Contains(out, "OK") {
		t.Errorf("code=%d out=%q", code, out)
	}
	// A backward observation in completion order.
	bad := `init x 0
P0: W x 1
P0: W x 2
P1: R x 2
P1: R x 1
`
	code, out, _ = runCheck(t, []string{"-online"}, bad)
	if code != 1 || !strings.Contains(out, "VIOLATION") {
		t.Errorf("code=%d out=%q", code, out)
	}
	// Wrong final value.
	final := `init x 0
final x 9
P0: W x 1
`
	code, _, _ = runCheck(t, []string{"-online"}, final)
	if code != 1 {
		t.Errorf("final mismatch not flagged: code=%d", code)
	}
}

// backtrackTrace needs the general memoized search (value 3 is written
// twice) and is incoherent, so its deterministic search counters
// exercise every field of the -stats line.
const backtrackTrace = `init x 0
P0: W x 1
P0: R x 2
P1: W x 2
P1: R x 1
P2: W x 3
P3: W x 3
`

// TestStatsGolden pins the full -stats line, including the derived memo
// hit-rate percentage and throughput. Wall-clock dependent fields
// (rate, t) are normalized; the search itself is deterministic.
func TestStatsGolden(t *testing.T) {
	code, out, _ := runCheck(t, []string{"-stats"}, backtrackTrace)
	if code != 1 {
		t.Fatalf("code=%d out=%q", code, out)
	}
	norm := regexp.MustCompile(`rate=\S+ t=\S+`).ReplaceAllString(out, "rate=? t=?")
	want := "x: VIOLATION (general-search)\n" +
		"  stats: states=32 memo=19/51 (37.3%) eager=14 depth=5 branch=1.56 rate=? t=?\n" +
		"VIOLATION: 1 of 1 addresses incoherent or undecided\n"
	if norm != want {
		t.Errorf("-stats output:\n got %q\nwant %q", norm, want)
	}
	// The raw line carries a real throughput figure, not the n/a
	// placeholder: the general search records its duration.
	if !regexp.MustCompile(`rate=\d+/s`).MatchString(out) {
		t.Errorf("no states/sec in %q", out)
	}
}

// TestTraceFlagJSONL checks -trace writes a machine-readable event log:
// every line parses as JSON, every span ends, and events reference
// spans that are open when they fire.
func TestTraceFlagJSONL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	code, _, errOut := runCheck(t, []string{"-trace", path}, backtrackTrace)
	if code != 1 {
		t.Fatalf("code=%d stderr=%q", code, errOut)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < 10 {
		t.Fatalf("only %d trace lines for a 32-state search", len(lines))
	}
	type ev struct {
		TS     *int64  `json:"ts"`
		Ev     string  `json:"ev"`
		Span   uint64  `json:"span"`
		Parent *uint64 `json:"parent"`
		Name   string  `json:"name"`
	}
	open := map[uint64]bool{}
	kinds := map[string]int{}
	names := map[string]int{}
	for _, raw := range lines {
		var e ev
		if err := json.Unmarshal([]byte(raw), &e); err != nil {
			t.Fatalf("trace line %q does not parse: %v", raw, err)
		}
		if e.TS == nil {
			t.Fatalf("trace line %q has no timestamp", raw)
		}
		kinds[e.Ev]++
		switch e.Ev {
		case "span_begin":
			names[e.Name]++
			if e.Parent != nil && !open[*e.Parent] {
				t.Fatalf("span %d begins under closed parent %d", e.Span, *e.Parent)
			}
			open[e.Span] = true
		case "span_end":
			if !open[e.Span] {
				t.Fatalf("span_end for span %d that is not open", e.Span)
			}
			open[e.Span] = false
		default:
			if e.Span != 0 && !open[e.Span] {
				t.Fatalf("%s event outside its span %d", e.Ev, e.Span)
			}
		}
	}
	for id, o := range open {
		if o {
			t.Errorf("span %d never ended", id)
		}
	}
	if names["solve-auto"] == 0 || names["general-search"] == 0 {
		t.Errorf("span names = %v, want solve-auto and general-search", names)
	}
	for _, k := range []string{"state_enter", "backtrack", "memo_hit", "memo_miss", "eager_reads"} {
		if kinds[k] == 0 {
			t.Errorf("no %s events in trace (kinds: %v)", k, kinds)
		}
	}
}

// TestExplainFlag checks -explain renders the search-tree summary and
// names the conflicting operations behind the incoherent verdict.
func TestExplainFlag(t *testing.T) {
	code, out, errOut := runCheck(t, []string{"-explain"}, backtrackTrace)
	if code != 1 {
		t.Fatalf("code=%d stderr=%q", code, errOut)
	}
	for _, want := range []string{
		"explain:",
		"general-search:",
		"backtracks",
		"backtracks by depth:",
		"conflicting operations (minimal core",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("-explain output missing %q:\n%s", want, out)
		}
	}
	// The core must name at least one concrete conflicting operation.
	if !strings.Contains(out, "R(0, 1)") {
		t.Errorf("-explain core does not name a conflicting read:\n%s", out)
	}

	// On the specialist path (one write per value) the summary still
	// renders, from the solve-auto entry span.
	code, out, _ = runCheck(t, []string{"-explain"}, incoherentTrace)
	if code != 1 {
		t.Fatalf("code=%d", code)
	}
	if !strings.Contains(out, "explain:") || !strings.Contains(out, "R(0, 9)") {
		t.Errorf("-explain on specialist path:\n%s", out)
	}
}

// TestProgressFlag checks the live reporter emits at least a final
// sample to stderr.
func TestProgressFlag(t *testing.T) {
	code, _, errOut := runCheck(t, []string{"-progress"}, backtrackTrace)
	if code != 1 {
		t.Fatalf("code=%d", code)
	}
	if !strings.Contains(errOut, "obs: states=") {
		t.Errorf("no progress line on stderr: %q", errOut)
	}
}

// TestDebugAddrFlag smoke-tests the debug endpoint wiring.
func TestDebugAddrFlag(t *testing.T) {
	code, _, errOut := runCheck(t, []string{"-debug-addr", "127.0.0.1:0"}, coherentTrace)
	if code != 0 {
		t.Fatalf("code=%d stderr=%q", code, errOut)
	}
	if !strings.Contains(errOut, "debug endpoints on http://") {
		t.Errorf("no endpoint banner on stderr: %q", errOut)
	}
}

// TestTraceAndExplainCompose checks both tracer consumers can share one
// run (the Multi fan-out path).
func TestTraceAndExplainCompose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	code, out, _ := runCheck(t, []string{"-trace", path, "-explain"}, backtrackTrace)
	if code != 1 {
		t.Fatalf("code=%d", code)
	}
	if !strings.Contains(out, "conflicting operations") {
		t.Error("-explain lost when combined with -trace")
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() == 0 {
		t.Errorf("trace file missing or empty (err=%v)", err)
	}
}
