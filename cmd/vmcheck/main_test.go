package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"memverify/internal/coherence"
)

func runCheck(t *testing.T, args []string, input string) (int, string, string) {
	t.Helper()
	var out, errBuf bytes.Buffer
	code := run(args, strings.NewReader(input), &out, &errBuf)
	return code, out.String(), errBuf.String()
}

const coherentTrace = `init x 0
P0: W x 1
P1: R x 1
`

const incoherentTrace = `init x 0
P0: W x 1
P1: R x 9
`

func TestCoherentTraceOK(t *testing.T) {
	code, out, _ := runCheck(t, nil, coherentTrace)
	if code != 0 || !strings.Contains(out, "OK") {
		t.Errorf("code=%d out=%q", code, out)
	}
}

func TestIncoherentTraceFlagged(t *testing.T) {
	code, out, _ := runCheck(t, nil, incoherentTrace)
	if code != 1 || !strings.Contains(out, "VIOLATION") {
		t.Errorf("code=%d out=%q", code, out)
	}
}

func TestSCModel(t *testing.T) {
	dekker := `init x 0
init y 0
P0: W x 1
P0: R y 0
P1: W y 1
P1: R x 0
`
	code, out, _ := runCheck(t, []string{"-model", "sc"}, dekker)
	if code != 1 || !strings.Contains(out, "VIOLATION") {
		t.Errorf("Dekker should violate SC: code=%d out=%q", code, out)
	}
	code, out, _ = runCheck(t, []string{"-model", "tso"}, dekker)
	if code != 0 || !strings.Contains(out, "OK") {
		t.Errorf("Dekker should pass TSO: code=%d out=%q", code, out)
	}
	code, _, _ = runCheck(t, []string{"-model", "pso"}, dekker)
	if code != 0 {
		t.Errorf("Dekker should pass PSO: code=%d", code)
	}
}

func TestLRCModel(t *testing.T) {
	synced := `init x 0
P0: ACQ
P0: W x 1
P0: REL
P1: ACQ
P1: R x 1
P1: REL
`
	code, out, _ := runCheck(t, []string{"-model", "lrc"}, synced)
	if code != 0 {
		t.Errorf("code=%d out=%q", code, out)
	}
	// Unsynchronized trace is a usage error for LRC.
	code, _, _ = runCheck(t, []string{"-model", "lrc"}, coherentTrace)
	if code != 2 {
		t.Errorf("unsynchronized LRC check: code=%d, want 2", code)
	}
}

func TestUseOrder(t *testing.T) {
	withOrder := `init x 0
P0: W x 1
P0: W x 2
P1: R x 1
order x P0[0] P0[1]
`
	code, out, _ := runCheck(t, []string{"-use-order"}, withOrder)
	if code != 0 {
		t.Errorf("code=%d out=%q", code, out)
	}
	// Missing order line with writes present: usage error.
	code, _, _ = runCheck(t, []string{"-use-order"}, coherentTrace)
	if code != 2 {
		t.Errorf("missing order: code=%d, want 2", code)
	}
}

func TestCertificatePrinted(t *testing.T) {
	code, out, _ := runCheck(t, []string{"-cert"}, coherentTrace)
	if code != 0 || !strings.Contains(out, "W(0, 1)") {
		t.Errorf("code=%d out=%q", code, out)
	}
}

func TestUsageErrors(t *testing.T) {
	if code, _, _ := runCheck(t, []string{"-model", "bogus"}, coherentTrace); code != 2 {
		t.Error("unknown model accepted")
	}
	if code, _, _ := runCheck(t, nil, "not a trace"); code != 2 {
		t.Error("bad trace accepted")
	}
	if code, _, _ := runCheck(t, []string{"a", "b"}, ""); code != 2 {
		t.Error("two file args accepted")
	}
	if code, _, _ := runCheck(t, []string{"/nonexistent/file"}, ""); code != 2 {
		t.Error("missing file accepted")
	}
}

func TestBudgetUndecided(t *testing.T) {
	// An instance needing the general search (value 3 is written twice,
	// so no polynomial special case applies) with a 1-state budget:
	// coherence must report undecided (exit 1) rather than a verdict.
	hard := `init x 0
P0: W x 1
P0: R x 2
P1: W x 2
P1: R x 1
P2: W x 3
P3: W x 3
`
	code, out, _ := runCheck(t, []string{"-max-states", "1"}, hard)
	if code != 1 || !strings.Contains(out, "UNDECIDED") {
		t.Errorf("code=%d out=%q", code, out)
	}
}

func TestDiagnoseFlag(t *testing.T) {
	code, out, _ := runCheck(t, []string{"-diagnose"}, incoherentTrace)
	if code != 1 {
		t.Fatalf("code=%d", code)
	}
	if !strings.Contains(out, "minimal core") || !strings.Contains(out, "R(0, 9)") {
		t.Errorf("diagnosis missing from output:\n%s", out)
	}
}

func TestSCWithOrders(t *testing.T) {
	withOrder := `init x 0
P0: W x 1
P0: W x 2
P1: R x 1
P1: R x 2
order x P0[0] P0[1]
`
	code, out, _ := runCheck(t, []string{"-model", "sc", "-use-order"}, withOrder)
	if code != 0 || !strings.Contains(out, "OK") {
		t.Errorf("code=%d out=%q", code, out)
	}
	// Missing order lines: usage error from the constrained solver.
	code, _, _ = runCheck(t, []string{"-model", "sc", "-use-order"}, coherentTrace)
	if code != 2 {
		t.Errorf("missing orders accepted: code=%d", code)
	}
}

func TestOnlineMode(t *testing.T) {
	// File order = completion order here.
	good := `init x 0
P0: W x 1
P1: R x 1
P0: W x 2
P1: R x 2
`
	code, out, _ := runCheck(t, []string{"-online"}, good)
	if code != 0 || !strings.Contains(out, "OK") {
		t.Errorf("code=%d out=%q", code, out)
	}
	// A backward observation in completion order.
	bad := `init x 0
P0: W x 1
P0: W x 2
P1: R x 2
P1: R x 1
`
	code, out, _ = runCheck(t, []string{"-online"}, bad)
	if code != 1 || !strings.Contains(out, "VIOLATION") {
		t.Errorf("code=%d out=%q", code, out)
	}
	// Wrong final value.
	final := `init x 0
final x 9
P0: W x 1
`
	code, _, _ = runCheck(t, []string{"-online"}, final)
	if code != 1 {
		t.Errorf("final mismatch not flagged: code=%d", code)
	}
}

// backtrackTrace needs the general memoized search (value 3 is written
// twice) and is incoherent, so its deterministic search counters
// exercise every field of the -stats line.
const backtrackTrace = `init x 0
P0: W x 1
P0: R x 2
P1: W x 2
P1: R x 1
P2: W x 3
P3: W x 3
`

// TestStatsGolden pins the full -stats line, including the derived memo
// hit-rate percentage and throughput. Wall-clock dependent fields
// (rate, t) are normalized; the search itself is deterministic.
func TestStatsGolden(t *testing.T) {
	code, out, _ := runCheck(t, []string{"-stats"}, backtrackTrace)
	if code != 1 {
		t.Fatalf("code=%d out=%q", code, out)
	}
	norm := regexp.MustCompile(`rate=\S+ t=\S+`).ReplaceAllString(out, "rate=? t=?")
	norm = regexp.MustCompile(`p50=\S+ p90=\S+ p99=\S+ max=\S+`).ReplaceAllString(norm, "p50=? p90=? p99=? max=?")
	want := "x: VIOLATION (general-search)\n" +
		"  stats: states=32 memo=19/51 (37.3%) eager=14 depth=5 branch=1.56 rate=? t=?\n" +
		"solve latency: n=1 p50=? p90=? p99=? max=?\n" +
		"VIOLATION: 1 of 1 addresses incoherent or undecided\n"
	if norm != want {
		t.Errorf("-stats output:\n got %q\nwant %q", norm, want)
	}
	// The raw line carries a real throughput figure, not the n/a
	// placeholder: the general search records its duration.
	if !regexp.MustCompile(`rate=\d+/s`).MatchString(out) {
		t.Errorf("no states/sec in %q", out)
	}
	// The raw latency line carries real durations.
	if !regexp.MustCompile(`solve latency: n=1 p50=\d+\S* `).MatchString(out) {
		t.Errorf("no solve-latency quantiles in %q", out)
	}
}

// TestTraceFlagJSONL checks -trace writes a machine-readable event log:
// every line parses as JSON, every span ends, and events reference
// spans that are open when they fire.
func TestTraceFlagJSONL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	code, _, errOut := runCheck(t, []string{"-trace", path}, backtrackTrace)
	if code != 1 {
		t.Fatalf("code=%d stderr=%q", code, errOut)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < 10 {
		t.Fatalf("only %d trace lines for a 32-state search", len(lines))
	}
	type ev struct {
		TS     *int64  `json:"ts"`
		Ev     string  `json:"ev"`
		Span   uint64  `json:"span"`
		Parent *uint64 `json:"parent"`
		Name   string  `json:"name"`
	}
	open := map[uint64]bool{}
	kinds := map[string]int{}
	names := map[string]int{}
	for _, raw := range lines {
		var e ev
		if err := json.Unmarshal([]byte(raw), &e); err != nil {
			t.Fatalf("trace line %q does not parse: %v", raw, err)
		}
		if e.TS == nil {
			t.Fatalf("trace line %q has no timestamp", raw)
		}
		kinds[e.Ev]++
		switch e.Ev {
		case "span_begin":
			names[e.Name]++
			if e.Parent != nil && !open[*e.Parent] {
				t.Fatalf("span %d begins under closed parent %d", e.Span, *e.Parent)
			}
			open[e.Span] = true
		case "span_end":
			if !open[e.Span] {
				t.Fatalf("span_end for span %d that is not open", e.Span)
			}
			open[e.Span] = false
		default:
			if e.Span != 0 && !open[e.Span] {
				t.Fatalf("%s event outside its span %d", e.Ev, e.Span)
			}
		}
	}
	for id, o := range open {
		if o {
			t.Errorf("span %d never ended", id)
		}
	}
	if names["solve-auto"] == 0 || names["general-search"] == 0 {
		t.Errorf("span names = %v, want solve-auto and general-search", names)
	}
	for _, k := range []string{"state_enter", "backtrack", "memo_hit", "memo_miss", "eager_reads"} {
		if kinds[k] == 0 {
			t.Errorf("no %s events in trace (kinds: %v)", k, kinds)
		}
	}
}

// TestExplainFlag checks -explain renders the search-tree summary and
// names the conflicting operations behind the incoherent verdict.
func TestExplainFlag(t *testing.T) {
	code, out, errOut := runCheck(t, []string{"-explain"}, backtrackTrace)
	if code != 1 {
		t.Fatalf("code=%d stderr=%q", code, errOut)
	}
	for _, want := range []string{
		"explain:",
		"general-search:",
		"backtracks",
		"backtracks by depth:",
		"conflicting operations (minimal core",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("-explain output missing %q:\n%s", want, out)
		}
	}
	// The core must name at least one concrete conflicting operation.
	if !strings.Contains(out, "R(0, 1)") {
		t.Errorf("-explain core does not name a conflicting read:\n%s", out)
	}

	// On the specialist path (one write per value) the summary still
	// renders, from the solve-auto entry span.
	code, out, _ = runCheck(t, []string{"-explain"}, incoherentTrace)
	if code != 1 {
		t.Fatalf("code=%d", code)
	}
	if !strings.Contains(out, "explain:") || !strings.Contains(out, "R(0, 9)") {
		t.Errorf("-explain on specialist path:\n%s", out)
	}
}

// TestProgressFlag checks the live reporter emits at least a final
// sample to stderr.
func TestProgressFlag(t *testing.T) {
	code, _, errOut := runCheck(t, []string{"-progress"}, backtrackTrace)
	if code != 1 {
		t.Fatalf("code=%d", code)
	}
	if !strings.Contains(errOut, "obs: states=") {
		t.Errorf("no progress line on stderr: %q", errOut)
	}
}

// TestDebugAddrFlag smoke-tests the debug endpoint wiring.
func TestDebugAddrFlag(t *testing.T) {
	code, _, errOut := runCheck(t, []string{"-debug-addr", "127.0.0.1:0"}, coherentTrace)
	if code != 0 {
		t.Fatalf("code=%d stderr=%q", code, errOut)
	}
	if !strings.Contains(errOut, "debug endpoints on http://") {
		t.Errorf("no endpoint banner on stderr: %q", errOut)
	}
}

// TestCheckpointResumeCLI is the CLI acceptance test for
// checkpoint/resume: a budgeted run writes a checkpoint, and the
// resumed run reaches the fresh verdict while re-exploring strictly
// fewer states than the fresh search's 32 (the figure TestStatsGolden
// pins), with memo hits from the seeded failed-state table.
func TestCheckpointResumeCLI(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.json")
	code, out, errOut := runCheck(t, []string{"-max-states", "20", "-checkpoint", path}, backtrackTrace)
	if code != 1 || !strings.Contains(out, "UNDECIDED") {
		t.Fatalf("interrupted run: code=%d out=%q stderr=%q", code, out, errOut)
	}
	if !strings.Contains(out, "checkpoint: wrote "+path) {
		t.Fatalf("no checkpoint banner:\n%s", out)
	}
	if _, err := coherence.LoadCheckpoint(path); err != nil {
		t.Fatalf("written checkpoint does not load: %v", err)
	}

	code, out, errOut = runCheck(t, []string{"-resume", path, "-stats"}, backtrackTrace)
	if code != 1 || !strings.Contains(out, "VIOLATION (general-search)") {
		t.Fatalf("resumed run: code=%d out=%q stderr=%q", code, out, errOut)
	}
	m := regexp.MustCompile(`states=(\d+) memo=(\d+)/`).FindStringSubmatch(out)
	if m == nil {
		t.Fatalf("no stats line in %q", out)
	}
	states, _ := strconv.Atoi(m[1])
	hits, _ := strconv.Atoi(m[2])
	if states >= 32 {
		t.Errorf("resumed search explored %d states, want < 32", states)
	}
	if hits == 0 {
		t.Error("resumed search had no memo hits; the seed was unused")
	}
}

// TestCheckpointReplayCLI: a checkpoint taken after one address
// completed replays that verdict (visibly annotated) instead of
// re-solving it.
func TestCheckpointReplayCLI(t *testing.T) {
	two := `init x 0
init y 0
P0: W x 1
P0: W y 1
P0: R y 2
P1: R x 1
P1: W y 2
P1: R y 1
P2: W y 3
P3: W y 3
`
	path := filepath.Join(t.TempDir(), "ck.json")
	code, out, _ := runCheck(t, []string{"-max-states", "20", "-checkpoint", path}, two)
	if code != 1 || !strings.Contains(out, "x: OK") || !strings.Contains(out, "y: UNDECIDED") {
		t.Fatalf("interrupted run: code=%d out=%q", code, out)
	}
	code, out, _ = runCheck(t, []string{"-resume", path}, two)
	if code != 1 {
		t.Fatalf("resumed run: code=%d out=%q", code, out)
	}
	if !strings.Contains(out, "x: OK (checkpoint:read-map)") {
		t.Errorf("completed address not replayed from the checkpoint:\n%s", out)
	}
	if !strings.Contains(out, "y: VIOLATION (general-search)") {
		t.Errorf("pending address not finished on resume:\n%s", out)
	}
}

// TestCheckpointWrongTraceCLI: resuming against a different trace is an
// input error — the fingerprint check refuses, before any solving.
func TestCheckpointWrongTraceCLI(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.json")
	code, _, _ := runCheck(t, []string{"-max-states", "20", "-checkpoint", path}, backtrackTrace)
	if code != 1 {
		t.Fatalf("interrupted run: code=%d", code)
	}
	code, _, errOut := runCheck(t, []string{"-resume", path}, coherentTrace)
	if code != 2 || !strings.Contains(errOut, "fingerprint") {
		t.Errorf("wrong-trace resume: code=%d stderr=%q, want fingerprint rejection", code, errOut)
	}
}

// manyWriteTrace has nine writes — past the ladder's enumeration bound
// — with repeated values (no Figure 5.3 specialist) and consistent
// reads, so under a tiny budget no rung can decide it.
const manyWriteTrace = `init x 0
P0: W x 1
P0: R x 2
P0: W x 1
P0: R x 2
P1: W x 2
P1: R x 1
P1: W x 2
P1: R x 1
P2: W x 3
P2: W x 3
P2: W x 1
P3: W x 2
P3: W x 1
`

// TestResilientCLI drives the degradation ladder end to end: rung
// annotations for the exact and enumeration rungs, and the UNKNOWN
// verdict with necessary-condition evidence when the ladder exhausts.
func TestResilientCLI(t *testing.T) {
	// Default ladder: the polynomial frontline decides first.
	code, out, _ := runCheck(t, []string{"-resilient"}, coherentTrace)
	if code != 0 || !strings.Contains(out, "x: OK (fastpath, rung=fast)") {
		t.Errorf("fast rung: code=%d out=%q", code, out)
	}
	// Frontline ablated: the exact rung decides as before.
	code, out, _ = runCheck(t, []string{"-resilient", "-no-fastpath"}, coherentTrace)
	if code != 0 || !strings.Contains(out, "x: OK (read-map, rung=exact)") {
		t.Errorf("exact rung: code=%d out=%q", code, out)
	}
	// Budget too small for the exact search but only six writes: the
	// write-order enumeration rung still refutes (frontline ablated so
	// the ladder is what answers).
	code, out, _ = runCheck(t, []string{"-resilient", "-no-fastpath", "-max-states", "3"}, backtrackTrace)
	if code != 1 || !strings.Contains(out, "x: VIOLATION (write-order-enum, rung=specialist)") {
		t.Errorf("specialist rung: code=%d out=%q", code, out)
	}
	// Nine writes: no rung decides — UNKNOWN with evidence, exit 1.
	code, out, _ = runCheck(t, []string{"-resilient", "-max-states", "5"}, manyWriteTrace)
	if code != 1 || !strings.Contains(out, "x: UNKNOWN (ladder-exhausted, rung=necessary)") {
		t.Errorf("ladder exhausted: code=%d out=%q", code, out)
	}
	if !strings.Contains(out, "check: unwritten-read-values: pass") {
		t.Errorf("no necessary-condition evidence:\n%s", out)
	}
}

// TestRobustnessFlagValidation: the checkpoint and ladder flags only
// make sense for the offline coherence search; everything else is a
// usage error.
func TestRobustnessFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{"-checkpoint", "x", "-model", "sc"},
		{"-resume", "x", "-model", "tso"},
		{"-resilient", "-model", "sc"},
		{"-checkpoint", "x", "-online"},
		{"-checkpoint", "x", "-use-order"},
		{"-resilient", "-use-order"},
		{"-checkpoint", "x", "-portfolio"},
		{"-resume", "/nonexistent/ck.json"},
	} {
		if code, _, _ := runCheck(t, args, coherentTrace); code != 2 {
			t.Errorf("%v: code=%d, want 2", args, code)
		}
	}
}

// slowIncoherentTrace is refuted only by exhausting an enormous search:
// 70 writes of repeated values followed by a read no write satisfies.
// Uninterrupted it runs for seconds, leaving a wide window to interrupt.
func slowIncoherentTrace() string {
	rng := rand.New(rand.NewSource(13))
	var b strings.Builder
	b.WriteString("init x 0\n")
	for p := 0; p < 5; p++ {
		for i := 0; i < 14; i++ {
			fmt.Fprintf(&b, "P%d: W x %d\n", p, 1+rng.Intn(3))
		}
	}
	b.WriteString("P0: R x 9999\n")
	return b.String()
}

// TestSIGINTWritesCheckpoint is the interrupt acceptance test: SIGINT
// mid-search with -checkpoint must exit 0 after writing a resumable
// checkpoint and reporting the partial progress — a pause, not a crash.
func TestSIGINTWritesCheckpoint(t *testing.T) {
	// Backstop handler: if the signal fired before run() installed its
	// own, the runtime's default action would kill the test binary.
	backstop := make(chan os.Signal, 1)
	signal.Notify(backstop, os.Interrupt)
	defer signal.Stop(backstop)

	path := filepath.Join(t.TempDir(), "ck.json")
	input := slowIncoherentTrace()
	type result struct {
		code int
		out  string
	}
	done := make(chan result, 1)
	go func() {
		var out, errBuf bytes.Buffer
		code := run([]string{"-checkpoint", path}, strings.NewReader(input), &out, &errBuf)
		done <- result{code, out.String()}
	}()
	// Give run() time to get into the search, then interrupt ourselves.
	time.Sleep(500 * time.Millisecond)
	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	var r result
	select {
	case r = <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("run did not return after SIGINT")
	}
	if r.code != 0 {
		t.Fatalf("interrupted run exited %d, want 0 (pause, not failure):\n%s", r.code, r.out)
	}
	if !strings.Contains(r.out, "INTERRUPTED") || !strings.Contains(r.out, "checkpoint: wrote "+path) {
		t.Fatalf("interrupt report incomplete:\n%s", r.out)
	}
	if !strings.Contains(r.out, "UNDECIDED") {
		t.Errorf("no partial-progress report before exit:\n%s", r.out)
	}
	if _, err := coherence.LoadCheckpoint(path); err != nil {
		t.Fatalf("checkpoint written on SIGINT does not load: %v", err)
	}
	// The checkpoint resumes: same trace, small budget — the run picks
	// the search back up (and trips the budget again, which is fine).
	code, out, errOut := runCheck(t, []string{"-resume", path, "-max-states", "100"}, input)
	if code != 1 || !strings.Contains(out, "UNDECIDED") {
		t.Errorf("resume from SIGINT checkpoint: code=%d out=%q stderr=%q", code, out, errOut)
	}
}

// TestTraceAndExplainCompose checks both tracer consumers can share one
// run (the Multi fan-out path).
func TestTraceAndExplainCompose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	code, out, _ := runCheck(t, []string{"-trace", path, "-explain"}, backtrackTrace)
	if code != 1 {
		t.Fatalf("code=%d", code)
	}
	if !strings.Contains(out, "conflicting operations") {
		t.Error("-explain lost when combined with -trace")
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() == 0 {
		t.Errorf("trace file missing or empty (err=%v)", err)
	}
}
