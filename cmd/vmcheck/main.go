// Command vmcheck verifies a memory trace against a consistency model.
//
// Usage:
//
//	vmcheck [-model coherence|sc|tso|pso|lrc|vscc] [-use-order]
//	        [-strategy auto|portfolio|resilient|exact|fast] [-portfolio]
//	        [-no-fastpath] [-psearch N] [-max-states N] [-timeout D] [-stats] [-cert]
//	        [-diagnose] [-explain] [-trace FILE] [-progress]
//	        [-progress-interval D] [-debug-addr HOST:PORT] [-online]
//	        [-resilient] [-checkpoint FILE] [-resume FILE] [trace-file]
//
// The trace is read from the file argument or standard input, in the
// format of internal/trace. The exit status is 0 when the trace adheres
// to the model, 1 when it does not (or the solver's budget ran out
// before a verdict), and 2 on usage or input errors. With -checkpoint,
// an interrupt (SIGINT/SIGTERM) also exits 0 after writing a resumable
// checkpoint — the interrupted run is not a failure, it is a pause.
//
// With -use-order, per-address "order" lines in the trace are used to
// run the polynomial write-order algorithms of §5.2 for coherence.
// -strategy picks the decision-procedure family with the same
// vocabulary the memverifyd service and the Verifier facades use;
// -portfolio and -resilient are shorthands for -strategy portfolio and
// -strategy resilient. With the portfolio strategy, every applicable
// coherence algorithm races on a shared worker pool and the first
// verdict wins. The polynomial constraint-propagation frontline opens
// the auto, portfolio and resilient strategies by default (and is the
// whole of -strategy fast, escalating only on an explicit
// inconclusive); -no-fastpath ablates it for A/B comparisons.
// -max-states and -timeout bound the search; a blown budget reports
// UNDECIDED. -stats prints the solver's per-solve search statistics.
// -psearch N splits each exact search across N workers sharing one memo
// table (see internal/coherence's parallel search); the verdict never
// changes, and -stats shows the workers actually used per address
// ("workers=N" appears in the stats line when more than one engaged).
//
// Robustness (see the README "Robustness" section): -checkpoint FILE
// makes the coherence check write a versioned, checksummed checkpoint
// when the budget trips or a SIGINT/SIGTERM arrives mid-search;
// -resume FILE seeds a later run from it, replaying completed
// per-address verdicts and pruning the interrupted search with its
// saved failed-state table. -resilient verifies with the
// graceful-degradation ladder: instead of reporting UNDECIDED when the
// exact search exhausts its budget, it steps down to the paper's §5
// restricted algorithms and finally to sound necessary conditions,
// reporting UNKNOWN (with the ladder rung) only when nothing decides.
//
// Observability (see internal/obs and the README "Observability"
// section): -trace writes a JSONL event trace of the search (spans,
// state enters, backtracks, memo hits, portfolio stages, race
// outcomes); -explain renders a per-address summary of the search tree
// and names the conflicting operations for incoherent verdicts
// (coherence model only); -progress samples live solver throughput to
// stderr; -debug-addr serves expvar counters and net/http/pprof
// profiles over HTTP for the lifetime of the check.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"memverify/internal/coherence"
	"memverify/internal/consistency"
	"memverify/internal/memory"
	"memverify/internal/monitor"
	"memverify/internal/obs"
	"memverify/internal/solver"
	"memverify/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("vmcheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	model := fs.String("model", "coherence", "model to verify: coherence, sc, tso, pso, lrc or vscc")
	useOrder := fs.Bool("use-order", false, "use the trace's per-address write orders (polynomial algorithms of §5.2)")
	strategy := fs.String("strategy", "auto", "decision strategy: auto, portfolio, resilient, exact or fast (same vocabulary as memverifyd)")
	portfolio := fs.Bool("portfolio", false, "shorthand for -strategy portfolio")
	noFastPath := fs.Bool("no-fastpath", false, "disable the polynomial fast-path frontline (ablation baseline; the verdict never changes, only the time to reach it)")
	maxStates := fs.Int("max-states", 0, "abort search after N states (0 = unlimited)")
	timeout := fs.Duration("timeout", 0, "wall-clock budget for the whole check, e.g. 500ms (0 = none)")
	psearch := fs.Int("psearch", 0, "split each exact search across N workers sharing one memo table (0/1 = sequential; -stats shows the workers actually used per address)")
	showStats := fs.Bool("stats", false, "print per-solve search statistics")
	cert := fs.Bool("cert", false, "print the certificate schedule or witness on success")
	diagnose := fs.Bool("diagnose", false, "on a coherence violation, shrink it to a minimal core (implies -model coherence)")
	online := fs.Bool("online", false, "replay the trace in file order through the incremental monitor (requires the file order to be the completion order, as simtrace emits)")
	traceOut := fs.String("trace", "", "write a JSONL event trace of the search to this file")
	explain := fs.Bool("explain", false, "summarize the search tree per address and name the conflicting operations on incoherence (coherence model only)")
	progress := fs.Bool("progress", false, "report live solver progress (states/sec, depth, memo hit-rate) to stderr")
	progressEvery := fs.Duration("progress-interval", 0, "sampling interval for -progress (default 2s)")
	debugAddr := fs.String("debug-addr", "", "serve expvar and pprof debug endpoints on this address, e.g. localhost:6060")
	resilient := fs.Bool("resilient", false, "shorthand for -strategy resilient: degrade gracefully on budget exhaustion, reporting UNKNOWN instead of UNDECIDED (coherence model only)")
	ckPath := fs.String("checkpoint", "", "write a resumable checkpoint here when the budget trips or on SIGINT/SIGTERM (coherence model only)")
	resumePath := fs.String("resume", "", "resume from a checkpoint written by -checkpoint (coherence model only)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	strat, err := solver.ParseStrategy(*strategy)
	if err != nil {
		fmt.Fprintf(stderr, "vmcheck: %v\n", err)
		return 2
	}
	if *portfolio {
		strat = solver.StrategyPortfolio
	}
	if *resilient {
		strat = solver.StrategyResilient
	}
	useResilient := strat == solver.StrategyResilient
	usePortfolio := strat == solver.StrategyPortfolio
	if *ckPath != "" || *resumePath != "" || useResilient {
		if *model != "coherence" || *online {
			fmt.Fprintln(stderr, "vmcheck: -checkpoint, -resume and the resilient strategy require -model coherence (and not -online)")
			return 2
		}
		if *useOrder && !useResilient {
			fmt.Fprintln(stderr, "vmcheck: -checkpoint/-resume do not apply to the -use-order polynomial algorithms")
			return 2
		}
		if *useOrder && useResilient {
			fmt.Fprintln(stderr, "vmcheck: the resilient strategy uses the trace's write orders as ladder hints automatically; drop -use-order")
			return 2
		}
		if usePortfolio && (*ckPath != "" || *resumePath != "") {
			fmt.Fprintln(stderr, "vmcheck: -checkpoint/-resume need the sequential search, not the portfolio strategy")
			return 2
		}
	}

	in := stdin
	if fs.NArg() > 1 {
		fmt.Fprintln(stderr, "vmcheck: at most one trace file")
		return 2
	}
	if fs.NArg() == 1 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			fmt.Fprintf(stderr, "vmcheck: %v\n", err)
			return 2
		}
		defer f.Close()
		in = f
	}
	tr, err := trace.Read(in)
	if err != nil {
		fmt.Fprintf(stderr, "vmcheck: %v\n", err)
		return 2
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if *ckPath != "" {
		// With a checkpoint destination, SIGINT/SIGTERM become a request
		// to pause: the context cancels, the in-flight search aborts with
		// its partial state, and the checkpoint is written before exit.
		var stop context.CancelFunc
		ctx, stop = signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
		defer stop()
	}
	// One unified configuration: the strategy and budget flags bind to
	// the same solver.Config vocabulary the memverifyd HTTP parameters
	// and Go facade callers use.
	cfgOpts := []solver.ConfigOption{
		solver.WithStrategy(strat),
		solver.WithBudget(solver.WithMaxStates(*maxStates)),
	}
	if *noFastPath {
		cfgOpts = append(cfgOpts, solver.WithBudget(solver.WithoutFastPath()))
	}
	if *psearch > 1 {
		// Parallel exact search inside each hard instance. Checkpointing
		// stays sequential (a mid-flight multi-worker memo is not
		// resumable state): with -checkpoint the search falls back to the
		// sequential path automatically.
		cfgOpts = append(cfgOpts, solver.WithBudget(solver.WithParallelSearch(*psearch)))
	}
	if useResilient {
		// The trace's order lines become ladder hints.
		cfgOpts = append(cfgOpts, solver.WithWriteOrders(tr.WriteOrders))
	}
	cfg := solver.NewConfig(cfgOpts...)

	// Observability wiring: an event tracer feeds the JSONL writer
	// and/or the -explain collector; a metrics set feeds the progress
	// reporter and the debug endpoint. Absent every flag, the context
	// carries no observer and the solvers run at full speed.
	var (
		collector *obs.Collector
		sinks     []obs.Sink
	)
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintf(stderr, "vmcheck: %v\n", err)
			return 2
		}
		jl := obs.NewJSONL(f)
		sinks = append(sinks, jl)
		defer func() {
			if err := jl.Close(); err != nil {
				fmt.Fprintf(stderr, "vmcheck: trace: %v\n", err)
			}
			f.Close()
		}()
	}
	if *explain {
		collector = obs.NewCollector()
		sinks = append(sinks, collector)
	}
	var o obs.Observer
	if len(sinks) > 0 {
		o.Tracer = obs.NewTracer(obs.Multi(sinks...))
	}
	if *progress || *debugAddr != "" {
		o.Metrics = obs.NewMetrics()
	}
	if o.Tracer != nil || o.Metrics != nil {
		ctx = obs.With(ctx, &o)
	}
	if *progress {
		p := obs.StartProgress(stderr, o.Metrics, *progressEvery, int64(*maxStates))
		defer p.Stop()
	}
	if *debugAddr != "" {
		srv, err := obs.ServeDebug(*debugAddr, o.Metrics)
		if err != nil {
			fmt.Fprintf(stderr, "vmcheck: %v\n", err)
			return 2
		}
		fmt.Fprintf(stderr, "vmcheck: debug endpoints on http://%s/debug/\n", srv.Addr)
		defer srv.Close()
	}

	if *online {
		return checkOnline(tr, stdout)
	}

	switch *model {
	case "coherence":
		c := &coherenceCheck{
			useOrder:   *useOrder,
			stats:      *showStats,
			cert:       *cert,
			diagnose:   *diagnose,
			explain:    *explain,
			ckPath:     *ckPath,
			resumePath: *resumePath,
			collector:  collector,
			cfg:        cfg,
			lat:        obs.NewHistogram(),
		}
		return c.run(ctx, tr, stdout, stderr)
	case "sc", "tso", "pso", "lrc", "vscc":
		m, merr := consistency.ParseModel(*model)
		if merr != nil {
			fmt.Fprintf(stderr, "vmcheck: %v\n", merr)
			return 2
		}
		vOpts := []solver.ConfigOption{solver.WithConfig(cfg)}
		if *useOrder && m == consistency.SC {
			// §6.3: the write orders constrain (and usually prune) the
			// SC search — but the question stays NP-Complete.
			vOpts = append(vOpts, solver.WithWriteOrders(tr.WriteOrders))
		}
		res, err := consistency.NewVerifier(m, vOpts...).Verify(ctx, tr.Exec)
		if err != nil {
			if be, ok := solver.AsBudgetError(err); ok {
				reportUndecided(stdout, m.String(), be, *showStats)
				return 1
			}
			fmt.Fprintf(stderr, "vmcheck: %v\n", err)
			return 2
		}
		report(stdout, m.String(), res, tr.Exec, *showStats, *cert)
		if *cert && res.Holds() {
			for _, e := range res.Events {
				fmt.Fprintln(stdout, e)
			}
		}
		if !res.Holds() {
			return 1
		}
		return 0
	default:
		fmt.Fprintf(stderr, "vmcheck: unknown model %q\n", *model)
		return 2
	}
}

// report renders the unified verdict line shared by every model:
// subject, OK/VIOLATION, the algorithm that decided, and optionally the
// solver statistics and certificate schedule.
func report(w io.Writer, subject string, v solver.Verdict, exec *memory.Execution, stats, cert bool) {
	verdict := "VIOLATION"
	if v.Holds() {
		verdict = "OK"
	}
	fmt.Fprintf(w, "%s: %s (%s)\n", subject, verdict, v.AlgorithmName())
	if stats {
		fmt.Fprintf(w, "  stats: %s\n", v.SolverStats())
	}
	if cert && v.Holds() {
		if s := v.Certificate(); len(s) > 0 {
			fmt.Fprintln(w, "  ", s.Format(exec))
		}
	}
}

// reportUndecided renders a blown solver budget in the same shape.
func reportUndecided(w io.Writer, subject string, be *solver.ErrBudgetExceeded, stats bool) {
	fmt.Fprintf(w, "%s: UNDECIDED (%s after %d states)\n", subject, be.Reason, be.Stats.States)
	if stats {
		fmt.Fprintf(w, "  stats: %s\n", be.Stats)
	}
}

// coherenceCheck bundles the per-address coherence verification flags
// around one unified solver.Config.
type coherenceCheck struct {
	useOrder   bool
	stats      bool
	cert       bool
	diagnose   bool
	explain    bool
	ckPath     string
	resumePath string
	collector  *obs.Collector
	cfg        *solver.Config
	lat        *obs.Histogram // per-address solve latency, printed with -stats
}

// resilient reports whether the config asks for the degradation ladder.
func (c *coherenceCheck) resilient() bool { return c.cfg.Strategy == solver.StrategyResilient }

// verifier builds the per-address facade, overriding the per-solve
// options (the checkpointed loop derives a per-address variant carrying
// the resume memo and snapshot sink).
func (c *coherenceCheck) verifier(opts *coherence.Options) *coherence.Verifier {
	return coherence.NewVerifier(solver.WithConfig(c.cfg), solver.WithOptions(opts))
}

func (c *coherenceCheck) run(ctx context.Context, tr *trace.Trace, stdout, stderr io.Writer) int {
	addrs := tr.Exec.Addresses()
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })

	var ckrun *coherence.CheckpointRun
	if c.ckPath != "" || c.resumePath != "" {
		if c.resumePath != "" {
			ck, err := coherence.LoadCheckpoint(c.resumePath)
			if err != nil {
				fmt.Fprintf(stderr, "vmcheck: %v\n", err)
				return 2
			}
			ckrun, err = coherence.ResumeCheckpointRun(tr.Exec, ck)
			if err != nil {
				fmt.Fprintf(stderr, "vmcheck: %v\n", err)
				return 2
			}
		} else {
			ckrun = coherence.NewCheckpointRun(tr.Exec)
		}
	}
	// writeCk persists the run's resumable state; it reports whether a
	// checkpoint was actually written (a -resume-only run has no
	// destination, and losing the race to write one is a hard error —
	// the user asked for crash safety).
	writeCk := func() (bool, bool) {
		if ckrun == nil || c.ckPath == "" {
			return false, true
		}
		if err := ckrun.Checkpoint().WriteFile(c.ckPath); err != nil {
			fmt.Fprintf(stderr, "vmcheck: %v\n", err)
			return false, false
		}
		return true, true
	}

	bad := 0
	for _, a := range addrs {
		if ckrun != nil {
			if res, ok := ckrun.Lookup(a); ok {
				report(stdout, tr.Name(a), res, tr.Exec, c.stats, c.cert)
				if !res.Coherent {
					bad++
				}
				continue
			}
		}
		opts := c.cfg.Options
		if ckrun != nil {
			opts = ckrun.Configure(a, c.cfg.Options)
		}

		solveStart := time.Now()
		if c.resilient() {
			ar, err := c.verifier(opts).SolveAddr(ctx, tr.Exec, a)
			c.lat.ObserveSince(solveStart)
			if err != nil {
				if code, stop := c.handleSolveErr(tr, a, err, writeCk, stdout, stderr, &bad); stop {
					return code
				}
				continue
			}
			rr := ar.Resilient()
			reportResilient(stdout, tr.Name(a), rr, tr.Exec, c.stats, c.cert)
			if rr.Verdict != coherence.VerdictCoherent {
				bad++
			}
			continue
		}

		var res *coherence.Result
		var err error
		if c.useOrder {
			order, ok := tr.WriteOrders[a]
			if !ok && countWrites(tr.Exec, a) > 0 {
				fmt.Fprintf(stderr, "vmcheck: no write order recorded for %s\n", tr.Name(a))
				return 2
			}
			res, err = coherence.SolveWithWriteOrder(ctx, tr.Exec, a, order, c.cfg.Options)
		} else {
			res, err = c.verifier(opts).Solve(ctx, tr.Exec, a)
		}
		c.lat.ObserveSince(solveStart)
		if err != nil {
			if code, stop := c.handleSolveErr(tr, a, err, writeCk, stdout, stderr, &bad); stop {
				return code
			}
			continue
		}
		if ckrun != nil {
			ckrun.Record(a, res)
		}
		report(stdout, tr.Name(a), res, tr.Exec, c.stats, c.cert)
		if !res.Coherent {
			bad++
			if c.diagnose && !c.useOrder {
				c.printDiagnosis(ctx, tr, a, stdout, stderr)
			}
			if c.explain && !c.useOrder {
				c.printExplanation(ctx, tr, a, stdout, stderr)
			}
		}
	}
	if c.stats {
		printLatencySummary(stdout, c.lat.Snapshot())
	}
	if bad > 0 {
		fmt.Fprintf(stdout, "VIOLATION: %d of %d addresses incoherent or undecided\n", bad, len(addrs))
		return 1
	}
	fmt.Fprintf(stdout, "OK: execution coherent at all %d addresses\n", len(addrs))
	return 0
}

// printLatencySummary prints the per-address solve-latency quantiles
// collected with -stats — the same obs.Histogram memverifyd feeds its
// /metrics stage histograms from. Replayed checkpoint verdicts are not
// solves and stay out of the histogram (n counts real solves).
func printLatencySummary(w io.Writer, s obs.HistSnapshot) {
	if s.Count == 0 {
		return
	}
	fmt.Fprintf(w, "solve latency: n=%d p50=%s p90=%s p99=%s max=%s\n",
		s.Count,
		time.Duration(s.Quantile(0.50)).Round(time.Microsecond),
		time.Duration(s.Quantile(0.90)).Round(time.Microsecond),
		time.Duration(s.Quantile(0.99)).Round(time.Microsecond),
		time.Duration(s.Max).Round(time.Microsecond))
}

// handleSolveErr deals with a per-address solve error. Budget trips
// write the checkpoint (when configured) and count the address as
// undecided; a cancellation — which with -checkpoint means SIGINT or
// SIGTERM — ends the run, exiting 0 when a resumable checkpoint was
// written (the pause succeeded) and 1 otherwise. The bool result says
// whether run() must return with the int result.
func (c *coherenceCheck) handleSolveErr(tr *trace.Trace, a memory.Addr, err error, writeCk func() (bool, bool), stdout, stderr io.Writer, bad *int) (int, bool) {
	be, ok := solver.AsBudgetError(err)
	if !ok {
		fmt.Fprintf(stderr, "vmcheck: %s: %v\n", tr.Name(a), err)
		return 2, true
	}
	wrote, ckOK := writeCk()
	if !ckOK {
		return 2, true
	}
	reportUndecided(stdout, tr.Name(a), be, c.stats)
	if wrote {
		fmt.Fprintf(stdout, "checkpoint: wrote %s (resume with -resume)\n", c.ckPath)
	}
	if be.Reason == solver.Canceled {
		fmt.Fprintf(stdout, "INTERRUPTED: stopped at %s after %d states\n", tr.Name(a), be.Stats.States)
		if wrote {
			return 0, true
		}
		return 1, true
	}
	*bad++
	return 0, false
}

// reportResilient renders a degradation-ladder verdict in the shared
// report shape, naming the rung that decided, and — for an Unknown
// verdict — the necessary-condition evidence.
func reportResilient(w io.Writer, subject string, rr *coherence.ResilientResult, exec *memory.Execution, stats, cert bool) {
	verdict := map[coherence.ResilientVerdict]string{
		coherence.VerdictCoherent:   "OK",
		coherence.VerdictIncoherent: "VIOLATION",
		coherence.VerdictUnknown:    "UNKNOWN",
	}[rr.Verdict]
	alg := "ladder-exhausted"
	if rr.Result != nil {
		alg = rr.Result.Algorithm
	}
	fmt.Fprintf(w, "%s: %s (%s, rung=%s)\n", subject, verdict, alg, rr.Rung)
	if stats {
		fmt.Fprintf(w, "  stats: %s\n", rr.Stats)
	}
	if rr.Verdict == coherence.VerdictUnknown {
		for _, ch := range rr.Checks {
			fmt.Fprintf(w, "  check: %s\n", ch)
		}
	}
	if cert && rr.Result != nil && rr.Result.Coherent {
		if s := rr.Result.Schedule; len(s) > 0 {
			fmt.Fprintln(w, "  ", s.Format(exec))
		}
	}
}

func (c *coherenceCheck) printDiagnosis(ctx context.Context, tr *trace.Trace, a memory.Addr, stdout, stderr io.Writer) {
	d, err := coherence.Diagnose(ctx, tr.Exec, a, c.cfg.Options)
	if err != nil {
		fmt.Fprintf(stderr, "vmcheck: diagnosis of %s failed: %v\n", tr.Name(a), err)
		return
	}
	fmt.Fprintf(stdout, "  minimal core (%d ops", len(d.Ops))
	if d.FinalValueInvolved {
		fmt.Fprint(stdout, " + final value")
	}
	fmt.Fprintln(stdout, "):")
	for _, r := range d.Ops {
		fmt.Fprintf(stdout, "    %s: %s\n", r, tr.Exec.Op(r))
	}
}

// printExplanation renders the -explain summary for an incoherent
// address: the per-span search-tree statistics collected during the
// solve, then the conflicting operations of the minimal incoherent
// core. The span summaries are snapshotted before Diagnose runs, since
// its shrinking re-solves would otherwise pollute them.
func (c *coherenceCheck) printExplanation(ctx context.Context, tr *trace.Trace, a memory.Addr, stdout, stderr io.Writer) {
	spans := c.collector.ForAddr(int64(a))
	fmt.Fprintln(stdout, "  explain:")
	for _, s := range spans {
		fmt.Fprintf(stdout, "    %s\n", s.Describe())
		if h := s.BacktrackHistogram(); h != "" {
			fmt.Fprintf(stdout, "      backtracks by depth: %s\n", h)
		}
	}
	d, err := coherence.Diagnose(ctx, tr.Exec, a, c.cfg.Options)
	if err != nil {
		fmt.Fprintf(stderr, "vmcheck: explanation of %s incomplete: %v\n", tr.Name(a), err)
		return
	}
	fmt.Fprintf(stdout, "    conflicting operations (minimal core, %d ops", len(d.Ops))
	if d.FinalValueInvolved {
		fmt.Fprint(stdout, " + final value")
	}
	fmt.Fprintln(stdout, "):")
	for _, r := range d.Ops {
		fmt.Fprintf(stdout, "      %s: %s\n", r, tr.Exec.Op(r))
	}
}

// checkOnline replays the trace in file (completion) order through the
// incremental monitor.
func checkOnline(tr *trace.Trace, stdout io.Writer) int {
	mon := monitor.New(tr.Exec.Initial)
	for _, r := range tr.Arrival {
		o := tr.Exec.Op(r)
		if !o.IsMemory() {
			continue
		}
		var err error
		switch o.Kind {
		case memory.Read:
			err = mon.ObserveRead(r.Proc, o.Addr, o.Data)
		case memory.Write:
			err = mon.ObserveWrite(r.Proc, o.Addr, o.Data)
		case memory.ReadModifyWrite:
			err = mon.ObserveRMW(r.Proc, o.Addr, o.Data, o.Store)
		}
		if err != nil {
			fmt.Fprintf(stdout, "VIOLATION: %v\n", err)
			return 1
		}
	}
	if err := mon.CheckFinal(tr.Exec.Final); err != nil {
		fmt.Fprintf(stdout, "VIOLATION: %v\n", err)
		return 1
	}
	st := mon.Stats()
	fmt.Fprintf(stdout, "OK: %d reads, %d writes, %d RMWs monitored without violation\n",
		st.Reads, st.Writes, st.RMWs)
	return 0
}

func countWrites(exec *memory.Execution, a memory.Addr) int {
	n := 0
	for _, h := range exec.Histories {
		for _, o := range h {
			if o.IsMemory() && o.Addr == a {
				if _, ok := o.Writes(); ok {
					n++
				}
			}
		}
	}
	return n
}
