// Command vmcheck verifies a memory trace against a consistency model.
//
// Usage:
//
//	vmcheck [-model coherence|sc|tso|pso|lrc] [-use-order] [-max-states N] [-cert] [trace-file]
//
// The trace is read from the file argument or standard input, in the
// format of internal/trace. The exit status is 0 when the trace adheres
// to the model, 1 when it does not, and 2 on usage or input errors.
// With -use-order, per-address "order" lines in the trace are used to
// run the polynomial write-order algorithms of §5.2 for coherence.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"memverify/internal/coherence"
	"memverify/internal/consistency"
	"memverify/internal/memory"
	"memverify/internal/monitor"
	"memverify/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("vmcheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	model := fs.String("model", "coherence", "model to verify: coherence, sc, tso, pso or lrc")
	useOrder := fs.Bool("use-order", false, "use the trace's per-address write orders (polynomial algorithms of §5.2)")
	maxStates := fs.Int("max-states", 0, "abort search after N states (0 = unlimited)")
	cert := fs.Bool("cert", false, "print the certificate schedule or witness on success")
	diagnose := fs.Bool("diagnose", false, "on a coherence violation, shrink it to a minimal core (implies -model coherence)")
	online := fs.Bool("online", false, "replay the trace in file order through the incremental monitor (requires the file order to be the completion order, as simtrace emits)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	in := stdin
	if fs.NArg() > 1 {
		fmt.Fprintln(stderr, "vmcheck: at most one trace file")
		return 2
	}
	if fs.NArg() == 1 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			fmt.Fprintf(stderr, "vmcheck: %v\n", err)
			return 2
		}
		defer f.Close()
		in = f
	}
	tr, err := trace.Read(in)
	if err != nil {
		fmt.Fprintf(stderr, "vmcheck: %v\n", err)
		return 2
	}

	opts := &consistency.Options{MaxStates: *maxStates}
	cohOpts := &coherence.Options{MaxStates: *maxStates}

	if *online {
		return checkOnline(tr, stdout)
	}

	switch *model {
	case "coherence":
		return checkCoherence(tr, *useOrder, cohOpts, *cert, *diagnose, stdout, stderr)
	case "sc", "tso", "pso", "lrc":
		m := map[string]consistency.Model{
			"sc": consistency.SC, "tso": consistency.TSO,
			"pso": consistency.PSO, "lrc": consistency.LRC,
		}[*model]
		var res *consistency.Result
		var err error
		if *useOrder && m == consistency.SC {
			// §6.3: the write orders constrain (and usually prune) the
			// SC search — but the question stays NP-Complete.
			res, err = consistency.SolveVSCWithWriteOrders(tr.Exec, tr.WriteOrders, opts)
		} else {
			res, err = consistency.Verify(m, tr.Exec, opts)
		}
		if err != nil {
			fmt.Fprintf(stderr, "vmcheck: %v\n", err)
			return 2
		}
		if !res.Decided {
			fmt.Fprintf(stdout, "UNDECIDED: state budget exhausted after %d states\n", res.Stats.States)
			return 1
		}
		if !res.Consistent {
			fmt.Fprintf(stdout, "VIOLATION: trace does not adhere to %s\n", m)
			return 1
		}
		fmt.Fprintf(stdout, "OK: trace adheres to %s (%d states)\n", m, res.Stats.States)
		if *cert {
			if len(res.Schedule) > 0 {
				fmt.Fprintln(stdout, res.Schedule.Format(tr.Exec))
			}
			for _, e := range res.Events {
				fmt.Fprintln(stdout, e)
			}
		}
		return 0
	default:
		fmt.Fprintf(stderr, "vmcheck: unknown model %q\n", *model)
		return 2
	}
}

func checkCoherence(tr *trace.Trace, useOrder bool, opts *coherence.Options, cert, diagnose bool, stdout, stderr io.Writer) int {
	addrs := tr.Exec.Addresses()
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	bad := 0
	for _, a := range addrs {
		var res *coherence.Result
		var err error
		if useOrder {
			order, ok := tr.WriteOrders[a]
			if !ok && countWrites(tr.Exec, a) > 0 {
				fmt.Fprintf(stderr, "vmcheck: no write order recorded for %s\n", tr.Name(a))
				return 2
			}
			res, err = coherence.SolveWithWriteOrder(tr.Exec, a, order, opts)
		} else {
			res, err = coherence.SolveAuto(tr.Exec, a, opts)
		}
		if err != nil {
			fmt.Fprintf(stderr, "vmcheck: %s: %v\n", tr.Name(a), err)
			return 2
		}
		switch {
		case !res.Decided:
			fmt.Fprintf(stdout, "%s: UNDECIDED (state budget exhausted)\n", tr.Name(a))
			bad++
		case !res.Coherent:
			fmt.Fprintf(stdout, "%s: VIOLATION (no coherent schedule, %s)\n", tr.Name(a), res.Algorithm)
			bad++
			if diagnose && !useOrder {
				d, err := coherence.Diagnose(tr.Exec, a, opts)
				if err != nil {
					fmt.Fprintf(stderr, "vmcheck: diagnosis of %s failed: %v\n", tr.Name(a), err)
					break
				}
				fmt.Fprintf(stdout, "  minimal core (%d ops", len(d.Ops))
				if d.FinalValueInvolved {
					fmt.Fprint(stdout, " + final value")
				}
				fmt.Fprintln(stdout, "):")
				for _, r := range d.Ops {
					fmt.Fprintf(stdout, "    %s: %s\n", r, tr.Exec.Op(r))
				}
			}
		default:
			fmt.Fprintf(stdout, "%s: coherent (%s)\n", tr.Name(a), res.Algorithm)
			if cert {
				fmt.Fprintln(stdout, "  ", res.Schedule.Format(tr.Exec))
			}
		}
	}
	if bad > 0 {
		fmt.Fprintf(stdout, "VIOLATION: %d of %d addresses incoherent or undecided\n", bad, len(addrs))
		return 1
	}
	fmt.Fprintf(stdout, "OK: execution coherent at all %d addresses\n", len(addrs))
	return 0
}

// checkOnline replays the trace in file (completion) order through the
// incremental monitor.
func checkOnline(tr *trace.Trace, stdout io.Writer) int {
	mon := monitor.New(tr.Exec.Initial)
	for _, r := range tr.Arrival {
		o := tr.Exec.Op(r)
		if !o.IsMemory() {
			continue
		}
		var err error
		switch o.Kind {
		case memory.Read:
			err = mon.ObserveRead(r.Proc, o.Addr, o.Data)
		case memory.Write:
			err = mon.ObserveWrite(r.Proc, o.Addr, o.Data)
		case memory.ReadModifyWrite:
			err = mon.ObserveRMW(r.Proc, o.Addr, o.Data, o.Store)
		}
		if err != nil {
			fmt.Fprintf(stdout, "VIOLATION: %v\n", err)
			return 1
		}
	}
	if err := mon.CheckFinal(tr.Exec.Final); err != nil {
		fmt.Fprintf(stdout, "VIOLATION: %v\n", err)
		return 1
	}
	st := mon.Stats()
	fmt.Fprintf(stdout, "OK: %d reads, %d writes, %d RMWs monitored without violation\n",
		st.Reads, st.Writes, st.RMWs)
	return 0
}

func countWrites(exec *memory.Execution, a memory.Addr) int {
	n := 0
	for _, h := range exec.Histories {
		for _, o := range h {
			if o.IsMemory() && o.Addr == a {
				if _, ok := o.Writes(); ok {
					n++
				}
			}
		}
	}
	return n
}
