package main

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"memverify/internal/coherence"
	"memverify/internal/consistency"
	"memverify/internal/trace"
)

func runSim(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errBuf bytes.Buffer
	code := run(args, &out, &errBuf)
	return code, out.String(), errBuf.String()
}

func TestMESITraceIsCoherent(t *testing.T) {
	code, out, _ := runSim(t, "-procs", "2", "-ops", "8", "-seed", "5")
	if code != 0 {
		t.Fatalf("code=%d", code)
	}
	tr, err := trace.Read(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	ok, bad, err := coherence.Coherent(context.Background(), tr.Exec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Errorf("fault-free MESI trace incoherent at address %d", bad)
	}
}

func TestTSOTracePassesTSOChecker(t *testing.T) {
	code, out, _ := runSim(t, "-machine", "tso", "-procs", "2", "-ops", "6", "-seed", "7")
	if code != 0 {
		t.Fatalf("code=%d", code)
	}
	tr, err := trace.Read(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	res, err := consistency.VerifyTSO(context.Background(), tr.Exec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Consistent {
		t.Error("TSO machine trace rejected by TSO checker")
	}
}

func TestFaultInjectionEventuallyDetectable(t *testing.T) {
	// Across seeds, at least one drop-write run must be incoherent.
	for _, seed := range []string{"1", "2", "3", "4", "5", "6", "7", "8"} {
		code, out, _ := runSim(t, "-fault", "drop-write", "-fault-nth", "2", "-seed", seed)
		if code != 0 {
			t.Fatalf("code=%d", code)
		}
		tr, err := trace.Read(strings.NewReader(out))
		if err != nil {
			t.Fatal(err)
		}
		ok, _, err := coherence.Coherent(context.Background(), tr.Exec, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return // detected
		}
	}
	t.Error("no seed produced a detectable violation")
}

func TestRecordOrderEmitsOrders(t *testing.T) {
	code, out, _ := runSim(t, "-record-order", "-procs", "2", "-ops", "6", "-seed", "9")
	if code != 0 {
		t.Fatalf("code=%d", code)
	}
	if !strings.Contains(out, "order ") {
		t.Errorf("no order lines:\n%s", out)
	}
	tr, err := trace.Read(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range tr.Exec.Addresses() {
		res, err := coherence.SolveWithWriteOrder(context.Background(), tr.Exec, a, tr.WriteOrders[a], nil)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Coherent {
			t.Errorf("recorded order rejected for address %d", a)
		}
	}
}

func TestSimtraceErrors(t *testing.T) {
	if code, _, _ := runSim(t, "-machine", "quantum"); code != 2 {
		t.Error("unknown machine accepted")
	}
	if code, _, _ := runSim(t, "-fault", "gremlins"); code != 2 {
		t.Error("unknown fault accepted")
	}
}

func TestDirectoryMachineTraceIsCoherent(t *testing.T) {
	code, out, _ := runSim(t, "-machine", "directory", "-procs", "3", "-ops", "8", "-seed", "11")
	if code != 0 {
		t.Fatalf("code=%d", code)
	}
	tr, err := trace.Read(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	ok, bad, err := coherence.Coherent(context.Background(), tr.Exec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Errorf("fault-free directory trace incoherent at address %d", bad)
	}
}

func TestDirectoryFaultInjection(t *testing.T) {
	for _, seed := range []string{"1", "2", "3", "4", "5", "6", "7", "8"} {
		code, out, _ := runSim(t, "-machine", "directory", "-fault", "drop-store", "-fault-nth", "2", "-seed", seed)
		if code != 0 {
			t.Fatalf("code=%d", code)
		}
		tr, err := trace.Read(strings.NewReader(out))
		if err != nil {
			t.Fatal(err)
		}
		ok, _, err := coherence.Coherent(context.Background(), tr.Exec, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return // detected
		}
	}
	t.Error("no seed produced a detectable directory violation")
}

func TestDirectoryUnknownFault(t *testing.T) {
	if code, _, _ := runSim(t, "-machine", "directory", "-fault", "gremlins"); code != 2 {
		t.Error("unknown directory fault accepted")
	}
}
