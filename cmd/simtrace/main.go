// Command simtrace runs a simulated multiprocessor on a random program
// and emits the observed execution as a trace.
//
// Usage:
//
//	simtrace [-machine mesi|tso|pso] [-procs N] [-ops N] [-addrs N]
//	         [-seed N] [-fault kind] [-fault-nth N | -fault-p P]
//	         [-record-order]
//
// With -machine mesi (default), a bus-based MESI system executes the
// program; -fault injects a protocol error (one of drop-invalidate,
// lose-writeback, stale-memory, corrupt-fill, drop-write). With tso/pso,
// a store-buffer machine executes it instead, producing relaxed traces.
// The trace goes to standard output, ready for vmcheck:
//
//	simtrace -fault drop-write -fault-nth 1 | vmcheck
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"memverify/internal/directory"
	"memverify/internal/memory"
	"memverify/internal/mesi"
	"memverify/internal/obs"
	"memverify/internal/trace"
	"memverify/internal/tsomachine"
	"memverify/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("simtrace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	machine := fs.String("machine", "mesi", "machine model: mesi, directory, tso or pso")
	procs := fs.Int("procs", 2, "processors")
	ops := fs.Int("ops", 12, "operations per processor")
	addrs := fs.Int("addrs", 2, "distinct addresses")
	seed := fs.Int64("seed", 1, "random seed")
	faultName := fs.String("fault", "", "MESI fault kind to inject (see package docs); empty = correct protocol")
	faultNth := fs.Int("fault-nth", 1, "fire the fault at its Nth opportunity")
	faultP := fs.Float64("fault-p", 0, "fire the fault with this probability at every opportunity (overrides -fault-nth)")
	recordOrder := fs.Bool("record-order", false, "emit per-address write-order lines (atomic-memory generator instead of a machine)")
	traceOut := fs.String("trace", "", "write a JSONL event trace of coherence transactions to this file (mesi/directory machines)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	rng := rand.New(rand.NewSource(*seed))

	var tracer *obs.Tracer
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintf(stderr, "simtrace: %v\n", err)
			return 2
		}
		sink := obs.NewJSONL(f)
		tracer = obs.NewTracer(sink)
		defer func() {
			sink.Close()
			if err := f.Close(); err != nil {
				fmt.Fprintf(stderr, "simtrace: %v\n", err)
			}
		}()
	}

	if *recordOrder {
		exec, orders := workload.GenerateCoherent(rng, workload.GenConfig{
			Processors: *procs, OpsPerProc: *ops, Addresses: *addrs, Values: 4,
			WriteFraction: 0.4, RMWFraction: 0.1,
		})
		t := trace.New(exec)
		t.WriteOrders = orders
		if err := trace.Write(stdout, t); err != nil {
			fmt.Fprintf(stderr, "simtrace: %v\n", err)
			return 2
		}
		return 0
	}

	prog := mesi.RandomProgram(rng, *procs, *ops, *addrs, 0.4, 0.1)
	var exec *memory.Execution
	var arrival []memory.Ref
	var stats obs.CounterSet
	switch *machine {
	case "mesi":
		var faults *mesi.Faults
		if *faultName != "" {
			kind, ok := faultByName(*faultName)
			if !ok {
				fmt.Fprintf(stderr, "simtrace: unknown fault %q\n", *faultName)
				return 2
			}
			if *faultP > 0 {
				faults = mesi.WithProbability(kind, *faultP, rng)
			} else {
				faults = mesi.Once(kind, *faultNth)
			}
		}
		sys := mesi.New(mesi.Config{Processors: *procs, Faults: faults, Tracer: tracer})
		exec = mesi.Run(sys, prog, rng)
		arrival = sys.Arrival()
		stats = sys.Stats()
	case "directory":
		var faults *directory.Faults
		if *faultName != "" {
			kind, ok := dirFaultByName(*faultName)
			if !ok {
				fmt.Fprintf(stderr, "simtrace: unknown directory fault %q\n", *faultName)
				return 2
			}
			if *faultP > 0 {
				faults = directory.WithProbability(kind, *faultP, rng)
			} else {
				faults = directory.Once(kind, *faultNth)
			}
		}
		sys := directory.New(directory.Config{Nodes: *procs, Faults: faults, Tracer: tracer})
		exec = runDirectory(sys, prog, rng)
		arrival = sys.Arrival()
		stats = sys.Stats()
	case "tso", "pso":
		disc := tsomachine.TSO
		if *machine == "pso" {
			disc = tsomachine.PSO
		}
		m := tsomachine.New(*procs, disc)
		exec = tsomachine.Run(m, prog, rng, 0.3)
	default:
		fmt.Fprintf(stderr, "simtrace: unknown machine %q\n", *machine)
		return 2
	}
	if stats != nil {
		fmt.Fprintf(stderr, "simtrace: %s\n", obs.FormatCounters(stats))
	}
	t := trace.New(exec)
	t.Arrival = arrival
	if err := trace.Write(stdout, t); err != nil {
		fmt.Fprintf(stderr, "simtrace: %v\n", err)
		return 2
	}
	return 0
}

func faultByName(name string) (mesi.FaultKind, bool) {
	for _, k := range mesi.FaultKinds() {
		if k.String() == name {
			return k, true
		}
	}
	return 0, false
}

func dirFaultByName(name string) (directory.FaultKind, bool) {
	for _, k := range directory.FaultKinds() {
		if k.String() == name {
			return k, true
		}
	}
	return 0, false
}

// runDirectory executes a program on the directory system with random
// interleaving and occasional evictions.
func runDirectory(s *directory.System, p mesi.Program, rng *rand.Rand) *memory.Execution {
	pos := make([]int, len(p))
	remaining := 0
	for _, insts := range p {
		remaining += len(insts)
	}
	for remaining > 0 {
		node := rng.Intn(len(p))
		if rng.Intn(10) == 0 {
			s.Evict(node, memory.Addr(rng.Intn(4)))
			continue
		}
		if pos[node] >= len(p[node]) {
			continue
		}
		in := p[node][pos[node]]
		pos[node]++
		remaining--
		switch in.Kind {
		case mesi.InstrRead:
			s.Read(node, in.Addr)
		case mesi.InstrWrite:
			s.Write(node, in.Addr, in.Value)
		case mesi.InstrRMW:
			s.RMW(node, in.Addr, in.Value)
		}
	}
	return s.Execution(true)
}
