package obs

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// promBounds are the le upper bounds (in nanoseconds) of the exposed
// histogram buckets: a power-of-two ladder from 1µs to ~34s plus +Inf.
// The fine-grained internal buckets (12.5% wide) fold into these, so
// the exposition stays ~27 lines per histogram instead of 512 while
// Prometheus-side quantile interpolation keeps sub-octave accuracy.
var promBounds = func() []int64 {
	var b []int64
	for v := int64(1000); v <= 34_359_738_368; v *= 2 { // 1µs .. 2^35 ns
		b = append(b, v)
	}
	return b
}()

// promLabels renders a label set (optionally with an extra le pair) in
// exposition syntax, escaping values.
func promLabels(labels []Label, le string) string {
	if len(labels) == 0 && le == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(promEscape(l.Value))
		b.WriteByte('"')
	}
	if le != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(`le="`)
		b.WriteString(le)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// promEscape escapes a label value per the text exposition format.
func promEscape(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
	return r.Replace(s)
}

// promFloat formats a sample value.
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteProm writes the registry in the Prometheus text exposition
// format (version 0.0.4), using only the standard library. Counters
// and gauges emit one line per series; histograms emit cumulative
// le-bucket lines plus _sum and _count, with nanosecond samples
// converted to seconds (histogram names should end in _seconds).
func WriteProm(w io.Writer, r *Registry) error {
	for _, f := range r.gather() {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		typ := "gauge"
		switch f.kind {
		case kindCounter:
			typ = "counter"
		case kindHistogram:
			typ = "histogram"
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, typ); err != nil {
			return err
		}
		for _, s := range f.series {
			var err error
			if f.kind == kindHistogram {
				err = writePromHist(w, f.name, s)
			} else {
				_, err = fmt.Fprintf(w, "%s%s %s\n", f.name, promLabels(s.labels, ""), promFloat(s.value))
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// writePromHist writes one histogram series: cumulative buckets at the
// promBounds ladder, +Inf, _sum and _count.
func writePromHist(w io.Writer, name string, s series) error {
	for _, bound := range promBounds {
		le := promFloat(float64(bound) / 1e9)
		cum := s.hist.CumulativeAtMost(bound)
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, promLabels(s.labels, le), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, promLabels(s.labels, "+Inf"), s.hist.Count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, promLabels(s.labels, ""), promFloat(float64(s.hist.Sum)/1e9)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, promLabels(s.labels, ""), s.hist.Count)
	return err
}

// PromHandler serves the registry at GET /metrics in the Prometheus
// text exposition format. Exposition is deliberately stdlib-only: the
// format is a dozen line shapes, and a client dependency would be the
// only third-party import in the repository (see DESIGN.md §5).
func PromHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WriteProm(w, r)
	})
}
