package obs

import (
	"fmt"
	"strings"
)

// StatCounter is one named simulator counter: a passive name/value
// snapshot, unlike the live registry Counter instrument.
type StatCounter struct {
	Name  string
	Value uint64
}

// CounterSet is the shared shape of simulator statistics (mesi.Stats,
// directory.Stats): an ordered list of named counters. It lets
// cmd/simtrace — and any other consumer — print every simulator's
// counters through one code path instead of per-protocol formatting.
type CounterSet interface {
	Counters() []StatCounter
}

// FormatCounters renders a counter set as one "name=value ..." line,
// in the set's own order.
func FormatCounters(cs CounterSet) string {
	counters := cs.Counters()
	parts := make([]string, len(counters))
	for i, c := range counters {
		parts[i] = fmt.Sprintf("%s=%d", c.Name, c.Value)
	}
	return strings.Join(parts, " ")
}
