package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// --- Tracer + JSONL ---

// TestJSONLValidAndNested drives a realistic event sequence through a
// Tracer into a JSONL sink and checks the output line by line: every
// line parses as JSON, every event lands inside an open span, the inner
// span's parent is the outer span, and every begun span is ended.
func TestJSONLValidAndNested(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONL(&buf)
	tr := NewTracer(sink)

	ctx := context.Background()
	outer, ctx := tr.BeginAddr(ctx, "solve", 0)
	tr.Stage(outer, "specialist")
	inner, _ := tr.Begin(ctx, "general-search")
	tr.MemoMiss(inner, 0)
	tr.StateEnter(inner, 0, 1)
	tr.EagerReads(inner, 1, 3)
	tr.Backtrack(inner, 1)
	tr.MemoHit(inner, 1)
	tr.BudgetPoll(inner, 64, 2)
	inner.End("coherent", 64)
	outer.End("coherent (general-search)", 64)
	if err := sink.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	type line struct {
		TS     *int64  `json:"ts"`
		Ev     string  `json:"ev"`
		Span   uint64  `json:"span"`
		Parent *uint64 `json:"parent"`
		Name   string  `json:"name"`
		Addr   *int64  `json:"addr"`
		Depth  *int    `json:"depth"`
		States *int64  `json:"states"`
		N      *int64  `json:"n"`
		Detail string  `json:"detail"`
	}
	var lines []line
	open := map[uint64]bool{}
	for _, raw := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var l line
		if err := json.Unmarshal([]byte(raw), &l); err != nil {
			t.Fatalf("line %q does not parse: %v", raw, err)
		}
		if l.TS == nil {
			t.Fatalf("line %q missing ts", raw)
		}
		switch l.Ev {
		case "span_begin":
			open[l.Span] = true
		case "span_end":
			if !open[l.Span] {
				t.Fatalf("span_end for span %d that is not open", l.Span)
			}
			open[l.Span] = false
		default:
			if l.Span != 0 && !open[l.Span] {
				t.Fatalf("%s event on span %d outside its begin/end", l.Ev, l.Span)
			}
		}
		lines = append(lines, l)
	}
	for id, o := range open {
		if o {
			t.Errorf("span %d never ended", id)
		}
	}

	// First line: outer span begin with the address (0 must be encoded).
	if lines[0].Ev != "span_begin" || lines[0].Name != "solve" {
		t.Fatalf("first line = %+v, want solve span_begin", lines[0])
	}
	if lines[0].Addr == nil || *lines[0].Addr != 0 {
		t.Errorf("outer span addr = %v, want explicit 0", lines[0].Addr)
	}
	if lines[0].Parent != nil {
		t.Errorf("root span has parent %v", lines[0].Parent)
	}
	// Inner span parented to the outer one via the context.
	var innerBegin *line
	for i := range lines {
		if lines[i].Ev == "span_begin" && lines[i].Name == "general-search" {
			innerBegin = &lines[i]
		}
	}
	if innerBegin == nil {
		t.Fatal("inner span_begin missing")
	}
	if innerBegin.Parent == nil || *innerBegin.Parent != lines[0].Span {
		t.Errorf("inner parent = %v, want %d", innerBegin.Parent, lines[0].Span)
	}
	// Depth is meaningful (and encoded) even at 0 on search events.
	for _, l := range lines {
		switch l.Ev {
		case "state_enter", "backtrack", "memo_hit", "memo_miss", "eager_reads", "budget_poll":
			if l.Depth == nil {
				t.Errorf("%s missing depth field", l.Ev)
			}
		}
	}
	// Eager batch size rides in n.
	for _, l := range lines {
		if l.Ev == "eager_reads" && (l.N == nil || *l.N != 3) {
			t.Errorf("eager_reads n = %v, want 3", l.N)
		}
	}
}

// TestJSONLWorkerAndRace checks the proc field on worker spans and the
// always-present candidate index on race outcomes.
func TestJSONLWorkerAndRace(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONL(&buf)
	tr := NewTracer(sink)

	sp, _ := tr.BeginWorker(context.Background(), "pool-worker", 0)
	tr.RaceWin(sp, 0, "portfolio:general-search")
	tr.RaceLoss(sp, 1, "budget: states")
	sp.EndWorker(0, "done")
	if err := sink.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}

	var evs []map[string]any
	for _, raw := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var m map[string]any
		if err := json.Unmarshal([]byte(raw), &m); err != nil {
			t.Fatalf("line %q: %v", raw, err)
		}
		evs = append(evs, m)
	}
	wantEv := []string{"span_begin", "worker_start", "race_win", "race_loss", "worker_end", "span_end"}
	if len(evs) != len(wantEv) {
		t.Fatalf("got %d events, want %d", len(evs), len(wantEv))
	}
	for i, m := range evs {
		if m["ev"] != wantEv[i] {
			t.Fatalf("event %d = %v, want %s", i, m["ev"], wantEv[i])
		}
	}
	// Worker id 0 must be encoded on begin/start/end.
	for _, i := range []int{0, 1, 4} {
		if p, ok := evs[i]["proc"]; !ok || p.(float64) != 0 {
			t.Errorf("%s proc = %v, want explicit 0", wantEv[i], evs[i]["proc"])
		}
	}
	// Race candidate index 0 must be encoded too.
	if n, ok := evs[2]["n"]; !ok || n.(float64) != 0 {
		t.Errorf("race_win n = %v, want explicit 0", evs[2]["n"])
	}
	if n, ok := evs[3]["n"]; !ok || n.(float64) != 1 {
		t.Errorf("race_loss n = %v, want 1", evs[3]["n"])
	}
}

// TestBusDirectoryEvents checks the simulator transaction events carry
// name, proc, addr and value.
func TestBusDirectoryEvents(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONL(&buf)
	tr := NewTracer(sink)
	tr.Bus("bus-rdx", 1, 0, 7)
	tr.Directory("fetch", 2, 3, 0)
	sink.Flush()

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	var bus, dir map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &bus); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(lines[1]), &dir); err != nil {
		t.Fatal(err)
	}
	if bus["ev"] != "bus" || bus["name"] != "bus-rdx" || bus["proc"].(float64) != 1 {
		t.Errorf("bus event = %v", bus)
	}
	if a, ok := bus["addr"]; !ok || a.(float64) != 0 {
		t.Errorf("bus addr = %v, want explicit 0", bus["addr"])
	}
	if bus["n"].(float64) != 7 {
		t.Errorf("bus n = %v, want 7", bus["n"])
	}
	if dir["ev"] != "dir" || dir["name"] != "fetch" || dir["addr"].(float64) != 3 {
		t.Errorf("dir event = %v", dir)
	}
}

// --- nil-safety: the zero-cost-when-off contract ---

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	ctx := context.Background()
	sp, ctx2 := tr.Begin(ctx, "x")
	if ctx2 != ctx {
		t.Error("nil tracer Begin should pass the context through")
	}
	if sp.ID() != 0 {
		t.Errorf("no-op span id = %d, want 0", sp.ID())
	}
	spA, _ := tr.BeginAddr(ctx, "x", 1)
	spW, _ := tr.BeginWorker(ctx, "x", 1)
	sp.End("done", 1)
	spA.End("done", 1)
	spW.EndWorker(1, "done")
	tr.StateEnter(sp, 1, 1)
	tr.Backtrack(sp, 1)
	tr.MemoHit(sp, 1)
	tr.MemoMiss(sp, 1)
	tr.EagerReads(sp, 1, 1)
	tr.BudgetPoll(sp, 1, 1)
	tr.Stage(sp, "x")
	tr.RaceWin(sp, 0, "x")
	tr.RaceLoss(sp, 0, "x")
	tr.Bus("x", 0, 0, 0)
	tr.Directory("x", 0, 0, 0)
	tr.SAT(sp, "x", 0)

	var m *Metrics
	m.Flush(1, 1, 1, 1, 1, 1)
	m.SolveBegin()
	m.SolveEnd()
	if s := m.Snapshot(); s != (Snapshot{}) {
		t.Errorf("nil metrics snapshot = %+v, want zeros", s)
	}

	if TracerFrom(ctx) != nil || MetricsFrom(ctx) != nil || From(ctx) != nil {
		t.Error("bare context should yield nil observer handles")
	}
	if With(ctx, nil) != ctx || With(ctx, &Observer{}) != ctx {
		t.Error("With on an empty observer should pass the context through")
	}
	if NewTracer(nil) != nil {
		t.Error("NewTracer(nil) should be nil to keep the no-op fast path")
	}
}

func TestObserverContext(t *testing.T) {
	o := &Observer{Tracer: NewTracer(NewCollector()), Metrics: NewMetrics()}
	ctx := With(context.Background(), o)
	if TracerFrom(ctx) != o.Tracer {
		t.Error("TracerFrom lost the tracer")
	}
	if MetricsFrom(ctx) != o.Metrics {
		t.Error("MetricsFrom lost the metrics")
	}
}

// --- Multi ---

type countSink struct{ n int }

func (c *countSink) Emit(Event) { c.n++ }

func TestMulti(t *testing.T) {
	if Multi() != nil || Multi(nil, nil) != nil {
		t.Error("Multi with no live sinks should be nil")
	}
	one := &countSink{}
	if got := Multi(nil, one); got != Sink(one) {
		t.Error("Multi with one live sink should return it unwrapped")
	}
	two := &countSink{}
	m := Multi(one, nil, two)
	m.Emit(Event{})
	m.Emit(Event{})
	if one.n != 2 || two.n != 2 {
		t.Errorf("fan-out counts = %d, %d, want 2, 2", one.n, two.n)
	}
}

// --- Metrics ---

func TestMetricsFlushAndSnapshot(t *testing.T) {
	m := NewMetrics()
	m.SolveBegin()
	m.Flush(64, 10, 30, 5, 80, 7)
	m.Flush(36, 10, 10, 0, 20, 3) // depth went down; peak must not
	s := m.Snapshot()
	if s.States != 100 || s.MemoHits != 20 || s.MemoMisses != 40 ||
		s.EagerReads != 5 || s.Branches != 100 {
		t.Errorf("snapshot = %+v", s)
	}
	if s.Depth != 3 {
		t.Errorf("depth = %d, want last flushed 3", s.Depth)
	}
	if s.PeakDepth != 7 {
		t.Errorf("peak depth = %d, want 7", s.PeakDepth)
	}
	if got := s.MemoHitRate(); got != 20.0/60.0 {
		t.Errorf("memo hit-rate = %v, want %v", got, 20.0/60.0)
	}
	if s.Solves != 1 || s.SolvesDone != 0 {
		t.Errorf("solves = %d/%d, want 0/1", s.SolvesDone, s.Solves)
	}
	if s.SolveStates != 100 {
		t.Errorf("solve states = %d, want 100", s.SolveStates)
	}

	// A second solve rebases the per-solve state count.
	m.SolveEnd()
	m.SolveBegin()
	m.Flush(10, 0, 0, 0, 0, 1)
	s = m.Snapshot()
	if s.States != 110 || s.SolveStates != 10 {
		t.Errorf("after rebase: states=%d solve-states=%d, want 110, 10", s.States, s.SolveStates)
	}
	if s.Solves != 2 || s.SolvesDone != 1 {
		t.Errorf("solves = %d/%d, want 1/2", s.SolvesDone, s.Solves)
	}
	if (Snapshot{}).MemoHitRate() != 0 {
		t.Error("memo hit-rate with no lookups should be 0")
	}
}

// --- Progress ---

// TestProgressReport drives report directly with controlled clocks so
// the rate is deterministic.
func TestProgressReport(t *testing.T) {
	m := NewMetrics()
	m.SolveBegin()
	m.Flush(640, 30, 70, 0, 0, 9)
	t0 := time.Now()
	var buf bytes.Buffer
	p := &Progress{w: &buf, m: m, limit: 1000, prevAt: t0}
	p.report(t0.Add(2 * time.Second))
	want := "obs: states=640 rate=320/s depth=9 peak=9 memo-hit=30.0% solves=0/1 budget-left=360/1000\n"
	if got := buf.String(); got != want {
		t.Errorf("progress line:\n got %q\nwant %q", got, want)
	}

	// Second tick: rate reflects only the delta; exhausted budget clamps
	// to zero.
	buf.Reset()
	m.Flush(1360, 0, 0, 0, 0, 4)
	p.report(t0.Add(4 * time.Second))
	want = "obs: states=2000 rate=680/s depth=4 peak=9 memo-hit=30.0% solves=0/1 budget-left=0/1000\n"
	if got := buf.String(); got != want {
		t.Errorf("progress line:\n got %q\nwant %q", got, want)
	}

	// Without a limit there is no budget column.
	buf.Reset()
	p.limit = 0
	p.report(t0.Add(6 * time.Second))
	if got := buf.String(); strings.Contains(got, "budget-left") {
		t.Errorf("no-limit line still has budget column: %q", got)
	}
}

// TestProgressStartStop exercises the goroutine lifecycle: Stop is
// idempotent and prints a final line when work happened after the last
// tick.
func TestProgressStartStop(t *testing.T) {
	m := NewMetrics()
	var buf bytes.Buffer
	p := StartProgress(&buf, m, time.Hour, 0)
	m.Flush(5, 0, 0, 0, 0, 1)
	p.Stop()
	p.Stop() // must not panic or double-print
	if got := buf.String(); strings.Count(got, "\n") != 1 || !strings.Contains(got, "states=5") {
		t.Errorf("final line = %q, want exactly one line with states=5", got)
	}

	// No work at all: no final line.
	buf.Reset()
	p = StartProgress(&buf, NewMetrics(), time.Hour, 0)
	p.Stop()
	if buf.Len() != 0 {
		t.Errorf("idle Stop printed %q", buf.String())
	}
}

// --- Collector ---

func TestCollector(t *testing.T) {
	c := NewCollector()
	tr := NewTracer(c)
	ctx := context.Background()

	sp1, sctx := tr.BeginAddr(ctx, "solve", 5)
	sp2, _ := tr.Begin(sctx, "general-search")
	tr.MemoMiss(sp2, 0)
	tr.StateEnter(sp2, 0, 1)
	tr.StateEnter(sp2, 3, 2)
	tr.StateEnter(sp2, 6, 3)
	tr.EagerReads(sp2, 2, 4)
	tr.Backtrack(sp2, 6)
	tr.Backtrack(sp2, 3)
	tr.MemoHit(sp2, 3)
	sp2.End("incoherent", 3)
	sp1.End("incoherent (general-search)", 3)
	spOther, _ := tr.BeginAddr(ctx, "solve", 9)
	spOther.End("coherent (read-map)", 1)

	spans := c.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	s := spans[1]
	if s.Name != "general-search" || s.Parent != spans[0].ID {
		t.Errorf("inner span = %+v", s)
	}
	if s.States != 3 || s.Backtracks != 2 || s.MemoHits != 1 || s.MemoMisses != 1 ||
		s.EagerReads != 4 || s.PeakDepth != 6 || !s.Ended {
		t.Errorf("inner counters = %+v", s)
	}
	if s.Verdict != "incoherent" {
		t.Errorf("verdict = %q", s.Verdict)
	}

	d := s.Describe()
	for _, want := range []string{"general-search", "3 states", "2 backtracks",
		"memo hit-rate 50.0%", "4 eager reads", "peak depth 6", "-> incoherent"} {
		if !strings.Contains(d, want) {
			t.Errorf("Describe() = %q, missing %q", d, want)
		}
	}
	// Backtracks at depths 6 and 3: buckets bits.Len(6)=3 ("4-7") and
	// bits.Len(3)=2 ("2-3").
	if h := s.BacktrackHistogram(); h != "depth 2-3: 1, depth 4-7: 1" {
		t.Errorf("backtrack histogram = %q", h)
	}
	if h := (&SpanSummary{}).BacktrackHistogram(); h != "" {
		t.Errorf("empty histogram = %q", h)
	}

	for5 := c.ForAddr(5)
	if len(for5) != 1 || for5[0].Addr != 5 {
		t.Errorf("ForAddr(5) = %+v", for5)
	}
	if got := c.ForAddr(9); len(got) != 1 || got[0].Verdict != "coherent (read-map)" {
		t.Errorf("ForAddr(9) = %+v", got)
	}
	if got := c.ForAddr(42); len(got) != 0 {
		t.Errorf("ForAddr(42) = %+v, want empty", got)
	}
}

func TestDepthBuckets(t *testing.T) {
	cases := []struct{ d, want int }{
		{-3, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1 << 14, 15}, {1 << 20, 15},
	}
	for _, c := range cases {
		if got := DepthBucket(c.d); got != c.want {
			t.Errorf("DepthBucket(%d) = %d, want %d", c.d, got, c.want)
		}
	}
	labels := []struct {
		i    int
		want string
	}{{0, "0"}, {1, "1"}, {2, "2-3"}, {3, "4-7"}, {4, "8-15"}}
	for _, c := range labels {
		if got := BucketLabel(c.i); got != c.want {
			t.Errorf("BucketLabel(%d) = %q, want %q", c.i, got, c.want)
		}
	}
}

// --- CounterSet ---

type fakeStats struct{}

func (fakeStats) Counters() []StatCounter {
	return []StatCounter{{"hits", 12}, {"misses", 3}, {"wb", 0}}
}

func TestFormatCounters(t *testing.T) {
	if got := FormatCounters(fakeStats{}); got != "hits=12 misses=3 wb=0" {
		t.Errorf("FormatCounters = %q", got)
	}
}

// --- Kind names ---

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindSpanBegin:  "span_begin",
		KindSpanEnd:    "span_end",
		KindStateEnter: "state_enter",
		KindSAT:        "sat",
		Kind(200):      "unknown",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

// --- Debug endpoint ---

func TestDebugHandler(t *testing.T) {
	m := NewMetrics()
	m.Flush(7, 0, 0, 0, 0, 2)
	h := DebugHandler(m)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/vars", nil))
	if rec.Code != 200 {
		t.Fatalf("/debug/vars status = %d", rec.Code)
	}
	body := rec.Body.String()
	if !strings.Contains(body, `"memverify"`) {
		t.Errorf("/debug/vars missing memverify var: %s", body)
	}
	if !strings.Contains(body, `"states": 7`) && !strings.Contains(body, `"states":7`) {
		t.Errorf("/debug/vars missing states counter: %s", body)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if !strings.Contains(rec.Body.String(), "/debug/pprof/") {
		t.Errorf("index page = %q", rec.Body.String())
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/cmdline", nil))
	if rec.Code != 200 {
		t.Errorf("/debug/pprof/cmdline status = %d", rec.Code)
	}
}

func TestServeDebug(t *testing.T) {
	m := NewMetrics()
	srv, err := ServeDebug("127.0.0.1:0", m)
	if err != nil {
		t.Fatalf("ServeDebug: %v", err)
	}
	defer srv.Close()
	if srv.Addr == "" || strings.HasSuffix(srv.Addr, ":0") {
		t.Errorf("server addr = %q, want a bound port", srv.Addr)
	}
}
