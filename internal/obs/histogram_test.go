package obs

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// TestBucketIndexBounds checks that every bucket index round-trips
// through bucketBounds: a value must land in a bucket whose bounds
// contain it, and indices never exceed the array.
func TestBucketIndexBounds(t *testing.T) {
	cases := []int64{0, 1, 2, 15, 16, 17, 31, 32, 33, 100, 1000, 1 << 20, 1 << 40, 1 << 62, math.MaxInt64}
	for _, v := range cases {
		i := bucketIndex(v)
		if i < 0 || i >= histBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range", v, i)
		}
		lo, hi := bucketBounds(i)
		if v < lo || v > hi {
			t.Errorf("value %d in bucket %d with bounds [%d,%d]", v, i, lo, hi)
		}
	}
}

// TestBucketIndexMonotone checks ordering: a larger value never maps to
// a smaller bucket.
func TestBucketIndexMonotone(t *testing.T) {
	prev := 0
	for v := int64(0); v < 1<<16; v++ {
		i := bucketIndex(v)
		if i < prev {
			t.Fatalf("bucketIndex not monotone at %d: %d < %d", v, i, prev)
		}
		prev = i
	}
}

// TestBucketRelativeError checks the design guarantee behind quantile
// accuracy: above the exact range, bucket width stays within 2^-histSubBits
// (12.5%) of the bucket's lower bound.
func TestBucketRelativeError(t *testing.T) {
	for i := 2 * histSub; i < 400; i++ {
		lo, hi := bucketBounds(i)
		if lo == 0 {
			continue
		}
		if rel := float64(hi-lo+1) / float64(lo); rel > 1.0/float64(histSub)+1e-9 {
			t.Errorf("bucket %d [%d,%d] relative width %.4f", i, lo, hi, rel)
		}
	}
}

// TestHistogramQuantileOracle compares quantile estimates against the
// exact answer from the sorted sample on several distributions. The
// bucketing guarantees ≤12.5% relative error per sample, so the
// quantile estimate must sit within ~15% of the oracle (interpolation
// adds a little slack at bucket edges).
func TestHistogramQuantileOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dists := map[string]func() int64{
		"uniform":   func() int64 { return rng.Int63n(1_000_000) },
		"exp":       func() int64 { return int64(rng.ExpFloat64() * 50_000) },
		"lognormal": func() int64 { return int64(math.Exp(rng.NormFloat64()*1.5 + 10)) },
		"bimodal": func() int64 {
			if rng.Intn(10) == 0 {
				return 5_000_000 + rng.Int63n(100_000)
			}
			return 1_000 + rng.Int63n(1_000)
		},
	}
	for name, draw := range dists {
		h := NewHistogram()
		samples := make([]int64, 20_000)
		for i := range samples {
			v := draw()
			samples[i] = v
			h.Observe(v)
		}
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		snap := h.Snapshot()
		for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
			got := snap.Quantile(q)
			want := samples[int(q*float64(len(samples)-1))]
			if want == 0 {
				continue
			}
			if rel := math.Abs(float64(got-want)) / float64(want); rel > 0.15 {
				t.Errorf("%s p%g: got %d want %d (rel err %.3f)", name, q*100, got, want, rel)
			}
		}
		if snap.Count != int64(len(samples)) {
			t.Errorf("%s: count %d want %d", name, snap.Count, len(samples))
		}
		if snap.Min != samples[0] || snap.Max != samples[len(samples)-1] {
			t.Errorf("%s: min/max %d/%d want %d/%d", name, snap.Min, snap.Max, samples[0], samples[len(samples)-1])
		}
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines —
// meaningful under -race — and checks nothing is lost: atomic buckets
// drop no observations.
func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	const (
		goroutines = 8
		perG       = 10_000
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < perG; i++ {
				h.Observe(rng.Int63n(1 << 30))
			}
		}()
	}
	wg.Wait()
	snap := h.Snapshot()
	if snap.Count != goroutines*perG {
		t.Fatalf("count %d, want %d", snap.Count, goroutines*perG)
	}
	var bucketSum int64
	for _, c := range snap.Counts {
		bucketSum += c
	}
	if bucketSum != snap.Count {
		t.Fatalf("bucket sum %d != count %d", bucketSum, snap.Count)
	}
	if snap.Min > snap.Max || snap.Sum <= 0 {
		t.Fatalf("implausible snapshot: min=%d max=%d sum=%d", snap.Min, snap.Max, snap.Sum)
	}
}

// TestHistogramMerge checks that merging two snapshots equals observing
// both sample streams into one histogram.
func TestHistogramMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a, b, both := NewHistogram(), NewHistogram(), NewHistogram()
	for i := 0; i < 5_000; i++ {
		v := rng.Int63n(1 << 24)
		if i%2 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
		both.Observe(v)
	}
	merged := a.Snapshot()
	merged.Merge(b.Snapshot())
	want := both.Snapshot()
	if merged != want {
		t.Fatalf("merged snapshot differs from single-stream snapshot:\n merged: count=%d sum=%d min=%d max=%d\n   want: count=%d sum=%d min=%d max=%d",
			merged.Count, merged.Sum, merged.Min, merged.Max, want.Count, want.Sum, want.Min, want.Max)
	}
}

// TestHistogramNilAndEmpty pins the zero-cost-when-off contract: a nil
// histogram accepts observations, and an empty snapshot answers zero.
func TestHistogramNilAndEmpty(t *testing.T) {
	var h *Histogram
	h.Observe(42)                                // must not panic
	h.ObserveSince(time.Now().Add(-time.Second)) // must not panic
	snap := NewHistogram().Snapshot()
	if q := snap.Quantile(0.99); q != 0 {
		t.Errorf("empty quantile = %d", q)
	}
	if m := snap.Mean(); m != 0 {
		t.Errorf("empty mean = %v", m)
	}
}

// TestHistogramNegativeClamped checks negative observations clamp to
// zero rather than corrupting bucket indexing.
func TestHistogramNegativeClamped(t *testing.T) {
	h := NewHistogram()
	h.Observe(-5)
	snap := h.Snapshot()
	if snap.Count != 1 || snap.Counts[0] != 1 || snap.Min != 0 {
		t.Errorf("negative observation not clamped: %+v", snap.Counts[:2])
	}
}

// TestCumulativeAtMost checks the exposition helper against a brute
// count.
func TestCumulativeAtMost(t *testing.T) {
	h := NewHistogram()
	vals := []int64{1, 5, 10, 100, 1000, 100_000, 1 << 30}
	for _, v := range vals {
		h.Observe(v)
	}
	snap := h.Snapshot()
	for _, bound := range []int64{0, 1, 9, 10, 999, 1_000_000, math.MaxInt64} {
		var want int64
		for _, v := range vals {
			// CumulativeAtMost counts only buckets wholly <= bound, so
			// compare against the sample's bucket upper edge.
			_, hi := bucketBounds(bucketIndex(v))
			if hi <= bound {
				want++
			}
		}
		if got := snap.CumulativeAtMost(bound); got != want {
			t.Errorf("CumulativeAtMost(%d) = %d, want %d", bound, got, want)
		}
	}
}
