// Package obs is the unified observability layer for every solver and
// simulator in this repository. It defines a structured event model
// (spans plus point events with monotonic timestamps), a Sink interface
// events flow into, and three stock consumers:
//
//   - a JSONL trace writer (NewJSONL) behind the vmcheck -trace flag;
//   - a sampling progress reporter (StartProgress) behind -progress,
//     fed by lock-free atomic Metrics counters;
//   - an expvar + net/http/pprof debug endpoint (ServeDebug) behind
//     -debug-addr on vmcheck and cmd/experiments.
//
// Emitters reach the layer through a context: entry points call
// TracerFrom / MetricsFrom once per solve and keep the (possibly nil)
// handles in their searcher state. Every Tracer and Span method is
// nil-safe, so the disabled path costs one pointer test per event site
// and zero allocations — the hot DFS loops stay within the <5%
// regression budget measured by BenchmarkObsOverhead. Metrics are
// updated in batches at the searcher's existing every-64-states budget
// poll, never per state.
//
// The package deliberately imports only the standard library: solver,
// coherence, consistency, sat, mesi and directory all emit into it
// without dependency cycles.
package obs

import "context"

// Kind discriminates structured event types.
type Kind uint8

const (
	// KindSpanBegin / KindSpanEnd bracket a unit of work (a per-address
	// solve, one search algorithm, a pool worker, a race). Spans nest:
	// a begin event carries the id of its enclosing span as Parent.
	KindSpanBegin Kind = iota
	KindSpanEnd
	// KindStateEnter is a DFS search visiting a new state.
	KindStateEnter
	// KindBacktrack is a DFS search abandoning a state with no candidate
	// left.
	KindBacktrack
	// KindMemoHit / KindMemoMiss are failed-state cache lookups.
	KindMemoHit
	KindMemoMiss
	// KindEagerReads is a batch of reads scheduled by the eager rule
	// (N holds the batch size).
	KindEagerReads
	// KindBudgetPoll is the searcher's periodic budget/cancellation
	// check (every 64 states; States holds the running count).
	KindBudgetPoll
	// KindStage is a portfolio stage transition (Name: "specialist",
	// "probe", "race", ...).
	KindStage
	// KindRaceWin / KindRaceLoss report portfolio race outcomes
	// (N holds the candidate index; Detail the loser's error).
	KindRaceWin
	KindRaceLoss
	// KindWorkerStart / KindWorkerEnd bracket a worker goroutine on the
	// shared pool or the parallel verifier (Proc holds the worker id).
	KindWorkerStart
	KindWorkerEnd
	// KindBus is a snooping-bus transaction in the MESI simulator
	// (Name: "bus-rd", "bus-rdx", "upgr", "inval", "wb").
	KindBus
	// KindDirectory is a directory-protocol action (Name: "fetch",
	// "inval", "wb").
	KindDirectory
	// KindSAT is a SAT-solver milestone (Name: "restart"; States holds
	// the conflict count).
	KindSAT
	// KindWorkerPanic is a panic recovered inside a pool worker or race
	// candidate (Name labels the worker, Detail the panic value). The
	// surrounding portfolio keeps running; the event is the audit trail.
	KindWorkerPanic
	// KindCheckpoint is a search-state snapshot taken for crash-safe
	// resume (States holds the state count at the snapshot, N the number
	// of memoized entries captured).
	KindCheckpoint
	// KindDegrade is a resilience-ladder step-down: the exact search
	// exhausted its budget and a weaker (but cheaper) rung takes over
	// (Name holds the rung stepped down to, Detail the trigger).
	KindDegrade
)

var kindNames = [...]string{
	KindSpanBegin:  "span_begin",
	KindSpanEnd:    "span_end",
	KindStateEnter: "state_enter",
	KindBacktrack:  "backtrack",
	KindMemoHit:    "memo_hit",
	KindMemoMiss:   "memo_miss",
	KindEagerReads: "eager_reads",
	KindBudgetPoll: "budget_poll",
	KindStage:      "stage",
	KindRaceWin:    "race_win",
	KindRaceLoss:   "race_loss",
	KindWorkerStart: "worker_start",
	KindWorkerEnd:   "worker_end",
	KindBus:         "bus",
	KindDirectory:   "dir",
	KindSAT:         "sat",
	KindWorkerPanic: "worker_panic",
	KindCheckpoint:  "checkpoint",
	KindDegrade:     "degrade",
}

// String names the kind as it appears in the JSONL "ev" field.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Event is one structured observation. Fields not meaningful for a kind
// are zero and omitted from the JSONL encoding.
type Event struct {
	// TS is nanoseconds since the tracer started (monotonic clock).
	TS int64
	// Kind says what happened.
	Kind Kind
	// Span is the id of the span the event belongs to (or, for
	// KindSpanBegin/KindSpanEnd, the span itself). 0 means no span.
	Span uint64
	// Parent is the enclosing span id on KindSpanBegin events.
	Parent uint64
	// Name labels spans, stages, and protocol transactions.
	Name string
	// Addr is the memory address involved; HasAddr reports validity
	// (address 0 is legitimate).
	Addr    int64
	HasAddr bool
	// Depth is the search depth at the event.
	Depth int
	// States is a running state (or conflict) counter.
	States int64
	// N is a generic count: eager-read batch size, race candidate
	// index, bus value.
	N int64
	// Proc is a worker / processor id; -1 when not applicable.
	Proc int
	// Detail carries free-text context (verdicts, error strings).
	Detail string
	// Req is the request id of the serving request (memverifyd stamps
	// one per HTTP request); set on KindSpanBegin events so a whole
	// request's span tree can be stitched out of a shared JSONL trace.
	Req string
}

// Sink consumes events. Implementations must be safe for concurrent use:
// parallel workers and portfolio racers emit from multiple goroutines.
type Sink interface {
	Emit(e Event)
}

// multi fans one event out to several sinks.
type multi []Sink

func (m multi) Emit(e Event) {
	for _, s := range m {
		s.Emit(e)
	}
}

// Multi combines sinks into one; nil sinks are dropped. A single
// remaining sink is returned unwrapped.
func Multi(sinks ...Sink) Sink {
	var kept multi
	for _, s := range sinks {
		if s != nil {
			kept = append(kept, s)
		}
	}
	switch len(kept) {
	case 0:
		return nil
	case 1:
		return kept[0]
	}
	return kept
}

// Observer bundles the per-run observability handles carried through a
// context: an event tracer and a set of live metrics counters. Either
// field may be nil.
type Observer struct {
	Tracer  *Tracer
	Metrics *Metrics
}

type observerKey struct{}
type spanKey struct{}
type requestIDKey struct{}

// With attaches an observer to the context. Solver entry points pick it
// up with TracerFrom / MetricsFrom.
func With(ctx context.Context, o *Observer) context.Context {
	if o == nil || (o.Tracer == nil && o.Metrics == nil) {
		return ctx
	}
	return context.WithValue(ctx, observerKey{}, o)
}

// From returns the observer attached to ctx, or nil.
func From(ctx context.Context) *Observer {
	o, _ := ctx.Value(observerKey{}).(*Observer)
	return o
}

// TracerFrom returns the context's tracer, or nil. A nil tracer is a
// valid no-op receiver for every Tracer method.
func TracerFrom(ctx context.Context) *Tracer {
	if o := From(ctx); o != nil {
		return o.Tracer
	}
	return nil
}

// MetricsFrom returns the context's metrics, or nil. A nil *Metrics is
// a valid no-op receiver for every Metrics method.
func MetricsFrom(ctx context.Context) *Metrics {
	if o := From(ctx); o != nil {
		return o.Metrics
	}
	return nil
}

// spanFrom returns the innermost span id on ctx (0 at the root).
func spanFrom(ctx context.Context) uint64 {
	id, _ := ctx.Value(spanKey{}).(uint64)
	return id
}

// WithRequestID attaches a request id to the context. Every span begun
// under the returned context carries the id in its begin event, so one
// request's spans can be filtered out of a trace shared by concurrent
// requests. An empty id returns ctx unchanged.
func WithRequestID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestIDFrom returns the request id on ctx, or "".
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}
