package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Log-linear bucket layout shared by Histogram and HistSnapshot: 8
// sub-buckets per power of two, so every bucket is at most 12.5% wide
// relative to its value — quantile estimates carry the same bound.
// Values 0..15 get exact buckets. 512 buckets cover the whole int64
// range (an observation of 2^62 ns lands in bucket 487), so indexing
// never needs a range check beyond negative clamping.
const (
	histSubBits = 3
	histSub     = 1 << histSubBits // 8 sub-buckets per octave
	histBuckets = 512
)

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v int64) int {
	u := uint64(v)
	if u < 2*histSub {
		return int(u) // exact buckets for 0..15
	}
	shift := bits.Len64(u) - histSubBits - 1
	return shift*histSub + int(u>>shift)
}

// bucketBounds returns the inclusive value range covered by bucket i.
func bucketBounds(i int) (lo, hi int64) {
	if i < 2*histSub {
		return int64(i), int64(i)
	}
	shift := i/histSub - 1
	sub := int64(i - shift*histSub) // in [histSub, 2*histSub)
	lo = sub << shift
	hi = lo + (1 << shift) - 1
	return lo, hi
}

// Histogram is a lock-free log-bucketed histogram for latency (or any
// non-negative int64) samples: writers do three atomic adds and at most
// two CAS loops per observation, there is no per-sample storage, and
// readers take mergeable snapshots at any time. The bucket layout is
// log-linear (8 sub-buckets per power of two), so quantile estimates
// are within 12.5% of the true sample quantile; the concurrent-writer
// and oracle-accuracy tests pin both properties.
//
// A nil *Histogram is a valid no-op receiver for every method, matching
// the package's zero-cost-when-off contract.
type Histogram struct {
	counts [histBuckets]atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64
	min    atomic.Int64 // valid only when count > 0
	max    atomic.Int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(int64(1)<<62 - 1)
	return h
}

// Observe records one sample. Negative samples clamp to 0. Nil-safe.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.counts[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// ObserveSince records the nanoseconds elapsed since start. Nil-safe.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(int64(time.Since(start)))
}

// HistSnapshot is a point-in-time copy of a histogram. Snapshots from
// different histograms (or different times) merge by addition, which is
// what lets per-shard or per-run histograms roll up into one.
type HistSnapshot struct {
	Counts [histBuckets]int64
	Count  int64
	Sum    int64
	Min    int64
	Max    int64
}

// Snapshot copies the current counters. Each bucket is read atomically;
// the set as a whole is not a transaction, which is fine for reporting.
// Nil-safe (returns the zero snapshot).
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	if h == nil {
		return s
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	if s.Count > 0 {
		s.Min = h.min.Load()
		s.Max = h.max.Load()
	}
	return s
}

// Merge adds o's samples into s.
func (s *HistSnapshot) Merge(o HistSnapshot) {
	for i := range s.Counts {
		s.Counts[i] += o.Counts[i]
	}
	if o.Count > 0 {
		if s.Count == 0 || o.Min < s.Min {
			s.Min = o.Min
		}
		if o.Max > s.Max {
			s.Max = o.Max
		}
	}
	s.Count += o.Count
	s.Sum += o.Sum
}

// Quantile estimates the q-th sample quantile (q in [0,1]) by linear
// interpolation inside the bucket where the cumulative count crosses
// the target rank. Returns 0 on an empty snapshot; q outside [0,1]
// clamps.
func (s HistSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count-1)
	var cum int64
	for i, n := range s.Counts {
		if n == 0 {
			continue
		}
		if float64(cum+n) > rank {
			lo, hi := bucketBounds(i)
			if lo < s.Min {
				lo = s.Min
			}
			if hi > s.Max {
				hi = s.Max
			}
			if hi <= lo {
				return lo
			}
			frac := (rank - float64(cum)) / float64(n)
			return lo + int64(frac*float64(hi-lo))
		}
		cum += n
	}
	return s.Max
}

// Mean returns the arithmetic mean of the samples (0 when empty).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// CumulativeAtMost returns how many samples fell in buckets whose whole
// range is <= v — the cumulative count the Prometheus exposition needs
// for its le bounds. The straddling bucket is excluded, so the result
// is a lower bound no more than one bucket width (12.5%) away.
func (s HistSnapshot) CumulativeAtMost(v int64) int64 {
	var cum int64
	for i, n := range s.Counts {
		if n == 0 {
			continue
		}
		if _, hi := bucketBounds(i); hi > v {
			break
		}
		cum += n
	}
	return cum
}
