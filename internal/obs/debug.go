package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// DebugHandler returns the handler behind the -debug-addr flag: expvar
// at /debug/vars (including the published Metrics) and the standard
// pprof profiles at /debug/pprof/. Split from ServeDebug so tests can
// exercise it without opening a socket.
func DebugHandler(m *Metrics) http.Handler {
	Publish(m)
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "memverify debug endpoint: /debug/vars, /debug/pprof/")
	})
	return mux
}

// ServeDebug starts the debug endpoint on addr (e.g. "localhost:6060")
// in a background goroutine and returns the server for shutdown. The
// returned server's Addr field holds the bound address, so addr may use
// port 0.
func ServeDebug(addr string, m *Metrics) (*http.Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Addr: ln.Addr().String(), Handler: DebugHandler(m)}
	go srv.Serve(ln)
	return srv, nil
}
