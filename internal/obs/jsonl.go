package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
)

// jsonEvent is the wire shape of one JSONL line. Pointer fields encode
// "present but possibly zero" (worker 0, address 0, depth 0 are all
// meaningful); plain omitempty fields treat zero as absent.
type jsonEvent struct {
	TS     int64   `json:"ts"`
	Ev     string  `json:"ev"`
	Span   uint64  `json:"span,omitempty"`
	Parent *uint64 `json:"parent,omitempty"`
	Name   string  `json:"name,omitempty"`
	Addr   *int64  `json:"addr,omitempty"`
	Depth  *int    `json:"depth,omitempty"`
	States *int64  `json:"states,omitempty"`
	N      *int64  `json:"n,omitempty"`
	Proc   *int    `json:"proc,omitempty"`
	Detail string  `json:"detail,omitempty"`
	Req    string  `json:"req,omitempty"`
}

// depthKinds are the kinds whose Depth field is meaningful even at 0.
func depthMeaningful(k Kind) bool {
	switch k {
	case KindStateEnter, KindBacktrack, KindMemoHit, KindMemoMiss,
		KindEagerReads, KindBudgetPoll:
		return true
	}
	return false
}

// procMeaningful reports whether the Proc field should be encoded.
func procMeaningful(k Kind) bool {
	switch k {
	case KindSpanBegin, KindWorkerStart, KindWorkerEnd, KindBus, KindDirectory:
		return true
	}
	return false
}

// JSONL is a Sink writing one JSON object per line, buffered, safe for
// concurrent emitters. Close (or Flush) must be called to drain the
// buffer.
type JSONL struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	enc *json.Encoder
	err error
}

// NewJSONL wraps w in a buffered JSONL sink.
func NewJSONL(w io.Writer) *JSONL {
	bw := bufio.NewWriter(w)
	return &JSONL{bw: bw, enc: json.NewEncoder(bw)}
}

// Emit writes one event as a JSON line. Write errors are sticky and
// reported by Flush/Close.
func (j *JSONL) Emit(e Event) {
	je := jsonEvent{
		TS:     e.TS,
		Ev:     e.Kind.String(),
		Span:   e.Span,
		Name:   e.Name,
		Detail: e.Detail,
		Req:    e.Req,
	}
	if e.Kind == KindSpanBegin && e.Parent != 0 {
		je.Parent = &e.Parent
	}
	if e.HasAddr {
		je.Addr = &e.Addr
	}
	if e.Depth != 0 || depthMeaningful(e.Kind) {
		je.Depth = &e.Depth
	}
	if e.States != 0 {
		je.States = &e.States
	}
	if e.N != 0 || e.Kind == KindRaceWin || e.Kind == KindRaceLoss {
		je.N = &e.N
	}
	if e.Proc >= 0 && procMeaningful(e.Kind) {
		je.Proc = &e.Proc
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	j.err = j.enc.Encode(je)
}

// Flush drains the buffer and returns the first write error, if any.
func (j *JSONL) Flush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	j.err = j.bw.Flush()
	return j.err
}

// Close is Flush (the underlying writer's lifetime belongs to the
// caller).
func (j *JSONL) Close() error { return j.Flush() }
