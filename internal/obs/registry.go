package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry is a set of named counters, gauges, and histograms — the
// data model behind the Prometheus text exposition of PromHandler. A
// metric is identified by its name plus an ordered label set; calling a
// constructor twice with the same identity returns the same instrument,
// so packages can look instruments up by name instead of threading
// pointers. All methods are safe for concurrent use.
type Registry struct {
	mu      sync.Mutex
	byID    map[string]*instrument
	ordered []*instrument
	help    map[string]string
}

// instrumentKind discriminates the exposition type.
type instrumentKind uint8

const (
	kindCounter instrumentKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

// Label is one name/value pair attached to an instrument.
type Label struct {
	Key, Value string
}

// instrument is one registered time series.
type instrument struct {
	name   string
	labels []Label
	kind   instrumentKind
	val    atomic.Int64  // counter, gauge
	fn     func() float64 // gauge func
	hist   *Histogram
}

// Counter is a monotonically increasing register.
type Counter struct{ i *instrument }

// Add increases the counter; Inc by one.
func (c Counter) Add(n int64) { c.i.val.Add(n) }
func (c Counter) Inc()        { c.i.val.Add(1) }

// Value reads the current count.
func (c Counter) Value() int64 { return c.i.val.Load() }

// Gauge is a settable instantaneous value.
type Gauge struct{ i *instrument }

// Set stores the gauge value; Add adjusts it by n (n may be negative).
func (g Gauge) Set(v int64)   { g.i.val.Store(v) }
func (g Gauge) Add(n int64)   { g.i.val.Add(n) }
func (g Gauge) Value() int64  { return g.i.val.Load() }

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byID: make(map[string]*instrument), help: make(map[string]string)}
}

// metricID builds the identity string "name{k=v,...}".
func metricID(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// register returns the instrument for (name, labels), creating it with
// kind when absent. A name registered under two different kinds panics:
// that is a programming error, not a runtime condition.
func (r *Registry) register(name string, kind instrumentKind, labels []Label) *instrument {
	id := metricID(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if in, ok := r.byID[id]; ok {
		if in.kind != kind {
			panic(fmt.Sprintf("obs: metric %s re-registered as a different kind", id))
		}
		return in
	}
	in := &instrument{name: name, labels: append([]Label(nil), labels...), kind: kind}
	if kind == kindHistogram {
		in.hist = NewHistogram()
	}
	r.byID[id] = in
	r.ordered = append(r.ordered, in)
	return in
}

// Counter returns the counter named name with the given labels,
// creating it on first use.
func (r *Registry) Counter(name string, labels ...Label) Counter {
	return Counter{r.register(name, kindCounter, labels)}
}

// Gauge returns the settable gauge named name.
func (r *Registry) Gauge(name string, labels ...Label) Gauge {
	return Gauge{r.register(name, kindGauge, labels)}
}

// GaugeFunc registers a gauge whose value is sampled by fn at
// exposition time — the natural shape for live values the server
// already owns (queue length, in-flight count). Re-registering the same
// identity replaces the function.
func (r *Registry) GaugeFunc(name string, fn func() float64, labels ...Label) {
	in := r.register(name, kindGaugeFunc, labels)
	r.mu.Lock()
	in.fn = fn
	r.mu.Unlock()
}

// Histogram returns the histogram named name, creating it on first
// use. Registry histograms record durations in nanoseconds; the
// Prometheus exposition converts to seconds (name them *_seconds).
func (r *Registry) Histogram(name string, labels ...Label) *Histogram {
	return r.register(name, kindHistogram, labels).hist
}

// SetHelp attaches a HELP line to every series of name.
func (r *Registry) SetHelp(name, help string) {
	r.mu.Lock()
	r.help[name] = help
	r.mu.Unlock()
}

// series is one fully-evaluated time series: identity plus the value
// sampled at gather time.
type series struct {
	labels []Label
	value  float64      // counter, gauge, gauge func
	hist   HistSnapshot // histogram
}

// family groups the series sharing one metric name for exposition.
type family struct {
	name   string
	kind   instrumentKind
	help   string
	series []series
}

// gather evaluates every registered instrument — counters and gauges
// read, gauge functions sampled, histograms snapshotted — and returns
// the result grouped by name, families and series both sorted for
// deterministic exposition. Sampling happens under the registry lock,
// so gauge functions must not call back into the registry.
func (r *Registry) gather() []family {
	r.mu.Lock()
	defer r.mu.Unlock()
	byName := make(map[string]*family)
	var names []string
	for _, in := range r.ordered {
		f, ok := byName[in.name]
		if !ok {
			f = &family{name: in.name, kind: in.kind, help: r.help[in.name]}
			byName[in.name] = f
			names = append(names, in.name)
		}
		s := series{labels: in.labels}
		switch in.kind {
		case kindCounter, kindGauge:
			s.value = float64(in.val.Load())
		case kindGaugeFunc:
			if in.fn != nil {
				s.value = in.fn()
			}
		case kindHistogram:
			s.hist = in.hist.Snapshot()
		}
		f.series = append(f.series, s)
	}
	sort.Strings(names)
	out := make([]family, 0, len(names))
	for _, n := range names {
		f := byName[n]
		sort.Slice(f.series, func(i, j int) bool {
			return metricID(f.name, f.series[i].labels) < metricID(f.name, f.series[j].labels)
		})
		out = append(out, *f)
	}
	return out
}
