package obs

import (
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// TestRegistryIdentity checks the lookup-by-name contract: the same
// (name, labels) yields the same instrument, different labels a
// different one, and counters accumulate across lookups.
func TestRegistryIdentity(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("reqs", Label{"stage", "parse"})
	b := r.Counter("reqs", Label{"stage", "parse"})
	c := r.Counter("reqs", Label{"stage", "solve"})
	a.Add(2)
	b.Inc()
	c.Inc()
	if a.Value() != 3 {
		t.Errorf("same-identity counters not shared: %d", a.Value())
	}
	if c.Value() != 1 {
		t.Errorf("distinct-label counter shared: %d", c.Value())
	}
	if h1, h2 := r.Histogram("lat"), r.Histogram("lat"); h1 != h2 {
		t.Errorf("same-identity histograms not shared")
	}
}

// TestRegistryKindMismatchPanics pins that re-registering a name as a
// different kind is a programming error, not a silent aliasing bug.
func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on kind mismatch")
		}
	}()
	r.Gauge("x")
}

// TestGaugeFuncSampledAtGather checks that a gauge function is read at
// exposition time, not registration time.
func TestGaugeFuncSampledAtGather(t *testing.T) {
	r := NewRegistry()
	v := 1.0
	r.GaugeFunc("depth", func() float64 { return v })
	v = 42
	out := promText(t, r)
	if !strings.Contains(out, "depth 42\n") {
		t.Errorf("gauge func not sampled at gather:\n%s", out)
	}
}

// promText renders a registry through the real HTTP handler.
func promText(t *testing.T, r *Registry) string {
	t.Helper()
	rec := httptest.NewRecorder()
	PromHandler(r).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type %q", ct)
	}
	return rec.Body.String()
}

// Line shapes of the text exposition format, version 0.0.4.
var (
	promCommentRe = regexp.MustCompile(`^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+$`)
	promSampleRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? (NaN|[+-]?Inf|[-+0-9.eE]+)$`)
)

// TestPromExpositionValid builds a registry exercising every instrument
// kind (labels, escaping, histograms) and validates every exposition
// line against the format grammar — the test the ISSUE pins: "parse
// every line".
func TestPromExpositionValid(t *testing.T) {
	r := NewRegistry()
	r.SetHelp("reqs_total", "total requests")
	r.Counter("reqs_total").Add(7)
	r.Gauge("queue_depth").Set(3)
	r.GaugeFunc("inflight", func() float64 { return 2.5 })
	r.Counter("weird", Label{"path", `a\b"c` + "\n"}).Inc()
	h := r.Histogram("lat_seconds", Label{"stage", "solve"})
	for _, v := range []int64{500, 1_500, 2_000_000, 30_000_000_000} {
		h.Observe(v)
	}
	out := promText(t, r)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) < 10 {
		t.Fatalf("suspiciously short exposition:\n%s", out)
	}
	for _, ln := range lines {
		if ln == "" {
			t.Errorf("blank line in exposition")
			continue
		}
		if strings.HasPrefix(ln, "#") {
			if !promCommentRe.MatchString(ln) {
				t.Errorf("malformed comment: %q", ln)
			}
			continue
		}
		if !promSampleRe.MatchString(ln) {
			t.Errorf("malformed sample line: %q", ln)
		}
	}
	for _, want := range []string{"reqs_total 7\n", "# HELP reqs_total total requests\n",
		"# TYPE lat_seconds histogram\n", `lat_seconds_count{stage="solve"} 4` + "\n"} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestPromHistogramCumulative checks the le buckets are cumulative,
// monotone, end at the sample count, and that bounds are in seconds.
func TestPromHistogramCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds")
	// One sample per decade from 1µs to 10s, in ns.
	for _, v := range []int64{1_000, 10_000, 100_000, 1_000_000, 10_000_000, 100_000_000, 1_000_000_000, 10_000_000_000} {
		h.Observe(v)
	}
	out := promText(t, r)
	var prevCum int64 = -1
	var prevBound float64
	var bucketLines int
	for _, ln := range strings.Split(out, "\n") {
		if !strings.HasPrefix(ln, "lat_seconds_bucket{le=") {
			continue
		}
		bucketLines++
		parts := strings.SplitN(ln, " ", 2)
		cum, err := strconv.ParseInt(parts[1], 10, 64)
		if err != nil {
			t.Fatalf("bad bucket count in %q: %v", ln, err)
		}
		if cum < prevCum {
			t.Errorf("non-cumulative buckets at %q (%d < %d)", ln, cum, prevCum)
		}
		prevCum = cum
		le := strings.TrimSuffix(strings.TrimPrefix(parts[0], `lat_seconds_bucket{le="`), `"}`)
		if le == "+Inf" {
			if cum != 8 {
				t.Errorf("+Inf bucket %d, want 8", cum)
			}
			continue
		}
		bound, err := strconv.ParseFloat(le, 64)
		if err != nil || bound <= prevBound {
			t.Errorf("bad or non-increasing le %q after %g", le, prevBound)
		}
		prevBound = bound
	}
	if bucketLines == 0 {
		t.Fatalf("no bucket lines:\n%s", out)
	}
	if prevBound < 30 || prevBound > 40 {
		t.Errorf("largest finite le = %gs, want ~34s (ns→s conversion)", prevBound)
	}
	if !strings.Contains(out, "lat_seconds_count 8\n") {
		t.Errorf("missing _count:\n%s", out)
	}
}
