package obs

import (
	"context"
	"sync/atomic"
	"time"
)

// Tracer stamps events with monotonic timestamps and span ids and hands
// them to its sink. The zero-cost contract: every method on a nil
// *Tracer returns immediately, so emitters hold one possibly-nil pointer
// and pay a single comparison per event site when tracing is off.
type Tracer struct {
	sink  Sink
	start time.Time
	seq   atomic.Uint64
}

// NewTracer wraps a sink. A nil sink yields a nil tracer, keeping the
// no-op fast path.
func NewTracer(sink Sink) *Tracer {
	if sink == nil {
		return nil
	}
	return &Tracer{sink: sink, start: time.Now()}
}

// emit stamps and forwards one event.
func (t *Tracer) emit(e Event) {
	e.TS = int64(time.Since(t.start))
	t.sink.Emit(e)
}

// Span is a handle to an open span. The zero Span (from a nil tracer)
// is a valid no-op.
type Span struct {
	t  *Tracer
	id uint64
}

// ID returns the span id (0 for the no-op span).
func (s Span) ID() uint64 { return s.id }

// Begin opens a span named name, parented to the innermost span on ctx,
// and returns the span plus a derived context carrying it. On a nil
// tracer both returns are pass-throughs and nothing is allocated.
func (t *Tracer) Begin(ctx context.Context, name string) (Span, context.Context) {
	return t.begin(ctx, name, 0, false, -1)
}

// BeginAddr is Begin for per-address work; the span begin event carries
// the address.
func (t *Tracer) BeginAddr(ctx context.Context, name string, addr int64) (Span, context.Context) {
	return t.begin(ctx, name, addr, true, -1)
}

// BeginWorker is Begin for worker goroutines; the span events carry the
// worker id.
func (t *Tracer) BeginWorker(ctx context.Context, name string, worker int) (Span, context.Context) {
	return t.begin(ctx, name, 0, false, worker)
}

func (t *Tracer) begin(ctx context.Context, name string, addr int64, hasAddr bool, proc int) (Span, context.Context) {
	if t == nil {
		return Span{}, ctx
	}
	id := t.seq.Add(1)
	t.emit(Event{
		Kind:    KindSpanBegin,
		Span:    id,
		Parent:  spanFrom(ctx),
		Name:    name,
		Addr:    addr,
		HasAddr: hasAddr,
		Proc:    proc,
		Req:     RequestIDFrom(ctx),
	})
	if proc >= 0 {
		t.emit(Event{Kind: KindWorkerStart, Span: id, Name: name, Proc: proc})
	}
	return Span{t: t, id: id}, context.WithValue(ctx, spanKey{}, id)
}

// End closes the span with a verdict detail and a final state count.
func (s Span) End(detail string, states int64) {
	if s.t == nil {
		return
	}
	s.t.emit(Event{Kind: KindSpanEnd, Span: s.id, Detail: detail, States: states})
}

// EndWorker closes a worker span, emitting the worker-finish event
// first.
func (s Span) EndWorker(worker int, detail string) {
	if s.t == nil {
		return
	}
	s.t.emit(Event{Kind: KindWorkerEnd, Span: s.id, Proc: worker, Detail: detail})
	s.t.emit(Event{Kind: KindSpanEnd, Span: s.id, Detail: detail})
}

// StateEnter records a DFS search visiting a new state.
func (t *Tracer) StateEnter(sp Span, depth int, states int64) {
	if t == nil {
		return
	}
	t.emit(Event{Kind: KindStateEnter, Span: sp.id, Depth: depth, States: states})
}

// Backtrack records a DFS search abandoning a state.
func (t *Tracer) Backtrack(sp Span, depth int) {
	if t == nil {
		return
	}
	t.emit(Event{Kind: KindBacktrack, Span: sp.id, Depth: depth})
}

// MemoHit records a failed-state cache hit.
func (t *Tracer) MemoHit(sp Span, depth int) {
	if t == nil {
		return
	}
	t.emit(Event{Kind: KindMemoHit, Span: sp.id, Depth: depth})
}

// MemoMiss records a failed-state cache miss.
func (t *Tracer) MemoMiss(sp Span, depth int) {
	if t == nil {
		return
	}
	t.emit(Event{Kind: KindMemoMiss, Span: sp.id, Depth: depth})
}

// EagerReads records a batch of n eagerly scheduled reads.
func (t *Tracer) EagerReads(sp Span, depth, n int) {
	if t == nil || n == 0 {
		return
	}
	t.emit(Event{Kind: KindEagerReads, Span: sp.id, Depth: depth, N: int64(n)})
}

// BudgetPoll records the periodic budget/cancellation check.
func (t *Tracer) BudgetPoll(sp Span, states int64, depth int) {
	if t == nil {
		return
	}
	t.emit(Event{Kind: KindBudgetPoll, Span: sp.id, States: states, Depth: depth})
}

// Stage records a portfolio stage transition.
func (t *Tracer) Stage(sp Span, name string) {
	if t == nil {
		return
	}
	t.emit(Event{Kind: KindStage, Span: sp.id, Name: name})
}

// RaceWin records candidate idx winning a portfolio race.
func (t *Tracer) RaceWin(sp Span, idx int, detail string) {
	if t == nil {
		return
	}
	t.emit(Event{Kind: KindRaceWin, Span: sp.id, N: int64(idx), Detail: detail})
}

// RaceLoss records candidate idx losing a portfolio race.
func (t *Tracer) RaceLoss(sp Span, idx int, detail string) {
	if t == nil {
		return
	}
	t.emit(Event{Kind: KindRaceLoss, Span: sp.id, N: int64(idx), Detail: detail})
}

// Bus records a MESI snooping-bus transaction.
func (t *Tracer) Bus(name string, cpu int, addr int64, value int64) {
	if t == nil {
		return
	}
	t.emit(Event{Kind: KindBus, Name: name, Proc: cpu, Addr: addr, HasAddr: true, N: value})
}

// Directory records a directory-protocol action.
func (t *Tracer) Directory(name string, node int, addr int64, value int64) {
	if t == nil {
		return
	}
	t.emit(Event{Kind: KindDirectory, Name: name, Proc: node, Addr: addr, HasAddr: true, N: value})
}

// SAT records a SAT-solver milestone.
func (t *Tracer) SAT(sp Span, name string, conflicts int64) {
	if t == nil {
		return
	}
	t.emit(Event{Kind: KindSAT, Span: sp.id, Name: name, States: conflicts})
}

// WorkerPanic records a panic recovered inside a pool worker or race
// candidate; name labels the worker, detail carries the panic value.
func (t *Tracer) WorkerPanic(sp Span, name, detail string) {
	if t == nil {
		return
	}
	t.emit(Event{Kind: KindWorkerPanic, Span: sp.id, Name: name, Detail: detail})
}

// Checkpoint records a search-state snapshot: the state count at the
// snapshot and the number of memo entries captured.
func (t *Tracer) Checkpoint(sp Span, states int64, memoEntries int) {
	if t == nil {
		return
	}
	t.emit(Event{Kind: KindCheckpoint, Span: sp.id, States: states, N: int64(memoEntries)})
}

// Degrade records a resilience-ladder step-down to the named rung;
// detail carries what exhausted the stronger rung.
func (t *Tracer) Degrade(sp Span, rung, detail string) {
	if t == nil {
		return
	}
	t.emit(Event{Kind: KindDegrade, Span: sp.id, Name: rung, Detail: detail})
}
