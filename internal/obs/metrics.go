package obs

import (
	"expvar"
	"sync"
	"sync/atomic"
)

// Metrics is a set of live, lock-free counters shared by every solver in
// a run. Searchers accumulate into their private solver.Stats as before
// and flush deltas here at their every-64-states budget poll, so the
// per-state hot path never touches an atomic. Consumers (the progress
// reporter, the expvar endpoint) sample whenever they like.
//
// A nil *Metrics is a valid no-op receiver for every method.
type Metrics struct {
	states     atomic.Int64
	memoHits   atomic.Int64
	memoMisses atomic.Int64
	eagerReads atomic.Int64
	branches   atomic.Int64
	depth      atomic.Int64 // depth at the most recent flush
	peakDepth  atomic.Int64
	solves     atomic.Int64 // solves started
	solvesDone atomic.Int64 // solves finished
	solveBase  atomic.Int64 // states at the most recent SolveBegin
}

// NewMetrics returns a zeroed counter set.
func NewMetrics() *Metrics { return &Metrics{} }

// Flush adds a batch of counter deltas and records the current search
// depth. Nil-safe.
func (m *Metrics) Flush(states, memoHits, memoMisses, eagerReads, branches int64, depth int) {
	if m == nil {
		return
	}
	m.states.Add(states)
	m.memoHits.Add(memoHits)
	m.memoMisses.Add(memoMisses)
	m.eagerReads.Add(eagerReads)
	m.branches.Add(branches)
	m.depth.Store(int64(depth))
	for {
		peak := m.peakDepth.Load()
		if int64(depth) <= peak || m.peakDepth.CompareAndSwap(peak, int64(depth)) {
			return
		}
	}
}

// SolveBegin marks the start of one per-address (or whole-execution)
// solve. Nil-safe.
func (m *Metrics) SolveBegin() {
	if m == nil {
		return
	}
	m.solves.Add(1)
	m.solveBase.Store(m.states.Load())
}

// SolveEnd marks the end of one solve. Nil-safe.
func (m *Metrics) SolveEnd() {
	if m == nil {
		return
	}
	m.solvesDone.Add(1)
}

// Snapshot is a consistent-enough point-in-time copy of the counters
// (each field is read atomically; the set as a whole is not a
// transaction, which is fine for reporting).
type Snapshot struct {
	States      int64 `json:"states"`
	MemoHits    int64 `json:"memo_hits"`
	MemoMisses  int64 `json:"memo_misses"`
	EagerReads  int64 `json:"eager_reads"`
	Branches    int64 `json:"branches"`
	Depth       int64 `json:"depth"`
	PeakDepth   int64 `json:"peak_depth"`
	Solves      int64 `json:"solves"`
	SolvesDone  int64 `json:"solves_done"`
	SolveStates int64 `json:"solve_states"` // states charged to the current solve
}

// Snapshot samples the counters. Nil-safe (returns zeros).
func (m *Metrics) Snapshot() Snapshot {
	if m == nil {
		return Snapshot{}
	}
	s := Snapshot{
		States:     m.states.Load(),
		MemoHits:   m.memoHits.Load(),
		MemoMisses: m.memoMisses.Load(),
		EagerReads: m.eagerReads.Load(),
		Branches:   m.branches.Load(),
		Depth:      m.depth.Load(),
		PeakDepth:  m.peakDepth.Load(),
		Solves:     m.solves.Load(),
		SolvesDone: m.solvesDone.Load(),
	}
	s.SolveStates = s.States - m.solveBase.Load()
	return s
}

// MemoHitRate returns hits/(hits+misses), 0 with no lookups.
func (s Snapshot) MemoHitRate() float64 {
	lookups := s.MemoHits + s.MemoMisses
	if lookups == 0 {
		return 0
	}
	return float64(s.MemoHits) / float64(lookups)
}

var publishOnce sync.Once

// Publish registers m under the expvar name "memverify" so it shows up
// at /debug/vars. expvar names are process-global, so only the first
// published Metrics wins; later calls are no-ops (the debug endpoint
// passes the same instance it serves).
func Publish(m *Metrics) {
	publishOnce.Do(func() {
		expvar.Publish("memverify", expvar.Func(func() any { return m.Snapshot() }))
	})
}
