package obs

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync"
)

// Collector is an in-memory Sink that aggregates events into per-span
// summaries — the data behind the vmcheck -explain report. It keeps no
// per-event storage: each event folds into counters, so collecting on a
// large search stays cheap.
type Collector struct {
	mu    sync.Mutex
	spans map[uint64]*SpanSummary
	order []uint64
}

// SpanSummary aggregates one span's activity.
type SpanSummary struct {
	ID      uint64
	Parent  uint64
	Name    string
	Addr    int64
	HasAddr bool
	Verdict string // span end detail
	Ended   bool
	DurNS   int64

	States     int64
	Backtracks int64
	MemoHits   int64
	MemoMisses int64
	EagerReads int64
	PeakDepth  int
	// BacktrackDepths counts backtracks by power-of-two depth bucket
	// (bucket i covers depths with bit-length i).
	BacktrackDepths [16]int64

	beganNS int64
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{spans: make(map[uint64]*SpanSummary)}
}

// Emit folds one event into the owning span's summary.
func (c *Collector) Emit(e Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.spans[e.Span]
	if s == nil {
		s = &SpanSummary{ID: e.Span}
		c.spans[e.Span] = s
		c.order = append(c.order, e.Span)
	}
	switch e.Kind {
	case KindSpanBegin:
		s.Parent, s.Name, s.Addr, s.HasAddr, s.beganNS = e.Parent, e.Name, e.Addr, e.HasAddr, e.TS
	case KindSpanEnd:
		s.Verdict, s.Ended = e.Detail, true
		s.DurNS = e.TS - s.beganNS
		if e.States > s.States {
			s.States = e.States
		}
	case KindStateEnter:
		s.States++
		if e.Depth > s.PeakDepth {
			s.PeakDepth = e.Depth
		}
	case KindBacktrack:
		s.Backtracks++
		s.BacktrackDepths[DepthBucket(e.Depth)]++
	case KindMemoHit:
		s.MemoHits++
	case KindMemoMiss:
		s.MemoMisses++
	case KindEagerReads:
		s.EagerReads += e.N
	}
}

// DepthBucket maps a search depth to its power-of-two histogram bucket
// index (bit length of the depth, capped to the last bucket). Shared
// with solver.Stats.DepthHist so every depth histogram in the system
// buckets identically.
func DepthBucket(d int) int {
	if d < 0 {
		d = 0
	}
	b := bits.Len(uint(d))
	if b >= 16 {
		b = 15
	}
	return b
}

// BucketLabel names bucket i as a depth range ("0", "1", "2-3",
// "4-7", ...).
func BucketLabel(i int) string {
	if i == 0 {
		return "0"
	}
	lo, hi := 1<<(i-1), 1<<i-1
	if lo == hi {
		return fmt.Sprint(lo)
	}
	return fmt.Sprintf("%d-%d", lo, hi)
}

// Spans returns all collected summaries in first-seen order.
func (c *Collector) Spans() []*SpanSummary {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*SpanSummary, 0, len(c.order))
	for _, id := range c.order {
		out = append(out, c.spans[id])
	}
	return out
}

// ForAddr returns the summaries of spans tagged with addr, outermost
// first (by id, which increases with begin order).
func (c *Collector) ForAddr(addr int64) []*SpanSummary {
	var out []*SpanSummary
	for _, s := range c.Spans() {
		if s.HasAddr && s.Addr == addr {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Describe renders a one-line human summary of the span's search
// activity.
func (s *SpanSummary) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d states, %d backtracks", s.Name, s.States, s.Backtracks)
	if lookups := s.MemoHits + s.MemoMisses; lookups > 0 {
		fmt.Fprintf(&b, ", memo hit-rate %.1f%%", 100*float64(s.MemoHits)/float64(lookups))
	}
	if s.EagerReads > 0 {
		fmt.Fprintf(&b, ", %d eager reads", s.EagerReads)
	}
	fmt.Fprintf(&b, ", peak depth %d", s.PeakDepth)
	if s.Verdict != "" {
		fmt.Fprintf(&b, " -> %s", s.Verdict)
	}
	return b.String()
}

// BacktrackHistogram renders the non-empty backtrack depth buckets, the
// shape of where the search gave up ("depth 2-3: 57, depth 4-7: 9").
func (s *SpanSummary) BacktrackHistogram() string {
	var parts []string
	for i, n := range s.BacktrackDepths {
		if n > 0 {
			parts = append(parts, fmt.Sprintf("depth %s: %d", BucketLabel(i), n))
		}
	}
	return strings.Join(parts, ", ")
}
