package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Progress is a sampling reporter for long solves: on an interval it
// samples the Metrics counters and prints one status line (states/sec
// since the last sample, current and peak depth, memo hit-rate, and —
// when a state budget is configured — how much of it the current solve
// has left). It never touches the solvers themselves, so its cost is
// one goroutine and two snapshots per tick.
type Progress struct {
	w        io.Writer
	m        *Metrics
	limit    int64 // MaxStates budget (0 = unlimited)
	interval time.Duration

	mu   sync.Mutex
	prev Snapshot
	prevAt time.Time

	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// StartProgress launches the reporter; interval <= 0 defaults to 2s.
// Call Stop to halt it (a final line is printed if any work happened).
func StartProgress(w io.Writer, m *Metrics, interval time.Duration, limit int64) *Progress {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	p := &Progress{
		w:        w,
		m:        m,
		limit:    limit,
		interval: interval,
		prevAt:   time.Now(),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go p.loop()
	return p
}

func (p *Progress) loop() {
	defer close(p.done)
	t := time.NewTicker(p.interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			p.report(time.Now())
		case <-p.stop:
			return
		}
	}
}

// Stop halts the reporter and prints a final line when any states were
// visited since the last tick.
func (p *Progress) Stop() {
	p.once.Do(func() {
		close(p.stop)
		<-p.done
		if p.m.Snapshot().States > p.prev.States {
			p.report(time.Now())
		}
	})
}

// report samples the metrics and writes one status line. Exposed to the
// package tests via the now parameter for deterministic rates.
func (p *Progress) report(now time.Time) {
	p.mu.Lock()
	defer p.mu.Unlock()
	cur := p.m.Snapshot()
	elapsed := now.Sub(p.prevAt).Seconds()
	rate := 0.0
	if elapsed > 0 {
		rate = float64(cur.States-p.prev.States) / elapsed
	}
	line := fmt.Sprintf("obs: states=%d rate=%.0f/s depth=%d peak=%d memo-hit=%.1f%% solves=%d/%d",
		cur.States, rate, cur.Depth, cur.PeakDepth, 100*cur.MemoHitRate(),
		cur.SolvesDone, cur.Solves)
	if p.limit > 0 {
		left := p.limit - cur.SolveStates
		if left < 0 {
			left = 0
		}
		line += fmt.Sprintf(" budget-left=%d/%d", left, p.limit)
	}
	fmt.Fprintln(p.w, line)
	p.prev, p.prevAt = cur, now
}
