package coherence_test

import (
	"context"
	"fmt"

	"memverify/internal/coherence"
	"memverify/internal/memory"
)

// The basic workflow: build an execution, ask for a coherent schedule.
func ExampleSolveAuto() {
	exec := memory.NewExecution(
		memory.History{memory.W(0, 1)},
		memory.History{memory.R(0, 1)},
	).SetInitial(0, 0)
	res, err := coherence.SolveAuto(context.Background(), exec, 0, nil)
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Coherent)
	// Output: true
}

// The write-order augmentation of §5.2: supply the order in which the
// memory system performed the writes, verification becomes polynomial.
func ExampleSolveWithWriteOrder() {
	exec := memory.NewExecution(
		memory.History{memory.W(0, 1), memory.W(0, 2)},
		memory.History{memory.R(0, 1), memory.R(0, 2)},
	).SetInitial(0, 0)
	order := []memory.Ref{{Proc: 0, Index: 0}, {Proc: 0, Index: 1}}
	res, err := coherence.SolveWithWriteOrder(context.Background(), exec, 0, order, nil)
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Coherent, res.Algorithm)
	// Output: true write-order
}

// Counting coherent schedules: two unordered writes admit two.
func ExampleCount() {
	exec := memory.NewExecution(
		memory.History{memory.W(0, 1)},
		memory.History{memory.W(0, 2)},
	)
	n, err := coherence.Count(context.Background(), exec, 0)
	if err != nil {
		panic(err)
	}
	fmt.Println(n)
	// Output: 2
}

// Diagnosing a violation shrinks it to a minimal core.
func ExampleDiagnose() {
	exec := memory.NewExecution(
		memory.History{memory.W(0, 1), memory.R(0, 1)},
		memory.History{memory.R(0, 1), memory.R(0, 42)}, // 42 has no source
	).SetInitial(0, 0)
	d, err := coherence.Diagnose(context.Background(), exec, 0, nil)
	if err != nil {
		panic(err)
	}
	for _, r := range d.Ops {
		fmt.Println(r, exec.Op(r))
	}
	// Output: P1[1] R(0, 42)
}
