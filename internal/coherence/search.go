package coherence

import (
	"context"
	"encoding/binary"
	"sync"
	"time"

	"memverify/internal/memory"
	"memverify/internal/obs"
	"memverify/internal/solver"
)

// searcher is the general VMC decision procedure: a depth-first search
// over partial schedules. The state of a partial schedule is fully
// described by (position vector, current value), because reads do not
// change the memory state and the current value is the last written value
// (or the bound initial value). Failed states are memoized, which bounds
// the search by the number of distinct states, O(n^k · |D|) — the paper's
// constant-process algorithm. The eager-read rule (schedule an enabled
// read immediately when it matches the current value) shrinks the
// branching factor to the number of histories with an enabled write.
//
// The memo table is the hot path (the search does O(1) work per state
// beyond it), so states are packed into a single uint64 and memoized in
// an open-addressing set whenever the instance fits the packed layout
// (see packed.go); only overflow instances pay for varint-string keys
// and a Go map. All per-state buffers — position vector, schedule,
// candidate lists, value scratch — come from a pooled searchScratch, so
// steady-state search does zero allocations per state.
type searcher struct {
	inst   *instance
	opts   *Options
	budget *solver.Budget

	pos      []int // next unscheduled op per history
	cur      memory.Value
	bound    bool
	schedule []memory.Ref // projection refs, in scheduled order

	// Exactly one memo representation is active per solve: packed when
	// the instance fits the uint64 layout (layout non-nil), otherwise the
	// string-key map. Both memoize the same states; checkpoints always
	// serialize the string form, so the representations interconvert.
	layout *packedLayout
	packed *packedSet
	memo   map[string]struct{}

	// candBuf is a shared stack of candidate history indices: each dfs
	// frame appends its candidates, iterates them by index, and truncates
	// back on exit. One growable buffer replaces a per-state slice.
	candBuf []int
	// needed is the value-set scratch for write guidance: the values
	// blocked reads are waiting for, at most one entry per history.
	needed []memory.Value

	stats solver.Stats
	abort *solver.ErrBudgetExceeded

	// Checkpoint hooks (see solver.Options.CheckpointSink): sink is nil
	// when checkpointing is off, so the hot loop pays one nil/zero test
	// at the existing every-64-states poll point and nothing else.
	sink      func(solver.SearchSnapshot)
	snapEvery int
	lastSnap  int

	// Observability handles, resolved once per solve from the context.
	// tr and met are nil when no observer is attached; obsOn gates the
	// every-64-states flush so the disabled hot path pays only nil
	// comparisons (see obs package doc and BenchmarkObsOverhead).
	tr      *obs.Tracer
	sp      obs.Span
	met     *obs.Metrics
	obsOn   bool
	flushed obsFlush

	keyBuf []byte // fallback string-key scratch; unused on the packed path
}

// searchScratch carries the searcher's reusable buffers across
// searchInstance calls. Pooling them means a worker draining many
// per-address solves (VerifyExecutionParallel, the portfolio racers)
// re-uses one warm set of buffers instead of re-growing them per
// address.
type searchScratch struct {
	pos      []int
	schedule []memory.Ref
	candBuf  []int
	needed   []memory.Value
	keyBuf   []byte
	packed   packedSet
}

var scratchPool = sync.Pool{New: func() any { return new(searchScratch) }}

// obsFlush remembers the counter values at the last metrics flush, so
// each flush adds only the delta since the previous one.
type obsFlush struct {
	states, memoHits, memoMisses, eagerReads, branches int
}

// obsFlushInterval matches the budget's context-poll amortization
// window: live metrics are pushed at most once per 64 states.
const obsFlushInterval = 64

// pollObs flushes counter deltas into the shared metrics and emits the
// budget-poll trace event. Called every obsFlushInterval states and once
// at the end of the solve.
func (s *searcher) pollObs() {
	if s.met != nil {
		s.met.Flush(
			int64(s.stats.States-s.flushed.states),
			int64(s.stats.MemoHits-s.flushed.memoHits),
			int64(s.stats.MemoMisses-s.flushed.memoMisses),
			int64(s.stats.EagerReads-s.flushed.eagerReads),
			int64(s.stats.Branches-s.flushed.branches),
			len(s.schedule))
		s.flushed = obsFlush{s.stats.States, s.stats.MemoHits,
			s.stats.MemoMisses, s.stats.EagerReads, s.stats.Branches}
	}
	if s.tr != nil {
		s.tr.BudgetPoll(s.sp, int64(s.stats.States), len(s.schedule))
	}
}

// searchInstance runs the general search on a projected instance. A
// tripped budget (state bound, deadline, or cancellation) returns a nil
// Result and the budget error carrying the partial stats.
func searchInstance(ctx context.Context, inst *instance, opts *Options) (*Result, *solver.ErrBudgetExceeded) {
	// Parallel exact search (Options.ParallelSearch): engaged when the
	// memo can be shared (packed layout with a spare claim bit,
	// memoization on) and nothing demands sequential execution — a
	// checkpoint sink does, because a mid-flight multi-worker memo is
	// not resumable state (see psearch.go). Every fallback is silent
	// and complete: the sequential search answers the same question.
	if w := opts.PSearch(); w > 1 && opts.Memoize() && opts.PackedMemo() &&
		opts.Sink() == nil && inst.nops >= psearchMinOps {
		if layout := layoutFor(inst); layout != nil && layout.bitsUsed() < packedLayoutBits {
			return searchInstanceParallel(ctx, inst, opts, layout, w)
		}
	}
	start := time.Now()
	budget := solver.Start(ctx, opts)
	defer budget.Stop()
	scratch := scratchPool.Get().(*searchScratch)
	s := &searcher{
		inst:      inst,
		opts:      opts,
		budget:    budget,
		schedule:  scratch.schedule[:0],
		candBuf:   scratch.candBuf[:0],
		needed:    scratch.needed[:0],
		keyBuf:    scratch.keyBuf[:0],
		tr:        obs.TracerFrom(ctx),
		met:       obs.MetricsFrom(ctx),
		sink:      opts.Sink(),
		snapEvery: opts.SnapshotEvery(),
	}
	if cap(scratch.pos) >= len(inst.hist) {
		s.pos = scratch.pos[:len(inst.hist)]
		clear(s.pos)
	} else {
		s.pos = make([]int, len(inst.hist))
	}
	if s.opts.Memoize() {
		if opts.PackedMemo() {
			s.layout = layoutFor(inst)
		}
		if s.layout != nil {
			s.packed = &scratch.packed
			s.packed.reset()
		} else {
			s.memo = make(map[string]struct{})
		}
	}
	defer func() {
		scratch.pos = s.pos
		scratch.schedule = s.schedule[:0]
		scratch.candBuf = s.candBuf[:0]
		scratch.needed = s.needed[:0]
		scratch.keyBuf = s.keyBuf[:0]
		scratchPool.Put(scratch)
	}()
	s.obsOn = s.tr != nil || s.met != nil
	s.seedMemo(opts.ResumeMemoSeed())
	if s.tr != nil {
		s.sp, _ = s.tr.BeginAddr(ctx, "general-search", int64(inst.addr))
	}
	if inst.init != nil {
		s.cur, s.bound = *inst.init, true
	}
	found := s.dfs()
	s.stats.Duration = time.Since(start)
	if s.obsOn {
		s.pollObs()
	}
	if s.abort != nil {
		s.abort.Stats = s.stats
		if s.sink != nil {
			// Final snapshot at the abort point: this is what -checkpoint
			// round-trips, so a budget-killed search resumes here instead
			// of from scratch.
			s.snapshot()
		}
		s.sp.End("budget: "+s.abort.Reason.String(), int64(s.stats.States))
		return nil, s.abort
	}
	res := &Result{
		Coherent:  found,
		Decided:   true,
		Algorithm: "general-search",
		Stats:     s.stats,
	}
	if found {
		res.Schedule = inst.translate(s.schedule)
		s.sp.End("coherent", int64(s.stats.States))
	} else {
		s.sp.End("incoherent", int64(s.stats.States))
	}
	return res, nil
}

// seedMemo ingests memo keys saved by a prior checkpoint. Keys are
// always the varint string form (what snapshot writes, on either memo
// path); the packed search re-packs each, dropping entries that do not
// fit the layout — a drop only loses pruning, never soundness.
func (s *searcher) seedMemo(keys []string) {
	switch {
	case s.packed != nil:
		for _, k := range keys {
			if pk, ok := s.layout.parseStringKey(k); ok {
				s.packed.add(pk)
			}
		}
	case s.memo != nil:
		for _, k := range keys {
			s.memo[k] = struct{}{}
		}
	}
}

// memoLen returns the number of memoized states on whichever memo path
// is active.
func (s *searcher) memoLen() int {
	if s.packed != nil {
		return s.packed.size()
	}
	return len(s.memo)
}

// snapshot hands a copy of the resumable search state (memo table,
// current frontier, partial stats) to the checkpoint sink. Frontier refs
// are projection-local; they are informational — resume correctness
// rests on the memo table alone. Packed memo entries are decoded to the
// string key form, so checkpoints have one format regardless of which
// memo path produced them.
func (s *searcher) snapshot() {
	snap := solver.SearchSnapshot{
		Memo:     make([]string, 0, s.memoLen()),
		Frontier: append([]memory.Ref(nil), s.schedule...),
		Stats:    s.stats,
	}
	if s.packed != nil {
		var buf []byte
		s.packed.each(func(k uint64) {
			buf = s.layout.appendStringKey(buf[:0], k)
			snap.Memo = append(snap.Memo, string(buf))
		})
	} else {
		for k := range s.memo {
			snap.Memo = append(snap.Memo, k)
		}
	}
	s.lastSnap = s.stats.States
	if s.tr != nil {
		s.tr.Checkpoint(s.sp, int64(s.stats.States), len(snap.Memo))
	}
	s.sink(snap)
}

// key serializes the current state for memoization (string fallback for
// instances that overflow the packed layout).
func (s *searcher) key() string {
	buf := s.keyBuf[:0]
	for _, p := range s.pos {
		buf = binary.AppendUvarint(buf, uint64(p))
	}
	if s.bound {
		buf = append(buf, 1)
		buf = binary.AppendVarint(buf, int64(s.cur))
	} else {
		buf = append(buf, 0)
	}
	s.keyBuf = buf
	return string(buf)
}

// done reports whether every operation has been scheduled.
func (s *searcher) done() bool {
	for i, p := range s.pos {
		if p < len(s.inst.hist[i]) {
			return false
		}
	}
	return true
}

// finalOK checks the final-value constraint at completion. The current
// value equals the last written value whenever any write was scheduled
// (binding reads only occur before the first write).
func (s *searcher) finalOK() bool {
	if s.inst.final == nil {
		return true
	}
	if !s.bound {
		// No writes, no reads, no declared initial value: vacuous.
		return true
	}
	return s.cur == *s.inst.final
}

// apply schedules the op at hist[h][pos[h]], returning the value state
// to restore on undo. Returning plain values instead of an undo closure
// keeps apply off the heap — the closure was one allocation per visited
// state.
func (s *searcher) apply(h int) (prevCur memory.Value, prevBound bool) {
	o := s.inst.hist[h][s.pos[h]]
	prevCur, prevBound = s.cur, s.bound
	s.schedule = append(s.schedule, memory.Ref{Proc: h, Index: s.pos[h]})
	s.pos[h]++
	if d, ok := o.Reads(); ok && !s.bound {
		s.cur, s.bound = d, true
	}
	if d, ok := o.Writes(); ok {
		s.cur, s.bound = d, true
	}
	return prevCur, prevBound
}

// undo reverses the corresponding apply.
func (s *searcher) undo(h int, prevCur memory.Value, prevBound bool) {
	s.pos[h]--
	s.schedule = s.schedule[:len(s.schedule)-1]
	s.cur, s.bound = prevCur, prevBound
}

// scheduleEagerReads repeatedly schedules every enabled read whose value
// matches the current bound value, returning the number scheduled. Such
// reads never need to be delayed: they do not change the state, so a
// coherent completion exists after scheduling them iff one existed
// before.
func (s *searcher) scheduleEagerReads() int {
	if !s.opts.EagerReads() || !s.bound {
		return 0
	}
	n := 0
	for {
		progress := false
		for h := range s.inst.hist {
			for s.pos[h] < len(s.inst.hist[h]) {
				o := s.inst.hist[h][s.pos[h]]
				if o.Kind != memory.Read || o.Data != s.cur {
					break
				}
				s.schedule = append(s.schedule, memory.Ref{Proc: h, Index: s.pos[h]})
				s.pos[h]++
				n++
				s.stats.EagerReads++
				progress = true
			}
		}
		if !progress {
			return n
		}
	}
}

// undoEagerReads pops n eagerly scheduled reads.
func (s *searcher) undoEagerReads(n int) {
	for i := 0; i < n; i++ {
		r := s.schedule[len(s.schedule)-1]
		s.schedule = s.schedule[:len(s.schedule)-1]
		s.pos[r.Proc]--
	}
}

// enabled reports whether the next op of history h may be scheduled now,
// ignoring the eager-read rule.
func (s *searcher) enabled(o memory.Op) bool {
	switch o.Kind {
	case memory.Write:
		return true
	case memory.Read, memory.ReadModifyWrite:
		return !s.bound || o.Data == s.cur
	default:
		// Synchronization ops never appear in projected instances.
		return false
	}
}

// containsValue reports whether d is in vals (at most one entry per
// history, so a linear scan beats any set structure).
func containsValue(vals []memory.Value, d memory.Value) bool {
	for _, v := range vals {
		if v == d {
			return true
		}
	}
	return false
}

// classify reports whether history h's next operation may be branched on
// now, and whether it is preferred by write guidance (it writes a value
// some blocked read is waiting for — see appendCandidates).
func (s *searcher) classify(h int) (cand, preferred bool) {
	if s.pos[h] >= len(s.inst.hist[h]) {
		return false, false
	}
	o := s.inst.hist[h][s.pos[h]]
	if !s.enabled(o) {
		return false, false
	}
	if s.opts.EagerReads() && o.Kind == memory.Read && s.bound {
		// Matching reads were consumed by the eager rule; a read that
		// remains here mismatches and is disabled. (When unbound, a
		// read is a genuine branch: it binds the initial value.)
		return false, false
	}
	if len(s.needed) > 0 {
		if d, ok := o.Writes(); ok && containsValue(s.needed, d) {
			return true, true
		}
	}
	return true, false
}

// appendCandidates appends to s.candBuf the histories whose next
// operation may be branched on now, most promising first: when write
// guidance is on, writes (and RMWs) whose stored value some blocked read
// is waiting for are tried before other candidates — scheduling anything
// else first can only delay or clobber the value that read needs.
// Ordering cannot affect completeness (all candidates are still tried),
// only search speed. The caller iterates s.candBuf[base:end] and
// truncates back to base; the shared buffer replaces the former
// per-state preferred/rest slices.
func (s *searcher) appendCandidates() (base, end int) {
	base = len(s.candBuf)
	needed := s.needed[:0]
	if s.opts.WriteGuidance() && s.bound {
		for h := range s.inst.hist {
			if s.pos[h] >= len(s.inst.hist[h]) {
				continue
			}
			o := s.inst.hist[h][s.pos[h]]
			if d, ok := o.Reads(); ok && d != s.cur && !containsValue(needed, d) {
				needed = append(needed, d)
			}
		}
	}
	s.needed = needed
	if len(needed) == 0 {
		for h := range s.inst.hist {
			if cand, _ := s.classify(h); cand {
				s.candBuf = append(s.candBuf, h)
			}
		}
		return base, len(s.candBuf)
	}
	for h := range s.inst.hist {
		if cand, preferred := s.classify(h); cand && preferred {
			s.candBuf = append(s.candBuf, h)
		}
	}
	for h := range s.inst.hist {
		if cand, preferred := s.classify(h); cand && !preferred {
			s.candBuf = append(s.candBuf, h)
		}
	}
	return base, len(s.candBuf)
}

// dfs explores from the current state; true means a coherent completion
// was found (and s.schedule holds it).
func (s *searcher) dfs() bool {
	eager := s.scheduleEagerReads()
	if s.tr != nil && eager > 0 {
		s.tr.EagerReads(s.sp, len(s.schedule), eager)
	}
	if d := len(s.schedule); d > s.stats.PeakDepth {
		s.stats.PeakDepth = d
	}
	if s.done() {
		if s.finalOK() {
			return true
		}
		s.undoEagerReads(eager)
		return false
	}

	var key string
	var pkey uint64
	if s.opts.Memoize() {
		if s.packed != nil {
			pkey = s.layout.pack(s.pos, s.cur, s.bound)
			if s.packed.contains(pkey) {
				s.memoHit(eager)
				return false
			}
		} else {
			key = s.key()
			if _, seen := s.memo[key]; seen {
				s.memoHit(eager)
				return false
			}
		}
		s.stats.MemoMisses++
		if s.tr != nil {
			s.tr.MemoMiss(s.sp, len(s.schedule))
		}
	}

	s.stats.States++
	s.stats.RecordDepth(len(s.schedule))
	if s.tr != nil {
		s.tr.StateEnter(s.sp, len(s.schedule), int64(s.stats.States))
	}
	if e := s.budget.Charge(s.stats.States); e != nil {
		s.abort = e
		s.undoEagerReads(eager)
		return false
	}
	if s.stats.States&(obsFlushInterval-1) == 0 {
		if s.obsOn {
			s.pollObs()
		}
		if s.snapEvery > 0 && s.stats.States-s.lastSnap >= s.snapEvery {
			s.snapshot()
		}
	}

	base, end := s.appendCandidates()
	s.stats.Branches += end - base
	for i := base; i < end; i++ {
		h := s.candBuf[i]
		prevCur, prevBound := s.apply(h)
		if s.dfs() {
			return true
		}
		s.undo(h, prevCur, prevBound)
		if s.abort != nil {
			s.candBuf = s.candBuf[:base]
			s.undoEagerReads(eager)
			return false
		}
	}
	s.candBuf = s.candBuf[:base]

	if s.tr != nil {
		s.tr.Backtrack(s.sp, len(s.schedule))
	}
	if s.opts.Memoize() {
		if s.packed != nil {
			s.packed.add(pkey)
		} else {
			s.memo[key] = struct{}{}
		}
	}
	s.undoEagerReads(eager)
	return false
}

// memoHit records a memo-table prune and unwinds the frame's eager
// reads.
func (s *searcher) memoHit(eager int) {
	s.stats.MemoHits++
	if s.tr != nil {
		s.tr.MemoHit(s.sp, len(s.schedule))
	}
	s.undoEagerReads(eager)
}
