package coherence

import (
	"context"
	"encoding/binary"
	"time"

	"memverify/internal/memory"
	"memverify/internal/obs"
	"memverify/internal/solver"
)

// searcher is the general VMC decision procedure: a depth-first search
// over partial schedules. The state of a partial schedule is fully
// described by (position vector, current value), because reads do not
// change the memory state and the current value is the last written value
// (or the bound initial value). Failed states are memoized, which bounds
// the search by the number of distinct states, O(n^k · |D|) — the paper's
// constant-process algorithm. The eager-read rule (schedule an enabled
// read immediately when it matches the current value) shrinks the
// branching factor to the number of histories with an enabled write.
type searcher struct {
	inst   *instance
	opts   *Options
	budget *solver.Budget

	pos      []int // next unscheduled op per history
	cur      memory.Value
	bound    bool
	schedule []memory.Ref // projection refs, in scheduled order

	memo  map[string]struct{}
	stats solver.Stats
	abort *solver.ErrBudgetExceeded

	// Checkpoint hooks (see solver.Options.CheckpointSink): sink is nil
	// when checkpointing is off, so the hot loop pays one nil/zero test
	// at the existing every-64-states poll point and nothing else.
	sink      func(solver.SearchSnapshot)
	snapEvery int
	lastSnap  int

	// Observability handles, resolved once per solve from the context.
	// tr and met are nil when no observer is attached; obsOn gates the
	// every-64-states flush so the disabled hot path pays only nil
	// comparisons (see obs package doc and BenchmarkObsOverhead).
	tr      *obs.Tracer
	sp      obs.Span
	met     *obs.Metrics
	obsOn   bool
	flushed obsFlush

	keyBuf []byte
}

// obsFlush remembers the counter values at the last metrics flush, so
// each flush adds only the delta since the previous one.
type obsFlush struct {
	states, memoHits, memoMisses, eagerReads, branches int
}

// obsFlushInterval matches the budget's context-poll amortization
// window: live metrics are pushed at most once per 64 states.
const obsFlushInterval = 64

// pollObs flushes counter deltas into the shared metrics and emits the
// budget-poll trace event. Called every obsFlushInterval states and once
// at the end of the solve.
func (s *searcher) pollObs() {
	if s.met != nil {
		s.met.Flush(
			int64(s.stats.States-s.flushed.states),
			int64(s.stats.MemoHits-s.flushed.memoHits),
			int64(s.stats.MemoMisses-s.flushed.memoMisses),
			int64(s.stats.EagerReads-s.flushed.eagerReads),
			int64(s.stats.Branches-s.flushed.branches),
			len(s.schedule))
		s.flushed = obsFlush{s.stats.States, s.stats.MemoHits,
			s.stats.MemoMisses, s.stats.EagerReads, s.stats.Branches}
	}
	if s.tr != nil {
		s.tr.BudgetPoll(s.sp, int64(s.stats.States), len(s.schedule))
	}
}

// searchInstance runs the general search on a projected instance. A
// tripped budget (state bound, deadline, or cancellation) returns a nil
// Result and the budget error carrying the partial stats.
func searchInstance(ctx context.Context, inst *instance, opts *Options) (*Result, *solver.ErrBudgetExceeded) {
	start := time.Now()
	budget := solver.Start(ctx, opts)
	defer budget.Stop()
	s := &searcher{
		inst:      inst,
		opts:      opts,
		budget:    budget,
		pos:       make([]int, len(inst.hist)),
		memo:      make(map[string]struct{}),
		tr:        obs.TracerFrom(ctx),
		met:       obs.MetricsFrom(ctx),
		sink:      opts.Sink(),
		snapEvery: opts.SnapshotEvery(),
	}
	s.obsOn = s.tr != nil || s.met != nil
	for _, k := range opts.ResumeMemoSeed() {
		s.memo[k] = struct{}{}
	}
	if s.tr != nil {
		s.sp, _ = s.tr.BeginAddr(ctx, "general-search", int64(inst.addr))
	}
	if inst.init != nil {
		s.cur, s.bound = *inst.init, true
	}
	found := s.dfs()
	s.stats.Duration = time.Since(start)
	if s.obsOn {
		s.pollObs()
	}
	if s.abort != nil {
		s.abort.Stats = s.stats
		if s.sink != nil {
			// Final snapshot at the abort point: this is what -checkpoint
			// round-trips, so a budget-killed search resumes here instead
			// of from scratch.
			s.snapshot()
		}
		s.sp.End("budget: "+s.abort.Reason.String(), int64(s.stats.States))
		return nil, s.abort
	}
	res := &Result{
		Coherent:  found,
		Decided:   true,
		Algorithm: "general-search",
		Stats:     s.stats,
	}
	if found {
		res.Schedule = inst.translate(s.schedule)
		s.sp.End("coherent", int64(s.stats.States))
	} else {
		s.sp.End("incoherent", int64(s.stats.States))
	}
	return res, nil
}

// snapshot hands a copy of the resumable search state (memo table,
// current frontier, partial stats) to the checkpoint sink. Frontier refs
// are projection-local; they are informational — resume correctness
// rests on the memo table alone.
func (s *searcher) snapshot() {
	snap := solver.SearchSnapshot{
		Memo:     make([]string, 0, len(s.memo)),
		Frontier: append([]memory.Ref(nil), s.schedule...),
		Stats:    s.stats,
	}
	for k := range s.memo {
		snap.Memo = append(snap.Memo, k)
	}
	s.lastSnap = s.stats.States
	if s.tr != nil {
		s.tr.Checkpoint(s.sp, int64(s.stats.States), len(snap.Memo))
	}
	s.sink(snap)
}

// key serializes the current state for memoization.
func (s *searcher) key() string {
	buf := s.keyBuf[:0]
	for _, p := range s.pos {
		buf = binary.AppendUvarint(buf, uint64(p))
	}
	if s.bound {
		buf = append(buf, 1)
		buf = binary.AppendVarint(buf, int64(s.cur))
	} else {
		buf = append(buf, 0)
	}
	s.keyBuf = buf
	return string(buf)
}

// done reports whether every operation has been scheduled.
func (s *searcher) done() bool {
	for i, p := range s.pos {
		if p < len(s.inst.hist[i]) {
			return false
		}
	}
	return true
}

// finalOK checks the final-value constraint at completion. The current
// value equals the last written value whenever any write was scheduled
// (binding reads only occur before the first write).
func (s *searcher) finalOK() bool {
	if s.inst.final == nil {
		return true
	}
	if !s.bound {
		// No writes, no reads, no declared initial value: vacuous.
		return true
	}
	return s.cur == *s.inst.final
}

// apply schedules the op at hist[h][pos[h]] and returns an undo closure.
func (s *searcher) apply(h int) func() {
	o := s.inst.hist[h][s.pos[h]]
	prevCur, prevBound := s.cur, s.bound
	s.schedule = append(s.schedule, memory.Ref{Proc: h, Index: s.pos[h]})
	s.pos[h]++
	if d, ok := o.Reads(); ok && !s.bound {
		s.cur, s.bound = d, true
	}
	if d, ok := o.Writes(); ok {
		s.cur, s.bound = d, true
	}
	return func() {
		s.pos[h]--
		s.schedule = s.schedule[:len(s.schedule)-1]
		s.cur, s.bound = prevCur, prevBound
	}
}

// scheduleEagerReads repeatedly schedules every enabled read whose value
// matches the current bound value, returning the number scheduled. Such
// reads never need to be delayed: they do not change the state, so a
// coherent completion exists after scheduling them iff one existed
// before.
func (s *searcher) scheduleEagerReads() int {
	if !s.opts.EagerReads() || !s.bound {
		return 0
	}
	n := 0
	for {
		progress := false
		for h := range s.inst.hist {
			for s.pos[h] < len(s.inst.hist[h]) {
				o := s.inst.hist[h][s.pos[h]]
				if o.Kind != memory.Read || o.Data != s.cur {
					break
				}
				s.schedule = append(s.schedule, memory.Ref{Proc: h, Index: s.pos[h]})
				s.pos[h]++
				n++
				s.stats.EagerReads++
				progress = true
			}
		}
		if !progress {
			return n
		}
	}
}

// undoEagerReads pops n eagerly scheduled reads.
func (s *searcher) undoEagerReads(n int) {
	for i := 0; i < n; i++ {
		r := s.schedule[len(s.schedule)-1]
		s.schedule = s.schedule[:len(s.schedule)-1]
		s.pos[r.Proc]--
	}
}

// enabled reports whether the next op of history h may be scheduled now,
// ignoring the eager-read rule.
func (s *searcher) enabled(o memory.Op) bool {
	switch o.Kind {
	case memory.Write:
		return true
	case memory.Read, memory.ReadModifyWrite:
		return !s.bound || o.Data == s.cur
	default:
		// Synchronization ops never appear in projected instances.
		return false
	}
}

// candidates returns the histories whose next operation may be branched
// on now, most promising first: when write guidance is on, writes (and
// RMWs) whose stored value some blocked read is waiting for are tried
// before other candidates — scheduling anything else first can only
// delay or clobber the value that read needs. Ordering cannot affect
// completeness (all candidates are still tried), only search speed.
func (s *searcher) candidates() []int {
	var needed map[memory.Value]bool
	if s.opts.WriteGuidance() && s.bound {
		for h := range s.inst.hist {
			if s.pos[h] >= len(s.inst.hist[h]) {
				continue
			}
			o := s.inst.hist[h][s.pos[h]]
			if d, ok := o.Reads(); ok && d != s.cur {
				if needed == nil {
					needed = make(map[memory.Value]bool)
				}
				needed[d] = true
			}
		}
	}
	var preferred, rest []int
	for h := range s.inst.hist {
		if s.pos[h] >= len(s.inst.hist[h]) {
			continue
		}
		o := s.inst.hist[h][s.pos[h]]
		if !s.enabled(o) {
			continue
		}
		if s.opts.EagerReads() && o.Kind == memory.Read && s.bound {
			// Matching reads were consumed by the eager rule; a read that
			// remains here mismatches and is disabled. (When unbound, a
			// read is a genuine branch: it binds the initial value.)
			continue
		}
		if needed != nil {
			if d, ok := o.Writes(); ok && needed[d] {
				preferred = append(preferred, h)
				continue
			}
		}
		rest = append(rest, h)
	}
	if len(preferred) == 0 {
		return rest
	}
	return append(preferred, rest...)
}

// dfs explores from the current state; true means a coherent completion
// was found (and s.schedule holds it).
func (s *searcher) dfs() bool {
	eager := s.scheduleEagerReads()
	if s.tr != nil && eager > 0 {
		s.tr.EagerReads(s.sp, len(s.schedule), eager)
	}
	if d := len(s.schedule); d > s.stats.PeakDepth {
		s.stats.PeakDepth = d
	}
	if s.done() {
		if s.finalOK() {
			return true
		}
		s.undoEagerReads(eager)
		return false
	}

	var key string
	if s.opts.Memoize() {
		key = s.key()
		if _, seen := s.memo[key]; seen {
			s.stats.MemoHits++
			if s.tr != nil {
				s.tr.MemoHit(s.sp, len(s.schedule))
			}
			s.undoEagerReads(eager)
			return false
		}
		s.stats.MemoMisses++
		if s.tr != nil {
			s.tr.MemoMiss(s.sp, len(s.schedule))
		}
	}

	s.stats.States++
	s.stats.RecordDepth(len(s.schedule))
	if s.tr != nil {
		s.tr.StateEnter(s.sp, len(s.schedule), int64(s.stats.States))
	}
	if e := s.budget.Charge(s.stats.States); e != nil {
		s.abort = e
		s.undoEagerReads(eager)
		return false
	}
	if s.stats.States&(obsFlushInterval-1) == 0 {
		if s.obsOn {
			s.pollObs()
		}
		if s.snapEvery > 0 && s.stats.States-s.lastSnap >= s.snapEvery {
			s.snapshot()
		}
	}

	cands := s.candidates()
	s.stats.Branches += len(cands)
	for _, h := range cands {
		undo := s.apply(h)
		if s.dfs() {
			return true
		}
		undo()
		if s.abort != nil {
			s.undoEagerReads(eager)
			return false
		}
	}

	if s.tr != nil {
		s.tr.Backtrack(s.sp, len(s.schedule))
	}
	if s.opts.Memoize() {
		s.memo[key] = struct{}{}
	}
	s.undoEagerReads(eager)
	return false
}
