package coherence

import (
	"context"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"memverify/internal/memory"
	"memverify/internal/obs"
	"memverify/internal/solver"
)

func TestResilientExactRung(t *testing.T) {
	exec := memory.NewExecution(
		memory.History{memory.W(0, 1)},
		memory.History{memory.R(0, 1)},
	).SetInitial(0, 0)
	// The frontline is ablated so the test pins the exact rung itself;
	// TestResilientFastRung covers the default path.
	rr, err := SolveResilient(context.Background(), exec, 0, nil, solver.New(solver.WithoutFastPath()))
	if err != nil {
		t.Fatal(err)
	}
	if rr.Verdict != VerdictCoherent || rr.Rung != RungExact {
		t.Errorf("easy instance: verdict=%s rung=%s, want coherent at exact", rr.Verdict, rr.Rung)
	}
	if rr.Stats.Rung != 0 {
		t.Errorf("Stats.Rung = %d, want 0 for the exact rung", rr.Stats.Rung)
	}
}

// TestResilientSpecialistDecides: the exact search trips its budget, but
// the instance has few writes, so exhaustive write-order enumeration
// (the §5.2 algorithm over every order) still decides — both ways.
func TestResilientSpecialistDecides(t *testing.T) {
	opts := solver.New(solver.WithMaxStates(3), solver.WithoutFastPath())

	rr, err := SolveResilient(context.Background(), hardExecution(), 0, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Verdict != VerdictIncoherent || rr.Rung != RungSpecialist {
		t.Fatalf("verdict=%s rung=%s, want incoherent at specialist", rr.Verdict, rr.Rung)
	}
	if rr.Stats.Rung != int(RungSpecialist) {
		t.Errorf("Stats.Rung = %d, want %d", rr.Stats.Rung, int(RungSpecialist))
	}

	// Coherent case, certificate checked: Figure 4.2 has 5 writes.
	exec := figure42Instance()
	rr, err = SolveResilient(context.Background(), exec, 0, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Verdict != VerdictCoherent || rr.Rung != RungSpecialist {
		t.Fatalf("figure 4.2: verdict=%s rung=%s, want coherent at specialist", rr.Verdict, rr.Rung)
	}
	if err := memory.CheckCoherent(exec, 0, rr.Result.Schedule); err != nil {
		t.Errorf("specialist certificate invalid: %v", err)
	}
}

// manyWriteExecution has more writes than the enumeration rung accepts
// (and repeated values, so no Figure 5.3 row applies). It is coherent by
// construction — the emission order is a witness — which the ladder
// cannot prove, making it the canonical Unknown case.
func manyWriteExecution() *memory.Execution {
	rng := rand.New(rand.NewSource(7))
	const nproc = 4
	exec := &memory.Execution{Histories: make([]memory.History, nproc)}
	exec.SetInitial(0, 0)
	cur := memory.Value(0)
	for i := 0; i < 48; i++ {
		p := rng.Intn(nproc)
		if rng.Intn(2) == 0 {
			cur = memory.Value(1 + rng.Intn(3))
			exec.Histories[p] = append(exec.Histories[p], memory.W(0, cur))
		} else {
			exec.Histories[p] = append(exec.Histories[p], memory.R(0, cur))
		}
	}
	return exec
}

// TestResilientUnknown is the degradation acceptance test: budget
// exhausted, no rung decides, and the caller gets Verdict Unknown with
// the rung recorded in Stats — not an error.
func TestResilientUnknown(t *testing.T) {
	exec := manyWriteExecution()
	rr, err := SolveResilient(context.Background(), exec, 0, nil, solver.New(solver.WithMaxStates(10)))
	if err != nil {
		t.Fatal(err)
	}
	if rr.Verdict != VerdictUnknown || rr.Rung != RungNecessary {
		t.Fatalf("verdict=%s rung=%s, want unknown at necessary", rr.Verdict, rr.Rung)
	}
	if rr.Stats.Rung != int(RungNecessary) {
		t.Errorf("Stats.Rung = %d, want %d", rr.Stats.Rung, int(RungNecessary))
	}
	if len(rr.Checks) == 0 {
		t.Error("Unknown verdict carries no necessary-condition evidence")
	}
	if rr.Result != nil {
		t.Errorf("Unknown verdict should carry no Result, got %+v", rr.Result)
	}
	if rr.Stats.States == 0 {
		t.Error("partial exact-search stats lost in aggregation")
	}
}

// TestResilientNecessaryRefutes: even past the enumeration rung, sound
// necessary conditions can still refute.
func TestResilientNecessaryRefutes(t *testing.T) {
	exec := manyWriteExecution()
	// Append a read of a value nothing ever writes (init is declared 0,
	// so the unwritten-read-values condition fires).
	exec.Histories[0] = append(exec.Histories[0], memory.R(0, 9999))
	// Ablate the frontline (which refutes this outright — see the
	// fastpath tests) so the necessary-conditions rung stays exercised.
	rr, err := SolveResilient(context.Background(), exec, 0, nil, solver.New(solver.WithMaxStates(10), solver.WithoutFastPath()))
	if err != nil {
		t.Fatal(err)
	}
	if rr.Verdict != VerdictIncoherent || rr.Rung != RungNecessary {
		t.Fatalf("verdict=%s rung=%s, want incoherent at necessary", rr.Verdict, rr.Rung)
	}
	found := false
	for _, ch := range rr.Checks {
		if strings.Contains(ch, "unwritten-read-values") && strings.Contains(ch, "FAIL") {
			found = true
		}
	}
	if !found {
		t.Errorf("no failing unwritten-read-values check in %v", rr.Checks)
	}
}

// TestResilientWriteOrderHint: with a caller-supplied write order, the
// ladder's first rung proves coherence polynomially after the exact
// search exhausts.
func TestResilientWriteOrderHint(t *testing.T) {
	exec := figure42Instance()
	// Derive a valid write order from an unbudgeted solve's certificate.
	fresh, err := SolveAuto(context.Background(), exec, 0, nil)
	if err != nil || !fresh.Coherent {
		t.Fatalf("baseline solve: %v, %+v", err, fresh)
	}
	var order []memory.Ref
	for _, r := range fresh.Schedule {
		if _, ok := exec.Op(r).Writes(); ok {
			order = append(order, r)
		}
	}
	rr, err := SolveResilient(context.Background(), exec, 0, order, solver.New(solver.WithMaxStates(2), solver.WithoutFastPath()))
	if err != nil {
		t.Fatal(err)
	}
	if rr.Verdict != VerdictCoherent || rr.Rung != RungWriteOrder {
		t.Fatalf("verdict=%s rung=%s, want coherent at write-order", rr.Verdict, rr.Rung)
	}
	if err := memory.CheckCoherent(exec, 0, rr.Result.Schedule); err != nil {
		t.Errorf("write-order certificate invalid: %v", err)
	}
}

// TestResilientCancelPropagates: cancellation is a request to stop, not
// to degrade — the ladder must not keep working.
func TestResilientCancelPropagates(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := SolveResilient(ctx, manyWriteExecution(), 0, nil, nil)
	be, ok := solver.AsBudgetError(err)
	if !ok || be.Reason != solver.Canceled {
		t.Fatalf("err = %v, want Canceled budget error", err)
	}
}

// TestVerifyExecutionResilient: budget exhaustion on one address must
// not abort the loop — every address gets a verdict (possibly Unknown).
func TestVerifyExecutionResilient(t *testing.T) {
	hard := manyWriteExecution()
	exec := &memory.Execution{Histories: make([]memory.History, len(hard.Histories))}
	copy(exec.Histories, hard.Histories)
	exec.SetInitial(0, 0)
	// A second, trivial address.
	exec.Histories[0] = append(memory.History{memory.W(1, 5)}, exec.Histories[0]...)
	exec.Histories[1] = append(memory.History{memory.R(1, 5)}, exec.Histories[1]...)
	exec.SetInitial(1, 0)

	out, err := VerifyExecutionResilient(context.Background(), exec, nil, solver.New(solver.WithMaxStates(10)))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("results for %d addresses, want 2", len(out))
	}
	if out[1].Verdict != VerdictCoherent {
		t.Errorf("trivial address verdict = %s", out[1].Verdict)
	}
	if out[0].Verdict != VerdictUnknown {
		t.Errorf("hard address verdict = %s, want unknown", out[0].Verdict)
	}
}

// obsEventSink records obs events for the panic-injection test.
type obsEventSink struct {
	mu     sync.Mutex
	events []obs.Event
}

func (s *obsEventSink) Emit(e obs.Event) {
	s.mu.Lock()
	s.events = append(s.events, e)
	s.mu.Unlock()
}

func (s *obsEventSink) count(k obs.Kind) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, e := range s.events {
		if e.Kind == k {
			n++
		}
	}
	return n
}

// TestPortfolioSurvivesCandidatePanic is the panic-isolation acceptance
// test: one race candidate is made to panic; SolvePortfolio must return
// the correct verdict from the survivors, emit a worker_panic obs
// event, and leak no goroutines.
func TestPortfolioSurvivesCandidatePanic(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	exec := hardRacingInstance(rng) // reliably escalates to the race stage
	want, err := SolveAuto(context.Background(), exec, 0, nil)
	if err != nil {
		t.Fatal(err)
	}

	sink := &obsEventSink{}
	// The fault is injected into whichever candidate the pool schedules
	// first — on a one-slot pool (GOMAXPROCS=1) the candidates run
	// sequentially and a fixed victim index would let the winner finish
	// before the victim ever starts, especially now that the probe-memo
	// seeding makes the seeded racer near-instant. The survivor then
	// holds until the panic has been recorded, so the worker_panic event
	// is deterministically present when the race returns (bounded wait:
	// a wedged faulty goroutine should fail the test, not hang it).
	var faulted sync.Once
	testHookRaceCandidate = func(idx int) {
		injected := false
		faulted.Do(func() { injected = true })
		if injected {
			panic("injected candidate fault")
		}
		deadline := time.Now().Add(2 * time.Second)
		for sink.count(obs.KindWorkerPanic) == 0 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
	}
	defer func() { testHookRaceCandidate = nil }()

	ctx := obs.With(context.Background(), &obs.Observer{Tracer: obs.NewTracer(sink)})
	before := runtime.NumGoroutine()
	// The frontline would decide this instance before the race stage; the
	// test is about race panic isolation, so ablate it.
	got, err := SolvePortfolio(ctx, exec, 0, solver.New(solver.WithoutFastPath()))
	if err != nil {
		t.Fatalf("portfolio died with a panicked candidate: %v", err)
	}
	if got.Coherent != want.Coherent {
		t.Errorf("survivor verdict %v != auto verdict %v", got.Coherent, want.Coherent)
	}
	if !strings.HasPrefix(got.Algorithm, "portfolio:") {
		t.Errorf("algorithm = %q, want a race winner", got.Algorithm)
	}
	if sink.count(obs.KindWorkerPanic) == 0 {
		t.Error("no worker_panic event for the injected fault")
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && runtime.NumGoroutine() > before {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Errorf("goroutines: %d before, %d after — race workers leaked", before, n)
	}
}
