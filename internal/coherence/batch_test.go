package coherence

import (
	"context"
	"math/rand"
	"testing"

	"memverify/internal/memory"
	"memverify/internal/solver"
)

// batchJobs builds a mixed bag of batch jobs: random multi-address
// instances plus coherent-by-construction single-address traces, the
// litmus-sized shapes the batch driver exists for.
func batchJobs(rng *rand.Rand, n int) []BatchJob {
	var jobs []BatchJob
	for len(jobs) < n {
		if rng.Intn(3) == 0 {
			exec, _ := randomCoherentTrace(rng, 2+rng.Intn(2), 2+rng.Intn(4), 1+rng.Intn(3))
			jobs = append(jobs, BatchJob{Exec: exec, Addr: 0})
			continue
		}
		exec := randomInstance(rng)
		for _, a := range exec.Addresses() {
			jobs = append(jobs, BatchJob{Exec: exec, Addr: a})
		}
	}
	return jobs[:n]
}

// TestSolveBatchParity: SolveBatch must agree with a loop over
// Verifier.Solve on verdict, decidedness and algorithm, and its
// certificates must check against the original executions.
func TestSolveBatchParity(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	jobs := batchJobs(rng, 500)
	for _, workers := range []int{1, 4} {
		v := NewVerifier(solver.WithWorkers(workers))
		got := v.SolveBatch(context.Background(), jobs)
		if len(got) != len(jobs) {
			t.Fatalf("got %d results for %d jobs", len(got), len(jobs))
		}
		for i, job := range jobs {
			want, err := v.Solve(context.Background(), job.Exec, job.Addr)
			if err != nil {
				t.Fatalf("job %d: looped solve failed: %v", i, err)
			}
			br := &got[i]
			if br.Err != nil {
				t.Fatalf("job %d (workers=%d): batch error: %v", i, workers, br.Err)
			}
			if br.Result.Coherent != want.Coherent {
				t.Fatalf("job %d (workers=%d): verdict mismatch: batch=%v loop=%v",
					i, workers, br.Result.Coherent, want.Coherent)
			}
			if br.Result.Algorithm != want.Algorithm {
				t.Fatalf("job %d: algorithm mismatch: batch=%q loop=%q",
					i, br.Result.Algorithm, want.Algorithm)
			}
			if br.Result.Coherent {
				if err := memory.CheckCoherent(job.Exec, job.Addr, br.Result.Schedule); err != nil {
					t.Fatalf("job %d: invalid batch certificate: %v", i, err)
				}
			}
		}
	}
}

// TestSolveBatchExactStrategy: StrategyExact skips the polynomial
// specialists in the batch exactly as it does everywhere.
func TestSolveBatchExactStrategy(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	jobs := batchJobs(rng, 100)
	v := NewVerifier(solver.WithStrategy(solver.StrategyExact))
	for i, br := range v.SolveBatch(context.Background(), jobs) {
		if br.Err != nil {
			t.Fatalf("job %d: %v", i, br.Err)
		}
		if br.Result.Algorithm != "general-search" {
			t.Fatalf("job %d: exact batch used %q", i, br.Result.Algorithm)
		}
		want, err := v.Solve(context.Background(), jobs[i].Exec, jobs[i].Addr)
		if err != nil {
			t.Fatal(err)
		}
		if br.Result.Coherent != want.Coherent {
			t.Fatalf("job %d: verdict mismatch", i)
		}
	}
}

// TestSolveBatchFallbackStrategies: the non-pooled strategies fall back
// to per-job SolveAddr and still return correct verdicts.
func TestSolveBatchFallbackStrategies(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	jobs := batchJobs(rng, 60)
	for _, strat := range []solver.Strategy{solver.StrategyPortfolio, solver.StrategyResilient, solver.StrategyFast} {
		v := NewVerifier(solver.WithStrategy(strat))
		auto := NewVerifier()
		for i, br := range v.SolveBatch(context.Background(), jobs) {
			if br.Err != nil {
				t.Fatalf("%v job %d: %v", strat, i, br.Err)
			}
			want, err := auto.Solve(context.Background(), jobs[i].Exec, jobs[i].Addr)
			if err != nil {
				t.Fatal(err)
			}
			if br.Result.Decided && br.Result.Coherent != want.Coherent {
				t.Fatalf("%v job %d: verdict mismatch: %v vs %v", strat, i, br.Result.Coherent, want.Coherent)
			}
		}
	}
}

// TestSolveBatchValidationError: one invalid execution fails its own
// jobs only; sibling jobs over valid executions still decide.
func TestSolveBatchValidationError(t *testing.T) {
	good, _ := randomCoherentTrace(rand.New(rand.NewSource(1)), 2, 3, 2)
	bad := &memory.Execution{Histories: []memory.History{{memory.Op{Kind: memory.Kind(99), Addr: 0}}}}
	jobs := []BatchJob{
		{Exec: good, Addr: 0},
		{Exec: bad, Addr: 0},
		{Exec: good, Addr: 0},
	}
	res := NewVerifier().SolveBatch(context.Background(), jobs)
	if res[0].Err != nil || res[2].Err != nil {
		t.Fatalf("valid jobs failed: %v / %v", res[0].Err, res[2].Err)
	}
	if !res[0].Result.Coherent || !res[2].Result.Coherent {
		t.Fatal("valid jobs judged incoherent")
	}
	if res[1].Err == nil {
		t.Fatal("invalid execution's job did not fail")
	}
}

// TestSolveBatchCancellation: a dead context marks remaining jobs with a
// Canceled budget error instead of fabricating verdicts.
func TestSolveBatchCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	jobs := batchJobs(rng, 50)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for i, br := range NewVerifier().SolveBatch(ctx, jobs) {
		if br.Err == nil {
			t.Fatalf("job %d: verdict from a cancelled batch", i)
		}
		if be, ok := solver.AsBudgetError(br.Err); !ok || be.Reason != solver.Canceled {
			t.Fatalf("job %d: got %v, want Canceled", i, br.Err)
		}
	}
}

// TestSolveBatchBudget: a tiny state budget trips on hard jobs in the
// batch exactly as it does in the loop, with the error carried per job.
func TestSolveBatchBudget(t *testing.T) {
	hard := hardIncoherentExec(3, 6)
	easy := &memory.Execution{Histories: []memory.History{{memory.W(0, 1)}, {memory.R(0, 1)}}}
	jobs := []BatchJob{{Exec: easy, Addr: 0}, {Exec: hard, Addr: 0}, {Exec: easy, Addr: 0}}
	v := NewVerifier(solver.WithBudget(solver.WithMaxStates(50)), solver.WithStrategy(solver.StrategyExact))
	res := v.SolveBatch(context.Background(), jobs)
	if res[0].Err != nil || res[2].Err != nil {
		t.Fatalf("easy jobs failed: %v / %v", res[0].Err, res[2].Err)
	}
	be, ok := solver.AsBudgetError(res[1].Err)
	if !ok {
		t.Fatalf("hard job: got %v, want budget error", res[1].Err)
	}
	if be.Reason != solver.ExceededStates {
		t.Fatalf("hard job: reason=%v", be.Reason)
	}
}

// TestSolveBatchIdentityProjection: single-address executions take the
// zero-copy identity path; refs in the certificate must still be valid
// refs into the original execution.
func TestSolveBatchIdentityProjection(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 50; trial++ {
		exec, _ := randomCoherentTrace(rng, 3, 5, 2)
		res := NewVerifier().SolveBatch(context.Background(), []BatchJob{{Exec: exec, Addr: 0}})
		if res[0].Err != nil {
			t.Fatal(res[0].Err)
		}
		if !res[0].Result.Coherent {
			t.Fatalf("trial %d: coherent trace judged incoherent", trial)
		}
		if err := memory.CheckCoherent(exec, 0, res[0].Result.Schedule); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

// TestSolveBatchReport: the AddrReport conversion preserves verdicts.
func TestSolveBatchReport(t *testing.T) {
	exec, _ := randomCoherentTrace(rand.New(rand.NewSource(53)), 2, 4, 2)
	res := NewVerifier().SolveBatch(context.Background(), []BatchJob{{Exec: exec, Addr: 0}})
	ar := res[0].Report(0)
	if ar.Verdict != VerdictCoherent || ar.Result == nil || !ar.Result.Coherent {
		t.Fatalf("bad report: %+v", ar)
	}
	undecided := BatchResult{Result: Result{Decided: false, Algorithm: "resilient-unknown"}}
	if ar := undecided.Report(3); ar.Verdict != VerdictUnknown || ar.Result != nil {
		t.Fatalf("undecided report: %+v", ar)
	}
}

// BenchmarkSolveBatchVsLoop measures the batch driver against a loop of
// Verifier.Solve over the same jobs — the PR 10 throughput claim in
// miniature (cmd/bench -psearch measures the full version).
func BenchmarkSolveBatchVsLoop(b *testing.B) {
	rng := rand.New(rand.NewSource(61))
	jobs := batchJobs(rng, 256)
	v := NewVerifier()
	b.Run("loop", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, j := range jobs {
				if _, err := v.Solve(context.Background(), j.Exec, j.Addr); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res := v.SolveBatch(context.Background(), jobs)
			for j := range res {
				if res[j].Err != nil {
					b.Fatal(res[j].Err)
				}
			}
		}
	})
}
