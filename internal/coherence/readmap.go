package coherence

import (
	"context"
	"fmt"
	"sync"
	"time"

	"memverify/internal/memory"
	"memverify/internal/solver"
)

// SolveReadMap decides VMC in linear time for instances in which every
// data value is written at most once, so the read-map (which write each
// read observes) is forced (Figure 5.3, "1 Write/Value" row; the result
// follows from Gibbons & Korach).
//
// The algorithm groups operations into clusters, one per written value
// plus one for the initial value: in any coherent schedule the operations
// of a cluster are contiguous (the write followed by its reads, before
// the next write). Read-modify-writes fuse clusters into chains — an
// RMW(d_r, d_w) is the head of d_w's cluster and must immediately follow
// d_r's cluster, so both live in one chain. Coherence then reduces to
// topologically ordering the chain graph induced by program order.
//
// An error is returned if some value is written twice, or in the
// ambiguous corner where the declared initial value is also written and
// observed by some read (then the read-map is not forced; use Solve).
func SolveReadMap(ctx context.Context, exec *memory.Execution, addr memory.Addr) (r *Result, err error) {
	if err := exec.Validate(); err != nil {
		return nil, err
	}
	if e := solver.Interrupted(ctx); e != nil {
		return nil, withAddr(e, addr)
	}
	sp, ctx := beginSolve(ctx, "read-map", addr)
	defer func() { endSolve(ctx, sp, r, err) }()
	start := time.Now()
	inst := project(exec, addr)
	if max := inst.maxWritesPerValue(); max > 1 {
		return nil, fmt.Errorf("coherence: some value is written %d times; the read-map algorithm requires at most one write per value", max)
	}
	r, ok := readMapInstance(inst)
	if !ok {
		return nil, fmt.Errorf("coherence: the read-map for address %d is not forced (initial-value ambiguity); use the general solver", addr)
	}
	r.Stats.Duration = time.Since(start)
	return r, nil
}

// readMapScratch holds every buffer the cluster-chain algorithm needs.
// The algorithm is linear-time, so on litmus-sized instances its
// per-call allocations used to cost more than the traversal itself;
// pooling them makes a read-map solve allocation-free except for the
// returned Result and certificate.
type readMapScratch struct {
	writeCluster map[memory.Value]int
	headRef      []memory.Ref
	headOp       []memory.Op
	chainNext    []int
	chainPrev    []int
	chainOf      []int
	segOf        []int
	chainHead    []int // chain id -> head cluster
	// Per-(cluster, process) read lists as linked lists through
	// readsNext, so collecting reads costs zero allocations: readsRef[i]
	// is the i-th read encountered, readsNext[i] the next read of the
	// same (cluster, process) bucket.
	readsHead []int32
	readsTail []int32
	readsNext []int32
	readsRef  []memory.Ref
	adj      [][]int
	indeg    []int
	edgeSeen map[[2]int]bool
	topo     []int
	sched    []memory.Ref
}

var readMapPool = sync.Pool{New: func() any {
	return &readMapScratch{
		writeCluster: make(map[memory.Value]int),
		edgeSeen:     make(map[[2]int]bool),
	}
}}

// readMapInstance runs the cluster-chain algorithm. ok is false only in
// the ambiguous initial-value corner described on SolveReadMap, or when a
// value is written more than once (callers check first).
func readMapInstance(inst *instance) (r *Result, ok bool) {
	sc := readMapPool.Get().(*readMapScratch)
	r, ok = sc.run(inst)
	readMapPool.Put(sc)
	stampOps(r, inst)
	return r, ok
}

// run is the cluster-chain algorithm proper, on pooled state.
func (sc *readMapScratch) run(inst *instance) (r *Result, ok bool) {
	incoherent := &Result{Coherent: false, Decided: true, Algorithm: "read-map"}

	// Cluster 0 is the initial-value cluster; each written value d gets
	// cluster writeCluster[d] >= 1 whose head is the op writing d.
	const initCluster = 0
	writeCluster := sc.writeCluster
	clear(writeCluster)
	headRef := append(sc.headRef[:0], memory.Ref{}) // indexed by cluster; slot 0 unused
	headOp := append(sc.headOp[:0], memory.Op{})
	next := 1
	for p, h := range inst.hist {
		for i, o := range h {
			if d, ok := o.Writes(); ok {
				if _, dup := writeCluster[d]; dup {
					sc.headRef, sc.headOp = headRef, headOp
					return incoherent, false
				}
				writeCluster[d] = next
				headRef = append(headRef, memory.Ref{Proc: p, Index: i})
				headOp = append(headOp, o)
				next++
			}
		}
	}
	sc.headRef, sc.headOp = headRef, headOp

	// Ambiguity checks — cases where the read-map is not actually forced:
	//  1. the declared initial value is also written and observed by some
	//     read (the read could map to either source);
	//  2. no initial value is declared and a read of a written value has
	//     no write earlier in its own history (the read could instead
	//     bind the initial value and be scheduled before all writes).
	if inst.init != nil {
		if _, written := writeCluster[*inst.init]; written {
			for _, h := range inst.hist {
				for _, o := range h {
					if d, ok := o.Reads(); ok && d == *inst.init {
						return nil, false
					}
				}
			}
		}
	} else {
		for _, h := range inst.hist {
			for _, o := range h {
				if d, ok := o.Reads(); ok {
					if _, written := writeCluster[d]; written {
						return nil, false
					}
				}
				if _, ok := o.Writes(); ok {
					break // later reads have a write before them
				}
			}
		}
	}

	initBound := false
	var initValue memory.Value
	if inst.init != nil {
		initBound, initValue = true, *inst.init
	}

	// readClusterOf maps an observed value to its source cluster,
	// handling initial-value binding. The bool is false on incoherence.
	readClusterOf := func(d memory.Value) (int, bool) {
		if c, ok := writeCluster[d]; ok {
			return c, true
		}
		if initBound {
			if d != initValue {
				return 0, false
			}
		} else {
			initBound, initValue = true, d
		}
		return initCluster, true
	}

	// Chain fusion: an RMW heading cluster c reads the value of cluster
	// src, so src must immediately precede c. chainNext/chainPrev record
	// the fusion; a second consumer of the same cluster is incoherent.
	chainNext := growSlice(sc.chainNext, next)
	chainPrev := growSlice(sc.chainPrev, next)
	sc.chainNext, sc.chainPrev = chainNext, chainPrev
	for c := range chainNext {
		chainNext[c], chainPrev[c] = -1, -1
	}
	for c := 1; c < next; c++ {
		o := headOp[c]
		if o.Kind != memory.ReadModifyWrite {
			continue
		}
		src, ok := readClusterOf(o.Data)
		if !ok {
			return incoherent, true
		}
		if src == c {
			// RMW reads the value it writes; with unique writes this is
			// only coherent if... it would have to follow itself.
			return incoherent, true
		}
		if chainNext[src] != -1 || chainPrev[c] != -1 {
			return incoherent, true
		}
		chainNext[src] = c
		chainPrev[c] = src
	}

	// Detect chain cycles and assign (chain, segment) coordinates.
	chainOf := growSlice(sc.chainOf, next)
	segOf := growSlice(sc.segOf, next)
	sc.chainOf, sc.segOf = chainOf, segOf
	for c := range chainOf {
		chainOf[c] = -1
	}
	chainHead := sc.chainHead[:0] // chain id -> head cluster
	for c := 0; c < next; c++ {
		if chainPrev[c] != -1 {
			continue // not a chain head
		}
		id := len(chainHead)
		chainHead = append(chainHead, c)
		seg := 0
		for cur := c; cur != -1; cur = chainNext[cur] {
			chainOf[cur] = id
			segOf[cur] = seg
			seg++
		}
	}
	sc.chainHead = chainHead
	for c := 0; c < next; c++ {
		if chainOf[c] == -1 {
			return incoherent, true // cluster trapped in a chain cycle
		}
	}

	// Per-cluster reads, grouped by process to preserve program order:
	// linked lists through readsNext, bucketed by cluster*np + process.
	np := len(inst.hist)
	readsHead := growSlice(sc.readsHead, next*np)
	readsTail := growSlice(sc.readsTail, next*np)
	sc.readsNext = sc.readsNext[:0]
	sc.readsRef = sc.readsRef[:0]
	sc.readsHead, sc.readsTail = readsHead, readsTail
	for i := range readsHead {
		readsHead[i], readsTail[i] = -1, -1
	}
	addRead := func(c, p int, ref memory.Ref) {
		i := int32(len(sc.readsRef))
		sc.readsRef = append(sc.readsRef, ref)
		sc.readsNext = append(sc.readsNext, -1)
		b := c*np + p
		if readsTail[b] == -1 {
			readsHead[b] = i
		} else {
			sc.readsNext[readsTail[b]] = i
		}
		readsTail[b] = i
	}

	// Chain-level precedence graph + intra-chain position checks.
	// Position of an op inside a chain: (segment, phase) with phase 0 for
	// the segment head and 1 for its reads.
	nchains := len(chainHead)
	adj := growSlice(sc.adj, nchains)
	sc.adj = adj
	for i := range adj {
		adj[i] = adj[i][:0]
	}
	indeg := growSlice(sc.indeg, nchains)
	sc.indeg = indeg
	clear(indeg)
	edgeSeen := sc.edgeSeen
	clear(edgeSeen)
	addEdge := func(a, b int) bool {
		if a == b {
			return true
		}
		k := [2]int{a, b}
		if !edgeSeen[k] {
			edgeSeen[k] = true
			adj[a] = append(adj[a], b)
			indeg[b]++
		}
		return true
	}
	// The initial cluster's chain precedes every other chain.
	initChain := chainOf[initCluster]
	for id := 0; id < nchains; id++ {
		addEdge(initChain, id)
	}

	for p, h := range inst.hist {
		prevChain, prevPos, prevWasHead := -1, 0, false
		for i, o := range h {
			var c int
			var phase int
			if _, isWrite := o.Writes(); isWrite {
				c = writeCluster[mustWriteValue(o)]
				phase = 0
			} else {
				src, ok := readClusterOf(o.Data)
				if !ok {
					return incoherent, true
				}
				c = src
				phase = 1
				addRead(c, p, memory.Ref{Proc: p, Index: i})
			}
			id := chainOf[c]
			pos := segOf[c]*2 + phase
			if prevChain == id {
				// Same chain: program order must be consistent with the
				// fixed intra-chain layout. Two reads of one segment may
				// share a position; a head may not repeat.
				if pos < prevPos || (pos == prevPos && (prevWasHead || phase == 0)) {
					return incoherent, true
				}
			} else if prevChain >= 0 {
				addEdge(prevChain, id)
			}
			prevChain, prevPos, prevWasHead = id, pos, phase == 0
		}
	}

	// Final-value constraint: the final value's cluster must be the last
	// segment of its chain, and that chain must be a sink of the DAG.
	finalChain := -1
	if inst.final != nil && len(writeCluster) > 0 {
		c, ok := writeCluster[*inst.final]
		if !ok {
			return incoherent, true
		}
		if chainNext[c] != -1 {
			return incoherent, true
		}
		id := chainOf[c]
		if len(adj[id]) > 0 {
			return incoherent, true
		}
		finalChain = id
	}
	if inst.final != nil && len(writeCluster) == 0 && initBound && initValue != *inst.final {
		return incoherent, true
	}

	// Topological sort (Kahn), keeping the final chain last. queue and
	// topo share one pooled buffer: Kahn's queue only ever grows at the
	// tail, so the consumed prefix IS the topological order.
	topo := sc.topo[:0]
	for id := 0; id < nchains; id++ {
		if indeg[id] == 0 && id != finalChain {
			topo = append(topo, id)
		}
	}
	for qi := 0; qi < len(topo); qi++ {
		for _, d := range adj[topo[qi]] {
			indeg[d]--
			if indeg[d] == 0 && d != finalChain {
				topo = append(topo, d)
			}
		}
	}
	sc.topo = topo
	if finalChain >= 0 {
		if indeg[finalChain] != 0 {
			return incoherent, true
		}
		topo = append(topo, finalChain)
		sc.topo = topo
	}
	if len(topo) != nchains {
		return incoherent, true // cycle among chains
	}

	// Emit the schedule: chains in topological order; within a chain,
	// each segment head followed by the segment's reads (per process in
	// program order; cross-process order within a segment is free).
	sched := sc.sched[:0]
	for _, id := range topo {
		for c := chainHead[id]; c != -1; c = chainNext[c] {
			if c != initCluster {
				sched = append(sched, headRef[c])
			}
			for p := 0; p < np; p++ {
				for ri := readsHead[c*np+p]; ri != -1; ri = sc.readsNext[ri] {
					sched = append(sched, sc.readsRef[ri])
				}
			}
		}
	}
	sc.sched = sched
	return &Result{
		Coherent:  true,
		Decided:   true,
		Schedule:  inst.translate(sched),
		Algorithm: "read-map",
	}, true
}

// mustWriteValue returns the written value of an op known to write.
// The panic is a true invariant, not input validation: every caller
// filters its refs through Writes() before collecting them, so a
// non-writing op here means the specialist's write indices are corrupt.
func mustWriteValue(o memory.Op) memory.Value {
	d, ok := o.Writes()
	if !ok {
		panic(fmt.Sprintf("coherence: invariant violated: mustWriteValue on non-writing op %v (read-map specialist collected a non-write ref)", o))
	}
	return d
}
