package coherence

import (
	"math/rand"
	"testing"

	"memverify/internal/memory"
)

// multiAddressInstance builds a random execution over several addresses
// with a violation injected into some of them.
func multiAddressInstance(rng *rand.Rand, naddr int) *memory.Execution {
	exec := &memory.Execution{Histories: make([]memory.History, 3)}
	for a := 0; a < naddr; a++ {
		exec.SetInitial(memory.Addr(a), 0)
		cur := memory.Value(0)
		for i := 0; i < 6; i++ {
			p := rng.Intn(3)
			if rng.Intn(2) == 0 {
				v := memory.Value(a*100 + i + 1)
				exec.Histories[p] = append(exec.Histories[p], memory.W(memory.Addr(a), v))
				cur = v
			} else {
				v := cur
				if rng.Intn(8) == 0 {
					v = 9999 // phantom: incoherent address
				}
				exec.Histories[p] = append(exec.Histories[p], memory.R(memory.Addr(a), v))
			}
		}
	}
	return exec
}

func TestParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for i := 0; i < 50; i++ {
		exec := multiAddressInstance(rng, 1+rng.Intn(6))
		serial, err := VerifyExecution(exec, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{0, 1, 2, 8} {
			par, err := VerifyExecutionParallel(exec, nil, workers)
			if err != nil {
				t.Fatal(err)
			}
			if len(par) != len(serial) {
				t.Fatalf("instance %d workers %d: %d results, want %d", i, workers, len(par), len(serial))
			}
			for a, want := range serial {
				got := par[a]
				if got == nil || got.Coherent != want.Coherent || got.Decided != want.Decided {
					t.Fatalf("instance %d workers %d addr %d: got %+v want %+v", i, workers, a, got, want)
				}
				if got.Coherent {
					if err := memory.CheckCoherent(exec, a, got.Schedule); err != nil {
						t.Fatalf("instance %d: invalid parallel certificate: %v", i, err)
					}
				}
			}
		}
	}
}

func TestParallelPropagatesErrors(t *testing.T) {
	bad := memory.NewExecution(memory.History{{Kind: memory.Kind(99), Addr: 0}})
	if _, err := VerifyExecutionParallel(bad, nil, 4); err == nil {
		t.Error("invalid execution accepted")
	}
}

func TestParallelEmptyExecution(t *testing.T) {
	res, err := VerifyExecutionParallel(memory.NewExecution(), nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Errorf("results for addressless execution: %v", res)
	}
}
