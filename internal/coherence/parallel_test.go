package coherence

import (
	"context"
	"math/rand"
	"testing"

	"memverify/internal/memory"
	"memverify/internal/solver"
)

// multiAddressInstance builds a random execution over several addresses
// with a violation injected into some of them.
func multiAddressInstance(rng *rand.Rand, naddr int) *memory.Execution {
	exec := &memory.Execution{Histories: make([]memory.History, 3)}
	for a := 0; a < naddr; a++ {
		exec.SetInitial(memory.Addr(a), 0)
		cur := memory.Value(0)
		for i := 0; i < 6; i++ {
			p := rng.Intn(3)
			if rng.Intn(2) == 0 {
				v := memory.Value(a*100 + i + 1)
				exec.Histories[p] = append(exec.Histories[p], memory.W(memory.Addr(a), v))
				cur = v
			} else {
				v := cur
				if rng.Intn(8) == 0 {
					v = 9999 // phantom: incoherent address
				}
				exec.Histories[p] = append(exec.Histories[p], memory.R(memory.Addr(a), v))
			}
		}
	}
	return exec
}

func TestParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for i := 0; i < 50; i++ {
		exec := multiAddressInstance(rng, 1+rng.Intn(6))
		serial, err := VerifyExecution(context.Background(), exec, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{0, 1, 2, 8} {
			par, err := VerifyExecutionParallel(context.Background(), exec, nil, workers)
			if err != nil {
				t.Fatal(err)
			}
			if len(par) != len(serial) {
				t.Fatalf("instance %d workers %d: %d results, want %d", i, workers, len(par), len(serial))
			}
			for a, want := range serial {
				got := par[a]
				if got == nil || got.Coherent != want.Coherent || got.Decided != want.Decided {
					t.Fatalf("instance %d workers %d addr %d: got %+v want %+v", i, workers, a, got, want)
				}
				if got.Coherent {
					if err := memory.CheckCoherent(exec, a, got.Schedule); err != nil {
						t.Fatalf("instance %d: invalid parallel certificate: %v", i, err)
					}
				}
			}
		}
	}
}

// TestParallelDeterministicUnderBudget is the regression test for the
// old unordered-channel fan-out: when several addresses blow the state
// budget, the reported error (and the partial result map) used to
// depend on goroutine scheduling. Now the error is always the one for
// the lowest-indexed failing address, and earlier successes survive in
// the partial map, regardless of worker count or run.
func TestParallelDeterministicUnderBudget(t *testing.T) {
	// Address 0 has unique write values, so SolveAuto dispatches it to
	// the polynomial read-map algorithm, which ignores the state budget.
	// Addresses 1 and 2 duplicate a write value and need the general
	// search, which trips MaxStates: 1 immediately.
	exec := memory.NewExecution(
		memory.History{memory.W(0, 1), memory.W(1, 5), memory.R(1, 5), memory.W(2, 5), memory.R(2, 5)},
		memory.History{memory.R(0, 1), memory.W(1, 5), memory.R(1, 5), memory.W(2, 5), memory.R(2, 5)},
	).SetInitial(0, 0).SetInitial(1, 0).SetInitial(2, 0)
	opts := &Options{MaxStates: 1}

	for rep := 0; rep < 30; rep++ {
		for _, workers := range []int{2, 3, 8} {
			partial, err := VerifyExecutionParallel(context.Background(), exec, opts, workers)
			if err == nil {
				t.Fatalf("rep %d workers %d: budget of 1 state did not trip", rep, workers)
			}
			be, ok := solver.AsBudgetError(err)
			if !ok {
				t.Fatalf("rep %d workers %d: error is not a budget error: %v", rep, workers, err)
			}
			if !be.HasAddr || be.Addr != 1 {
				t.Fatalf("rep %d workers %d: error for address %d (hasAddr=%v), want the lowest failing address 1",
					rep, workers, be.Addr, be.HasAddr)
			}
			if res := partial[0]; res == nil || !res.Coherent {
				t.Fatalf("rep %d workers %d: address 0 success missing from partial map: %+v", rep, workers, partial)
			}
			if len(partial) != 1 {
				t.Fatalf("rep %d workers %d: partial map %v, want only address 0", rep, workers, partial)
			}
		}
	}
}

func TestParallelPropagatesErrors(t *testing.T) {
	bad := memory.NewExecution(memory.History{{Kind: memory.Kind(99), Addr: 0}})
	if _, err := VerifyExecutionParallel(context.Background(), bad, nil, 4); err == nil {
		t.Error("invalid execution accepted")
	}
}

func TestParallelEmptyExecution(t *testing.T) {
	res, err := VerifyExecutionParallel(context.Background(), memory.NewExecution(), nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Errorf("results for addressless execution: %v", res)
	}
}

// TestHardnessOrder: dispatch order is by projection size descending,
// ties broken by address ascending — a deterministic LPT schedule.
func TestHardnessOrder(t *testing.T) {
	exec := memory.NewExecution(
		memory.History{memory.W(2, 1), memory.W(2, 2), memory.W(2, 3), memory.W(0, 1), memory.W(0, 2)},
		memory.History{memory.W(2, 4), memory.W(1, 1), memory.W(3, 1), memory.W(3, 2)},
	)
	addrs := exec.Addresses() // [0 1 2 3], sizes 2,1,4,2
	order := hardnessOrder(addrs, projectionSizes(exec))
	got := make([]memory.Addr, len(order))
	for i, idx := range order {
		got[i] = addrs[idx]
	}
	want := []memory.Addr{2, 0, 3, 1} // size 4, then the size-2 tie by address, then size 1
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("hardness order = %v, want %v", got, want)
		}
	}
}

// TestParallelLoadBalanceDeterministic is the load-balance satellite:
// on a trace whose addresses differ sharply in hardness (projection
// size), the largest-first dispatch must change only scheduling, never
// results — every worker count, repeated runs, and the serial loop all
// agree on verdicts, certificates, and state counts.
func TestParallelLoadBalanceDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(85))
	// Mixed-hardness execution: address a gets ~6·(a+1) ops, so the
	// heaviest projection is several times the lightest, plus injected
	// incoherence on some addresses (from multiAddressInstance's phantom
	// reads at the widest address set).
	exec := &memory.Execution{Histories: make([]memory.History, 3)}
	for a := 0; a < 5; a++ {
		exec.SetInitial(memory.Addr(a), 0)
		cur := memory.Value(0)
		for i := 0; i < 6*(a+1); i++ {
			p := rng.Intn(3)
			if rng.Intn(2) == 0 {
				v := memory.Value(a*1000 + i + 1)
				exec.Histories[p] = append(exec.Histories[p], memory.W(memory.Addr(a), v))
				cur = v
			} else {
				v := cur
				if a == 1 && i == 5 {
					v = 9999 // phantom: address 1 is incoherent
				}
				exec.Histories[p] = append(exec.Histories[p], memory.R(memory.Addr(a), v))
			}
		}
	}
	serial, err := VerifyExecution(context.Background(), exec, nil)
	if err != nil {
		t.Fatal(err)
	}
	for rep := 0; rep < 10; rep++ {
		for _, workers := range []int{2, 3, 5, 8} {
			par, err := VerifyExecutionParallel(context.Background(), exec, nil, workers)
			if err != nil {
				t.Fatal(err)
			}
			if len(par) != len(serial) {
				t.Fatalf("rep %d workers %d: %d results, want %d", rep, workers, len(par), len(serial))
			}
			for a, want := range serial {
				got := par[a]
				if got == nil || got.Coherent != want.Coherent {
					t.Fatalf("rep %d workers %d addr %d: got %+v want %+v", rep, workers, a, got, want)
				}
				if got.Stats.States != want.Stats.States {
					t.Fatalf("rep %d workers %d addr %d: %d states parallel vs %d serial — dispatch order leaked into the search",
						rep, workers, a, got.Stats.States, want.Stats.States)
				}
				if got.Coherent {
					if err := memory.CheckCoherent(exec, a, got.Schedule); err != nil {
						t.Fatalf("rep %d workers %d addr %d: bad certificate: %v", rep, workers, a, err)
					}
				}
			}
		}
	}
}
