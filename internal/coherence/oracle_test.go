package coherence

import (
	"math/rand"

	"memverify/internal/memory"
)

// bruteForceCoherent is a test oracle: it enumerates every interleaving
// of the operations of exec at addr and checks each with
// memory.CheckCoherent. Exponential; only for tiny instances.
func bruteForceCoherent(exec *memory.Execution, addr memory.Addr) (bool, memory.Schedule) {
	proj, back := exec.Project(addr)
	pos := make([]int, len(proj.Histories))
	var sched memory.Schedule
	var try func() (bool, memory.Schedule)
	try = func() (bool, memory.Schedule) {
		done := true
		for h := range proj.Histories {
			if pos[h] < len(proj.Histories[h]) {
				done = false
				break
			}
		}
		if done {
			orig := make(memory.Schedule, len(sched))
			for i, r := range sched {
				orig[i] = back[r]
			}
			if memory.CheckCoherent(exec, addr, orig) == nil {
				return true, orig
			}
			return false, nil
		}
		for h := range proj.Histories {
			if pos[h] >= len(proj.Histories[h]) {
				continue
			}
			sched = append(sched, memory.Ref{Proc: h, Index: pos[h]})
			pos[h]++
			if ok, s := try(); ok {
				return true, s
			}
			pos[h]--
			sched = sched[:len(sched)-1]
		}
		return false, nil
	}
	return try()
}

// randomInstance generates a small random single-address execution for
// cross-checking solvers against the brute-force oracle. Roughly half of
// the generated instances are coherent.
func randomInstance(rng *rand.Rand) *memory.Execution {
	nproc := 1 + rng.Intn(3)
	nvals := 1 + rng.Intn(3)
	exec := &memory.Execution{}
	for p := 0; p < nproc; p++ {
		nops := rng.Intn(4)
		var h memory.History
		for i := 0; i < nops; i++ {
			v := memory.Value(rng.Intn(nvals))
			switch rng.Intn(3) {
			case 0:
				h = append(h, memory.R(0, v))
			case 1:
				h = append(h, memory.W(0, v))
			default:
				h = append(h, memory.RW(0, v, memory.Value(rng.Intn(nvals))))
			}
		}
		exec.Histories = append(exec.Histories, h)
		_ = p
	}
	if rng.Intn(2) == 0 {
		exec.SetInitial(0, memory.Value(rng.Intn(nvals)))
	}
	if rng.Intn(4) == 0 {
		exec.SetFinal(0, memory.Value(rng.Intn(nvals)))
	}
	return exec
}

// randomCoherentTrace generates an execution that is coherent by
// construction: it simulates an atomic memory cell and logs each
// process's operations with the values actually observed. writeOrder
// receives the global order of writing operations.
func randomCoherentTrace(rng *rand.Rand, nproc, opsPerProc, nvals int) (*memory.Execution, []memory.Ref) {
	exec := &memory.Execution{Histories: make([]memory.History, nproc)}
	cur := memory.Value(rng.Intn(nvals))
	exec.SetInitial(0, cur)
	var order []memory.Ref
	remaining := make([]int, nproc)
	for p := range remaining {
		remaining[p] = opsPerProc
	}
	total := nproc * opsPerProc
	for done := 0; done < total; {
		p := rng.Intn(nproc)
		if remaining[p] == 0 {
			continue
		}
		remaining[p]--
		done++
		ref := memory.Ref{Proc: p, Index: len(exec.Histories[p])}
		switch rng.Intn(3) {
		case 0:
			exec.Histories[p] = append(exec.Histories[p], memory.R(0, cur))
		case 1:
			v := memory.Value(rng.Intn(nvals))
			exec.Histories[p] = append(exec.Histories[p], memory.W(0, v))
			cur = v
			order = append(order, ref)
		default:
			v := memory.Value(rng.Intn(nvals))
			exec.Histories[p] = append(exec.Histories[p], memory.RW(0, cur, v))
			cur = v
			order = append(order, ref)
		}
	}
	exec.SetFinal(0, cur)
	return exec, order
}
