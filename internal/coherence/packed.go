package coherence

import (
	"encoding/binary"
	"math/bits"
	"slices"

	"memverify/internal/memory"
)

// The general search is bounded by the number of distinct states it
// memoizes — O(n^k · |D|), the paper's Section 5 constant-process bound —
// so the memo table is the hot path. A search state is (position vector,
// current-value binding); for every instance whose positions and value
// index fit in 63 bits (all of the paper's figures, and any realistic
// constant-process trace), the state packs into a single uint64 and the
// memo table becomes an open-addressing uint64 set with no per-state
// allocation. Instances that overflow the layout fall back transparently
// to the varint-string memo map (see searcher.key).

// packedLayoutBits caps the layout at 63 bits so the packedSet slot
// encoding (key+1, zero = empty) can never wrap.
const packedLayoutBits = 63

// packedLayout is the per-instance bit layout of a packed state key:
// one position field per history (wide enough for 0..len(hist)), then
// the current-value index, then one bound flag bit. The value index is
// a sorted slice searched with valIndex, not a map: layouts are built
// once per solve, and for the small instances the portfolio dispatches
// directly a map's construction cost is visible next to the search
// itself.
type packedLayout struct {
	posShift []uint8
	posBits  []uint8
	valShift uint8
	valBits  uint8
	boundBit uint8
	vals     []memory.Value // value index -> value; sorted ascending
}

// valIndex returns the index of d in the sorted value table.
func (l *packedLayout) valIndex(d memory.Value) (uint64, bool) {
	lo, hi := 0, len(l.vals)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if l.vals[mid] < d {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(l.vals) && l.vals[lo] == d {
		return uint64(lo), true
	}
	return 0, false
}

// layoutFor builds the packed layout for inst, or nil when the instance
// needs more than packedLayoutBits bits (the caller then keeps the
// string-key memo).
func layoutFor(inst *instance) *packedLayout {
	l := &packedLayout{}
	if !l.build(inst) {
		return nil
	}
	return l
}

// build (re)computes the layout for inst in place, reusing l's slices —
// the allocation-free form used by the pooled batch driver. It reports
// false when the instance overflows packedLayoutBits (the caller then
// keeps the string-key memo); l is unusable in that case.
func (l *packedLayout) build(inst *instance) bool {
	if cap(l.posShift) >= len(inst.hist) {
		l.posShift = l.posShift[:len(inst.hist)]
		l.posBits = l.posBits[:len(inst.hist)]
	} else {
		l.posShift = make([]uint8, len(inst.hist))
		l.posBits = make([]uint8, len(inst.hist))
	}
	l.vals = l.vals[:0]
	if inst.init != nil {
		l.vals = append(l.vals, *inst.init)
	}
	for _, h := range inst.hist {
		for _, o := range h {
			if d, ok := o.Reads(); ok {
				l.vals = append(l.vals, d)
			}
			if d, ok := o.Writes(); ok {
				l.vals = append(l.vals, d)
			}
		}
	}
	slices.Sort(l.vals)
	l.vals = slices.Compact(l.vals)
	shift := 0
	for i, h := range inst.hist {
		nb := bits.Len(uint(len(h)))
		if shift+nb > packedLayoutBits {
			return false
		}
		l.posShift[i] = uint8(shift)
		l.posBits[i] = uint8(nb)
		shift += nb
	}
	vb := 0
	if len(l.vals) > 1 {
		vb = bits.Len(uint(len(l.vals) - 1))
	}
	if shift+vb+1 > packedLayoutBits {
		return false
	}
	l.valShift = uint8(shift)
	l.valBits = uint8(vb)
	l.boundBit = uint8(shift + vb)
	return true
}

// bitsUsed returns the total number of key bits the layout occupies
// (positions + value index + bound flag). The concurrent memo set needs
// one spare bit above the key for its claim flag, so the parallel
// search requires bitsUsed() < packedLayoutBits.
func (l *packedLayout) bitsUsed() int { return int(l.boundBit) + 1 }

// pack encodes a search state into its packed key.
func (l *packedLayout) pack(pos []int, cur memory.Value, bound bool) uint64 {
	k := uint64(0)
	for i, p := range pos {
		k |= uint64(p) << l.posShift[i]
	}
	if bound {
		idx, _ := l.valIndex(cur)
		k |= 1<<l.boundBit | idx<<l.valShift
	}
	return k
}

// appendStringKey decodes a packed key into the exact byte form
// searcher.key produces for the same state, appending to buf. Keeping
// the two forms byte-identical is what makes checkpoints written by a
// packed search readable by a string-memo search and vice versa.
func (l *packedLayout) appendStringKey(buf []byte, k uint64) []byte {
	for i := range l.posBits {
		p := (k >> l.posShift[i]) & (1<<l.posBits[i] - 1)
		buf = binary.AppendUvarint(buf, p)
	}
	if k&(1<<l.boundBit) != 0 {
		idx := (k >> l.valShift) & (1<<l.valBits - 1)
		buf = append(buf, 1)
		buf = binary.AppendVarint(buf, int64(l.vals[idx]))
	} else {
		buf = append(buf, 0)
	}
	return buf
}

// parseStringKey re-packs a varint string memo key (resume seeding). A
// key that does not parse against this layout — corrupted, or shaped
// for a different instance — reports ok=false; dropping it only loses
// pruning, never soundness.
func (l *packedLayout) parseStringKey(key string) (uint64, bool) {
	b := []byte(key)
	k := uint64(0)
	for i := range l.posBits {
		p, n := binary.Uvarint(b)
		if n <= 0 || p >= 1<<l.posBits[i] {
			return 0, false
		}
		k |= p << l.posShift[i]
		b = b[n:]
	}
	if len(b) == 0 {
		return 0, false
	}
	switch b[0] {
	case 0:
		b = b[1:]
	case 1:
		v, n := binary.Varint(b[1:])
		if n <= 0 {
			return 0, false
		}
		idx, ok := l.valIndex(memory.Value(v))
		if !ok {
			return 0, false
		}
		b = b[1+n:]
		k |= 1<<l.boundBit | idx<<l.valShift
	default:
		return 0, false
	}
	if len(b) != 0 {
		return 0, false
	}
	return k, true
}

// packedSetMinSlots is the initial (and pooled-reset) table size.
const packedSetMinSlots = 1024

// packedSetMinBatchSlots is the smallest table resetSized will produce:
// the batch driver's floor for tiny instances.
const packedSetMinBatchSlots = 64

// packedSetMaxRetainSlots bounds the table a pooled reset keeps: larger
// tables are dropped so a small solve after a huge one does not pay a
// multi-megabyte memset.
const packedSetMaxRetainSlots = 1 << 16

// packedSet is an open-addressing (linear probing) hash set of packed
// state keys. Slots store key+1 so the zero slot means empty — legal
// because layouts are capped at 63 bits. Lookups and inserts allocate
// nothing; growth doubles the table at 3/4 load.
type packedSet struct {
	slots []uint64
	n     int
}

// reset prepares the set for a fresh solve, reusing the table when it is
// small enough to be worth clearing.
func (ps *packedSet) reset() { ps.resetSized(packedSetMinSlots) }

// resetSized is reset with an explicit target table size, rounded up to
// a power of two and clamped to [packedSetMinBatchSlots,
// packedSetMinSlots]. The batch driver passes a size scaled to the
// instance so a burst of tiny solves does not pay a 1024-slot memset
// each. All pooled-reset bookkeeping lives here: the fill count is
// zeroed on every path — including the drop-and-reallocate path — so a
// retained table can never carry a stale count into the next solve.
func (ps *packedSet) resetSized(want int) {
	if want < packedSetMinBatchSlots {
		want = packedSetMinBatchSlots
	}
	if want > packedSetMinSlots {
		want = packedSetMinSlots
	}
	want = 1 << bits.Len(uint(want-1)) // next power of two
	ps.n = 0
	switch {
	case ps.slots == nil || len(ps.slots) > packedSetMaxRetainSlots:
		// Fresh table, or the previous solve grew past the retain bound:
		// reallocate at the requested size rather than memset megabytes.
		ps.slots = make([]uint64, want)
	case len(ps.slots) < want:
		ps.slots = make([]uint64, want)
	default:
		clear(ps.slots)
	}
}

// mixKey is splitmix64's finalizer: packed keys are near-sequential in
// their low bits, so they need a full-avalanche scramble before masking.
func mixKey(k uint64) uint64 {
	k ^= k >> 30
	k *= 0xbf58476d1ce4e5b9
	k ^= k >> 27
	k *= 0x94d049bb133111eb
	k ^= k >> 31
	return k
}

func (ps *packedSet) contains(k uint64) bool {
	mask := uint64(len(ps.slots) - 1)
	for i := mixKey(k) & mask; ; i = (i + 1) & mask {
		switch ps.slots[i] {
		case 0:
			return false
		case k + 1:
			return true
		}
	}
}

func (ps *packedSet) add(k uint64) {
	if 4*(ps.n+1) > 3*len(ps.slots) {
		ps.grow()
	}
	mask := uint64(len(ps.slots) - 1)
	for i := mixKey(k) & mask; ; i = (i + 1) & mask {
		switch ps.slots[i] {
		case 0:
			ps.slots[i] = k + 1
			ps.n++
			return
		case k + 1:
			return
		}
	}
}

func (ps *packedSet) grow() {
	old := ps.slots
	ps.slots = make([]uint64, 2*len(old))
	mask := uint64(len(ps.slots) - 1)
	for _, s := range old {
		if s == 0 {
			continue
		}
		for i := mixKey(s-1) & mask; ; i = (i + 1) & mask {
			if ps.slots[i] == 0 {
				ps.slots[i] = s
				break
			}
		}
	}
}

// size returns the number of keys in the set.
func (ps *packedSet) size() int { return ps.n }

// each calls f for every key in the set, in table order.
func (ps *packedSet) each(f func(uint64)) {
	for _, s := range ps.slots {
		if s != 0 {
			f(s - 1)
		}
	}
}
