package coherence

// The polynomial fast-path frontline.
//
// VMC is NP-Complete (Theorem 4.2), but industrial post-silicon flows
// verify million-operation traces anyway: a sound polynomial
// constraint-propagation pass (in the style of Roy et al.'s vector-clock
// checker) decides the overwhelmingly common structured instances and
// escalates only the genuinely ambiguous remainder to the exact search.
// This file implements that frontline over a single-address projection:
//
//   - Every writing operation becomes a node ("block") of a constraint
//     graph; the implicit pre-write region plays the role of a virtual
//     block 0 and is handled by candidate rules rather than a node.
//   - Each read gets the exhaustive set of candidate source writers
//     (the writers of its value, minus ones provably impossible from
//     program order alone), plus possibly the initial region.
//   - Determined reads (a single candidate) induce NECESSARY ordering
//     edges between blocks: program order chains the writers of one
//     history; a read pins its nearest preceding writer before its
//     source and its source before its nearest following writer.
//   - Vector clocks over the edge set expose which blocks precede which
//     in every linear extension; that relation prunes candidates of the
//     still-floating reads, which may determine more reads — repeat to
//     a (bounded) fixpoint.
//
// Every edge is necessary — it holds in every coherent schedule — so a
// cycle is a sound REJECT. For ACCEPT the frontline never trusts its
// own reasoning: it derives a concrete write order (a deterministic
// topological sort), hands it to the complete §5.2 placement algorithm
// (writeOrderInstance), and the resulting certificate schedule is
// re-validated by memory.CheckCoherent before being reported. If
// placement fails and the edge set admitted exactly one linear
// extension, that order was the only possible one, so failure is again
// a sound REJECT; otherwise the frontline answers INCONCLUSIVE and the
// caller escalates. INCONCLUSIVE is an explicit "I don't know", never a
// guess — the frontline can only ever be wrong by being slow.

import (
	"context"
	"fmt"
	"time"

	"memverify/internal/memory"
	"memverify/internal/obs"
	"memverify/internal/solver"
)

// fastVerdict is the three-valued outcome of the frontline.
type fastVerdict int

const (
	// fastInconclusive: the constraints neither forced a verdict nor a
	// unique write order; the caller must escalate to a complete solver.
	fastInconclusive fastVerdict = iota
	// fastAccept: a coherent schedule was constructed and validated.
	fastAccept
	// fastReject: a necessary ordering constraint is unsatisfiable.
	fastReject
)

// String names the verdict for spans and test output.
func (v fastVerdict) String() string {
	switch v {
	case fastAccept:
		return "accept"
	case fastReject:
		return "reject"
	case fastInconclusive:
		return "inconclusive"
	}
	return fmt.Sprintf("fastVerdict(%d)", int(v))
}

const (
	// fastMaxCands caps the tracked candidate set of one read. A read
	// whose value has more writers is left untracked (it never
	// determines, contributing no edges); placement still handles it, so
	// the cap trades completeness of the propagation for a hard bound on
	// memory: total tracked candidates ≤ fastMaxCands·reads.
	fastMaxCands = 64
	// fastMaxRounds bounds the prune/propagate fixpoint iterations. Each
	// round is O(n + E·k); instances that have not converged by then are
	// escalated rather than chased.
	fastMaxRounds = 4
	// fastMaxClockCells caps the writers×processes vector-clock table
	// (int32 cells). Beyond it pruning is skipped — huge instances with
	// floating reads escalate instead of allocating gigabytes.
	fastMaxClockCells = 1 << 22
)

// fastOutcome bundles the frontline's answer for one instance.
type fastOutcome struct {
	verdict fastVerdict
	// result is the decided Result (certificate schedule on accept);
	// nil when the verdict is inconclusive.
	result *Result
	// stats records the frontline's own work (States = ops processed).
	stats Stats
	// detail is the human-readable reason: the violated constraint on
	// reject, the escalation cause on inconclusive.
	detail string
}

// fastRead is one read operation (including the read half of an RMW)
// tracked by the checker.
type fastRead struct {
	proc, idx int
	val       memory.Value
	rmw       bool
	// canB0 reports whether the initial region is still a candidate
	// source.
	canB0 bool
	// floating marks a read still tracked with >1 candidates.
	floating bool
	// untracked marks a read whose candidate set blew fastMaxCands; it
	// participates in placement only.
	untracked bool
	// det marks a determined read; src is its source block (-1 = the
	// initial region).
	det   bool
	src   int32
	cands []int32
}

// fastChecker carries the constraint state for one instance.
type fastChecker struct {
	inst *instance
	np   int // processes

	nw      int            // writer blocks
	wref    []memory.Ref   // block -> projection ref
	wProc   []int32        // block -> history index
	wOrd    []int32        // block -> ordinal among its history's writers
	wVal    []memory.Value // block -> value written
	blockAt [][]int32      // per history: op index -> block, -1 for pure reads
	prevW   [][]int32      // per history: nearest writer block strictly before op
	nextW   [][]int32      // per history: nearest writer block strictly after op
	byVal   map[memory.Value][]int32

	reads    []fastRead
	floating int // tracked floating reads

	// Initial-region bookkeeping: with no declared initial value, the
	// first determined initial-region read binds it.
	b0bound bool
	b0val   memory.Value
	// b0rmw is the read index of the RMW pinned to the head of the write
	// order (-1 none): at most one RMW can read the initial value.
	b0rmw int32
	// rmwClaim maps a block to the RMW read determined to read it
	// directly: an RMW must immediately follow its source write, so two
	// claimants refute.
	rmwClaim map[int32]int32

	edges  [][2]int32 // necessary ordering edges between blocks
	reject string     // first sound refutation ("" while none)
}

// fail records the first sound refutation.
func (c *fastChecker) fail(detail string) {
	if c.reject == "" {
		c.reject = detail
	}
}

// newFastChecker indexes the writers of the instance: block ids, the
// per-history program-order chains (as necessary edges), and the
// nearest-writer tables used by the candidate rules.
func newFastChecker(inst *instance) *fastChecker {
	c := &fastChecker{
		inst:     inst,
		np:       len(inst.hist),
		b0rmw:    -1,
		rmwClaim: make(map[int32]int32),
		byVal:    make(map[memory.Value][]int32),
	}
	for h, hist := range inst.hist {
		ba := make([]int32, len(hist))
		ord := int32(0)
		var last int32 = -1
		for i, o := range hist {
			ba[i] = -1
			if d, ok := o.Writes(); ok {
				b := int32(c.nw)
				c.nw++
				c.wref = append(c.wref, memory.Ref{Proc: h, Index: i})
				c.wProc = append(c.wProc, int32(h))
				c.wOrd = append(c.wOrd, ord)
				c.wVal = append(c.wVal, d)
				c.byVal[d] = append(c.byVal[d], b)
				ba[i] = b
				ord++
				if last >= 0 {
					// Program order chains the writers of one history.
					c.edges = append(c.edges, [2]int32{last, b})
				}
				last = b
			}
		}
		c.blockAt = append(c.blockAt, ba)

		pw := make([]int32, len(hist))
		nx := make([]int32, len(hist))
		run := int32(-1)
		for i := range hist {
			pw[i] = run
			if ba[i] >= 0 {
				run = ba[i]
			}
		}
		run = -1
		for i := len(hist) - 1; i >= 0; i-- {
			nx[i] = run
			if ba[i] >= 0 {
				run = ba[i]
			}
		}
		c.prevW = append(c.prevW, pw)
		c.nextW = append(c.nextW, nx)
	}
	return c
}

// collectReads builds the candidate source set of every read and
// immediately determines (or refutes) the forced ones.
//
// Candidates for a read of value v: the writers of v, except
//   - the read's own block (an RMW cannot read its own write), and
//   - same-history writers other than the nearest preceding one: a
//     same-history writer after the read would have to be scheduled
//     before itself, and an earlier-but-not-nearest one is overwritten
//     (in program order, hence in every schedule) before the read runs;
//
// plus the initial region when no same-history write precedes the read
// and the value is compatible with the declared initial value (if any).
func (c *fastChecker) collectReads() {
	for h, hist := range c.inst.hist {
		for i, o := range hist {
			d, ok := o.Reads()
			if !ok {
				continue
			}
			r := fastRead{proc: h, idx: i, val: d, rmw: o.Kind == memory.ReadModifyWrite, src: -1}
			pw := c.prevW[h][i]
			r.canB0 = pw < 0 && (c.inst.init == nil || *c.inst.init == d)
			own := int32(-1)
			if r.rmw {
				own = c.blockAt[h][i]
			}
			writers := c.byVal[d]
			var cands []int32
			for _, w := range writers {
				if w == own {
					continue
				}
				if c.wProc[w] == int32(h) && w != pw {
					continue
				}
				cands = append(cands, w)
				if len(cands) > fastMaxCands {
					break
				}
			}
			ri := len(c.reads)
			switch {
			case len(cands) == 0 && !r.canB0:
				c.reads = append(c.reads, r)
				switch {
				case len(writers) == 0 && c.inst.init != nil && *c.inst.init != d:
					c.fail(fmt.Sprintf("P%d op %d reads %d: never written, initial value is %d", h, i, d, *c.inst.init))
				case len(writers) == 0:
					c.fail(fmt.Sprintf("P%d op %d reads %d: never written, but a write in its history precedes it", h, i, d))
				default:
					c.fail(fmt.Sprintf("P%d op %d reads %d: every write of the value is unreachable from it", h, i, d))
				}
				return
			case len(cands) > fastMaxCands:
				r.untracked = true
				c.reads = append(c.reads, r)
			case len(cands) == 0:
				c.reads = append(c.reads, r)
				c.determine(ri, -1)
			case len(cands) == 1 && !r.canB0:
				c.reads = append(c.reads, r)
				c.determine(ri, cands[0])
			default:
				r.cands = cands
				r.floating = true
				c.floating++
				c.reads = append(c.reads, r)
			}
			if c.reject != "" {
				return
			}
		}
	}
}

// determine fixes read ri's source and applies the resulting necessary
// constraints: edges into the block graph, the initial-region value
// binding, and the RMW adjacency refutations.
func (c *fastChecker) determine(ri int, src int32) {
	r := &c.reads[ri]
	if r.floating {
		r.floating = false
		c.floating--
	}
	r.det, r.src, r.cands = true, src, nil
	h, i := r.proc, r.idx
	pw := c.prevW[h][i]

	if src < 0 { // the initial region
		if pw >= 0 {
			c.fail(fmt.Sprintf("P%d op %d must read the initial value but follows a write in its own history", h, i))
			return
		}
		if c.inst.init == nil {
			if c.b0bound && c.b0val != r.val {
				c.fail(fmt.Sprintf("initial region would need to hold both %d and %d", c.b0val, r.val))
				return
			}
			c.b0bound, c.b0val = true, r.val
		}
		if r.rmw {
			if c.b0rmw >= 0 {
				c.fail("two read-modify-writes both require the first position of the write order")
				return
			}
			c.b0rmw = int32(ri)
		}
		return
	}

	// The read runs inside its source's region: the nearest preceding
	// writer of its history cannot come later, and (for a pure read) the
	// nearest following writer cannot come earlier. For an RMW the
	// following writer is its own block, which must follow the source.
	if pw >= 0 && pw != src {
		c.edges = append(c.edges, [2]int32{pw, src})
	}
	if r.rmw {
		own := c.blockAt[h][i]
		if prev, claimed := c.rmwClaim[src]; claimed && prev != int32(ri) {
			c.fail("two read-modify-writes directly read the same write")
			return
		}
		c.rmwClaim[src] = int32(ri)
		c.edges = append(c.edges, [2]int32{src, own})
	} else if nx := c.nextW[h][i]; nx >= 0 && nx != src {
		c.edges = append(c.edges, [2]int32{src, nx})
	}
}

// int32 min-heap (no container/heap: the hot path stays allocation-lean
// and monomorphic).
func heapPush(h *[]int32, x int32) {
	*h = append(*h, x)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if (*h)[p] <= (*h)[i] {
			break
		}
		(*h)[p], (*h)[i] = (*h)[i], (*h)[p]
		i = p
	}
}

func heapPop(h *[]int32) int32 {
	s := *h
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	s = s[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(s) && s[l] < s[m] {
			m = l
		}
		if r < len(s) && s[r] < s[m] {
			m = r
		}
		if m == i {
			break
		}
		s[i], s[m] = s[m], s[i]
		i = m
	}
	*h = s
	return top
}

// buildCSR converts the edge list to compressed adjacency plus
// in-degrees. Duplicate edges are kept; Kahn's accounting stays
// consistent with them.
func (c *fastChecker) buildCSR() (start, dst, indeg []int32) {
	start = make([]int32, c.nw+1)
	indeg = make([]int32, c.nw)
	for _, e := range c.edges {
		start[e[0]+1]++
		indeg[e[1]]++
	}
	for i := 0; i < c.nw; i++ {
		start[i+1] += start[i]
	}
	dst = make([]int32, len(c.edges))
	fill := append([]int32(nil), start[:c.nw]...)
	for _, e := range c.edges {
		dst[fill[e[0]]] = e[1]
		fill[e[0]]++
	}
	return start, dst, indeg
}

// fastTopo computes a deterministic (lowest-block-first) topological
// order of the necessary-edge graph. acyclic is false when a cycle
// blocks completion; unique reports that the ready set was a singleton
// at every step, i.e. the graph admits exactly one linear extension.
// holdBack (-1 = none) names a block to emit as late as possible — the
// designated final-value writer — without affecting acyclic/unique.
func (c *fastChecker) fastTopo(start, dst, indegIn []int32, holdBack int32) (order []int32, acyclic, unique bool) {
	indeg := append([]int32(nil), indegIn...)
	var h []int32
	for b := c.nw - 1; b >= 0; b-- {
		if indeg[b] == 0 {
			heapPush(&h, int32(b))
		}
	}
	order = make([]int32, 0, c.nw)
	unique = true
	for len(h) > 0 {
		if len(h) > 1 {
			unique = false
		}
		b := heapPop(&h)
		if b == holdBack && len(h) > 0 {
			next := heapPop(&h)
			heapPush(&h, b)
			b = next
		}
		order = append(order, b)
		for j := start[b]; j < start[b+1]; j++ {
			w := dst[j]
			indeg[w]--
			if indeg[w] == 0 {
				heapPush(&h, w)
			}
		}
	}
	return order, len(order) == c.nw, unique
}

// clocks computes the vector-clock table over a topological order:
// vc[b·np+p] is the highest writer ordinal (1-based) of history p known
// to precede-or-equal block b in every linear extension. Because the
// writers of one history are chained by necessary edges, writer u
// precedes block w in every extension iff vc[w][proc(u)] ≥ ord(u)+1
// (and u ≠ w).
func (c *fastChecker) clocks(order []int32, start, dst []int32) []int32 {
	vc := make([]int32, c.nw*c.np)
	for b := 0; b < c.nw; b++ {
		vc[b*c.np+int(c.wProc[b])] = c.wOrd[b] + 1
	}
	for _, b := range order {
		row := vc[int(b)*c.np : int(b+1)*c.np]
		for j := start[b]; j < start[b+1]; j++ {
			w := dst[j]
			wrow := vc[int(w)*c.np : int(w+1)*c.np]
			for p, v := range row {
				if v > wrow[p] {
					wrow[p] = v
				}
			}
		}
	}
	return vc
}

// strictlyBefore reports that block u precedes block w in every linear
// extension of the necessary edges (per the clocks table vc).
func (c *fastChecker) strictlyBefore(vc []int32, u, w int32) bool {
	return u != w && vc[int(w)*c.np+int(c.wProc[u])] >= c.wOrd[u]+1
}

// pruneRound runs one propagate-and-prune iteration: topo-sort the
// current edges (cycle → sound reject), compute vector clocks, then
// shrink each floating read's candidate set using the nearest already-
// determined program-order neighbors. A read collapsing to a single
// candidate is determined, feeding the next round. Returns whether
// anything changed.
func (c *fastChecker) pruneRound() (changed bool) {
	start, dst, indeg := c.buildCSR()
	order, acyclic, _ := c.fastTopo(start, dst, indeg, -1)
	if !acyclic {
		c.fail("necessary ordering constraints form a cycle")
		return false
	}
	if c.nw*c.np > fastMaxClockCells {
		return false // table too large; escalate instead
	}
	vc := c.clocks(order, start, dst)

	// Reads of one history, indexed for the neighbor scans.
	readAt := make(map[[2]int]int, len(c.reads))
	for ri := range c.reads {
		readAt[[2]int{c.reads[ri].proc, c.reads[ri].idx}] = ri
	}

	const none = int32(-3) // pd/nd encoding: -3 no determined neighbor, -1 initial region, ≥0 block
	for h, hist := range c.inst.hist {
		// nd[i]: the nearest determined operation at index > i — a writer
		// pins region(read) ≤ position(writer), a determined read pins
		// region(read) ≤ position(its source).
		nd := make([]int32, len(hist))
		run := none
		for i := len(hist) - 1; i >= 0; i-- {
			nd[i] = run
			if b := c.blockAt[h][i]; b >= 0 {
				run = b
				continue
			}
			if ri, ok := readAt[[2]int{h, i}]; ok && c.reads[ri].det {
				run = c.reads[ri].src
			}
		}
		pd := none
		for i := range hist {
			ri, isRead := readAt[[2]int{h, i}]
			if isRead && c.reads[ri].floating {
				if c.pruneRead(ri, pd, nd[i], vc) {
					changed = true
				}
				if c.reject != "" {
					return changed
				}
			}
			if b := c.blockAt[h][i]; b >= 0 {
				pd = b
			} else if isRead && c.reads[ri].det {
				pd = c.reads[ri].src
			}
		}
	}
	return changed
}

// pruneRead shrinks one floating read's candidates given its nearest
// determined program-order neighbors pd (before) and nd (after), both
// encoded as in pruneRound. Every drop is sound: a candidate is removed
// only when the necessary edges prove the read cannot sit in its
// region.
func (c *fastChecker) pruneRead(ri int, pd, nd int32, vc []int32) (changed bool) {
	r := &c.reads[ri]
	if pd >= 0 && r.canB0 {
		// A writer (or a read of a written value) precedes this read: its
		// region is at least 1, never the initial region.
		r.canB0, changed = false, true
	}
	if r.canB0 && c.inst.init == nil && c.b0bound && c.b0val != r.val {
		r.canB0, changed = false, true
	}
	keep := r.cands[:0]
	for _, cand := range r.cands {
		switch {
		case nd == -1:
			// A later operation of this history reads the initial value:
			// this read sits in the initial region too; no writer applies.
			changed = true
		case pd >= 0 && cand != pd && c.strictlyBefore(vc, cand, pd):
			changed = true
		case nd >= 0 && cand != nd && c.strictlyBefore(vc, nd, cand):
			changed = true
		default:
			keep = append(keep, cand)
		}
	}
	r.cands = keep

	n := len(r.cands)
	if r.canB0 {
		n++
	}
	switch n {
	case 0:
		c.fail(fmt.Sprintf("P%d op %d reads %d: no admissible source write remains", r.proc, r.idx, r.val))
	case 1:
		if len(r.cands) == 1 {
			c.determine(ri, r.cands[0])
		} else {
			c.determine(ri, -1)
		}
		changed = true
	}
	return changed
}

// fastRejectResult builds the Decided-incoherent result of a sound
// refutation.
func fastRejectResult() *Result {
	return &Result{Coherent: false, Decided: true, Algorithm: "fastpath"}
}

// fastInstance runs the frontline over a projected instance. It honors
// the caller's wall-clock timeout and cancellation (polled between
// phases — every phase is a linear pass) but never charges MaxStates:
// the frontline is the cheap gate in front of the state-bounded
// searches, so a tight state budget must not disable it.
func fastInstance(ctx context.Context, inst *instance, opts *Options) (*fastOutcome, *solver.ErrBudgetExceeded) {
	begin := time.Now()
	out := &fastOutcome{verdict: fastInconclusive}
	out.stats.States = inst.nops

	finish := func(v fastVerdict, r *Result, detail string) (*fastOutcome, *solver.ErrBudgetExceeded) {
		out.stats.Duration = time.Since(begin)
		out.verdict, out.result, out.detail = v, r, detail
		if r != nil {
			r.Algorithm = "fastpath"
			stampOps(r, inst)
			r.Stats.Duration = out.stats.Duration
		}
		return out, nil
	}

	bud := solver.Start(ctx, &solver.Options{Timeout: opts.SolveTimeout()})
	defer bud.Stop()
	bctx := bud.Context()
	interrupted := func() *solver.ErrBudgetExceeded {
		e := solver.Interrupted(bctx)
		if e != nil {
			e.Stats = out.stats
			e.Stats.Duration = time.Since(begin)
		}
		return e
	}

	c := newFastChecker(inst)
	if c.nw == 0 {
		// No writes: the empty write order is the only one, so the §5.2
		// placement is a complete decision procedure here.
		r, err := writeOrderInstance(inst, nil)
		if err != nil {
			return finish(fastInconclusive, nil, "placement error: "+err.Error())
		}
		if r.Coherent {
			return finish(fastAccept, r, "")
		}
		return finish(fastReject, r, "no coherent placement without writes")
	}
	if inst.final != nil && len(c.byVal[*inst.final]) == 0 {
		return finish(fastReject, fastRejectResult(), fmt.Sprintf("declared final value %d is never written", *inst.final))
	}
	if e := interrupted(); e != nil {
		return nil, e
	}

	c.collectReads()
	if c.reject != "" {
		return finish(fastReject, fastRejectResult(), c.reject)
	}
	if e := interrupted(); e != nil {
		return nil, e
	}

	if c.floating > 0 {
		for round := 0; round < fastMaxRounds && c.floating > 0; round++ {
			changed := c.pruneRound()
			if c.reject != "" {
				return finish(fastReject, fastRejectResult(), c.reject)
			}
			if e := interrupted(); e != nil {
				return nil, e
			}
			if !changed {
				break
			}
		}
	}

	// Derive a concrete write order and let the complete §5.2 placement
	// decide it. The designated final-value writer is emitted as late as
	// the constraints allow, but only one with no required successor can
	// ever be last.
	holdBack := int32(-1)
	if inst.final != nil {
		outdeg := make([]int32, c.nw)
		for _, e := range c.edges {
			outdeg[e[0]]++
		}
		for _, b := range c.byVal[*inst.final] {
			if outdeg[b] == 0 {
				holdBack = b
				break
			}
		}
		if holdBack < 0 {
			return finish(fastReject, fastRejectResult(),
				fmt.Sprintf("every write of the declared final value %d has a required successor write", *inst.final))
		}
	}
	start, dst, indeg := c.buildCSR()
	order, acyclic, unique := c.fastTopo(start, dst, indeg, holdBack)
	if !acyclic {
		return finish(fastReject, fastRejectResult(), "necessary ordering constraints form a cycle")
	}
	refs := make([]memory.Ref, len(order))
	for i, b := range order {
		refs[i] = c.wref[b]
	}
	if e := interrupted(); e != nil {
		return nil, e
	}
	r, err := writeOrderInstance(inst, refs)
	if err != nil {
		return finish(fastInconclusive, nil, "placement error: "+err.Error())
	}
	if r.Coherent {
		return finish(fastAccept, r, "")
	}
	if unique {
		// The edge set admits exactly one write order and the complete
		// placement refuted it: no coherent schedule exists.
		return finish(fastReject, r, "the only admissible write order has no coherent placement")
	}
	return finish(fastInconclusive, nil, "write order not forced; placement of the candidate order failed")
}

// fastPathExec runs the frontline for one address of an execution
// without opening a solve span of its own — the resilient ladder and
// the portfolio call it as a stage inside their existing span, so the
// live solve counter still moves once per address. Accept certificates
// are re-validated with memory.CheckCoherent; a certificate that fails
// validation demotes the outcome to inconclusive rather than ever
// reporting an unvalidated accept.
func fastPathExec(ctx context.Context, exec *memory.Execution, addr memory.Addr, opts *Options) (*fastOutcome, *solver.ErrBudgetExceeded) {
	inst := project(exec, addr)
	out, e := fastInstance(ctx, inst, opts)
	if e != nil {
		return nil, withAddr(e, addr)
	}
	if out.verdict == fastAccept {
		if err := memory.CheckCoherent(exec, addr, out.result.Schedule); err != nil {
			out = &fastOutcome{
				verdict: fastInconclusive,
				stats:   out.stats,
				detail:  "certificate failed validation: " + err.Error(),
			}
		}
	}
	return out, nil
}

// fastPathAddr wraps fastPathExec in its own obs span ("fastpath") for
// the top-level StrategyFast entry point.
func fastPathAddr(ctx context.Context, exec *memory.Execution, addr memory.Addr, opts *Options) (*fastOutcome, *solver.ErrBudgetExceeded) {
	sp, ctx := beginSolve(ctx, "fastpath", addr)
	out, e := fastPathExec(ctx, exec, addr, opts)
	obs.MetricsFrom(ctx).SolveEnd()
	if e != nil {
		sp.End("budget: "+e.Reason.String(), int64(e.Stats.States))
		return nil, e
	}
	switch out.verdict {
	case fastAccept:
		sp.End("coherent (fastpath)", int64(out.stats.States))
	case fastReject:
		sp.End("incoherent (fastpath: "+out.detail+")", int64(out.stats.States))
	default:
		sp.End("inconclusive: "+out.detail, int64(out.stats.States))
	}
	return out, nil
}

// solveFastAddr implements solver.StrategyFast for one address: the
// polynomial frontline first, escalating to the auto dispatch (the
// Figure 5.3 specialists, then the exact search) only when the
// frontline is inconclusive. With solver.WithoutFastPath the strategy
// degrades to plain auto — the ablation baseline.
func solveFastAddr(ctx context.Context, exec *memory.Execution, addr memory.Addr, opts *Options) (*Result, error) {
	if err := exec.Validate(); err != nil {
		return nil, err
	}
	if opts.FastPath() {
		out, e := fastPathAddr(ctx, exec, addr, opts)
		if e != nil {
			// The frontline is polynomial: if even it blew the deadline (or
			// the caller cancelled), escalating to an exponential search
			// under the same budget is pointless.
			return nil, e
		}
		if out.verdict != fastInconclusive {
			return out.result, nil
		}
	}
	return solveAutoAddr(ctx, exec, addr, opts)
}
