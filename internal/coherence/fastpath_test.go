package coherence

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"memverify/internal/memory"
	"memverify/internal/solver"
	"memverify/internal/workload"
)

// fastOn runs the frontline directly and fails the test on a budget
// error (the tests here never set budgets).
func fastOn(t *testing.T, exec *memory.Execution) *fastOutcome {
	t.Helper()
	out, e := fastPathExec(context.Background(), exec, 0, nil)
	if e != nil {
		t.Fatalf("fast path budget error without a budget: %v", e)
	}
	return out
}

// TestFastPathOracleSmall cross-checks the frontline against the
// brute-force oracle on fully random tiny instances: whenever the fast
// path decides, the verdict must match, and accepts must carry a valid
// certificate. Inconclusive is always allowed — it is the escalation
// signal, not an answer.
func TestFastPathOracleSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	decided := 0
	for i := 0; i < 500; i++ {
		exec := randomInstance(rng)
		if exec.Validate() != nil {
			continue
		}
		want, _ := bruteForceCoherent(exec, 0)
		out := fastOn(t, exec)
		if out.verdict == fastInconclusive {
			continue
		}
		decided++
		if got := out.result.Coherent; got != want {
			t.Fatalf("instance %d: fast path says %v (%s), oracle says %v\nhistories=%v init=%v final=%v",
				i, got, out.detail, want, exec.Histories, exec.Initial, exec.Final)
		}
		if out.verdict == fastAccept {
			if err := memory.CheckCoherent(exec, 0, out.result.Schedule); err != nil {
				t.Fatalf("instance %d: invalid certificate: %v", i, err)
			}
		}
	}
	if decided < 100 {
		t.Errorf("fast path decided only %d/500 random instances — the frontline lost its reach", decided)
	}
}

// TestFastPathOracleWorkload cross-checks the frontline against the
// exact solver on generator-sized instances: coherent traces with
// repeated values (the read-map specialist is inapplicable) and their
// injected-violation mutations. Zero disagreements is the soundness
// acceptance criterion.
func TestFastPathOracleWorkload(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	exact := solver.New(solver.WithoutFastPath())
	decided := 0
	for i := 0; i < 150; i++ {
		exec, _ := workload.GenerateCoherent(rng, workload.GenConfig{
			Processors: 3, OpsPerProc: 8, Addresses: 1, Values: 3,
			WriteFraction: 0.4, RMWFraction: 0.1,
		})
		if i%2 == 1 {
			kinds := workload.ViolationKinds()
			if mut, err := workload.Inject(rng, exec, kinds[rng.Intn(len(kinds))]); err == nil {
				exec = mut
			}
		}
		want, err := SolveAuto(context.Background(), exec, 0, exact)
		if err != nil {
			t.Fatalf("instance %d: oracle: %v", i, err)
		}
		out := fastOn(t, exec)
		if out.verdict == fastInconclusive {
			continue
		}
		decided++
		if out.result.Coherent != want.Coherent {
			t.Fatalf("instance %d: fast path says %v (%s), exact says %v\nhistories=%v",
				i, out.result.Coherent, out.detail, want.Coherent, exec.Histories)
		}
	}
	if decided == 0 {
		t.Error("fast path decided none of the workload instances")
	}
}

// TestFastPathRejectRules drives one targeted instance into each sound
// refutation rule and checks both the verdict and the reported reason.
// Every instance is genuinely incoherent (asserted against the oracle),
// so each REJECT is exercised as a sound one.
func TestFastPathRejectRules(t *testing.T) {
	cases := []struct {
		name   string
		exec   *memory.Execution
		detail string
	}{
		{
			name: "unwritten-value-with-initial",
			exec: memory.NewExecution(
				memory.History{memory.W(0, 1)},
				memory.History{memory.R(0, 9)},
			).SetInitial(0, 0),
			detail: "never written",
		},
		{
			name: "unwritten-value-after-own-write",
			exec: memory.NewExecution(
				memory.History{memory.W(0, 1), memory.R(0, 9)},
			),
			detail: "a write in its history precedes it",
		},
		{
			name: "own-overwritten-value-unreachable",
			exec: memory.NewExecution(
				memory.History{memory.W(0, 5), memory.W(0, 9), memory.R(0, 5)},
			).SetInitial(0, 0),
			detail: "unreachable",
		},
		{
			name: "initial-region-binding-conflict",
			exec: memory.NewExecution(
				memory.History{memory.R(0, 7), memory.W(0, 1)},
				memory.History{memory.R(0, 8)},
			),
			detail: "initial region would need to hold both",
		},
		{
			name: "two-initial-rmws",
			exec: memory.NewExecution(
				memory.History{memory.RW(0, 7, 1)},
				memory.History{memory.RW(0, 7, 2)},
			),
			detail: "first position",
		},
		{
			name: "rmw-double-claim",
			exec: memory.NewExecution(
				memory.History{memory.W(0, 5)},
				memory.History{memory.RW(0, 5, 6)},
				memory.History{memory.RW(0, 5, 7)},
			).SetInitial(0, 0),
			detail: "directly read the same write",
		},
		{
			name: "constraint-cycle",
			exec: memory.NewExecution(
				memory.History{memory.W(0, 1), memory.R(0, 2)},
				memory.History{memory.W(0, 2), memory.R(0, 1)},
			).SetInitial(0, 0),
			detail: "cycle",
		},
		{
			name: "final-value-never-written",
			exec: memory.NewExecution(
				memory.History{memory.W(0, 1)},
			).SetInitial(0, 0).SetFinal(0, 42),
			detail: "never written",
		},
		{
			name: "final-writer-has-successor",
			exec: memory.NewExecution(
				memory.History{memory.W(0, 1), memory.W(0, 2)},
			).SetInitial(0, 0).SetFinal(0, 1),
			detail: "required successor",
		},
		{
			name: "unique-order-placement-fails",
			exec: memory.NewExecution(
				memory.History{memory.W(0, 1), memory.W(0, 2)},
				memory.History{memory.R(0, 1), memory.R(0, 2), memory.R(0, 1)},
			).SetInitial(0, 0),
			detail: "only admissible write order",
		},
		{
			name: "pruned-to-no-source",
			exec: memory.NewExecution(
				memory.History{memory.W(0, 5), memory.W(0, 6)},
				memory.History{memory.R(0, 6), memory.W(0, 5), memory.W(0, 7)},
				memory.History{memory.R(0, 7), memory.R(0, 5)},
			).SetInitial(0, 0),
			detail: "no admissible source",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if want, _ := bruteForceCoherent(tc.exec, 0); want {
				t.Fatal("test premise broken: instance is coherent")
			}
			out := fastOn(t, tc.exec)
			if out.verdict != fastReject {
				t.Fatalf("verdict = %s (%s), want reject", out.verdict, out.detail)
			}
			if !strings.Contains(out.detail, tc.detail) {
				t.Errorf("detail = %q, want it to mention %q", out.detail, tc.detail)
			}
			if out.result == nil || out.result.Coherent || !out.result.Decided {
				t.Errorf("reject outcome carries result %+v", out.result)
			}
		})
	}
}

// TestFastPathAcceptByPruning: a read starts with two candidate writers
// and the vector-clock prune (program order puts one strictly before
// the read's determined predecessor) leaves exactly one — the frontline
// accepts with a validated certificate.
func TestFastPathAcceptByPruning(t *testing.T) {
	exec := memory.NewExecution(
		memory.History{memory.W(0, 5), memory.W(0, 6)},
		memory.History{memory.W(0, 5)},
		memory.History{memory.R(0, 6), memory.R(0, 5)},
	).SetInitial(0, 0)
	out := fastOn(t, exec)
	if out.verdict != fastAccept {
		t.Fatalf("verdict = %s (%s), want accept", out.verdict, out.detail)
	}
	if err := memory.CheckCoherent(exec, 0, out.result.Schedule); err != nil {
		t.Fatalf("invalid certificate: %v", err)
	}
	if out.result.Algorithm != "fastpath" {
		t.Errorf("algorithm = %q", out.result.Algorithm)
	}
}

// TestFastPathInconclusiveEscalates: an instance whose write order is
// not forced (no necessary edges relate the two writers) and whose
// candidate order fails placement must be INCONCLUSIVE — never a guess
// — and SolveResilient must escalate past it to the exact search for
// the real verdict.
func TestFastPathInconclusiveEscalates(t *testing.T) {
	exec := memory.NewExecution(
		memory.History{memory.W(0, 1)},
		memory.History{memory.W(0, 2)},
		memory.History{memory.R(0, 1), memory.R(0, 2), memory.R(0, 1)},
	).SetInitial(0, 0)
	out := fastOn(t, exec)
	if out.verdict != fastInconclusive {
		t.Fatalf("verdict = %s (%s), want inconclusive", out.verdict, out.detail)
	}

	rr, err := SolveResilient(context.Background(), exec, 0, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Verdict != VerdictIncoherent || rr.Rung != RungExact {
		t.Fatalf("verdict=%s rung=%s, want incoherent at exact after escalation", rr.Verdict, rr.Rung)
	}
	// The frontline's work is carried into the aggregate, not lost.
	if rr.Stats.States < exec.NumOps() {
		t.Errorf("aggregated stats %d states lost the frontline's pass", rr.Stats.States)
	}
}

// TestResilientFastRung: with default options the ladder's frontline
// rung decides structured instances outright, both ways, and records
// RungFast (-1) in the stats.
func TestResilientFastRung(t *testing.T) {
	exec := memory.NewExecution(
		memory.History{memory.W(0, 1)},
		memory.History{memory.R(0, 1)},
	).SetInitial(0, 0)
	rr, err := SolveResilient(context.Background(), exec, 0, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Verdict != VerdictCoherent || rr.Rung != RungFast {
		t.Fatalf("verdict=%s rung=%s, want coherent at fast", rr.Verdict, rr.Rung)
	}
	if rr.Stats.Rung != int(RungFast) {
		t.Errorf("Stats.Rung = %d, want %d", rr.Stats.Rung, int(RungFast))
	}
	if err := memory.CheckCoherent(exec, 0, rr.Result.Schedule); err != nil {
		t.Errorf("fast rung certificate invalid: %v", err)
	}

	bad := memory.NewExecution(
		memory.History{memory.W(0, 1)},
		memory.History{memory.R(0, 9)},
	).SetInitial(0, 0)
	rr, err = SolveResilient(context.Background(), bad, 0, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Verdict != VerdictIncoherent || rr.Rung != RungFast {
		t.Fatalf("verdict=%s rung=%s, want incoherent at fast", rr.Verdict, rr.Rung)
	}
}

// TestStrategyFastFacade: solver.StrategyFast through the Verifier
// facade reports the fast rung when the frontline decides, falls back
// to the auto dispatch when it is inconclusive, and degrades to plain
// auto under the WithoutFastPath ablation.
func TestStrategyFastFacade(t *testing.T) {
	easy := memory.NewExecution(
		memory.History{memory.W(0, 1)},
		memory.History{memory.R(0, 1)},
	).SetInitial(0, 0)
	v := NewVerifier(solver.WithStrategy(solver.StrategyFast))
	ar, err := v.SolveAddr(context.Background(), easy, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ar.Rung != RungFast || ar.Result.Algorithm != "fastpath" {
		t.Errorf("rung=%s algorithm=%q, want fast/fastpath", ar.Rung, ar.Result.Algorithm)
	}
	if ar.Stats.Rung != int(RungFast) {
		t.Errorf("Stats.Rung = %d, want %d", ar.Stats.Rung, int(RungFast))
	}

	// Inconclusive instance: the strategy escalates to auto and still
	// decides — the answer never gets worse, only slower.
	ambiguous := memory.NewExecution(
		memory.History{memory.W(0, 1)},
		memory.History{memory.W(0, 2)},
		memory.History{memory.R(0, 1), memory.R(0, 2), memory.R(0, 1)},
	).SetInitial(0, 0)
	r, err := v.Solve(context.Background(), ambiguous, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Coherent || r.Algorithm == "fastpath" {
		t.Errorf("escalation: coherent=%v algorithm=%q, want incoherent from a complete solver", r.Coherent, r.Algorithm)
	}

	// Ablation: the same strategy without the frontline is plain auto.
	ablated := NewVerifier(
		solver.WithStrategy(solver.StrategyFast),
		solver.WithBudget(solver.WithoutFastPath()),
	)
	ar, err = ablated.SolveAddr(context.Background(), easy, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ar.Result.Algorithm == "fastpath" {
		t.Error("WithoutFastPath still ran the frontline")
	}
}

// TestPortfolioFastPathOpens: on a large structured instance the
// portfolio's opening stage decides without racing, and the ablation
// knob restores the staged behavior.
func TestPortfolioFastPathOpens(t *testing.T) {
	exec := workload.GenerateRelay(workload.RelayConfig{Processors: 3, Rounds: 16, Decoys: 1})
	r, err := SolvePortfolio(context.Background(), exec, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Algorithm != "fastpath" {
		t.Errorf("algorithm = %q, want fastpath to open the portfolio", r.Algorithm)
	}
	if err := memory.CheckCoherent(exec, 0, r.Schedule); err != nil {
		t.Errorf("invalid certificate: %v", err)
	}

	r, err = SolvePortfolio(context.Background(), exec, 0, solver.New(solver.WithoutFastPath()))
	if err != nil {
		t.Fatal(err)
	}
	if r.Algorithm == "fastpath" {
		t.Error("WithoutFastPath still ran the opening stage")
	}
	if !r.Coherent {
		t.Error("ablated portfolio verdict changed")
	}
}

// TestFastPathRelayFamily pins the benchmark family's semantics at test
// scale: the coherent relay is accepted with a valid certificate, the
// phantom variant is rejected, and both verdicts match the exact solver
// — the small-scale version of the BENCH_PR9 crossover evidence.
func TestFastPathRelayFamily(t *testing.T) {
	exact := solver.New(solver.WithoutFastPath())
	for _, phantom := range []bool{false, true} {
		exec := workload.GenerateRelay(workload.RelayConfig{Processors: 4, Rounds: 12, Decoys: 4, Phantom: phantom})
		out := fastOn(t, exec)
		want, err := SolveAuto(context.Background(), exec, 0, exact)
		if err != nil {
			t.Fatal(err)
		}
		if out.verdict == fastInconclusive {
			t.Fatalf("phantom=%v: frontline inconclusive (%s) on its own benchmark family", phantom, out.detail)
		}
		if out.result.Coherent != want.Coherent {
			t.Fatalf("phantom=%v: fast says %v, exact says %v", phantom, out.result.Coherent, want.Coherent)
		}
		if out.verdict == fastAccept {
			if err := memory.CheckCoherent(exec, 0, out.result.Schedule); err != nil {
				t.Fatalf("invalid certificate: %v", err)
			}
		}
	}
}
