package coherence

import (
	"context"
	"fmt"
	"time"

	"memverify/internal/memory"
	"memverify/internal/obs"
	"memverify/internal/solver"
)

// Rung indexes the graceful-degradation ladder of SolveResilient. The
// ladder mirrors Figure 5.3 of the paper: when the general (NP-hard)
// problem is out of reach, step down to the restricted variants the
// paper proves tractable, and finally to sound necessary conditions
// that can still refute.
type Rung int

// RungFast is the rung above the exact search: the polynomial
// constraint-propagation frontline (fastpath.go) decided outright. It
// is numbered -1 so the long-standing RungExact == 0 stays pinned and
// Stats.Merge's max-rung aggregation still reports the weakest rung an
// execution fell to.
const RungFast Rung = -1

const (
	// RungExact is the normal case: the exact search (SolveAuto)
	// decided within budget.
	RungExact Rung = iota
	// RungWriteOrder is the §5.2 write-order-augmented check, used when
	// the caller supplied an observed write order. It is trusted only
	// in the positive direction here: a coherent schedule extending the
	// supplied order proves coherence of the instance, but failure to
	// extend a hint does not refute it.
	RungWriteOrder
	// RungSpecialist covers the polynomial Figure 5.3 rows applied
	// outside SolveAuto's dispatch: exhaustive write-order enumeration
	// when the instance has few writes (complete: every coherent
	// schedule induces a write order, so if no order extends, none
	// exists).
	RungSpecialist
	// RungNecessary is the last rung: sound necessary conditions that
	// can refute (Incoherent) but never confirm; when they all pass the
	// verdict is Unknown.
	RungNecessary
)

// String names the rung for reports and obs events.
func (r Rung) String() string {
	switch r {
	case RungFast:
		return "fast"
	case RungExact:
		return "exact"
	case RungWriteOrder:
		return "write-order"
	case RungSpecialist:
		return "specialist"
	case RungNecessary:
		return "necessary"
	}
	return fmt.Sprintf("Rung(%d)", int(r))
}

// ResilientVerdict is the three-valued outcome of SolveResilient.
type ResilientVerdict int

const (
	// VerdictCoherent: a coherent schedule exists (certificate in Result).
	VerdictCoherent ResilientVerdict = iota
	// VerdictIncoherent: no coherent schedule exists.
	VerdictIncoherent
	// VerdictUnknown: no rung could decide — the fast-path frontline
	// was inconclusive, the exact search ran out of budget, and every
	// fallback was inapplicable or silent. The instance may or may not
	// be coherent; Checks carries the necessary-condition evidence.
	VerdictUnknown
)

// String renders the verdict.
func (v ResilientVerdict) String() string {
	switch v {
	case VerdictCoherent:
		return "coherent"
	case VerdictIncoherent:
		return "incoherent"
	case VerdictUnknown:
		return "unknown"
	}
	return fmt.Sprintf("ResilientVerdict(%d)", int(v))
}

// ResilientResult is the outcome of a degradation-ladder solve.
type ResilientResult struct {
	// Verdict is the three-valued answer.
	Verdict ResilientVerdict
	// Rung is the ladder rung that produced the verdict (RungNecessary
	// with VerdictUnknown when nothing could decide).
	Rung Rung
	// Result is the deciding solver's result (certificate, algorithm);
	// nil when the verdict is Unknown.
	Result *Result
	// Stats aggregates the work of every rung tried, including the
	// partial stats of the exhausted exact search; Stats.Rung records
	// the final rung.
	Stats Stats
	// Checks lists the necessary-condition outcomes when the ladder
	// reached RungNecessary — the evidence behind an Unknown verdict, or
	// the violated condition behind an Incoherent one.
	Checks []string
}

// maxEnumWrites bounds the write count for exhaustive write-order
// enumeration at RungSpecialist. The number of orders is the number of
// interleavings of the per-process write sequences, at most w! (40320
// for w = 8), each checked by the polynomial §5.2 placement.
const maxEnumWrites = 8

// solveResilientAddr decides VMC for one address with graceful
// degradation: it runs the polynomial fast-path frontline first (unless
// solver.WithoutFastPath disabled it), then the exact search, and — if
// the budget is exhausted (states or deadline; cancellation always
// propagates as an error, because the caller asked to stop) — steps
// down the ladder:
//
//	RungFast: the constraint-propagation frontline decided outright
//	    (sound in both directions; inconclusive falls through).
//	RungWriteOrder: if writeOrder (an observed §5.2 write order, may be
//	    nil) is supplied and a coherent schedule extends it → Coherent.
//	RungSpecialist: if the instance has ≤ maxEnumWrites writes,
//	    enumerate all write orders; this is complete → Coherent or
//	    Incoherent.
//	RungNecessary: sound necessary conditions; a violation → Incoherent,
//	    otherwise → Unknown (never an error: Unknown is an answer).
//
// The final rung and aggregated stats are recorded in the returned
// ResilientResult (and in Stats.Rung for report plumbing).
func solveResilientAddr(ctx context.Context, exec *memory.Execution, addr memory.Addr, writeOrder []memory.Ref, opts *Options) (*ResilientResult, error) {
	if err := exec.Validate(); err != nil {
		return nil, err
	}
	tr := obs.TracerFrom(ctx)
	sp, ctx := beginSolve(ctx, "solve-resilient", addr)
	start := time.Now()

	wrap := func(rr *ResilientResult) *ResilientResult {
		rr.Stats.Duration = time.Since(start)
		rr.Stats.Rung = int(rr.Rung)
		if rr.Result != nil {
			rr.Result.Stats.Rung = int(rr.Rung)
		}
		obs.MetricsFrom(ctx).SolveEnd()
		sp.End(fmt.Sprintf("%s (rung=%s)", rr.Verdict, rr.Rung), int64(rr.Stats.States))
		return rr
	}
	fail := func(err error) error {
		obs.MetricsFrom(ctx).SolveEnd()
		sp.End("error: "+err.Error(), 0)
		return err
	}

	// Rung -1: the polynomial frontline. A decided outcome short-circuits
	// the whole ladder; inconclusive (or a frontline deadline — the
	// weaker rungs below may still answer) escalates to the exact search.
	var pre Stats // frontline work carried into later rungs
	if opts.FastPath() {
		out, fe := fastPathExec(ctx, exec, addr, opts)
		switch {
		case fe != nil && fe.Reason == solver.Canceled:
			return nil, fail(fe) // the caller wants out; do not keep working
		case fe != nil:
			pre = fe.Stats
			tr.Degrade(sp, RungExact.String(), "fast path exhausted its deadline; escalating to the exact search")
		case out.verdict == fastInconclusive:
			pre = out.stats
			tr.Degrade(sp, RungExact.String(), "fast path inconclusive ("+out.detail+"); escalating to the exact search")
		default:
			rr := &ResilientResult{Rung: RungFast, Result: out.result, Stats: out.stats}
			if !out.result.Coherent {
				rr.Verdict = VerdictIncoherent
			}
			return wrap(rr), nil
		}
	}

	// Rung 0: the exact search.
	r, err := solveAutoAddr(ctx, exec, addr, opts)
	if err == nil {
		agg := pre
		agg.Merge(r.Stats)
		rr := &ResilientResult{Rung: RungExact, Result: r, Stats: agg}
		if !r.Coherent {
			rr.Verdict = VerdictIncoherent
		}
		return wrap(rr), nil
	}
	be, ok := solver.AsBudgetError(err)
	if !ok {
		return nil, fail(err) // malformed input etc.: not a degradation case
	}
	if be.Reason == solver.Canceled {
		return nil, fail(err) // the caller wants out; do not keep working
	}
	agg := pre
	agg.Merge(be.Stats) // partial work of the exhausted search

	inst := project(exec, addr)

	// Rung 1: caller-supplied write order (positive direction only — the
	// order is a hint; failing to extend it does not refute).
	if len(writeOrder) > 0 {
		tr.Degrade(sp, RungWriteOrder.String(),
			fmt.Sprintf("exact search exhausted (%s); trying supplied write order", be.Reason))
		if order, oerr := inst.toProjectionRefs(writeOrder, addr); oerr == nil {
			if wr, werr := writeOrderInstance(inst, order); werr == nil {
				agg.Merge(wr.Stats)
				if wr.Coherent {
					wr.Stats = agg
					return wrap(&ResilientResult{Verdict: VerdictCoherent, Rung: RungWriteOrder, Result: wr, Stats: agg}), nil
				}
			}
		}
	}

	// Rung 2: exhaustive §5.2 enumeration when the write count is small.
	if n := countWriters(inst); n > 0 && n <= maxEnumWrites {
		tr.Degrade(sp, RungSpecialist.String(),
			fmt.Sprintf("enumerating write orders (%d writes)", n))
		wr, e := enumerateWriteOrders(ctx, inst, &agg)
		if e != nil {
			return nil, fail(withAddr(e, addr))
		}
		wr.Stats = agg
		rr := &ResilientResult{Rung: RungSpecialist, Result: wr, Stats: agg}
		if !wr.Coherent {
			rr.Verdict = VerdictIncoherent
		}
		return wrap(rr), nil
	}

	// Rung 3: sound necessary conditions. Unknown is an answer, not an
	// error — the budget failure is folded into the verdict.
	tr.Degrade(sp, RungNecessary.String(), "checking necessary conditions")
	checks, violated := necessaryConditions(inst)
	agg.States += inst.nops
	rr := &ResilientResult{Rung: RungNecessary, Stats: agg, Checks: checks}
	if violated != "" {
		rr.Verdict = VerdictIncoherent
		rr.Result = &Result{
			Coherent:  false,
			Decided:   true,
			Algorithm: "necessary-conditions",
			Stats:     agg,
		}
	} else {
		rr.Verdict = VerdictUnknown
	}
	return wrap(rr), nil
}

// countWriters counts writing operations in the instance.
func countWriters(inst *instance) int {
	n := 0
	for _, h := range inst.hist {
		for _, o := range h {
			if _, ok := o.Writes(); ok {
				n++
			}
		}
	}
	return n
}

// enumerateWriteOrders decides the instance by trying every
// program-order-respecting interleaving of the per-process write
// sequences through the §5.2 placement algorithm. Complete: a coherent
// schedule induces exactly one write order, so if no order extends to a
// coherent schedule none exists. The context is polled between orders.
func enumerateWriteOrders(ctx context.Context, inst *instance, agg *Stats) (*Result, *solver.ErrBudgetExceeded) {
	// Per-process queues of writing-op refs, in program order.
	queues := make([][]memory.Ref, len(inst.hist))
	total := 0
	for h, hist := range inst.hist {
		for i, o := range hist {
			if _, ok := o.Writes(); ok {
				queues[h] = append(queues[h], memory.Ref{Proc: h, Index: i})
				total++
			}
		}
	}
	heads := make([]int, len(queues))
	order := make([]memory.Ref, 0, total)
	tried := 0

	var found *Result
	var rec func() (*solver.ErrBudgetExceeded, bool)
	rec = func() (*solver.ErrBudgetExceeded, bool) {
		if len(order) == total {
			tried++
			if tried&63 == 0 {
				if e := solver.Interrupted(ctx); e != nil {
					return e, false
				}
			}
			r, err := writeOrderInstance(inst, order)
			if err != nil {
				// The enumeration only emits valid orders; an error here is
				// an invariant break, surfaced as incoherent-for-this-order.
				return nil, false
			}
			agg.Merge(r.Stats)
			if r.Coherent {
				found = r
				return nil, true
			}
			return nil, false
		}
		for h := range queues {
			if heads[h] >= len(queues[h]) {
				continue
			}
			order = append(order, queues[h][heads[h]])
			heads[h]++
			e, done := rec()
			heads[h]--
			order = order[:len(order)-1]
			if e != nil || done {
				return e, done
			}
		}
		return nil, false
	}
	if e, _ := rec(); e != nil {
		return nil, e
	}
	if found != nil {
		found.Algorithm = "write-order-enum"
		return found, nil
	}
	return &Result{Coherent: false, Decided: true, Algorithm: "write-order-enum"}, nil
}

// necessaryConditions evaluates sound refutation checks over the
// instance and returns the per-check evidence lines plus the name of
// the first violated condition ("" when all pass). Each condition is
// necessary for coherence, so a violation proves incoherence; passing
// proves nothing (the verdict stays Unknown).
//
// Note that the obvious-looking pairwise reduction — check every
// 2-process sub-history with the constant-process algorithm — is NOT
// sound and is deliberately absent: coherence is not monotone under
// history deletion (removing a writer history changes which write is
// "most recent", and can make a previously-served read unservable), so
// a projection verdict says nothing about the full instance.
func necessaryConditions(inst *instance) (checks []string, violated string) {
	written := make(map[memory.Value]int)
	for _, h := range inst.hist {
		for _, o := range h {
			if d, ok := o.Writes(); ok {
				written[d]++
			}
		}
	}

	record := func(name string, bad bool, detail string) {
		status := "pass"
		if bad {
			status = "FAIL"
			if violated == "" {
				violated = name
			}
		}
		checks = append(checks, fmt.Sprintf("%s: %s (%s)", name, status, detail))
	}

	// unwritten-read-values: a read's value must be written or be the
	// (single) initial value. With a declared initial value any other
	// unwritten value is unreadable; without one, at most one distinct
	// unwritten value can ever be read (whatever the initial happened to
	// be).
	unwritten := make(map[memory.Value]bool)
	for _, h := range inst.hist {
		for _, o := range h {
			if d, ok := o.Reads(); ok && written[d] == 0 {
				unwritten[d] = true
			}
		}
	}
	switch {
	case inst.init != nil:
		bad := ""
		for v := range unwritten {
			if v != *inst.init {
				bad = fmt.Sprintf("read of value %d: never written, initial is %d", v, *inst.init)
				break
			}
		}
		record("unwritten-read-values", bad != "", orDetail(bad, fmt.Sprintf("%d unwritten read values, all initial", len(unwritten))))
	case len(unwritten) > 1:
		record("unwritten-read-values", true, fmt.Sprintf("%d distinct values read but never written; only one initial value exists", len(unwritten)))
	default:
		record("unwritten-read-values", false, fmt.Sprintf("%d unwritten read values", len(unwritten)))
	}

	// read-after-write-unwritten: after the first write in a history (in
	// program order, hence in any schedule), memory always holds some
	// written value — a later read of a never-written value is impossible.
	bad := ""
scan:
	for h, hist := range inst.hist {
		seenWrite := false
		for i, o := range hist {
			if _, ok := o.Writes(); ok {
				seenWrite = true
				continue
			}
			if d, ok := o.Reads(); ok && seenWrite && written[d] == 0 {
				bad = fmt.Sprintf("P%d op %d reads %d, never written, after a write in the same history", h, i, d)
				break scan
			}
		}
	}
	record("read-after-write-unwritten", bad != "", orDetail(bad, "no unwritten-value reads after writes"))

	// final-value: the declared final value must be producible — the last
	// write of a schedule stores it (so it must be written somewhere), or
	// with no writes at all it must equal the declared initial value.
	bad = ""
	if inst.final != nil {
		nw := countWriters(inst)
		switch {
		case nw > 0 && written[*inst.final] == 0:
			bad = fmt.Sprintf("declared final value %d is never written", *inst.final)
		case nw == 0 && inst.init != nil && *inst.init != *inst.final:
			bad = fmt.Sprintf("no writes but initial %d != final %d", *inst.init, *inst.final)
		}
	}
	record("final-value", bad != "", orDetail(bad, "final value producible"))

	// unique-write-contiguity: a value written exactly once (and distinct
	// from the declared initial value) holds in memory over a single
	// contiguous interval of any coherent schedule. Within one history,
	// every operation between the first and last read of such a value
	// must itself carry that value — any other value in between forces
	// the schedule to leave the interval and return, which needs a second
	// write. (This is the per-history structure behind the read-map row
	// of Figure 5.3.)
	bad = ""
	if inst.init != nil {
	contig:
		for h, hist := range inst.hist {
			first := make(map[memory.Value]int)
			last := make(map[memory.Value]int)
			for i, o := range hist {
				if d, ok := o.Reads(); ok && written[d] == 1 && d != *inst.init {
					if _, seen := first[d]; !seen {
						first[d] = i
					}
					last[d] = i
				}
			}
			for v, f := range first {
				for i := f + 1; i < last[v]; i++ {
					o := hist[i]
					if d, ok := o.Reads(); ok && d != v {
						bad = fmt.Sprintf("P%d reads %d between reads of once-written %d", h, d, v)
						break contig
					}
					if d, ok := o.Writes(); ok && d != v {
						bad = fmt.Sprintf("P%d writes %d between reads of once-written %d", h, d, v)
						break contig
					}
				}
			}
		}
	}
	record("unique-write-contiguity", bad != "", orDetail(bad, "once-written read intervals contiguous"))

	return checks, violated
}

// orDetail picks the failure detail when present, else the pass detail.
func orDetail(bad, ok string) string {
	if bad != "" {
		return bad
	}
	return ok
}
