package coherence

import (
	"context"
	"math/rand"
	"testing"

	"memverify/internal/memory"
)

func TestWriteOrderAcceptsRecordedTrace(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		exec, order := randomCoherentTrace(rng, 3, 5, 3)
		res, err := SolveWithWriteOrder(context.Background(), exec, 0, order, nil)
		if err != nil {
			t.Fatalf("instance %d: %v", i, err)
		}
		if !res.Coherent {
			t.Fatalf("instance %d: recorded coherent trace rejected\nhistories=%v order=%v",
				i, exec.Histories, order)
		}
		if err := memory.CheckCoherent(exec, 0, res.Schedule); err != nil {
			t.Fatalf("instance %d: invalid certificate: %v", i, err)
		}
	}
}

func TestWriteOrderDetectsViolation(t *testing.T) {
	// P0 writes 1 then 2 (write order says 1 before 2), P1 reads 2 then 1.
	// With the write order fixed, P1's R(1) after R(2) cannot be placed.
	exec := memory.NewExecution(
		memory.History{memory.W(0, 1), memory.W(0, 2)},
		memory.History{memory.R(0, 2), memory.R(0, 1)},
	).SetInitial(0, 0)
	order := []memory.Ref{{Proc: 0, Index: 0}, {Proc: 0, Index: 1}}
	res, err := SolveWithWriteOrder(context.Background(), exec, 0, order, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Coherent {
		t.Error("stale read pattern accepted")
	}
}

func TestWriteOrderValidatesInput(t *testing.T) {
	exec := memory.NewExecution(
		memory.History{memory.W(0, 1), memory.W(0, 2)},
	)
	w0 := memory.Ref{Proc: 0, Index: 0}
	w1 := memory.Ref{Proc: 0, Index: 1}

	// Program order violated in the supplied write order.
	if _, err := SolveWithWriteOrder(context.Background(), exec, 0, []memory.Ref{w1, w0}, nil); err == nil {
		t.Error("write order violating program order accepted")
	}
	// Missing write.
	if _, err := SolveWithWriteOrder(context.Background(), exec, 0, []memory.Ref{w0}, nil); err == nil {
		t.Error("incomplete write order accepted")
	}
	// Duplicate.
	if _, err := SolveWithWriteOrder(context.Background(), exec, 0, []memory.Ref{w0, w0}, nil); err == nil {
		t.Error("duplicate write order entry accepted")
	}
	// A read in the write order.
	withRead := memory.NewExecution(
		memory.History{memory.W(0, 1), memory.R(0, 1)},
	)
	if _, err := SolveWithWriteOrder(context.Background(), withRead, 0, []memory.Ref{{Proc: 0, Index: 0}, {Proc: 0, Index: 1}}, nil); err == nil {
		t.Error("read accepted as a write order entry")
	}
	// A ref that is not an operation of the address.
	other := memory.NewExecution(
		memory.History{memory.W(0, 1), memory.W(1, 2)},
	)
	if _, err := SolveWithWriteOrder(context.Background(), other, 0, []memory.Ref{{Proc: 0, Index: 0}, {Proc: 0, Index: 1}}, nil); err == nil {
		t.Error("write to another address accepted in the write order")
	}
}

func TestWriteOrderFinalValue(t *testing.T) {
	exec := memory.NewExecution(
		memory.History{memory.W(0, 1)},
		memory.History{memory.W(0, 2)},
	).SetFinal(0, 2)
	good := []memory.Ref{{Proc: 0, Index: 0}, {Proc: 1, Index: 0}}
	res, err := SolveWithWriteOrder(context.Background(), exec, 0, good, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Coherent {
		t.Error("write order ending on the final value rejected")
	}
	bad := []memory.Ref{{Proc: 1, Index: 0}, {Proc: 0, Index: 0}}
	res, err = SolveWithWriteOrder(context.Background(), exec, 0, bad, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Coherent {
		t.Error("write order ending on a non-final value accepted")
	}
}

func TestWriteOrderRMWEmbedded(t *testing.T) {
	exec := memory.NewExecution(
		memory.History{memory.RW(0, 0, 1)},
		memory.History{memory.RW(0, 1, 2)},
	).SetInitial(0, 0)
	good := []memory.Ref{{Proc: 0, Index: 0}, {Proc: 1, Index: 0}}
	res, err := SolveWithWriteOrder(context.Background(), exec, 0, good, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Coherent {
		t.Error("valid RMW write order rejected")
	}
	bad := []memory.Ref{{Proc: 1, Index: 0}, {Proc: 0, Index: 0}}
	res, err = SolveWithWriteOrder(context.Background(), exec, 0, bad, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Coherent {
		t.Error("RMW write order with broken chain accepted")
	}
}

func TestWriteOrderUnboundInitialBindsViaRMW(t *testing.T) {
	// No declared initial value; the first RMW in the write order forces
	// the pre-write region to its read value, and a plain read of that
	// value can sit before it.
	exec := memory.NewExecution(
		memory.History{memory.RW(0, 7, 1)},
		memory.History{memory.R(0, 7)},
	)
	order := []memory.Ref{{Proc: 0, Index: 0}}
	res, err := SolveWithWriteOrder(context.Background(), exec, 0, order, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Coherent {
		t.Error("binding via leading RMW failed")
	}
	if err := memory.CheckCoherent(exec, 0, res.Schedule); err != nil {
		t.Errorf("invalid certificate: %v", err)
	}
}

func TestWriteOrderUnboundInitialCandidates(t *testing.T) {
	// No declared initial value and no writes at all: the reads must
	// agree on a binding.
	agree := memory.NewExecution(
		memory.History{memory.R(0, 3), memory.R(0, 3)},
		memory.History{memory.R(0, 3)},
	)
	res, err := SolveWithWriteOrder(context.Background(), agree, 0, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Coherent {
		t.Error("agreeing pre-write reads rejected")
	}

	disagree := memory.NewExecution(
		memory.History{memory.R(0, 3)},
		memory.History{memory.R(0, 4)},
	)
	res, err = SolveWithWriteOrder(context.Background(), disagree, 0, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Coherent {
		t.Error("disagreeing pre-write reads accepted")
	}
}

// Property: for random instances, if the general solver finds a coherent
// schedule, feeding that schedule's write order to SolveWithWriteOrder
// must succeed; and any SolveWithWriteOrder success implies the general
// solver succeeds.
func TestWriteOrderConsistentWithGeneralSolver(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 300; i++ {
		exec := randomInstance(rng)
		res, err := Solve(context.Background(), exec, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Coherent {
			continue
		}
		// Extract the write order from the certificate.
		var order []memory.Ref
		for _, r := range res.Schedule {
			if _, ok := exec.Op(r).Writes(); ok {
				order = append(order, r)
			}
		}
		wres, err := SolveWithWriteOrder(context.Background(), exec, 0, order, nil)
		if err != nil {
			t.Fatalf("instance %d: %v (histories=%v)", i, err, exec.Histories)
		}
		if !wres.Coherent {
			t.Fatalf("instance %d: write order from a valid certificate rejected\nhistories=%v init=%v final=%v order=%v",
				i, exec.Histories, exec.Initial, exec.Final, order)
		}
		if err := memory.CheckCoherent(exec, 0, wres.Schedule); err != nil {
			t.Fatalf("instance %d: invalid certificate: %v", i, err)
		}
	}
}

func TestCheckRMWWriteOrder(t *testing.T) {
	exec := memory.NewExecution(
		memory.History{memory.RW(0, 0, 1), memory.RW(0, 2, 3)},
		memory.History{memory.RW(0, 1, 2)},
	).SetInitial(0, 0).SetFinal(0, 3)
	good := []memory.Ref{{Proc: 0, Index: 0}, {Proc: 1, Index: 0}, {Proc: 0, Index: 1}}
	res, err := CheckRMWWriteOrder(context.Background(), exec, 0, good)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Coherent {
		t.Error("valid RMW total order rejected")
	}
	if err := memory.CheckCoherent(exec, 0, res.Schedule); err != nil {
		t.Errorf("invalid certificate: %v", err)
	}

	// Broken chain.
	bad := []memory.Ref{{Proc: 1, Index: 0}, {Proc: 0, Index: 0}, {Proc: 0, Index: 1}}
	if _, err := CheckRMWWriteOrder(context.Background(), exec, 0, bad); err != nil {
		t.Fatal(err)
	}
	res, err = CheckRMWWriteOrder(context.Background(), exec, 0, bad)
	if err != nil {
		t.Fatal(err)
	}
	if res.Coherent {
		t.Error("broken RMW chain accepted")
	}

	// Wrong final value.
	exec.SetFinal(0, 9)
	res, err = CheckRMWWriteOrder(context.Background(), exec, 0, good)
	if err != nil {
		t.Fatal(err)
	}
	if res.Coherent {
		t.Error("RMW order ending on non-final value accepted")
	}

	// Non-RMW instance rejected.
	mixed := memory.NewExecution(memory.History{memory.W(0, 1)})
	if _, err := CheckRMWWriteOrder(context.Background(), mixed, 0, []memory.Ref{{Proc: 0, Index: 0}}); err == nil {
		t.Error("non-RMW instance accepted")
	}

	// Wrong cardinality.
	if _, err := CheckRMWWriteOrder(context.Background(), exec, 0, good[:2]); err == nil {
		t.Error("short write order accepted")
	}
}
