package coherence

import (
	"context"
	"math/rand"
	"testing"

	"memverify/internal/memory"
)

func TestSingleOpBasic(t *testing.T) {
	exec := memory.NewExecution(
		memory.History{memory.W(0, 1)},
		memory.History{memory.R(0, 1)},
		memory.History{memory.W(0, 2)},
		memory.History{memory.R(0, 2)},
	).SetInitial(0, 0)
	res, err := SolveSingleOp(context.Background(), exec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Coherent {
		t.Fatal("groupable single-op instance rejected")
	}
	if err := memory.CheckCoherent(exec, 0, res.Schedule); err != nil {
		t.Errorf("invalid certificate: %v", err)
	}
}

func TestSingleOpUnsourcedRead(t *testing.T) {
	exec := memory.NewExecution(
		memory.History{memory.W(0, 1)},
		memory.History{memory.R(0, 9)},
	).SetInitial(0, 0)
	res, err := SolveSingleOp(context.Background(), exec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Coherent {
		t.Error("read with no source accepted")
	}
}

func TestSingleOpInitialBinding(t *testing.T) {
	// Two reads of unwritten values must agree when no initial value is
	// declared.
	agree := memory.NewExecution(
		memory.History{memory.R(0, 9)},
		memory.History{memory.R(0, 9)},
	)
	res, err := SolveSingleOp(context.Background(), agree, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Coherent {
		t.Error("agreeing unwritten reads rejected")
	}
	disagree := memory.NewExecution(
		memory.History{memory.R(0, 9)},
		memory.History{memory.R(0, 8)},
	)
	res, err = SolveSingleOp(context.Background(), disagree, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Coherent {
		t.Error("disagreeing unwritten reads accepted")
	}
}

func TestSingleOpFinalValue(t *testing.T) {
	exec := memory.NewExecution(
		memory.History{memory.W(0, 1)},
		memory.History{memory.W(0, 2)},
	).SetFinal(0, 1)
	res, err := SolveSingleOp(context.Background(), exec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Coherent {
		t.Fatal("achievable final value rejected")
	}
	if err := memory.CheckCoherent(exec, 0, res.Schedule); err != nil {
		t.Errorf("invalid certificate: %v", err)
	}
	exec.SetFinal(0, 9)
	res, err = SolveSingleOp(context.Background(), exec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Coherent {
		t.Error("unwritten final value accepted")
	}
}

func TestSingleOpRejectsLongHistories(t *testing.T) {
	exec := memory.NewExecution(
		memory.History{memory.W(0, 1), memory.R(0, 1)},
	)
	if _, err := SolveSingleOp(context.Background(), exec, 0); err == nil {
		t.Error("multi-op history accepted")
	}
}

func TestSingleOpRejectsRMW(t *testing.T) {
	exec := memory.NewExecution(
		memory.History{memory.RW(0, 0, 1)},
	)
	if _, err := SolveSingleOp(context.Background(), exec, 0); err == nil {
		t.Error("RMW accepted by the simple single-op solver")
	}
}

func TestSingleOpMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for i := 0; i < 400; i++ {
		exec := singleOpRandom(rng, false)
		want, _ := bruteForceCoherent(exec, 0)
		res, err := SolveSingleOp(context.Background(), exec, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Coherent != want {
			t.Fatalf("instance %d: SolveSingleOp=%v oracle=%v\nhistories=%v init=%v final=%v",
				i, res.Coherent, want, exec.Histories, exec.Initial, exec.Final)
		}
		if res.Coherent {
			if err := memory.CheckCoherent(exec, 0, res.Schedule); err != nil {
				t.Fatalf("instance %d: invalid certificate: %v", i, err)
			}
		}
	}
}

func TestSingleOpRMWEulerChain(t *testing.T) {
	exec := memory.NewExecution(
		memory.History{memory.RW(0, 0, 1)},
		memory.History{memory.RW(0, 1, 2)},
		memory.History{memory.RW(0, 2, 3)},
	).SetInitial(0, 0).SetFinal(0, 3)
	res, err := SolveSingleOpRMW(context.Background(), exec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Coherent {
		t.Fatal("RMW chain rejected")
	}
	if err := memory.CheckCoherent(exec, 0, res.Schedule); err != nil {
		t.Errorf("invalid certificate: %v", err)
	}
}

func TestSingleOpRMWCircuit(t *testing.T) {
	// 0 -> 1 -> 0: Eulerian circuit; must start at the initial value.
	exec := memory.NewExecution(
		memory.History{memory.RW(0, 0, 1)},
		memory.History{memory.RW(0, 1, 0)},
	).SetInitial(0, 0).SetFinal(0, 0)
	res, err := SolveSingleOpRMW(context.Background(), exec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Coherent {
		t.Fatal("RMW circuit rejected")
	}
	if err := memory.CheckCoherent(exec, 0, res.Schedule); err != nil {
		t.Errorf("invalid certificate: %v", err)
	}

	// Initial value not on the circuit.
	off := memory.NewExecution(
		memory.History{memory.RW(0, 0, 1)},
		memory.History{memory.RW(0, 1, 0)},
	).SetInitial(0, 7)
	res, err = SolveSingleOpRMW(context.Background(), off, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Coherent {
		t.Error("circuit not containing the initial value accepted")
	}
}

func TestSingleOpRMWDisconnected(t *testing.T) {
	exec := memory.NewExecution(
		memory.History{memory.RW(0, 0, 1)},
		memory.History{memory.RW(0, 5, 6)},
	).SetInitial(0, 0)
	res, err := SolveSingleOpRMW(context.Background(), exec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Coherent {
		t.Error("disconnected RMW multigraph accepted")
	}
}

func TestSingleOpRMWDegreeViolations(t *testing.T) {
	// Two sources of value 1, only one consumer: vertex degrees ±2.
	exec := memory.NewExecution(
		memory.History{memory.RW(0, 1, 2)},
		memory.History{memory.RW(0, 1, 3)},
	)
	res, err := SolveSingleOpRMW(context.Background(), exec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Coherent {
		t.Error("double-consumption of one value accepted")
	}
}

func TestSingleOpRMWEmpty(t *testing.T) {
	empty := memory.NewExecution(memory.History{})
	res, err := SolveSingleOpRMW(context.Background(), empty, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Coherent {
		t.Error("empty RMW instance rejected")
	}
	conflict := memory.NewExecution(memory.History{}).SetInitial(0, 1).SetFinal(0, 2)
	res, err = SolveSingleOpRMW(context.Background(), conflict, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Coherent {
		t.Error("empty instance with conflicting initial/final accepted")
	}
}

func TestSingleOpRMWFinalPinsCircuitStart(t *testing.T) {
	// Balanced circuit, no initial declared, final declared: the circuit
	// must end (= start) at the final value.
	exec := memory.NewExecution(
		memory.History{memory.RW(0, 0, 1)},
		memory.History{memory.RW(0, 1, 0)},
	).SetFinal(0, 0)
	res, err := SolveSingleOpRMW(context.Background(), exec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Coherent {
		t.Fatal("final-pinned circuit rejected")
	}
	if err := memory.CheckCoherent(exec, 0, res.Schedule); err != nil {
		t.Errorf("invalid certificate: %v", err)
	}
}

func TestSingleOpRMWMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for i := 0; i < 400; i++ {
		exec := singleOpRandom(rng, true)
		want, _ := bruteForceCoherent(exec, 0)
		res, err := SolveSingleOpRMW(context.Background(), exec, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Coherent != want {
			t.Fatalf("instance %d: SolveSingleOpRMW=%v oracle=%v\nhistories=%v init=%v final=%v",
				i, res.Coherent, want, exec.Histories, exec.Initial, exec.Final)
		}
		if res.Coherent {
			if err := memory.CheckCoherent(exec, 0, res.Schedule); err != nil {
				t.Fatalf("instance %d: invalid certificate: %v", i, err)
			}
		}
	}
}

// singleOpRandom generates random instances with exactly one op per
// history (all RMW when rmwOnly).
func singleOpRandom(rng *rand.Rand, rmwOnly bool) *memory.Execution {
	nproc := 1 + rng.Intn(5)
	nvals := 1 + rng.Intn(3)
	exec := &memory.Execution{}
	for p := 0; p < nproc; p++ {
		var o memory.Op
		v := memory.Value(rng.Intn(nvals))
		w := memory.Value(rng.Intn(nvals))
		if rmwOnly {
			o = memory.RW(0, v, w)
		} else {
			if rng.Intn(2) == 0 {
				o = memory.R(0, v)
			} else {
				o = memory.W(0, v)
			}
		}
		exec.Histories = append(exec.Histories, memory.History{o})
	}
	if rng.Intn(2) == 0 {
		exec.SetInitial(0, memory.Value(rng.Intn(nvals)))
	}
	if rng.Intn(3) == 0 {
		exec.SetFinal(0, memory.Value(rng.Intn(nvals)))
	}
	return exec
}
