package coherence

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"memverify/internal/memory"
	"memverify/internal/solver"
	"memverify/internal/workload"
)

// parityTraces generates the randomized trial set for the oracle-parity
// tests: coherent traces by construction, half of them mutated with an
// injected violation, plus their generated write orders.
func parityTraces(t *testing.T, trials int) []struct {
	exec   *memory.Execution
	orders map[memory.Addr][]memory.Ref
} {
	t.Helper()
	rng := rand.New(rand.NewSource(61))
	var out []struct {
		exec   *memory.Execution
		orders map[memory.Addr][]memory.Ref
	}
	kinds := workload.ViolationKinds()
	for i := 0; i < trials; i++ {
		exec, orders := workload.GenerateCoherent(rng, workload.GenConfig{
			Processors: 2 + rng.Intn(3),
			OpsPerProc: 4 + rng.Intn(8),
			Addresses:  1 + rng.Intn(3),
			Values:     3,
		})
		if i%2 == 1 {
			mut, err := workload.Inject(rng, exec, kinds[rng.Intn(len(kinds))])
			if err == nil {
				exec = mut
			}
		}
		out = append(out, struct {
			exec   *memory.Execution
			orders map[memory.Addr][]memory.Ref
		}{exec, orders})
	}
	return out
}

// normStats strips wall-clock time, the only nondeterministic Stats
// field, so runs are comparable.
func normStats(s solver.Stats) solver.Stats {
	s.Duration = 0
	return s
}

func sameResult(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if (a == nil) != (b == nil) {
		t.Fatalf("%s: nil mismatch (%v vs %v)", label, a, b)
	}
	if a == nil {
		return
	}
	if a.Coherent != b.Coherent || a.Decided != b.Decided || a.Algorithm != b.Algorithm {
		t.Errorf("%s: verdict mismatch: (%v,%v,%s) vs (%v,%v,%s)",
			label, a.Coherent, a.Decided, a.Algorithm, b.Coherent, b.Decided, b.Algorithm)
	}
	if !reflect.DeepEqual(a.Schedule, b.Schedule) {
		t.Errorf("%s: schedule mismatch:\n%v\n%v", label, a.Schedule, b.Schedule)
	}
	if normStats(a.Stats) != normStats(b.Stats) {
		t.Errorf("%s: stats mismatch:\n%+v\n%+v", label, normStats(a.Stats), normStats(b.Stats))
	}
}

// TestFacadeWrapperParity pins every deprecated entry point to the
// facade: on randomized trials, wrapper and facade must return identical
// verdicts, schedules and (deterministic) stats.
func TestFacadeWrapperParity(t *testing.T) {
	ctx := context.Background()
	for n, tc := range parityTraces(t, 24) {
		exec := tc.exec
		for _, addr := range exec.Addresses() {
			// Solve / StrategyExact.
			wr, werr := Solve(ctx, exec, addr, nil)
			fr, ferr := NewVerifier(solver.WithStrategy(solver.StrategyExact)).Solve(ctx, exec, addr)
			if (werr == nil) != (ferr == nil) {
				t.Fatalf("trial %d addr %d: Solve error mismatch: %v vs %v", n, addr, werr, ferr)
			}
			sameResult(t, "Solve", wr, fr)

			// SolveAuto / default strategy.
			wr, werr = SolveAuto(ctx, exec, addr, nil)
			fr, ferr = NewVerifier().Solve(ctx, exec, addr)
			if (werr == nil) != (ferr == nil) {
				t.Fatalf("trial %d addr %d: SolveAuto error mismatch: %v vs %v", n, addr, werr, ferr)
			}
			sameResult(t, "SolveAuto", wr, fr)

			// SolvePortfolio / StrategyPortfolio. The racer makes stats and
			// winning algorithm scheduling-dependent on hard instances, so
			// only the verdict is pinned.
			wr, werr = SolvePortfolio(ctx, exec, addr, nil)
			fr, ferr = NewVerifier(solver.WithStrategy(solver.StrategyPortfolio)).Solve(ctx, exec, addr)
			if werr != nil || ferr != nil {
				t.Fatalf("trial %d addr %d: portfolio errors: %v / %v", n, addr, werr, ferr)
			}
			if wr.Coherent != fr.Coherent {
				t.Errorf("trial %d addr %d: portfolio verdict mismatch", n, addr)
			}

			// SolveResilient / StrategyResilient + write orders.
			worder := tc.orders[addr]
			rr, werr := SolveResilient(ctx, exec, addr, worder, nil)
			far, ferr := NewVerifier(solver.WithStrategy(solver.StrategyResilient),
				solver.WithWriteOrders(tc.orders)).SolveAddr(ctx, exec, addr)
			if werr != nil || ferr != nil {
				t.Fatalf("trial %d addr %d: resilient errors: %v / %v", n, addr, werr, ferr)
			}
			if rr.Verdict != far.Verdict || rr.Rung != far.Rung {
				t.Errorf("trial %d addr %d: resilient mismatch: (%v,%v) vs (%v,%v)",
					n, addr, rr.Verdict, rr.Rung, far.Verdict, far.Rung)
			}
			sameResult(t, "SolveResilient", rr.Result, far.Result)
		}

		// VerifyExecution / facade Verify.
		wm, werr := VerifyExecution(ctx, exec, nil)
		rep, ferr := NewVerifier().Verify(ctx, exec)
		if werr != nil || ferr != nil {
			t.Fatalf("trial %d: VerifyExecution errors: %v / %v", n, werr, ferr)
		}
		fm := rep.Results()
		if len(wm) != len(fm) {
			t.Fatalf("trial %d: result map sizes differ: %d vs %d", n, len(wm), len(fm))
		}
		for a, r := range wm {
			sameResult(t, "VerifyExecution", r, fm[a])
		}

		// VerifyExecutionParallel / WithWorkers.
		pm, werr := VerifyExecutionParallel(ctx, exec, nil, 4)
		prep, ferr := NewVerifier(solver.WithWorkers(4)).Verify(ctx, exec)
		if werr != nil || ferr != nil {
			t.Fatalf("trial %d: parallel errors: %v / %v", n, werr, ferr)
		}
		for a, r := range pm {
			sameResult(t, "VerifyExecutionParallel", r, prep.Results()[a])
		}
		// Parallel and sequential agree too.
		for a, r := range wm {
			sameResult(t, "parallel-vs-sequential", r, pm[a])
		}

		// Coherent / Report.FirstViolation.
		ok, bad, err := Coherent(ctx, exec, nil)
		if err != nil {
			t.Fatalf("trial %d: Coherent: %v", n, err)
		}
		if ok != rep.Coherent() {
			t.Errorf("trial %d: Coherent=%v but report verdict %v", n, ok, rep.Verdict)
		}
		if fa, violated := rep.FirstViolation(); violated != !ok || (violated && fa != bad) {
			t.Errorf("trial %d: FirstViolation (%v,%v) vs Coherent (%v,%v)", n, fa, violated, bad, ok)
		}

		// VerifyExecutionResilient / resilient Verify.
		rm, werr := VerifyExecutionResilient(ctx, exec, tc.orders, nil)
		rrep, ferr := NewVerifier(solver.WithStrategy(solver.StrategyResilient),
			solver.WithWriteOrders(tc.orders)).Verify(ctx, exec)
		if werr != nil || ferr != nil {
			t.Fatalf("trial %d: resilient verify errors: %v / %v", n, werr, ferr)
		}
		for i := range rrep.Addrs {
			ar := &rrep.Addrs[i]
			wr := rm[ar.Addr]
			if wr == nil || wr.Verdict != ar.Verdict {
				t.Errorf("trial %d addr %d: resilient verify mismatch", n, ar.Addr)
			}
		}
	}
}

// TestFacadeCheckpointParity pins VerifyExecutionCheckpoint to the
// facade's VerifyCheckpoint on a fresh (non-resumed) run.
func TestFacadeCheckpointParity(t *testing.T) {
	ctx := context.Background()
	for n, tc := range parityTraces(t, 6) {
		wm, wck, werr := VerifyExecutionCheckpoint(ctx, tc.exec, nil, nil)
		rep, ferr := NewVerifier().VerifyCheckpoint(ctx, tc.exec, nil)
		if werr != nil || ferr != nil {
			t.Fatalf("trial %d: checkpoint errors: %v / %v", n, werr, ferr)
		}
		if wck != nil || rep.Checkpoint != nil {
			t.Fatalf("trial %d: unexpected checkpoint on unbudgeted run", n)
		}
		fm := rep.Results()
		if len(wm) != len(fm) {
			t.Fatalf("trial %d: map sizes differ", n)
		}
		for a, r := range wm {
			sameResult(t, "VerifyExecutionCheckpoint", r, fm[a])
		}
	}
}

// TestVerifierReportShape pins the Report invariants the service relies
// on: Addrs sorted ascending, aggregate stats equal to the per-address
// sum, and AddressesByHardness a permutation of Addresses.
func TestVerifierReportShape(t *testing.T) {
	for _, tc := range parityTraces(t, 8) {
		rep, err := NewVerifier().Verify(context.Background(), tc.exec)
		if err != nil {
			t.Fatal(err)
		}
		var agg Stats
		for i := range rep.Addrs {
			if i > 0 && rep.Addrs[i-1].Addr >= rep.Addrs[i].Addr {
				t.Fatalf("Addrs not sorted: %v >= %v", rep.Addrs[i-1].Addr, rep.Addrs[i].Addr)
			}
			agg.Merge(rep.Addrs[i].Stats)
		}
		if normStats(agg) != normStats(rep.Stats) {
			t.Errorf("aggregate stats mismatch:\n%+v\n%+v", agg, rep.Stats)
		}
		byHard := AddressesByHardness(tc.exec)
		if len(byHard) != len(tc.exec.Addresses()) {
			t.Fatalf("AddressesByHardness dropped addresses")
		}
		seen := map[memory.Addr]bool{}
		for _, a := range byHard {
			if seen[a] {
				t.Fatalf("AddressesByHardness duplicated %v", a)
			}
			seen[a] = true
		}
	}
}
