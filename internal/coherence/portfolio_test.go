package coherence

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"memverify/internal/memory"
	"memverify/internal/solver"
)

// racingInstance generates an execution with at least portfolioMinOps
// operations at address 0, coherent by construction (the generation
// order is a witness schedule). With incoherent=true one read is
// corrupted to a value nothing ever writes.
func racingInstance(rng *rand.Rand, incoherent bool) *memory.Execution {
	const nproc = 3
	nops := portfolioMinOps + rng.Intn(16)
	exec := &memory.Execution{Histories: make([]memory.History, nproc)}
	exec.SetInitial(0, 0)
	cur := memory.Value(0)
	readRefs := []memory.Ref{}
	for i := 0; i < nops; i++ {
		p := rng.Intn(nproc)
		if rng.Intn(3) == 0 {
			// Values repeat, so the read-map specialist is inapplicable
			// and the general searches must race.
			cur = memory.Value(1 + rng.Intn(3))
			exec.Histories[p] = append(exec.Histories[p], memory.W(0, cur))
		} else {
			readRefs = append(readRefs, memory.Ref{Proc: p, Index: len(exec.Histories[p])})
			exec.Histories[p] = append(exec.Histories[p], memory.R(0, cur))
		}
	}
	if incoherent && len(readRefs) > 0 {
		r := readRefs[rng.Intn(len(readRefs))]
		exec.Histories[r.Proc][r.Index].Data = 9999
	}
	return exec
}

// TestPortfolioMatchesOracleSmall drives the direct-dispatch path (under
// portfolioMinOps operations) against the brute-force oracle.
func TestPortfolioMatchesOracleSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 300; i++ {
		exec := randomInstance(rng)
		want, _ := bruteForceCoherent(exec, 0)
		got, err := SolvePortfolio(context.Background(), exec, 0, nil)
		if err != nil {
			t.Fatalf("instance %d: %v", i, err)
		}
		if got.Coherent != want {
			t.Fatalf("instance %d: portfolio says %v, oracle says %v\nhistories=%v init=%v",
				i, got.Coherent, want, exec.Histories, exec.Initial)
		}
		if got.Coherent {
			if err := memory.CheckCoherent(exec, 0, got.Schedule); err != nil {
				t.Fatalf("instance %d: invalid certificate: %v", i, err)
			}
		}
	}
}

// hardRacingInstance builds an instance that defeats the escalation
// probe: four processes of same-valued writes give the search a
// position-vector space far above the probe's 32·n state cap, and an
// impossible read (a value nothing writes) forces the search to exhaust
// that space before concluding incoherent.
func hardRacingInstance(rng *rand.Rand) *memory.Execution {
	const nproc, perProc = 4, 10
	exec := &memory.Execution{Histories: make([]memory.History, nproc)}
	exec.SetInitial(0, 0)
	for p := 0; p < nproc; p++ {
		for i := 0; i < perProc; i++ {
			exec.Histories[p] = append(exec.Histories[p], memory.W(0, memory.Value(1+rng.Intn(3))))
		}
	}
	exec.Histories[0] = append(exec.Histories[0], memory.R(0, 9999))
	return exec
}

// TestPortfolioMatchesAutoLarge drives the staged paths on instances
// above the direct-dispatch threshold: easy ones decide at the probe,
// hard ones must escalate to the race (annotated "portfolio:"), and
// every verdict must agree with SolveAuto.
func TestPortfolioMatchesAutoLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for i := 0; i < 40; i++ {
		exec := racingInstance(rng, i%2 == 1)
		want, err := SolveAuto(context.Background(), exec, 0, nil)
		if err != nil {
			t.Fatalf("instance %d: auto: %v", i, err)
		}
		got, err := SolvePortfolio(context.Background(), exec, 0, nil)
		if err != nil {
			t.Fatalf("instance %d: portfolio: %v", i, err)
		}
		if got.Coherent != want.Coherent {
			t.Fatalf("instance %d: portfolio says %v, auto says %v\nhistories=%v",
				i, got.Coherent, want.Coherent, exec.Histories)
		}
		if got.Coherent {
			if err := memory.CheckCoherent(exec, 0, got.Schedule); err != nil {
				t.Fatalf("instance %d: invalid certificate: %v", i, err)
			}
		}
	}

	// The hard instances are refuted by the fastpath frontline (the
	// phantom read is exactly what its candidate rules catch); ablate it
	// so the probe-to-race escalation stays exercised.
	raced := 0
	for i := 0; i < 5; i++ {
		exec := hardRacingInstance(rng)
		want, err := SolveAuto(context.Background(), exec, 0, nil)
		if err != nil {
			t.Fatalf("hard instance %d: auto: %v", i, err)
		}
		got, err := SolvePortfolio(context.Background(), exec, 0, solver.New(solver.WithoutFastPath()))
		if err != nil {
			t.Fatalf("hard instance %d: portfolio: %v", i, err)
		}
		if got.Coherent != want.Coherent {
			t.Fatalf("hard instance %d: portfolio says %v, auto says %v",
				i, got.Coherent, want.Coherent)
		}
		if strings.HasPrefix(got.Algorithm, "portfolio:") {
			raced++
		}
	}
	if raced == 0 {
		t.Error("no hard instance escalated past the probe to the race")
	}
}

// TestPortfolioBudgetPropagates: when every racer blows the budget, the
// caller gets one merged budget error tagged with the address.
func TestPortfolioBudgetPropagates(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	exec := racingInstance(rng, false)
	// The frontline never charges MaxStates and could decide outright;
	// ablate it so the state budget is what trips.
	_, err := SolvePortfolio(context.Background(), exec, 0, &Options{MaxStates: 1, DisableFastPath: true})
	if err == nil {
		t.Fatal("budget of 1 state did not trip the portfolio")
	}
	be, ok := solver.AsBudgetError(err)
	if !ok {
		t.Fatalf("error is not a budget error: %v", err)
	}
	if !be.HasAddr || be.Addr != 0 {
		t.Errorf("budget error not tagged with address 0: %+v", be)
	}
	if be.Stats.States == 0 {
		t.Error("merged budget error carries no partial stats")
	}
}

// TestRaceOptionsSeedFromProbe: the race configurations inherit the
// probe's refuted-state memo, and an absent probe memo must not clobber
// a caller-supplied resume seed.
func TestRaceOptionsSeedFromProbe(t *testing.T) {
	probeMemo := []string{"\x01\x02\x00"}
	standard, flipped := raceOptions(nil, probeMemo)
	if len(standard.ResumeMemo) != 1 || len(flipped.ResumeMemo) != 1 {
		t.Fatalf("probe memo not handed to racers: %+v / %+v", standard, flipped)
	}
	if standard.DisableWriteGuidance == flipped.DisableWriteGuidance {
		t.Fatal("racers must differ in write-guidance ordering")
	}

	caller := solver.New()
	caller.ResumeMemo = []string{"\x00\x00\x00"}
	standard, flipped = raceOptions(caller, nil)
	if len(standard.ResumeMemo) != 1 || len(flipped.ResumeMemo) != 1 {
		t.Fatal("nil probe memo clobbered the caller's resume seed")
	}
}

// TestPortfolioProbeMemoSpeedsRace: on an instance hard enough to blow
// the escalation probe, the racers start from the probe's memo — the
// winning search must report memo hits against states it never explored
// itself, and the verdict must match SolveAuto's.
func TestPortfolioProbeMemoSpeedsRace(t *testing.T) {
	// An incoherent general-search instance well past portfolioMinOps:
	// two conflicting readers plus duplicated write values defeat every
	// specialist, and the phantom read keeps it incoherent.
	var h0, h1 memory.History
	for i := 0; i < 8; i++ {
		h0 = append(h0, memory.W(0, memory.Value(i%3+1)))
		h1 = append(h1, memory.W(0, memory.Value(i%3+1)))
	}
	h0 = append(h0, memory.R(0, 999))
	exec := memory.NewExecution(h0, h1,
		memory.History{memory.W(0, 1), memory.W(0, 2)},
	).SetInitial(0, 0)

	auto, err := SolveAuto(context.Background(), exec, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SolvePortfolio(context.Background(), exec, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Coherent != auto.Coherent {
		t.Fatalf("portfolio verdict %v, SolveAuto verdict %v", res.Coherent, auto.Coherent)
	}
}
