package coherence

import (
	"context"
	"math/rand"
	"testing"

	"memverify/internal/memory"
)

func TestReadMapBasic(t *testing.T) {
	exec := memory.NewExecution(
		memory.History{memory.W(0, 1), memory.R(0, 2)},
		memory.History{memory.W(0, 2), memory.R(0, 1)},
	).SetInitial(0, 0)
	// R(2) needs W(2) before it and R(1) needs W(1) before it, but the
	// clusters {W1,R1} and {W2,R2} cross: W1 < R2's cluster boundary...
	// cluster(1) -> cluster(2) (P0) and cluster(2) -> cluster(1) (P1):
	// cycle, incoherent.
	res, err := SolveReadMap(context.Background(), exec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Coherent {
		t.Error("cyclic cluster instance accepted")
	}

	ok := memory.NewExecution(
		memory.History{memory.W(0, 1), memory.R(0, 2)},
		memory.History{memory.R(0, 1), memory.W(0, 2)},
	).SetInitial(0, 0)
	res, err = SolveReadMap(context.Background(), ok, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Coherent {
		t.Error("acyclic cluster instance rejected")
	}
	if err := memory.CheckCoherent(ok, 0, res.Schedule); err != nil {
		t.Errorf("invalid certificate: %v", err)
	}
}

func TestReadMapRejectsDuplicateWrites(t *testing.T) {
	exec := memory.NewExecution(
		memory.History{memory.W(0, 1), memory.W(0, 1)},
	)
	if _, err := SolveReadMap(context.Background(), exec, 0); err == nil {
		t.Error("duplicate writes accepted by the read-map algorithm")
	}
}

func TestReadMapAmbiguousInitial(t *testing.T) {
	// Initial value 1 is also written; a read of 1 makes the map
	// ambiguous.
	exec := memory.NewExecution(
		memory.History{memory.W(0, 1)},
		memory.History{memory.R(0, 1)},
	).SetInitial(0, 1)
	if _, err := SolveReadMap(context.Background(), exec, 0); err == nil {
		t.Error("ambiguous initial-value instance accepted")
	}
	// SolveAuto must still answer, via the general solver.
	res, err := SolveAuto(context.Background(), exec, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Coherent {
		t.Error("SolveAuto failed on the ambiguous corner")
	}
}

func TestReadMapUnboundInitialAmbiguity(t *testing.T) {
	// No declared initial value: R(5) in a write-free prefix could bind
	// the initial value instead of reading P1's W(5); the read-map is not
	// forced and the solver must refuse.
	exec := memory.NewExecution(
		memory.History{memory.R(0, 5), memory.W(0, 9)},
		memory.History{memory.R(0, 9), memory.W(0, 5)},
	)
	if _, err := SolveReadMap(context.Background(), exec, 0); err == nil {
		t.Error("unbound-initial ambiguity not detected")
	}
	// The instance is genuinely coherent via initial binding; SolveAuto
	// must find it.
	res, err := SolveAuto(context.Background(), exec, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Coherent {
		t.Error("SolveAuto missed the initial-binding schedule")
	}
}

func TestReadMapInitialReads(t *testing.T) {
	exec := memory.NewExecution(
		memory.History{memory.R(0, 7), memory.W(0, 1)},
		memory.History{memory.R(0, 7), memory.R(0, 1)},
	).SetInitial(0, 7)
	res, err := SolveReadMap(context.Background(), exec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Coherent {
		t.Fatal("initial reads before the only write rejected")
	}
	if err := memory.CheckCoherent(exec, 0, res.Schedule); err != nil {
		t.Errorf("invalid certificate: %v", err)
	}

	// An initial-cluster read after the history's own write: W(1) R(7) —
	// incoherent, 7 is no longer in force.
	bad := memory.NewExecution(
		memory.History{memory.W(0, 1), memory.R(0, 7)},
	).SetInitial(0, 7)
	res, err = SolveReadMap(context.Background(), bad, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Coherent {
		t.Error("initial read after a write accepted")
	}
}

func TestReadMapReadBeforeOwnSourceWrite(t *testing.T) {
	exec := memory.NewExecution(
		memory.History{memory.R(0, 1), memory.W(0, 1)},
	).SetInitial(0, 0)
	res, err := SolveReadMap(context.Background(), exec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Coherent {
		t.Error("read scheduled before its only possible source accepted")
	}
}

func TestReadMapFinalValue(t *testing.T) {
	exec := memory.NewExecution(
		memory.History{memory.W(0, 1)},
		memory.History{memory.W(0, 2)},
	).SetInitial(0, 0).SetFinal(0, 2)
	res, err := SolveReadMap(context.Background(), exec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Coherent {
		t.Fatal("satisfiable final value rejected")
	}
	if err := memory.CheckCoherent(exec, 0, res.Schedule); err != nil {
		t.Errorf("invalid certificate: %v", err)
	}

	// Final value must be a sink: here cluster(2) must precede cluster(1)
	// (program order), so 2 cannot be final.
	chained := memory.NewExecution(
		memory.History{memory.W(0, 2), memory.W(0, 1)},
	).SetInitial(0, 0).SetFinal(0, 2)
	res, err = SolveReadMap(context.Background(), chained, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Coherent {
		t.Error("non-sink final cluster accepted")
	}

	// Final value never written.
	missing := memory.NewExecution(
		memory.History{memory.W(0, 1)},
	).SetInitial(0, 0).SetFinal(0, 9)
	res, err = SolveReadMap(context.Background(), missing, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Coherent {
		t.Error("unwritten final value accepted")
	}
}

func TestReadMapRMWChains(t *testing.T) {
	// RMWs fuse clusters: 0 -> 1 -> 2 with interleaved plain ops.
	exec := memory.NewExecution(
		memory.History{memory.RW(0, 0, 1), memory.R(0, 2)},
		memory.History{memory.R(0, 1), memory.RW(0, 1, 2)},
	).SetInitial(0, 0)
	res, err := SolveReadMap(context.Background(), exec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Coherent {
		t.Fatal("coherent RMW chain rejected")
	}
	if err := memory.CheckCoherent(exec, 0, res.Schedule); err != nil {
		t.Errorf("invalid certificate: %v", err)
	}

	// Two RMWs consuming the same value: incoherent.
	clash := memory.NewExecution(
		memory.History{memory.RW(0, 0, 1)},
		memory.History{memory.RW(0, 0, 2)},
	).SetInitial(0, 0)
	res, err = SolveReadMap(context.Background(), clash, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Coherent {
		t.Error("two RMWs consuming one value accepted")
	}

	// Chain cycle: RW(1,2) and RW(2,1) can never start.
	cycle := memory.NewExecution(
		memory.History{memory.RW(0, 1, 2)},
		memory.History{memory.RW(0, 2, 1)},
	).SetInitial(0, 0)
	res, err = SolveReadMap(context.Background(), cycle, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Coherent {
		t.Error("cyclic RMW chain accepted")
	}
}

// Property: on random unique-write instances the read-map algorithm
// agrees with the brute-force oracle (when its preconditions hold).
func TestReadMapMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	checked := 0
	for i := 0; i < 600; i++ {
		exec := uniqueWriteInstance(rng)
		res, err := SolveReadMap(context.Background(), exec, 0)
		if err != nil {
			continue // ambiguous corner; SolveAuto covers it elsewhere
		}
		checked++
		want, _ := bruteForceCoherent(exec, 0)
		if res.Coherent != want {
			t.Fatalf("instance %d: SolveReadMap=%v oracle=%v\nhistories=%v init=%v final=%v",
				i, res.Coherent, want, exec.Histories, exec.Initial, exec.Final)
		}
		if res.Coherent {
			if err := memory.CheckCoherent(exec, 0, res.Schedule); err != nil {
				t.Fatalf("instance %d: invalid certificate: %v", i, err)
			}
		}
	}
	if checked < 100 {
		t.Errorf("only %d instances exercised the algorithm", checked)
	}
}

// uniqueWriteInstance generates a random instance in which every value is
// written at most once.
func uniqueWriteInstance(rng *rand.Rand) *memory.Execution {
	nproc := 1 + rng.Intn(3)
	exec := &memory.Execution{}
	nextVal := memory.Value(10)
	written := []memory.Value{}
	readable := func() memory.Value {
		// Mix of written values, the initial value, and junk.
		switch rng.Intn(4) {
		case 0:
			return 0 // initial value
		case 1:
			return memory.Value(1 + rng.Intn(3)) // probably unwritten
		default:
			if len(written) == 0 {
				return 0
			}
			return written[rng.Intn(len(written))]
		}
	}
	for p := 0; p < nproc; p++ {
		nops := rng.Intn(4)
		var h memory.History
		for i := 0; i < nops; i++ {
			switch rng.Intn(3) {
			case 0:
				h = append(h, memory.R(0, readable()))
			case 1:
				h = append(h, memory.W(0, nextVal))
				written = append(written, nextVal)
				nextVal++
			default:
				h = append(h, memory.RW(0, readable(), nextVal))
				written = append(written, nextVal)
				nextVal++
			}
		}
		exec.Histories = append(exec.Histories, h)
	}
	exec.SetInitial(0, 0)
	if rng.Intn(3) == 0 && len(written) > 0 {
		exec.SetFinal(0, written[rng.Intn(len(written))])
	}
	return exec
}
