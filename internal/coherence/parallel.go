package coherence

import (
	"runtime"
	"sync"

	"memverify/internal/memory"
)

// VerifyExecutionParallel is VerifyExecution with the per-address checks
// fanned out across workers goroutines (runtime.NumCPU() when workers
// <= 0). Coherence is defined address-by-address (Section 3), so the
// checks are embarrassingly parallel; on wide multi-address traces this
// is a near-linear speedup. Results are identical to VerifyExecution.
func VerifyExecutionParallel(exec *memory.Execution, opts *Options, workers int) (map[memory.Addr]*Result, error) {
	if err := exec.Validate(); err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	addrs := exec.Addresses()
	if workers > len(addrs) {
		workers = len(addrs)
	}
	if workers <= 1 {
		return VerifyExecution(exec, opts)
	}

	type outcome struct {
		addr memory.Addr
		res  *Result
		err  error
	}
	jobs := make(chan memory.Addr)
	results := make(chan outcome)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for a := range jobs {
				r, err := SolveAuto(exec, a, opts)
				results <- outcome{addr: a, res: r, err: err}
			}
		}()
	}
	go func() {
		for _, a := range addrs {
			jobs <- a
		}
		close(jobs)
		wg.Wait()
		close(results)
	}()

	out := make(map[memory.Addr]*Result, len(addrs))
	var firstErr error
	for o := range results {
		if o.err != nil && firstErr == nil {
			firstErr = o.err
		}
		out[o.addr] = o.res
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}
