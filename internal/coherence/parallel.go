package coherence

import (
	"sort"

	"memverify/internal/memory"
)

// projectionSizes counts the data-memory operations per address in one
// pass over the execution — the size of each per-address projected
// instance, and the only cheap hardness signal available before
// solving.
func projectionSizes(exec *memory.Execution) map[memory.Addr]int {
	sizes := make(map[memory.Addr]int)
	for _, h := range exec.Histories {
		for _, o := range h {
			if o.IsMemory() {
				sizes[o.Addr]++
			}
		}
	}
	return sizes
}

// hardnessOrder returns the indices of addrs sorted by projection size
// descending (ties broken by address ascending, so the order is
// deterministic). Dispatching the largest projections first is classic
// LPT scheduling: the potentially exponential searches start immediately
// instead of queueing behind a tail of trivial addresses, which is the
// difference between makespan ≈ slowest address and makespan ≈ slowest
// address + everything dispatched after it.
func hardnessOrder(addrs []memory.Addr, sizes map[memory.Addr]int) []int {
	order := make([]int, len(addrs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		i, j := order[a], order[b]
		if sizes[addrs[i]] != sizes[addrs[j]] {
			return sizes[addrs[i]] > sizes[addrs[j]]
		}
		return addrs[i] < addrs[j]
	})
	return order
}
