package coherence

import (
	"context"
	"runtime"
	"sort"
	"sync"

	"memverify/internal/memory"
	"memverify/internal/obs"
)

// projectionSizes counts the data-memory operations per address in one
// pass over the execution — the size of each per-address projected
// instance, and the only cheap hardness signal available before
// solving.
func projectionSizes(exec *memory.Execution) map[memory.Addr]int {
	sizes := make(map[memory.Addr]int)
	for _, h := range exec.Histories {
		for _, o := range h {
			if o.IsMemory() {
				sizes[o.Addr]++
			}
		}
	}
	return sizes
}

// hardnessOrder returns the indices of addrs sorted by projection size
// descending (ties broken by address ascending, so the order is
// deterministic). Dispatching the largest projections first is classic
// LPT scheduling: the potentially exponential searches start immediately
// instead of queueing behind a tail of trivial addresses, which is the
// difference between makespan ≈ slowest address and makespan ≈ slowest
// address + everything dispatched after it.
func hardnessOrder(addrs []memory.Addr, sizes map[memory.Addr]int) []int {
	order := make([]int, len(addrs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		i, j := order[a], order[b]
		if sizes[addrs[i]] != sizes[addrs[j]] {
			return sizes[addrs[i]] > sizes[addrs[j]]
		}
		return addrs[i] < addrs[j]
	})
	return order
}

// VerifyExecutionParallel is VerifyExecution with the per-address checks
// fanned out across workers goroutines (runtime.NumCPU() when workers
// <= 0). Coherence is defined address-by-address (Section 3), so the
// checks are embarrassingly parallel; on wide multi-address traces this
// is a near-linear speedup.
//
// Results are deterministic: each per-address solve is independent and
// runs to its own completion or budget regardless of goroutine
// scheduling, and when several addresses fail the returned error is
// always the one for the lowest-indexed address in exec.Addresses()
// order — so two runs over the same input produce diffable output.
//
// Addresses are dispatched largest-projection-first (see hardnessOrder):
// the per-address search is worst-case exponential in projection size,
// so starting the heaviest address last would leave one worker grinding
// alone after the rest drain. Dispatch order affects only load balance,
// never results. Workers reuse the pooled search scratch (position
// vectors, schedule buffers, and the packed memo table) across the
// addresses they drain, so a wide trace costs one warm buffer set per
// worker rather than one allocation burst per address.
func VerifyExecutionParallel(ctx context.Context, exec *memory.Execution, opts *Options, workers int) (map[memory.Addr]*Result, error) {
	if err := exec.Validate(); err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	addrs := exec.Addresses()
	if workers > len(addrs) {
		workers = len(addrs)
	}
	if workers <= 1 {
		return VerifyExecution(ctx, exec, opts)
	}

	// Workers write into per-address slots, so no result ordering
	// depends on channel receive order (the source of the old
	// nondeterministic first-error selection).
	results := make([]*Result, len(addrs))
	errs := make([]error, len(addrs))
	next := make(chan int)
	var wg sync.WaitGroup
	tr := obs.TracerFrom(ctx)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			wctx := ctx
			if tr != nil {
				sp, sctx := tr.BeginWorker(ctx, "verify-worker", w)
				defer sp.EndWorker(w, "done")
				wctx = sctx
			}
			for i := range next {
				results[i], errs[i] = SolveAuto(wctx, exec, addrs[i], opts)
			}
		}()
	}
	for _, i := range hardnessOrder(addrs, projectionSizes(exec)) {
		next <- i
	}
	close(next)
	wg.Wait()

	out := make(map[memory.Addr]*Result, len(addrs))
	for i, a := range addrs {
		if errs[i] != nil {
			return out, errs[i]
		}
		out[a] = results[i]
	}
	return out, nil
}
