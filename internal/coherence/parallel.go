package coherence

import (
	"context"
	"runtime"
	"sync"

	"memverify/internal/memory"
	"memverify/internal/obs"
)

// VerifyExecutionParallel is VerifyExecution with the per-address checks
// fanned out across workers goroutines (runtime.NumCPU() when workers
// <= 0). Coherence is defined address-by-address (Section 3), so the
// checks are embarrassingly parallel; on wide multi-address traces this
// is a near-linear speedup.
//
// Results are deterministic: each per-address solve is independent and
// runs to its own completion or budget regardless of goroutine
// scheduling, and when several addresses fail the returned error is
// always the one for the lowest-indexed address in exec.Addresses()
// order — so two runs over the same input produce diffable output.
func VerifyExecutionParallel(ctx context.Context, exec *memory.Execution, opts *Options, workers int) (map[memory.Addr]*Result, error) {
	if err := exec.Validate(); err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	addrs := exec.Addresses()
	if workers > len(addrs) {
		workers = len(addrs)
	}
	if workers <= 1 {
		return VerifyExecution(ctx, exec, opts)
	}

	// Workers write into per-address slots, so no result ordering
	// depends on channel receive order (the source of the old
	// nondeterministic first-error selection).
	results := make([]*Result, len(addrs))
	errs := make([]error, len(addrs))
	next := make(chan int)
	var wg sync.WaitGroup
	tr := obs.TracerFrom(ctx)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			wctx := ctx
			if tr != nil {
				sp, sctx := tr.BeginWorker(ctx, "verify-worker", w)
				defer sp.EndWorker(w, "done")
				wctx = sctx
			}
			for i := range next {
				results[i], errs[i] = SolveAuto(wctx, exec, addrs[i], opts)
			}
		}()
	}
	for i := range addrs {
		next <- i
	}
	close(next)
	wg.Wait()

	out := make(map[memory.Addr]*Result, len(addrs))
	for i, a := range addrs {
		if errs[i] != nil {
			return out, errs[i]
		}
		out[a] = results[i]
	}
	return out, nil
}
