package coherence

import (
	"context"
	"path/filepath"
	"testing"

	"memverify/internal/memory"
	"memverify/internal/solver"
)

// hardExecution needs the general memoized search (value 3 is written
// twice, so no Figure 5.3 specialist applies) and is incoherent; the
// uninterrupted search visits a deterministic 32 states.
func hardExecution() *memory.Execution {
	return memory.NewExecution(
		memory.History{memory.W(0, 1), memory.R(0, 2)},
		memory.History{memory.W(0, 2), memory.R(0, 1)},
		memory.History{memory.W(0, 3)},
		memory.History{memory.W(0, 3)},
	).SetInitial(0, 0)
}

// TestCheckpointRoundTrip is the acceptance test for checkpoint/resume:
// interrupt a search with a state budget, write the checkpoint to disk,
// read it back, and finish the search seeded from it. The resumed
// search must reach the same verdict as an uninterrupted one while
// re-exploring strictly fewer states (the saved memo table prunes the
// already-refuted subtrees).
func TestCheckpointRoundTrip(t *testing.T) {
	ctx := context.Background()
	exec := hardExecution()

	fresh, err := SolveAuto(ctx, exec, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Coherent {
		t.Fatal("hard execution should be incoherent")
	}

	// Interrupted run: the budget trips mid-search, after the memo table
	// has real entries.
	_, ck, err := VerifyExecutionCheckpoint(ctx, exec, solver.New(solver.WithMaxStates(20)), nil)
	if _, ok := solver.AsBudgetError(err); !ok {
		t.Fatalf("err = %v, want budget error", err)
	}
	if ck == nil || ck.Pending == nil {
		t.Fatalf("no pending search in checkpoint: %+v", ck)
	}
	if len(ck.Pending.Memo) == 0 {
		t.Fatal("checkpoint carries no memo entries; resume would replay everything")
	}
	if ck.Pending.Stats.States == 0 {
		t.Error("no partial stats in checkpoint")
	}

	// Disk round-trip through the checksummed envelope.
	path := filepath.Join(t.TempDir(), "ck.json")
	if err := ck.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}

	// Resume without a budget: same verdict, strictly fewer states.
	results, ck2, err := VerifyExecutionCheckpoint(ctx, exec, nil, loaded)
	if err != nil {
		t.Fatal(err)
	}
	if ck2 != nil {
		t.Errorf("completed resume still returned a checkpoint: %+v", ck2)
	}
	res := results[0]
	if res == nil || res.Coherent != fresh.Coherent {
		t.Fatalf("resumed verdict %+v != fresh verdict %+v", res, fresh)
	}
	if res.Stats.States >= fresh.Stats.States {
		t.Errorf("resumed search explored %d states, fresh %d — the memo seed pruned nothing",
			res.Stats.States, fresh.Stats.States)
	}
	if res.Stats.MemoHits == 0 {
		t.Error("resumed search had no memo hits; seed was not used")
	}
}

// TestCheckpointFingerprintMismatch: a checkpoint must not resume
// against a different execution — memo soundness depends on the
// instance being identical.
func TestCheckpointFingerprintMismatch(t *testing.T) {
	ctx := context.Background()
	_, ck, err := VerifyExecutionCheckpoint(ctx, hardExecution(), solver.New(solver.WithMaxStates(5)), nil)
	if _, ok := solver.AsBudgetError(err); !ok {
		t.Fatalf("err = %v, want budget error", err)
	}
	other := memory.NewExecution(
		memory.History{memory.W(0, 7)},
		memory.History{memory.R(0, 7)},
	).SetInitial(0, 0)
	if _, _, err := VerifyExecutionCheckpoint(ctx, other, nil, ck); err == nil {
		t.Fatal("checkpoint from a different execution accepted")
	}
}

// TestCheckpointReplaysCompletedAddresses: addresses finished before the
// interrupt are replayed from the checkpoint, not re-solved, and the
// replay is visible in the Algorithm annotation.
func TestCheckpointReplaysCompletedAddresses(t *testing.T) {
	ctx := context.Background()
	// Address 0 is trivial (decided by a specialist within any budget);
	// address 1 is the hard one that trips the budget.
	exec := memory.NewExecution(
		memory.History{memory.W(0, 1), memory.W(1, 1), memory.R(1, 2)},
		memory.History{memory.R(0, 1), memory.W(1, 2), memory.R(1, 1)},
		memory.History{memory.W(1, 3)},
		memory.History{memory.W(1, 3)},
	).SetInitial(0, 0).SetInitial(1, 0)

	_, ck, err := VerifyExecutionCheckpoint(ctx, exec, solver.New(solver.WithMaxStates(20)), nil)
	if _, ok := solver.AsBudgetError(err); !ok {
		t.Fatalf("err = %v, want budget error", err)
	}
	if len(ck.Done) != 1 || ck.Done[0].Addr != 0 {
		t.Fatalf("done list = %+v, want address 0 completed", ck.Done)
	}
	results, _, err := VerifyExecutionCheckpoint(ctx, exec, nil, ck)
	if err != nil {
		t.Fatal(err)
	}
	if alg := results[0].Algorithm; len(alg) < 11 || alg[:11] != "checkpoint:" {
		t.Errorf("address 0 algorithm = %q, want checkpoint: replay", alg)
	}
	if results[1] == nil || results[1].Coherent {
		t.Errorf("address 1 = %+v, want incoherent after resume", results[1])
	}
}

// TestPeriodicSnapshots: with a small CheckpointEvery, the sink receives
// snapshots during the search, not only at the abort.
func TestPeriodicSnapshots(t *testing.T) {
	// Three cross-coupled pairs plus duplicate writes: enough states for
	// several 64-state poll windows.
	exec := memory.NewExecution(
		memory.History{memory.W(0, 1), memory.R(0, 2)},
		memory.History{memory.W(0, 2), memory.R(0, 3)},
		memory.History{memory.W(0, 3), memory.R(0, 1)},
		memory.History{memory.W(0, 4)},
		memory.History{memory.W(0, 4)},
	).SetInitial(0, 0)
	calls := 0
	opts := &Options{
		CheckpointSink:  func(snap solver.SearchSnapshot) { calls++ },
		CheckpointEvery: 64,
	}
	if _, err := Solve(context.Background(), exec, 0, opts); err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Error("no periodic snapshots on an unbudgeted solve")
	}
}

// BenchmarkCheckpointOverhead compares the search hot loop with
// checkpointing disabled (the default; must stay within noise of the
// seed) and enabled. The disabled case is the acceptance bar: the
// nil-sink test piggybacks on the existing every-64-states poll mask,
// so its cost must be <2%.
func BenchmarkCheckpointOverhead(b *testing.B) {
	exec := hardExecution()
	ctx := context.Background()
	b.Run("off", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Solve(ctx, exec, 0, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("on", func(b *testing.B) {
		opts := &Options{CheckpointSink: func(solver.SearchSnapshot) {}, CheckpointEvery: 64}
		for i := 0; i < b.N; i++ {
			if _, err := Solve(ctx, exec, 0, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// TestCheckpointMemoFormatCompat: checkpoints are format-stable across
// the packed-uint64 and string-key memo representations. A checkpoint
// written by either search seeds a resume on the other — packed memo
// entries serialize to the exact varint string form the fallback uses
// (see packedLayout.appendStringKey), so no checkpoint version bump was
// needed. In each direction the resumed search must agree with the
// fresh verdict while re-exploring strictly fewer states.
func TestCheckpointMemoFormatCompat(t *testing.T) {
	ctx := context.Background()
	exec := hardExecution()
	fresh, err := SolveAuto(ctx, exec, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, dir := range []struct {
		name           string
		writer, reader *solver.Options
	}{
		{"packed-to-string", nil, solver.New(solver.WithoutPackedMemo())},
		{"string-to-packed", solver.New(solver.WithoutPackedMemo()), nil},
	} {
		t.Run(dir.name, func(t *testing.T) {
			wopts := dir.writer.Clone()
			wopts.MaxStates = 20
			_, ck, err := VerifyExecutionCheckpoint(ctx, exec, wopts, nil)
			if _, ok := solver.AsBudgetError(err); !ok {
				t.Fatalf("err = %v, want budget error", err)
			}
			if ck == nil || ck.Pending == nil || len(ck.Pending.Memo) == 0 {
				t.Fatalf("no resumable memo in checkpoint: %+v", ck)
			}
			path := filepath.Join(t.TempDir(), "ck.json")
			if err := ck.WriteFile(path); err != nil {
				t.Fatal(err)
			}
			loaded, err := LoadCheckpoint(path)
			if err != nil {
				t.Fatal(err)
			}
			results, _, err := VerifyExecutionCheckpoint(ctx, exec, dir.reader, loaded)
			if err != nil {
				t.Fatal(err)
			}
			res := results[0]
			if res == nil || res.Coherent != fresh.Coherent {
				t.Fatalf("resumed verdict %+v != fresh verdict %+v", res, fresh)
			}
			if res.Stats.States >= fresh.Stats.States {
				t.Errorf("resumed search explored %d states, fresh %d — cross-format seed pruned nothing",
					res.Stats.States, fresh.Stats.States)
			}
			if res.Stats.MemoHits == 0 {
				t.Error("resumed search had no memo hits; cross-format seed was not ingested")
			}
		})
	}
}
