package coherence

import (
	"context"
	"fmt"
	"time"

	"memverify/internal/memory"
	"memverify/internal/solver"
)

// SolveWithWriteOrder decides VMC for address addr when the memory system
// has been augmented to supply the order in which write operations were
// executed (Section 5.2 of the paper). writeOrder must list every
// operation of exec at addr that writes (simple writes and
// read-modify-writes), exactly once, in the order the memory system
// executed them.
//
// The algorithm follows §5.2: the write order is the skeleton of the
// schedule, and each read is inserted after its program-order predecessor,
// scanning forward no further than the next write of its own history. A
// read is placed after the first write of its value in that window.
// Earliest placement is complete: with the region values fixed by the
// write order, reads of different histories are independent, and moving a
// read earlier within its window only enlarges the windows of its
// program-order successors. When no initial value is declared, the value
// of the pre-write region is a single unknown; the driver tries each
// candidate binding (at most one distinct value per history), keeping the
// whole procedure polynomial: O(k·n²) worst case, O(n²) with a declared
// initial value — versus NP-Completeness without the write order.
//
// An error is returned when writeOrder is not a valid write order for the
// instance (wrong operations, duplicates, or program order violated); an
// incoherent result (Coherent == false) is returned when the order is
// valid but no coherent schedule extends it.
func SolveWithWriteOrder(ctx context.Context, exec *memory.Execution, addr memory.Addr, writeOrder []memory.Ref, opts *Options) (r *Result, err error) {
	if err := exec.Validate(); err != nil {
		return nil, err
	}
	if e := solver.Interrupted(ctx); e != nil {
		return nil, withAddr(e, addr)
	}
	sp, ctx := beginSolve(ctx, "write-order", addr)
	defer func() { endSolve(ctx, sp, r, err) }()
	start := time.Now()
	inst := project(exec, addr)
	order, err := inst.toProjectionRefs(writeOrder, addr)
	if err != nil {
		return nil, err
	}
	r, err = writeOrderInstance(inst, order)
	if r != nil {
		r.Stats.Duration = time.Since(start)
	}
	return r, err
}

// toProjectionRefs translates original execution refs to projection refs.
func (in *instance) toProjectionRefs(refs []memory.Ref, addr memory.Addr) ([]memory.Ref, error) {
	fwd := make(map[memory.Ref]memory.Ref, len(in.back))
	for projRef, origRef := range in.back {
		fwd[origRef] = projRef
	}
	out := make([]memory.Ref, len(refs))
	for i, r := range refs {
		pr, ok := fwd[r]
		if !ok {
			return nil, fmt.Errorf("coherence: write order entry %s is not an operation of address %d", r, addr)
		}
		out[i] = pr
	}
	return out, nil
}

// validateWriteOrder checks that order lists every writing op of the
// instance exactly once, respecting program order.
func (in *instance) validateWriteOrder(order []memory.Ref) error {
	writers := 0
	for _, h := range in.hist {
		for _, o := range h {
			if _, ok := o.Writes(); ok {
				writers++
			}
		}
	}
	seen := make(map[memory.Ref]bool, len(order))
	lastIdx := make(map[int]int)
	for _, r := range order {
		if r.Proc < 0 || r.Proc >= len(in.hist) || r.Index < 0 || r.Index >= len(in.hist[r.Proc]) {
			return fmt.Errorf("coherence: write order reference %s out of range", r)
		}
		o := in.hist[r.Proc][r.Index]
		if _, ok := o.Writes(); !ok {
			return fmt.Errorf("coherence: write order entry %s (%s) does not write", r, o)
		}
		if seen[r] {
			return fmt.Errorf("coherence: write order lists %s twice", r)
		}
		seen[r] = true
		if last, ok := lastIdx[r.Proc]; ok && r.Index <= last {
			return fmt.Errorf("coherence: write order violates program order at %s", r)
		}
		lastIdx[r.Proc] = r.Index
	}
	if len(order) != writers {
		return fmt.Errorf("coherence: write order lists %d operations, instance has %d writing operations",
			len(order), writers)
	}
	return nil
}

// writeOrderInstance runs the §5.2 algorithm over a projected instance.
// order holds projection refs of the writing operations.
func writeOrderInstance(inst *instance, order []memory.Ref) (r *Result, err error) {
	defer func() { stampOps(r, inst) }()
	if err := inst.validateWriteOrder(order); err != nil {
		return nil, err
	}
	incoherent := &Result{Coherent: false, Decided: true, Algorithm: "write-order"}

	// Determine the pre-write-region value. It may be forced by a
	// declared initial value or by a read-modify-write standing first in
	// the write order; otherwise it is unknown and we try each candidate
	// (the first-read value of each history whose window reaches the
	// pre-write region).
	var init *memory.Value
	if inst.init != nil {
		v := *inst.init
		init = &v
	}
	if init == nil && len(order) > 0 {
		if first := inst.hist[order[0].Proc][order[0].Index]; first.Kind == memory.ReadModifyWrite {
			v := first.Data
			init = &v
		}
	}
	if init != nil {
		sched, ok := placeReads(inst, order, init)
		if !ok {
			return incoherent, nil
		}
		return &Result{Coherent: true, Decided: true, Schedule: inst.translate(sched), Algorithm: "write-order"}, nil
	}
	// Unknown pre-write value: candidates are the values of reads that
	// may land in the pre-write region (the first reads of each history
	// that precede the history's first write).
	candidates := make(map[memory.Value]bool)
	for _, h := range inst.hist {
		for _, o := range h {
			if _, isWrite := o.Writes(); isWrite {
				break
			}
			candidates[o.Data] = true
		}
	}
	if len(candidates) == 0 {
		sched, ok := placeReads(inst, order, nil)
		if !ok {
			return incoherent, nil
		}
		return &Result{Coherent: true, Decided: true, Schedule: inst.translate(sched), Algorithm: "write-order"}, nil
	}
	for v := range candidates {
		v := v
		if sched, ok := placeReads(inst, order, &v); ok {
			return &Result{Coherent: true, Decided: true, Schedule: inst.translate(sched), Algorithm: "write-order"}, nil
		}
	}
	return incoherent, nil
}

// placeReads attempts to extend the write order into a full coherent
// schedule with the pre-write region bound to init (nil means the region
// matches no read). It returns the schedule in projection refs.
func placeReads(inst *instance, order []memory.Ref, init *memory.Value) ([]memory.Ref, bool) {
	nw := len(order)
	// value[b] is the memory value in force in region b: region 0
	// precedes all writes; region b (1-based) follows the b-th write.
	value := make([]memory.Value, nw+1)
	valueBound := make([]bool, nw+1)
	if init != nil {
		value[0], valueBound[0] = *init, true
	}
	regionOf := make(map[memory.Ref]int, nw)
	for b, r := range order {
		o := inst.hist[r.Proc][r.Index]
		// A read-modify-write embedded in the write order must read the
		// value in force before it.
		if dr, ok := o.Reads(); ok {
			if !valueBound[b] || value[b] != dr {
				return nil, false
			}
		}
		dw, _ := o.Writes()
		value[b+1], valueBound[b+1] = dw, true
		regionOf[r] = b + 1
	}

	// Final value: the last write must store it; with no writes, a bound
	// pre-write value must agree (mirroring memory.CheckCoherent).
	if inst.final != nil {
		if nw > 0 && value[nw] != *inst.final {
			return nil, false
		}
		if nw == 0 && valueBound[0] && value[0] != *inst.final {
			return nil, false
		}
	}

	// Insert reads. reads[b] accumulates the reads assigned to region b.
	// Appending preserves per-history program order within a region
	// because each history is traversed in program order.
	reads := make([][]memory.Ref, nw+1)
	for h := range inst.hist {
		hist := inst.hist[h]
		// nextWriteRegion[i]: region index of the first writing op of
		// this history at or after op i (nw+1 if none). A read at i must
		// be placed in a region strictly below nextWriteRegion[i+1].
		nextWriteRegion := make([]int, len(hist)+1)
		nextWriteRegion[len(hist)] = nw + 1
		for i := len(hist) - 1; i >= 0; i-- {
			if _, ok := hist[i].Writes(); ok {
				nextWriteRegion[i] = regionOf[memory.Ref{Proc: h, Index: i}]
			} else {
				nextWriteRegion[i] = nextWriteRegion[i+1]
			}
		}
		curRegion := 0
		for i, o := range hist {
			ref := memory.Ref{Proc: h, Index: i}
			if _, ok := o.Writes(); ok {
				curRegion = regionOf[ref]
				continue
			}
			d := o.Data
			limit := nextWriteRegion[i+1]
			placed := false
			for b := curRegion; b < limit && b <= nw; b++ {
				if valueBound[b] && value[b] == d {
					reads[b] = append(reads[b], ref)
					curRegion = b
					placed = true
					break
				}
			}
			if !placed {
				return nil, false
			}
		}
	}

	// Emit the schedule: region 0 reads, then each write followed by its
	// region's reads.
	sched := make([]memory.Ref, 0, inst.nops)
	sched = append(sched, reads[0]...)
	for b, r := range order {
		sched = append(sched, r)
		sched = append(sched, reads[b+1]...)
	}
	return sched, true
}

// CheckRMWWriteOrder decides VMC in O(n) for instances consisting solely
// of read-modify-write operations when the write order is supplied: the
// write order is then a total order of all operations, and coherence
// holds iff the read component of each operation returns the value stored
// by the write component of its predecessor (§5.2, final remark).
func CheckRMWWriteOrder(ctx context.Context, exec *memory.Execution, addr memory.Addr, writeOrder []memory.Ref) (res *Result, err error) {
	if err := exec.Validate(); err != nil {
		return nil, err
	}
	if e := solver.Interrupted(ctx); e != nil {
		return nil, withAddr(e, addr)
	}
	sp, ctx := beginSolve(ctx, "rmw-write-order", addr)
	defer func() { endSolve(ctx, sp, res, err) }()
	inst := project(exec, addr)
	if !inst.allRMW() {
		return nil, fmt.Errorf("coherence: address %d has non-RMW operations; use SolveWithWriteOrder", addr)
	}
	if len(writeOrder) != inst.nops {
		return nil, fmt.Errorf("coherence: write order lists %d operations, instance has %d",
			len(writeOrder), inst.nops)
	}
	order, err := inst.toProjectionRefs(writeOrder, addr)
	if err != nil {
		return nil, err
	}
	if err := inst.validateWriteOrder(order); err != nil {
		return nil, err
	}
	incoherent := &Result{Coherent: false, Decided: true, Algorithm: "rmw-write-order"}
	stampOps(incoherent, inst)

	var cur memory.Value
	bound := false
	if inst.init != nil {
		cur, bound = *inst.init, true
	}
	for _, r := range order {
		o := inst.hist[r.Proc][r.Index]
		if bound && o.Data != cur {
			return incoherent, nil
		}
		cur, bound = o.Store, true
	}
	if inst.final != nil && bound && cur != *inst.final {
		return incoherent, nil
	}
	res = &Result{
		Coherent:  true,
		Decided:   true,
		Schedule:  inst.translate(order),
		Algorithm: "rmw-write-order",
	}
	stampOps(res, inst)
	return res, nil
}
