package coherence

import (
	"context"
	"math/big"
	"math/rand"
	"testing"

	"memverify/internal/memory"
)

// bruteForceCount enumerates all interleavings and counts the coherent
// ones.
func bruteForceCount(exec *memory.Execution, addr memory.Addr) int64 {
	proj, back := exec.Project(addr)
	pos := make([]int, len(proj.Histories))
	var sched memory.Schedule
	var count int64
	var walk func()
	walk = func() {
		done := true
		for h := range proj.Histories {
			if pos[h] < len(proj.Histories[h]) {
				done = false
				break
			}
		}
		if done {
			orig := make(memory.Schedule, len(sched))
			for i, r := range sched {
				orig[i] = back[r]
			}
			if memory.CheckCoherent(exec, addr, orig) == nil {
				count++
			}
			return
		}
		for h := range proj.Histories {
			if pos[h] >= len(proj.Histories[h]) {
				continue
			}
			sched = append(sched, memory.Ref{Proc: h, Index: pos[h]})
			pos[h]++
			walk()
			pos[h]--
			sched = sched[:len(sched)-1]
		}
	}
	walk()
	return count
}

func TestCountMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	nonTrivial := 0
	for i := 0; i < 300; i++ {
		exec := randomInstance(rng)
		want := bruteForceCount(exec, 0)
		got, err := Count(context.Background(), exec, 0)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cmp(big.NewInt(want)) != 0 {
			t.Fatalf("instance %d: Count=%v brute=%d\nhistories=%v init=%v final=%v",
				i, got, want, exec.Histories, exec.Initial, exec.Final)
		}
		if want > 1 {
			nonTrivial++
		}
	}
	if nonTrivial < 20 {
		t.Errorf("only %d instances had multiple schedules", nonTrivial)
	}
}

func TestCountZeroIffIncoherent(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for i := 0; i < 200; i++ {
		exec := randomInstance(rng)
		res, err := Solve(context.Background(), exec, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		n, err := Count(context.Background(), exec, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Coherent != (n.Sign() > 0) {
			t.Fatalf("instance %d: Coherent=%v but Count=%v", i, res.Coherent, n)
		}
	}
}

func TestCountKnownValues(t *testing.T) {
	// Two independent single-write histories, no reads: 2 interleavings.
	e := memory.NewExecution(
		memory.History{memory.W(0, 1)},
		memory.History{memory.W(0, 2)},
	)
	n, err := Count(context.Background(), e, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n.Int64() != 2 {
		t.Errorf("Count = %v, want 2", n)
	}
	// Final value pins the order: 1.
	e.SetFinal(0, 2)
	n, err = Count(context.Background(), e, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n.Int64() != 1 {
		t.Errorf("Count with final = %v, want 1", n)
	}
	// Empty instance: exactly the empty schedule.
	n, err = Count(context.Background(), memory.NewExecution(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if n.Int64() != 1 {
		t.Errorf("empty Count = %v, want 1", n)
	}
}

func TestCountLargeInstanceFeasible(t *testing.T) {
	// 2 histories x 12 independent writes each: C(24,12) interleavings —
	// enumeration would visit ~2.7M schedules, the DP visits 13x13
	// states.
	var h1, h2 memory.History
	for i := 0; i < 12; i++ {
		h1 = append(h1, memory.W(0, 1))
		h2 = append(h2, memory.W(0, 1))
	}
	e := memory.NewExecution(h1, h2)
	n, err := Count(context.Background(), e, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := new(big.Int).Binomial(24, 12)
	if n.Cmp(want) != 0 {
		t.Errorf("Count = %v, want C(24,12) = %v", n, want)
	}
}
