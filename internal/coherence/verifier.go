package coherence

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"

	"memverify/internal/memory"
	"memverify/internal/obs"
	"memverify/internal/solver"
)

// Verifier is the unified facade over every coherence decision
// procedure in this package. One Verifier, configured once with the
// functional options of internal/solver, replaces the pre-facade sprawl
// of entry points (Solve, SolveAuto, SolvePortfolio, SolveResilient,
// VerifyExecution, VerifyExecutionParallel, VerifyExecutionPortfolio,
// VerifyExecutionResilient, VerifyExecutionCheckpoint) — those remain as
// deprecated one-line wrappers over this type.
//
//	v := coherence.NewVerifier(
//	        solver.WithStrategy(solver.StrategyPortfolio),
//	        solver.WithWorkers(8),
//	        solver.WithBudget(solver.WithMaxStates(1e6), solver.WithTimeout(time.Second)),
//	)
//	report, err := v.Verify(ctx, exec)
//
// A Verifier is immutable after construction and safe for concurrent
// use; the long-running verification service constructs a handful and
// shares them across all requests.
type Verifier struct {
	cfg *solver.Config
}

// NewVerifier builds a Verifier from functional options. With no
// options it verifies sequentially with StrategyAuto and no resource
// bound — the semantics of the old VerifyExecution.
func NewVerifier(opts ...solver.ConfigOption) *Verifier {
	return &Verifier{cfg: solver.NewConfig(opts...)}
}

// Config returns the verifier's configuration (read-only by contract).
func (v *Verifier) Config() *solver.Config { return v.cfg }

// AddrReport is the per-address outcome of a facade verification. It is
// strategy-neutral: the exact strategies always decide (Verdict is
// Coherent or Incoherent, Result non-nil), while StrategyResilient may
// end at VerdictUnknown with a nil Result and the necessary-condition
// evidence in Checks.
type AddrReport struct {
	// Addr is the address this report covers.
	Addr memory.Addr
	// Verdict is the three-valued answer for the address.
	Verdict ResilientVerdict
	// Rung is the degradation-ladder rung that produced the verdict
	// (RungExact for the non-resilient strategies).
	Rung Rung
	// Result is the deciding solver's result (certificate, algorithm,
	// per-solve stats); nil when Verdict is Unknown.
	Result *Result
	// Stats aggregates all work spent on the address, including the
	// partial stats of exhausted ladder rungs.
	Stats Stats
	// Checks lists the necessary-condition outcomes when the resilient
	// ladder reached its last rung.
	Checks []string
}

// Resilient converts the report to the legacy ResilientResult shape.
func (ar *AddrReport) Resilient() *ResilientResult {
	return &ResilientResult{
		Verdict: ar.Verdict,
		Rung:    ar.Rung,
		Result:  ar.Result,
		Stats:   ar.Stats,
		Checks:  ar.Checks,
	}
}

// addrReportFromResult wraps a decided two-valued result.
func addrReportFromResult(addr memory.Addr, r *Result) *AddrReport {
	ar := &AddrReport{Addr: addr, Verdict: VerdictCoherent, Rung: RungExact, Result: r, Stats: r.Stats}
	if !r.Coherent {
		ar.Verdict = VerdictIncoherent
	}
	return ar
}

// addrReportFromResilient wraps a degradation-ladder outcome.
func addrReportFromResilient(addr memory.Addr, rr *ResilientResult) *AddrReport {
	return &AddrReport{
		Addr:    addr,
		Verdict: rr.Verdict,
		Rung:    rr.Rung,
		Result:  rr.Result,
		Stats:   rr.Stats,
		Checks:  rr.Checks,
	}
}

// Report is the execution-level outcome of Verifier.Verify: one
// AddrReport per address (in ascending address order) plus the
// aggregate verdict and stats.
type Report struct {
	// Verdict aggregates the per-address verdicts: Incoherent if any
	// address is incoherent, else Unknown if any address is undecided,
	// else Coherent.
	Verdict ResilientVerdict
	// Addrs holds the per-address reports, sorted by address.
	Addrs []AddrReport
	// Stats merges the per-address stats.
	Stats Stats
	// Checkpoint carries the resumable state of a budget-aborted
	// checkpointed run (nil otherwise); see solver.WithCheckpoint.
	Checkpoint *Checkpoint
}

// add appends an address report and folds in its stats.
func (r *Report) add(ar *AddrReport) {
	r.Addrs = append(r.Addrs, *ar)
	r.Stats.Merge(ar.Stats)
}

// finalize computes the aggregate verdict.
func (r *Report) finalize() {
	r.Verdict = VerdictCoherent
	for i := range r.Addrs {
		switch r.Addrs[i].Verdict {
		case VerdictIncoherent:
			r.Verdict = VerdictIncoherent
			return
		case VerdictUnknown:
			r.Verdict = VerdictUnknown
		}
	}
}

// Coherent reports whether every address was proven coherent.
func (r *Report) Coherent() bool { return r.Verdict == VerdictCoherent }

// Results returns the decided per-address results as the map shape the
// legacy VerifyExecution* entry points returned. Addresses whose
// resilient verdict is Unknown are absent.
func (r *Report) Results() map[memory.Addr]*Result {
	out := make(map[memory.Addr]*Result, len(r.Addrs))
	for i := range r.Addrs {
		if res := r.Addrs[i].Result; res != nil {
			out[r.Addrs[i].Addr] = res
		}
	}
	return out
}

// FirstViolation returns the lowest address whose verdict is not
// Coherent, in address order (ok=false when all addresses are coherent).
func (r *Report) FirstViolation() (memory.Addr, bool) {
	for i := range r.Addrs {
		if r.Addrs[i].Verdict != VerdictCoherent {
			return r.Addrs[i].Addr, true
		}
	}
	return 0, false
}

// Solve decides VMC for a single address under the configured strategy
// and budget. For the always-deciding strategies the returned Result is
// never nil on a nil error; under StrategyResilient an Unknown ladder
// outcome is reported as a Result with Decided == false (use SolveAddr
// for the full three-valued report).
func (v *Verifier) Solve(ctx context.Context, exec *memory.Execution, addr memory.Addr) (*Result, error) {
	ar, err := v.SolveAddr(ctx, exec, addr)
	if err != nil {
		return nil, err
	}
	if ar.Result != nil {
		return ar.Result, nil
	}
	// Resilient ladder exhausted without an answer: surface the legacy
	// undecided shape rather than inventing a verdict.
	return &Result{Coherent: false, Decided: false, Algorithm: "resilient-unknown", Stats: ar.Stats}, nil
}

// SolveAddr decides VMC for a single address under the configured
// strategy and returns the strategy-neutral per-address report.
func (v *Verifier) SolveAddr(ctx context.Context, exec *memory.Execution, addr memory.Addr) (*AddrReport, error) {
	if err := exec.Validate(); err != nil {
		return nil, err
	}
	return v.solveAddrOpts(ctx, exec, addr, v.cfg.Options)
}

// solveAddrOpts dispatches one address to the configured strategy with
// an explicit per-solve Options value (the checkpointed loop derives a
// per-address variant of the configured budget).
func (v *Verifier) solveAddrOpts(ctx context.Context, exec *memory.Execution, addr memory.Addr, opts *Options) (*AddrReport, error) {
	switch v.cfg.Strategy {
	case solver.StrategyResilient:
		rr, err := solveResilientAddr(ctx, exec, addr, v.cfg.WriteOrders[addr], opts)
		if err != nil {
			return nil, err
		}
		return addrReportFromResilient(addr, rr), nil
	case solver.StrategyPortfolio:
		r, err := solvePortfolioAddr(ctx, exec, addr, opts)
		if err != nil {
			return nil, err
		}
		return addrReportFromResult(addr, r), nil
	case solver.StrategyExact:
		r, err := solveExact(ctx, exec, addr, opts)
		if err != nil {
			return nil, err
		}
		return addrReportFromResult(addr, r), nil
	case solver.StrategyFast:
		r, err := solveFastAddr(ctx, exec, addr, opts)
		if err != nil {
			return nil, err
		}
		ar := addrReportFromResult(addr, r)
		if r.Algorithm == "fastpath" {
			// The frontline decided; record its rung for reports and spans.
			ar.Rung = RungFast
			ar.Stats.Rung = int(RungFast)
			ar.Result.Stats.Rung = int(RungFast)
		}
		return ar, nil
	default:
		r, err := solveAutoAddr(ctx, exec, addr, opts)
		if err != nil {
			return nil, err
		}
		return addrReportFromResult(addr, r), nil
	}
}

// Verify checks every address of the execution under the configured
// strategy, budget and parallelism.
//
// Error semantics follow the strategy, preserving the legacy entry
// points' contracts: the exact strategies abort on the first per-address
// budget trip (in address order — deterministic even with workers),
// returning the partial Report alongside the *solver.ErrBudgetExceeded;
// StrategyResilient degrades the affected address and continues, so its
// Report always covers every address unless the context is cancelled.
// With solver.WithCheckpoint configured, verification is sequential,
// resumes from the checkpoint file when it exists, and re-writes it on a
// budget abort.
func (v *Verifier) Verify(ctx context.Context, exec *memory.Execution) (*Report, error) {
	if err := exec.Validate(); err != nil {
		return nil, err
	}
	if v.cfg.CheckpointPath != "" {
		return v.verifyCheckpointFile(ctx, exec)
	}
	if v.cfg.Workers > 1 {
		return v.verifyParallel(ctx, exec, v.cfg.Workers)
	}
	return v.verifySequential(ctx, exec)
}

// verifySequential is the address-order loop behind sequential Verify.
func (v *Verifier) verifySequential(ctx context.Context, exec *memory.Execution) (*Report, error) {
	rep := &Report{}
	for _, a := range exec.Addresses() {
		ar, err := v.solveAddrOpts(ctx, exec, a, v.cfg.Options)
		if err != nil {
			return rep, err
		}
		rep.add(ar)
	}
	rep.finalize()
	return rep, nil
}

// verifyParallel fans the per-address checks out across workers
// goroutines. Coherence is defined address-by-address (Section 3), so
// the checks are embarrassingly parallel; on wide multi-address traces
// this is a near-linear speedup.
//
// Results are deterministic: each per-address solve is independent and
// runs to its own completion or budget regardless of goroutine
// scheduling, and when several addresses fail the returned error is
// always the one for the lowest address — so two runs over the same
// input produce diffable output.
//
// Addresses are dispatched largest-projection-first (see hardnessOrder):
// the per-address search is worst-case exponential in projection size,
// so starting the heaviest address last would leave one worker grinding
// alone after the rest drain. Dispatch order affects only load balance,
// never results.
//
// When the configuration also carries solver.WithParallelSearch, the
// intra-instance worker team goes to the hardest address only (the LPT
// head): that address is the one whose single search dominates the
// makespan, and giving every concurrent per-address solve its own team
// would oversubscribe the machine workers × team wide. The remaining
// addresses solve sequentially as before. Parallelism never changes
// verdicts, so this is purely a scheduling decision.
func (v *Verifier) verifyParallel(ctx context.Context, exec *memory.Execution, workers int) (*Report, error) {
	addrs := exec.Addresses()
	if workers > len(addrs) {
		workers = len(addrs)
	}
	if workers <= 1 {
		return v.verifySequential(ctx, exec)
	}

	order := hardnessOrder(addrs, projectionSizes(exec))
	teamOpts, soloOpts := v.cfg.Options, v.cfg.Options
	hardest := -1
	if teamOpts.PSearch() > 1 && len(addrs) > 1 {
		hardest = order[0]
		solo := teamOpts.Clone()
		solo.ParallelSearch = 0
		soloOpts = solo
	}

	// Workers write into per-address slots, so no result ordering
	// depends on channel receive order.
	reports := make([]*AddrReport, len(addrs))
	errs := make([]error, len(addrs))
	next := make(chan int)
	var wg sync.WaitGroup
	tr := obs.TracerFrom(ctx)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			wctx := ctx
			if tr != nil {
				sp, sctx := tr.BeginWorker(ctx, "verify-worker", w)
				defer sp.EndWorker(w, "done")
				wctx = sctx
			}
			for i := range next {
				opts := soloOpts
				if i == hardest {
					opts = teamOpts
				}
				reports[i], errs[i] = v.solveAddrOpts(wctx, exec, addrs[i], opts)
			}
		}()
	}
	for _, i := range order {
		next <- i
	}
	close(next)
	wg.Wait()

	rep := &Report{}
	for i := range addrs {
		if errs[i] != nil {
			return rep, errs[i]
		}
		rep.add(reports[i])
	}
	rep.finalize()
	return rep, nil
}

// VerifyCheckpoint is Verify with explicit checkpoint state: results
// already present in resume are replayed without solving, the
// interrupted address's search is seeded from its saved memo table, and
// on a budget abort the returned Report's Checkpoint field captures
// everything needed to continue later (nil on success). Checkpointing
// serializes the address loop by design and requires a strategy whose
// searches snapshot (StrategyAuto or StrategyExact).
func (v *Verifier) VerifyCheckpoint(ctx context.Context, exec *memory.Execution, resume *Checkpoint) (*Report, error) {
	if err := exec.Validate(); err != nil {
		return nil, err
	}
	switch v.cfg.Strategy {
	case solver.StrategyAuto, solver.StrategyExact:
	default:
		return nil, fmt.Errorf("coherence: checkpointed verification requires the auto or exact strategy, not %v", v.cfg.Strategy)
	}
	run, err := ResumeCheckpointRun(exec, resume)
	if err != nil {
		return nil, err
	}
	rep := &Report{}
	for _, a := range exec.Addresses() {
		if r, ok := run.Lookup(a); ok {
			rep.add(addrReportFromResult(a, r))
			continue
		}
		ar, err := v.solveAddrOpts(ctx, exec, a, run.Configure(a, v.cfg.Options))
		if err != nil {
			if _, ok := solver.AsBudgetError(err); ok {
				rep.Checkpoint = run.Checkpoint()
			}
			return rep, err
		}
		run.Record(a, ar.Result)
		rep.add(ar)
	}
	rep.finalize()
	return rep, nil
}

// verifyCheckpointFile implements solver.WithCheckpoint: resume from the
// configured path when a checkpoint file exists there, and persist the
// resumable state back to it when a budget trip aborts the run.
func (v *Verifier) verifyCheckpointFile(ctx context.Context, exec *memory.Execution) (*Report, error) {
	var resume *Checkpoint
	if _, statErr := os.Stat(v.cfg.CheckpointPath); statErr == nil {
		ck, err := LoadCheckpoint(v.cfg.CheckpointPath)
		if err != nil {
			return nil, err
		}
		resume = ck
	} else if !errors.Is(statErr, os.ErrNotExist) {
		return nil, statErr
	}
	rep, err := v.VerifyCheckpoint(ctx, exec, resume)
	if rep != nil && rep.Checkpoint != nil {
		if werr := rep.Checkpoint.WriteFile(v.cfg.CheckpointPath); werr != nil {
			return rep, errors.Join(err, werr)
		}
	}
	return rep, err
}

// AddressesByHardness returns the execution's addresses ordered
// largest-projection-first (ties by ascending address) — the LPT
// dispatch order used by parallel verification. The verification
// service uses it to shard a request's per-address work across its
// global worker fleet in the same order.
func AddressesByHardness(exec *memory.Execution) []memory.Addr {
	addrs := exec.Addresses()
	sizes := projectionSizes(exec)
	out := make([]memory.Addr, len(addrs))
	for i, idx := range hardnessOrder(addrs, sizes) {
		out[i] = addrs[idx]
	}
	return out
}
