// Package coherence implements solvers for the Verifying Memory Coherence
// (VMC) decision problem of Cantin, Lipasti & Smith (Definition 4.1):
// given a set of process histories of reads and writes to one address, is
// there a coherent schedule?
//
// VMC is NP-Complete in general (Theorem 4.2), so the package provides
// one unified facade — Verifier, constructed with the functional
// options of internal/solver — over
//
//   - a complete exponential search (solver.StrategyExact) that
//     realizes the paper's O(n^k) bound for k process histories via
//     memoization and an eager read-scheduling rule;
//   - the polynomial algorithms for every tractable row of the paper's
//     complexity-summary table (Figure 5.3): write-order supplied (§5.2),
//     read-map known (at most one write per value), one operation per
//     process, and read-modify-write chains — dispatched automatically
//     by solver.StrategyAuto;
//   - per-execution verification (Verifier.Verify), which checks each
//     address independently, per the paper's definition of a coherent
//     multiprocessor execution, optionally fanned out across workers
//     (solver.WithWorkers) in largest-projection-first order;
//   - a portfolio racer (solver.StrategyPortfolio) that stages the
//     applicable algorithms on a shared bounded pool and keeps the
//     first finisher;
//   - a graceful-degradation ladder (solver.StrategyResilient) ending
//     in an explicit Unknown verdict instead of an error;
//   - a polynomial constraint-propagation frontline
//     (solver.StrategyFast, fastpath.go) that decides structured
//     instances of any size in near-linear time — sound in both
//     directions, escalating to the exact solvers only on an explicit
//     INCONCLUSIVE — and also opens the portfolio and resilient
//     strategies (disable with solver.WithoutFastPath).
//
// The pre-facade entry points (Solve, SolveAuto, SolvePortfolio,
// SolveResilient, VerifyExecution and friends) remain as deprecated
// one-line wrappers in deprecated.go.
//
// Every entry point takes a context.Context and honors the unified
// resource budget of internal/solver: cancellation, the per-solve
// wall-clock Options.Timeout, and the Options.MaxStates bound all abort
// the solve with a *solver.ErrBudgetExceeded carrying the partial Stats.
//
// All solvers return a certificate schedule on success; certificates are
// validated by memory.CheckCoherent in the package tests.
package coherence

import (
	"context"

	"memverify/internal/memory"
	"memverify/internal/obs"
	"memverify/internal/solver"
)

// Options control the search-based solvers; the type is shared with
// internal/consistency via internal/solver. The zero value (or nil) asks
// for a complete, memoized, eager-read search with no resource bound.
// Construct with a literal or with solver.New(solver.WithMaxStates(n),
// solver.WithTimeout(d), ...).
type Options = solver.Options

// Stats describes the work a solver performed (shared with
// internal/consistency via internal/solver).
type Stats = solver.Stats

// Result is the outcome of a VMC query. It implements solver.Verdict.
type Result struct {
	// Coherent reports whether a coherent schedule exists.
	Coherent bool
	// Decided is retained for legacy callers: solvers now report budget
	// exhaustion as a *solver.ErrBudgetExceeded instead of returning an
	// undecided result, so any Result returned without error has
	// Decided == true.
	Decided bool
	// Schedule is a certificate coherent schedule when Coherent is true,
	// with references into the execution the solver was given.
	Schedule memory.Schedule
	// Algorithm names the algorithm that produced the result.
	Algorithm string
	// Stats describes the work performed.
	Stats Stats
}

// Holds implements solver.Verdict.
func (r *Result) Holds() bool { return r.Coherent }

// IsDecided implements solver.Verdict.
func (r *Result) IsDecided() bool { return r.Decided }

// AlgorithmName implements solver.Verdict.
func (r *Result) AlgorithmName() string { return r.Algorithm }

// SolverStats implements solver.Verdict.
func (r *Result) SolverStats() solver.Stats { return r.Stats }

// Certificate implements solver.Verdict.
func (r *Result) Certificate() memory.Schedule { return r.Schedule }

// instance is a single-address VMC instance extracted from an execution:
// the per-process histories restricted to one address, the optional
// initial and final values, and the mapping back to the original refs.
type instance struct {
	addr memory.Addr
	hist []memory.History
	back map[memory.Ref]memory.Ref
	// backIdx is the slice-backed alternative to back used by the batch
	// driver's grouped projection: backIdx[p][i] is the original ref of
	// the i-th projected op of process p. At most one of back/backIdx is
	// set; both nil means the identity projection.
	backIdx [][]memory.Ref
	init    *memory.Value
	final   *memory.Value
	nops    int
}

// project builds the single-address instance for addr.
func project(exec *memory.Execution, addr memory.Addr) *instance {
	proj, back := exec.Project(addr)
	inst := &instance{
		addr: addr,
		hist: proj.Histories,
		back: back,
		nops: proj.NumOps(),
	}
	if d, ok := proj.Initial[addr]; ok {
		v := d
		inst.init = &v
	}
	if d, ok := proj.Final[addr]; ok {
		v := d
		inst.final = &v
	}
	return inst
}

// translate maps a schedule over projection refs back to original refs.
// A nil back-map means the instance IS the original execution (the
// batch driver's identity projection), so refs translate to themselves.
func (in *instance) translate(s []memory.Ref) memory.Schedule {
	out := make(memory.Schedule, len(s))
	if in.backIdx != nil {
		for i, r := range s {
			out[i] = in.backIdx[r.Proc][r.Index]
		}
		return out
	}
	if in.back == nil {
		copy(out, s)
		return out
	}
	for i, r := range s {
		out[i] = in.back[r]
	}
	return out
}

// hasWrites reports whether any operation in the instance writes.
func (in *instance) hasWrites() bool {
	for _, h := range in.hist {
		for _, o := range h {
			if _, ok := o.Writes(); ok {
				return true
			}
		}
	}
	return false
}

// allRMW reports whether every operation is a read-modify-write.
func (in *instance) allRMW() bool {
	for _, h := range in.hist {
		for _, o := range h {
			if o.Kind != memory.ReadModifyWrite {
				return false
			}
		}
	}
	return true
}

// maxOpsPerProcess returns the length of the longest projected history.
func (in *instance) maxOpsPerProcess() int {
	max := 0
	for _, h := range in.hist {
		if len(h) > max {
			max = len(h)
		}
	}
	return max
}

// maxWritesPerValue returns the largest number of writes of any single
// value.
func (in *instance) maxWritesPerValue() int {
	counts := make(map[memory.Value]int)
	max := 0
	for _, h := range in.hist {
		for _, o := range h {
			if d, ok := o.Writes(); ok {
				counts[d]++
				if counts[d] > max {
					max = counts[d]
				}
			}
		}
	}
	return max
}

// stampOps records the work of a direct polynomial algorithm: each
// operation processed counts as one state, so -stats output stays
// meaningful on every algorithm path.
func stampOps(r *Result, inst *instance) {
	if r != nil && r.Stats.States == 0 {
		r.Stats.States = inst.nops
	}
}

// beginSolve opens a per-address observability span named after the
// entry point and bumps the live solve counter. With no observer on the
// context it returns a no-op span and the unchanged context at the cost
// of one context lookup.
func beginSolve(ctx context.Context, name string, addr memory.Addr) (obs.Span, context.Context) {
	obs.MetricsFrom(ctx).SolveBegin()
	return obs.TracerFrom(ctx).BeginAddr(ctx, name, int64(addr))
}

// endSolve closes a solve span with the outcome (verdict + deciding
// algorithm, or the abort reason) and marks the solve finished.
func endSolve(ctx context.Context, sp obs.Span, r *Result, err error) {
	obs.MetricsFrom(ctx).SolveEnd()
	switch {
	case err != nil:
		detail := "error: " + err.Error()
		if be, ok := solver.AsBudgetError(err); ok {
			detail = "budget: " + be.Reason.String()
		}
		sp.End(detail, 0)
	case r.Coherent:
		sp.End("coherent ("+r.Algorithm+")", int64(r.Stats.States))
	default:
		sp.End("incoherent ("+r.Algorithm+")", int64(r.Stats.States))
	}
}

// withAddr annotates a budget error with the address being solved.
func withAddr(e *solver.ErrBudgetExceeded, addr memory.Addr) *solver.ErrBudgetExceeded {
	if e != nil && !e.HasAddr {
		e.Addr, e.HasAddr = addr, true
	}
	return e
}

// solveExact decides VMC for the operations of exec at address addr
// using the general memoized search. It is complete: absent a budget it
// always returns a decided result (at worst in exponential time — VMC
// is NP-Complete). With k histories and n operations the memoized
// search visits O(n^k · |D|) states, matching the constant-process
// polynomial bound of Figure 5.3. A tripped budget (states, deadline,
// or cancellation) yields a nil Result and a *solver.ErrBudgetExceeded.
func solveExact(ctx context.Context, exec *memory.Execution, addr memory.Addr, opts *Options) (*Result, error) {
	if err := exec.Validate(); err != nil {
		return nil, err
	}
	sp, ctx := beginSolve(ctx, "solve", addr)
	inst := project(exec, addr)
	r, e := searchInstance(ctx, inst, opts)
	if e != nil {
		err := withAddr(e, addr)
		endSolve(ctx, sp, nil, err)
		return nil, err
	}
	endSolve(ctx, sp, r, nil)
	return r, nil
}

// solveAutoAddr decides VMC for one address, dispatching to the fastest
// algorithm whose preconditions hold (Figure 5.3 rows):
//
//  1. at most one write per value  -> read-map algorithm (linear);
//  2. one operation per process    -> grouping / Eulerian-path algorithm;
//  3. otherwise                    -> general memoized search.
//
// The write-order algorithms require extra input and are exposed
// separately (SolveWithWriteOrder); solver.StrategyPortfolio instead
// races the applicable algorithms concurrently.
func solveAutoAddr(ctx context.Context, exec *memory.Execution, addr memory.Addr, opts *Options) (*Result, error) {
	if err := exec.Validate(); err != nil {
		return nil, err
	}
	sp, ctx := beginSolve(ctx, "solve-auto", addr)
	inst := project(exec, addr)
	r, err := solveAutoInstance(ctx, inst, opts)
	if err != nil {
		if be, ok := solver.AsBudgetError(err); ok {
			err = withAddr(be, addr)
		}
		endSolve(ctx, sp, nil, err)
		return nil, err
	}
	endSolve(ctx, sp, r, nil)
	return r, nil
}

// solveAutoInstance is SolveAuto on a projected instance.
func solveAutoInstance(ctx context.Context, inst *instance, opts *Options) (*Result, error) {
	if e := solver.Interrupted(ctx); e != nil {
		return nil, e
	}
	if inst.maxWritesPerValue() <= 1 {
		if r, ok := readMapInstance(inst); ok {
			return r, nil
		}
		// Ambiguous corner (initial value collides with a written value):
		// fall through to the general search.
	}
	if inst.maxOpsPerProcess() <= 1 {
		if inst.allRMW() {
			return eulerInstance(inst), nil
		}
		if r, ok := singleOpInstance(inst); ok {
			return r, nil
		}
	}
	r, e := searchInstance(ctx, inst, opts)
	if e != nil {
		return nil, e
	}
	return r, nil
}
