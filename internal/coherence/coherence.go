// Package coherence implements solvers for the Verifying Memory Coherence
// (VMC) decision problem of Cantin, Lipasti & Smith (Definition 4.1):
// given a set of process histories of reads and writes to one address, is
// there a coherent schedule?
//
// VMC is NP-Complete in general (Theorem 4.2), so the package provides
//
//   - a complete exponential search (Solve) that realizes the paper's
//     O(n^k) bound for k process histories via memoization and an eager
//     read-scheduling rule;
//   - the polynomial algorithms for every tractable row of the paper's
//     complexity-summary table (Figure 5.3): write-order supplied (§5.2),
//     read-map known (at most one write per value), one operation per
//     process, and read-modify-write chains;
//   - per-execution verification (VerifyExecution), which checks each
//     address independently, per the paper's definition of a coherent
//     multiprocessor execution.
//
// All solvers return a certificate schedule on success; certificates are
// validated by memory.CheckCoherent in the package tests.
package coherence

import (
	"fmt"

	"memverify/internal/memory"
)

// Options control the search-based solvers. The zero value (or nil) asks
// for a complete, memoized, eager-read search with no resource bound.
type Options struct {
	// MaxStates bounds the number of search states explored. 0 means
	// unlimited. When the bound is hit the result has Decided == false.
	MaxStates int
	// DisableMemoization turns off failed-state caching (ablation knob:
	// without it the search is the naive exponential interleaving
	// enumeration, not the paper's O(n^k) constant-process algorithm).
	DisableMemoization bool
	// DisableEagerReads turns off the rule that schedules an enabled read
	// immediately when its value matches the current one (ablation knob;
	// the rule is sound because reads do not change the memory state, so
	// any coherent schedule can be rearranged to schedule such a read at
	// the point it first becomes enabled).
	DisableEagerReads bool
	// DisableWriteGuidance turns off the branching heuristic that tries
	// writes whose value some blocked read is waiting for before other
	// writes (ablation knob; ordering the candidates differently cannot
	// affect completeness, only how fast a certificate or refutation is
	// found).
	DisableWriteGuidance bool
}

func (o *Options) maxStates() int {
	if o == nil {
		return 0
	}
	return o.MaxStates
}

func (o *Options) memoize() bool { return o == nil || !o.DisableMemoization }

func (o *Options) eagerReads() bool { return o == nil || !o.DisableEagerReads }

func (o *Options) writeGuidance() bool { return o == nil || !o.DisableWriteGuidance }

// Stats describes the work a solver performed.
type Stats struct {
	// States is the number of distinct branching states visited by the
	// search-based solvers (0 for the direct polynomial algorithms).
	States int
	// MemoHits counts states pruned by the failed-state cache.
	MemoHits int
	// EagerReads counts reads scheduled by the eager rule.
	EagerReads int
}

// Result is the outcome of a VMC query.
type Result struct {
	// Coherent reports whether a coherent schedule exists. Only
	// meaningful when Decided is true.
	Coherent bool
	// Decided is false when a resource bound (Options.MaxStates) stopped
	// the search before an answer was established.
	Decided bool
	// Schedule is a certificate coherent schedule when Coherent is true,
	// with references into the execution the solver was given.
	Schedule memory.Schedule
	// Algorithm names the algorithm that produced the result.
	Algorithm string
	// Stats describes the work performed.
	Stats Stats
}

// instance is a single-address VMC instance extracted from an execution:
// the per-process histories restricted to one address, the optional
// initial and final values, and the mapping back to the original refs.
type instance struct {
	addr  memory.Addr
	hist  []memory.History
	back  map[memory.Ref]memory.Ref
	init  *memory.Value
	final *memory.Value
	nops  int
}

// project builds the single-address instance for addr.
func project(exec *memory.Execution, addr memory.Addr) *instance {
	proj, back := exec.Project(addr)
	inst := &instance{
		addr: addr,
		hist: proj.Histories,
		back: back,
		nops: proj.NumOps(),
	}
	if d, ok := proj.Initial[addr]; ok {
		v := d
		inst.init = &v
	}
	if d, ok := proj.Final[addr]; ok {
		v := d
		inst.final = &v
	}
	return inst
}

// translate maps a schedule over projection refs back to original refs.
func (in *instance) translate(s []memory.Ref) memory.Schedule {
	out := make(memory.Schedule, len(s))
	for i, r := range s {
		out[i] = in.back[r]
	}
	return out
}

// hasWrites reports whether any operation in the instance writes.
func (in *instance) hasWrites() bool {
	for _, h := range in.hist {
		for _, o := range h {
			if _, ok := o.Writes(); ok {
				return true
			}
		}
	}
	return false
}

// allRMW reports whether every operation is a read-modify-write.
func (in *instance) allRMW() bool {
	for _, h := range in.hist {
		for _, o := range h {
			if o.Kind != memory.ReadModifyWrite {
				return false
			}
		}
	}
	return true
}

// maxOpsPerProcess returns the length of the longest projected history.
func (in *instance) maxOpsPerProcess() int {
	max := 0
	for _, h := range in.hist {
		if len(h) > max {
			max = len(h)
		}
	}
	return max
}

// maxWritesPerValue returns the largest number of writes of any single
// value.
func (in *instance) maxWritesPerValue() int {
	counts := make(map[memory.Value]int)
	max := 0
	for _, h := range in.hist {
		for _, o := range h {
			if d, ok := o.Writes(); ok {
				counts[d]++
				if counts[d] > max {
					max = counts[d]
				}
			}
		}
	}
	return max
}

// Solve decides VMC for the operations of exec at address addr using the
// general memoized search. It is complete: for nil options it always
// returns a decided result (at worst in exponential time — VMC is
// NP-Complete). With k histories and n operations the memoized search
// visits O(n^k · |D|) states, matching the constant-process polynomial
// bound of Figure 5.3.
func Solve(exec *memory.Execution, addr memory.Addr, opts *Options) (*Result, error) {
	if err := exec.Validate(); err != nil {
		return nil, err
	}
	inst := project(exec, addr)
	return searchInstance(inst, opts), nil
}

// VerifyExecution checks whether exec is a coherent execution: per the
// paper, a coherent schedule must exist for each address independently.
// It dispatches each address to the fastest applicable algorithm (see
// SolveAuto) and returns the per-address results. The execution is
// coherent iff every result is Decided && Coherent.
func VerifyExecution(exec *memory.Execution, opts *Options) (map[memory.Addr]*Result, error) {
	if err := exec.Validate(); err != nil {
		return nil, err
	}
	out := make(map[memory.Addr]*Result)
	for _, a := range exec.Addresses() {
		r, err := SolveAuto(exec, a, opts)
		if err != nil {
			return nil, err
		}
		out[a] = r
	}
	return out, nil
}

// Coherent is a convenience wrapper over VerifyExecution: it reports
// whether the execution as a whole is coherent, returning the offending
// address when it is not (or when the search was undecided).
func Coherent(exec *memory.Execution, opts *Options) (bool, memory.Addr, error) {
	results, err := VerifyExecution(exec, opts)
	if err != nil {
		return false, 0, err
	}
	for _, a := range exec.Addresses() {
		r := results[a]
		if !r.Decided {
			return false, a, fmt.Errorf("coherence: verification of address %d undecided (state budget exhausted)", a)
		}
		if !r.Coherent {
			return false, a, nil
		}
	}
	return true, 0, nil
}

// SolveAuto decides VMC for one address, dispatching to the fastest
// algorithm whose preconditions hold (Figure 5.3 rows):
//
//  1. at most one write per value  -> read-map algorithm (linear);
//  2. one operation per process    -> grouping / Eulerian-path algorithm;
//  3. otherwise                    -> general memoized search.
//
// The write-order algorithms require extra input and are exposed
// separately (SolveWithWriteOrder).
func SolveAuto(exec *memory.Execution, addr memory.Addr, opts *Options) (*Result, error) {
	if err := exec.Validate(); err != nil {
		return nil, err
	}
	inst := project(exec, addr)
	if inst.maxWritesPerValue() <= 1 {
		if r, ok := readMapInstance(inst); ok {
			return r, nil
		}
		// Ambiguous corner (initial value collides with a written value):
		// fall through to the general search.
	}
	if inst.maxOpsPerProcess() <= 1 {
		if inst.allRMW() {
			return eulerInstance(inst), nil
		}
		if r, ok := singleOpInstance(inst); ok {
			return r, nil
		}
	}
	return searchInstance(inst, opts), nil
}
