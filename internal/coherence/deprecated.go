package coherence

import (
	"context"
	"runtime"

	"memverify/internal/memory"
	"memverify/internal/solver"
)

// This file keeps the pre-facade entry points compiling as one-line
// wrappers over the unified Verifier. Each wrapper is pinned to the
// facade by the oracle-parity test in verifier_test.go: wrapper and
// facade must return identical verdicts, schedules and stats.

// Solve decides VMC for one address with the general memoized search.
//
// Deprecated: use NewVerifier(solver.WithStrategy(solver.StrategyExact),
// solver.WithOptions(opts)).Solve(ctx, exec, addr).
func Solve(ctx context.Context, exec *memory.Execution, addr memory.Addr, opts *Options) (*Result, error) {
	return NewVerifier(solver.WithStrategy(solver.StrategyExact), solver.WithOptions(opts)).Solve(ctx, exec, addr)
}

// SolveAuto decides VMC for one address via the fastest applicable
// algorithm (Figure 5.3 dispatch).
//
// Deprecated: use NewVerifier(solver.WithOptions(opts)).Solve(ctx, exec, addr).
func SolveAuto(ctx context.Context, exec *memory.Execution, addr memory.Addr, opts *Options) (*Result, error) {
	return NewVerifier(solver.WithOptions(opts)).Solve(ctx, exec, addr)
}

// SolvePortfolio decides VMC for one address with the staged portfolio
// racer.
//
// Deprecated: use NewVerifier(solver.WithStrategy(solver.StrategyPortfolio),
// solver.WithOptions(opts)).Solve(ctx, exec, addr).
func SolvePortfolio(ctx context.Context, exec *memory.Execution, addr memory.Addr, opts *Options) (*Result, error) {
	return NewVerifier(solver.WithStrategy(solver.StrategyPortfolio), solver.WithOptions(opts)).Solve(ctx, exec, addr)
}

// SolveResilient decides VMC for one address with the graceful-
// degradation ladder; writeOrder optionally supplies a §5.2 hint.
//
// Deprecated: use NewVerifier(solver.WithStrategy(solver.StrategyResilient),
// solver.WithWriteOrders(...), solver.WithOptions(opts)).SolveAddr(ctx,
// exec, addr) and AddrReport.Resilient.
func SolveResilient(ctx context.Context, exec *memory.Execution, addr memory.Addr, writeOrder []memory.Ref, opts *Options) (*ResilientResult, error) {
	v := NewVerifier(solver.WithStrategy(solver.StrategyResilient),
		solver.WithWriteOrders(map[memory.Addr][]memory.Ref{addr: writeOrder}), solver.WithOptions(opts))
	ar, err := v.SolveAddr(ctx, exec, addr)
	if err != nil {
		return nil, err
	}
	return ar.Resilient(), nil
}

// VerifyExecution checks whether exec is a coherent execution,
// verifying each address sequentially with the auto dispatch.
//
// Deprecated: use NewVerifier(solver.WithOptions(opts)).Verify(ctx, exec)
// and Report.Results.
func VerifyExecution(ctx context.Context, exec *memory.Execution, opts *Options) (map[memory.Addr]*Result, error) {
	rep, err := NewVerifier(solver.WithOptions(opts)).Verify(ctx, exec)
	return reportResults(rep), err
}

// VerifyExecutionParallel is VerifyExecution fanned out across workers
// goroutines (runtime.NumCPU() when workers <= 0).
//
// Deprecated: use NewVerifier(solver.WithWorkers(workers),
// solver.WithOptions(opts)).Verify(ctx, exec).
func VerifyExecutionParallel(ctx context.Context, exec *memory.Execution, opts *Options, workers int) (map[memory.Addr]*Result, error) {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	rep, err := NewVerifier(solver.WithWorkers(workers), solver.WithOptions(opts)).Verify(ctx, exec)
	return reportResults(rep), err
}

// VerifyExecutionPortfolio is VerifyExecution with each per-address
// check dispatched through the portfolio racer.
//
// Deprecated: use NewVerifier(solver.WithStrategy(solver.StrategyPortfolio),
// solver.WithOptions(opts)).Verify(ctx, exec).
func VerifyExecutionPortfolio(ctx context.Context, exec *memory.Execution, opts *Options) (map[memory.Addr]*Result, error) {
	rep, err := NewVerifier(solver.WithStrategy(solver.StrategyPortfolio), solver.WithOptions(opts)).Verify(ctx, exec)
	return reportResults(rep), err
}

// VerifyExecutionResilient runs the degradation ladder for every
// address of exec; writeOrders optionally supplies per-address hints.
//
// Deprecated: use NewVerifier(solver.WithStrategy(solver.StrategyResilient),
// solver.WithWriteOrders(writeOrders), solver.WithOptions(opts)).Verify(ctx, exec).
func VerifyExecutionResilient(ctx context.Context, exec *memory.Execution, writeOrders map[memory.Addr][]memory.Ref, opts *Options) (map[memory.Addr]*ResilientResult, error) {
	rep, err := NewVerifier(solver.WithStrategy(solver.StrategyResilient),
		solver.WithWriteOrders(writeOrders), solver.WithOptions(opts)).Verify(ctx, exec)
	if rep == nil {
		return nil, err
	}
	out := make(map[memory.Addr]*ResilientResult, len(rep.Addrs))
	for i := range rep.Addrs {
		out[rep.Addrs[i].Addr] = rep.Addrs[i].Resilient()
	}
	return out, err
}

// VerifyExecutionCheckpoint is VerifyExecution with explicit checkpoint
// state: replayed results, memo-seeded resume, and a resumable
// Checkpoint on budget aborts (nil on success).
//
// Deprecated: use NewVerifier(solver.WithOptions(opts)).VerifyCheckpoint(ctx,
// exec, resume), or solver.WithCheckpoint(path) to bind the checkpoint
// to a file.
func VerifyExecutionCheckpoint(ctx context.Context, exec *memory.Execution, opts *Options, resume *Checkpoint) (map[memory.Addr]*Result, *Checkpoint, error) {
	rep, err := NewVerifier(solver.WithOptions(opts)).VerifyCheckpoint(ctx, exec, resume)
	if rep == nil {
		return nil, nil, err
	}
	return reportResults(rep), rep.Checkpoint, err
}

// Coherent reports whether the execution as a whole is coherent,
// returning the offending address when it is not.
//
// Deprecated: use NewVerifier(solver.WithOptions(opts)).Verify(ctx, exec)
// and Report.FirstViolation.
func Coherent(ctx context.Context, exec *memory.Execution, opts *Options) (bool, memory.Addr, error) {
	rep, err := NewVerifier(solver.WithOptions(opts)).Verify(ctx, exec)
	if err != nil {
		if be, ok := solver.AsBudgetError(err); ok && be.HasAddr {
			return false, be.Addr, err
		}
		return false, 0, err
	}
	if a, bad := rep.FirstViolation(); bad {
		return false, a, nil
	}
	return true, 0, nil
}

// reportResults is Report.Results tolerating the nil report of a
// validation failure.
func reportResults(rep *Report) map[memory.Addr]*Result {
	if rep == nil {
		return nil
	}
	return rep.Results()
}
