package coherence

import (
	"context"
	"math/rand"
	"testing"

	"memverify/internal/memory"
	"memverify/internal/solver"
)

// hardIncoherentExec builds a deterministic instance whose search space
// is large and whose verdict is incoherent: procs histories of
// opsPerProc writes each, every written value distinct, and a final
// value no operation writes. Every interleaving must be refuted, so the
// search visits the full memoized state space — ideal for exercising
// budgets and multi-worker coordination.
func hardIncoherentExec(procs, opsPerProc int) *memory.Execution {
	exec := &memory.Execution{Histories: make([]memory.History, procs)}
	v := memory.Value(1)
	for p := 0; p < procs; p++ {
		for i := 0; i < opsPerProc; i++ {
			exec.Histories[p] = append(exec.Histories[p], memory.W(0, v))
			v++
		}
	}
	exec.SetFinal(0, v+1) // never written: incoherent by the final-value rule
	return exec
}

// TestParallelSearchOracle is the PR 10 acceptance oracle: on 400+
// randomized instances the parallel search must return exactly the
// sequential verdict, and every coherent certificate must check. Worker
// counts cycle 2..4 so small and larger teams both see coverage.
func TestParallelSearchOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	instances := 0
	for trial := 0; instances < 400; trial++ {
		var exec *memory.Execution
		if trial%4 == 3 {
			// Every fourth instance is bigger (and coherent by
			// construction), so the parallel path genuinely engages
			// instead of falling back on nops < psearchMinOps.
			exec, _ = randomCoherentTrace(rng, 2+rng.Intn(3), 3+rng.Intn(6), 1+rng.Intn(3))
		} else {
			exec = randomInstance(rng)
		}
		workers := 2 + trial%3
		for _, addr := range exec.Addresses() {
			instances++
			seq, seqErr := solveExact(context.Background(), exec, addr, nil)
			par, parErr := solveExact(context.Background(), exec, addr,
				solver.New(solver.WithParallelSearch(workers)))
			if (seqErr == nil) != (parErr == nil) {
				t.Fatalf("trial %d addr %d: error mismatch: seq=%v par=%v", trial, addr, seqErr, parErr)
			}
			if seqErr != nil {
				continue
			}
			if seq.Coherent != par.Coherent {
				t.Fatalf("trial %d addr %d (workers=%d): verdict mismatch: seq=%v par=%v",
					trial, addr, workers, seq.Coherent, par.Coherent)
			}
			if !par.Decided {
				t.Fatalf("trial %d addr %d: parallel result undecided without error", trial, addr)
			}
			if par.Coherent {
				if err := memory.CheckCoherent(exec, addr, par.Schedule); err != nil {
					t.Fatalf("trial %d addr %d: invalid parallel certificate: %v", trial, addr, err)
				}
			}
		}
	}
	t.Logf("verified %d instances", instances)
}

// TestParallelSearchEngages pins the dispatch: a multi-op instance with
// ParallelSearch > 1 must actually take the parallel path (not fall
// back), report it in Algorithm, and record the workers used.
func TestParallelSearchEngages(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	exec, _ := randomCoherentTrace(rng, 4, 10, 3)
	addr := exec.Addresses()[0]
	par, err := solveExact(context.Background(), exec, addr, solver.New(solver.WithParallelSearch(4)))
	if err != nil {
		t.Fatal(err)
	}
	if par.Algorithm != "parallel-search" {
		t.Fatalf("parallel path did not engage: algorithm=%q", par.Algorithm)
	}
	if w := par.Stats.SearchWorkers; w < 1 || w > 4 {
		t.Fatalf("SearchWorkers=%d, want 1..4", w)
	}
	if !par.Coherent {
		t.Fatal("coherent-by-construction trace judged incoherent")
	}
	if err := memory.CheckCoherent(exec, addr, par.Schedule); err != nil {
		t.Fatal(err)
	}
}

// TestParallelSearchFallsBackSequential pins every documented fallback
// to the sequential path: a checkpoint sink, memoization off, packed
// memo off, worker count <= 1, and tiny instances.
func TestParallelSearchFallsBackSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	exec, _ := randomCoherentTrace(rng, 3, 8, 3)
	addr := exec.Addresses()[0]
	cases := []struct {
		name string
		opts *Options
	}{
		{"sink", &solver.Options{ParallelSearch: 4, CheckpointSink: func(solver.SearchSnapshot) {}}},
		{"no-memo", solver.New(solver.WithParallelSearch(4), solver.WithoutMemoization())},
		{"no-packed", solver.New(solver.WithParallelSearch(4), solver.WithoutPackedMemo())},
		{"one-worker", solver.New(solver.WithParallelSearch(1))},
	}
	for _, tc := range cases {
		res, err := solveExact(context.Background(), exec, addr, tc.opts)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if res.Algorithm != "general-search" {
			t.Fatalf("%s: expected sequential fallback, got algorithm=%q", tc.name, res.Algorithm)
		}
		if !res.Coherent {
			t.Fatalf("%s: wrong verdict", tc.name)
		}
	}
	// Tiny instance: below psearchMinOps the split overhead cannot pay.
	tiny := &memory.Execution{Histories: []memory.History{{memory.W(0, 1)}, {memory.R(0, 1)}}}
	res, err := solveExact(context.Background(), tiny, 0, solver.New(solver.WithParallelSearch(4)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != "general-search" {
		t.Fatalf("tiny instance: expected sequential fallback, got %q", res.Algorithm)
	}
}

// TestParallelSearchBudgetExact is the budget-accounting race test (run
// under -race by CI): workers exhausting a shared budget while the
// first-verdict cancellation machinery runs must never lose the
// ErrBudgetExceeded, and the merged state count must stay exact —
// within the limit plus at most one in-flight charge per worker, and
// equal to what the workers actually counted.
func TestParallelSearchBudgetExact(t *testing.T) {
	exec := hardIncoherentExec(3, 6) // full refutation needs ~7^3 states
	const limit, workers = 100, 4
	for round := 0; round < 20; round++ {
		opts := solver.New(solver.WithParallelSearch(workers), solver.WithMaxStates(limit))
		res, err := solveExact(context.Background(), exec, 0, opts)
		if err == nil {
			t.Fatalf("round %d: expected budget trip, got verdict coherent=%v after %d states",
				round, res.Coherent, res.Stats.States)
		}
		be, ok := solver.AsBudgetError(err)
		if !ok {
			t.Fatalf("round %d: non-budget error: %v", round, err)
		}
		if be.Reason != solver.ExceededStates {
			t.Fatalf("round %d: reason=%v, want ExceededStates", round, be.Reason)
		}
		// Exactness: the tripping charge is counted (mirroring the
		// sequential path), and each of the other workers can be at most
		// one not-yet-tripped charge past the limit.
		if be.Stats.States < limit || be.Stats.States > limit+workers {
			t.Fatalf("round %d: merged states=%d, want in [%d, %d]",
				round, be.Stats.States, limit, limit+workers)
		}
	}
}

// TestParallelSearchBudgetRacesVerdict races budget exhaustion against
// a first-verdict win: on a coherent instance with a budget near the
// typical solve cost, every outcome must be either a valid certificate
// or an honest budget error — never a wrong verdict and never a lost
// trip. Run under -race this also exercises winner-CAS vs budget-CAS
// ordering.
func TestParallelSearchBudgetRacesVerdict(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for round := 0; round < 40; round++ {
		exec, _ := randomCoherentTrace(rng, 3, 8, 2)
		addr := exec.Addresses()[0]
		limit := 1 + rng.Intn(60)
		opts := solver.New(solver.WithParallelSearch(4), solver.WithMaxStates(limit))
		res, err := solveExact(context.Background(), exec, addr, opts)
		if err != nil {
			be, ok := solver.AsBudgetError(err)
			if !ok {
				t.Fatalf("round %d: non-budget error: %v", round, err)
			}
			if be.Stats.States > limit+4 {
				t.Fatalf("round %d: overshoot: states=%d limit=%d", round, be.Stats.States, limit)
			}
			continue
		}
		if !res.Coherent {
			t.Fatalf("round %d: coherent-by-construction trace judged incoherent", round)
		}
		if cerr := memory.CheckCoherent(exec, addr, res.Schedule); cerr != nil {
			t.Fatalf("round %d: invalid certificate: %v", round, cerr)
		}
	}
}

// TestParallelSearchCancellation: a context cancelled before (or during)
// the solve must surface as a Canceled budget error, never as a verdict.
func TestParallelSearchCancellation(t *testing.T) {
	exec := hardIncoherentExec(3, 6)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := solveExact(ctx, exec, 0, solver.New(solver.WithParallelSearch(4)))
	if err == nil {
		t.Fatal("expected cancellation error")
	}
	be, ok := solver.AsBudgetError(err)
	if !ok || be.Reason != solver.Canceled {
		t.Fatalf("got %v, want Canceled budget error", err)
	}
}

// TestParallelSearchIncoherentComplete: an incoherent verdict from the
// parallel search requires the frontier to be fully drained, so the
// unbounded search on the hard instance must refute completely and
// agree with the sequential count's verdict.
func TestParallelSearchIncoherentComplete(t *testing.T) {
	exec := hardIncoherentExec(3, 5)
	seq, err := solveExact(context.Background(), exec, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	par, err := solveExact(context.Background(), exec, 0, solver.New(solver.WithParallelSearch(4)))
	if err != nil {
		t.Fatal(err)
	}
	if seq.Coherent || par.Coherent {
		t.Fatalf("impossible final judged coherent: seq=%v par=%v", seq.Coherent, par.Coherent)
	}
	if par.Algorithm != "parallel-search" {
		t.Fatalf("parallel path did not engage: %q", par.Algorithm)
	}
}

// TestVerifyParallelWithTeams: the execution-level parallel verify with
// a psearch team configured must stay correct across a multi-address
// execution (the LPT head gets the team, the rest go solo).
func TestVerifyParallelWithTeams(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	exec := &memory.Execution{}
	// Three addresses of different sizes built from single-address
	// coherent traces glued into one execution.
	for a := memory.Addr(0); a < 3; a++ {
		sub, _ := randomCoherentTrace(rng, 3, 4+int(a)*3, 2)
		for p, h := range sub.Histories {
			for p >= len(exec.Histories) {
				exec.Histories = append(exec.Histories, nil)
			}
			for _, o := range h {
				o.Addr = a
				exec.Histories[p] = append(exec.Histories[p], o)
			}
		}
		if d, ok := sub.Initial[0]; ok {
			exec.SetInitial(a, d)
		}
	}
	v := NewVerifier(
		solver.WithWorkers(3),
		solver.WithBudget(solver.WithParallelSearch(4)),
	)
	rep, err := v.Verify(context.Background(), exec)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Coherent() {
		t.Fatalf("coherent-by-construction execution judged %v", rep.Verdict)
	}
	for i := range rep.Addrs {
		ar := &rep.Addrs[i]
		if ar.Result == nil || !ar.Result.Coherent {
			t.Fatalf("addr %d: bad report", ar.Addr)
		}
		if err := memory.CheckCoherent(exec, ar.Addr, ar.Result.Schedule); err != nil {
			t.Fatalf("addr %d: invalid certificate: %v", ar.Addr, err)
		}
	}
}
