package coherence

import (
	"crypto/sha256"
	"encoding/base64"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"

	"memverify/internal/memory"
	"memverify/internal/solver"
)

// CheckpointKind tags coherence checkpoints in the solver envelope, so a
// coherence resume never consumes another model's state.
const CheckpointKind = "coherence-vmc"

// SavedResult is a completed per-address verdict carried by a
// checkpoint: enough to replay the report (and the certificate) without
// re-solving the address.
type SavedResult struct {
	Addr      memory.Addr     `json:"addr"`
	Coherent  bool            `json:"coherent"`
	Algorithm string          `json:"algorithm"`
	Stats     solver.Stats    `json:"stats"`
	Schedule  memory.Schedule `json:"schedule,omitempty"`
}

// PendingSearch is the interrupted per-address search: the memoized
// failed states (base64 of the searcher's binary keys) plus the frontier
// and partial stats at the abort. Seeding a resumed search with Memo is
// sound — each entry records that no coherent completion exists from
// that state, a fact of the instance — so the resumed search re-explores
// strictly less than a fresh one.
type PendingSearch struct {
	Addr     memory.Addr  `json:"addr"`
	Memo     []string     `json:"memo"`
	Frontier []memory.Ref `json:"frontier,omitempty"`
	Stats    solver.Stats `json:"stats"`
}

// Checkpoint is the resumable state of a per-address coherence
// verification: the executed addresses' verdicts and the one interrupted
// search. Fingerprint ties the checkpoint to the execution it was taken
// from; resuming against a different trace is rejected.
type Checkpoint struct {
	Fingerprint string         `json:"fingerprint"`
	Done        []SavedResult  `json:"done,omitempty"`
	Pending     *PendingSearch `json:"pending,omitempty"`
}

// WriteFile writes the checkpoint through the solver's versioned,
// checksummed envelope (atomic rename; see solver.WriteCheckpointFile).
func (c *Checkpoint) WriteFile(path string) error {
	return solver.WriteCheckpointFile(path, CheckpointKind, c)
}

// LoadCheckpoint reads and verifies a coherence checkpoint file.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	raw, err := solver.ReadCheckpointFile(path, CheckpointKind)
	if err != nil {
		return nil, err
	}
	var c Checkpoint
	if err := json.Unmarshal(raw, &c); err != nil {
		return nil, fmt.Errorf("coherence: checkpoint payload: %w", err)
	}
	return &c, nil
}

// ExecutionFingerprint hashes an execution's observable content
// (histories in program order, declared initial and final values) so a
// checkpoint can prove it belongs to the trace being resumed. Memo-table
// soundness depends on the instance being identical; this is the guard.
func ExecutionFingerprint(exec *memory.Execution) string {
	h := sha256.New()
	fmt.Fprintf(h, "h%d\n", len(exec.Histories))
	for p, hist := range exec.Histories {
		for i, o := range hist {
			fmt.Fprintf(h, "%d.%d:%s\n", p, i, o)
		}
	}
	var addrs []memory.Addr
	for a := range exec.Initial {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, a := range addrs {
		fmt.Fprintf(h, "i%d=%d\n", a, exec.Initial[a])
	}
	addrs = addrs[:0]
	for a := range exec.Final {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, a := range addrs {
		fmt.Fprintf(h, "f%d=%d\n", a, exec.Final[a])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// CheckpointRun accumulates resumable state across a sequential
// per-address verification (the vmcheck coherence loop). It is not safe
// for concurrent use: checkpointing serializes the address loop by
// design — an interrupted parallel run would need one pending search per
// worker, which the format deliberately does not model.
type CheckpointRun struct {
	fp      string
	done    []SavedResult
	doneIdx map[memory.Addr]int
	resume  *PendingSearch // pending search carried in from a loaded checkpoint
	current *PendingSearch // latest snapshot of the in-flight search
}

// NewCheckpointRun starts checkpoint accounting for a fresh run over
// exec.
func NewCheckpointRun(exec *memory.Execution) *CheckpointRun {
	return &CheckpointRun{fp: ExecutionFingerprint(exec), doneIdx: make(map[memory.Addr]int)}
}

// ResumeCheckpointRun starts checkpoint accounting seeded from a loaded
// checkpoint, verifying it belongs to exec.
func ResumeCheckpointRun(exec *memory.Execution, ck *Checkpoint) (*CheckpointRun, error) {
	r := NewCheckpointRun(exec)
	if ck == nil {
		return r, nil
	}
	if ck.Fingerprint != r.fp {
		return nil, fmt.Errorf("coherence: checkpoint was taken from a different execution (fingerprint %.12s, trace %.12s)",
			ck.Fingerprint, r.fp)
	}
	for _, d := range ck.Done {
		r.doneIdx[d.Addr] = len(r.done)
		r.done = append(r.done, d)
	}
	r.resume = ck.Pending
	return r, nil
}

// Lookup returns the already-completed result for addr, if the resumed
// checkpoint carries one. The returned algorithm is annotated
// "checkpoint:" so reports show the verdict was replayed, not re-solved.
func (r *CheckpointRun) Lookup(addr memory.Addr) (*Result, bool) {
	i, ok := r.doneIdx[addr]
	if !ok {
		return nil, false
	}
	d := r.done[i]
	return &Result{
		Coherent:  d.Coherent,
		Decided:   true,
		Schedule:  d.Schedule,
		Algorithm: "checkpoint:" + d.Algorithm,
		Stats:     d.Stats,
	}, true
}

// Configure returns a clone of opts wired for addr: the failed-state
// cache is seeded when the resumed checkpoint's pending search matches
// addr, and every snapshot the searcher takes (periodic and at-abort)
// lands in this run's current pending state.
func (r *CheckpointRun) Configure(addr memory.Addr, opts *Options) *Options {
	o := opts.Clone()
	if r.resume != nil && r.resume.Addr == addr {
		o.ResumeMemo = decodeMemo(r.resume.Memo)
	}
	o.CheckpointSink = func(snap solver.SearchSnapshot) {
		r.current = &PendingSearch{
			Addr:     addr,
			Memo:     encodeMemo(snap.Memo),
			Frontier: snap.Frontier,
			Stats:    snap.Stats,
		}
	}
	return o
}

// Record stores a completed per-address result and clears any in-flight
// snapshot for it.
func (r *CheckpointRun) Record(addr memory.Addr, res *Result) {
	if i, ok := r.doneIdx[addr]; ok {
		r.done[i] = savedFrom(addr, res)
		return
	}
	r.doneIdx[addr] = len(r.done)
	r.done = append(r.done, savedFrom(addr, res))
	if r.current != nil && r.current.Addr == addr {
		r.current = nil
	}
}

// Pending returns the latest in-flight search snapshot (nil when no
// search has snapshotted since the last Record).
func (r *CheckpointRun) Pending() *PendingSearch { return r.current }

// Checkpoint packages the run's state for writing: completed verdicts
// plus the most recent pending search, if any.
func (r *CheckpointRun) Checkpoint() *Checkpoint {
	ck := &Checkpoint{
		Fingerprint: r.fp,
		Done:        append([]SavedResult(nil), r.done...),
	}
	if r.current != nil {
		ck.Pending = r.current
	} else if r.resume != nil {
		// A run interrupted before its first snapshot keeps the carried-in
		// pending search rather than losing it.
		ck.Pending = r.resume
	}
	return ck
}

func savedFrom(addr memory.Addr, res *Result) SavedResult {
	return SavedResult{
		Addr:      addr,
		Coherent:  res.Coherent,
		Algorithm: res.Algorithm,
		Stats:     res.Stats,
		Schedule:  res.Schedule,
	}
}

// encodeMemo base64-encodes the searcher's binary memo keys for JSON.
func encodeMemo(keys []string) []string {
	out := make([]string, len(keys))
	for i, k := range keys {
		out[i] = base64.StdEncoding.EncodeToString([]byte(k))
	}
	return out
}

// decodeMemo reverses encodeMemo, dropping entries that do not decode
// (a corrupted entry only loses pruning, never soundness — the search
// simply re-explores that state).
func decodeMemo(enc []string) []string {
	out := make([]string, 0, len(enc))
	for _, e := range enc {
		b, err := base64.StdEncoding.DecodeString(e)
		if err != nil {
			continue
		}
		out = append(out, string(b))
	}
	return out
}
