package coherence

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// TestCMemoClaimProtocol pins the three-state protocol on one shard
// path: first claim wins, a second claim of the same key sees busy, and
// markFailed converts the claim into a permanent failed entry.
func TestCMemoClaimProtocol(t *testing.T) {
	var cs cpackedSet
	cs.reset()
	const k = 0x1234
	if got := cs.claim(k); got != claimed {
		t.Fatalf("first claim: got %v, want claimed", got)
	}
	if got := cs.claim(k); got != claimBusy {
		t.Fatalf("second claim: got %v, want claimBusy", got)
	}
	cs.markFailed(k)
	if got := cs.claim(k); got != claimFailed {
		t.Fatalf("claim after markFailed: got %v, want claimFailed", got)
	}
	// markFailed without a prior claim inserts the failed entry directly
	// (the resume-seed path).
	const k2 = 0x9999
	cs.markFailed(k2)
	if got := cs.claim(k2); got != claimFailed {
		t.Fatalf("directly-failed key: got %v, want claimFailed", got)
	}
	if cs.size() != 2 {
		t.Fatalf("size=%d, want 2", cs.size())
	}
}

// TestCMemoParityWithPackedSet: for keys that are only ever
// claim+markFailed (the sequential usage pattern), the concurrent set
// must agree exactly with packedSet membership.
func TestCMemoParityWithPackedSet(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var cs cpackedSet
	cs.reset()
	var ps packedSet
	ps.reset()
	keys := make([]uint64, 4000)
	for i := range keys {
		// Keys must fit 63 bits with the claim bit spare; the parallel
		// search guarantees this via the layout gate.
		keys[i] = rng.Uint64() >> 2
	}
	for i, k := range keys {
		if i%2 == 0 {
			if cs.claim(k) == claimed {
				cs.markFailed(k)
			}
			ps.add(k)
		}
	}
	for _, k := range keys {
		want := claimFailed
		if !ps.contains(k) {
			want = claimed
		}
		got := cs.claim(k)
		if got != want && !(want == claimed && got == claimBusy) {
			// A key absent from ps may have been claimed by this very
			// loop on a duplicate; treat busy as "was absent, now
			// claimed" only for genuine duplicates.
			t.Fatalf("key %#x: cmemo=%v packed-contains=%v", k, got, ps.contains(k))
		}
	}
}

// TestCMemoGrowPreservesClaims forces shard growth with a mix of
// resolved and still-claimed keys and verifies no state is lost or
// corrupted by the rehash.
func TestCMemoGrowPreservesClaims(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var cs cpackedSet
	cs.reset()
	const n = 50000 // far past the per-shard initial capacity, forces many grows
	keys := make([]uint64, n)
	seen := make(map[uint64]bool, n)
	for i := range keys {
		k := rng.Uint64() >> 2
		for seen[k] {
			k = rng.Uint64() >> 2
		}
		seen[k] = true
		keys[i] = k
	}
	for i, k := range keys {
		if got := cs.claim(k); got != claimed {
			t.Fatalf("key %d: got %v, want claimed", i, got)
		}
		if i%3 == 0 {
			cs.markFailed(k)
		}
	}
	for i, k := range keys {
		want := claimBusy
		if i%3 == 0 {
			want = claimFailed
		}
		if got := cs.claim(k); got != want {
			t.Fatalf("after grow, key %d: got %v, want %v", i, got, want)
		}
	}
	if cs.size() != n {
		t.Fatalf("size=%d, want %d", cs.size(), n)
	}
}

// TestCMemoReset: a pooled reset must empty every shard (no stale
// claims or failed entries leaking into the next solve) while retaining
// modest tables.
func TestCMemoReset(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var cs cpackedSet
	cs.reset()
	for i := 0; i < 10000; i++ {
		k := rng.Uint64() >> 2
		if cs.claim(k) == claimed && i%2 == 0 {
			cs.markFailed(k)
		}
	}
	cs.reset()
	if cs.size() != 0 {
		t.Fatalf("size after reset=%d, want 0", cs.size())
	}
	// Every previously-touched key must claim fresh again.
	rng = rand.New(rand.NewSource(9))
	for i := 0; i < 100; i++ {
		k := rng.Uint64() >> 2
		if got := cs.claim(k); got != claimed {
			t.Fatalf("key %#x after reset: got %v, want claimed", k, got)
		}
	}
}

// TestCMemoConcurrentStress is the -race stress: many goroutines
// claiming an overlapping keyspace concurrently. Exactly one goroutine
// may win each key's first claim, and after all claimants resolve their
// wins, every key must read claimFailed.
func TestCMemoConcurrentStress(t *testing.T) {
	const (
		goroutines = 8
		keyspace   = 20000
	)
	var cs cpackedSet
	cs.reset()
	wins := make([]atomic.Int32, keyspace)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 4*keyspace; i++ {
				k := uint64(rng.Intn(keyspace))
				switch cs.claim(k) {
				case claimed:
					wins[k].Add(1)
					cs.markFailed(k)
				case claimBusy:
					// Another goroutine holds the claim mid-window; by
					// protocol we skip (delegation) — nothing to assert
					// beyond absence of corruption, which -race and the
					// final sweep cover.
				case claimFailed:
					// Resolved: fine.
				}
			}
		}(g)
	}
	wg.Wait()
	for k := 0; k < keyspace; k++ {
		if n := wins[k].Load(); n > 1 {
			t.Fatalf("key %d: first claim won %d times, want at most 1", k, n)
		}
	}
	// Every key some goroutine won must now be failed; keys never
	// touched must claim fresh.
	for k := 0; k < keyspace; k++ {
		got := cs.claim(uint64(k))
		if wins[k].Load() == 1 && got != claimFailed {
			t.Fatalf("key %d: won and resolved but reads %v", k, got)
		}
	}
}
