package coherence

import (
	"context"
	"math/rand"
	"testing"

	"memverify/internal/memory"
)

func TestDiagnoseRejectsCoherent(t *testing.T) {
	e := memory.NewExecution(
		memory.History{memory.W(0, 1)},
		memory.History{memory.R(0, 1)},
	).SetInitial(0, 0)
	if _, err := Diagnose(context.Background(), e, 0, nil); err == nil {
		t.Error("coherent execution diagnosed")
	}
}

func TestDiagnoseShrinksToCore(t *testing.T) {
	// A large coherent execution plus one unsourced read. The core must
	// shrink to (roughly) just that read.
	e := memory.NewExecution(
		memory.History{memory.W(0, 1), memory.R(0, 1), memory.W(0, 2), memory.R(0, 2)},
		memory.History{memory.R(0, 1), memory.R(0, 2), memory.R(0, 99)},
	).SetInitial(0, 0)
	d, err := Diagnose(context.Background(), e, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Core.NumMemoryOps(); got != 1 {
		t.Errorf("core has %d ops, want 1 (the unsourced read)\ncore: %v", got, d.Core.Histories)
	}
	if len(d.Ops) != 1 || d.Ops[0] != (memory.Ref{Proc: 1, Index: 2}) {
		t.Errorf("core ops = %v, want [P1[2]]", d.Ops)
	}
	if d.FinalValueInvolved {
		t.Error("final value reported involved; none declared")
	}
}

func TestDiagnoseFinalValueInvolvement(t *testing.T) {
	// Incoherent only because of the final value.
	e := memory.NewExecution(
		memory.History{memory.W(0, 1)},
	).SetInitial(0, 0).SetFinal(0, 9)
	d, err := Diagnose(context.Background(), e, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !d.FinalValueInvolved {
		t.Error("final value should be part of the core")
	}
}

// Property: the core is incoherent, is a sub-execution of the original,
// and removing any single remaining op restores coherence
// (1-minimality).
func TestDiagnoseMinimality(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	diagnosed := 0
	for i := 0; i < 200 && diagnosed < 40; i++ {
		exec := randomInstance(rng)
		res, err := Solve(context.Background(), exec, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Coherent {
			continue
		}
		diagnosed++
		d, err := Diagnose(context.Background(), exec, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		// Core is incoherent.
		coreRes, err := Solve(context.Background(), d.Core, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		if coreRes.Coherent {
			t.Fatalf("instance %d: core is coherent\ncore: %v", i, d.Core.Histories)
		}
		// Ops refer to identical operations in the original.
		pos := 0
		for p := range d.Core.Histories {
			for idx := range d.Core.Histories[p] {
				ref := d.Ops[pos]
				pos++
				if exec.Op(ref) != d.Core.Histories[p][idx] {
					t.Fatalf("instance %d: core op mismatch at %v", i, ref)
				}
			}
		}
		// 1-minimality: dropping any single core op restores coherence.
		for p := range d.Core.Histories {
			for idx := range d.Core.Histories[p] {
				shrunk := d.Core.Clone()
				h := shrunk.Histories[p]
				shrunk.Histories[p] = append(append(memory.History{}, h[:idx]...), h[idx+1:]...)
				r, err := Solve(context.Background(), shrunk, 0, nil)
				if err != nil {
					t.Fatal(err)
				}
				if !r.Coherent {
					t.Fatalf("instance %d: core not 1-minimal (removing P%d[%d] keeps it incoherent)\ncore: %v",
						i, p, idx, d.Core.Histories)
				}
			}
		}
	}
	if diagnosed < 20 {
		t.Errorf("only %d incoherent instances diagnosed", diagnosed)
	}
}

func TestDiagnoseUndecidedBudget(t *testing.T) {
	e := memory.NewExecution(
		memory.History{memory.W(0, 1), memory.R(0, 2)},
		memory.History{memory.W(0, 2), memory.R(0, 1)},
		memory.History{memory.W(0, 3)},
		memory.History{memory.W(0, 3)},
	).SetInitial(0, 0).SetFinal(0, 9)
	if _, err := Diagnose(context.Background(), e, 0, &Options{MaxStates: 1}); err == nil {
		t.Error("budget-starved diagnosis should error")
	}
}
