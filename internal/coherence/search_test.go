package coherence

import (
	"context"
	"math/rand"
	"testing"

	"memverify/internal/memory"
	"memverify/internal/solver"
)

// figure42Instance builds the worked example of Figure 4.2: the VMC
// instance for the SAT formula Q = u (one variable, one unit clause).
// Values: du=1, dū=2, dc=3.
func figure42Instance() *memory.Execution {
	const du, dub, dc = 1, 2, 3
	return memory.NewExecution(
		memory.History{memory.W(0, du)},                                    // h1
		memory.History{memory.W(0, dub)},                                   // h2
		memory.History{memory.R(0, du), memory.R(0, dub), memory.W(0, dc)}, // hu
		memory.History{memory.R(0, dub), memory.R(0, du)},                  // hū
		memory.History{memory.R(0, dc), memory.W(0, du), memory.W(0, dub)}, // h3
	).SetInitial(0, 0)
}

func TestSolveFigure42Coherent(t *testing.T) {
	exec := figure42Instance()
	res, err := Solve(context.Background(), exec, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Decided || !res.Coherent {
		t.Fatalf("Figure 4.2 instance should be coherent (Q=u is satisfiable): %+v", res)
	}
	if err := memory.CheckCoherent(exec, 0, res.Schedule); err != nil {
		t.Errorf("certificate invalid: %v", err)
	}
	// In every coherent schedule W(du) must precede W(dū): verify for the
	// returned certificate by locating h1's and h2's writes.
	var posU, posUbar int = -1, -1
	for i, r := range res.Schedule {
		if r.Proc == 0 {
			posU = i
		}
		if r.Proc == 1 {
			posUbar = i
		}
	}
	if posU == -1 || posUbar == -1 || posU > posUbar {
		t.Errorf("certificate should order W(du) before W(dū); schedule: %s", res.Schedule.Format(exec))
	}
}

// figure42Unsat corresponds to Q = u ∧ ¬u: both literal histories must be
// satisfied before h3 runs, forcing both write orders at once.
func TestSolveUnsatisfiableInstance(t *testing.T) {
	const du, dub, dc1, dc2 = 1, 2, 3, 4
	exec := memory.NewExecution(
		memory.History{memory.W(0, du)},
		memory.History{memory.W(0, dub)},
		memory.History{memory.R(0, du), memory.R(0, dub), memory.W(0, dc1)},                   // literal u, clause c1
		memory.History{memory.R(0, dub), memory.R(0, du), memory.W(0, dc2)},                   // literal ū, clause c2
		memory.History{memory.R(0, dc1), memory.R(0, dc2), memory.W(0, du), memory.W(0, dub)}, // h3
	).SetInitial(0, 0)
	res, err := Solve(context.Background(), exec, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Decided || res.Coherent {
		t.Fatalf("instance for Q = u ∧ ¬u should be incoherent: %+v", res)
	}
}

func TestSolveTrivialCases(t *testing.T) {
	// Empty execution.
	res, err := Solve(context.Background(), memory.NewExecution(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Coherent {
		t.Error("empty execution should be coherent")
	}

	// Single read of the declared initial value.
	e := memory.NewExecution(memory.History{memory.R(0, 5)}).SetInitial(0, 5)
	res, err = Solve(context.Background(), e, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Coherent {
		t.Error("read of initial value should be coherent")
	}

	// Single read of a never-written, non-initial value.
	e = memory.NewExecution(memory.History{memory.R(0, 5)}).SetInitial(0, 4)
	res, err = Solve(context.Background(), e, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Coherent {
		t.Error("read of unwritten non-initial value should be incoherent")
	}
}

func TestSolveFinalValue(t *testing.T) {
	e := memory.NewExecution(
		memory.History{memory.W(0, 1)},
		memory.History{memory.W(0, 2)},
	).SetFinal(0, 1)
	res, err := Solve(context.Background(), e, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Coherent {
		t.Fatal("writes can be ordered to end on the final value")
	}
	if err := memory.CheckCoherent(e, 0, res.Schedule); err != nil {
		t.Errorf("certificate invalid: %v", err)
	}

	e.SetFinal(0, 3)
	res, err = Solve(context.Background(), e, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Coherent {
		t.Error("no write stores the final value; should be incoherent")
	}
}

func TestSolveRMWChain(t *testing.T) {
	e := memory.NewExecution(
		memory.History{memory.RW(0, 0, 1)},
		memory.History{memory.RW(0, 1, 2)},
		memory.History{memory.RW(0, 2, 3)},
	).SetInitial(0, 0).SetFinal(0, 3)
	res, err := Solve(context.Background(), e, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Coherent {
		t.Fatal("RMW chain should be coherent")
	}
	if err := memory.CheckCoherent(e, 0, res.Schedule); err != nil {
		t.Errorf("certificate invalid: %v", err)
	}

	// Two RMWs that both consume the same value cannot both succeed.
	bad := memory.NewExecution(
		memory.History{memory.RW(0, 0, 1)},
		memory.History{memory.RW(0, 0, 2)},
	).SetInitial(0, 0)
	res, err = Solve(context.Background(), bad, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Coherent {
		t.Error("two RMWs consuming the same unique value should be incoherent")
	}
}

func TestSolveStateBudget(t *testing.T) {
	// A moderately hard incoherent instance; with a 1-state budget the
	// search must give up with a typed budget error carrying partial
	// stats, not report a definite negative.
	exec := figure42Instance()
	res, err := Solve(context.Background(), exec, 0, &Options{MaxStates: 1})
	if err == nil {
		t.Fatalf("budget-limited search returned a verdict (coherent=%v)", res.Coherent)
	}
	be, ok := solver.AsBudgetError(err)
	if !ok {
		t.Fatalf("error is not *solver.ErrBudgetExceeded: %v", err)
	}
	if be.Reason != solver.ExceededStates {
		t.Errorf("reason = %v, want ExceededStates", be.Reason)
	}
	if be.Stats.States == 0 {
		t.Error("budget error carries no partial stats")
	}
	if !be.HasAddr || be.Addr != 0 {
		t.Errorf("budget error address = %v/%v, want 0", be.Addr, be.HasAddr)
	}
}

func TestSolveAblationsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	variants := []*Options{
		nil,
		{DisableMemoization: true},
		{DisableEagerReads: true},
		{DisableWriteGuidance: true},
		{DisableMemoization: true, DisableEagerReads: true, DisableWriteGuidance: true},
	}
	for i := 0; i < 200; i++ {
		exec := randomInstance(rng)
		want, _ := bruteForceCoherent(exec, 0)
		for vi, opts := range variants {
			res, err := Solve(context.Background(), exec, 0, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Decided {
				t.Fatalf("variant %d undecided without budget", vi)
			}
			if res.Coherent != want {
				t.Fatalf("instance %d variant %d: Solve=%v oracle=%v histories=%v init=%v final=%v",
					i, vi, res.Coherent, want, exec.Histories, exec.Initial, exec.Final)
			}
			if res.Coherent {
				if err := memory.CheckCoherent(exec, 0, res.Schedule); err != nil {
					t.Fatalf("instance %d variant %d: invalid certificate: %v", i, vi, err)
				}
			}
		}
	}
}

func TestSolveMatchesOracleOnRandomInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	coherentSeen, incoherentSeen := 0, 0
	for i := 0; i < 500; i++ {
		exec := randomInstance(rng)
		want, _ := bruteForceCoherent(exec, 0)
		res, err := Solve(context.Background(), exec, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Coherent != want {
			t.Fatalf("instance %d: Solve=%v oracle=%v histories=%v init=%v final=%v",
				i, res.Coherent, want, exec.Histories, exec.Initial, exec.Final)
		}
		if want {
			coherentSeen++
		} else {
			incoherentSeen++
		}
	}
	if coherentSeen == 0 || incoherentSeen == 0 {
		t.Errorf("generator is degenerate: %d coherent, %d incoherent", coherentSeen, incoherentSeen)
	}
}

func TestSolveAutoMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 500; i++ {
		exec := randomInstance(rng)
		want, _ := bruteForceCoherent(exec, 0)
		res, err := SolveAuto(context.Background(), exec, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Coherent != want {
			t.Fatalf("instance %d (algorithm %s): SolveAuto=%v oracle=%v histories=%v init=%v final=%v",
				i, res.Algorithm, res.Coherent, want, exec.Histories, exec.Initial, exec.Final)
		}
		if res.Coherent {
			if err := memory.CheckCoherent(exec, 0, res.Schedule); err != nil {
				t.Fatalf("instance %d (algorithm %s): invalid certificate: %v", i, res.Algorithm, err)
			}
		}
	}
}

func TestVerifyExecutionPerAddress(t *testing.T) {
	// Address 0 coherent, address 1 incoherent.
	e := memory.NewExecution(
		memory.History{memory.W(0, 1), memory.R(1, 9)},
		memory.History{memory.R(0, 1), memory.W(1, 5)},
	).SetInitial(0, 0).SetInitial(1, 0)
	results, err := VerifyExecution(context.Background(), e, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !results[0].Coherent {
		t.Error("address 0 should be coherent")
	}
	if results[1].Coherent {
		t.Error("address 1 should be incoherent (R(1,9) has no source)")
	}
	ok, bad, err := Coherent(context.Background(), e, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ok || bad != 1 {
		t.Errorf("Coherent = %v at address %d, want false at 1", ok, bad)
	}
}

func TestCoherentAllGood(t *testing.T) {
	e := memory.NewExecution(
		memory.History{memory.W(0, 1), memory.W(1, 2)},
		memory.History{memory.R(0, 1), memory.R(1, 2)},
	).SetInitial(0, 0).SetInitial(1, 0)
	ok, _, err := Coherent(context.Background(), e, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("execution should be coherent")
	}
}

func TestSolveStatsPopulated(t *testing.T) {
	exec := figure42Instance()
	res, err := Solve(context.Background(), exec, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.States == 0 {
		t.Error("search should report visited states")
	}
	if res.Algorithm != "general-search" {
		t.Errorf("Algorithm = %q", res.Algorithm)
	}
}

func TestSolveRejectsInvalidExecution(t *testing.T) {
	bad := memory.NewExecution(memory.History{{Kind: memory.Kind(88)}})
	if _, err := Solve(context.Background(), bad, 0, nil); err == nil {
		t.Error("invalid execution accepted")
	}
}

func TestEagerReadsReduceStates(t *testing.T) {
	// A read-heavy coherent trace: the eager rule should visit far fewer
	// states than the ablated search.
	rng := rand.New(rand.NewSource(3))
	exec, _ := randomCoherentTrace(rng, 3, 6, 2)
	withRule, err := Solve(context.Background(), exec, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	without, err := Solve(context.Background(), exec, 0, &Options{DisableEagerReads: true})
	if err != nil {
		t.Fatal(err)
	}
	if !withRule.Coherent || !without.Coherent {
		t.Fatal("coherent-by-construction trace judged incoherent")
	}
	if withRule.Stats.States > without.Stats.States {
		t.Errorf("eager rule visited %d states, ablation %d — expected fewer or equal",
			withRule.Stats.States, without.Stats.States)
	}
}
