package coherence

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"memverify/internal/memory"
	"memverify/internal/solver"
)

// TestPackedLayoutRoundTrip: for random instances that fit the packed
// layout, pack -> string-key decode must be byte-identical to the
// searcher's own varint key, and string-key parse must invert pack.
func TestPackedLayoutRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 500; trial++ {
		inst := project(randomInstance(rng), 0)
		l := layoutFor(inst)
		if l == nil {
			t.Fatalf("trial %d: small instance overflowed the packed layout", trial)
		}
		s := &searcher{inst: inst, pos: make([]int, len(inst.hist))}
		// Walk a random valid state: advance random positions, tracking a
		// plausible (cur, bound) from the instance's value table.
		for i := range s.pos {
			s.pos[i] = rng.Intn(len(inst.hist[i]) + 1)
		}
		if len(l.vals) > 0 && rng.Intn(2) == 0 {
			s.cur, s.bound = l.vals[rng.Intn(len(l.vals))], true
		}
		want := s.key()
		k := l.pack(s.pos, s.cur, s.bound)
		if got := string(l.appendStringKey(nil, k)); got != want {
			t.Fatalf("trial %d: decoded key %x, searcher key %x", trial, got, want)
		}
		back, ok := l.parseStringKey(want)
		if !ok || back != k {
			t.Fatalf("trial %d: parse(%x) = (%x, %v), want (%x, true)", trial, want, back, ok, k)
		}
	}
}

// TestPackedLayoutOverflow: instances too wide for 63 bits must be
// rejected so the searcher falls back to the string memo.
func TestPackedLayoutOverflow(t *testing.T) {
	// 70 histories of 3 ops each need 70 × 2 position bits > 63.
	exec := &memory.Execution{}
	for p := 0; p < 70; p++ {
		exec.Histories = append(exec.Histories, memory.History{
			memory.W(0, memory.Value(p)), memory.R(0, memory.Value(p)), memory.W(0, memory.Value(p)),
		})
	}
	if l := layoutFor(project(exec, 0)); l != nil {
		t.Fatal("oversized instance accepted by the packed layout")
	}
	// The fallback must still solve it (budgeted: the instance is huge).
	_, err := Solve(context.Background(), exec, 0, solver.New(solver.WithMaxStates(2000)))
	if err != nil {
		if _, ok := solver.AsBudgetError(err); !ok {
			t.Fatalf("fallback solve failed: %v", err)
		}
	}
}

// TestPackedParseRejectsGarbage: corrupted memo keys are dropped, not
// mis-ingested.
func TestPackedParseRejectsGarbage(t *testing.T) {
	inst := project(memory.NewExecution(
		memory.History{memory.W(0, 1), memory.R(0, 2)},
		memory.History{memory.W(0, 2)},
	).SetInitial(0, 0), 0)
	l := layoutFor(inst)
	if l == nil {
		t.Fatal("layout expected")
	}
	for _, bad := range []string{
		"",                 // truncated positions
		"\x01",             // missing bound byte
		"\x01\x01\x02",     // bound flag neither 0 nor 1
		"\x07\x00\x00",     // position beyond the field width
		"\x01\x01\x01\x7f", // bound value not in the instance
		"\x01\x01\x00\x00", // trailing bytes
	} {
		if k, ok := l.parseStringKey(bad); ok {
			t.Errorf("corrupted key %x parsed to %x", bad, k)
		}
	}
}

// TestPackedSetBasic exercises the open-addressing set across growth.
func TestPackedSetBasic(t *testing.T) {
	var ps packedSet
	ps.reset()
	rng := rand.New(rand.NewSource(42))
	ref := make(map[uint64]bool)
	for i := 0; i < 50_000; i++ {
		k := rng.Uint64() >> 1 // layouts are ≤ 63 bits
		if ps.contains(k) != ref[k] {
			t.Fatalf("contains(%x) = %v before insert, want %v", k, !ref[k], ref[k])
		}
		ps.add(k)
		ref[k] = true
		if !ps.contains(k) {
			t.Fatalf("key %x lost after add", k)
		}
	}
	if ps.size() != len(ref) {
		t.Fatalf("size = %d, want %d", ps.size(), len(ref))
	}
	seen := 0
	ps.each(func(k uint64) {
		if !ref[k] {
			t.Fatalf("each yielded unknown key %x", k)
		}
		seen++
	})
	if seen != len(ref) {
		t.Fatalf("each yielded %d keys, want %d", seen, len(ref))
	}
}

// TestPackedMemoOracle is the cross-check satellite: on randomized
// instances the packed-key and string-key memo representations must
// explore identical state counts and return identical verdicts and
// schedules — the memo representation is an implementation detail of
// the same deterministic search.
func TestPackedMemoOracle(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 400; trial++ {
		exec := randomInstance(rng)
		packed, err := Solve(ctx, exec, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		str, err := Solve(ctx, exec, 0, solver.New(solver.WithoutPackedMemo()))
		if err != nil {
			t.Fatal(err)
		}
		if packed.Coherent != str.Coherent {
			t.Fatalf("trial %d: packed verdict %v, string verdict %v", trial, packed.Coherent, str.Coherent)
		}
		if packed.Stats.States != str.Stats.States ||
			packed.Stats.MemoHits != str.Stats.MemoHits ||
			packed.Stats.MemoMisses != str.Stats.MemoMisses ||
			packed.Stats.Branches != str.Stats.Branches {
			t.Fatalf("trial %d: packed stats %+v, string stats %+v", trial, packed.Stats, str.Stats)
		}
		if !reflect.DeepEqual(packed.Schedule, str.Schedule) {
			t.Fatalf("trial %d: packed schedule %v, string schedule %v", trial, packed.Schedule, str.Schedule)
		}
	}
}

// TestPackedMemoOracleAblations repeats the cross-check under each
// search ablation, so the representations stay interchangeable in every
// configuration, not just the default.
func TestPackedMemoOracleAblations(t *testing.T) {
	ctx := context.Background()
	for _, ab := range []struct {
		name string
		opt  solver.Option
	}{
		{"no-eager", solver.WithoutEagerReads()},
		{"no-guidance", solver.WithoutWriteGuidance()},
	} {
		t.Run(ab.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(44))
			for trial := 0; trial < 150; trial++ {
				exec := randomInstance(rng)
				packed, err := Solve(ctx, exec, 0, solver.New(ab.opt))
				if err != nil {
					t.Fatal(err)
				}
				str, err := Solve(ctx, exec, 0, solver.New(ab.opt, solver.WithoutPackedMemo()))
				if err != nil {
					t.Fatal(err)
				}
				if packed.Coherent != str.Coherent || packed.Stats.States != str.Stats.States {
					t.Fatalf("trial %d: packed (%v, %d states) vs string (%v, %d states)",
						trial, packed.Coherent, packed.Stats.States, str.Coherent, str.Stats.States)
				}
			}
		})
	}
}

// TestPackedSetResetSizedBookkeeping pins the pooled-reset contract on
// every path through resetSized: the fill count is zeroed, stale keys
// vanish, and the retained-versus-reallocated decision follows the
// documented bounds.
func TestPackedSetResetSizedBookkeeping(t *testing.T) {
	var ps packedSet

	// Fresh set: resetSized allocates the clamped, power-of-two size.
	ps.resetSized(100)
	if len(ps.slots) != 128 || ps.n != 0 {
		t.Fatalf("fresh resetSized(100): len=%d n=%d, want 128, 0", len(ps.slots), ps.n)
	}

	// A retained table must not resurrect previous keys or their count.
	for k := uint64(1); k <= 60; k++ {
		ps.add(k)
	}
	grown := len(ps.slots)
	ps.resetSized(64)
	if ps.n != 0 {
		t.Fatalf("retained reset kept n=%d", ps.n)
	}
	if len(ps.slots) != grown {
		t.Fatalf("small reset reallocated: len=%d, want retained %d", len(ps.slots), grown)
	}
	for k := uint64(1); k <= 60; k++ {
		if ps.contains(k) {
			t.Fatalf("key %d survived reset", k)
		}
	}

	// Asking for more than the retained table has reallocates.
	ps.resetSized(packedSetMinSlots)
	if len(ps.slots) != packedSetMinSlots {
		t.Fatalf("upsizing reset: len=%d, want %d", len(ps.slots), packedSetMinSlots)
	}

	// The clamp: resetSized never exceeds packedSetMinSlots nor drops
	// below packedSetMinBatchSlots.
	var ps2 packedSet
	ps2.resetSized(1 << 20)
	if len(ps2.slots) != packedSetMinSlots {
		t.Fatalf("oversize ask: len=%d, want clamp %d", len(ps2.slots), packedSetMinSlots)
	}
	var ps3 packedSet
	ps3.resetSized(1)
	if len(ps3.slots) != packedSetMinBatchSlots {
		t.Fatalf("undersize ask: len=%d, want clamp %d", len(ps3.slots), packedSetMinBatchSlots)
	}
}

// TestPackedSetGrowNearRetainBound is the high-load-factor stress around
// packedSetMaxRetainSlots: grow the table just past the retain bound
// under sustained 3/4-load insertion, verify nothing is lost at peak,
// then confirm the pooled reset drops the oversized table instead of
// clearing megabytes, and that the set still works afterwards.
func TestPackedSetGrowNearRetainBound(t *testing.T) {
	var ps packedSet
	ps.reset()
	rng := rand.New(rand.NewSource(77))
	// 3/4 of 2^16 is the last fill that fits the retain bound; pushing a
	// few thousand past it forces the doubling to 2^17 > retain bound.
	target := packedSetMaxRetainSlots/4*3 + 4096
	keys := make([]uint64, 0, target)
	for len(keys) < target {
		k := rng.Uint64() >> 1
		keys = append(keys, k)
		ps.add(k)
	}
	if len(ps.slots) <= packedSetMaxRetainSlots {
		t.Fatalf("table did not grow past the retain bound: len=%d", len(ps.slots))
	}
	for i, k := range keys {
		if !ps.contains(k) {
			t.Fatalf("key %d (%x) lost during growth", i, k)
		}
	}
	if ps.size() > target {
		t.Fatalf("size=%d exceeds inserts=%d", ps.size(), target)
	}

	ps.reset()
	if len(ps.slots) != packedSetMinSlots {
		t.Fatalf("reset after oversized table: len=%d, want fresh %d", len(ps.slots), packedSetMinSlots)
	}
	if ps.n != 0 {
		t.Fatalf("reset kept n=%d", ps.n)
	}
	for _, k := range keys[:1000] {
		if ps.contains(k) {
			t.Fatalf("key %x survived the drop-reallocate reset", k)
		}
	}
	ps.add(42)
	if !ps.contains(42) || ps.size() != 1 {
		t.Fatal("set unusable after reset")
	}
}
