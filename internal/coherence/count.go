package coherence

import (
	"context"
	"encoding/binary"
	"math/big"

	"memverify/internal/memory"
	"memverify/internal/solver"
)

// Count returns the exact number of distinct coherent schedules for the
// operations of exec at addr. Counting is by dynamic programming over
// the same state space as the search — (position vector, current value)
// determines the number of coherent completions — so the cost is the
// number of reachable states times the branching factor, typically far
// below enumerating the schedules themselves (whose count is the
// returned value and can be astronomically large; hence *big.Int).
//
// Counting generalizes the decision problem (the count is zero iff the
// instance is incoherent) and is used by the tests as an independent
// cross-check of the solver against brute-force enumeration.
func Count(ctx context.Context, exec *memory.Execution, addr memory.Addr) (*big.Int, error) {
	if err := exec.Validate(); err != nil {
		return nil, err
	}
	inst := project(exec, addr)
	c := &counter{
		inst:   inst,
		budget: solver.Start(ctx, nil),
		pos:    make([]int, len(inst.hist)),
		memo:   make(map[string]*big.Int),
	}
	if inst.init != nil {
		c.cur, c.bound = *inst.init, true
	}
	n := c.count()
	if e := c.budget.Err(); e != nil {
		e.Stats.States = c.states
		return nil, withAddr(e, addr)
	}
	return n, nil
}

type counter struct {
	inst   *instance
	budget *solver.Budget
	states int
	pos    []int
	cur    memory.Value
	bound  bool
	memo   map[string]*big.Int
	keyBuf []byte
}

func (c *counter) key() string {
	buf := c.keyBuf[:0]
	for _, p := range c.pos {
		buf = binary.AppendUvarint(buf, uint64(p))
	}
	if c.bound {
		buf = append(buf, 1)
		buf = binary.AppendVarint(buf, int64(c.cur))
	} else {
		buf = append(buf, 0)
	}
	c.keyBuf = buf
	return string(buf)
}

func (c *counter) count() *big.Int {
	done := true
	for h, p := range c.pos {
		if p < len(c.inst.hist[h]) {
			done = false
			break
		}
	}
	if done {
		if c.inst.final != nil && c.bound && c.cur != *c.inst.final {
			return big.NewInt(0)
		}
		return big.NewInt(1)
	}
	key := c.key()
	if v, ok := c.memo[key]; ok {
		return v
	}
	c.states++
	if c.budget.Charge(c.states) != nil {
		return big.NewInt(0)
	}
	total := big.NewInt(0)
	for h := range c.inst.hist {
		if c.pos[h] >= len(c.inst.hist[h]) {
			continue
		}
		o := c.inst.hist[h][c.pos[h]]
		// Enabledness (no eager-read shortcut here: each placement of a
		// read is a distinct schedule and must be counted).
		enabled := false
		switch o.Kind {
		case memory.Write:
			enabled = true
		case memory.Read, memory.ReadModifyWrite:
			enabled = !c.bound || o.Data == c.cur
		}
		if !enabled {
			continue
		}
		prevCur, prevBound := c.cur, c.bound
		c.pos[h]++
		if d, ok := o.Reads(); ok && !c.bound {
			c.cur, c.bound = d, true
		}
		if d, ok := o.Writes(); ok {
			c.cur, c.bound = d, true
		}
		total.Add(total, c.count())
		c.pos[h]--
		c.cur, c.bound = prevCur, prevBound
	}
	c.memo[key] = total
	return total
}
