package coherence

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"memverify/internal/memory"
)

// Property: schedule-prefix closure. Any prefix of a coherent schedule
// is itself a witness for the sub-execution consisting of exactly its
// operations (note that truncating an ARBITRARY history is not safe —
// it can delete a write that another history's read observes — which is
// why the cut must follow a schedule).
func TestCoherenceSchedulePrefixClosure(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		exec := randomInstance(rng)
		delete(exec.Final, 0)
		res, err := Solve(context.Background(), exec, 0, nil)
		if err != nil || !res.Decided {
			return false
		}
		if !res.Coherent {
			return true // nothing to check
		}
		if len(res.Schedule) == 0 {
			return true
		}
		cut := rng.Intn(len(res.Schedule) + 1)
		// Build the sub-execution containing exactly the scheduled
		// prefix, preserving per-history order, and re-map the prefix
		// schedule to the new indices.
		keep := make(map[memory.Ref]bool, cut)
		for _, r := range res.Schedule[:cut] {
			keep[r] = true
		}
		sub := &memory.Execution{
			Histories: make([]memory.History, len(exec.Histories)),
			Initial:   exec.Initial,
		}
		remap := make(map[memory.Ref]memory.Ref, cut)
		for p, h := range exec.Histories {
			for i, o := range h {
				r := memory.Ref{Proc: p, Index: i}
				if keep[r] {
					remap[r] = memory.Ref{Proc: p, Index: len(sub.Histories[p])}
					sub.Histories[p] = append(sub.Histories[p], o)
				}
			}
		}
		prefix := make(memory.Schedule, cut)
		for i, r := range res.Schedule[:cut] {
			prefix[i] = remap[r]
		}
		return memory.CheckCoherent(sub, 0, prefix) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: history permutation invariance. Renaming processes cannot
// change the verdict (the problem is symmetric in the histories).
func TestCoherenceHistoryPermutationInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		exec := randomInstance(rng)
		res, err := Solve(context.Background(), exec, 0, nil)
		if err != nil {
			return false
		}
		perm := rng.Perm(len(exec.Histories))
		shuffled := &memory.Execution{
			Histories: make([]memory.History, len(exec.Histories)),
			Initial:   exec.Initial,
			Final:     exec.Final,
		}
		for i, j := range perm {
			shuffled.Histories[j] = exec.Histories[i]
		}
		r2, err := Solve(context.Background(), shuffled, 0, nil)
		if err != nil {
			return false
		}
		return res.Coherent == r2.Coherent
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: value renaming invariance. Applying an injective renaming to
// every data value (including initial/final) preserves the verdict.
func TestCoherenceValueRenamingInvariance(t *testing.T) {
	rename := func(v memory.Value) memory.Value { return v*7 + 100 }
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		exec := randomInstance(rng)
		res, err := Solve(context.Background(), exec, 0, nil)
		if err != nil {
			return false
		}
		mapped := exec.Clone()
		for p := range mapped.Histories {
			for i, o := range mapped.Histories[p] {
				if _, ok := o.Reads(); ok {
					o.Data = rename(o.Data)
				} else if o.Kind == memory.Write {
					o.Data = rename(o.Data)
				}
				if o.Kind == memory.ReadModifyWrite {
					o.Store = rename(o.Store)
				}
				mapped.Histories[p][i] = o
			}
		}
		if v, ok := mapped.Initial[0]; ok {
			mapped.Initial[0] = rename(v)
		}
		if v, ok := mapped.Final[0]; ok {
			mapped.Final[0] = rename(v)
		}
		r2, err := Solve(context.Background(), mapped, 0, nil)
		if err != nil {
			return false
		}
		return res.Coherent == r2.Coherent
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: appending W(v) followed by R(v) to any history of a
// final-value-free execution preserves coherence (the new pair schedules
// at the very end).
func TestCoherenceAppendWriteReadPair(t *testing.T) {
	f := func(seed int64, v int8) bool {
		rng := rand.New(rand.NewSource(seed))
		exec := randomInstance(rng)
		delete(exec.Final, 0)
		res, err := Solve(context.Background(), exec, 0, nil)
		if err != nil || !res.Coherent {
			return err == nil
		}
		p := rng.Intn(len(exec.Histories))
		grown := exec.Clone()
		grown.Histories[p] = append(grown.Histories[p],
			memory.W(0, memory.Value(v)), memory.R(0, memory.Value(v)))
		r2, err := Solve(context.Background(), grown, 0, nil)
		if err != nil {
			return false
		}
		return r2.Coherent
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: the certificate schedule length always equals the number of
// projected operations, and every certificate validates.
func TestCertificateWellFormed(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		exec := randomInstance(rng)
		res, err := Solve(context.Background(), exec, 0, nil)
		if err != nil {
			return false
		}
		if !res.Coherent {
			return len(res.Schedule) == 0
		}
		proj, _ := exec.Project(0)
		if len(res.Schedule) != proj.NumOps() {
			return false
		}
		return memory.CheckCoherent(exec, 0, res.Schedule) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
