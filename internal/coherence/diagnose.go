package coherence

import (
	"context"
	"fmt"

	"memverify/internal/memory"
)

// Diagnosis describes a minimal incoherent core of an execution at one
// address: a sub-execution obtained by deleting operations such that the
// remainder is still incoherent, but removing any single remaining
// operation (or the final-value constraint) restores coherence. Minimal
// cores localize violations: the operations in the core are exactly the
// ones a hardware engineer needs to stare at.
type Diagnosis struct {
	// Core is the 1-minimal incoherent sub-execution.
	Core *memory.Execution
	// Addr is the diagnosed address.
	Addr memory.Addr
	// Ops lists the references (into the ORIGINAL execution) of the
	// data-memory operations retained in the core.
	Ops []memory.Ref
	// FinalValueInvolved reports whether the declared final value is
	// necessary for the incoherence (dropping it would restore
	// coherence).
	FinalValueInvolved bool
}

// Diagnose shrinks an incoherent execution at addr to a 1-minimal
// incoherent core using delta-debugging-style removal: operations are
// deleted greedily (suffixes first, then one by one) while incoherence
// persists. The result pinpoints the violation. An error is returned if
// the execution is actually coherent at addr, or if a budget (states,
// deadline, cancellation) aborts one of the inner solves.
//
// Worst-case cost is O(n) solver calls on shrinking instances.
func Diagnose(ctx context.Context, exec *memory.Execution, addr memory.Addr, opts *Options) (*Diagnosis, error) {
	if err := exec.Validate(); err != nil {
		return nil, err
	}
	inst := project(exec, addr)

	// Working copy as mutable rows of (op, originalRef), so deletions
	// keep the back-mapping.
	type row struct {
		op  memory.Op
		ref memory.Ref
	}
	rows := make([][]row, len(inst.hist))
	for p, h := range inst.hist {
		for i, o := range h {
			rows[p] = append(rows[p], row{op: o, ref: inst.back[memory.Ref{Proc: p, Index: i}]})
		}
	}
	final := inst.final

	build := func() *memory.Execution {
		e := &memory.Execution{Histories: make([]memory.History, len(rows))}
		for p := range rows {
			for _, r := range rows[p] {
				e.Histories[p] = append(e.Histories[p], r.op)
			}
		}
		if inst.init != nil {
			e.SetInitial(addr, *inst.init)
		}
		if final != nil {
			e.SetFinal(addr, *final)
		}
		return e
	}
	incoherent := func() (bool, error) {
		res, e := searchInstance(ctx, project(build(), addr), opts)
		if e != nil {
			return false, fmt.Errorf("coherence: diagnosis aborted: %w", withAddr(e, addr))
		}
		return !res.Coherent, nil
	}

	bad, err := incoherent()
	if err != nil {
		return nil, err
	}
	if !bad {
		return nil, fmt.Errorf("coherence: execution is coherent at address %d; nothing to diagnose", addr)
	}

	// Try dropping the final-value constraint first: if incoherence
	// persists without it, it is not part of the core.
	finalInvolved := false
	if final != nil {
		saved := final
		final = nil
		still, err := incoherent()
		if err != nil {
			return nil, err
		}
		if !still {
			final = saved
			finalInvolved = true
		}
	}

	// Greedy 1-minimization: repeatedly try to delete each operation
	// (scanning until a fixpoint). A deletion is kept only when the
	// remainder is still incoherent, so the loop terminates at a core
	// where every remaining operation is necessary for the violation.
	for changed := true; changed; {
		changed = false
		for p := range rows {
			for i := 0; i < len(rows[p]); i++ {
				removed := rows[p][i]
				rows[p] = append(rows[p][:i], rows[p][i+1:]...)
				still, err := incoherent()
				if err != nil {
					return nil, err
				}
				if still {
					changed = true
					i--
					continue
				}
				// Needed: put it back.
				rows[p] = append(rows[p][:i], append([]row{removed}, rows[p][i:]...)...)
			}
		}
	}

	d := &Diagnosis{Core: build(), Addr: addr, FinalValueInvolved: finalInvolved}
	for p := range rows {
		for _, r := range rows[p] {
			d.Ops = append(d.Ops, r.ref)
		}
	}
	return d, nil
}
