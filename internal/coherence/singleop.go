package coherence

import (
	"context"
	"fmt"
	"sort"
	"time"

	"memverify/internal/memory"
	"memverify/internal/solver"
)

// SolveSingleOp decides VMC for instances with at most one simple
// operation (read or write) per process (Figure 5.3, "1 Operation/
// Process" row). With no program-order constraints the problem reduces to
// grouping: every write of value d can be immediately followed by all
// reads of d, groups may appear in any order, reads of the initial value
// come first, and a write of the final value goes last. The
// implementation sorts operations by value, O(n log n) as the paper
// lists.
func SolveSingleOp(ctx context.Context, exec *memory.Execution, addr memory.Addr) (r *Result, err error) {
	if err := exec.Validate(); err != nil {
		return nil, err
	}
	if e := solver.Interrupted(ctx); e != nil {
		return nil, withAddr(e, addr)
	}
	sp, ctx := beginSolve(ctx, "single-op", addr)
	defer func() { endSolve(ctx, sp, r, err) }()
	start := time.Now()
	inst := project(exec, addr)
	if inst.maxOpsPerProcess() > 1 {
		return nil, fmt.Errorf("coherence: address %d has a history with more than one operation", addr)
	}
	r, ok := singleOpInstance(inst)
	if !ok {
		return nil, fmt.Errorf("coherence: address %d has read-modify-write operations; use SolveSingleOpRMW", addr)
	}
	r.Stats.Duration = time.Since(start)
	return r, nil
}

// singleOpInstance solves the single-op simple-operation case. ok is
// false when the instance contains read-modify-writes (different
// algorithm) or a history with more than one op.
func singleOpInstance(inst *instance) (r *Result, ok bool) {
	defer func() { stampOps(r, inst) }()
	incoherent := &Result{Coherent: false, Decided: true, Algorithm: "single-op"}

	type group struct {
		value  memory.Value
		writes []memory.Ref
		reads  []memory.Ref
	}
	groups := make(map[memory.Value]*group)
	lookup := func(d memory.Value) *group {
		g, ok := groups[d]
		if !ok {
			g = &group{value: d}
			groups[d] = g
		}
		return g
	}
	for p, h := range inst.hist {
		if len(h) > 1 {
			return nil, false
		}
		for i, o := range h {
			if o.Kind == memory.ReadModifyWrite {
				return nil, false
			}
			r := memory.Ref{Proc: p, Index: i}
			if d, ok := o.Writes(); ok {
				lookup(d).writes = append(lookup(d).writes, r)
			} else {
				lookup(o.Data).reads = append(lookup(o.Data).reads, r)
			}
		}
	}

	// Reads of unwritten values must read the initial value: they must
	// all agree, and with a declared initial value they must match it.
	initBound := false
	var initValue memory.Value
	if inst.init != nil {
		initBound, initValue = true, *inst.init
	}
	var initReads []memory.Ref
	var writeGroups []*group
	for _, g := range groups {
		if len(g.writes) == 0 {
			if initBound && g.value != initValue {
				return incoherent, true
			}
			if !initBound {
				initBound, initValue = true, g.value
			}
			initReads = append(initReads, g.reads...)
			continue
		}
		writeGroups = append(writeGroups, g)
	}
	// Reads of the initial value when that value is ALSO written can join
	// the written group instead, so they need no special handling: the
	// written group satisfies them.

	// Final value: some write group must carry it and go last.
	finalIdx := -1
	if inst.final != nil {
		if len(writeGroups) > 0 {
			for i, g := range writeGroups {
				if g.value == *inst.final {
					finalIdx = i
					break
				}
			}
			if finalIdx == -1 {
				return incoherent, true
			}
		} else if initBound && initValue != *inst.final {
			return incoherent, true
		}
	}

	// Deterministic output: order groups by value, final group last.
	sort.Slice(writeGroups, func(i, j int) bool { return writeGroups[i].value < writeGroups[j].value })
	if finalIdx >= 0 {
		// Re-find after sorting.
		for i, g := range writeGroups {
			if g.value == *inst.final {
				writeGroups = append(append(append([]*group{}, writeGroups[:i]...), writeGroups[i+1:]...), g)
				break
			}
		}
	}

	sched := make([]memory.Ref, 0, inst.nops)
	sched = append(sched, initReads...)
	for _, g := range writeGroups {
		sched = append(sched, g.writes...)
		sched = append(sched, g.reads...)
	}
	return &Result{
		Coherent:  true,
		Decided:   true,
		Schedule:  inst.translate(sched),
		Algorithm: "single-op",
	}, true
}

// SolveSingleOpRMW decides VMC for instances consisting of exactly one
// read-modify-write per process (Figure 5.3: the paper lists O(n²); this
// implementation is O(n) expected). A total order of RMWs is coherent iff
// each operation reads the value written by its predecessor — i.e. the
// operations, viewed as edges d_r -> d_w of a multigraph over values,
// form an Eulerian path starting at the initial value (when declared) and
// ending with a write of the final value (when declared). Hierholzer's
// algorithm constructs the path.
func SolveSingleOpRMW(ctx context.Context, exec *memory.Execution, addr memory.Addr) (r *Result, err error) {
	if err := exec.Validate(); err != nil {
		return nil, err
	}
	if e := solver.Interrupted(ctx); e != nil {
		return nil, withAddr(e, addr)
	}
	sp, ctx := beginSolve(ctx, "rmw-euler", addr)
	defer func() { endSolve(ctx, sp, r, err) }()
	start := time.Now()
	inst := project(exec, addr)
	if inst.maxOpsPerProcess() > 1 {
		return nil, fmt.Errorf("coherence: address %d has a history with more than one operation", addr)
	}
	if !inst.allRMW() {
		return nil, fmt.Errorf("coherence: address %d has simple operations; use SolveSingleOp", addr)
	}
	r = eulerInstance(inst)
	r.Stats.Duration = time.Since(start)
	return r, nil
}

// eulerInstance solves the RMW-only single-op case via Eulerian paths.
func eulerInstance(inst *instance) (r *Result) {
	defer func() { stampOps(r, inst) }()
	incoherent := &Result{Coherent: false, Decided: true, Algorithm: "rmw-euler"}

	type edge struct {
		ref  memory.Ref
		from memory.Value
		to   memory.Value
	}
	var edges []edge
	outAdj := make(map[memory.Value][]int) // value -> edge indices
	degree := make(map[memory.Value]int)   // out - in
	touched := make(map[memory.Value]bool)
	for p, h := range inst.hist {
		for i, o := range h {
			e := edge{ref: memory.Ref{Proc: p, Index: i}, from: o.Data, to: o.Store}
			outAdj[e.from] = append(outAdj[e.from], len(edges))
			degree[e.from]++
			degree[e.to]--
			touched[e.from] = true
			touched[e.to] = true
			edges = append(edges, e)
		}
	}
	if len(edges) == 0 {
		// Empty instance: coherent iff initial and final agree when both
		// are declared.
		if inst.init != nil && inst.final != nil && *inst.init != *inst.final {
			return incoherent
		}
		return &Result{Coherent: true, Decided: true, Algorithm: "rmw-euler"}
	}

	// Degree conditions: at most one vertex with out-in = +1 (start), at
	// most one with out-in = -1 (end), all others balanced.
	var start, end *memory.Value
	for v, d := range degree {
		v := v
		switch d {
		case 0:
		case 1:
			if start != nil {
				return incoherent
			}
			start = &v
		case -1:
			if end != nil {
				return incoherent
			}
			end = &v
		default:
			return incoherent
		}
	}
	// Initial/final constraints pin the endpoints.
	if inst.init != nil {
		if start != nil && *start != *inst.init {
			return incoherent
		}
		if start == nil {
			// Eulerian circuit: it may start anywhere on the circuit, but
			// the declared initial value must be on it.
			if !touched[*inst.init] {
				return incoherent
			}
			start = inst.init
		}
	}
	if inst.final != nil {
		if end != nil && *end != *inst.final {
			return incoherent
		}
		if end == nil {
			if !touched[*inst.final] {
				return incoherent
			}
			end = inst.final
		}
	}
	// A circuit has start == end; if both were pinned they must agree.
	if start != nil && end != nil {
		balanced := true
		for _, d := range degree {
			if d != 0 {
				balanced = false
				break
			}
		}
		if balanced && *start != *end {
			return incoherent
		}
	}
	if start == nil {
		// The graph is balanced here (an unbalanced graph pinned start in
		// the degree scan): the path is a circuit. A pinned end forces
		// the start (a circuit ends where it starts); otherwise any
		// touched vertex works.
		if end != nil {
			start = end
		} else {
			for v := range touched {
				v := v
				start = &v
				break
			}
		}
	}

	// Hierholzer from *start.
	used := make([]bool, len(edges))
	nextOut := make(map[memory.Value]int)
	var path []int // edge indices, built in reverse
	var visit func(v memory.Value)
	visit = func(v memory.Value) {
		for {
			idx := nextOut[v]
			outs := outAdj[v]
			if idx >= len(outs) {
				break
			}
			nextOut[v] = idx + 1
			e := outs[idx]
			if used[e] {
				continue
			}
			used[e] = true
			visit(edges[e].to)
			path = append(path, e)
		}
	}
	visit(*start)
	if len(path) != len(edges) {
		return incoherent // disconnected
	}
	// path is in reverse order.
	sched := make([]memory.Ref, 0, len(path))
	for i := len(path) - 1; i >= 0; i-- {
		sched = append(sched, edges[path[i]].ref)
	}
	return &Result{
		Coherent:  true,
		Decided:   true,
		Schedule:  inst.translate(sched),
		Algorithm: "rmw-euler",
	}
}
