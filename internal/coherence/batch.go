package coherence

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"memverify/internal/memory"
	"memverify/internal/obs"
	"memverify/internal/solver"
)

// SolveBatch is the vectorized multi-instance driver: thousands of
// small single-address VMC instances solved with pooled scratch and
// (near) zero cross-instance allocation. It exists for workloads shaped
// like memverifyd's cache-miss bursts — many independent litmus-sized
// traces, each cheap to solve, where a loop over Verifier.Solve spends
// more time on per-call ceremony (double validation, projection maps,
// budget and layout construction, span bookkeeping) than on the solves
// themselves.
//
// What the batch path pools or avoids, per job, relative to a looped
// Verifier.Solve:
//
//   - Validate runs once per distinct *Execution, not twice per call;
//   - jobs over one execution are grouped, and ALL of the group's
//     addresses are projected in a single pass over the histories into
//     pooled backing arrays with slice back-maps — a loop re-scans the
//     whole execution (validate + Project + a Ref map) once per
//     address, so an A-address burst does ~2A full scans where the
//     batch does ~2;
//   - single-address executions skip Project entirely (identity
//     projection: the instance aliases the execution's histories and
//     translates refs to themselves);
//   - the write-count specialist probe reuses one cleared map;
//   - the packed memo layout and table, the budget, and every searcher
//     buffer live in a per-worker batchScratch, reset — not
//     reallocated — between jobs, with the memo table sized to the
//     instance instead of the global minimum;
//   - results are written into one preallocated slice; the only
//     per-job allocation left is the certificate schedule of a
//     coherent verdict (and whatever the polynomial specialists
//     allocate internally).
//
// Verdict parity with the looped path is exact: the same dispatch
// (Figure 5.3 specialists, then the memoized search) runs on the same
// instances under the same Options budget. Each instance is solved
// sequentially — batch throughput comes from eliminating overhead and
// from fanning jobs across Config.Workers, not from Options.
// ParallelSearch, which is ignored here (litmus-sized instances are
// below any useful frontier split).

// BatchJob names one single-address VMC instance of a batch: decide
// coherence of Exec's operations at Addr.
type BatchJob struct {
	Exec *memory.Execution
	Addr memory.Addr
}

// BatchResult is the outcome of one BatchJob. Result is embedded by
// value so a batch of N jobs costs one slice allocation, not N.
type BatchResult struct {
	// Result is the solver outcome; meaningful only when Err is nil.
	Result Result
	// Err is the per-job error: validation failure or budget trip. One
	// job's error never aborts its siblings.
	Err error
}

// Report converts a successful batch outcome to the strategy-neutral
// AddrReport shape SolveAddr returns, so batched and individually
// sharded addresses merge through one code path (memverifyd does this).
// Call only when Err is nil.
func (br *BatchResult) Report(addr memory.Addr) *AddrReport {
	r := br.Result
	ar := &AddrReport{Addr: addr, Verdict: VerdictCoherent, Rung: RungExact, Result: &r, Stats: r.Stats}
	switch {
	case !r.Decided:
		ar.Verdict, ar.Result = VerdictUnknown, nil
	case !r.Coherent:
		ar.Verdict = VerdictIncoherent
	}
	return ar
}

// batchScratch is one worker's reusable solve state.
type batchScratch struct {
	inst     instance
	initVal  memory.Value
	finalVal memory.Value
	layout   packedLayout
	counts   map[memory.Value]int
	budget   solver.Budget
	s        searcher
	packed   packedSet
	pos      []int
	schedule []memory.Ref
	candBuf  []int
	needed   []memory.Value
	keyBuf   []byte

	// Grouped-projection state: one pass over an execution's histories
	// fills instances for every address its group requests. All slices
	// are carved from the g* backing arrays, which grow to the largest
	// group seen and are then reused verbatim.
	gAddrIdx map[memory.Addr]int
	gSlot    []int32          // dense addr -> index+1 table (0 = untracked)
	gInsts   []instance
	gInit    []memory.Value
	gFinal   []memory.Value
	gHist    []memory.History // A*P history headers
	gBackHdr [][]memory.Ref   // A*P back-map headers
	gOps     []memory.Op      // backing for every projected op
	gBack    []memory.Ref     // backing for every back-map entry
	gCount   []int            // per (addr, proc) op counts, then fill cursors
}

// batchSlotMax bounds the dense address table: a group whose addresses
// all fall in [0, batchSlotMax) resolves each op's address with a slice
// index instead of a map lookup in the projection passes. 64 KiB once
// per pooled scratch.
const batchSlotMax = 1 << 14

var batchScratchPool = sync.Pool{New: func() any {
	return &batchScratch{
		counts:   make(map[memory.Value]int),
		gAddrIdx: make(map[memory.Addr]int),
	}
}}

// SolveBatch solves every job under the verifier's configured budget,
// fanning jobs across Config.Workers pooled workers, and returns one
// BatchResult per job in job order. The context is polled between jobs:
// cancellation marks the remaining jobs' Err and returns.
//
// The pooled fast path covers StrategyAuto and StrategyExact (Exact
// skips the specialist dispatch, as everywhere). Other strategies and
// write-order-augmented configurations fall back to SolveAddr per job —
// correct, just without the pooling.
func (v *Verifier) SolveBatch(ctx context.Context, jobs []BatchJob) []BatchResult {
	out := make([]BatchResult, len(jobs))
	if len(jobs) == 0 {
		return out
	}

	// Group jobs by execution. A group is the unit of work a worker
	// claims: it validates the execution once and projects every
	// requested address in one pass over the histories.
	groupOf := make(map[*memory.Execution]int, min(len(jobs), 64))
	var groups []batchGroup
	for i := range jobs {
		g, ok := groupOf[jobs[i].Exec]
		if !ok {
			g = len(groups)
			groupOf[jobs[i].Exec] = g
			groups = append(groups, batchGroup{exec: jobs[i].Exec})
		}
		groups[g].jobIdx = append(groups[g].jobIdx, i)
	}

	exactOnly := v.cfg.Strategy == solver.StrategyExact
	pooled := (v.cfg.Strategy == solver.StrategyAuto || exactOnly) && v.cfg.WriteOrders == nil

	workers := v.cfg.Workers
	if workers > len(groups) {
		workers = len(groups)
	}
	if workers < 1 {
		workers = 1
	}

	var nextGroup atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			bs := batchScratchPool.Get().(*batchScratch)
			defer batchScratchPool.Put(bs)
			met := obs.MetricsFrom(ctx)
			for {
				gi := int(nextGroup.Add(1)) - 1
				if gi >= len(groups) {
					return
				}
				v.solveGroup(ctx, met, bs, jobs, &groups[gi], pooled, exactOnly, out)
			}
		}()
	}
	wg.Wait()
	return out
}

// batchGroup is every job of one batch that shares an execution.
type batchGroup struct {
	exec   *memory.Execution
	jobIdx []int
}

// solveGroup validates the group's execution once, then answers each of
// its jobs, using the grouped single-pass projection when more than one
// pooled job shares the execution.
func (v *Verifier) solveGroup(ctx context.Context, met *obs.Metrics, bs *batchScratch, jobs []BatchJob, g *batchGroup, pooled, exactOnly bool, out []BatchResult) {
	if err := g.exec.Validate(); err != nil {
		for _, i := range g.jobIdx {
			out[i].Err = err
		}
		return
	}
	grouped := pooled && len(g.jobIdx) > 1
	if grouped {
		bs.groupProject(g.exec, jobs, g.jobIdx)
	}
	for _, i := range g.jobIdx {
		job, br := jobs[i], &out[i]
		if e := solver.Interrupted(ctx); e != nil {
			br.Err = withAddr(e, job.Addr)
			continue
		}
		switch {
		case grouped:
			bs.solveInst(ctx, met, &bs.gInsts[bs.gAddrIdx[job.Addr]], exactOnly, v.cfg.Options, br)
		case pooled:
			bs.loadInstance(job)
			bs.solveInst(ctx, met, &bs.inst, exactOnly, v.cfg.Options, br)
		default:
			ar, err := v.solveAddrOpts(ctx, job.Exec, job.Addr, v.cfg.Options)
			if err != nil {
				br.Err = err
				continue
			}
			if ar.Result != nil {
				br.Result = *ar.Result
			} else {
				br.Result = Result{Algorithm: "resilient-unknown", Stats: ar.Stats}
			}
		}
	}
}

// growSlice returns s resized to n, reusing its backing array when the
// capacity allows.
func growSlice[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]T, n)
}

// groupProject fills bs.gInsts with one instance per distinct address
// in the group, projecting all of them in a single pass over the
// execution's histories. Two counting+filling passes replace the
// len(addrs) full Project scans (and their per-op Ref map inserts) a
// loop would do; every slice is carved out of reusable backing arrays,
// so a group costs O(1) allocations once the pool is warm.
func (bs *batchScratch) groupProject(exec *memory.Execution, jobs []BatchJob, jobIdx []int) {
	clear(bs.gAddrIdx)
	na := 0
	dense := true
	for _, i := range jobIdx {
		addr := jobs[i].Addr
		if _, ok := bs.gAddrIdx[addr]; !ok {
			bs.gAddrIdx[addr] = na
			na++
			if addr < 0 || addr >= batchSlotMax {
				dense = false
			}
		}
	}
	// The dense table turns the per-op address lookup of both passes
	// into a slice index. Slots are set for the group's addresses only
	// and cleared the same way, so a group costs O(addresses) table
	// maintenance regardless of batchSlotMax.
	if dense {
		if bs.gSlot == nil {
			bs.gSlot = make([]int32, batchSlotMax)
		}
		for addr, idx := range bs.gAddrIdx {
			bs.gSlot[addr] = int32(idx) + 1
		}
		defer func() {
			for addr := range bs.gAddrIdx {
				bs.gSlot[addr] = 0
			}
		}()
	}
	np := len(exec.Histories)

	// Pass 1: count projected ops per (address, process).
	bs.gCount = growSlice(bs.gCount, 2*na*np)
	counts, cursors := bs.gCount[:na*np], bs.gCount[na*np:]
	clear(counts)
	total := 0
	for p, h := range exec.Histories {
		if dense {
			slot := bs.gSlot
			for _, o := range h {
				if !o.IsMemory() {
					continue
				}
				if a := o.Addr; a >= 0 && a < batchSlotMax && slot[a] != 0 {
					counts[int(slot[a]-1)*np+p]++
					total++
				}
			}
			continue
		}
		for _, o := range h {
			if !o.IsMemory() {
				continue
			}
			if a, ok := bs.gAddrIdx[o.Addr]; ok {
				counts[a*np+p]++
				total++
			}
		}
	}

	// Carve the per-(address, process) sub-histories and back-maps out
	// of two flat backing arrays, recording each slot's start cursor.
	bs.gOps = growSlice(bs.gOps, total)
	bs.gBack = growSlice(bs.gBack, total)
	bs.gHist = growSlice(bs.gHist, na*np)
	bs.gBackHdr = growSlice(bs.gBackHdr, na*np)
	off := 0
	for s := range counts {
		n := counts[s]
		bs.gHist[s] = memory.History(bs.gOps[off : off+n : off+n])
		bs.gBackHdr[s] = bs.gBack[off : off+n : off+n]
		cursors[s] = off
		off += n
	}

	// Pass 2: fill.
	for p, h := range exec.Histories {
		if dense {
			slot := bs.gSlot
			for i, o := range h {
				if !o.IsMemory() {
					continue
				}
				a := o.Addr
				if a < 0 || a >= batchSlotMax || slot[a] == 0 {
					continue
				}
				s := int(slot[a]-1)*np + p
				c := cursors[s]
				bs.gOps[c] = o
				bs.gBack[c] = memory.Ref{Proc: p, Index: i}
				cursors[s] = c + 1
			}
			continue
		}
		for i, o := range h {
			if !o.IsMemory() {
				continue
			}
			a, ok := bs.gAddrIdx[o.Addr]
			if !ok {
				continue
			}
			s := a*np + p
			c := cursors[s]
			bs.gOps[c] = o
			bs.gBack[c] = memory.Ref{Proc: p, Index: i}
			cursors[s] = c + 1
		}
	}

	// Assemble the instances. gInit/gFinal are sized before any pointer
	// into them is taken, so the pointers stay valid for the group.
	bs.gInsts = growSlice(bs.gInsts, na)
	bs.gInit = growSlice(bs.gInit, na)
	bs.gFinal = growSlice(bs.gFinal, na)
	for addr, a := range bs.gAddrIdx {
		nops := 0
		for s := a * np; s < (a+1)*np; s++ {
			nops += counts[s]
		}
		bs.gInsts[a] = instance{
			addr:    addr,
			hist:    bs.gHist[a*np : (a+1)*np],
			backIdx: bs.gBackHdr[a*np : (a+1)*np],
			nops:    nops,
		}
		if d, ok := exec.Initial[addr]; ok {
			bs.gInit[a] = d
			bs.gInsts[a].init = &bs.gInit[a]
		}
		if d, ok := exec.Final[addr]; ok {
			bs.gFinal[a] = d
			bs.gInsts[a].final = &bs.gFinal[a]
		}
	}
}

// loadInstance points bs.inst at the job, using the identity projection
// when the execution touches only this address (no copies, no back-map)
// and falling back to a real projection otherwise.
func (bs *batchScratch) loadInstance(job BatchJob) {
	exec := job.Exec
	identity := true
	nops := 0
	for _, h := range exec.Histories {
		for _, o := range h {
			if !o.IsMemory() || o.Addr != job.Addr {
				identity = false
				break
			}
			nops++
		}
		if !identity {
			break
		}
	}
	if identity {
		bs.inst = instance{addr: job.Addr, hist: exec.Histories, nops: nops}
		if d, ok := exec.Initial[job.Addr]; ok {
			bs.initVal = d
			bs.inst.init = &bs.initVal
		}
		if d, ok := exec.Final[job.Addr]; ok {
			bs.finalVal = d
			bs.inst.final = &bs.finalVal
		}
		return
	}
	bs.inst = *project(exec, job.Addr)
}

// maxWritesPerValue is instance.maxWritesPerValue with a pooled map.
func (bs *batchScratch) maxWritesPerValue(inst *instance) int {
	clear(bs.counts)
	max := 0
	for _, h := range inst.hist {
		for _, o := range h {
			if d, ok := o.Writes(); ok {
				bs.counts[d]++
				if bs.counts[d] > max {
					max = bs.counts[d]
				}
			}
		}
	}
	return max
}

// solveInst runs the lean auto dispatch on one prepared instance: the
// same algorithm selection as solveAutoInstance, on pooled state.
func (bs *batchScratch) solveInst(ctx context.Context, met *obs.Metrics, inst *instance, exactOnly bool, opts *Options, br *BatchResult) {
	if !exactOnly {
		if bs.maxWritesPerValue(inst) <= 1 {
			if r, ok := readMapInstance(inst); ok {
				br.Result = *r
				return
			}
		}
		if inst.maxOpsPerProcess() <= 1 {
			if inst.allRMW() {
				br.Result = *eulerInstance(inst)
				return
			}
			if r, ok := singleOpInstance(inst); ok {
				br.Result = *r
				return
			}
		}
	}
	bs.search(ctx, met, inst, opts, br)
}

// search is searchInstance on pooled state: same exploration, same
// budget semantics, none of the per-call construction.
func (bs *batchScratch) search(ctx context.Context, met *obs.Metrics, inst *instance, opts *Options, br *BatchResult) {
	start := time.Now()
	bs.budget.Reset(ctx, opts)
	defer bs.budget.Stop()
	s := &bs.s
	*s = searcher{
		inst:     inst,
		opts:     opts,
		budget:   &bs.budget,
		schedule: bs.schedule[:0],
		candBuf:  bs.candBuf[:0],
		needed:   bs.needed[:0],
		keyBuf:   bs.keyBuf[:0],
		met:      met,
	}
	s.obsOn = met != nil
	if cap(bs.pos) >= len(inst.hist) {
		s.pos = bs.pos[:len(inst.hist)]
		clear(s.pos)
	} else {
		s.pos = make([]int, len(inst.hist))
	}
	if opts.Memoize() {
		if opts.PackedMemo() && bs.layout.build(inst) {
			s.layout = &bs.layout
			s.packed = &bs.packed
			// Size the table to the instance: litmus-sized solves touch
			// tens of states, not the global 1024-slot minimum.
			bs.packed.resetSized(4 * inst.nops)
		} else {
			s.memo = make(map[string]struct{})
		}
	}
	if inst.init != nil {
		s.cur, s.bound = *inst.init, true
	}
	found := s.dfs()
	s.stats.Duration = time.Since(start)
	if s.obsOn {
		s.pollObs()
	}
	bs.pos = s.pos
	bs.schedule = s.schedule[:0]
	bs.candBuf = s.candBuf[:0]
	bs.needed = s.needed[:0]
	bs.keyBuf = s.keyBuf[:0]
	if s.abort != nil {
		s.abort.Stats = s.stats
		br.Err = withAddr(s.abort, inst.addr)
		return
	}
	br.Result = Result{
		Coherent:  found,
		Decided:   true,
		Algorithm: "general-search",
		Stats:     s.stats,
	}
	if found {
		br.Result.Schedule = inst.translate(s.schedule)
	}
}
