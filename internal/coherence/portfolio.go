package coherence

import (
	"context"

	"memverify/internal/memory"
	"memverify/internal/obs"
	"memverify/internal/solver"
)

// portfolioMinOps is the instance size below which SolvePortfolio
// dispatches directly instead of racing: tiny instances are solved in
// microseconds by whichever algorithm applies, so goroutine and channel
// overhead would dominate and the racer would lose to SolveAuto on
// specialist-heavy workloads.
const portfolioMinOps = 24

// portfolioProbeFactor sizes the escalation probe: before racing,
// SolvePortfolio runs the standard search capped at factor·n states. An
// easy instance (the common case on real traces) decides within the cap
// and costs the same as SolveAuto; only instances that blow the probe
// are hard enough for the race to pay for its goroutine, pool, and —
// on undersubscribed machines — time-slicing overhead.
const portfolioProbeFactor = 32

// testHookRaceCandidate, when non-nil, runs at the start of each race
// candidate with its index. Tests use it to inject a panic into one
// racer and assert the portfolio survives on the others.
var testHookRaceCandidate func(idx int)

// solvePortfolioAddr decides VMC for one address with a staged
// portfolio strategy. The polynomial constraint-propagation frontline
// (fastpath.go) opens: on structured instances it decides outright and
// no later stage runs. Then the polynomial specialists (read-map,
// single-op, RMW-Euler) are tried inline where their preconditions hold
// — racing a
// linear-time algorithm against an exponential search is a foregone
// conclusion, and on an undersubscribed pool the instant specialist
// could even starve behind the searches. Then the standard memoized
// search probes under a small state cap, deciding every easy instance
// at SolveAuto's cost. Only if the probe exhausts its cap do two
// general-search configurations race concurrently on the shared bounded
// worker pool (solver.Shared): the standard search and one with the
// write-guidance ordering flipped, which explores the state space in a
// different order and often certifies (or refutes) first on adversarial
// instances. The first racer to finish wins; the loser is cancelled
// through the context plumbing and stops at its next budget poll. Race
// winners are annotated "portfolio:<algorithm>".
//
// Instances smaller than a fixed threshold skip all staging and
// dispatch like SolveAuto. The staging bounds the overhead: easy
// instances cost one probe (= the SolveAuto search), hard ones add at
// most one extra search configuration — and gain whenever the flipped
// configuration wins.
//
// The verdict is identical to the auto strategy's (every candidate is a
// complete decision procedure for the instances it accepts); only the
// Algorithm annotation reveals which racer won.
func solvePortfolioAddr(ctx context.Context, exec *memory.Execution, addr memory.Addr, opts *Options) (*Result, error) {
	if err := exec.Validate(); err != nil {
		return nil, err
	}
	sp, ctx := beginSolve(ctx, "portfolio", addr)
	r, err := solvePortfolio(ctx, sp, exec, addr, opts)
	endSolve(ctx, sp, r, err)
	return r, err
}

// solvePortfolio is the staged strategy behind SolvePortfolio; sp is the
// enclosing solve span, into which each stage transition is emitted.
func solvePortfolio(ctx context.Context, sp obs.Span, exec *memory.Execution, addr memory.Addr, opts *Options) (*Result, error) {
	tr := obs.TracerFrom(ctx)
	inst := project(exec, addr)
	if inst.nops < portfolioMinOps {
		tr.Stage(sp, "direct")
		r, err := solveAutoInstance(ctx, inst, opts)
		if err != nil {
			if be, ok := solver.AsBudgetError(err); ok {
				return nil, withAddr(be, addr)
			}
			return nil, err
		}
		return r, nil
	}

	if e := solver.Interrupted(ctx); e != nil {
		return nil, withAddr(e, addr)
	}

	// Opening stage: the polynomial frontline. On structured instances it
	// decides in one linear pass, making every later stage free; when it
	// is inconclusive the staged race below proceeds as before. A
	// frontline deadline also falls through — the race applies its own
	// budget and reports exhaustion uniformly.
	if opts.FastPath() {
		tr.Stage(sp, "fastpath")
		out, fe := fastPathExec(ctx, exec, addr, opts)
		if fe != nil && fe.Reason == solver.Canceled {
			return nil, fe
		}
		if fe == nil && out.verdict != fastInconclusive {
			return out.result, nil
		}
	}

	tr.Stage(sp, "specialist")
	if inst.maxWritesPerValue() <= 1 {
		if r, ok := readMapInstance(inst); ok {
			return r, nil
		}
	}
	if inst.maxOpsPerProcess() <= 1 {
		if inst.allRMW() {
			return eulerInstance(inst), nil
		}
		if r, ok := singleOpInstance(inst); ok {
			return r, nil
		}
	}

	// Escalation probe: run the standard search under a tight state cap.
	// Easy instances decide here and pay nothing over SolveAuto. The cap
	// never loosens a caller budget, and a trip of the caller's own
	// budget (or deadline, or cancellation) propagates instead of
	// escalating. When the probe blows its cap, its refuted-state memo
	// is captured through the checkpoint sink and handed to the racers:
	// a memoized state is a fact of the instance (no coherent completion
	// exists from it), so both race configurations can prune everything
	// the probe already disproved instead of re-earning it.
	var probeMemo []string
	probeCap := portfolioProbeFactor * inst.nops
	callerLimit := opts.Limit()
	if callerLimit == 0 || callerLimit > probeCap {
		tr.Stage(sp, "probe")
		probe := opts.Clone()
		probe.MaxStates = probeCap
		if probe.CheckpointSink == nil {
			// CheckpointEvery past the cap suppresses periodic snapshots;
			// only the at-abort snapshot fires, exactly once.
			probe.CheckpointSink = func(snap solver.SearchSnapshot) { probeMemo = snap.Memo }
			probe.CheckpointEvery = probeCap + 1
		}
		r, err := searchInstance(ctx, inst, probe)
		if err == nil {
			return r, nil
		}
		be, ok := solver.AsBudgetError(err)
		if !ok {
			return nil, err
		}
		if be.Reason != solver.ExceededStates {
			return nil, withAddr(be, addr)
		}
		// Probe cap exhausted: the instance is genuinely hard — race.
	}
	tr.Stage(sp, "race")

	var cands []func(context.Context) (*Result, error)
	// The test hook is captured once here: a losing candidate can outlive
	// SolvePortfolio briefly, so reading the global from the candidate
	// goroutine would race with a test resetting it.
	hook := testHookRaceCandidate
	// The projection is shared read-only across racers; every searcher
	// keeps its own position vector and memo table.
	search := func(o *Options) func(context.Context) (*Result, error) {
		idx := len(cands)
		return func(rctx context.Context) (*Result, error) {
			if hook != nil {
				hook(idx)
			}
			r, e := searchInstance(rctx, inst, o)
			if e != nil {
				return nil, e
			}
			return r, nil
		}
	}
	standard, flipped := raceOptions(opts, probeMemo)
	cands = append(cands, search(standard))
	cands = append(cands, search(flipped))

	r, err := solver.Race(ctx, solver.Shared(), cands)
	if err != nil {
		if be, ok := solver.AsBudgetError(err); ok {
			return nil, withAddr(be, addr)
		}
		return nil, err
	}
	r.Algorithm = "portfolio:" + r.Algorithm
	return r, nil
}

// raceOptions derives the two race configurations from the caller's
// options: the standard search and one with the write-guidance ordering
// flipped, both seeded with the probe's refuted-state memo (nil when the
// probe was skipped or a caller checkpoint sink claimed the snapshots).
// Seeding is sound for both racers: memo entries state that no coherent
// completion exists from a state — a property of the instance, not of
// the candidate ordering the racer uses.
func raceOptions(opts *Options, probeMemo []string) (standard, flipped *Options) {
	standard = opts.Clone()
	flipped = opts.Clone()
	flipped.DisableWriteGuidance = !flipped.DisableWriteGuidance
	if probeMemo != nil {
		// Do not clobber a caller-supplied resume seed with an absent one.
		standard.ResumeMemo = probeMemo
		flipped.ResumeMemo = probeMemo
	}
	return standard, flipped
}
