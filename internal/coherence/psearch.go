package coherence

import (
	"context"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"memverify/internal/memory"
	"memverify/internal/obs"
	"memverify/internal/solver"
)

// Parallel exact search (Options.ParallelSearch): one hard instance,
// many workers. The paper's per-address decomposition parallelizes
// across addresses, but a single hard address still forces one
// exponential search — this file splits that search itself.
//
// Shape: the coordinator expands the DFS frontier breadth-first to a
// shallow depth, turning the root of the search tree into independent
// subtree tasks (each a concrete state plus the schedule prefix that
// reaches it). Tasks are distributed round-robin across per-worker
// deques; each worker pops its own deque LIFO (deepest first, warm
// caches) and steals from the head of a victim's deque when its own
// runs dry (oldest first — the shallowest, and so statistically
// largest, stolen subtree). A worker grinding a large subtree while
// others starve donates the un-iterated sibling candidates of its
// current frame as fresh tasks, so a single monster subtree keeps
// splitting until everyone is busy.
//
// What is shared, and why it stays sound:
//
//   - The memo table (cpackedSet, cmemo.go): a subtree refuted by any
//     worker prunes all workers. The claim-skip protocol is sound
//     because "incoherent" is declared only when every task has
//     completed; see cmemo.go.
//   - The budget (solver.SharedBudget): every worker charges one atomic
//     state counter, so MaxStates and the reported Stats.States are
//     exact — the merged per-worker stats equal the shared counter.
//   - First verdict wins: a worker that completes a schedule records it
//     and cancels the siblings through the shared context; they notice
//     at their next amortized budget poll. A certificate found by any
//     worker is valid regardless of what the others were doing, and a
//     budget trip racing a verdict resolves in the verdict's favor —
//     also sound, the certificate stands on its own.
//
// Panic isolation: each worker recovers its own panics into a
// *solver.ErrWorkerPanic; the coordinator re-raises the first one after
// the team drains, so a parallel search panics exactly where the
// sequential one would, and the portfolio/race guards above it keep
// their existing behavior.
//
// Checkpointing is sequential-only by design: a snapshot of a
// mid-flight multi-worker memo is not resumable state (claims are not
// refutations). searchInstance therefore falls back to the sequential
// path whenever a CheckpointSink is configured, and likewise when the
// instance overflows the packed layout (the string memo cannot be
// shared) or memoization is disabled.

const (
	// psearchMinOps: instances below this size stay sequential — the
	// team setup costs more than the whole solve.
	psearchMinOps = 4
	// psearchFanout is the initial frontier-split target per worker.
	// Oversplitting ~8× smooths load imbalance between subtrees of very
	// different sizes without re-exploring much shallow state.
	psearchFanout = 8
	// psearchExpandFactor bounds the coordinator's breadth-first
	// expansion at this multiple of the task target, so a near-chain
	// prefix (every state one candidate) cannot make the coordinator
	// solve the instance alone.
	psearchExpandFactor = 64
	// psearchDonateMinOps: a worker only donates sibling subtrees when
	// at least this many operations remain unscheduled — splitting the
	// last few levels creates more task churn than work.
	psearchDonateMinOps = 8
)

// pTask is one independent subtree: a concrete search state and the
// schedule prefix that reaches it (projection refs, needed so the
// winning worker's certificate is complete).
type pTask struct {
	pos    []int
	cur    memory.Value
	bound  bool
	prefix []memory.Ref
}

// pWin carries the first complete coherent schedule found.
type pWin struct {
	schedule []memory.Ref
}

// pShared is the state shared by the coordinator and workers of one
// parallel search.
type pShared struct {
	inst   *instance
	opts   *Options
	layout *packedLayout
	memo   *cpackedSet
	budget *solver.SharedBudget
	cancel context.CancelFunc

	// mu guards the deques and the outstanding-task count; cond wakes
	// starving workers on donations and on the final completion.
	// Work transfers happen at task granularity (each task is a whole
	// subtree search), so this lock is cold.
	mu          sync.Mutex
	cond        *sync.Cond
	deques      [][]pTask
	outstanding int
	stop        bool

	winner      atomic.Pointer[pWin]
	panicked    atomic.Pointer[solver.ErrWorkerPanic]
	idle        atomic.Int64 // workers currently hunting for work (donation hint)
	workersUsed atomic.Int64 // workers that explored at least one task
}

// submit appends tasks to worker w's deque and wakes starving workers.
func (ps *pShared) submit(w int, ts []pTask) {
	ps.mu.Lock()
	ps.outstanding += len(ts)
	ps.deques[w] = append(ps.deques[w], ts...)
	ps.cond.Broadcast()
	ps.mu.Unlock()
}

// next returns the next task for worker w: its own deque's tail, then a
// steal from the head of another worker's deque, then a wait for
// donations. ok=false means the search is over (verdict, abort, or all
// tasks drained).
func (ps *pShared) next(w int) (pTask, bool) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	for {
		if ps.stop {
			return pTask{}, false
		}
		if d := ps.deques[w]; len(d) > 0 {
			t := d[len(d)-1]
			ps.deques[w] = d[:len(d)-1]
			return t, true
		}
		for i := 1; i < len(ps.deques); i++ {
			v := (w + i) % len(ps.deques)
			if d := ps.deques[v]; len(d) > 0 {
				t := d[0]
				ps.deques[v] = d[1:]
				return t, true
			}
		}
		if ps.outstanding == 0 {
			return pTask{}, false
		}
		ps.idle.Add(1)
		ps.cond.Wait()
		ps.idle.Add(-1)
	}
}

// finish marks one task complete; the last completion wakes everyone so
// the team can agree the search is exhausted.
func (ps *pShared) finish() {
	ps.mu.Lock()
	ps.outstanding--
	if ps.outstanding == 0 {
		ps.cond.Broadcast()
	}
	ps.mu.Unlock()
}

// halt ends the search (first verdict, budget trip, or worker panic):
// cancels the shared context so grinding workers notice at their next
// budget poll, and wakes every waiter. Idempotent.
func (ps *pShared) halt() {
	ps.cancel()
	ps.mu.Lock()
	ps.stop = true
	ps.cond.Broadcast()
	ps.mu.Unlock()
}

// drained reports whether every task completed (the precondition for an
// incoherent verdict).
func (ps *pShared) drained() bool {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return ps.outstanding == 0
}

// pworker is one search worker: a full searcher (its own position
// vector, schedule, candidate buffers, stats) plus the shared state.
// The embedded searcher's budget/packed/memo fields stay nil — the
// worker charges the shared budget and consults the shared memo.
type pworker struct {
	searcher
	ps *pShared
	w  int
}

// loadTask points the worker's searcher at a task's state.
func (pw *pworker) loadTask(t pTask) {
	copy(pw.pos, t.pos)
	pw.cur, pw.bound = t.cur, t.bound
	pw.schedule = append(pw.schedule[:0], t.prefix...)
	pw.candBuf = pw.candBuf[:0]
}

// donate packages the candidates candBuf[from:end) of the current frame
// as tasks on the worker's own deque (thieves steal from the other
// end). Called only when some worker is starving.
func (pw *pworker) donate(from, end int) {
	s := &pw.searcher
	ts := make([]pTask, 0, end-from)
	for i := from; i < end; i++ {
		h := s.candBuf[i]
		prevCur, prevBound := s.apply(h)
		ts = append(ts, pTask{
			pos:    append([]int(nil), s.pos...),
			cur:    s.cur,
			bound:  s.bound,
			prefix: append([]memory.Ref(nil), s.schedule...),
		})
		s.undo(h, prevCur, prevBound)
	}
	pw.ps.submit(pw.w, ts)
}

// pdfs is the worker-side dfs: identical exploration order and
// accounting to (*searcher).dfs, with the memo claim-skip protocol,
// the shared atomic budget, and sibling donation in place of the
// sequential memo/budget/checkpoint hooks.
func (pw *pworker) pdfs() bool {
	s := &pw.searcher
	eager := s.scheduleEagerReads()
	if d := len(s.schedule); d > s.stats.PeakDepth {
		s.stats.PeakDepth = d
	}
	if s.done() {
		if s.finalOK() {
			return true
		}
		s.undoEagerReads(eager)
		return false
	}

	pkey := s.layout.pack(s.pos, s.cur, s.bound)
	if st := pw.ps.memo.claim(pkey); st != claimed {
		// Failed: refuted by some worker. Busy: being explored by some
		// worker whose task must complete before an incoherent verdict
		// can be declared — either way this subtree needs no second
		// visit.
		s.stats.MemoHits++
		s.undoEagerReads(eager)
		return false
	}
	s.stats.MemoMisses++

	s.stats.States++
	s.stats.RecordDepth(len(s.schedule))
	if e := pw.ps.budget.Charge(s.stats.States); e != nil {
		s.abort = e
		s.undoEagerReads(eager)
		return false
	}
	if s.stats.States&(obsFlushInterval-1) == 0 && s.obsOn {
		s.pollObs()
	}

	base, end := s.appendCandidates()
	s.stats.Branches += end - base
	donated := false
	if end-base >= 2 && pw.ps.idle.Load() > 0 &&
		pw.inst.nops-len(s.schedule) >= psearchDonateMinOps {
		pw.donate(base+1, end)
		donated = true
		end = base + 1
	}
	for i := base; i < end; i++ {
		h := s.candBuf[i]
		prevCur, prevBound := s.apply(h)
		if pw.pdfs() {
			return true
		}
		s.undo(h, prevCur, prevBound)
		if s.abort != nil {
			s.candBuf = s.candBuf[:base]
			s.undoEagerReads(eager)
			return false
		}
	}
	s.candBuf = s.candBuf[:base]

	if !donated {
		// Fully explored with no coherent completion: resolve the claim.
		// A donated frame's children are owned by other tasks, so its
		// refutation is unknown here; leaving the claim unresolved loses
		// one memo entry, never soundness.
		pw.ps.memo.markFailed(pkey)
	}
	s.undoEagerReads(eager)
	return false
}

// run is worker w's main loop: drain tasks until a verdict, an abort,
// or exhaustion. Stats accumulate across tasks into statsOut (read by
// the coordinator only after the WaitGroup barrier).
func (ps *pShared) run(ctx context.Context, w int, statsOut *solver.Stats) {
	defer func() {
		if r := recover(); r != nil {
			ps.panicked.CompareAndSwap(nil, &solver.ErrWorkerPanic{
				Label: "psearch-worker",
				Value: r,
				Stack: debug.Stack(),
			})
			ps.halt()
		}
	}()
	scratch := scratchPool.Get().(*searchScratch)
	pw := &pworker{ps: ps, w: w}
	pw.searcher = searcher{
		inst:     ps.inst,
		opts:     ps.opts,
		layout:   ps.layout,
		schedule: scratch.schedule[:0],
		candBuf:  scratch.candBuf[:0],
		needed:   scratch.needed[:0],
		met:      obs.MetricsFrom(ctx),
	}
	pw.obsOn = pw.met != nil
	if cap(scratch.pos) >= len(ps.inst.hist) {
		pw.pos = scratch.pos[:len(ps.inst.hist)]
	} else {
		pw.pos = make([]int, len(ps.inst.hist))
	}
	defer func() {
		if pw.obsOn {
			pw.pollObs()
		}
		*statsOut = pw.stats
		scratch.pos = pw.pos
		scratch.schedule = pw.schedule[:0]
		scratch.candBuf = pw.candBuf[:0]
		scratch.needed = pw.needed[:0]
		scratchPool.Put(scratch)
	}()

	first := true
	for {
		t, ok := ps.next(w)
		if !ok {
			return
		}
		if first {
			ps.workersUsed.Add(1)
			first = false
		}
		pw.loadTask(t)
		if pw.pdfs() {
			win := &pWin{schedule: append([]memory.Ref(nil), pw.schedule...)}
			ps.winner.CompareAndSwap(nil, win)
			ps.halt()
			return
		}
		ps.finish()
		if pw.abort != nil {
			ps.halt()
			return
		}
	}
}

// expandFrontier grows the search frontier breadth-first until it holds
// about `target` independent subtree tasks. It follows dfs semantics
// exactly (eager reads, memo claims, budget charges), so states visited
// here are counted once and never re-expanded by workers. Outcomes:
// a complete schedule found during expansion (win), a budget abort, or
// the task list (possibly empty — the whole tree was explored, i.e.
// incoherent).
func expandFrontier(ps *pShared, target int, stats *solver.Stats) (tasks []pTask, win []memory.Ref, abort *solver.ErrBudgetExceeded) {
	scratch := scratchPool.Get().(*searchScratch)
	es := &searcher{
		inst:     ps.inst,
		opts:     ps.opts,
		layout:   ps.layout,
		schedule: scratch.schedule[:0],
		candBuf:  scratch.candBuf[:0],
		needed:   scratch.needed[:0],
	}
	if cap(scratch.pos) >= len(ps.inst.hist) {
		es.pos = scratch.pos[:len(ps.inst.hist)]
	} else {
		es.pos = make([]int, len(ps.inst.hist))
	}
	defer func() {
		scratch.pos = es.pos
		scratch.schedule = es.schedule[:0]
		scratch.candBuf = es.candBuf[:0]
		scratch.needed = es.needed[:0]
		scratchPool.Put(scratch)
	}()

	root := pTask{pos: make([]int, len(ps.inst.hist))}
	if ps.inst.init != nil {
		root.cur, root.bound = *ps.inst.init, true
	}
	queue := []pTask{root}
	for pops := 0; len(queue) > 0 && len(queue) < target && pops < psearchExpandFactor*target; pops++ {
		t := queue[0]
		queue = queue[1:]
		copy(es.pos, t.pos)
		es.cur, es.bound = t.cur, t.bound
		es.schedule = append(es.schedule[:0], t.prefix...)

		es.scheduleEagerReads()
		if d := len(es.schedule); d > es.stats.PeakDepth {
			es.stats.PeakDepth = d
		}
		if es.done() {
			if es.finalOK() {
				win = append([]memory.Ref(nil), es.schedule...)
				break
			}
			continue
		}
		pkey := ps.layout.pack(es.pos, es.cur, es.bound)
		if st := ps.memo.claim(pkey); st != claimed {
			// Duplicate frontier state (two parents enqueued it) or a
			// resume-seeded refutation: prune.
			es.stats.MemoHits++
			continue
		}
		es.stats.MemoMisses++
		es.stats.States++
		es.stats.RecordDepth(len(es.schedule))
		if abort = ps.budget.Charge(es.stats.States); abort != nil {
			break
		}
		base, end := es.appendCandidates()
		es.stats.Branches += end - base
		if end == base {
			// Dead end: enabled nothing, scheduled nothing — a genuine
			// refutation, safe to memoize.
			ps.memo.markFailed(pkey)
			continue
		}
		for i := base; i < end; i++ {
			h := es.candBuf[i]
			prevCur, prevBound := es.apply(h)
			queue = append(queue, pTask{
				pos:    append([]int(nil), es.pos...),
				cur:    es.cur,
				bound:  es.bound,
				prefix: append([]memory.Ref(nil), es.schedule...),
			})
			es.undo(h, prevCur, prevBound)
		}
		es.candBuf = es.candBuf[:base]
		// The expanded state stays claimed: its exploration is delegated
		// to the enqueued children, each tracked as an outstanding task,
		// so other paths reaching it skip it without loss.
	}
	*stats = es.stats
	return queue, win, abort
}

// psearchMemoPool recycles the sharded concurrent memo across parallel
// solves (the tables are the dominant allocation).
var psearchMemoPool = sync.Pool{New: func() any { return new(cpackedSet) }}

// searchInstanceParallel is the parallel counterpart of searchInstance:
// same contract, with the search fanned out across `workers` workers.
// Callers reach it through Options.ParallelSearch; searchInstance
// handles the gating and fallback.
func searchInstanceParallel(ctx context.Context, inst *instance, opts *Options, layout *packedLayout, workers int) (*Result, *solver.ErrBudgetExceeded) {
	start := time.Now()
	sb := solver.StartShared(ctx, opts)
	defer sb.Stop()
	wctx, cancel := context.WithCancel(sb.Context())
	defer cancel()

	memo := psearchMemoPool.Get().(*cpackedSet)
	memo.reset()
	defer psearchMemoPool.Put(memo)

	ps := &pShared{
		inst:   inst,
		opts:   opts,
		layout: layout,
		memo:   memo,
		budget: sb,
		cancel: cancel,
		deques: make([][]pTask, workers),
	}
	ps.cond = sync.NewCond(&ps.mu)
	for _, k := range opts.ResumeMemoSeed() {
		if pk, ok := layout.parseStringKey(k); ok {
			memo.markFailed(pk)
		}
	}

	tr := obs.TracerFrom(ctx)
	var sp obs.Span
	if tr != nil {
		sp, _ = tr.BeginAddr(ctx, "parallel-search", int64(inst.addr))
	}

	var expandStats solver.Stats
	tasks, win, abort := expandFrontier(ps, workers*psearchFanout, &expandStats)
	stats := expandStats

	finish := func(res *Result, err *solver.ErrBudgetExceeded) (*Result, *solver.ErrBudgetExceeded) {
		stats.Duration = time.Since(start)
		if met := obs.MetricsFrom(ctx); met != nil {
			// Workers flush their own deltas; this covers the
			// coordinator's expansion phase.
			met.Flush(int64(expandStats.States), int64(expandStats.MemoHits),
				int64(expandStats.MemoMisses), int64(expandStats.EagerReads),
				int64(expandStats.Branches), expandStats.PeakDepth)
		}
		switch {
		case err != nil:
			err.Stats = stats
			sp.End("budget: "+err.Reason.String(), int64(stats.States))
			return nil, err
		case res.Coherent:
			res.Stats = stats
			sp.End("coherent", int64(stats.States))
		default:
			res.Stats = stats
			sp.End("incoherent", int64(stats.States))
		}
		return res, nil
	}

	if abort != nil {
		cp := *abort
		return finish(nil, &cp)
	}
	if win != nil {
		return finish(&Result{
			Coherent:  true,
			Decided:   true,
			Schedule:  inst.translate(win),
			Algorithm: "parallel-search",
		}, nil)
	}
	if len(tasks) == 0 {
		// The breadth-first expansion exhausted the whole tree.
		return finish(&Result{Coherent: false, Decided: true, Algorithm: "parallel-search"}, nil)
	}

	for i, t := range tasks {
		w := i % workers
		ps.deques[w] = append(ps.deques[w], t)
	}
	ps.outstanding = len(tasks)

	// A dedicated pool sized to the team: every worker gets a slot
	// immediately (no interference with the shared portfolio pool), and
	// the pool's guard/tracing brackets each worker.
	pool := solver.NewPool(workers)
	workerStats := make([]solver.Stats, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		pool.Go(wctx,
			func() { defer wg.Done(); ps.run(wctx, w, &workerStats[w]) },
			func() { wg.Done() })
	}
	wg.Wait()

	for w := range workerStats {
		stats.Merge(workerStats[w])
	}
	stats.SearchWorkers = int(ps.workersUsed.Load())

	if wp := ps.panicked.Load(); wp != nil && ps.winner.Load() == nil {
		// Surface the panic exactly where a sequential search would
		// have: on the coordinator, for the caller's guards to catch.
		panic(wp)
	}
	if w := ps.winner.Load(); w != nil {
		return finish(&Result{
			Coherent:  true,
			Decided:   true,
			Schedule:  inst.translate(w.schedule),
			Algorithm: "parallel-search",
		}, nil)
	}
	if be := ps.budget.Err(); be != nil {
		cp := *be
		return finish(nil, &cp)
	}
	if !ps.drained() {
		// Workers stopped without verdict, budget error, or panic —
		// the parent context was cancelled before the team could run.
		if e := solver.Interrupted(ctx); e != nil {
			cp := *e
			return finish(nil, &cp)
		}
		cp := solver.ErrBudgetExceeded{Reason: solver.Canceled, Cause: context.Canceled}
		return finish(nil, &cp)
	}
	return finish(&Result{Coherent: false, Decided: true, Algorithm: "parallel-search"}, nil)
}
