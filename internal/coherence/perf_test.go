package coherence

import (
	"context"
	"math/rand"
	"testing"

	"memverify/internal/memory"
	"memverify/internal/solver"
)

// incoherentSearchTrace builds a deterministic instance that forces the
// general search to exhaust its reachable state space: a coherent random
// trace with one read corrupted to a phantom value, so no schedule
// exists and every memoizable state is visited exactly once.
func incoherentSearchTrace(seed int64, nproc, opsPerProc int) *memory.Execution {
	rng := rand.New(rand.NewSource(seed))
	exec, _ := randomCoherentTrace(rng, nproc, opsPerProc, 3)
	for p, h := range exec.Histories {
		for i := len(h) - 1; i >= 0; i-- {
			if h[i].Kind == memory.Read {
				exec.Histories[p][i] = memory.R(0, 999) // phantom: never written
				return exec
			}
		}
	}
	panic("trace has no read to corrupt")
}

// TestPackedSearchZeroAllocPerState is the allocation guard for the
// packed hot path: a solve visiting thousands of states must cost only
// the fixed per-solve allocations (searcher, budget, layout, result) —
// zero allocations per state. A regression that reintroduces a
// per-state allocation (key strings, candidate slices, undo closures)
// fails this by two orders of magnitude.
func TestPackedSearchZeroAllocPerState(t *testing.T) {
	ctx := context.Background()
	exec := incoherentSearchTrace(45, 3, 35)
	res, err := Solve(ctx, exec, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Coherent {
		t.Fatal("corrupted trace must be incoherent")
	}
	states := res.Stats.States
	if states < 3000 {
		t.Fatalf("only %d states: instance too easy to separate per-state from per-solve allocations", states)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := Solve(ctx, exec, 0, nil); err != nil {
			t.Fatal(err)
		}
	})
	// Fixed per-solve overhead is a few dozen allocations (layout, value
	// table, budget, result, observability lookups); the bound is far
	// below one per state but leaves room for pool misses after a GC.
	const perSolveBudget = 200
	if allocs > perSolveBudget {
		t.Errorf("%.0f allocs for a %d-state solve (%.3f/state); packed path must not allocate per state",
			allocs, states, allocs/float64(states))
	}
}

// mutateState cycles the searcher through a deterministic sequence of
// valid states, shared by both BenchmarkMemoKey variants.
func mutateState(s *searcher, l *packedLayout, i int) {
	for h := range s.pos {
		s.pos[h] = (i >> (3 * h)) & 7 % (len(s.inst.hist[h]) + 1)
	}
	if len(l.vals) > 0 {
		s.cur, s.bound = l.vals[i%len(l.vals)], i%2 == 0
	}
}

// BenchmarkMemoKey prices one memo probe+insert on each representation:
// the packed path (uint64 pack + open-addressing set) against the
// fallback (varint string key + Go map). The packed path must report
// 0 allocs/op — the string path pays a key allocation per state.
func BenchmarkMemoKey(b *testing.B) {
	rng := rand.New(rand.NewSource(46))
	exec, _ := randomCoherentTrace(rng, 4, 16, 3)
	inst := project(exec, 0)
	l := layoutFor(inst)
	if l == nil {
		b.Fatal("bench instance must fit the packed layout")
	}
	b.Run("packed", func(b *testing.B) {
		b.ReportAllocs()
		s := &searcher{inst: inst, pos: make([]int, len(inst.hist))}
		var ps packedSet
		ps.reset()
		for i := 0; i < b.N; i++ {
			mutateState(s, l, i)
			k := l.pack(s.pos, s.cur, s.bound)
			if !ps.contains(k) {
				ps.add(k)
			}
		}
	})
	b.Run("string", func(b *testing.B) {
		b.ReportAllocs()
		s := &searcher{inst: inst, pos: make([]int, len(inst.hist))}
		memo := make(map[string]struct{})
		for i := 0; i < b.N; i++ {
			mutateState(s, l, i)
			k := s.key()
			if _, seen := memo[k]; !seen {
				memo[k] = struct{}{}
			}
		}
	})
}

// BenchmarkSearchAllocs prices a whole general-search solve on each memo
// representation; run with -benchmem to see the allocation gap the
// packed path opens (the ns/op gap tracks it).
func BenchmarkSearchAllocs(b *testing.B) {
	exec := incoherentSearchTrace(47, 3, 14)
	for _, v := range []struct {
		name string
		opts *Options
	}{
		{"packed", nil},
		{"string", solver.New(solver.WithoutPackedMemo())},
	} {
		b.Run(v.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Solve(context.Background(), exec, 0, v.opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
