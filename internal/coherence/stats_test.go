package coherence

import (
	"context"
	"math/rand"
	"testing"

	"memverify/internal/memory"
	"memverify/internal/obs"
	"memverify/internal/solver"
)

// statsEqual compares two Stats ignoring wall-clock Duration (the only
// field that legitimately differs between identical solves).
func statsEqual(a, b Stats) bool {
	a.Duration, b.Duration = 0, 0
	return a == b
}

// generalSearchExec builds an execution where every address needs the
// general memoized search: duplicated write values rule out the read-map
// specialist and multi-op histories rule out the single-op ones.
func generalSearchExec(naddr int) *memory.Execution {
	exec := &memory.Execution{Histories: make([]memory.History, 2)}
	for a := 0; a < naddr; a++ {
		addr := memory.Addr(a)
		exec.SetInitial(addr, 0)
		exec.Histories[0] = append(exec.Histories[0],
			memory.W(addr, 1), memory.R(addr, 1), memory.W(addr, 1))
		exec.Histories[1] = append(exec.Histories[1],
			memory.R(addr, 1), memory.W(addr, 1), memory.R(addr, 1))
	}
	return exec
}

// TestParallelStatsMatchSerial checks that fanning the per-address
// solves across workers leaves each address's Stats exactly as the
// serial run produces them — the solves are independent, so no state,
// memo lookup, or eager read may appear in two addresses' stats.
func TestParallelStatsMatchSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 20; i++ {
		exec := multiAddressInstance(rng, 2+rng.Intn(4))
		serial, err := VerifyExecution(context.Background(), exec, nil)
		if err != nil {
			t.Fatal(err)
		}
		par, err := VerifyExecutionParallel(context.Background(), exec, nil, 4)
		if err != nil {
			t.Fatal(err)
		}
		var sumSerial, sumPar Stats
		for a, want := range serial {
			got := par[a]
			if got == nil {
				t.Fatalf("instance %d: no parallel result for address %d", i, a)
			}
			if !statsEqual(got.Stats, want.Stats) {
				t.Fatalf("instance %d addr %d: parallel stats %+v != serial %+v",
					i, a, got.Stats, want.Stats)
			}
			sumSerial.Merge(want.Stats)
			sumPar.Merge(got.Stats)
		}
		if !statsEqual(sumPar, sumSerial) {
			t.Fatalf("instance %d: merged totals differ: %+v != %+v", i, sumPar, sumSerial)
		}
	}
}

// TestParallelMetricsAggregation attaches live Metrics to a parallel
// verification and checks the shared counters reconcile exactly with
// the per-address solver.Stats: total states equal the merged sum (no
// delta flushed twice, none lost) and the solve counter matches the
// address count.
func TestParallelMetricsAggregation(t *testing.T) {
	exec := generalSearchExec(3)
	m := obs.NewMetrics()
	ctx := obs.With(context.Background(), &obs.Observer{Metrics: m})
	par, err := VerifyExecutionParallel(ctx, exec, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	var sum Stats
	for _, r := range par {
		if r.Algorithm != "general-search" {
			t.Fatalf("algorithm = %q, want general-search (the test's premise)", r.Algorithm)
		}
		sum.Merge(r.Stats)
	}
	s := m.Snapshot()
	if s.States != int64(sum.States) {
		t.Errorf("metrics states = %d, merged solver stats say %d", s.States, sum.States)
	}
	if s.MemoHits != int64(sum.MemoHits) || s.MemoMisses != int64(sum.MemoMisses) {
		t.Errorf("metrics memo = %d/%d, merged stats say %d/%d",
			s.MemoHits, s.MemoMisses, sum.MemoHits, sum.MemoMisses)
	}
	if s.EagerReads != int64(sum.EagerReads) {
		t.Errorf("metrics eager reads = %d, merged stats say %d", s.EagerReads, sum.EagerReads)
	}
	if s.Branches != int64(sum.Branches) {
		t.Errorf("metrics branches = %d, merged stats say %d", s.Branches, sum.Branches)
	}
	if int64(sum.PeakDepth) > s.PeakDepth {
		t.Errorf("metrics peak depth = %d below solver peak %d", s.PeakDepth, sum.PeakDepth)
	}
	if s.Solves != 3 || s.SolvesDone != 3 {
		t.Errorf("metrics solves = %d/%d, want 3/3 (one per address)", s.SolvesDone, s.Solves)
	}
}

// TestPortfolioStatsSingleCount checks the staged portfolio neither
// double counts nor double reports: the returned Stats are exactly the
// deciding stage's (the probe is the same search SolveAuto runs), and
// the whole staged solve bumps the live solve counter once per address
// even though several stages execute inside it.
func TestPortfolioStatsSingleCount(t *testing.T) {
	// 28 ops at one address: past portfolioMinOps, so the portfolio
	// stages (specialist check, probe) actually run.
	exec := &memory.Execution{Histories: make([]memory.History, 2)}
	exec.SetInitial(0, 0)
	for i := 0; i < 7; i++ {
		exec.Histories[0] = append(exec.Histories[0], memory.W(0, 5), memory.R(0, 5))
		exec.Histories[1] = append(exec.Histories[1], memory.R(0, 5), memory.W(0, 5))
	}

	auto, err := SolveAuto(context.Background(), exec, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := obs.NewMetrics()
	ctx := obs.With(context.Background(), &obs.Observer{Metrics: m})
	// The fastpath stage would decide this instance before the probe; the
	// test pins the probe's stats accounting, so ablate the frontline.
	port, err := SolvePortfolio(ctx, exec, 0, solver.New(solver.WithoutFastPath()))
	if err != nil {
		t.Fatal(err)
	}
	if port.Coherent != auto.Coherent {
		t.Fatalf("portfolio verdict %v != auto %v", port.Coherent, auto.Coherent)
	}
	// The probe decided, so the stats are one search's worth — identical
	// to SolveAuto's, not auto's plus a probe's.
	if !statsEqual(port.Stats, auto.Stats) {
		t.Errorf("portfolio stats %+v != single-search stats %+v", port.Stats, auto.Stats)
	}
	s := m.Snapshot()
	if s.Solves != 1 || s.SolvesDone != 1 {
		t.Errorf("metrics solves = %d/%d, want 1/1 for one staged solve", s.SolvesDone, s.Solves)
	}
	if s.States != int64(port.Stats.States) {
		t.Errorf("metrics states = %d, solver stats say %d", s.States, port.Stats.States)
	}
}
