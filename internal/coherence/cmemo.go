package coherence

import "sync"

// The parallel exact search (psearch.go) shares one failed-state memo
// across its workers, so a subtree refuted by one worker prunes every
// other worker's search. cpackedSet is the concurrent variant of
// packedSet: the same packed uint64 state keys, sharded across
// independently locked open-addressing tables (striped locking — the
// shard index comes from the top bits of the mixed key, so probe
// sequences never cross a lock boundary and each shard can grow under
// its own lock).
//
// Where the sequential set only knows "absent" and "failed", the
// concurrent set runs a three-state claim protocol per key:
//
//	empty   — nobody has visited the state;
//	claimed — some worker is exploring the state right now (slot holds
//	          key+1 with the claim bit set);
//	failed  — the state is fully explored and has no coherent
//	          completion (slot holds key+1, exactly the sequential
//	          encoding).
//
// A worker that finds a state claimed by another worker skips it
// instead of waiting (claim-skip). Soundness: the skipping worker
// treats the state as pruned, which is only consulted for the final
// "incoherent" verdict, and that verdict is declared only when every
// outstanding task has completed — at which point the claiming worker
// either marked the state failed (consistent with the skip) or found a
// certificate (in which case the verdict is coherent and the skip is
// irrelevant). A claim abandoned mid-exploration only happens when the
// whole search is aborting, and an abort never declares incoherent.
// Claims that are never resolved lose only pruning for other workers,
// never soundness — memo entries are an optimization, not an input to
// the verdict.
//
// The claim bit is bit 63, so keys must leave it free: the parallel
// search requires packedLayout.bitsUsed() < packedLayoutBits and falls
// back to the sequential search otherwise.

// cmemoShardBits selects the shard from the top bits of the mixed key;
// 64 shards keeps lock contention negligible for any realistic worker
// count while staying small enough to live in one allocation.
const (
	cmemoShardBits = 6
	cmemoShards    = 1 << cmemoShardBits
	cmemoClaimBit  = uint64(1) << 63
)

// cmemoMinSlots is each shard's initial table size; 64 shards × 64
// slots matches the sequential set's 4096-state capacity at 3/4 load.
const cmemoMinSlots = 64

// claimStatus is the outcome of cpackedSet.claim.
type claimStatus int

const (
	// claimed: the caller now owns the state and must either markFailed
	// it after refuting its subtree or abandon it (verdict found /
	// search aborting).
	claimed claimStatus = iota
	// claimBusy: another worker owns the state; skip it.
	claimBusy
	// claimFailed: the state is already refuted; prune.
	claimFailed
)

// cmemoShard is one independently locked open-addressing table. The pad
// keeps hot shards on distinct cache lines.
type cmemoShard struct {
	mu    sync.Mutex
	slots []uint64
	n     int
	_     [24]byte
}

// cpackedSet is the concurrent memo set. The zero value is not ready;
// call reset first.
type cpackedSet struct {
	shards [cmemoShards]cmemoShard
}

// reset prepares every shard for a fresh solve, retaining tables up to
// the same bound as the sequential set (scaled per shard).
func (cs *cpackedSet) reset() {
	const maxRetain = packedSetMaxRetainSlots / cmemoShards
	for i := range cs.shards {
		sh := &cs.shards[i]
		if sh.slots == nil || len(sh.slots) > maxRetain {
			sh.slots = make([]uint64, cmemoMinSlots)
		} else {
			clear(sh.slots)
		}
		sh.n = 0
	}
}

// shardOf picks the shard from the top bits of the mixed key; the low
// bits index within the shard, so the two never alias.
func (cs *cpackedSet) shardOf(mixed uint64) *cmemoShard {
	return &cs.shards[mixed>>(64-cmemoShardBits)]
}

// claim transitions k from empty to claimed and reports which state it
// found. Exactly one caller ever receives `claimed` for a key (until
// the set is reset): the transition happens under the shard lock.
func (cs *cpackedSet) claim(k uint64) claimStatus {
	mixed := mixKey(k)
	sh := cs.shardOf(mixed)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if 4*(sh.n+1) > 3*len(sh.slots) {
		sh.grow()
	}
	mask := uint64(len(sh.slots) - 1)
	for i := mixed & mask; ; i = (i + 1) & mask {
		switch sh.slots[i] {
		case 0:
			sh.slots[i] = (k + 1) | cmemoClaimBit
			sh.n++
			return claimed
		case (k + 1) | cmemoClaimBit:
			return claimBusy
		case k + 1:
			return claimFailed
		}
	}
}

// markFailed resolves the caller's claim on k: the state is fully
// explored and refuted. Inserts k as failed directly when no claim
// exists (the resume-seed path).
func (cs *cpackedSet) markFailed(k uint64) {
	mixed := mixKey(k)
	sh := cs.shardOf(mixed)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if 4*(sh.n+1) > 3*len(sh.slots) {
		sh.grow()
	}
	mask := uint64(len(sh.slots) - 1)
	for i := mixed & mask; ; i = (i + 1) & mask {
		switch sh.slots[i] {
		case 0:
			sh.slots[i] = k + 1
			sh.n++
			return
		case (k + 1) | cmemoClaimBit, k + 1:
			sh.slots[i] = k + 1
			return
		}
	}
}

// grow doubles the shard's table, preserving claim bits. Caller holds
// the shard lock.
func (sh *cmemoShard) grow() {
	old := sh.slots
	sh.slots = make([]uint64, 2*len(old))
	mask := uint64(len(sh.slots) - 1)
	for _, s := range old {
		if s == 0 {
			continue
		}
		k := (s &^ cmemoClaimBit) - 1
		for i := mixKey(k) & mask; ; i = (i + 1) & mask {
			if sh.slots[i] == 0 {
				sh.slots[i] = s
				break
			}
		}
	}
}

// size returns the number of keys present (claimed or failed) across
// all shards. Callers must not race it against claims they care about;
// it exists for stats and tests.
func (cs *cpackedSet) size() int {
	n := 0
	for i := range cs.shards {
		sh := &cs.shards[i]
		sh.mu.Lock()
		n += sh.n
		sh.mu.Unlock()
	}
	return n
}
