package trace

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"memverify/internal/memory"
	"memverify/internal/workload"
)

const sample = `# a small trace
init x 0
init y 0
final x 2
P0: W x 1
P0: R x 1
P1: RW x 1 2
P1: ACQ
P1: REL
P0: FENCE
order x P0[0] P1[0]
`

func TestReadSample(t *testing.T) {
	tr, err := Read(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Exec.NumProcesses(); got != 2 {
		t.Fatalf("processes = %d, want 2", got)
	}
	if got := tr.Exec.Histories[0]; !reflect.DeepEqual(got, memory.History{
		memory.W(0, 1), memory.R(0, 1), memory.Bar(),
	}) {
		t.Errorf("P0 = %v", got)
	}
	if got := tr.Exec.Histories[1]; !reflect.DeepEqual(got, memory.History{
		memory.RW(0, 1, 2), memory.Acq(), memory.Rel(),
	}) {
		t.Errorf("P1 = %v", got)
	}
	if tr.Exec.Initial[0] != 0 || tr.Exec.Final[0] != 2 {
		t.Error("init/final wrong")
	}
	wantOrder := []memory.Ref{{Proc: 0, Index: 0}, {Proc: 1, Index: 0}}
	if !reflect.DeepEqual(tr.WriteOrders[0], wantOrder) {
		t.Errorf("order = %v, want %v", tr.WriteOrders[0], wantOrder)
	}
	if tr.Name(0) != "x" || tr.Name(1) != "y" {
		t.Errorf("names = %q, %q", tr.Name(0), tr.Name(1))
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"garbage line",
		"P0: Q x 1",
		"Px: R x 1",
		"P0: R x",
		"P0: R x abc",
		"P0: RW x 1",
		"init x",
		"init x abc",
		"final x",
		"order",
		"order x nope",
		"order x P0[9]",
		"P0:",
	}
	for i, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("case %d (%q): error expected", i, in)
		}
	}
}

// TestReadErrorsNameTheLine: parse errors must carry the 1-based line
// number of the offending line, so a user can fix a long trace file
// without bisecting it.
func TestReadErrorsNameTheLine(t *testing.T) {
	cases := []struct {
		input string
		want  string
	}{
		{"P0: W x 1\ngarbage line\n", "line 2"},
		{"# comment\n\nP0: R x\n", "line 3"},
		{"init x 0\nP0: W x 1\ninit y oops\n", "line 3"},
		{"P0: W x 1\norder x P0[0] nope\n", "line 2"},
		{"P99999999: W x 1\n", "line 1"},
	}
	for _, c := range cases {
		_, err := Read(strings.NewReader(c.input))
		if err == nil {
			t.Errorf("%q: error expected", c.input)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%q: error %q does not name %q", c.input, err, c.want)
		}
	}
}

// TestReadCapsProcessorNumbers: a trace naming an absurd processor
// number is rejected up front instead of allocating a history slice
// with a billion entries.
func TestReadCapsProcessorNumbers(t *testing.T) {
	if _, err := Read(strings.NewReader("P999999999: W x 1\n")); err == nil ||
		!strings.Contains(err.Error(), "limit") {
		t.Errorf("huge processor number: err = %v, want limit rejection", err)
	}
	// The last in-range processor still parses.
	in := fmt.Sprintf("P%d: W x 1\n", maxProcs-1)
	if _, err := Read(strings.NewReader(in)); err != nil {
		t.Errorf("P%d rejected: %v", maxProcs-1, err)
	}
}

func TestReadSkipsGapsInProcessors(t *testing.T) {
	in := "P2: W x 1\n"
	tr, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Exec.NumProcesses(); got != 3 {
		t.Fatalf("processes = %d, want 3 (P0,P1 empty)", got)
	}
	if len(tr.Exec.Histories[0]) != 0 || len(tr.Exec.Histories[1]) != 0 {
		t.Error("empty processors not empty")
	}
}

func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 30; i++ {
		exec, orders := workload.GenerateCoherent(rng, workload.GenConfig{
			Processors: 3, OpsPerProc: 6, Addresses: 3, Values: 3, RMWFraction: 0.1, WriteFraction: 0.4,
		})
		tr := &Trace{Exec: exec, Names: map[memory.Addr]string{}, WriteOrders: orders}
		var buf bytes.Buffer
		if err := Write(&buf, tr); err != nil {
			t.Fatal(err)
		}
		back, err := Read(&buf)
		if err != nil {
			t.Fatalf("instance %d: %v", i, err)
		}
		// Address numbering may be permuted by first-appearance order;
		// compare via names.
		if back.Exec.NumOps() != exec.NumOps() {
			t.Fatalf("instance %d: ops %d != %d", i, back.Exec.NumOps(), exec.NumOps())
		}
		var buf2 bytes.Buffer
		if err := Write(&buf2, back); err != nil {
			t.Fatal(err)
		}
		// Idempotence: writing a parsed trace reproduces it exactly.
		var buf3 bytes.Buffer
		back2, err := Read(bytes.NewReader(buf2.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if err := Write(&buf3, back2); err != nil {
			t.Fatal(err)
		}
		if buf2.String() != buf3.String() {
			t.Fatalf("instance %d: write/read/write not idempotent\n%s\nvs\n%s", i, buf2.String(), buf3.String())
		}
	}
}

func TestWriteDefaultNames(t *testing.T) {
	exec := memory.NewExecution(memory.History{memory.W(5, 1)})
	tr := New(exec)
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "a5") {
		t.Errorf("default name missing: %s", buf.String())
	}
}
