// Package trace defines a line-oriented text format for executions, used
// by the command-line tools:
//
//	# comment
//	init x 0
//	final x 2
//	P0: W x 1
//	P0: R x 1
//	P1: RW x 1 2
//	P1: ACQ
//	P1: REL
//	P0: FENCE
//	order x P0[0] P1[0]
//
// Addresses are identifiers; the parser assigns them dense memory.Addr
// numbers in order of first appearance. An optional "order" line per
// address records the memory system's write order (the §5.2
// augmentation), listing references Pproc[index] into the parsed
// histories.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"memverify/internal/memory"
)

// Trace is a parsed execution plus the naming and augmentation metadata
// of the text format.
type Trace struct {
	Exec *memory.Execution
	// Names maps each address back to its identifier in the file.
	Names map[memory.Addr]string
	// WriteOrders holds the optional per-address write orders.
	WriteOrders map[memory.Addr][]memory.Ref
	// Arrival lists every operation in file order. When a trace is
	// produced by a system logging operations as they complete, file
	// order is arrival order, which the online monitor consumes.
	Arrival []memory.Ref
}

// Name returns the identifier of address a ("a<N>" if the trace was
// built programmatically without names).
func (t *Trace) Name(a memory.Addr) string {
	if n, ok := t.Names[a]; ok {
		return n
	}
	return fmt.Sprintf("a%d", a)
}

// New wraps an execution in a Trace with default address names.
func New(exec *memory.Execution) *Trace {
	return &Trace{Exec: exec, Names: map[memory.Addr]string{}}
}

// maxProcs caps the processor numbers a trace may name. Histories are
// allocated densely up to the highest processor seen, so an unchecked
// "P999999999:" line would make the parser allocate gigabytes for a
// few bytes of input.
const maxProcs = 1 << 16

// Read parses the text format. Malformed input of any shape — garbage
// bytes, truncated lines, out-of-range numbers — is reported as an
// error carrying the offending line number; Read never panics.
func Read(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	t := &Trace{
		Exec:        &memory.Execution{},
		Names:       make(map[memory.Addr]string),
		WriteOrders: make(map[memory.Addr][]memory.Ref),
	}
	addrOf := make(map[string]memory.Addr)
	intern := func(name string) memory.Addr {
		if a, ok := addrOf[name]; ok {
			return a
		}
		a := memory.Addr(len(addrOf))
		addrOf[name] = a
		t.Names[a] = name
		return a
	}
	parseVal := func(tok string) (memory.Value, error) {
		n, err := strconv.ParseInt(tok, 10, 64)
		return memory.Value(n), err
	}
	ensureProc := func(p int) {
		for len(t.Exec.Histories) <= p {
			t.Exec.Histories = append(t.Exec.Histories, nil)
		}
	}

	lineNum := 0
	for sc.Scan() {
		lineNum++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch {
		case fields[0] == "init" || fields[0] == "final":
			if len(fields) != 3 {
				return nil, fmt.Errorf("trace: line %d: want %q <addr> <value>", lineNum, fields[0])
			}
			v, err := parseVal(fields[2])
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: bad value %q", lineNum, fields[2])
			}
			a := intern(fields[1])
			if fields[0] == "init" {
				t.Exec.SetInitial(a, v)
			} else {
				t.Exec.SetFinal(a, v)
			}
		case fields[0] == "order":
			if len(fields) < 2 {
				return nil, fmt.Errorf("trace: line %d: want order <addr> <refs...>", lineNum)
			}
			a := intern(fields[1])
			for _, tok := range fields[2:] {
				ref, err := parseRef(tok)
				if err != nil {
					return nil, fmt.Errorf("trace: line %d: %v", lineNum, err)
				}
				t.WriteOrders[a] = append(t.WriteOrders[a], ref)
			}
		case strings.HasPrefix(fields[0], "P") && strings.HasSuffix(fields[0], ":"):
			procStr := strings.TrimSuffix(strings.TrimPrefix(fields[0], "P"), ":")
			p, err := strconv.Atoi(procStr)
			if err != nil || p < 0 {
				return nil, fmt.Errorf("trace: line %d: bad processor %q", lineNum, fields[0])
			}
			if p >= maxProcs {
				return nil, fmt.Errorf("trace: line %d: processor %q exceeds the %d-processor limit", lineNum, fields[0], maxProcs)
			}
			ensureProc(p)
			op, err := parseOp(fields[1:], intern, parseVal)
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: %v", lineNum, err)
			}
			t.Arrival = append(t.Arrival, memory.Ref{Proc: p, Index: len(t.Exec.Histories[p])})
			t.Exec.Histories[p] = append(t.Exec.Histories[p], op)
		default:
			return nil, fmt.Errorf("trace: line %d: unrecognized line %q", lineNum, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	if err := t.Exec.Validate(); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	// Validate write-order refs.
	for a, refs := range t.WriteOrders {
		for _, r := range refs {
			if r.Proc >= len(t.Exec.Histories) || r.Index >= len(t.Exec.Histories[r.Proc]) {
				return nil, fmt.Errorf("trace: order for %s references %s, which does not exist", t.Name(a), r)
			}
		}
	}
	return t, nil
}

func parseOp(fields []string, intern func(string) memory.Addr, parseVal func(string) (memory.Value, error)) (memory.Op, error) {
	if len(fields) == 0 {
		return memory.Op{}, fmt.Errorf("missing operation")
	}
	switch fields[0] {
	case "R", "W":
		if len(fields) != 3 {
			return memory.Op{}, fmt.Errorf("want %s <addr> <value>", fields[0])
		}
		v, err := parseVal(fields[2])
		if err != nil {
			return memory.Op{}, fmt.Errorf("bad value %q", fields[2])
		}
		a := intern(fields[1])
		if fields[0] == "R" {
			return memory.R(a, v), nil
		}
		return memory.W(a, v), nil
	case "RW":
		if len(fields) != 4 {
			return memory.Op{}, fmt.Errorf("want RW <addr> <read> <written>")
		}
		rv, err := parseVal(fields[2])
		if err != nil {
			return memory.Op{}, fmt.Errorf("bad value %q", fields[2])
		}
		wv, err := parseVal(fields[3])
		if err != nil {
			return memory.Op{}, fmt.Errorf("bad value %q", fields[3])
		}
		return memory.RW(intern(fields[1]), rv, wv), nil
	case "ACQ":
		return memory.Acq(), nil
	case "REL":
		return memory.Rel(), nil
	case "FENCE":
		return memory.Bar(), nil
	default:
		return memory.Op{}, fmt.Errorf("unknown operation %q", fields[0])
	}
}

// parseRef parses "P3[7]".
func parseRef(tok string) (memory.Ref, error) {
	if !strings.HasPrefix(tok, "P") || !strings.HasSuffix(tok, "]") {
		return memory.Ref{}, fmt.Errorf("bad reference %q", tok)
	}
	body := strings.TrimSuffix(strings.TrimPrefix(tok, "P"), "]")
	parts := strings.SplitN(body, "[", 2)
	if len(parts) != 2 {
		return memory.Ref{}, fmt.Errorf("bad reference %q", tok)
	}
	p, err1 := strconv.Atoi(parts[0])
	i, err2 := strconv.Atoi(parts[1])
	if err1 != nil || err2 != nil || p < 0 || i < 0 {
		return memory.Ref{}, fmt.Errorf("bad reference %q", tok)
	}
	return memory.Ref{Proc: p, Index: i}, nil
}

// Write emits the trace in the text format. Output is deterministic:
// init/final/order lines sorted by address, operations grouped by
// processor in program order.
func Write(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	name := t.Name

	var addrs []memory.Addr
	seen := map[memory.Addr]bool{}
	add := func(a memory.Addr) {
		if !seen[a] {
			seen[a] = true
			addrs = append(addrs, a)
		}
	}
	for a := range t.Exec.Initial {
		add(a)
	}
	for a := range t.Exec.Final {
		add(a)
	}
	for a := range t.WriteOrders {
		add(a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })

	for _, a := range addrs {
		if v, ok := t.Exec.Initial[a]; ok {
			fmt.Fprintf(bw, "init %s %d\n", name(a), v)
		}
	}
	for _, a := range addrs {
		if v, ok := t.Exec.Final[a]; ok {
			fmt.Fprintf(bw, "final %s %d\n", name(a), v)
		}
	}
	emit := func(p int, o memory.Op) {
		switch o.Kind {
		case memory.Read:
			fmt.Fprintf(bw, "P%d: R %s %d\n", p, name(o.Addr), o.Data)
		case memory.Write:
			fmt.Fprintf(bw, "P%d: W %s %d\n", p, name(o.Addr), o.Data)
		case memory.ReadModifyWrite:
			fmt.Fprintf(bw, "P%d: RW %s %d %d\n", p, name(o.Addr), o.Data, o.Store)
		case memory.Acquire:
			fmt.Fprintf(bw, "P%d: ACQ\n", p)
		case memory.Release:
			fmt.Fprintf(bw, "P%d: REL\n", p)
		case memory.Fence:
			fmt.Fprintf(bw, "P%d: FENCE\n", p)
		}
	}
	// With a complete arrival order, operation lines interleave in that
	// order (so parsing recovers it); otherwise ops group by processor.
	if len(t.Arrival) == t.Exec.NumOps() && len(t.Arrival) > 0 {
		for _, r := range t.Arrival {
			emit(r.Proc, t.Exec.Op(r))
		}
	} else {
		for p, h := range t.Exec.Histories {
			for _, o := range h {
				emit(p, o)
			}
		}
	}
	for _, a := range addrs {
		refs := t.WriteOrders[a]
		if len(refs) == 0 {
			continue
		}
		fmt.Fprintf(bw, "order %s", name(a))
		for _, r := range refs {
			fmt.Fprintf(bw, " P%d[%d]", r.Proc, r.Index)
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}
