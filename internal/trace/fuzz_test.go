package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead checks that the parser never panics and that every
// successfully parsed trace round-trips through Write/Read to a
// fixpoint.
func FuzzRead(f *testing.F) {
	f.Add(sample)
	f.Add("init x 0\nP0: W x 1\n")
	f.Add("P0: RW y -3 4\norder y P0[0]\n")
	f.Add("# only a comment\n")
	f.Add("P1: ACQ\nP1: FENCE\nP1: REL\n")
	// Malformed shapes the parser must reject without panicking:
	// truncated lines, garbage bytes, huge numbers, dangling refs.
	f.Add("init x\n")
	f.Add("P0: W x\n")
	f.Add("P0:\n")
	f.Add("\x00\xff garbage\n")
	f.Add("P999999999: W x 1\n")
	f.Add("P-1: W x 1\n")
	f.Add("init x 99999999999999999999999999\n")
	f.Add("order x P0[0] P1[7]\nP0: W x 1\n")
	f.Add("order x\n")
	f.Add("P0: Q x 1\n")
	f.Add("init x 0\ninit x 1\nfinal x 0\nfinal x 2\n")
	f.Add("P0: W x 1\nP0: W x 1\nP0: R x 1\nP0: R x 1\n")
	f.Fuzz(func(t *testing.T, input string) {
		tr, err := Read(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Write(&buf, tr); err != nil {
			t.Fatalf("write of parsed trace failed: %v", err)
		}
		tr2, err := Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-read of written trace failed: %v\n%s", err, buf.String())
		}
		var buf2 bytes.Buffer
		if err := Write(&buf2, tr2); err != nil {
			t.Fatal(err)
		}
		if buf.String() != buf2.String() {
			t.Fatalf("write/read/write not a fixpoint:\n%s\nvs\n%s", buf.String(), buf2.String())
		}
	})
}
