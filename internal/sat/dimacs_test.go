package sat

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

func TestReadDIMACSBasic(t *testing.T) {
	in := `c example
p cnf 3 2
1 -2 0
2 3 0
`
	f, err := ReadDIMACS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if f.NumVars != 3 || len(f.Clauses) != 2 {
		t.Fatalf("parsed %d vars %d clauses", f.NumVars, len(f.Clauses))
	}
	want := []Clause{{1, -2}, {2, 3}}
	if !reflect.DeepEqual(f.Clauses, want) {
		t.Errorf("clauses = %v, want %v", f.Clauses, want)
	}
}

func TestReadDIMACSMultilineClause(t *testing.T) {
	in := "p cnf 3 1\n1\n2\n3 0\n"
	f, err := ReadDIMACS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Clauses) != 1 || len(f.Clauses[0]) != 3 {
		t.Errorf("clauses = %v", f.Clauses)
	}
}

func TestReadDIMACSTrailingClauseWithoutZero(t *testing.T) {
	in := "p cnf 2 1\n1 2"
	f, err := ReadDIMACS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Clauses) != 1 {
		t.Errorf("clauses = %v", f.Clauses)
	}
}

func TestReadDIMACSErrors(t *testing.T) {
	cases := []string{
		"",                          // no problem line
		"1 2 0",                     // clause before problem line
		"p cnf 2 1\np cnf 2 1\n1 0", // duplicate problem line
		"p dnf 2 1\n1 0",            // wrong format tag
		"p cnf x 1\n1 0",            // bad var count
		"p cnf 2 y\n1 0",            // bad clause count
		"p cnf 2 1\n1 z 0",          // bad literal
		"p cnf 1 1\n2 0",            // literal out of range
		"p cnf 2 2\n1 0",            // clause count mismatch
	}
	for i, in := range cases {
		if _, err := ReadDIMACS(strings.NewReader(in)); err == nil {
			t.Errorf("case %d (%q): error expected", i, in)
		}
	}
}

func TestDIMACSRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 50; i++ {
		f := RandomKSAT(rng, 2+rng.Intn(10), 1+rng.Intn(20), 3)
		var buf bytes.Buffer
		if err := WriteDIMACS(&buf, f); err != nil {
			t.Fatal(err)
		}
		g, err := ReadDIMACS(&buf)
		if err != nil {
			t.Fatalf("instance %d: %v\n%s", i, err, buf.String())
		}
		if g.NumVars != f.NumVars || !reflect.DeepEqual(g.Clauses, f.Clauses) {
			t.Fatalf("instance %d: round trip mismatch", i)
		}
	}
}

func TestPigeonholeShape(t *testing.T) {
	f := Pigeonhole(3, 2)
	if f.NumVars != 6 {
		t.Errorf("NumVars = %d, want 6", f.NumVars)
	}
	// 3 pigeon clauses + 2 holes × C(3,2)=3 pair clauses = 3 + 6.
	if len(f.Clauses) != 9 {
		t.Errorf("clauses = %d, want 9", len(f.Clauses))
	}
	if err := f.Validate(); err != nil {
		t.Error(err)
	}
}

func TestRandomKSATShape(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	f := RandomKSAT(rng, 10, 42, 3)
	if len(f.Clauses) != 42 {
		t.Errorf("clauses = %d", len(f.Clauses))
	}
	for _, c := range f.Clauses {
		if len(c) != 3 {
			t.Errorf("clause length %d", len(c))
		}
		seen := map[int]bool{}
		for _, l := range c {
			if seen[l.Var()] {
				t.Errorf("repeated variable in clause %v", c)
			}
			seen[l.Var()] = true
		}
	}
	// k capped at nvars.
	g := RandomKSAT(rng, 2, 5, 9)
	for _, c := range g.Clauses {
		if len(c) != 2 {
			t.Errorf("clause length %d with capped k", len(c))
		}
	}
}
