package sat

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadDIMACS checks the DIMACS parser never panics and that parsed
// formulas round-trip and are solvable without error.
func FuzzReadDIMACS(f *testing.F) {
	f.Add("p cnf 2 2\n1 -2 0\n2 0\n")
	f.Add("c comment\np cnf 1 1\n1 0")
	f.Add("p cnf 3 1\n1\n2\n3 0\n")
	f.Fuzz(func(t *testing.T, input string) {
		formula, err := ReadDIMACS(strings.NewReader(input))
		if err != nil {
			return
		}
		if err := formula.Validate(); err != nil {
			t.Fatalf("parser produced invalid formula: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteDIMACS(&buf, formula); err != nil {
			t.Fatal(err)
		}
		back, err := ReadDIMACS(&buf)
		if err != nil {
			t.Fatalf("re-read failed: %v\n%s", err, buf.String())
		}
		if back.NumVars != formula.NumVars || len(back.Clauses) != len(formula.Clauses) {
			t.Fatal("round trip changed the formula shape")
		}
		// Tiny formulas additionally get solved to exercise the solver
		// on arbitrary (possibly pathological) clause shapes.
		if formula.NumVars <= 8 && len(formula.Clauses) <= 16 {
			a, err := SolveCDCL(formula)
			if err != nil {
				t.Fatal(err)
			}
			b, err := SolveBrute(formula)
			if err != nil {
				t.Fatal(err)
			}
			if a.Satisfiable != b.Satisfiable {
				t.Fatalf("CDCL=%v brute=%v on\n%s", a.Satisfiable, b.Satisfiable, formula)
			}
		}
	})
}
