// Package sat is the Boolean-satisfiability substrate of the library.
//
// The paper's hardness results are reductions from SAT and 3SAT
// (Figures 4.1, 5.1, 5.2, 6.2). Executing those reductions — and
// cross-checking that SAT(Q) holds exactly when the reduced coherence
// instance is coherent — needs a working SAT decision procedure, so the
// package provides a conflict-driven clause-learning (CDCL) solver built
// from scratch, a plain DPLL solver and a brute-force enumerator as
// references, DIMACS CNF I/O, and instance generators.
package sat

import (
	"fmt"
	"sort"
	"strings"
)

// Lit is a literal in DIMACS convention: +v is variable v, -v its
// negation; v ranges over 1..NumVars. Zero is not a literal.
type Lit int

// Var returns the literal's variable (always positive).
func (l Lit) Var() int {
	if l < 0 {
		return int(-l)
	}
	return int(l)
}

// Neg returns the complementary literal.
func (l Lit) Neg() Lit { return -l }

// Positive reports whether the literal is unnegated.
func (l Lit) Positive() bool { return l > 0 }

// Clause is a disjunction of literals.
type Clause []Lit

// String renders the clause as "(x1 ∨ ¬x2 ∨ x3)".
func (c Clause) String() string {
	parts := make([]string, len(c))
	for i, l := range c {
		if l.Positive() {
			parts[i] = fmt.Sprintf("x%d", l.Var())
		} else {
			parts[i] = fmt.Sprintf("¬x%d", l.Var())
		}
	}
	return "(" + strings.Join(parts, " ∨ ") + ")"
}

// Formula is a CNF formula: a conjunction of clauses over variables
// 1..NumVars.
type Formula struct {
	NumVars int
	Clauses []Clause
}

// NewFormula builds a formula, inferring NumVars from the largest
// variable mentioned.
func NewFormula(clauses ...Clause) *Formula {
	f := &Formula{Clauses: clauses}
	for _, c := range clauses {
		for _, l := range c {
			if l.Var() > f.NumVars {
				f.NumVars = l.Var()
			}
		}
	}
	return f
}

// Validate reports an error for zero literals or variables out of range.
func (f *Formula) Validate() error {
	for i, c := range f.Clauses {
		for _, l := range c {
			if l == 0 {
				return fmt.Errorf("sat: clause %d contains the zero literal", i)
			}
			if l.Var() > f.NumVars {
				return fmt.Errorf("sat: clause %d mentions variable %d > NumVars %d", i, l.Var(), f.NumVars)
			}
		}
	}
	return nil
}

// String renders the formula as a conjunction of clauses.
func (f *Formula) String() string {
	parts := make([]string, len(f.Clauses))
	for i, c := range f.Clauses {
		parts[i] = c.String()
	}
	return strings.Join(parts, " ∧ ")
}

// MaxClauseLen returns the length of the longest clause (0 for an empty
// formula).
func (f *Formula) MaxClauseLen() int {
	max := 0
	for _, c := range f.Clauses {
		if len(c) > max {
			max = len(c)
		}
	}
	return max
}

// Clone returns a deep copy.
func (f *Formula) Clone() *Formula {
	out := &Formula{NumVars: f.NumVars, Clauses: make([]Clause, len(f.Clauses))}
	for i, c := range f.Clauses {
		out.Clauses[i] = append(Clause(nil), c...)
	}
	return out
}

// Assignment maps each variable (1-based) to a truth value. Index 0 is
// unused.
type Assignment []bool

// Satisfies reports whether the assignment satisfies every clause of f.
func (a Assignment) Satisfies(f *Formula) bool {
	for _, c := range f.Clauses {
		ok := false
		for _, l := range c {
			if l.Var() < len(a) && a[l.Var()] == l.Positive() {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// String renders the assignment as "x1=T x2=F …".
func (a Assignment) String() string {
	var parts []string
	for v := 1; v < len(a); v++ {
		t := "F"
		if a[v] {
			t = "T"
		}
		parts = append(parts, fmt.Sprintf("x%d=%s", v, t))
	}
	return strings.Join(parts, " ")
}

// Result is the outcome of a SAT query.
type Result struct {
	// Satisfiable reports the decision.
	Satisfiable bool
	// Assignment is a satisfying assignment when Satisfiable (index 0
	// unused).
	Assignment Assignment
	// Stats describes the work performed.
	Stats Stats
}

// Stats describes solver effort.
type Stats struct {
	Decisions    int
	Propagations int
	Conflicts    int
	Learned      int
	Restarts     int
}

// normalizeClause sorts and deduplicates a clause, reporting whether it
// is a tautology (contains l and ¬l).
func normalizeClause(c Clause) (Clause, bool) {
	if len(c) == 0 {
		return c, false
	}
	s := append(Clause(nil), c...)
	sort.Slice(s, func(i, j int) bool {
		if s[i].Var() != s[j].Var() {
			return s[i].Var() < s[j].Var()
		}
		return s[i] < s[j]
	})
	out := s[:0]
	for i, l := range s {
		if i > 0 && l == s[i-1] {
			continue
		}
		if i > 0 && l.Var() == s[i-1].Var() {
			return nil, true // l and ¬l
		}
		out = append(out, l)
	}
	return out, false
}
