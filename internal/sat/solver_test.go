package sat

import (
	"math/rand"
	"testing"
)

func TestCDCLTinyInstances(t *testing.T) {
	cases := []struct {
		f    *Formula
		want bool
	}{
		{NewFormula(), true},
		{NewFormula(Clause{1}), true},
		{NewFormula(Clause{1}, Clause{-1}), false},
		{NewFormula(Clause{1, 2}, Clause{-1, 2}, Clause{1, -2}, Clause{-1, -2}), false},
		{NewFormula(Clause{1, 2}, Clause{-1, 2}, Clause{1, -2}), true},
		{&Formula{NumVars: 1, Clauses: []Clause{{}}}, false}, // empty clause
		{NewFormula(Clause{1, -1}), true},                    // tautology
	}
	for i, c := range cases {
		res, err := SolveCDCL(c.f)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if res.Satisfiable != c.want {
			t.Errorf("case %d: CDCL = %v, want %v (formula %s)", i, res.Satisfiable, c.want, c.f)
		}
		if res.Satisfiable && !res.Assignment.Satisfies(c.f) {
			t.Errorf("case %d: assignment does not satisfy", i)
		}
	}
}

func TestDPLLTinyInstances(t *testing.T) {
	cases := []struct {
		f    *Formula
		want bool
	}{
		{NewFormula(), true},
		{NewFormula(Clause{1}, Clause{-1}), false},
		{NewFormula(Clause{1, 2}, Clause{-1, 2}, Clause{1, -2}), true},
	}
	for i, c := range cases {
		res, err := SolveDPLL(c.f)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if res.Satisfiable != c.want {
			t.Errorf("case %d: DPLL = %v, want %v", i, res.Satisfiable, c.want)
		}
		if res.Satisfiable && !res.Assignment.Satisfies(c.f) {
			t.Errorf("case %d: assignment does not satisfy", i)
		}
	}
}

// Cross-check all three solvers on random instances around the phase
// transition.
func TestSolversAgreeOnRandomInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	satSeen, unsatSeen := 0, 0
	for i := 0; i < 300; i++ {
		nvars := 3 + rng.Intn(8)
		nclauses := 1 + rng.Intn(4*nvars)
		f := RandomKSAT(rng, nvars, nclauses, 3)
		brute, err := SolveBrute(f)
		if err != nil {
			t.Fatal(err)
		}
		cdcl, err := SolveCDCL(f)
		if err != nil {
			t.Fatal(err)
		}
		dpll, err := SolveDPLL(f)
		if err != nil {
			t.Fatal(err)
		}
		if cdcl.Satisfiable != brute.Satisfiable {
			t.Fatalf("instance %d: CDCL=%v brute=%v\n%s", i, cdcl.Satisfiable, brute.Satisfiable, f)
		}
		if dpll.Satisfiable != brute.Satisfiable {
			t.Fatalf("instance %d: DPLL=%v brute=%v\n%s", i, dpll.Satisfiable, brute.Satisfiable, f)
		}
		if brute.Satisfiable {
			satSeen++
		} else {
			unsatSeen++
		}
	}
	if satSeen == 0 || unsatSeen == 0 {
		t.Errorf("degenerate sample: %d sat, %d unsat", satSeen, unsatSeen)
	}
}

func TestCDCLSolvesPlantedInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 20; i++ {
		f, hidden := RandomSatisfiableKSAT(rng, 50, 200, 3)
		if !hidden.Satisfies(f) {
			t.Fatal("generator broke its own planted assignment")
		}
		res, err := SolveCDCL(f)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Satisfiable {
			t.Fatalf("planted-SAT instance %d judged unsatisfiable", i)
		}
		if !res.Assignment.Satisfies(f) {
			t.Fatalf("instance %d: returned assignment does not satisfy", i)
		}
	}
}

func TestCDCLPigeonhole(t *testing.T) {
	// PHP(n+1, n) is unsatisfiable; n=5 is comfortably in reach and
	// forces real conflict analysis.
	f := Pigeonhole(6, 5)
	res, err := SolveCDCL(f)
	if err != nil {
		t.Fatal(err)
	}
	if res.Satisfiable {
		t.Error("pigeonhole principle violated")
	}
	if res.Stats.Conflicts == 0 {
		t.Error("expected conflicts on PHP")
	}

	// PHP(n, n) is satisfiable.
	ok := Pigeonhole(5, 5)
	res, err = SolveCDCL(ok)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Satisfiable {
		t.Error("PHP(5,5) should be satisfiable")
	}
}

func TestCDCLRestartsHappen(t *testing.T) {
	f := Pigeonhole(7, 6)
	res, err := SolveCDCL(f)
	if err != nil {
		t.Fatal(err)
	}
	if res.Satisfiable {
		t.Fatal("PHP(7,6) should be unsatisfiable")
	}
	if res.Stats.Learned == 0 {
		t.Error("expected learned clauses")
	}
}

func TestToThreeSAT(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for i := 0; i < 100; i++ {
		nvars := 2 + rng.Intn(6)
		f := &Formula{NumVars: nvars}
		nclauses := 1 + rng.Intn(6)
		for j := 0; j < nclauses; j++ {
			clen := 1 + rng.Intn(6)
			c := make(Clause, 0, clen)
			for k := 0; k < clen; k++ {
				l := Lit(1 + rng.Intn(nvars))
				if rng.Intn(2) == 0 {
					l = l.Neg()
				}
				c = append(c, l)
			}
			f.Clauses = append(f.Clauses, c)
		}
		three := ToThreeSAT(f)
		for _, c := range three.Clauses {
			if len(c) != 3 {
				t.Fatalf("instance %d: clause of length %d in 3SAT output", i, len(c))
			}
		}
		orig, err := SolveBrute(f)
		if err != nil {
			t.Fatal(err)
		}
		conv, err := SolveCDCL(three)
		if err != nil {
			t.Fatal(err)
		}
		if orig.Satisfiable != conv.Satisfiable {
			t.Fatalf("instance %d: equisatisfiability broken (orig %v, 3sat %v)\n%s\n=>\n%s",
				i, orig.Satisfiable, conv.Satisfiable, f, three)
		}
	}
}

func TestToThreeSATEmptyClause(t *testing.T) {
	f := &Formula{NumVars: 1, Clauses: []Clause{{}}}
	three := ToThreeSAT(f)
	res, err := SolveCDCL(three)
	if err != nil {
		t.Fatal(err)
	}
	if res.Satisfiable {
		t.Error("empty clause should stay unsatisfiable through conversion")
	}
}

func TestLuby(t *testing.T) {
	want := []int{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(i + 1); got != w {
			t.Errorf("luby(%d) = %d, want %d", i+1, got, w)
		}
	}
}

func TestSolverRejectsInvalidFormula(t *testing.T) {
	bad := &Formula{NumVars: 1, Clauses: []Clause{{0}}}
	if _, err := SolveCDCL(bad); err == nil {
		t.Error("CDCL accepted an invalid formula")
	}
	if _, err := SolveDPLL(bad); err == nil {
		t.Error("DPLL accepted an invalid formula")
	}
	if _, err := SolveBrute(bad); err == nil {
		t.Error("brute force accepted an invalid formula")
	}
}
