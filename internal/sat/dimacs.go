package sat

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadDIMACS parses a formula in DIMACS CNF format: comment lines start
// with 'c', the problem line is "p cnf <vars> <clauses>", and each clause
// is a whitespace-separated list of nonzero literals terminated by 0
// (clauses may span lines).
func ReadDIMACS(r io.Reader) (*Formula, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	f := &Formula{}
	sawProblem := false
	declaredClauses := -1
	var cur Clause
	lineNum := 0
	for sc.Scan() {
		lineNum++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "c") {
			continue
		}
		if strings.HasPrefix(line, "p") {
			if sawProblem {
				return nil, fmt.Errorf("sat: line %d: duplicate problem line", lineNum)
			}
			fields := strings.Fields(line)
			if len(fields) != 4 || fields[1] != "cnf" {
				return nil, fmt.Errorf("sat: line %d: malformed problem line %q", lineNum, line)
			}
			nv, err := strconv.Atoi(fields[2])
			if err != nil || nv < 0 {
				return nil, fmt.Errorf("sat: line %d: bad variable count %q", lineNum, fields[2])
			}
			nc, err := strconv.Atoi(fields[3])
			if err != nil || nc < 0 {
				return nil, fmt.Errorf("sat: line %d: bad clause count %q", lineNum, fields[3])
			}
			f.NumVars = nv
			declaredClauses = nc
			sawProblem = true
			continue
		}
		if !sawProblem {
			return nil, fmt.Errorf("sat: line %d: clause before problem line", lineNum)
		}
		for _, tok := range strings.Fields(line) {
			n, err := strconv.Atoi(tok)
			if err != nil {
				return nil, fmt.Errorf("sat: line %d: bad literal %q", lineNum, tok)
			}
			if n == 0 {
				f.Clauses = append(f.Clauses, cur)
				cur = nil
				continue
			}
			if v := Lit(n).Var(); v > f.NumVars {
				return nil, fmt.Errorf("sat: line %d: literal %d exceeds declared variable count %d", lineNum, n, f.NumVars)
			}
			cur = append(cur, Lit(n))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("sat: reading DIMACS: %w", err)
	}
	if !sawProblem {
		return nil, fmt.Errorf("sat: missing problem line")
	}
	if len(cur) > 0 {
		// A trailing clause without the terminating 0 is accepted, as
		// many tools emit it.
		f.Clauses = append(f.Clauses, cur)
	}
	if declaredClauses >= 0 && len(f.Clauses) != declaredClauses {
		return nil, fmt.Errorf("sat: problem line declares %d clauses, found %d", declaredClauses, len(f.Clauses))
	}
	return f, nil
}

// WriteDIMACS emits the formula in DIMACS CNF format.
func WriteDIMACS(w io.Writer, f *Formula) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "p cnf %d %d\n", f.NumVars, len(f.Clauses)); err != nil {
		return err
	}
	for _, c := range f.Clauses {
		for _, l := range c {
			if _, err := fmt.Fprintf(bw, "%d ", int(l)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(bw, "0"); err != nil {
			return err
		}
	}
	return bw.Flush()
}
