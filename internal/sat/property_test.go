package sat

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: satisfiability is invariant under clause reordering.
func TestSATClauseOrderInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nv := 2 + rng.Intn(6)
		formula := RandomKSAT(rng, nv, 1+rng.Intn(4*nv), 3)
		a, err := SolveCDCL(formula)
		if err != nil {
			return false
		}
		shuffled := formula.Clone()
		rng.Shuffle(len(shuffled.Clauses), func(i, j int) {
			shuffled.Clauses[i], shuffled.Clauses[j] = shuffled.Clauses[j], shuffled.Clauses[i]
		})
		b, err := SolveCDCL(shuffled)
		if err != nil {
			return false
		}
		return a.Satisfiable == b.Satisfiable
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: satisfiability is invariant under flipping the polarity of
// one variable everywhere (the satisfying assignments transform with
// it).
func TestSATPolarityFlipInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nv := 2 + rng.Intn(6)
		formula := RandomKSAT(rng, nv, 1+rng.Intn(4*nv), 3)
		v := 1 + rng.Intn(nv)
		flipped := formula.Clone()
		for ci := range flipped.Clauses {
			for li, l := range flipped.Clauses[ci] {
				if l.Var() == v {
					flipped.Clauses[ci][li] = l.Neg()
				}
			}
		}
		a, err := SolveCDCL(formula)
		if err != nil {
			return false
		}
		b, err := SolveCDCL(flipped)
		if err != nil {
			return false
		}
		if a.Satisfiable != b.Satisfiable {
			return false
		}
		if b.Satisfiable {
			// Transform b's assignment back and check it satisfies the
			// original.
			back := append(Assignment(nil), b.Assignment...)
			back[v] = !back[v]
			return back.Satisfies(formula)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: adding a clause already satisfied by a returned assignment
// keeps the formula satisfiable; adding its negation as unit clauses may
// not — but a formula plus one of its implied clauses never flips to
// unsatisfiable.
func TestSATMonotonicity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nv := 2 + rng.Intn(5)
		formula := RandomKSAT(rng, nv, 1+rng.Intn(3*nv), 3)
		res, err := SolveCDCL(formula)
		if err != nil {
			return false
		}
		if !res.Satisfiable {
			// Removing a clause can only help: the remainder's verdict
			// is unconstrained, but adding clauses must keep UNSAT.
			bigger := formula.Clone()
			bigger.Clauses = append(bigger.Clauses, Clause{1, 2})
			r2, err := SolveCDCL(bigger)
			if err != nil {
				return false
			}
			return !r2.Satisfiable
		}
		// Append a clause satisfied by the model.
		var lit Lit
		for v := 1; v <= nv; v++ {
			if res.Assignment[v] {
				lit = Lit(v)
			} else {
				lit = Lit(-v)
			}
		}
		grown := formula.Clone()
		grown.Clauses = append(grown.Clauses, Clause{lit})
		r2, err := SolveCDCL(grown)
		if err != nil {
			return false
		}
		return r2.Satisfiable
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: DPLL and CDCL always agree (a second, broader agreement
// sweep beyond the table-driven tests).
func TestSATBackendAgreementProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nv := 2 + rng.Intn(7)
		formula := RandomKSAT(rng, nv, 1+rng.Intn(5*nv), 3)
		a, err := SolveCDCL(formula)
		if err != nil {
			return false
		}
		b, err := SolveDPLL(formula)
		if err != nil {
			return false
		}
		return a.Satisfiable == b.Satisfiable
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
