package sat

import (
	"strings"
	"testing"
)

func TestLitBasics(t *testing.T) {
	l := Lit(3)
	if l.Var() != 3 || !l.Positive() || l.Neg() != Lit(-3) {
		t.Errorf("Lit(3) basics wrong: var=%d pos=%v neg=%d", l.Var(), l.Positive(), l.Neg())
	}
	n := Lit(-7)
	if n.Var() != 7 || n.Positive() || n.Neg() != Lit(7) {
		t.Errorf("Lit(-7) basics wrong")
	}
}

func TestNewFormulaInfersNumVars(t *testing.T) {
	f := NewFormula(Clause{1, -2}, Clause{3})
	if f.NumVars != 3 {
		t.Errorf("NumVars = %d, want 3", f.NumVars)
	}
}

func TestFormulaValidate(t *testing.T) {
	good := NewFormula(Clause{1, -2})
	if err := good.Validate(); err != nil {
		t.Errorf("valid formula rejected: %v", err)
	}
	zero := &Formula{NumVars: 2, Clauses: []Clause{{1, 0}}}
	if err := zero.Validate(); err == nil {
		t.Error("zero literal accepted")
	}
	oob := &Formula{NumVars: 1, Clauses: []Clause{{2}}}
	if err := oob.Validate(); err == nil {
		t.Error("out-of-range variable accepted")
	}
}

func TestAssignmentSatisfies(t *testing.T) {
	f := NewFormula(Clause{1, 2}, Clause{-1, 2})
	if !(Assignment{false, true, true}).Satisfies(f) {
		t.Error("satisfying assignment rejected")
	}
	if (Assignment{false, true, false}).Satisfies(f) {
		t.Error("falsifying assignment accepted")
	}
}

func TestClauseString(t *testing.T) {
	s := Clause{1, -2}.String()
	if !strings.Contains(s, "x1") || !strings.Contains(s, "¬x2") {
		t.Errorf("Clause.String() = %q", s)
	}
}

func TestFormulaString(t *testing.T) {
	f := NewFormula(Clause{1}, Clause{-1})
	if got := f.String(); !strings.Contains(got, "∧") {
		t.Errorf("Formula.String() = %q", got)
	}
}

func TestAssignmentString(t *testing.T) {
	got := Assignment{false, true, false}.String()
	if got != "x1=T x2=F" {
		t.Errorf("Assignment.String() = %q", got)
	}
}

func TestFormulaClone(t *testing.T) {
	f := NewFormula(Clause{1, 2})
	c := f.Clone()
	c.Clauses[0][0] = -1
	if f.Clauses[0][0] != 1 {
		t.Error("Clone is not deep")
	}
}

func TestMaxClauseLen(t *testing.T) {
	f := NewFormula(Clause{1}, Clause{1, 2, 3})
	if got := f.MaxClauseLen(); got != 3 {
		t.Errorf("MaxClauseLen = %d, want 3", got)
	}
	if got := (&Formula{}).MaxClauseLen(); got != 0 {
		t.Errorf("empty MaxClauseLen = %d, want 0", got)
	}
}

func TestNormalizeClause(t *testing.T) {
	c, taut := normalizeClause(Clause{2, 1, 2, -3})
	if taut {
		t.Fatal("non-tautology reported as tautology")
	}
	if len(c) != 3 {
		t.Errorf("normalizeClause dedup failed: %v", c)
	}
	_, taut = normalizeClause(Clause{1, -1})
	if !taut {
		t.Error("tautology not detected")
	}
}
