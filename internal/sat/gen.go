package sat

import "math/rand"

// RandomKSAT generates a uniform random k-SAT formula with nvars
// variables and nclauses clauses: each clause has k distinct variables,
// each negated with probability 1/2. At the classic ratio
// nclauses/nvars ≈ 4.26, k=3 instances sit near the
// satisfiability phase transition and are hardest on average.
func RandomKSAT(rng *rand.Rand, nvars, nclauses, k int) *Formula {
	if k > nvars {
		k = nvars
	}
	f := &Formula{NumVars: nvars}
	for i := 0; i < nclauses; i++ {
		perm := rng.Perm(nvars)[:k]
		c := make(Clause, k)
		for j, v := range perm {
			l := Lit(v + 1)
			if rng.Intn(2) == 0 {
				l = l.Neg()
			}
			c[j] = l
		}
		f.Clauses = append(f.Clauses, c)
	}
	return f
}

// RandomSatisfiableKSAT generates a random k-SAT formula guaranteed
// satisfiable: a hidden assignment is drawn first and every clause is
// forced to contain at least one literal true under it.
func RandomSatisfiableKSAT(rng *rand.Rand, nvars, nclauses, k int) (*Formula, Assignment) {
	if k > nvars {
		k = nvars
	}
	hidden := make(Assignment, nvars+1)
	for v := 1; v <= nvars; v++ {
		hidden[v] = rng.Intn(2) == 0
	}
	f := &Formula{NumVars: nvars}
	for i := 0; i < nclauses; i++ {
		perm := rng.Perm(nvars)[:k]
		c := make(Clause, k)
		for j, v := range perm {
			l := Lit(v + 1)
			if rng.Intn(2) == 0 {
				l = l.Neg()
			}
			c[j] = l
		}
		// Force one literal true under the hidden assignment.
		pick := rng.Intn(k)
		v := c[pick].Var()
		if hidden[v] {
			c[pick] = Lit(v)
		} else {
			c[pick] = Lit(-v)
		}
		f.Clauses = append(f.Clauses, c)
	}
	return f, hidden
}

// Pigeonhole generates the pigeonhole principle formula PHP(n+1, n): n+1
// pigeons cannot fit in n holes one-per-hole. The formula is
// unsatisfiable and exponentially hard for resolution-based solvers —
// a standard stress test. Variable p*(holes)+h+1 means "pigeon p sits in
// hole h".
func Pigeonhole(pigeons, holes int) *Formula {
	v := func(p, h int) Lit { return Lit(p*holes + h + 1) }
	f := &Formula{NumVars: pigeons * holes}
	// Every pigeon sits somewhere.
	for p := 0; p < pigeons; p++ {
		c := make(Clause, holes)
		for h := 0; h < holes; h++ {
			c[h] = v(p, h)
		}
		f.Clauses = append(f.Clauses, c)
	}
	// No two pigeons share a hole.
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				f.Clauses = append(f.Clauses, Clause{v(p1, h).Neg(), v(p2, h).Neg()})
			}
		}
	}
	return f
}

// ToThreeSAT converts an arbitrary CNF formula into an equisatisfiable
// 3SAT formula using the standard Tseitin-style clause splitting: clauses
// of length > 3 are chained with fresh variables; clauses of length 1 or
// 2 are padded by duplicating literals (which keeps them semantically
// identical). The restricted-case reductions of Figures 5.1 and 5.2
// expect exactly-3-literal clauses.
func ToThreeSAT(f *Formula) *Formula {
	out := &Formula{NumVars: f.NumVars}
	fresh := func() Lit {
		out.NumVars++
		return Lit(out.NumVars)
	}
	for _, c := range f.Clauses {
		switch {
		case len(c) == 0:
			// Empty clause: unsatisfiable. Encode as x ∧ ¬x on a fresh
			// variable, in 3-literal form.
			x := fresh()
			out.Clauses = append(out.Clauses,
				Clause{x, x, x}, Clause{x.Neg(), x.Neg(), x.Neg()})
		case len(c) == 1:
			out.Clauses = append(out.Clauses, Clause{c[0], c[0], c[0]})
		case len(c) == 2:
			out.Clauses = append(out.Clauses, Clause{c[0], c[1], c[1]})
		case len(c) == 3:
			out.Clauses = append(out.Clauses, append(Clause(nil), c...))
		default:
			// (l1 ∨ l2 ∨ y1) (¬y1 ∨ l3 ∨ y2) … (¬y_{k-3} ∨ l_{k-1} ∨ l_k)
			y := fresh()
			out.Clauses = append(out.Clauses, Clause{c[0], c[1], y})
			for i := 2; i < len(c)-2; i++ {
				y2 := fresh()
				out.Clauses = append(out.Clauses, Clause{y.Neg(), c[i], y2})
				y = y2
			}
			out.Clauses = append(out.Clauses, Clause{y.Neg(), c[len(c)-2], c[len(c)-1]})
		}
	}
	return out
}
