package sat

import (
	"context"
	"fmt"

	"memverify/internal/obs"
)

// Solver is a conflict-driven clause-learning SAT solver: two-literal
// watches for unit propagation, first-UIP conflict analysis with clause
// learning, VSIDS-style variable activity, phase saving, and Luby
// restarts. It is deterministic for a given formula.
type Solver struct {
	nvars   int
	clauses []*clause
	watches [][]*clause // literal index -> watching clauses

	values  []int8 // var index (1-based) -> 0 unassigned, +1 true, -1 false
	levels  []int
	reasons []*clause
	trail   []Lit
	lim     []int // decision-level boundaries in trail
	qhead   int

	activity []float64
	varInc   float64
	phase    []bool
	seen     []bool

	// topConflict records a contradiction discovered while loading the
	// initial clauses (an empty clause or contradictory units).
	topConflict bool

	stats Stats

	// tr/trCtx carry an optional observability tracer (see Observe);
	// both stay nil/zero unless the caller attaches one, so the solve
	// loop pays only nil comparisons.
	tr    *obs.Tracer
	trCtx context.Context
}

type clause struct {
	lits    []Lit
	learned bool
}

const (
	activityDecay   = 0.95
	activityRescale = 1e100
	lubyUnit        = 100
)

// NewSolver prepares a solver for formula f. The formula is not
// modified. An error is returned for malformed formulas.
func NewSolver(f *Formula) (*Solver, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	s := &Solver{
		nvars:    f.NumVars,
		watches:  make([][]*clause, 2*f.NumVars),
		values:   make([]int8, f.NumVars+1),
		levels:   make([]int, f.NumVars+1),
		reasons:  make([]*clause, f.NumVars+1),
		activity: make([]float64, f.NumVars+1),
		varInc:   1,
		phase:    make([]bool, f.NumVars+1),
		seen:     make([]bool, f.NumVars+1),
	}
	for _, raw := range f.Clauses {
		norm, taut := normalizeClause(raw)
		if taut {
			continue
		}
		if !s.addClause(norm, false) {
			s.topConflict = true
		}
	}
	return s, nil
}

// litIdx maps a literal to its watch-list index.
func (s *Solver) litIdx(l Lit) int {
	v := l.Var() - 1
	if l.Positive() {
		return 2 * v
	}
	return 2*v + 1
}

// value returns the literal's current value: +1 true, -1 false, 0 unset.
func (s *Solver) value(l Lit) int8 {
	v := s.values[l.Var()]
	if v == 0 {
		return 0
	}
	if l.Positive() {
		return v
	}
	return -v
}

// addClause installs a clause; false means the database is already
// unsatisfiable at the top level.
func (s *Solver) addClause(lits Clause, learned bool) bool {
	switch len(lits) {
	case 0:
		return false
	case 1:
		switch s.value(lits[0]) {
		case -1:
			return false
		case 0:
			s.assign(lits[0], nil)
		}
		return true
	}
	c := &clause{lits: append(Clause(nil), lits...), learned: learned}
	s.clauses = append(s.clauses, c)
	// Watch the first two literals.
	s.watches[s.litIdx(c.lits[0].Neg())] = append(s.watches[s.litIdx(c.lits[0].Neg())], c)
	s.watches[s.litIdx(c.lits[1].Neg())] = append(s.watches[s.litIdx(c.lits[1].Neg())], c)
	return true
}

// assign records lit as true with the given reason at the current level.
func (s *Solver) assign(l Lit, reason *clause) {
	v := l.Var()
	if l.Positive() {
		s.values[v] = 1
	} else {
		s.values[v] = -1
	}
	s.levels[v] = len(s.lim)
	s.reasons[v] = reason
	s.phase[v] = l.Positive()
	s.trail = append(s.trail, l)
}

// propagate runs unit propagation; it returns the conflicting clause or
// nil.
func (s *Solver) propagate() *clause {
	for s.qhead < len(s.trail) {
		l := s.trail[s.qhead]
		s.qhead++
		idx := s.litIdx(l) // clauses watching ¬(assigned lit = l true) — we stored watch on Neg
		ws := s.watches[idx]
		kept := ws[:0]
		for wi := 0; wi < len(ws); wi++ {
			c := ws[wi]
			// Ensure the false literal is lits[1].
			falseLit := l.Neg()
			if c.lits[0] == falseLit {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			// If lits[0] is true the clause is satisfied.
			if s.value(c.lits[0]) == 1 {
				kept = append(kept, c)
				continue
			}
			// Look for a new literal to watch.
			moved := false
			for k := 2; k < len(c.lits); k++ {
				if s.value(c.lits[k]) != -1 {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					s.watches[s.litIdx(c.lits[1].Neg())] = append(s.watches[s.litIdx(c.lits[1].Neg())], c)
					moved = true
					break
				}
			}
			if moved {
				continue // watch moved elsewhere; drop from this list
			}
			// Clause is unit or conflicting.
			kept = append(kept, c)
			if s.value(c.lits[0]) == -1 {
				// Conflict: restore remaining watchers and report.
				kept = append(kept, ws[wi+1:]...)
				s.watches[idx] = kept
				s.qhead = len(s.trail)
				return c
			}
			s.assign(c.lits[0], c)
			s.stats.Propagations++
		}
		s.watches[idx] = kept
	}
	return nil
}

// analyze performs first-UIP conflict analysis, returning the learned
// clause (asserting literal first) and the backjump level.
func (s *Solver) analyze(confl *clause) (Clause, int) {
	learned := Clause{0} // slot 0 for the asserting literal
	counter := 0
	var p Lit
	idx := len(s.trail) - 1
	curLevel := len(s.lim)

	c := confl
	for {
		start := 0
		if p != 0 {
			start = 1 // skip the asserting literal of the reason
		}
		for _, q := range c.lits[start:] {
			v := q.Var()
			if s.seen[v] || s.levels[v] == 0 {
				continue
			}
			s.seen[v] = true
			s.bumpVar(v)
			if s.levels[v] == curLevel {
				counter++
			} else {
				learned = append(learned, q)
			}
		}
		// Pick the next seen literal from the trail.
		for !s.seen[s.trail[idx].Var()] {
			idx--
		}
		p = s.trail[idx]
		s.seen[p.Var()] = false
		counter--
		idx--
		if counter == 0 {
			break
		}
		c = s.reasons[p.Var()]
	}
	learned[0] = p.Neg()
	for _, l := range learned[1:] {
		s.seen[l.Var()] = false
	}

	// Backjump level: highest level among learned[1:].
	back := 0
	pos := 1
	for i := 1; i < len(learned); i++ {
		if lv := s.levels[learned[i].Var()]; lv > back {
			back = lv
			pos = i
		}
	}
	if len(learned) > 1 {
		learned[1], learned[pos] = learned[pos], learned[1]
	}
	return learned, back
}

// bumpVar increases a variable's activity.
func (s *Solver) bumpVar(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > activityRescale {
		for i := range s.activity {
			s.activity[i] /= activityRescale
		}
		s.varInc /= activityRescale
	}
}

// cancelUntil undoes assignments above the given decision level.
func (s *Solver) cancelUntil(level int) {
	if len(s.lim) <= level {
		return
	}
	bound := s.lim[level]
	for i := len(s.trail) - 1; i >= bound; i-- {
		v := s.trail[i].Var()
		s.values[v] = 0
		s.reasons[v] = nil
	}
	s.trail = s.trail[:bound]
	s.lim = s.lim[:level]
	s.qhead = bound
}

// decide picks the unassigned variable with the highest activity, using
// the saved phase.
func (s *Solver) decide() Lit {
	best, bestAct := 0, -1.0
	for v := 1; v <= s.nvars; v++ {
		if s.values[v] == 0 && s.activity[v] > bestAct {
			best, bestAct = v, s.activity[v]
		}
	}
	if best == 0 {
		return 0
	}
	if s.phase[best] {
		return Lit(best)
	}
	return Lit(-best)
}

// luby returns the i-th element (1-based) of the Luby restart sequence.
func luby(i int) int {
	// Find the finite subsequence containing i.
	for k := 1; ; k++ {
		if i == (1<<k)-1 {
			return 1 << (k - 1)
		}
		if i < (1<<k)-1 {
			return luby(i - (1 << (k - 1)) + 1)
		}
	}
}

// Observe attaches the obs.Tracer carried by ctx (if any) to the
// solver: Solve then brackets the CDCL loop in a "cdcl" span and emits
// a sat event at each restart. A context without a tracer is a no-op.
func (s *Solver) Observe(ctx context.Context) {
	s.tr = obs.TracerFrom(ctx)
	s.trCtx = ctx
}

// Solve runs the CDCL loop to completion. CDCL is complete: the result
// is always decided.
func (s *Solver) Solve() *Result {
	var sp obs.Span
	if s.tr != nil {
		sp, _ = s.tr.Begin(s.trCtx, "cdcl")
	}
	res := s.solve(sp)
	if res.Satisfiable {
		sp.End("sat", int64(s.stats.Decisions))
	} else {
		sp.End("unsat", int64(s.stats.Decisions))
	}
	return res
}

func (s *Solver) solve(sp obs.Span) *Result {
	if s.topConflict {
		return &Result{Satisfiable: false, Stats: s.stats}
	}
	if confl := s.propagate(); confl != nil {
		return &Result{Satisfiable: false, Stats: s.stats}
	}
	restartNum := 1
	conflictBudget := lubyUnit * luby(restartNum)
	conflictsHere := 0

	for {
		confl := s.propagate()
		if confl != nil {
			s.stats.Conflicts++
			conflictsHere++
			if len(s.lim) == 0 {
				return &Result{Satisfiable: false, Stats: s.stats}
			}
			learned, back := s.analyze(confl)
			s.cancelUntil(back)
			s.varInc /= activityDecay
			s.stats.Learned++
			if len(learned) == 1 {
				// Asserting unit at the top level.
				if s.value(learned[0]) == -1 {
					return &Result{Satisfiable: false, Stats: s.stats}
				}
				if s.value(learned[0]) == 0 {
					s.assign(learned[0], nil)
				}
			} else {
				ok := s.addClause(learned, true)
				if !ok {
					return &Result{Satisfiable: false, Stats: s.stats}
				}
				if s.value(learned[0]) == 0 {
					s.assign(learned[0], s.clauses[len(s.clauses)-1])
				}
			}
			continue
		}
		if conflictsHere >= conflictBudget {
			// Restart.
			s.stats.Restarts++
			if s.tr != nil {
				s.tr.SAT(sp, "restart", int64(s.stats.Conflicts))
			}
			restartNum++
			conflictBudget = lubyUnit * luby(restartNum)
			conflictsHere = 0
			s.cancelUntil(0)
			continue
		}
		next := s.decide()
		if next == 0 {
			// All variables assigned: SAT.
			asg := make(Assignment, s.nvars+1)
			for v := 1; v <= s.nvars; v++ {
				asg[v] = s.values[v] == 1
			}
			return &Result{Satisfiable: true, Assignment: asg, Stats: s.stats}
		}
		s.stats.Decisions++
		s.lim = append(s.lim, len(s.trail))
		s.assign(next, nil)
	}
}

// SolveCDCL is the package-level convenience entry point.
func SolveCDCL(f *Formula) (*Result, error) {
	return SolveCDCLContext(context.Background(), f)
}

// SolveCDCLContext is SolveCDCL under an observability context: a
// tracer carried by ctx records the solve as a "cdcl" span with restart
// events. Budgets are not consulted — CDCL runs to completion.
func SolveCDCLContext(ctx context.Context, f *Formula) (*Result, error) {
	s, err := NewSolver(f)
	if err != nil {
		return nil, err
	}
	s.Observe(ctx)
	res := s.Solve()
	if res.Satisfiable && !res.Assignment.Satisfies(f) {
		return nil, fmt.Errorf("sat: internal error: CDCL produced a non-satisfying assignment")
	}
	return res, nil
}
