package sat

// SolveDPLL decides satisfiability with the classic
// Davis–Putnam–Logemann–Loveland procedure: unit propagation, pure
// literal elimination, and splitting on the first unassigned variable.
// It is the reference against which the CDCL solver is cross-checked,
// and the ablation baseline for the solver benchmarks.
func SolveDPLL(f *Formula) (*Result, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	d := &dpll{
		nvars:  f.NumVars,
		values: make([]int8, f.NumVars+1),
	}
	for _, raw := range f.Clauses {
		norm, taut := normalizeClause(raw)
		if taut {
			continue
		}
		d.clauses = append(d.clauses, norm)
	}
	ok := d.solve()
	res := &Result{Satisfiable: ok, Stats: d.stats}
	if ok {
		asg := make(Assignment, f.NumVars+1)
		for v := 1; v <= f.NumVars; v++ {
			asg[v] = d.values[v] == 1
		}
		res.Assignment = asg
	}
	return res, nil
}

type dpll struct {
	nvars   int
	clauses []Clause
	values  []int8
	trail   []int // variables, for undo
	stats   Stats
}

func (d *dpll) value(l Lit) int8 {
	v := d.values[l.Var()]
	if v == 0 || l.Positive() {
		return v
	}
	return -v
}

func (d *dpll) set(l Lit) {
	if l.Positive() {
		d.values[l.Var()] = 1
	} else {
		d.values[l.Var()] = -1
	}
	d.trail = append(d.trail, l.Var())
}

func (d *dpll) undoTo(mark int) {
	for len(d.trail) > mark {
		v := d.trail[len(d.trail)-1]
		d.trail = d.trail[:len(d.trail)-1]
		d.values[v] = 0
	}
}

// status classifies the formula under the current assignment: -1
// conflict, 0 undecided, 1 satisfied. unit receives any unit literal
// found.
func (d *dpll) status() (int, Lit) {
	allSat := true
	var unit Lit
	for _, c := range d.clauses {
		sat := false
		unassigned := 0
		var last Lit
		for _, l := range c {
			switch d.value(l) {
			case 1:
				sat = true
			case 0:
				unassigned++
				last = l
			}
			if sat {
				break
			}
		}
		if sat {
			continue
		}
		if unassigned == 0 {
			return -1, 0
		}
		allSat = false
		if unassigned == 1 && unit == 0 {
			unit = last
		}
	}
	if allSat {
		return 1, 0
	}
	return 0, unit
}

// pureLiteral finds a literal whose negation never occurs in an
// unsatisfied clause.
func (d *dpll) pureLiteral() Lit {
	pos := make([]bool, d.nvars+1)
	neg := make([]bool, d.nvars+1)
	for _, c := range d.clauses {
		sat := false
		for _, l := range c {
			if d.value(l) == 1 {
				sat = true
				break
			}
		}
		if sat {
			continue
		}
		for _, l := range c {
			if d.value(l) == 0 {
				if l.Positive() {
					pos[l.Var()] = true
				} else {
					neg[l.Var()] = true
				}
			}
		}
	}
	for v := 1; v <= d.nvars; v++ {
		if d.values[v] != 0 {
			continue
		}
		if pos[v] && !neg[v] {
			return Lit(v)
		}
		if neg[v] && !pos[v] {
			return Lit(-v)
		}
	}
	return 0
}

func (d *dpll) solve() bool {
	mark := len(d.trail)
	// Unit propagation to fixpoint.
	for {
		st, unit := d.status()
		switch {
		case st == -1:
			d.undoTo(mark)
			return false
		case st == 1:
			return true
		case unit != 0:
			d.stats.Propagations++
			d.set(unit)
		default:
			if p := d.pureLiteral(); p != 0 {
				d.set(p)
				continue
			}
			// Split on the first unassigned variable.
			v := 0
			for i := 1; i <= d.nvars; i++ {
				if d.values[i] == 0 {
					v = i
					break
				}
			}
			if v == 0 {
				return true
			}
			d.stats.Decisions++
			inner := len(d.trail)
			d.set(Lit(v))
			if d.solve() {
				return true
			}
			d.undoTo(inner)
			d.stats.Conflicts++
			d.set(Lit(-v))
			if d.solve() {
				return true
			}
			d.undoTo(mark)
			return false
		}
	}
}

// SolveBrute decides satisfiability by enumerating all 2^n assignments.
// Test oracle only.
func SolveBrute(f *Formula) (*Result, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	n := f.NumVars
	asg := make(Assignment, n+1)
	var try func(v int) bool
	try = func(v int) bool {
		if v > n {
			return asg.Satisfies(f)
		}
		asg[v] = false
		if try(v + 1) {
			return true
		}
		asg[v] = true
		return try(v + 1)
	}
	if try(1) {
		return &Result{Satisfiable: true, Assignment: asg}, nil
	}
	return &Result{Satisfiable: false}, nil
}
