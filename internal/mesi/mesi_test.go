package mesi

import (
	"context"
	"math/rand"
	"testing"

	"memverify/internal/coherence"
	"memverify/internal/consistency"
	"memverify/internal/memory"
)

func TestReadAfterWriteSameCPU(t *testing.T) {
	s := New(Config{Processors: 1})
	s.Write(0, 5, 42)
	if got := s.Read(0, 5); got != 42 {
		t.Errorf("read %d after writing 42", got)
	}
}

func TestReadMissReturnsInitial(t *testing.T) {
	s := New(Config{Processors: 2})
	s.SetInitial(3, 9)
	if got := s.Read(0, 3); got != 9 {
		t.Errorf("read %d, want initial 9", got)
	}
	if got := s.Read(1, 3); got != 9 {
		t.Errorf("second CPU read %d, want 9", got)
	}
}

func TestCrossCPUVisibility(t *testing.T) {
	s := New(Config{Processors: 2})
	s.Write(0, 1, 7)
	if got := s.Read(1, 1); got != 7 {
		t.Errorf("CPU1 read %d, want 7 (dirty-miss forwarding)", got)
	}
	s.Write(1, 1, 8)
	if got := s.Read(0, 1); got != 8 {
		t.Errorf("CPU0 read %d, want 8 (invalidation + refill)", got)
	}
}

func TestRMWAtomicity(t *testing.T) {
	s := New(Config{Processors: 2})
	s.Write(0, 0, 5)
	old := s.RMW(1, 0, 6)
	if old != 5 {
		t.Errorf("RMW read %d, want 5", old)
	}
	if got := s.Read(0, 0); got != 6 {
		t.Errorf("read %d after RMW, want 6", got)
	}
}

func TestEvictionWritebackAndRefill(t *testing.T) {
	// Direct-mapped single-set cache: any two distinct addresses
	// conflict.
	s := New(Config{Processors: 1, CacheSets: 1, CacheWays: 1})
	s.Write(0, 0, 11)
	s.Write(0, 1, 22) // evicts addr 0 (writeback)
	if got := s.Read(0, 0); got != 11 {
		t.Errorf("read %d after writeback round-trip, want 11", got)
	}
	if s.Stats().Writebacks == 0 {
		t.Error("expected a writeback")
	}
}

func TestInvariantsHoldStepwise(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := New(Config{Processors: 4, CacheSets: 2, CacheWays: 2})
	for step := 0; step < 3000; step++ {
		cpu := rng.Intn(4)
		a := memory.Addr(rng.Intn(6))
		switch rng.Intn(3) {
		case 0:
			s.Read(cpu, a)
		case 1:
			s.Write(cpu, a, memory.Value(step))
		default:
			s.RMW(cpu, a, memory.Value(step))
		}
		if err := s.CheckInvariants(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
}

// The headline property: a correct protocol on an atomic bus produces
// sequentially consistent (hence coherent) executions.
func TestCorrectProtocolProducesSCTraces(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 30; i++ {
		s := New(Config{Processors: 3, CacheSets: 2, CacheWays: 1})
		prog := RandomProgram(rng, 3, 6, 3, 0.4, 0.1)
		exec := Run(s, prog, rng)
		ok, bad, err := coherence.Coherent(context.Background(), exec, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("run %d: correct protocol produced incoherent trace at address %d\n%v",
				i, bad, exec.Histories)
		}
		res, err := consistency.SolveVSC(context.Background(), exec, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Consistent {
			t.Fatalf("run %d: correct protocol produced non-SC trace\n%v", i, exec.Histories)
		}
	}
}

func TestDropInvalidateDetected(t *testing.T) {
	// P1: W(a,1); P0 reads it (both Shared); P1's second write's
	// invalidation to P0 is dropped; P0 upgrades its stale line with an
	// RMW. Program order P1: W1 < W2 plus the flushed final value make
	// the trace incoherent.
	s := New(Config{Processors: 2, Faults: Once(FaultDropInvalidate, 1)})
	s.Write(1, 0, 1)
	s.Read(0, 0)     // P0 gets Shared copy of 1
	s.Write(1, 0, 2) // upgrade; invalidation to P0 dropped
	s.RMW(0, 0, 3)   // reads stale 1, writes 3
	exec := s.Execution(true)
	ok, _, err := coherence.Coherent(context.Background(), exec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Errorf("dropped invalidation not detected\nP0=%v P1=%v final=%v",
			exec.Histories[0], exec.Histories[1], exec.Final)
	}
	if s.Stats().FaultsFired != 1 {
		t.Errorf("FaultsFired = %d, want 1", s.Stats().FaultsFired)
	}
}

func TestLoseWritebackDetected(t *testing.T) {
	s := New(Config{Processors: 1, CacheSets: 1, CacheWays: 1,
		Faults: Once(FaultLoseWriteback, 1)})
	s.Write(0, 0, 1)
	s.Read(0, 1) // evicts addr 0; writeback lost
	s.Read(0, 0) // refills from stale memory: 0
	exec := s.Execution(true)
	ok, bad, err := coherence.Coherent(context.Background(), exec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Errorf("lost writeback not detected\n%v", exec.Histories[0])
	}
	if bad != 0 {
		t.Errorf("violation reported at address %d, want 0", bad)
	}
}

func TestStaleMemoryDetected(t *testing.T) {
	s := New(Config{Processors: 2, Faults: Once(FaultStaleMemory, 1)})
	s.Write(0, 0, 1)
	s.Read(1, 0) // snoop response lost; P1 reads stale 0
	exec := s.Execution(true)
	// P0's dirty line was downgraded without a flush, so the final value
	// in memory is stale: the last write (1) does not match.
	ok, _, err := coherence.Coherent(context.Background(), exec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Errorf("stale memory response not detected\nP0=%v P1=%v final=%v",
			exec.Histories[0], exec.Histories[1], exec.Final)
	}
}

func TestCorruptFillDetected(t *testing.T) {
	s := New(Config{Processors: 2, Faults: Once(FaultCorruptFill, 2)})
	s.Write(0, 0, 8)
	s.Read(1, 0) // second fill opportunity: corrupted to 9
	exec := s.Execution(true)
	ok, _, err := coherence.Coherent(context.Background(), exec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Errorf("corrupted fill not detected\nP0=%v P1=%v", exec.Histories[0], exec.Histories[1])
	}
}

func TestDropWriteDetected(t *testing.T) {
	s := New(Config{Processors: 1, Faults: Once(FaultDropWrite, 1)})
	s.Write(0, 0, 7)
	s.Read(0, 0) // observes the old value
	exec := s.Execution(true)
	ok, _, err := coherence.Coherent(context.Background(), exec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Errorf("dropped write not detected\n%v", exec.Histories[0])
	}
}

func TestFaultKindStrings(t *testing.T) {
	for _, k := range FaultKinds() {
		if k.String() == "unknown-fault" {
			t.Errorf("kind %d has no name", k)
		}
	}
	if FaultKind(99).String() != "unknown-fault" {
		t.Error("unknown kind misnamed")
	}
}

func TestLineStateStrings(t *testing.T) {
	cases := map[LineState]string{Invalid: "I", Shared: "S", Exclusive: "E", Modified: "M", LineState(9): "?"}
	for st, want := range cases {
		if got := st.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", st, got, want)
		}
	}
}

func TestStatsAccumulate(t *testing.T) {
	s := New(Config{Processors: 2})
	s.Write(0, 0, 1) // miss, BusRdX
	s.Read(0, 0)     // hit
	s.Read(1, 0)     // miss, BusRd, flush
	s.Write(1, 0, 2) // hit Shared, upgrade, invalidation
	st := s.Stats()
	if st.Misses != 2 || st.Hits != 2 {
		t.Errorf("hits=%d misses=%d, want 2/2", st.Hits, st.Misses)
	}
	if st.BusReadXs != 1 || st.BusReads != 1 || st.Upgrades != 1 {
		t.Errorf("busRd=%d busRdX=%d upgr=%d, want 1/1/1", st.BusReads, st.BusReadXs, st.Upgrades)
	}
	if st.Invalidations != 1 {
		t.Errorf("invalidations=%d, want 1", st.Invalidations)
	}
}

func TestExecutionWithoutFlushOmitsFinals(t *testing.T) {
	s := New(Config{Processors: 1})
	s.Write(0, 0, 1)
	exec := s.Execution(false)
	if len(exec.Final) != 0 {
		t.Error("unflushed execution should have no final values")
	}
}

// Probabilistic fault injection: over many runs, injected faults are
// frequently (not necessarily always) detectable by per-address
// coherence checking. This guards the detection-rate experiment's
// machinery.
func TestProbabilisticInjectionSometimesDetected(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	detected := 0
	fired := 0
	for i := 0; i < 60; i++ {
		faults := WithProbability(FaultDropWrite, 0.3, rng)
		s := New(Config{Processors: 2, CacheSets: 2, CacheWays: 1, Faults: faults})
		prog := RandomProgram(rng, 2, 8, 2, 0.5, 0.1)
		exec := Run(s, prog, rng)
		if s.Stats().FaultsFired == 0 {
			continue
		}
		fired++
		ok, _, err := coherence.Coherent(context.Background(), exec, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			detected++
		}
	}
	if fired == 0 {
		t.Fatal("no faults fired; generator too weak")
	}
	if detected == 0 {
		t.Errorf("none of %d faulty runs detected", fired)
	}
}

func TestWriteOrdersUsableByPolynomialVerifier(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 20; i++ {
		s := New(Config{Processors: 3, CacheSets: 2, CacheWays: 1})
		prog := RandomProgram(rng, 3, 8, 2, 0.45, 0.15)
		exec := Run(s, prog, rng)
		orders := s.WriteOrders()
		for _, a := range exec.Addresses() {
			res, err := coherence.SolveWithWriteOrder(context.Background(), exec, a, orders[a], nil)
			if err != nil {
				t.Fatalf("run %d addr %d: %v", i, a, err)
			}
			if !res.Coherent {
				t.Fatalf("run %d addr %d: recorded bus order rejected", i, a)
			}
		}
	}
}
