package mesi

import (
	"math/rand"
	"reflect"
	"testing"
)

// faultSchedule runs a fixed random workload under seeded injection and
// returns the fired-fault schedule.
func faultSchedule(t *testing.T, seed int64) ([]FaultEvent, int) {
	t.Helper()
	faults := Seeded(FaultDropWrite, 0.3, seed)
	s := New(Config{Processors: 2, CacheSets: 2, CacheWays: 1, Faults: faults})
	wl := rand.New(rand.NewSource(99))
	prog := RandomProgram(wl, 2, 16, 2, 0.6, 0.1)
	Run(s, prog, wl)
	return faults.Schedule(), s.Stats().FaultsFired
}

// TestSeededFaultDeterminism: the same seed over the same workload
// injects the identical fault schedule — the property that makes the
// detection-rate experiments replayable from a single number.
func TestSeededFaultDeterminism(t *testing.T) {
	a, firedA := faultSchedule(t, 42)
	b, _ := faultSchedule(t, 42)
	if len(a) == 0 {
		t.Fatal("no faults fired; weak workload or probability")
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed, different schedules:\n%v\n%v", a, b)
	}
	if len(a) != firedA {
		t.Errorf("schedule has %d events, stats counted %d fired", len(a), firedA)
	}
	if c, _ := faultSchedule(t, 43); reflect.DeepEqual(a, c) {
		t.Errorf("seeds 42 and 43 injected the identical schedule %v", a)
	}
}

// TestFaultScheduleRecordsOneShot: the deterministic Nth-opportunity
// trigger also lands in the schedule log, with its opportunity number.
func TestFaultScheduleRecordsOneShot(t *testing.T) {
	f := Once(FaultDropWrite, 2)
	s := New(Config{Processors: 1, Faults: f})
	s.Write(0, 0, 1)
	s.Write(0, 0, 2)
	s.Write(0, 0, 3)
	want := []FaultEvent{{Kind: FaultDropWrite, Opportunity: 2}}
	if got := f.Schedule(); !reflect.DeepEqual(got, want) {
		t.Errorf("schedule = %v, want %v", got, want)
	}
}

// TestNilFaultsSchedule: the nil (injection disabled) receiver has an
// empty schedule, not a panic.
func TestNilFaultsSchedule(t *testing.T) {
	var f *Faults
	if got := f.Schedule(); got != nil {
		t.Errorf("nil schedule = %v", got)
	}
}
