package mesi

import (
	"fmt"

	"memverify/internal/memory"
	"memverify/internal/obs"
)

// Config parameterizes a simulated system.
type Config struct {
	// Processors is the number of CPUs (and private caches). Must be
	// at least 1.
	Processors int
	// CacheSets and CacheWays size each private cache. Defaults: 4 sets,
	// 2 ways.
	CacheSets int
	CacheWays int
	// Faults enables protocol error injection; nil means a correct
	// protocol.
	Faults *Faults
	// Tracer, when non-nil, receives a bus event for every coherence
	// transaction (bus-rd, bus-rdx, upgr, inval, wb).
	Tracer *obs.Tracer
}

func (c Config) withDefaults() Config {
	if c.Processors == 0 {
		c.Processors = 2
	}
	if c.CacheSets == 0 {
		c.CacheSets = 4
	}
	if c.CacheWays == 0 {
		c.CacheWays = 2
	}
	return c
}

// Stats aggregates simulator counters.
type Stats struct {
	Hits          uint64
	Misses        uint64
	BusReads      uint64 // BusRd transactions
	BusReadXs     uint64 // BusRdX transactions
	Upgrades      uint64 // BusUpgr transactions
	Invalidations uint64 // lines invalidated by snoops
	Writebacks    uint64 // dirty lines written back
	FaultsFired   int    // injected faults that actually triggered
}

// Counters implements obs.CounterSet, so cmd/simtrace prints MESI and
// directory stats through one code path.
func (st Stats) Counters() []obs.StatCounter {
	return []obs.StatCounter{
		{Name: "hits", Value: st.Hits},
		{Name: "misses", Value: st.Misses},
		{Name: "bus-rd", Value: st.BusReads},
		{Name: "bus-rdx", Value: st.BusReadXs},
		{Name: "upgr", Value: st.Upgrades},
		{Name: "inval", Value: st.Invalidations},
		{Name: "wb", Value: st.Writebacks},
		{Name: "faults", Value: uint64(st.FaultsFired)},
	}
}

// System is a simulated multiprocessor: CPUs with private MESI caches on
// an atomic snooping bus over a shared memory. Executing operations
// records a trace (per-CPU histories with observed values) retrievable
// with Execution.
type System struct {
	cfg     Config
	caches  []*cache
	mem     map[memory.Addr]memory.Value
	init    map[memory.Addr]memory.Value
	hist    []memory.History
	orders  map[memory.Addr][]memory.Ref
	arrival []memory.Ref
	stats   Stats
	faults  *Faults
	tr      *obs.Tracer
}

// New builds a system with all memory initialized to zero on first
// touch.
func New(cfg Config) *System {
	cfg = cfg.withDefaults()
	s := &System{
		cfg:    cfg,
		mem:    make(map[memory.Addr]memory.Value),
		init:   make(map[memory.Addr]memory.Value),
		hist:   make([]memory.History, cfg.Processors),
		orders: make(map[memory.Addr][]memory.Ref),
		faults: cfg.Faults,
		tr:     cfg.Tracer,
	}
	for i := 0; i < cfg.Processors; i++ {
		s.caches = append(s.caches, newCache(cfg.CacheSets, cfg.CacheWays))
	}
	return s
}

// Stats returns the simulator counters.
func (s *System) Stats() Stats { return s.stats }

// memRead reads memory, recording the first-touch initial value.
func (s *System) memRead(a memory.Addr) memory.Value {
	v, ok := s.mem[a]
	if !ok {
		s.mem[a] = 0
		s.init[a] = 0
		return 0
	}
	return v
}

// memWrite updates memory (recording a zero initial value if the address
// was never read before being written back).
func (s *System) memWrite(a memory.Addr, v memory.Value) {
	if _, ok := s.mem[a]; !ok {
		s.init[a] = 0
	}
	s.mem[a] = v
}

// SetInitial presets the memory contents of an address before execution.
func (s *System) SetInitial(a memory.Addr, v memory.Value) {
	s.mem[a] = v
	s.init[a] = v
}

// evict removes a victim line, writing it back if dirty.
func (s *System) evict(cpu int, l *line) {
	if l.state == Modified {
		s.stats.Writebacks++
		s.tr.Bus("wb", cpu, int64(l.addr), int64(l.value))
		if s.faults.fire(FaultLoseWriteback) {
			s.stats.FaultsFired++
			// The dirty data is dropped on the floor; memory keeps its
			// stale contents.
		} else {
			s.memWrite(l.addr, l.value)
		}
	}
	l.state = Invalid
}

// snoop services a bus transaction for address a issued by cpu.
// exclusive requests (BusRdX/BusUpgr) invalidate other copies; any
// Modified copy is flushed to memory first. It returns the freshest
// value visible on the bus.
func (s *System) snoop(cpu int, a memory.Addr, wantExclusive bool) memory.Value {
	value := s.memRead(a)
	for other, c := range s.caches {
		if other == cpu {
			continue
		}
		l := c.lookup(a)
		if l == nil {
			continue
		}
		if l.state == Modified {
			s.stats.Writebacks++
			s.tr.Bus("wb", other, int64(a), int64(l.value))
			if s.faults.fire(FaultStaleMemory) {
				s.stats.FaultsFired++
				// The snoop response is lost: the requester proceeds
				// with the stale memory value and the owner's dirty
				// line is silently discarded on invalidate (or left
				// Shared on a read).
			} else {
				s.memWrite(a, l.value)
				value = l.value
			}
		}
		if wantExclusive {
			s.stats.Invalidations++
			s.tr.Bus("inval", other, int64(a), 0)
			if s.faults.fire(FaultDropInvalidate) {
				s.stats.FaultsFired++
				// The invalidation message is lost: the copy stays
				// valid and will serve stale data to its processor.
				continue
			}
			l.state = Invalid
		} else if l.state == Modified || l.state == Exclusive {
			l.state = Shared
		}
	}
	return value
}

// othersHold reports whether any other cache holds a valid copy of a.
func (s *System) othersHold(cpu int, a memory.Addr) bool {
	for other, c := range s.caches {
		if other != cpu && c.lookup(a) != nil {
			return true
		}
	}
	return false
}

// fill installs a value into cpu's cache with the given state, evicting
// if necessary.
func (s *System) fill(cpu int, a memory.Addr, v memory.Value, st LineState) *line {
	c := s.caches[cpu]
	l := c.victim(a)
	s.evict(cpu, l)
	if s.faults.fire(FaultCorruptFill) {
		s.stats.FaultsFired++
		v ^= 1 // single-bit flip in the filled data
	}
	l.addr, l.value, l.state = a, v, st
	c.touch(l)
	return l
}

// Read performs a load by cpu and returns (and records) the observed
// value.
func (s *System) Read(cpu int, a memory.Addr) memory.Value {
	c := s.caches[cpu]
	if l := c.lookup(a); l != nil {
		c.hits++
		s.stats.Hits++
		c.touch(l)
		s.record(cpu, memory.R(a, l.value))
		return l.value
	}
	c.misses++
	s.stats.Misses++
	s.stats.BusReads++
	s.tr.Bus("bus-rd", cpu, int64(a), 0)
	v := s.snoop(cpu, a, false)
	st := Exclusive
	if s.othersHold(cpu, a) {
		st = Shared
	}
	l := s.fill(cpu, a, v, st)
	s.record(cpu, memory.R(a, l.value))
	return l.value
}

// Write performs a store by cpu.
func (s *System) Write(cpu int, a memory.Addr, v memory.Value) {
	s.writeLine(cpu, a, v)
	s.record(cpu, memory.W(a, v))
	s.recordWriteOrder(cpu, a)
}

// recordWriteOrder logs the just-recorded operation of cpu as the next
// write in a's serialization order — the §5.2 augmentation: the atomic
// bus IS the per-address serialization, so the hardware can report it
// for free.
func (s *System) recordWriteOrder(cpu int, a memory.Addr) {
	s.orders[a] = append(s.orders[a], memory.Ref{Proc: cpu, Index: len(s.hist[cpu]) - 1})
}

// WriteOrders returns the recorded per-address write serialization
// orders (the bus order of write transactions), for use with the
// polynomial write-order verifiers.
func (s *System) WriteOrders() map[memory.Addr][]memory.Ref {
	out := make(map[memory.Addr][]memory.Ref, len(s.orders))
	for a, refs := range s.orders {
		out[a] = append([]memory.Ref(nil), refs...)
	}
	return out
}

// writeLine obtains the line in Modified state and updates it.
func (s *System) writeLine(cpu int, a memory.Addr, v memory.Value) {
	c := s.caches[cpu]
	l := c.lookup(a)
	switch {
	case l != nil && (l.state == Modified || l.state == Exclusive):
		c.hits++
		s.stats.Hits++
	case l != nil && l.state == Shared:
		c.hits++
		s.stats.Hits++
		s.stats.Upgrades++
		s.tr.Bus("upgr", cpu, int64(a), 0)
		s.snoop(cpu, a, true)
	default:
		c.misses++
		s.stats.Misses++
		s.stats.BusReadXs++
		s.tr.Bus("bus-rdx", cpu, int64(a), 0)
		cur := s.snoop(cpu, a, true)
		l = s.fill(cpu, a, cur, Exclusive)
	}
	l.state = Modified
	if s.faults.fire(FaultDropWrite) {
		s.stats.FaultsFired++
		// The store is acknowledged but the data never lands in the
		// line.
	} else {
		l.value = v
	}
	c.touch(l)
}

// RMW performs an atomic read-modify-write: the line is obtained in
// Modified state, the old value is returned (and recorded as the read
// component) and new is stored.
func (s *System) RMW(cpu int, a memory.Addr, new memory.Value) memory.Value {
	c := s.caches[cpu]
	l := c.lookup(a)
	var old memory.Value
	switch {
	case l != nil && (l.state == Modified || l.state == Exclusive):
		c.hits++
		s.stats.Hits++
		old = l.value
	case l != nil && l.state == Shared:
		c.hits++
		s.stats.Hits++
		s.stats.Upgrades++
		s.tr.Bus("upgr", cpu, int64(a), 0)
		s.snoop(cpu, a, true)
		old = l.value
	default:
		c.misses++
		s.stats.Misses++
		s.stats.BusReadXs++
		s.tr.Bus("bus-rdx", cpu, int64(a), 0)
		old = s.snoop(cpu, a, true)
		l = s.fill(cpu, a, old, Exclusive)
		old = l.value // a corrupted fill is what the CPU observes
	}
	l.state = Modified
	if s.faults.fire(FaultDropWrite) {
		s.stats.FaultsFired++
	} else {
		l.value = new
	}
	c.touch(l)
	s.record(cpu, memory.RW(a, old, new))
	s.recordWriteOrder(cpu, a)
	return old
}

func (s *System) record(cpu int, o memory.Op) {
	s.arrival = append(s.arrival, memory.Ref{Proc: cpu, Index: len(s.hist[cpu])})
	s.hist[cpu] = append(s.hist[cpu], o)
}

// Arrival returns the global completion order of all recorded
// operations (bus order) — the event stream an online monitor consumes.
func (s *System) Arrival() []memory.Ref {
	return append([]memory.Ref(nil), s.arrival...)
}

// FlushAll writes every dirty line back to memory (end-of-run barrier so
// final memory values are well defined).
func (s *System) FlushAll() {
	for cpu, c := range s.caches {
		for si := range c.lines {
			for wi := range c.lines[si] {
				l := &c.lines[si][wi]
				if l.state == Modified {
					s.evict(cpu, l)
				} else {
					l.state = Invalid
				}
			}
		}
	}
}

// Execution returns the recorded trace: per-CPU histories with observed
// values, the initial value of every touched address, and — if flush is
// true — final values from memory after FlushAll.
func (s *System) Execution(flush bool) *memory.Execution {
	exec := &memory.Execution{Histories: append([]memory.History(nil), s.hist...)}
	for a, v := range s.init {
		exec.SetInitial(a, v)
	}
	if flush {
		s.FlushAll()
		for a, v := range s.mem {
			exec.SetFinal(a, v)
		}
	}
	return exec
}

// CheckInvariants validates the MESI global invariants: for each address
// at most one cache in Modified or Exclusive, and when one is, no other
// cache holds any valid copy. A correct protocol maintains these after
// every operation; fault injection may legitimately break them.
func (s *System) CheckInvariants() error {
	type holder struct {
		cpu   int
		state LineState
	}
	byAddr := make(map[memory.Addr][]holder)
	for cpu, c := range s.caches {
		for si := range c.lines {
			for wi := range c.lines[si] {
				l := c.lines[si][wi]
				if l.state != Invalid {
					byAddr[l.addr] = append(byAddr[l.addr], holder{cpu, l.state})
				}
			}
		}
	}
	for a, hs := range byAddr {
		owners := 0
		for _, h := range hs {
			if h.state == Modified || h.state == Exclusive {
				owners++
			}
		}
		if owners > 1 {
			return fmt.Errorf("mesi: address %d has %d exclusive owners", a, owners)
		}
		if owners == 1 && len(hs) > 1 {
			return fmt.Errorf("mesi: address %d has an exclusive owner and %d other copies", a, len(hs)-1)
		}
	}
	return nil
}
