// Package mesi is a bus-based MESI cache-coherence simulator: N
// processors with private set-associative write-back caches attached to
// an atomic snooping bus and a shared memory.
//
// The simulator is the library's stand-in for the multiprocessor hardware
// whose executions the paper's checkers are meant to test (§1: detecting
// protocol errors dynamically). Running a program produces a
// memory.Execution — per-processor histories with the values each
// operation actually observed — which the coherence and consistency
// verifiers then judge. With a correct protocol and an atomic bus, every
// produced execution is sequentially consistent (and hence coherent); the
// fault injectors (Faults) model protocol hardware errors — dropped
// invalidations, lost writebacks, stale memory responses, corrupted
// fills, silently dropped writes — whose symptoms the checkers detect.
//
// Coherence is tracked at word granularity (one word per cache line), a
// simplification that loses false sharing but preserves everything the
// verification problem cares about: the mapping from reads to writes.
package mesi

import "memverify/internal/memory"

// LineState is the MESI state of a cache line.
type LineState uint8

const (
	// Invalid: the line holds no usable data.
	Invalid LineState = iota
	// Shared: clean, possibly present in other caches.
	Shared
	// Exclusive: clean, guaranteed absent from other caches.
	Exclusive
	// Modified: dirty, guaranteed absent from other caches; memory is
	// stale.
	Modified
)

// String returns the one-letter MESI mnemonic.
func (s LineState) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	default:
		return "?"
	}
}

// line is one cache line (one word, see the package comment).
type line struct {
	state   LineState
	addr    memory.Addr
	value   memory.Value
	lastUse uint64
}

// cache is a private set-associative write-back cache.
type cache struct {
	sets  int
	ways  int
	lines [][]line // [set][way]
	clock uint64

	// Statistics.
	hits   uint64
	misses uint64
}

func newCache(sets, ways int) *cache {
	c := &cache{sets: sets, ways: ways}
	c.lines = make([][]line, sets)
	for i := range c.lines {
		c.lines[i] = make([]line, ways)
	}
	return c
}

func (c *cache) setOf(a memory.Addr) int {
	idx := int(a) % c.sets
	if idx < 0 {
		idx += c.sets
	}
	return idx
}

// lookup returns the line holding a, or nil.
func (c *cache) lookup(a memory.Addr) *line {
	set := c.lines[c.setOf(a)]
	for i := range set {
		if set[i].state != Invalid && set[i].addr == a {
			return &set[i]
		}
	}
	return nil
}

// touch refreshes the LRU clock of a line.
func (c *cache) touch(l *line) {
	c.clock++
	l.lastUse = c.clock
}

// victim picks the line to fill for address a: an invalid way if one
// exists, otherwise the least recently used way of the set.
func (c *cache) victim(a memory.Addr) *line {
	set := c.lines[c.setOf(a)]
	var lru *line
	for i := range set {
		if set[i].state == Invalid {
			return &set[i]
		}
		if lru == nil || set[i].lastUse < lru.lastUse {
			lru = &set[i]
		}
	}
	return lru
}
