package mesi

import (
	"math/rand"

	"memverify/internal/memory"
)

// InstrKind discriminates program instructions.
type InstrKind uint8

const (
	// InstrRead loads an address.
	InstrRead InstrKind = iota
	// InstrWrite stores a value.
	InstrWrite
	// InstrRMW atomically reads an address and stores a value.
	InstrRMW
)

// Instr is one program instruction; the values observed by reads are
// decided by the simulation, not the program.
type Instr struct {
	Kind  InstrKind
	Addr  memory.Addr
	Value memory.Value // stored value for InstrWrite / InstrRMW
}

// Program is one instruction stream per processor.
type Program [][]Instr

// RandomProgram generates a program for procs processors with opsPerProc
// instructions each over naddrs addresses. writeFrac and rmwFrac are the
// approximate fractions of writes and RMWs (the rest are reads); written
// values are unique per (processor, index) so that traces distinguish
// every store.
func RandomProgram(rng *rand.Rand, procs, opsPerProc, naddrs int, writeFrac, rmwFrac float64) Program {
	p := make(Program, procs)
	nextVal := memory.Value(1)
	for cpu := 0; cpu < procs; cpu++ {
		for i := 0; i < opsPerProc; i++ {
			a := memory.Addr(rng.Intn(naddrs))
			r := rng.Float64()
			switch {
			case r < writeFrac:
				p[cpu] = append(p[cpu], Instr{Kind: InstrWrite, Addr: a, Value: nextVal})
				nextVal++
			case r < writeFrac+rmwFrac:
				p[cpu] = append(p[cpu], Instr{Kind: InstrRMW, Addr: a, Value: nextVal})
				nextVal++
			default:
				p[cpu] = append(p[cpu], Instr{Kind: InstrRead, Addr: a})
			}
		}
	}
	return p
}

// Run executes the program on the system, interleaving processors with
// the given random source (each step picks a runnable processor uniformly
// and executes its next instruction — the atomic-bus model makes each
// instruction a single indivisible step). It returns the recorded
// execution with final values flushed.
func Run(s *System, p Program, rng *rand.Rand) *memory.Execution {
	pos := make([]int, len(p))
	remaining := 0
	for _, insts := range p {
		remaining += len(insts)
	}
	for remaining > 0 {
		cpu := rng.Intn(len(p))
		if pos[cpu] >= len(p[cpu]) {
			continue
		}
		in := p[cpu][pos[cpu]]
		pos[cpu]++
		remaining--
		switch in.Kind {
		case InstrRead:
			s.Read(cpu, in.Addr)
		case InstrWrite:
			s.Write(cpu, in.Addr, in.Value)
		case InstrRMW:
			s.RMW(cpu, in.Addr, in.Value)
		}
	}
	return s.Execution(true)
}
