package mesi

import "math/rand"

// FaultKind names an injectable protocol hardware error.
type FaultKind int

const (
	// FaultDropInvalidate loses an invalidation message: a remote copy
	// survives an exclusive request and later serves stale data.
	FaultDropInvalidate FaultKind = iota
	// FaultLoseWriteback drops the data of an evicted Modified line;
	// memory keeps its stale contents.
	FaultLoseWriteback
	// FaultStaleMemory loses a snoop response: a request is served from
	// stale memory although a Modified copy exists elsewhere.
	FaultStaleMemory
	// FaultCorruptFill flips a bit in the data installed by a cache
	// fill.
	FaultCorruptFill
	// FaultDropWrite acknowledges a store without updating the line.
	FaultDropWrite
	numFaultKinds
)

// String names the fault kind.
func (k FaultKind) String() string {
	switch k {
	case FaultDropInvalidate:
		return "drop-invalidate"
	case FaultLoseWriteback:
		return "lose-writeback"
	case FaultStaleMemory:
		return "stale-memory"
	case FaultCorruptFill:
		return "corrupt-fill"
	case FaultDropWrite:
		return "drop-write"
	default:
		return "unknown-fault"
	}
}

// FaultKinds lists every injectable fault kind.
func FaultKinds() []FaultKind {
	out := make([]FaultKind, numFaultKinds)
	for i := range out {
		out[i] = FaultKind(i)
	}
	return out
}

// Faults configures protocol error injection. Two triggering modes
// compose: a deterministic one-shot trigger (the Nth opportunity of a
// kind fires, counting from 1) and a probabilistic mode.
type Faults struct {
	// NthOpportunity[k] == n (n >= 1) fires fault kind k at its n-th
	// opportunity, exactly once.
	NthOpportunity map[FaultKind]int
	// Probability[k] fires fault kind k at each opportunity with the
	// given probability, using Rng.
	Probability map[FaultKind]float64
	// Rng drives the probabilistic mode; if nil, it is seeded from Seed
	// on first use. Probability never fires with a nil Rng and zero
	// Seed — there is no silent fallback to a global generator, so a
	// fault schedule is always reproducible from the configuration.
	Rng *rand.Rand
	// Seed seeds a private generator for the probabilistic mode when
	// Rng is nil: the same seed over the same workload injects the
	// identical fault schedule.
	Seed int64

	seen  map[FaultKind]int
	fired map[FaultKind]bool
	log   []FaultEvent
}

// FaultEvent records one fired fault: its kind and which of that
// kind's opportunities (1-based) it fired at.
type FaultEvent struct {
	Kind        FaultKind
	Opportunity int
}

// Once builds a fault set that fires kind k exactly once, at its n-th
// opportunity (1-based).
func Once(k FaultKind, n int) *Faults {
	return &Faults{NthOpportunity: map[FaultKind]int{k: n}}
}

// WithProbability builds a fault set firing kind k with probability p at
// every opportunity.
func WithProbability(k FaultKind, p float64, rng *rand.Rand) *Faults {
	return &Faults{Probability: map[FaultKind]float64{k: p}, Rng: rng}
}

// Seeded builds a fault set firing kind k with probability p at every
// opportunity, driven by a private generator seeded with seed — the
// reproducible form of WithProbability for experiments that must be
// replayable from a single number.
func Seeded(k FaultKind, p float64, seed int64) *Faults {
	return &Faults{Probability: map[FaultKind]float64{k: p}, Seed: seed}
}

// Schedule returns the faults fired so far, in firing order: the
// injection schedule actually applied to the run. Replaying the same
// workload with the same configuration (same seed) yields the same
// schedule.
func (f *Faults) Schedule() []FaultEvent {
	if f == nil {
		return nil
	}
	return append([]FaultEvent(nil), f.log...)
}

// fire reports whether fault kind k triggers at this opportunity. A nil
// receiver (no fault injection) never fires.
func (f *Faults) fire(k FaultKind) bool {
	if f == nil {
		return false
	}
	if f.seen == nil {
		f.seen = make(map[FaultKind]int)
		f.fired = make(map[FaultKind]bool)
	}
	f.seen[k]++
	if n, ok := f.NthOpportunity[k]; ok && !f.fired[k] && f.seen[k] == n {
		f.fired[k] = true
		f.log = append(f.log, FaultEvent{Kind: k, Opportunity: f.seen[k]})
		return true
	}
	if p, ok := f.Probability[k]; ok && p > 0 {
		if f.Rng == nil && f.Seed != 0 {
			f.Rng = rand.New(rand.NewSource(f.Seed))
		}
		if f.Rng != nil && f.Rng.Float64() < p {
			f.log = append(f.log, FaultEvent{Kind: k, Opportunity: f.seen[k]})
			return true
		}
	}
	return false
}
