// Package chaos is the seeded deterministic fault-injection layer of
// the service tier. It plays the role mesi.Faults and directory.Faults
// play for the protocol simulators, one level up: instead of dropped
// invalidations it injects service-shaped faults — worker panics, slow
// solves, dropped connections, HTTP 500s, forced degradation — at a
// configured rate, reproducibly from a single seed.
//
// Determinism under concurrency is the design constraint. A service
// handles requests on many goroutines, so a naive shared rand.Rand
// would make the fired schedule depend on goroutine interleaving. Two
// mechanisms avoid that:
//
//   - Decide is a pure function of (seed, kind, opportunity, rate): the
//     set of firing opportunities is fixed by the seed alone, whatever
//     order concurrent callers claim opportunity numbers in.
//   - BuildSchedule assigns faults to request indices up front, so a
//     load generator can decide "request #17 gets a worker panic"
//     before any request is sent and carry the assignment on the
//     request itself.
package chaos

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind names one injectable service fault.
type Kind int

const (
	// KindNone is the absence of a fault (the zero value, so an
	// unassigned schedule slot injects nothing).
	KindNone Kind = iota
	// KindWorkerPanic panics inside a fleet worker mid-shard: the
	// server must recover it, answer 500, and keep the worker alive.
	KindWorkerPanic
	// KindSlowSolve stalls one shard's solve by a configured duration,
	// simulating a pathologically hard instance hogging a worker.
	KindSlowSolve
	// KindDropConn severs the client connection before any response
	// bytes, simulating a mid-flight network failure.
	KindDropConn
	// KindError500 answers an immediate HTTP 500, simulating an
	// internal failure upstream of the solver.
	KindError500
	// KindDegrade forces the brownout downgrade path on one request
	// regardless of the live queue-delay EWMA, so the degraded response
	// shape is exercised deterministically.
	KindDegrade
	numKinds
)

// String names the kind as spelled in the X-Chaos-Fault header.
func (k Kind) String() string {
	switch k {
	case KindNone:
		return "none"
	case KindWorkerPanic:
		return "panic"
	case KindSlowSolve:
		return "slow"
	case KindDropConn:
		return "drop"
	case KindError500:
		return "500"
	case KindDegrade:
		return "degrade"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind maps the header spelling back to a Kind.
func ParseKind(name string) (Kind, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "", "none":
		return KindNone, nil
	case "panic":
		return KindWorkerPanic, nil
	case "slow":
		return KindSlowSolve, nil
	case "drop":
		return KindDropConn, nil
	case "500":
		return KindError500, nil
	case "degrade":
		return KindDegrade, nil
	}
	return KindNone, fmt.Errorf("chaos: unknown fault kind %q (want panic, slow, drop, 500 or degrade)", name)
}

// Kinds lists every injectable fault kind (KindNone excluded).
func Kinds() []Kind {
	out := make([]Kind, 0, numKinds-1)
	for k := KindWorkerPanic; k < numKinds; k++ {
		out = append(out, k)
	}
	return out
}

// Decide reports whether fault kind k fires at its n-th opportunity
// under the given seed and rate. It is a pure function — a splitmix64
// hash of (seed, kind, opportunity) compared against rate — so the set
// of firing opportunities is fixed by the seed, independent of the
// order in which concurrent callers reach their opportunities.
func Decide(seed int64, k Kind, opportunity uint64, rate float64) bool {
	if rate <= 0 {
		return false
	}
	if rate >= 1 {
		return true
	}
	x := uint64(seed) ^ (uint64(k)+1)*0x9e3779b97f4a7c15 ^ (opportunity+1)*0xbf58476d1ce4e5b9
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11)/float64(uint64(1)<<53) < rate
}

// Event records one fired fault: its kind and the opportunity number
// (1-based, per kind) it fired at — the same shape the protocol fault
// injectors log, so a chaos run replays from (seed, rates) alone.
type Event struct {
	Kind        Kind   `json:"-"`
	KindName    string `json:"kind"`
	Opportunity uint64 `json:"opportunity"`
}

// Injector fires faults at a per-kind rate, deterministically from a
// seed, and logs what fired. Opportunity numbers are claimed with
// atomics and the firing decision is the pure Decide function, so with
// the same per-kind opportunity counts two runs fire the identical
// opportunity sets; only the interleaved log order can differ (compare
// schedules sorted, or compare Counts).
type Injector struct {
	seed  int64
	rates map[Kind]float64
	seen  [numKinds]atomic.Uint64

	mu  sync.Mutex
	log []Event
}

// NewInjector builds an injector firing each kind in rates at its
// configured probability, decided by seed.
func NewInjector(seed int64, rates map[Kind]float64) *Injector {
	r := make(map[Kind]float64, len(rates))
	for k, p := range rates {
		r[k] = p
	}
	return &Injector{seed: seed, rates: r}
}

// Fire claims the next opportunity for kind k and reports whether the
// fault fires there. Nil-safe: a nil injector never fires.
func (in *Injector) Fire(k Kind) bool {
	if in == nil || k <= KindNone || k >= numKinds {
		return false
	}
	n := in.seen[k].Add(1)
	if !Decide(in.seed, k, n, in.rates[k]) {
		return false
	}
	in.record(k, n)
	return true
}

// Force logs an externally-commanded fault of kind k (the header-driven
// mode, where the load generator owns the schedule and the injector
// only keeps the books). Nil-safe.
func (in *Injector) Force(k Kind) {
	if in == nil || k <= KindNone || k >= numKinds {
		return
	}
	in.record(k, in.seen[k].Add(1))
}

func (in *Injector) record(k Kind, n uint64) {
	in.mu.Lock()
	in.log = append(in.log, Event{Kind: k, KindName: k.String(), Opportunity: n})
	in.mu.Unlock()
}

// Schedule returns the fired faults sorted by (kind, opportunity) —
// the canonical form, so two runs with the same seed and the same
// per-kind opportunity counts return equal schedules even though their
// goroutines interleaved differently.
func (in *Injector) Schedule() []Event {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	out := append([]Event(nil), in.log...)
	in.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Opportunity < out[j].Opportunity
	})
	return out
}

// Counts tallies fired faults by kind name. Nil-safe (empty map).
func (in *Injector) Counts() map[string]int {
	out := make(map[string]int)
	for _, e := range in.Schedule() {
		out[e.KindName]++
	}
	return out
}

// BuildSchedule assigns at most one fault to each of n request slots:
// with probability rate a slot draws one of kinds uniformly, otherwise
// it stays KindNone. The assignment is a pure function of the seed, so
// a load generator holding the schedule knows the full fault plan —
// and its per-kind counts — before the first request is sent.
func BuildSchedule(seed int64, n int, rate float64, kinds []Kind) []Kind {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Kind, n)
	if rate <= 0 || len(kinds) == 0 {
		return out
	}
	for i := range out {
		if rng.Float64() < rate {
			out[i] = kinds[rng.Intn(len(kinds))]
		}
	}
	return out
}

// CountSchedule tallies a BuildSchedule assignment by kind name,
// KindNone excluded — the deterministic "what was injected" block of a
// chaos report.
func CountSchedule(sched []Kind) map[string]int {
	out := make(map[string]int)
	for _, k := range sched {
		if k != KindNone {
			out[k.String()]++
		}
	}
	return out
}
