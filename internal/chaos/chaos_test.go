package chaos

import (
	"math"
	"reflect"
	"sync"
	"testing"
)

func TestKindStringRoundTrip(t *testing.T) {
	for _, k := range Kinds() {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if k, err := ParseKind(""); err != nil || k != KindNone {
		t.Errorf("empty spelling: %v, %v", k, err)
	}
	if _, err := ParseKind("meteor-strike"); err == nil {
		t.Error("unknown kind accepted")
	}
}

// TestDecideDeterministic pins that Decide is a pure function: the
// firing set for a seed is identical however many times it is asked.
func TestDecideDeterministic(t *testing.T) {
	for _, k := range Kinds() {
		for n := uint64(1); n <= 1000; n++ {
			a := Decide(42, k, n, 0.1)
			b := Decide(42, k, n, 0.1)
			if a != b {
				t.Fatalf("Decide(42, %v, %d) flapped", k, n)
			}
		}
	}
}

// TestDecideRate checks the empirical firing rate lands near the
// configured one, and the boundary rates behave.
func TestDecideRate(t *testing.T) {
	const n, rate = 20000, 0.05
	fired := 0
	for i := uint64(1); i <= n; i++ {
		if Decide(7, KindWorkerPanic, i, rate) {
			fired++
		}
	}
	got := float64(fired) / n
	if math.Abs(got-rate) > 0.01 {
		t.Errorf("empirical rate %.4f, want ~%.2f", got, rate)
	}
	if Decide(7, KindWorkerPanic, 1, 0) {
		t.Error("rate 0 fired")
	}
	if !Decide(7, KindWorkerPanic, 1, 1) {
		t.Error("rate 1 did not fire")
	}
}

// TestInjectorScheduleDeterministic drives two same-seed injectors from
// many goroutines and proves the canonical schedules are equal: the
// firing set depends on the seed and the opportunity counts, not on
// goroutine interleaving.
func TestInjectorScheduleDeterministic(t *testing.T) {
	run := func() []Event {
		in := NewInjector(99, map[Kind]float64{KindWorkerPanic: 0.1, KindError500: 0.2})
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 200; i++ {
					in.Fire(KindWorkerPanic)
					in.Fire(KindError500)
				}
			}()
		}
		wg.Wait()
		return in.Schedule()
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("no faults fired at 10-20% over 1600 opportunities")
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("schedules differ across same-seed runs:\n%v\nvs\n%v", a, b)
	}
}

func TestInjectorNilSafe(t *testing.T) {
	var in *Injector
	if in.Fire(KindWorkerPanic) {
		t.Error("nil injector fired")
	}
	in.Force(KindError500)
	if s := in.Schedule(); s != nil {
		t.Errorf("nil schedule %v", s)
	}
	if c := in.Counts(); len(c) != 0 {
		t.Errorf("nil counts %v", c)
	}
}

func TestInjectorForceCounts(t *testing.T) {
	in := NewInjector(1, nil)
	in.Force(KindDegrade)
	in.Force(KindDegrade)
	in.Force(KindDropConn)
	want := map[string]int{"degrade": 2, "drop": 1}
	if got := in.Counts(); !reflect.DeepEqual(got, want) {
		t.Errorf("counts %v, want %v", got, want)
	}
}

// TestBuildScheduleDeterministic pins the loadgen-side assignment: same
// seed, same plan; different seed, (almost surely) different plan; the
// empirical rate is near the configured one.
func TestBuildScheduleDeterministic(t *testing.T) {
	a := BuildSchedule(5, 4000, 0.05, Kinds())
	b := BuildSchedule(5, 4000, 0.05, Kinds())
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same-seed schedules differ")
	}
	c := BuildSchedule(6, 4000, 0.05, Kinds())
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds built identical schedules")
	}
	faults := 0
	for _, k := range a {
		if k != KindNone {
			faults++
		}
	}
	got := float64(faults) / float64(len(a))
	if math.Abs(got-0.05) > 0.02 {
		t.Errorf("assignment rate %.4f, want ~0.05", got)
	}
	counts := CountSchedule(a)
	total := 0
	for _, n := range counts {
		total += n
	}
	if total != faults {
		t.Errorf("CountSchedule total %d, want %d", total, faults)
	}
	if len(BuildSchedule(5, 10, 0, Kinds())) != 10 {
		t.Error("zero-rate schedule has wrong length")
	}
}
