package consistency

import (
	"context"
	"testing"

	"memverify/internal/memory"
)

// wrap brackets every memory op of a history with Acquire/Release, as in
// Figure 6.1.
func wrap(h memory.History) memory.History {
	var out memory.History
	for _, o := range h {
		out = append(out, memory.Acq(), o, memory.Rel())
	}
	return out
}

func TestCheckDiscipline(t *testing.T) {
	full := memory.NewExecution(
		wrap(memory.History{memory.W(0, 1), memory.R(0, 1)}),
	)
	if d := CheckDiscipline(full); d != FullySynchronized {
		t.Errorf("discipline = %v, want FullySynchronized", d)
	}
	partial := memory.NewExecution(
		memory.History{memory.Acq(), memory.W(0, 1), memory.Rel(), memory.R(0, 1)},
	)
	if d := CheckDiscipline(partial); d != PartiallySynchronized {
		t.Errorf("discipline = %v, want PartiallySynchronized", d)
	}
	none := memory.NewExecution(
		memory.History{memory.W(0, 1)},
	)
	if d := CheckDiscipline(none); d != Unsynchronized {
		t.Errorf("discipline = %v, want Unsynchronized", d)
	}
}

func TestDisciplineString(t *testing.T) {
	cases := map[SynchronizationDiscipline]string{
		FullySynchronized:     "fully-synchronized",
		PartiallySynchronized: "partially-synchronized",
		Unsynchronized:        "unsynchronized",
	}
	for d, want := range cases {
		if got := d.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", d, got, want)
		}
	}
}

func TestVerifyLRCCoherentExecution(t *testing.T) {
	exec := memory.NewExecution(
		wrap(memory.History{memory.W(0, 1)}),
		wrap(memory.History{memory.R(0, 1)}),
	).SetInitial(0, 0)
	res, err := VerifyLRC(context.Background(), exec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Consistent {
		t.Error("coherent synchronized execution rejected")
	}
}

func TestVerifyLRCIncoherentExecution(t *testing.T) {
	exec := memory.NewExecution(
		wrap(memory.History{memory.R(0, 5)}),
	).SetInitial(0, 0)
	res, err := VerifyLRC(context.Background(), exec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Consistent {
		t.Error("incoherent synchronized execution accepted")
	}
}

func TestVerifyLRCRequiresDiscipline(t *testing.T) {
	exec := memory.NewExecution(
		memory.History{memory.W(0, 1)},
	)
	if _, err := VerifyLRC(context.Background(), exec, nil); err == nil {
		t.Error("unsynchronized execution accepted by VerifyLRC")
	}
}

func TestVerifyDispatchLRC(t *testing.T) {
	exec := memory.NewExecution(
		wrap(memory.History{memory.W(0, 1)}),
		wrap(memory.History{memory.R(0, 1)}),
	).SetInitial(0, 0)
	res, err := Verify(context.Background(), LRC, exec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Consistent {
		t.Error("Verify(context.Background(), LRC) rejected a coherent synchronized execution")
	}
}
