package consistency

import (
	"context"
	"encoding/binary"
	"fmt"
	"sort"
	"time"

	"memverify/internal/memory"
	"memverify/internal/obs"
	"memverify/internal/solver"
)

// EventKind discriminates witness events of the operational verifiers.
type EventKind uint8

const (
	// EventIssue is a processor issuing its next operation (a write
	// enters the store buffer; a read takes its value from the buffer or
	// memory; an RMW or fence drains and acts on memory).
	EventIssue EventKind = iota
	// EventCommit is a store buffer entry draining to memory.
	EventCommit
)

// Event is one step of an operational machine run — together the events
// form the witness that the machine can reproduce the execution.
type Event struct {
	Kind EventKind
	// Ref identifies the issued operation (EventIssue) or the operation
	// whose buffered store commits (EventCommit).
	Ref memory.Ref
}

// String renders the event compactly.
func (e Event) String() string {
	if e.Kind == EventIssue {
		return fmt.Sprintf("issue %s", e.Ref)
	}
	return fmt.Sprintf("commit %s", e.Ref)
}

// bufferEntry is a pending store in a store buffer.
type bufferEntry struct {
	addr memory.Addr
	val  memory.Value
	ref  memory.Ref
}

// tsoSearcher explores the operational state space of a store-buffer
// machine. Two buffer disciplines are supported:
//
//	TSO: one FIFO buffer per processor; commits drain in issue order.
//	PSO: per-processor, per-address FIFO; commits to different
//	     addresses may drain in any order.
//
// Reads forward from the processor's own newest buffered store to the
// address, else read memory. Read-modify-writes, fences, acquires and
// releases require an empty (own) buffer and act on memory directly.
type tsoSearcher struct {
	exec   *memory.Execution
	opts   *Options
	budget *solver.Budget
	pso    bool

	addrIndex map[memory.Addr]int
	pos       []int
	buffers   [][]bufferEntry // per processor, issue order
	values    []memory.Value
	bound     []bool
	events    []Event

	memo   map[string]struct{}
	stats  solver.Stats
	abort  *solver.ErrBudgetExceeded
	keyBuf []byte

	// Observability handles (see vscSearcher).
	tr      *obs.Tracer
	sp      obs.Span
	met     *obs.Metrics
	obsOn   bool
	flushed obsFlush
}

// pollObs flushes counter deltas into the shared metrics and emits the
// budget-poll trace event.
func (s *tsoSearcher) pollObs() {
	if s.met != nil {
		s.met.Flush(
			int64(s.stats.States-s.flushed.states),
			int64(s.stats.MemoHits-s.flushed.memoHits),
			int64(s.stats.MemoMisses-s.flushed.memoMisses),
			0,
			int64(s.stats.Branches-s.flushed.branches),
			len(s.events))
		s.flushed = obsFlush{states: s.stats.States, memoHits: s.stats.MemoHits,
			memoMisses: s.stats.MemoMisses, branches: s.stats.Branches}
	}
	if s.tr != nil {
		s.tr.BudgetPoll(s.sp, int64(s.stats.States), len(s.events))
	}
}

// verifyTSO checks whether exec is explainable by a Total Store Order
// machine: per-processor FIFO store buffers with forwarding, writes
// committing to a single coherent memory in issue order. The witness
// issue/commit event trace is returned on success.
func verifyTSO(ctx context.Context, exec *memory.Execution, opts *Options) (*Result, error) {
	return verifyStoreBuffer(ctx, exec, opts, false)
}

// verifyPSO checks whether exec is explainable by a Partial Store Order
// machine: like TSO but stores to different addresses may commit out of
// issue order (per-address FIFOs).
func verifyPSO(ctx context.Context, exec *memory.Execution, opts *Options) (*Result, error) {
	return verifyStoreBuffer(ctx, exec, opts, true)
}

func verifyStoreBuffer(ctx context.Context, exec *memory.Execution, opts *Options, pso bool) (res *Result, err error) {
	// Operational-machine searches recover panics into typed errors like
	// the VSC searcher does, so a bug in one model's machine cannot crash
	// a portfolio that races several models.
	label := "tso-machine"
	if pso {
		label = "pso-machine"
	}
	defer solver.RecoverToError(ctx, label, &err)
	if err := exec.Validate(); err != nil {
		return nil, err
	}
	addrs := exec.Addresses()
	s := &tsoSearcher{
		exec:      exec,
		opts:      opts,
		pso:       pso,
		addrIndex: make(map[memory.Addr]int, len(addrs)),
		pos:       make([]int, len(exec.Histories)),
		buffers:   make([][]bufferEntry, len(exec.Histories)),
		values:    make([]memory.Value, len(addrs)),
		bound:     make([]bool, len(addrs)),
		memo:      make(map[string]struct{}),
	}
	for i, a := range addrs {
		s.addrIndex[a] = i
		if d, ok := exec.Initial[a]; ok {
			s.values[i], s.bound[i] = d, true
		}
	}
	algorithm := "tso-operational"
	if pso {
		algorithm = "pso-operational"
	}
	start := time.Now()
	s.budget = solver.Start(ctx, opts)
	defer s.budget.Stop()
	s.tr = obs.TracerFrom(ctx)
	s.met = obs.MetricsFrom(ctx)
	s.obsOn = s.tr != nil || s.met != nil
	s.met.SolveBegin()
	defer s.met.SolveEnd()
	if s.tr != nil {
		s.sp, _ = s.tr.Begin(ctx, algorithm)
	}
	found := s.dfs()
	s.stats.Duration = time.Since(start)
	if s.obsOn {
		s.pollObs()
	}
	if s.abort != nil {
		s.abort.Stats = s.stats
		s.sp.End("budget: "+s.abort.Reason.String(), int64(s.stats.States))
		return nil, s.abort
	}
	res = &Result{
		Consistent: found,
		Decided:    true,
		Algorithm:  algorithm,
		Stats:      s.stats,
	}
	if found {
		res.Events = append([]Event(nil), s.events...)
		s.sp.End("consistent", int64(s.stats.States))
	} else {
		s.sp.End("inconsistent", int64(s.stats.States))
	}
	return res, nil
}

func (s *tsoSearcher) key() string {
	buf := s.keyBuf[:0]
	for _, p := range s.pos {
		buf = binary.AppendUvarint(buf, uint64(p))
	}
	for _, b := range s.buffers {
		buf = binary.AppendUvarint(buf, uint64(len(b)))
		for _, e := range b {
			buf = binary.AppendVarint(buf, int64(e.addr))
			buf = binary.AppendVarint(buf, int64(e.val))
		}
	}
	for i := range s.values {
		if s.bound[i] {
			buf = append(buf, 1)
			buf = binary.AppendVarint(buf, int64(s.values[i]))
		} else {
			buf = append(buf, 0)
		}
	}
	s.keyBuf = buf
	return string(buf)
}

func (s *tsoSearcher) done() bool {
	for h, p := range s.pos {
		if p < len(s.exec.Histories[h]) {
			return false
		}
	}
	for _, b := range s.buffers {
		if len(b) > 0 {
			return false
		}
	}
	return true
}

func (s *tsoSearcher) finalOK() bool {
	for a, want := range s.exec.Final {
		i, ok := s.addrIndex[a]
		if !ok {
			continue
		}
		if s.bound[i] && s.values[i] != want {
			return false
		}
	}
	return true
}

// forwarded returns the value the processor's own buffer supplies for
// addr (the newest pending store), if any.
func (s *tsoSearcher) forwarded(p int, addr memory.Addr) (memory.Value, bool) {
	b := s.buffers[p]
	for i := len(b) - 1; i >= 0; i-- {
		if b[i].addr == addr {
			return b[i].val, true
		}
	}
	return 0, false
}

// commitChoices lists buffer indices of processor p eligible to commit
// next: index 0 only under TSO; the oldest entry of each address under
// PSO.
func (s *tsoSearcher) commitChoices(p int) []int {
	b := s.buffers[p]
	if len(b) == 0 {
		return nil
	}
	if !s.pso {
		return []int{0}
	}
	var out []int
	seen := make(map[memory.Addr]bool)
	for i, e := range b {
		if !seen[e.addr] {
			seen[e.addr] = true
			out = append(out, i)
		}
	}
	return out
}

// tryIssue attempts to issue the next op of processor p. It returns an
// undo closure, or nil if the op is not issueable in this state.
func (s *tsoSearcher) tryIssue(p int) func() {
	h := s.exec.Histories[p]
	if s.pos[p] >= len(h) {
		return nil
	}
	o := h[s.pos[p]]
	ref := memory.Ref{Proc: p, Index: s.pos[p]}
	switch o.Kind {
	case memory.Write:
		s.buffers[p] = append(s.buffers[p], bufferEntry{addr: o.Addr, val: o.Data, ref: ref})
		s.pos[p]++
		s.events = append(s.events, Event{Kind: EventIssue, Ref: ref})
		return func() {
			s.events = s.events[:len(s.events)-1]
			s.pos[p]--
			s.buffers[p] = s.buffers[p][:len(s.buffers[p])-1]
		}
	case memory.Read:
		if v, ok := s.forwarded(p, o.Addr); ok {
			if v != o.Data {
				return nil
			}
			s.pos[p]++
			s.events = append(s.events, Event{Kind: EventIssue, Ref: ref})
			return func() {
				s.events = s.events[:len(s.events)-1]
				s.pos[p]--
			}
		}
		i := s.addrIndex[o.Addr]
		if s.bound[i] && s.values[i] != o.Data {
			return nil
		}
		prevV, prevB := s.values[i], s.bound[i]
		if !s.bound[i] {
			s.values[i], s.bound[i] = o.Data, true
		}
		s.pos[p]++
		s.events = append(s.events, Event{Kind: EventIssue, Ref: ref})
		return func() {
			s.events = s.events[:len(s.events)-1]
			s.pos[p]--
			s.values[i], s.bound[i] = prevV, prevB
		}
	case memory.ReadModifyWrite:
		// Atomic operations drain the buffer first (x86 LOCK semantics).
		if len(s.buffers[p]) > 0 {
			return nil
		}
		i := s.addrIndex[o.Addr]
		if s.bound[i] && s.values[i] != o.Data {
			return nil
		}
		prevV, prevB := s.values[i], s.bound[i]
		s.values[i], s.bound[i] = o.Store, true
		s.pos[p]++
		s.events = append(s.events, Event{Kind: EventIssue, Ref: ref})
		return func() {
			s.events = s.events[:len(s.events)-1]
			s.pos[p]--
			s.values[i], s.bound[i] = prevV, prevB
		}
	case memory.Fence, memory.Acquire, memory.Release:
		// Ordering operations require an empty buffer (conservative for
		// acquire/release; exact for a full fence).
		if len(s.buffers[p]) > 0 {
			return nil
		}
		s.pos[p]++
		s.events = append(s.events, Event{Kind: EventIssue, Ref: ref})
		return func() {
			s.events = s.events[:len(s.events)-1]
			s.pos[p]--
		}
	default:
		return nil
	}
}

// commit drains buffer entry idx of processor p to memory.
func (s *tsoSearcher) commit(p, idx int) func() {
	e := s.buffers[p][idx]
	i := s.addrIndex[e.addr]
	prevV, prevB := s.values[i], s.bound[i]
	s.values[i], s.bound[i] = e.val, true
	// Remove entry idx, preserving order.
	rest := append([]bufferEntry(nil), s.buffers[p][idx+1:]...)
	s.buffers[p] = append(s.buffers[p][:idx], rest...)
	s.events = append(s.events, Event{Kind: EventCommit, Ref: e.ref})
	return func() {
		s.events = s.events[:len(s.events)-1]
		b := s.buffers[p]
		b = append(b[:idx], append([]bufferEntry{e}, b[idx:]...)...)
		s.buffers[p] = b
		s.values[i], s.bound[i] = prevV, prevB
	}
}

func (s *tsoSearcher) dfs() bool {
	if d := len(s.events); d > s.stats.PeakDepth {
		s.stats.PeakDepth = d
	}
	if s.done() {
		return s.finalOK()
	}
	var key string
	if s.opts.Memoize() {
		key = s.key()
		if _, seen := s.memo[key]; seen {
			s.stats.MemoHits++
			if s.tr != nil {
				s.tr.MemoHit(s.sp, len(s.events))
			}
			return false
		}
		s.stats.MemoMisses++
		if s.tr != nil {
			s.tr.MemoMiss(s.sp, len(s.events))
		}
	}
	s.stats.States++
	s.stats.RecordDepth(len(s.events))
	if s.tr != nil {
		s.tr.StateEnter(s.sp, len(s.events), int64(s.stats.States))
	}
	if e := s.budget.Charge(s.stats.States); e != nil {
		s.abort = e
		return false
	}
	if s.obsOn && s.stats.States&(obsFlushInterval-1) == 0 {
		s.pollObs()
	}

	for p := range s.exec.Histories {
		if undo := s.tryIssue(p); undo != nil {
			s.stats.Branches++
			if s.dfs() {
				return true
			}
			undo()
			if s.abort != nil {
				return false
			}
		}
		for _, idx := range s.commitChoices(p) {
			s.stats.Branches++
			undo := s.commit(p, idx)
			if s.dfs() {
				return true
			}
			undo()
			if s.abort != nil {
				return false
			}
		}
	}

	if s.tr != nil {
		s.tr.Backtrack(s.sp, len(s.events))
	}
	if s.opts.Memoize() {
		s.memo[key] = struct{}{}
	}
	return false
}

// ReplayEvents validates a witness event trace against exec under the
// given buffer discipline, re-running the operational semantics
// deterministically. It is used to check the verifiers' witnesses.
func ReplayEvents(exec *memory.Execution, events []Event, pso bool) error {
	addrs := exec.Addresses()
	addrIndex := make(map[memory.Addr]int, len(addrs))
	values := make([]memory.Value, len(addrs))
	bound := make([]bool, len(addrs))
	for i, a := range addrs {
		addrIndex[a] = i
		if d, ok := exec.Initial[a]; ok {
			values[i], bound[i] = d, true
		}
	}
	pos := make([]int, len(exec.Histories))
	buffers := make([][]bufferEntry, len(exec.Histories))

	forwarded := func(p int, addr memory.Addr) (memory.Value, bool) {
		b := buffers[p]
		for i := len(b) - 1; i >= 0; i-- {
			if b[i].addr == addr {
				return b[i].val, true
			}
		}
		return 0, false
	}

	for ei, ev := range events {
		p := ev.Ref.Proc
		if p < 0 || p >= len(exec.Histories) {
			return fmt.Errorf("consistency: event %d: processor %d out of range", ei, p)
		}
		switch ev.Kind {
		case EventIssue:
			if ev.Ref.Index != pos[p] {
				return fmt.Errorf("consistency: event %d: issue out of program order", ei)
			}
			o := exec.Histories[p][pos[p]]
			switch o.Kind {
			case memory.Write:
				buffers[p] = append(buffers[p], bufferEntry{addr: o.Addr, val: o.Data, ref: ev.Ref})
			case memory.Read:
				if v, ok := forwarded(p, o.Addr); ok {
					if v != o.Data {
						return fmt.Errorf("consistency: event %d: forwarded value %d != read value %d", ei, v, o.Data)
					}
				} else {
					i := addrIndex[o.Addr]
					if bound[i] && values[i] != o.Data {
						return fmt.Errorf("consistency: event %d: memory value %d != read value %d", ei, values[i], o.Data)
					}
					if !bound[i] {
						values[i], bound[i] = o.Data, true
					}
				}
			case memory.ReadModifyWrite:
				if len(buffers[p]) > 0 {
					return fmt.Errorf("consistency: event %d: RMW issued with non-empty buffer", ei)
				}
				i := addrIndex[o.Addr]
				if bound[i] && values[i] != o.Data {
					return fmt.Errorf("consistency: event %d: RMW read %d but memory is %d", ei, o.Data, values[i])
				}
				values[i], bound[i] = o.Store, true
			default: // Fence, Acquire, Release
				if len(buffers[p]) > 0 {
					return fmt.Errorf("consistency: event %d: ordering op issued with non-empty buffer", ei)
				}
			}
			pos[p]++
		case EventCommit:
			b := buffers[p]
			found := -1
			for i, e := range b {
				if e.ref == ev.Ref {
					found = i
					break
				}
			}
			if found == -1 {
				return fmt.Errorf("consistency: event %d: commit of %s not in buffer", ei, ev.Ref)
			}
			if !pso && found != 0 {
				return fmt.Errorf("consistency: event %d: TSO commit out of FIFO order", ei)
			}
			if pso {
				for i := 0; i < found; i++ {
					if b[i].addr == b[found].addr {
						return fmt.Errorf("consistency: event %d: PSO commit out of per-address order", ei)
					}
				}
			}
			e := b[found]
			i := addrIndex[e.addr]
			values[i], bound[i] = e.val, true
			buffers[p] = append(b[:found], b[found+1:]...)
		default:
			return fmt.Errorf("consistency: event %d: unknown kind %d", ei, ev.Kind)
		}
	}
	for p, b := range buffers {
		if len(b) > 0 {
			return fmt.Errorf("consistency: processor %d buffer not drained", p)
		}
		if pos[p] != len(exec.Histories[p]) {
			return fmt.Errorf("consistency: processor %d issued %d of %d ops", p, pos[p], len(exec.Histories[p]))
		}
	}
	// Final values.
	final := make([]memory.Addr, 0, len(exec.Final))
	for a := range exec.Final {
		final = append(final, a)
	}
	sort.Slice(final, func(i, j int) bool { return final[i] < final[j] })
	for _, a := range final {
		i, ok := addrIndex[a]
		if !ok {
			continue
		}
		if bound[i] && values[i] != exec.Final[a] {
			return fmt.Errorf("consistency: final value of address %d is %d, want %d", a, values[i], exec.Final[a])
		}
	}
	return nil
}
