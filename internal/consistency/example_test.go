package consistency_test

import (
	"context"
	"fmt"

	"memverify/internal/consistency"
	"memverify/internal/memory"
)

// The store-buffering (Dekker) outcome separates the models: forbidden
// under SC, produced by every TSO machine.
func ExampleVerify() {
	dekker := memory.NewExecution(
		memory.History{memory.W(0, 1), memory.R(1, 0)},
		memory.History{memory.W(1, 1), memory.R(0, 0)},
	).SetInitial(0, 0).SetInitial(1, 0)

	for _, m := range []consistency.Model{consistency.SC, consistency.TSO, consistency.CoherenceOnly} {
		res, err := consistency.Verify(context.Background(), m, dekker, nil)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%s: %v\n", m, res.Consistent)
	}
	// Output:
	// SC: false
	// TSO: true
	// Coherence: true
}

// VSCC: the promise problem of §6.3 — the execution must be coherent,
// the question is sequential consistency.
func ExampleSolveVSCC() {
	exec := memory.NewExecution(
		memory.History{memory.W(0, 1), memory.W(1, 1)},
		memory.History{memory.R(1, 1), memory.R(0, 1)},
	).SetInitial(0, 0).SetInitial(1, 0)
	res, err := consistency.SolveVSCC(context.Background(), exec, nil)
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Consistent)
	// Output: true
}

// MergeSchedules builds an SC schedule from per-address coherent
// schedules — when the right set was chosen (§6.3's caveat).
func ExampleMergeSchedules() {
	exec := memory.NewExecution(
		memory.History{memory.W(0, 1), memory.W(1, 1)},
		memory.History{memory.R(1, 1), memory.R(0, 1)},
	).SetInitial(0, 0).SetInitial(1, 0)
	schedules := map[memory.Addr]memory.Schedule{
		0: {{Proc: 0, Index: 0}, {Proc: 1, Index: 1}},
		1: {{Proc: 0, Index: 1}, {Proc: 1, Index: 0}},
	}
	res, err := consistency.MergeSchedules(exec, schedules)
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Consistent, len(res.Schedule))
	// Output: true 4
}
