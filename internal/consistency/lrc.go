package consistency

import (
	"context"
	"fmt"

	"memverify/internal/coherence"
	"memverify/internal/memory"
	"memverify/internal/solver"
)

// SynchronizationDiscipline describes how thoroughly an execution uses
// acquire/release operations, as reported by CheckDiscipline.
type SynchronizationDiscipline int

const (
	// FullySynchronized means every data-memory operation is immediately
	// bracketed by an Acquire before it and a Release after it in its
	// history — the discipline of the Figure 6.1 construction.
	FullySynchronized SynchronizationDiscipline = iota
	// PartiallySynchronized means some but not all operations are
	// bracketed.
	PartiallySynchronized
	// Unsynchronized means no acquire/release operations appear.
	Unsynchronized
)

// String names the discipline.
func (d SynchronizationDiscipline) String() string {
	switch d {
	case FullySynchronized:
		return "fully-synchronized"
	case PartiallySynchronized:
		return "partially-synchronized"
	default:
		return "unsynchronized"
	}
}

// CheckDiscipline classifies the synchronization discipline of exec.
func CheckDiscipline(exec *memory.Execution) SynchronizationDiscipline {
	sawSync := false
	allBracketed := true
	for _, h := range exec.Histories {
		for i, o := range h {
			if o.IsSync() {
				sawSync = true
				continue
			}
			bracketed := i > 0 && h[i-1].Kind == memory.Acquire &&
				i+1 < len(h) && h[i+1].Kind == memory.Release
			if !bracketed {
				allBracketed = false
			}
		}
	}
	switch {
	case !sawSync:
		return Unsynchronized
	case allBracketed:
		return FullySynchronized
	default:
		return PartiallySynchronized
	}
}

// verifyLRC checks adherence to Lazy Release Consistency for executions
// written in the fully synchronized discipline of Figure 6.1: every
// memory operation bracketed by an acquire and a release. Under LRC,
// synchronized accesses to a location must appear serialized — the
// acquiring processor observes all writes ordered before the matching
// release — so for such executions LRC verification coincides with
// verifying memory coherence per address (§6.2: "as long as memory
// operations to some address must appear serialized, either by implicit
// consistency model requirements or explicit synchronization, the
// reductions presented here apply").
//
// Executions that are not fully synchronized are rejected with an error:
// LRC places no useful constraint on unsynchronized accesses, so neither
// acceptance nor rejection would be meaningful.
func verifyLRC(ctx context.Context, exec *memory.Execution, opts *Options) (*Result, error) {
	if err := exec.Validate(); err != nil {
		return nil, err
	}
	if d := CheckDiscipline(exec); d != FullySynchronized {
		return nil, fmt.Errorf("consistency: execution is %s; LRC verification requires the fully synchronized discipline of Figure 6.1", d)
	}
	rep, err := coherence.NewVerifier(solver.WithOptions(opts)).Verify(ctx, exec)
	if err != nil {
		return nil, err
	}
	results := rep.Results()
	res := &Result{Consistent: true, Decided: true, Algorithm: "lrc-synchronized"}
	for _, r := range results {
		if !r.Coherent {
			res.Consistent = false
		}
		res.Stats.Merge(r.Stats)
	}
	return res, nil
}
