package consistency

import (
	"context"
	"fmt"

	"memverify/internal/memory"
)

// solveVSCWithWriteOrders decides whether a sequentially consistent
// schedule exists that is consistent with the supplied per-address write
// orders (the memory-system augmentation of §5.2 applied to VSC). This
// is the problem Gibbons & Korach proved remains NP-Complete — the
// result §6.3 leans on to show that information sufficient to verify
// coherence in polynomial time does not make consistency tractable. The
// orders typically prune the search dramatically in practice
// nonetheless, which the A3/E7 experiments quantify.
//
// orders must contain, for every address of exec, the exact sequence of
// its writing operations. The search is the VSC search with one extra
// enabledness rule: a writing operation may only be scheduled when it is
// the next unconsumed entry of its address's order.
func solveVSCWithWriteOrders(ctx context.Context, exec *memory.Execution, orders map[memory.Addr][]memory.Ref, opts *Options) (*Result, error) {
	if err := exec.Validate(); err != nil {
		return nil, err
	}
	addrs := exec.Addresses()
	// Validate the orders and build: writeRank[ref] = position in its
	// address's order.
	writeRank := make(map[memory.Ref]int)
	for _, a := range addrs {
		order, ok := orders[a]
		writers := 0
		for p, h := range exec.Histories {
			for i, o := range h {
				if o.IsMemory() && o.Addr == a {
					if _, w := o.Writes(); w {
						writers++
						_ = i
						_ = p
					}
				}
			}
		}
		if !ok && writers > 0 {
			return nil, fmt.Errorf("consistency: no write order supplied for address %d", a)
		}
		if len(order) != writers {
			return nil, fmt.Errorf("consistency: write order for address %d lists %d operations, execution has %d",
				a, len(order), writers)
		}
		seen := make(map[memory.Ref]bool)
		for rank, r := range order {
			if r.Proc < 0 || r.Proc >= len(exec.Histories) || r.Index < 0 || r.Index >= len(exec.Histories[r.Proc]) {
				return nil, fmt.Errorf("consistency: write order reference %s out of range", r)
			}
			o := exec.Op(r)
			if !o.IsMemory() || o.Addr != a {
				return nil, fmt.Errorf("consistency: order entry %s is not an operation of address %d", r, a)
			}
			if _, w := o.Writes(); !w {
				return nil, fmt.Errorf("consistency: order entry %s (%s) does not write", r, o)
			}
			if seen[r] {
				return nil, fmt.Errorf("consistency: write order for address %d lists %s twice", a, r)
			}
			seen[r] = true
			writeRank[r] = rank
		}
	}

	s := &vscSearcher{
		exec:      exec,
		opts:      opts,
		addrIndex: make(map[memory.Addr]int, len(addrs)),
		pos:       make([]int, len(exec.Histories)),
		values:    make([]memory.Value, len(addrs)),
		bound:     make([]bool, len(addrs)),
		memo:      make(map[string]struct{}),
		writeRank: writeRank,
		nextRank:  make([]int, len(addrs)),
	}
	for i, a := range addrs {
		s.addrIndex[a] = i
		if d, ok := exec.Initial[a]; ok {
			s.values[i], s.bound[i] = d, true
		}
	}
	return s.run(ctx, "vsc-write-order-search")
}
