package consistency

import (
	"context"
	"testing"

	"memverify/internal/memory"
)

// Acquire/release are treated as fences by the store-buffer checkers
// (conservative); this pins that behavior.
func TestTSOAcquireReleaseDrain(t *testing.T) {
	// Dekker with release after the write and acquire before the read:
	// under the conservative fence treatment the 0/0 outcome is
	// rejected.
	exec := memory.NewExecution(
		memory.History{memory.W(0, 1), memory.Rel(), memory.Acq(), memory.R(1, 0)},
		memory.History{memory.W(1, 1), memory.Rel(), memory.Acq(), memory.R(0, 0)},
	).SetInitial(0, 0).SetInitial(1, 0)
	res, err := VerifyTSO(context.Background(), exec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Consistent {
		t.Error("synchronized Dekker 0/0 accepted under TSO")
	}
}

func TestPSOFenceOrdersWrites(t *testing.T) {
	// Message passing with a fence between data and flag: the stale
	// outcome becomes illegal even under PSO.
	exec := memory.NewExecution(
		memory.History{memory.W(0, 1), memory.Bar(), memory.W(1, 1)},
		memory.History{memory.R(1, 1), memory.R(0, 0)},
	).SetInitial(0, 0).SetInitial(1, 0)
	res, err := VerifyPSO(context.Background(), exec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Consistent {
		t.Error("fenced message passing stale outcome accepted under PSO")
	}
	// Without the fence it is legal.
	relaxed := memory.NewExecution(
		memory.History{memory.W(0, 1), memory.W(1, 1)},
		memory.History{memory.R(1, 1), memory.R(0, 0)},
	).SetInitial(0, 0).SetInitial(1, 0)
	res, err = VerifyPSO(context.Background(), relaxed, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Consistent {
		t.Error("unfenced message passing stale outcome rejected under PSO")
	}
}

func TestVSCSyncOpsInWitness(t *testing.T) {
	// The SC search schedules sync ops too; the witness contains them.
	exec := memory.NewExecution(
		memory.History{memory.Acq(), memory.W(0, 1), memory.Rel()},
	).SetInitial(0, 0)
	res, err := SolveVSC(context.Background(), exec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Consistent {
		t.Fatal("trivial synchronized execution rejected")
	}
	if len(res.Schedule) != 3 {
		t.Errorf("witness has %d entries, want 3 (sync ops included)", len(res.Schedule))
	}
}

func TestReplayDetectsForwardedMismatch(t *testing.T) {
	exec := memory.NewExecution(
		memory.History{memory.W(0, 1), memory.R(0, 2)},
	).SetInitial(0, 0)
	events := []Event{
		{Kind: EventIssue, Ref: memory.Ref{Proc: 0, Index: 0}},
		{Kind: EventIssue, Ref: memory.Ref{Proc: 0, Index: 1}}, // forwards 1, trace says 2
	}
	if err := ReplayEvents(exec, events, false); err == nil {
		t.Error("forwarding mismatch accepted")
	}
}

func TestReplayDetectsRMWWithPendingBuffer(t *testing.T) {
	exec := memory.NewExecution(
		memory.History{memory.W(0, 1), memory.RW(0, 1, 2)},
	).SetInitial(0, 0)
	events := []Event{
		{Kind: EventIssue, Ref: memory.Ref{Proc: 0, Index: 0}},
		{Kind: EventIssue, Ref: memory.Ref{Proc: 0, Index: 1}}, // RMW with pending store
	}
	if err := ReplayEvents(exec, events, false); err == nil {
		t.Error("RMW with non-empty buffer accepted")
	}
}

func TestReplayFinalValueMismatch(t *testing.T) {
	exec := memory.NewExecution(
		memory.History{memory.W(0, 1)},
	).SetInitial(0, 0).SetFinal(0, 9)
	events := []Event{
		{Kind: EventIssue, Ref: memory.Ref{Proc: 0, Index: 0}},
		{Kind: EventCommit, Ref: memory.Ref{Proc: 0, Index: 0}},
	}
	if err := ReplayEvents(exec, events, false); err == nil {
		t.Error("final value mismatch accepted")
	}
}
