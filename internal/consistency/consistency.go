// Package consistency implements verification of memory consistency
// models over executions, per Section 6 of Cantin, Lipasti & Smith:
//
//   - SolveVSC decides Verifying Sequential Consistency (Definition 6.1;
//     NP-Complete, Gibbons & Korach) with a memoized search that
//     generalizes the coherence search to multiple addresses.
//   - SolveVSCC decides the promise problem Verifying Sequential
//     Consistency with Coherence (Definition 6.2): coherence of the
//     instance is established per address first, then VSC is decided —
//     which remains NP-Complete (§6.3).
//   - MergeSchedules implements the VSC-Conflict construction (§6.3):
//     given one coherent schedule per address it builds a sequentially
//     consistent schedule in near-linear time, or reports that this
//     particular set of coherent schedules cannot be merged.
//   - VerifyTSO and VerifyPSO are operational store-buffer checkers for
//     the Sun relaxed models named in §6.2, grounding the claim that
//     relaxed hardware models still embed coherence per location.
//   - VerifyLRC checks executions written in the fully synchronized
//     discipline of Figure 6.1 (every access bracketed by acquire and
//     release), under which Lazy Release Consistency forces per-address
//     serialization, i.e. coherence.
package consistency

import (
	"fmt"

	"memverify/internal/coherence"
	"memverify/internal/memory"
)

// Model names a memory consistency model supported by Verify.
type Model int

const (
	// SC is sequential consistency (Lamport).
	SC Model = iota
	// TSO is Sun/x86 Total Store Order: per-processor FIFO store buffers
	// with read forwarding; RMWs and fences drain the buffer.
	TSO
	// PSO is Sun Partial Store Order: per-processor, per-address FIFO
	// store buffers; writes to different addresses may commit out of
	// order.
	PSO
	// CoherenceOnly requires only per-address serialization (the weakest
	// model the paper considers; every hardware model implies it).
	CoherenceOnly
	// LRC is Lazy Release Consistency restricted to fully synchronized
	// executions (Figure 6.1 discipline).
	LRC
)

// String returns the conventional model name.
func (m Model) String() string {
	switch m {
	case SC:
		return "SC"
	case TSO:
		return "TSO"
	case PSO:
		return "PSO"
	case CoherenceOnly:
		return "Coherence"
	case LRC:
		return "LRC"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// Options control the search-based verifiers. The zero value (or nil)
// requests a complete memoized search.
type Options struct {
	// MaxStates bounds the number of search states explored; 0 means
	// unlimited. When hit, the result has Decided == false.
	MaxStates int
	// DisableMemoization turns off visited-state caching (ablation).
	DisableMemoization bool
	// DisableEagerReads turns off eager scheduling of matching reads in
	// the VSC search (ablation).
	DisableEagerReads bool
	// DisableWriteGuidance turns off the branching heuristic that tries
	// writes whose (address, value) some blocked read is waiting for
	// before other candidates (ablation; ordering never affects
	// completeness).
	DisableWriteGuidance bool
}

func (o *Options) maxStates() int {
	if o == nil {
		return 0
	}
	return o.MaxStates
}

func (o *Options) memoize() bool { return o == nil || !o.DisableMemoization }

func (o *Options) eagerReads() bool { return o == nil || !o.DisableEagerReads }

func (o *Options) writeGuidance() bool { return o == nil || !o.DisableWriteGuidance }

// Stats describes the work a verifier performed.
type Stats struct {
	States   int
	MemoHits int
}

// Result is the outcome of a consistency query.
type Result struct {
	// Consistent reports whether the execution adheres to the model.
	// Only meaningful when Decided is true.
	Consistent bool
	// Decided is false when a resource bound stopped the search.
	Decided bool
	// Schedule is a witness sequentially consistent schedule, when the
	// model admits one (SC, VSCC, merge). Relaxed-model verifiers return
	// Events instead.
	Schedule memory.Schedule
	// Events is a witness event trace for the operational verifiers
	// (TSO, PSO): the issue/commit interleaving that reproduces the
	// execution's values.
	Events []Event
	// Algorithm names the decision procedure used.
	Algorithm string
	// Stats describes the work performed.
	Stats Stats
}

// Verify checks exec against the given model. For CoherenceOnly the
// result's Schedule is empty (coherence certificates are per address; use
// coherence.VerifyExecution directly for those).
func Verify(model Model, exec *memory.Execution, opts *Options) (*Result, error) {
	switch model {
	case SC:
		return SolveVSC(exec, opts)
	case TSO:
		return VerifyTSO(exec, opts)
	case PSO:
		return VerifyPSO(exec, opts)
	case CoherenceOnly:
		ok, _, err := coherence.Coherent(exec, coherenceOptions(opts))
		if err != nil {
			return nil, err
		}
		return &Result{Consistent: ok, Decided: true, Algorithm: "per-address-coherence"}, nil
	case LRC:
		return VerifyLRC(exec, opts)
	default:
		return nil, fmt.Errorf("consistency: unknown model %v", model)
	}
}

// coherenceOptions adapts consistency options for the coherence solvers.
func coherenceOptions(opts *Options) *coherence.Options {
	if opts == nil {
		return nil
	}
	return &coherence.Options{
		MaxStates:            opts.MaxStates,
		DisableMemoization:   opts.DisableMemoization,
		DisableEagerReads:    opts.DisableEagerReads,
		DisableWriteGuidance: opts.DisableWriteGuidance,
	}
}

// SolveVSCC decides the Verifying Sequential Consistency with Coherence
// promise problem (Definition 6.2). It first checks the promise — a
// coherent schedule exists for each address — and returns an error if the
// promise does not hold (the problem is then undefined). It then decides
// VSC. Per §6.3 this second step remains NP-Complete even though the
// promise holds.
func SolveVSCC(exec *memory.Execution, opts *Options) (*Result, error) {
	ok, bad, err := coherence.Coherent(exec, coherenceOptions(opts))
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("consistency: VSCC promise violated: address %d has no coherent schedule", bad)
	}
	res, err := SolveVSC(exec, opts)
	if err != nil {
		return nil, err
	}
	res.Algorithm = "vscc"
	return res, nil
}
