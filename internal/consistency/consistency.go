// Package consistency implements verification of memory consistency
// models over executions, per Section 6 of Cantin, Lipasti & Smith:
//
//   - SolveVSC decides Verifying Sequential Consistency (Definition 6.1;
//     NP-Complete, Gibbons & Korach) with a memoized search that
//     generalizes the coherence search to multiple addresses.
//   - SolveVSCC decides the promise problem Verifying Sequential
//     Consistency with Coherence (Definition 6.2): coherence of the
//     instance is established per address first, then VSC is decided —
//     which remains NP-Complete (§6.3).
//   - MergeSchedules implements the VSC-Conflict construction (§6.3):
//     given one coherent schedule per address it builds a sequentially
//     consistent schedule in near-linear time, or reports that this
//     particular set of coherent schedules cannot be merged.
//   - VerifyTSO and VerifyPSO are operational store-buffer checkers for
//     the Sun relaxed models named in §6.2, grounding the claim that
//     relaxed hardware models still embed coherence per location.
//   - VerifyLRC checks executions written in the fully synchronized
//     discipline of Figure 6.1 (every access bracketed by acquire and
//     release), under which Lazy Release Consistency forces per-address
//     serialization, i.e. coherence.
//
// Every entry point takes a context.Context and shares the resource
// budget machinery of internal/solver with the coherence package:
// cancellation, Options.Timeout and Options.MaxStates all abort a solve
// with a *solver.ErrBudgetExceeded carrying the partial Stats.
package consistency

import (
	"context"
	"fmt"

	"memverify/internal/coherence"
	"memverify/internal/memory"
	"memverify/internal/solver"
)

// Model names a memory consistency model supported by Verify.
type Model int

const (
	// SC is sequential consistency (Lamport).
	SC Model = iota
	// TSO is Sun/x86 Total Store Order: per-processor FIFO store buffers
	// with read forwarding; RMWs and fences drain the buffer.
	TSO
	// PSO is Sun Partial Store Order: per-processor, per-address FIFO
	// store buffers; writes to different addresses may commit out of
	// order.
	PSO
	// CoherenceOnly requires only per-address serialization (the weakest
	// model the paper considers; every hardware model implies it).
	CoherenceOnly
	// LRC is Lazy Release Consistency restricted to fully synchronized
	// executions (Figure 6.1 discipline).
	LRC
)

// String returns the conventional model name.
func (m Model) String() string {
	switch m {
	case SC:
		return "SC"
	case TSO:
		return "TSO"
	case PSO:
		return "PSO"
	case CoherenceOnly:
		return "Coherence"
	case LRC:
		return "LRC"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// Options control the search-based verifiers; the type is shared with
// internal/coherence via internal/solver, so one options value
// configures both packages. The zero value (or nil) requests a complete
// memoized search with no resource bound.
type Options = solver.Options

// Stats describes the work a verifier performed (shared with
// internal/coherence via internal/solver).
type Stats = solver.Stats

// Result is the outcome of a consistency query. It implements
// solver.Verdict.
type Result struct {
	// Consistent reports whether the execution adheres to the model.
	Consistent bool
	// Decided is retained for legacy callers: verifiers now report
	// budget exhaustion as a *solver.ErrBudgetExceeded instead of
	// returning an undecided result, so any Result returned without
	// error has Decided == true.
	Decided bool
	// Schedule is a witness sequentially consistent schedule, when the
	// model admits one (SC, VSCC, merge). Relaxed-model verifiers return
	// Events instead.
	Schedule memory.Schedule
	// Events is a witness event trace for the operational verifiers
	// (TSO, PSO): the issue/commit interleaving that reproduces the
	// execution's values.
	Events []Event
	// Algorithm names the decision procedure used.
	Algorithm string
	// Stats describes the work performed.
	Stats Stats
}

// Holds implements solver.Verdict.
func (r *Result) Holds() bool { return r.Consistent }

// IsDecided implements solver.Verdict.
func (r *Result) IsDecided() bool { return r.Decided }

// AlgorithmName implements solver.Verdict.
func (r *Result) AlgorithmName() string { return r.Algorithm }

// SolverStats implements solver.Verdict.
func (r *Result) SolverStats() solver.Stats { return r.Stats }

// Certificate implements solver.Verdict.
func (r *Result) Certificate() memory.Schedule { return r.Schedule }

// Verify checks exec against the given model. For CoherenceOnly the
// result's Schedule is empty (coherence certificates are per address; use
// coherence.VerifyExecution directly for those) and Stats aggregates the
// per-address solves.
func Verify(ctx context.Context, model Model, exec *memory.Execution, opts *Options) (*Result, error) {
	switch model {
	case SC:
		return SolveVSC(ctx, exec, opts)
	case TSO:
		return VerifyTSO(ctx, exec, opts)
	case PSO:
		return VerifyPSO(ctx, exec, opts)
	case CoherenceOnly:
		results, err := coherence.VerifyExecution(ctx, exec, opts)
		if err != nil {
			return nil, err
		}
		res := &Result{Consistent: true, Decided: true, Algorithm: "per-address-coherence"}
		for _, r := range results {
			if !r.Coherent {
				res.Consistent = false
			}
			res.Stats.Merge(r.Stats)
		}
		return res, nil
	case LRC:
		return VerifyLRC(ctx, exec, opts)
	default:
		return nil, fmt.Errorf("consistency: unknown model %v", model)
	}
}

// SolveVSCC decides the Verifying Sequential Consistency with Coherence
// promise problem (Definition 6.2). It first checks the promise — a
// coherent schedule exists for each address — and returns an error if the
// promise does not hold (the problem is then undefined). It then decides
// VSC. Per §6.3 this second step remains NP-Complete even though the
// promise holds.
func SolveVSCC(ctx context.Context, exec *memory.Execution, opts *Options) (*Result, error) {
	ok, bad, err := coherence.Coherent(ctx, exec, opts)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("consistency: VSCC promise violated: address %d has no coherent schedule", bad)
	}
	res, err := SolveVSC(ctx, exec, opts)
	if err != nil {
		return nil, err
	}
	res.Algorithm = "vscc"
	return res, nil
}
