// Package consistency implements verification of memory consistency
// models over executions, per Section 6 of Cantin, Lipasti & Smith.
//
// The entry point is the Verifier facade: construct one with NewVerifier
// for a Model and the shared solver.Config functional options, then call
// Verify. The models are:
//
//   - SC decides Verifying Sequential Consistency (Definition 6.1;
//     NP-Complete, Gibbons & Korach) with a memoized search that
//     generalizes the coherence search to multiple addresses. With
//     solver.WithWriteOrders the search additionally respects the
//     supplied per-address write orders (the §5.2 memory-system
//     augmentation applied to VSC — still NP-Complete, §6.3).
//   - VSCC decides the promise problem Verifying Sequential Consistency
//     with Coherence (Definition 6.2): coherence of the instance is
//     established per address first, then VSC is decided — which remains
//     NP-Complete (§6.3).
//   - TSO and PSO are operational store-buffer checkers for the Sun
//     relaxed models named in §6.2, grounding the claim that relaxed
//     hardware models still embed coherence per location.
//   - LRC checks executions written in the fully synchronized discipline
//     of Figure 6.1 (every access bracketed by acquire and release),
//     under which Lazy Release Consistency forces per-address
//     serialization, i.e. coherence.
//   - CoherenceOnly delegates to the coherence.Verifier facade and
//     requires only per-address serialization.
//
// MergeSchedules implements the VSC-Conflict construction (§6.3): given
// one coherent schedule per address it builds a sequentially consistent
// schedule in near-linear time, or reports that this particular set of
// coherent schedules cannot be merged.
//
// Every verification takes a context.Context and shares the resource
// budget machinery of internal/solver with the coherence package:
// cancellation, Options.Timeout and Options.MaxStates all abort a solve
// with a *solver.ErrBudgetExceeded carrying the partial Stats.
//
// The pre-facade entry points (Verify, SolveVSC, SolveVSCC,
// SolveVSCWithWriteOrders, VerifyTSO, VerifyPSO, VerifyLRC) remain as
// deprecated wrappers in deprecated.go.
package consistency

import (
	"fmt"
	"strings"

	"memverify/internal/memory"
	"memverify/internal/solver"
)

// Model names a memory consistency model supported by Verify.
type Model int

const (
	// SC is sequential consistency (Lamport).
	SC Model = iota
	// TSO is Sun/x86 Total Store Order: per-processor FIFO store buffers
	// with read forwarding; RMWs and fences drain the buffer.
	TSO
	// PSO is Sun Partial Store Order: per-processor, per-address FIFO
	// store buffers; writes to different addresses may commit out of
	// order.
	PSO
	// CoherenceOnly requires only per-address serialization (the weakest
	// model the paper considers; every hardware model implies it).
	CoherenceOnly
	// LRC is Lazy Release Consistency restricted to fully synchronized
	// executions (Figure 6.1 discipline).
	LRC
	// VSCC is the Verifying Sequential Consistency with Coherence promise
	// problem (Definition 6.2): the per-address coherence promise is
	// checked first and its violation is an error, then VSC is decided.
	VSCC
)

// ParseModel maps a model name (case-insensitive; "" and "sc" both mean
// SC, "coherence" means CoherenceOnly) to its Model. It is the shared
// vocabulary for HTTP parameters and CLI flags.
func ParseModel(name string) (Model, error) {
	switch strings.ToLower(name) {
	case "", "sc":
		return SC, nil
	case "tso":
		return TSO, nil
	case "pso":
		return PSO, nil
	case "coherence":
		return CoherenceOnly, nil
	case "lrc":
		return LRC, nil
	case "vscc":
		return VSCC, nil
	default:
		return SC, fmt.Errorf("consistency: unknown model %q (want sc, tso, pso, coherence, lrc or vscc)", name)
	}
}

// String returns the conventional model name.
func (m Model) String() string {
	switch m {
	case SC:
		return "SC"
	case TSO:
		return "TSO"
	case PSO:
		return "PSO"
	case CoherenceOnly:
		return "Coherence"
	case LRC:
		return "LRC"
	case VSCC:
		return "VSCC"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// Options control the search-based verifiers; the type is shared with
// internal/coherence via internal/solver, so one options value
// configures both packages. The zero value (or nil) requests a complete
// memoized search with no resource bound.
type Options = solver.Options

// Stats describes the work a verifier performed (shared with
// internal/coherence via internal/solver).
type Stats = solver.Stats

// Result is the outcome of a consistency query. It implements
// solver.Verdict.
type Result struct {
	// Consistent reports whether the execution adheres to the model.
	Consistent bool
	// Decided is retained for legacy callers: verifiers now report
	// budget exhaustion as a *solver.ErrBudgetExceeded instead of
	// returning an undecided result, so any Result returned without
	// error has Decided == true.
	Decided bool
	// Schedule is a witness sequentially consistent schedule, when the
	// model admits one (SC, VSCC, merge). Relaxed-model verifiers return
	// Events instead.
	Schedule memory.Schedule
	// Events is a witness event trace for the operational verifiers
	// (TSO, PSO): the issue/commit interleaving that reproduces the
	// execution's values.
	Events []Event
	// Algorithm names the decision procedure used.
	Algorithm string
	// Stats describes the work performed.
	Stats Stats
}

// Holds implements solver.Verdict.
func (r *Result) Holds() bool { return r.Consistent }

// IsDecided implements solver.Verdict.
func (r *Result) IsDecided() bool { return r.Decided }

// AlgorithmName implements solver.Verdict.
func (r *Result) AlgorithmName() string { return r.Algorithm }

// SolverStats implements solver.Verdict.
func (r *Result) SolverStats() solver.Stats { return r.Stats }

// Certificate implements solver.Verdict.
func (r *Result) Certificate() memory.Schedule { return r.Schedule }
