package consistency

import (
	"context"
	"math/rand"
	"testing"

	"memverify/internal/memory"
)

// ordersFromSchedule slices per-address write orders out of an SC
// schedule.
func ordersFromSchedule(exec *memory.Execution, s memory.Schedule) map[memory.Addr][]memory.Ref {
	out := map[memory.Addr][]memory.Ref{}
	for _, r := range s {
		o := exec.Op(r)
		if !o.IsMemory() {
			continue
		}
		if _, w := o.Writes(); w {
			out[o.Addr] = append(out[o.Addr], r)
		}
	}
	// Ensure every address has an entry (possibly empty).
	for _, a := range exec.Addresses() {
		if _, ok := out[a]; !ok {
			out[a] = nil
		}
	}
	return out
}

func TestVSCWithWriteOrdersAcceptsCertificateOrders(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	checked := 0
	for i := 0; i < 200; i++ {
		exec := randomMultiAddress(rng)
		vsc, err := SolveVSC(context.Background(), exec, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !vsc.Consistent {
			continue
		}
		checked++
		orders := ordersFromSchedule(exec, vsc.Schedule)
		res, err := SolveVSCWithWriteOrders(context.Background(), exec, orders, nil)
		if err != nil {
			t.Fatalf("instance %d: %v", i, err)
		}
		if !res.Consistent {
			t.Fatalf("instance %d: orders from an SC certificate rejected\n%v", i, exec.Histories)
		}
		if err := memory.CheckSC(exec, res.Schedule); err != nil {
			t.Fatalf("instance %d: invalid certificate: %v", i, err)
		}
	}
	if checked < 30 {
		t.Errorf("only %d instances exercised", checked)
	}
}

// Soundness: a schedule found under write-order constraints respects
// them, and success implies plain VSC success.
func TestVSCWithWriteOrdersRespectsOrders(t *testing.T) {
	exec := memory.NewExecution(
		memory.History{memory.W(0, 1)},
		memory.History{memory.W(0, 2)},
		memory.History{memory.R(0, 1), memory.R(0, 2)},
	).SetInitial(0, 0)
	// Order forcing W(1) before W(2): consistent with the reads.
	good := map[memory.Addr][]memory.Ref{
		0: {{Proc: 0, Index: 0}, {Proc: 1, Index: 0}},
	}
	res, err := SolveVSCWithWriteOrders(context.Background(), exec, good, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Consistent {
		t.Fatal("consistent order rejected")
	}
	// Reverse order: the reads observe 1 then 2, impossible.
	bad := map[memory.Addr][]memory.Ref{
		0: {{Proc: 1, Index: 0}, {Proc: 0, Index: 0}},
	}
	res, err = SolveVSCWithWriteOrders(context.Background(), exec, bad, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Consistent {
		t.Error("order contradicting the reads accepted")
	}
	// Plain VSC accepts the execution (some order works).
	plain, err := SolveVSC(context.Background(), exec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !plain.Consistent {
		t.Error("plain VSC rejected")
	}
}

func TestVSCWithWriteOrdersValidatesInput(t *testing.T) {
	exec := memory.NewExecution(
		memory.History{memory.W(0, 1), memory.R(0, 1)},
	).SetInitial(0, 0)
	w := memory.Ref{Proc: 0, Index: 0}
	r := memory.Ref{Proc: 0, Index: 1}
	cases := []map[memory.Addr][]memory.Ref{
		nil,                        // missing order
		{0: {}},                    // wrong cardinality
		{0: {w, w}},                // duplicate + wrong cardinality
		{0: {r}},                   // a read in the order
		{0: {{Proc: 5, Index: 0}}}, // out of range
	}
	for i, orders := range cases {
		if _, err := SolveVSCWithWriteOrders(context.Background(), exec, orders, nil); err == nil {
			t.Errorf("case %d: invalid orders accepted", i)
		}
	}
}

// The constraint prunes: on Dekker, constrained search visits no more
// states than the unconstrained one and still answers false.
func TestVSCWithWriteOrdersPrunes(t *testing.T) {
	exec := dekkerExecution()
	orders := map[memory.Addr][]memory.Ref{
		0: {{Proc: 0, Index: 0}},
		1: {{Proc: 1, Index: 0}},
	}
	constrained, err := SolveVSCWithWriteOrders(context.Background(), exec, orders, nil)
	if err != nil {
		t.Fatal(err)
	}
	if constrained.Consistent {
		t.Error("Dekker accepted")
	}
	plain, err := SolveVSC(context.Background(), exec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if constrained.Stats.States > plain.Stats.States {
		t.Errorf("constrained search visited %d states, plain %d", constrained.Stats.States, plain.Stats.States)
	}
}
