package consistency

import (
	"context"
	"math/rand"
	"testing"

	"memverify/internal/coherence"
	"memverify/internal/memory"
)

func TestMergeSchedulesSimple(t *testing.T) {
	exec := memory.NewExecution(
		memory.History{memory.W(0, 1), memory.W(1, 1)},
		memory.History{memory.R(1, 1), memory.R(0, 1)},
	).SetInitial(0, 0).SetInitial(1, 0)
	schedules := map[memory.Addr]memory.Schedule{
		0: {{Proc: 0, Index: 0}, {Proc: 1, Index: 1}},
		1: {{Proc: 0, Index: 1}, {Proc: 1, Index: 0}},
	}
	res, err := MergeSchedules(exec, schedules)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Consistent {
		t.Fatal("mergeable coherent schedules rejected")
	}
	if err := memory.CheckSC(exec, res.Schedule); err != nil {
		t.Errorf("merged schedule not SC: %v", err)
	}
}

func TestMergeSchedulesValidatesInput(t *testing.T) {
	exec := memory.NewExecution(
		memory.History{memory.W(0, 1)},
		memory.History{memory.R(0, 1)},
	).SetInitial(0, 0)
	// Missing schedule.
	if _, err := MergeSchedules(exec, nil); err == nil {
		t.Error("missing schedule accepted")
	}
	// Incoherent schedule.
	bad := map[memory.Addr]memory.Schedule{
		0: {{Proc: 1, Index: 0}, {Proc: 0, Index: 0}},
	}
	if _, err := MergeSchedules(exec, bad); err == nil {
		t.Error("incoherent schedule accepted")
	}
}

func TestMergeDetectsConflict(t *testing.T) {
	// Dekker: per-address coherent schedules exist, but any choice is
	// unmergeable (the execution is not SC).
	exec := dekkerExecution()
	results, err := coherence.VerifyExecution(context.Background(), exec, nil)
	if err != nil {
		t.Fatal(err)
	}
	schedules := map[memory.Addr]memory.Schedule{}
	for a, r := range results {
		if !r.Coherent {
			t.Fatal("Dekker should be coherent per address")
		}
		schedules[a] = r.Schedule
	}
	res, err := MergeSchedules(exec, schedules)
	if err != nil {
		t.Fatal(err)
	}
	if res.Consistent {
		t.Error("merged a non-SC execution")
	}
}

// The paper's §6.3 caveat: an SC execution whose per-address coherent
// schedules were chosen badly can fail to merge, while VSC succeeds.
func TestMergeWrongScheduleSetFailsButVSCSucceeds(t *testing.T) {
	// Address 0: two writes with no observers ordering them; address 1
	// pins P0's write after P1's read. Choosing the wrong order for
	// address 0's writes blocks the merge.
	exec := memory.NewExecution(
		memory.History{memory.W(0, 1), memory.W(1, 1)},
		memory.History{memory.R(1, 1), memory.W(0, 2)},
	).SetInitial(0, 0).SetInitial(1, 0).SetFinal(0, 2)

	// Correct set: W(0,1) before W(0,2).
	good := map[memory.Addr]memory.Schedule{
		0: {{Proc: 0, Index: 0}, {Proc: 1, Index: 1}},
		1: {{Proc: 0, Index: 1}, {Proc: 1, Index: 0}},
	}
	res, err := MergeSchedules(exec, good)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Consistent {
		t.Fatal("correct schedule set did not merge")
	}

	// Wrong set for address 0 — coherent in isolation only without the
	// final-value pin, so drop it for the per-address certificate…
	noFinal := exec.Clone()
	delete(noFinal.Final, 0)
	wrong := map[memory.Addr]memory.Schedule{
		0: {{Proc: 1, Index: 1}, {Proc: 0, Index: 0}},
		1: {{Proc: 0, Index: 1}, {Proc: 1, Index: 0}},
	}
	res, err = MergeSchedules(noFinal, wrong)
	if err != nil {
		t.Fatal(err)
	}
	if res.Consistent {
		t.Error("wrong schedule set merged; expected a precedence cycle")
	}
	// …while the full VSC search still certifies the execution as SC.
	vsc, err := SolveVSC(context.Background(), noFinal, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !vsc.Consistent {
		t.Error("VSC rejected an SC execution")
	}
}

// Property: merging the coherence solver's own per-address certificates
// is sound — when the merge succeeds the result is a valid SC schedule,
// and when the execution is SC via schedules derived from an actual SC
// certificate, the merge must succeed.
func TestMergeRoundTripFromSCCertificate(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	merged := 0
	for i := 0; i < 300; i++ {
		exec := randomMultiAddress(rng)
		vsc, err := SolveVSC(context.Background(), exec, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !vsc.Consistent {
			continue
		}
		// Derive per-address coherent schedules from the SC certificate.
		schedules := map[memory.Addr]memory.Schedule{}
		for _, r := range vsc.Schedule {
			o := exec.Op(r)
			if !o.IsMemory() {
				continue
			}
			schedules[o.Addr] = append(schedules[o.Addr], r)
		}
		res, err := MergeSchedules(exec, schedules)
		if err != nil {
			t.Fatalf("instance %d: %v", i, err)
		}
		if !res.Consistent {
			t.Fatalf("instance %d: schedules sliced from an SC certificate failed to merge\nhistories=%v",
				i, exec.Histories)
		}
		if err := memory.CheckSC(exec, res.Schedule); err != nil {
			t.Fatalf("instance %d: merged schedule not SC: %v", i, err)
		}
		merged++
	}
	if merged < 30 {
		t.Errorf("only %d instances exercised the merge", merged)
	}
}
