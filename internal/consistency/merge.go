package consistency

import (
	"fmt"

	"memverify/internal/memory"
)

// MergeSchedules implements the VSC-Conflict construction discussed in
// §6.3: given a coherent schedule for each address of the execution, it
// attempts to merge them into one sequentially consistent schedule.
//
// Encoded in each coherent schedule is a serial order for the writes of
// its address and a mapping from reads to the writes they observed.
// Treating those as hard constraints plus program order yields a
// precedence graph; a topological order of the graph is a sequentially
// consistent schedule, obtainable in O(n log n) time (here O(n + e) with
// hashing).
//
// The catch — and the paper's point — is that the coherent schedules are
// a constraint, not just a hint: an execution may be sequentially
// consistent and yet this particular set of coherent schedules may not be
// mergeable, in which case MergeSchedules reports Consistent == false
// while SolveVSC would succeed with a different set of per-address
// orders. VSC stays NP-Complete; the merge is only a sound, incomplete
// fast path.
//
// schedules must contain exactly one coherent schedule per address of
// exec; each is validated with memory.CheckCoherent before merging.
func MergeSchedules(exec *memory.Execution, schedules map[memory.Addr]memory.Schedule) (*Result, error) {
	if err := exec.Validate(); err != nil {
		return nil, err
	}
	addrs := exec.Addresses()
	for _, a := range addrs {
		s, ok := schedules[a]
		if !ok {
			return nil, fmt.Errorf("consistency: no coherent schedule supplied for address %d", a)
		}
		if err := memory.CheckCoherent(exec, a, s); err != nil {
			return nil, fmt.Errorf("consistency: schedule for address %d is not coherent: %w", a, err)
		}
	}

	// Node numbering: dense index per operation.
	id := make(map[memory.Ref]int)
	var refs []memory.Ref
	for p, h := range exec.Histories {
		for i := range h {
			r := memory.Ref{Proc: p, Index: i}
			id[r] = len(refs)
			refs = append(refs, r)
		}
	}
	n := len(refs)
	adj := make([][]int, n)
	indeg := make([]int, n)
	addEdge := func(a, b memory.Ref) {
		u, v := id[a], id[b]
		adj[u] = append(adj[u], v)
		indeg[v]++
	}

	// Program order edges.
	for p, h := range exec.Histories {
		for i := 1; i < len(h); i++ {
			addEdge(memory.Ref{Proc: p, Index: i - 1}, memory.Ref{Proc: p, Index: i})
		}
	}

	// Conflict edges from each coherent schedule: successive writes are
	// ordered; each read follows the write it observed and precedes the
	// next write.
	for _, a := range addrs {
		var lastWrite *memory.Ref
		var pendingReads []memory.Ref // reads since lastWrite
		for _, r := range schedules[a] {
			r := r
			o := exec.Op(r)
			if _, ok := o.Writes(); ok {
				if lastWrite != nil {
					addEdge(*lastWrite, r)
				}
				for _, rd := range pendingReads {
					addEdge(rd, r)
				}
				pendingReads = pendingReads[:0]
				lastWrite = &r
				continue
			}
			// Pure read: it observed lastWrite (or the initial value).
			if lastWrite != nil {
				addEdge(*lastWrite, r)
			}
			pendingReads = append(pendingReads, r)
		}
	}

	// Kahn topological sort.
	queue := make([]int, 0, n)
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, v)
		}
	}
	order := make(memory.Schedule, 0, n)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, refs[v])
		for _, w := range adj[v] {
			indeg[w]--
			if indeg[w] == 0 {
				queue = append(queue, w)
			}
		}
	}
	if len(order) != n {
		return &Result{
			Consistent: false,
			Decided:    true,
			Algorithm:  "vsc-conflict-merge",
		}, nil
	}
	// The topological order interleaves the per-address coherent
	// schedules without reordering any of them, so reads still observe
	// the same writes; validate regardless.
	if err := memory.CheckSC(exec, order); err != nil {
		return nil, fmt.Errorf("consistency: internal error: merged schedule not SC: %w", err)
	}
	return &Result{
		Consistent: true,
		Decided:    true,
		Schedule:   order,
		Algorithm:  "vsc-conflict-merge",
	}, nil
}
