package consistency

import (
	"context"
	"fmt"

	"memverify/internal/coherence"
	"memverify/internal/memory"
	"memverify/internal/solver"
)

// Verifier is the unified entry point for consistency verification: one
// Model plus one solver.Config, shared with the coherence facade so HTTP
// parameters, vmcheck flags and Go callers configure verification with
// the same vocabulary. The zero-cost construction makes per-request
// verifiers cheap; a Verifier is safe for concurrent use.
type Verifier struct {
	model Model
	cfg   *solver.Config
}

// NewVerifier builds a Verifier for model. Options compose left to
// right; the default is an unbounded search.
//
// The strategy and worker knobs apply to the models that decompose per
// address (CoherenceOnly, LRC, and the promise check of VSCC) — they are
// forwarded to the nested coherence.Verifier. The whole-execution
// searches (SC, VSCC's second phase, TSO, PSO) are single searches and
// honor the budget knobs only. solver.WithWriteOrders constrains the SC
// search to the supplied per-address write orders (§5.2 augmentation).
func NewVerifier(model Model, opts ...solver.ConfigOption) *Verifier {
	return &Verifier{model: model, cfg: solver.NewConfig(opts...)}
}

// Model returns the model this verifier checks.
func (v *Verifier) Model() Model { return v.model }

// Config exposes the verifier's configuration (shared, not a copy).
func (v *Verifier) Config() *solver.Config { return v.cfg }

// coherenceVerifier builds the nested per-address facade carrying this
// verifier's whole configuration (strategy, workers, budget, orders).
func (v *Verifier) coherenceVerifier() *coherence.Verifier {
	return coherence.NewVerifier(solver.WithConfig(v.cfg))
}

// Verify checks exec against the verifier's model. For CoherenceOnly the
// result's Schedule is empty (coherence certificates are per address; use
// coherence.Verifier.Verify directly for those) and Stats aggregates the
// per-address solves.
func (v *Verifier) Verify(ctx context.Context, exec *memory.Execution) (*Result, error) {
	opts := v.cfg.Options
	switch v.model {
	case SC:
		// A non-nil order map — even an empty one — means the caller asked
		// for the constrained solver, which validates completeness of the
		// orders instead of silently searching unconstrained.
		if v.cfg.WriteOrders != nil {
			return solveVSCWithWriteOrders(ctx, exec, v.cfg.WriteOrders, opts)
		}
		return solveVSC(ctx, exec, opts)
	case TSO:
		return verifyTSO(ctx, exec, opts)
	case PSO:
		return verifyPSO(ctx, exec, opts)
	case CoherenceOnly:
		rep, err := v.coherenceVerifier().Verify(ctx, exec)
		if err != nil {
			return nil, err
		}
		res := &Result{Consistent: rep.Coherent(), Decided: true, Algorithm: "per-address-coherence", Stats: rep.Stats}
		return res, nil
	case LRC:
		return verifyLRC(ctx, exec, opts)
	case VSCC:
		return v.solveVSCC(ctx, exec)
	default:
		return nil, fmt.Errorf("consistency: unknown model %v", v.model)
	}
}

// solveVSCC decides the Verifying Sequential Consistency with Coherence
// promise problem (Definition 6.2). It first checks the promise — a
// coherent schedule exists for each address — and returns an error if the
// promise does not hold (the problem is then undefined). It then decides
// VSC. Per §6.3 this second step remains NP-Complete even though the
// promise holds.
func (v *Verifier) solveVSCC(ctx context.Context, exec *memory.Execution) (*Result, error) {
	rep, err := v.coherenceVerifier().Verify(ctx, exec)
	if err != nil {
		return nil, err
	}
	if bad, violated := rep.FirstViolation(); violated {
		return nil, fmt.Errorf("consistency: VSCC promise violated: address %d has no coherent schedule", bad)
	}
	res, err := solveVSC(ctx, exec, v.cfg.Options)
	if err != nil {
		return nil, err
	}
	res.Algorithm = "vscc"
	return res, nil
}
