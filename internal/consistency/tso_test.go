package consistency

import (
	"context"
	"math/rand"
	"testing"

	"memverify/internal/memory"
	"memverify/internal/solver"
)

func TestTSOAcceptsDekker(t *testing.T) {
	exec := dekkerExecution()
	res, err := VerifyTSO(context.Background(), exec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Consistent {
		t.Fatal("TSO rejected the store-buffering outcome it is defined by")
	}
	if err := ReplayEvents(exec, res.Events, false); err != nil {
		t.Errorf("TSO witness does not replay: %v", err)
	}
}

func TestTSORejectsStaleMessagePassing(t *testing.T) {
	// TSO commits stores in order, so the flag cannot become visible
	// before the data.
	res, err := VerifyTSO(context.Background(), messagePassingStale(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Consistent {
		t.Error("TSO accepted write reordering (stale message passing)")
	}
}

func TestPSOAcceptsStaleMessagePassing(t *testing.T) {
	exec := messagePassingStale()
	res, err := VerifyPSO(context.Background(), exec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Consistent {
		t.Fatal("PSO rejected per-address write reordering it is defined by")
	}
	if err := ReplayEvents(exec, res.Events, true); err != nil {
		t.Errorf("PSO witness does not replay: %v", err)
	}
}

func TestPSOKeepsPerAddressOrder(t *testing.T) {
	// Two writes to the SAME address must stay ordered even under PSO.
	exec := memory.NewExecution(
		memory.History{memory.W(0, 1), memory.W(0, 2)},
		memory.History{memory.R(0, 2), memory.R(0, 1)},
	).SetInitial(0, 0)
	res, err := VerifyPSO(context.Background(), exec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Consistent {
		t.Error("PSO reordered same-address writes")
	}
}

func TestTSOFenceRestoresSC(t *testing.T) {
	// Dekker with fences between the write and the read is SC-strength:
	// the 0/0 outcome must be rejected.
	exec := memory.NewExecution(
		memory.History{memory.W(0, 1), memory.Bar(), memory.R(1, 0)},
		memory.History{memory.W(1, 1), memory.Bar(), memory.R(0, 0)},
	).SetInitial(0, 0).SetInitial(1, 0)
	res, err := VerifyTSO(context.Background(), exec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Consistent {
		t.Error("TSO accepted fenced Dekker 0/0 outcome")
	}
}

func TestTSOForwarding(t *testing.T) {
	// A processor must see its own buffered store even before commit,
	// while the other processor still sees the old value.
	exec := memory.NewExecution(
		memory.History{memory.W(0, 1), memory.R(0, 1), memory.R(1, 0)},
		memory.History{memory.W(1, 1), memory.R(1, 1), memory.R(0, 0)},
	).SetInitial(0, 0).SetInitial(1, 0)
	res, err := VerifyTSO(context.Background(), exec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Consistent {
		t.Fatal("TSO rejected store forwarding")
	}
	if err := ReplayEvents(exec, res.Events, false); err != nil {
		t.Errorf("witness does not replay: %v", err)
	}
}

func TestTSORMWDrainsBuffer(t *testing.T) {
	// An RMW acts atomically on memory: it cannot observe a value that
	// skips the processor's own pending store.
	exec := memory.NewExecution(
		memory.History{memory.W(0, 1), memory.RW(0, 0, 2)},
	).SetInitial(0, 0)
	res, err := VerifyTSO(context.Background(), exec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Consistent {
		t.Error("RMW observed pre-buffer value after own write")
	}

	ok := memory.NewExecution(
		memory.History{memory.W(0, 1), memory.RW(0, 1, 2)},
	).SetInitial(0, 0).SetFinal(0, 2)
	res, err = VerifyTSO(context.Background(), ok, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Consistent {
		t.Error("RMW after own write rejected")
	}
}

func TestTSOFinalValues(t *testing.T) {
	exec := memory.NewExecution(
		memory.History{memory.W(0, 1)},
		memory.History{memory.W(0, 2)},
	).SetInitial(0, 0).SetFinal(0, 2)
	res, err := VerifyTSO(context.Background(), exec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Consistent {
		t.Fatal("achievable final value rejected")
	}
	exec.SetFinal(0, 9)
	res, err = VerifyTSO(context.Background(), exec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Consistent {
		t.Error("unwritten final value accepted")
	}
}

// Property: SC implies TSO implies PSO on random executions (the models
// are strictly ordered in permissiveness).
func TestModelHierarchy(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for i := 0; i < 200; i++ {
		exec := randomMultiAddress(rng)
		sc, err := SolveVSC(context.Background(), exec, nil)
		if err != nil {
			t.Fatal(err)
		}
		tso, err := VerifyTSO(context.Background(), exec, nil)
		if err != nil {
			t.Fatal(err)
		}
		pso, err := VerifyPSO(context.Background(), exec, nil)
		if err != nil {
			t.Fatal(err)
		}
		if sc.Consistent && !tso.Consistent {
			t.Fatalf("instance %d: SC but not TSO\nhistories=%v init=%v",
				i, exec.Histories, exec.Initial)
		}
		if tso.Consistent && !pso.Consistent {
			t.Fatalf("instance %d: TSO but not PSO\nhistories=%v init=%v",
				i, exec.Histories, exec.Initial)
		}
		if tso.Consistent {
			if err := ReplayEvents(exec, tso.Events, false); err != nil {
				t.Fatalf("instance %d: TSO witness invalid: %v", i, err)
			}
		}
		if pso.Consistent {
			if err := ReplayEvents(exec, pso.Events, true); err != nil {
				t.Fatalf("instance %d: PSO witness invalid: %v", i, err)
			}
		}
	}
}

func TestTSOBudget(t *testing.T) {
	res, err := VerifyTSO(context.Background(), messagePassingStale(), &Options{MaxStates: 1})
	if err == nil {
		t.Fatalf("budget-limited verification returned a verdict (consistent=%v)", res.Consistent)
	}
	be, ok := solver.AsBudgetError(err)
	if !ok {
		t.Fatalf("error is not *solver.ErrBudgetExceeded: %v", err)
	}
	if be.Reason != solver.ExceededStates || be.Stats.States == 0 {
		t.Errorf("budget error reason=%v states=%d, want ExceededStates with partial stats", be.Reason, be.Stats.States)
	}
}

func TestReplayRejectsBogusWitness(t *testing.T) {
	exec := memory.NewExecution(
		memory.History{memory.W(0, 1), memory.R(0, 1)},
	).SetInitial(0, 0)
	// Issue out of program order.
	bad := []Event{
		{Kind: EventIssue, Ref: memory.Ref{Proc: 0, Index: 1}},
	}
	if err := ReplayEvents(exec, bad, false); err == nil {
		t.Error("out-of-order issue accepted")
	}
	// Commit of an op that was never buffered.
	bad = []Event{
		{Kind: EventCommit, Ref: memory.Ref{Proc: 0, Index: 0}},
	}
	if err := ReplayEvents(exec, bad, false); err == nil {
		t.Error("commit of unbuffered store accepted")
	}
	// Incomplete run (buffer not drained).
	bad = []Event{
		{Kind: EventIssue, Ref: memory.Ref{Proc: 0, Index: 0}},
	}
	if err := ReplayEvents(exec, bad, false); err == nil {
		t.Error("undrained buffer accepted")
	}
}

func TestEventString(t *testing.T) {
	e := Event{Kind: EventIssue, Ref: memory.Ref{Proc: 1, Index: 2}}
	if got := e.String(); got != "issue P1[2]" {
		t.Errorf("Event.String() = %q", got)
	}
	c := Event{Kind: EventCommit, Ref: memory.Ref{Proc: 0, Index: 3}}
	if got := c.String(); got != "commit P0[3]" {
		t.Errorf("Event.String() = %q", got)
	}
}
