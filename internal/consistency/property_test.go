package consistency

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"memverify/internal/memory"
)

// Property: SC implies per-address coherence (the fundamental containment
// of §6: every consistency model the paper considers implies coherence).
func TestSCImpliesCoherence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		exec := randomMultiAddress(rng)
		sc, err := SolveVSC(context.Background(), exec, nil)
		if err != nil {
			return false
		}
		if !sc.Consistent {
			return true
		}
		coh, err := Verify(context.Background(), CoherenceOnly, exec, nil)
		if err != nil {
			return false
		}
		return coh.Consistent
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}

// Property: address renaming invariance — permuting address identities
// preserves every model verdict.
func TestModelAddressRenamingInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		exec := randomMultiAddress(rng)
		rename := func(a memory.Addr) memory.Addr { return a*3 + 17 }
		mapped := &memory.Execution{Histories: make([]memory.History, len(exec.Histories))}
		for p, h := range exec.Histories {
			for _, o := range h {
				if o.IsMemory() {
					o.Addr = rename(o.Addr)
				}
				mapped.Histories[p] = append(mapped.Histories[p], o)
			}
		}
		for a, v := range exec.Initial {
			mapped.SetInitial(rename(a), v)
		}
		for a, v := range exec.Final {
			mapped.SetFinal(rename(a), v)
		}
		for _, m := range []Model{SC, TSO, PSO, CoherenceOnly} {
			a, err := Verify(context.Background(), m, exec, nil)
			if err != nil {
				return false
			}
			b, err := Verify(context.Background(), m, mapped, nil)
			if err != nil {
				return false
			}
			if a.Consistent != b.Consistent {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: inserting fences can only shrink the set of accepted TSO/PSO
// executions — an execution rejected without fences stays rejected with
// them... the useful direction is the converse: an execution ACCEPTED
// with a fence inserted is also accepted without it (fences only
// constrain).
func TestFenceMonotonicity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		exec := randomMultiAddress(rng)
		p := rng.Intn(len(exec.Histories))
		if len(exec.Histories[p]) == 0 {
			return true
		}
		at := rng.Intn(len(exec.Histories[p]) + 1)
		fenced := exec.Clone()
		h := fenced.Histories[p]
		fenced.Histories[p] = append(append(append(memory.History{}, h[:at]...), memory.Bar()), h[at:]...)
		for _, m := range []Model{TSO, PSO} {
			withFence, err := Verify(context.Background(), m, fenced, nil)
			if err != nil {
				return false
			}
			if !withFence.Consistent {
				continue
			}
			without, err := Verify(context.Background(), m, exec, nil)
			if err != nil {
				return false
			}
			if !without.Consistent {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: VSC certificates validate and contain every memory op.
func TestVSCCertificateWellFormed(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		exec := randomMultiAddress(rng)
		res, err := SolveVSC(context.Background(), exec, nil)
		if err != nil {
			return false
		}
		if !res.Consistent {
			return true
		}
		return memory.CheckSC(exec, res.Schedule) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}
